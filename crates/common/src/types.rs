//! The property type system: [`DataType`] and [`Value`].
//!
//! The paper's datasets use four property types: integers (LDBC edge
//! properties are all 4-byte ints; we use `i64` uniformly), doubles, strings
//! (dominant in IMDb), and dates (stored as an `i64` timestamp, as LDBC's
//! `creationDate`). Booleans are included for completeness.

use std::cmp::Ordering;
use std::fmt;

/// The type of a structured vertex or edge property (Guideline 3: label
/// determines properties and their datatypes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit signed integer.
    Int64,
    /// 64-bit IEEE-754 float.
    Float64,
    /// Boolean.
    Bool,
    /// Date/time stored as an `i64` timestamp (seconds or days; the unit is
    /// dataset-defined and opaque to the engine).
    Date,
    /// UTF-8 string; columnar storage dictionary-encodes these.
    String,
}

impl DataType {
    /// Width in bytes of the *uncompressed* fixed-length physical
    /// representation, used for memory estimates of row layouts. Strings
    /// report the pointer width; their heap bytes are accounted separately.
    pub fn fixed_width(self) -> usize {
        match self {
            DataType::Int64 | DataType::Float64 | DataType::Date => 8,
            DataType::Bool => 1,
            DataType::String => 8,
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Int64 => "INT64",
            DataType::Float64 => "DOUBLE",
            DataType::Bool => "BOOL",
            DataType::Date => "DATE",
            DataType::String => "STRING",
        };
        f.write_str(s)
    }
}

/// A dynamically-typed property value.
///
/// `Value` is the interchange representation used by the row store
/// (interpreted attribute layout), data generators, and query results.
/// Columnar storage never materializes `Value`s on the hot path; it works on
/// typed columns directly.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// SQL-style NULL / missing property.
    Null,
    Int64(i64),
    Float64(f64),
    Bool(bool),
    /// Date as i64 timestamp.
    Date(i64),
    String(String),
}

impl Value {
    /// The [`DataType`] of this value, or `None` for NULL.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Int64(_) => Some(DataType::Int64),
            Value::Float64(_) => Some(DataType::Float64),
            Value::Bool(_) => Some(DataType::Bool),
            Value::Date(_) => Some(DataType::Date),
            Value::String(_) => Some(DataType::String),
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int64(v) | Value::Date(v) => Some(*v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Float64(v) => Some(*v),
            Value::Int64(v) => Some(*v as f64),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// A *total* deterministic ordering over all values, used wherever
    /// results must be canonically ordered regardless of type mixing:
    /// grouping keys, DISTINCT sets, and ORDER BY sort keys.
    ///
    /// Lexicographic on `(type rank, value)`, which makes it transitive by
    /// construction: NULL < booleans < numerics < strings. Within the
    /// numeric rank, `Int64`/`Date`/`Float64` order by exact mathematical
    /// value (see `Value::numeric_key` — no precision loss for large
    /// integers), with NaN after every finite value; `Int64(3)`, `Date(3)`
    /// and `Float64(3.0)` compare equal, matching [`Value::compare`].
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        self.type_rank().cmp(&other.type_rank()).then_with(|| match (self, other) {
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::String(a), Value::String(b)) => a.cmp(b),
            _ => match (self.numeric_key(), other.numeric_key()) {
                (Some((a, ar)), Some((b, br))) => a.total_cmp(&b).then(ar.total_cmp(&br)),
                _ => Ordering::Equal, // both NULL (rank 0)
            },
        })
    }

    /// Exact-order key of a numeric-rank value: the round-to-nearest `f64`
    /// plus the integer residue the rounding dropped. Round-to-nearest is
    /// monotone and equal rounded values order by their residue, so the
    /// lexicographic pair orders by exact mathematical value even for
    /// integers beyond 2^53 (where `as f64` alone would collide).
    fn numeric_key(&self) -> Option<(f64, f64)> {
        match self {
            Value::Float64(v) => Some((*v, 0.0)),
            Value::Int64(v) | Value::Date(v) => {
                let f = *v as f64;
                // `f` is an exact integer in [-2^63, 2^63]; the residue is
                // at most half the f64 spacing (≤ 512), exact as f64.
                Some((f, (*v as i128 - f as i128) as f64))
            }
            _ => None,
        }
    }

    /// Fixed rank used by [`Value::total_cmp`] to order across types.
    fn type_rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int64(_) | Value::Date(_) | Value::Float64(_) => 2,
            Value::String(_) => 3,
        }
    }

    /// Three-valued-logic comparison: returns `None` if either side is NULL
    /// or the types are incomparable (SQL semantics: the predicate evaluates
    /// to UNKNOWN and the tuple is filtered out).
    pub fn compare(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => None,
            (Value::Int64(a), Value::Int64(b)) => Some(a.cmp(b)),
            (Value::Date(a), Value::Date(b)) => Some(a.cmp(b)),
            (Value::Int64(a), Value::Date(b)) | (Value::Date(a), Value::Int64(b)) => Some(a.cmp(b)),
            (Value::Float64(a), Value::Float64(b)) => a.partial_cmp(b),
            (Value::Int64(a), Value::Float64(b)) => (*a as f64).partial_cmp(b),
            (Value::Float64(a), Value::Int64(b)) => a.partial_cmp(&(*b as f64)),
            (Value::Bool(a), Value::Bool(b)) => Some(a.cmp(b)),
            (Value::String(a), Value::String(b)) => Some(a.as_str().cmp(b.as_str())),
            _ => None,
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Value {
        Value::Int64(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Float64(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::String(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::String(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("NULL"),
            Value::Int64(v) => write!(f, "{v}"),
            Value::Float64(v) => write!(f, "{v}"),
            Value::Bool(v) => write!(f, "{v}"),
            Value::Date(v) => write!(f, "date({v})"),
            Value::String(s) => write!(f, "{s:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_type_widths() {
        assert_eq!(DataType::Int64.fixed_width(), 8);
        assert_eq!(DataType::Bool.fixed_width(), 1);
        assert_eq!(DataType::String.fixed_width(), 8);
    }

    #[test]
    fn value_accessors() {
        assert_eq!(Value::Int64(7).as_i64(), Some(7));
        assert_eq!(Value::Date(7).as_i64(), Some(7));
        assert_eq!(Value::Float64(1.5).as_f64(), Some(1.5));
        assert_eq!(Value::Int64(2).as_f64(), Some(2.0));
        assert_eq!(Value::String("x".into()).as_str(), Some("x"));
        assert!(Value::Null.is_null());
        assert_eq!(Value::Null.data_type(), None);
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
    }

    #[test]
    fn null_comparisons_are_unknown() {
        assert_eq!(Value::Null.compare(&Value::Int64(1)), None);
        assert_eq!(Value::Int64(1).compare(&Value::Null), None);
    }

    #[test]
    fn total_cmp_is_a_lawful_total_order() {
        use Ordering::*;
        // NULL first, then bool < numeric < string.
        assert_eq!(Value::Null.total_cmp(&Value::Bool(false)), Less);
        assert_eq!(Value::Bool(true).total_cmp(&Value::Int64(0)), Less);
        assert_eq!(Value::Int64(9).total_cmp(&Value::String("a".into())), Less);
        // The numeric rank orders by exact value across Int64/Date/Float64 —
        // including the Date-vs-Float64 pair `compare` refuses.
        assert_eq!(Value::Date(3).total_cmp(&Value::Float64(3.5)), Less);
        assert_eq!(Value::Int64(3).total_cmp(&Value::Date(3)), Equal);
        assert_eq!(Value::Float64(3.0).total_cmp(&Value::Int64(3)), Equal);
        // Distinct large integers beyond 2^53 do NOT collide.
        let big = 1i64 << 60;
        assert_eq!(Value::Int64(big).total_cmp(&Value::Int64(big + 1)), Less);
        // NaN is ordered deterministically (after finite values).
        assert_eq!(Value::Float64(f64::NAN).total_cmp(&Value::Float64(1e300)), Greater);
        assert_eq!(Value::Float64(f64::NAN).total_cmp(&Value::Float64(f64::NAN)), Equal);
        // Spot-check transitivity over a mixed-type chain.
        let chain = [
            Value::Null,
            Value::Bool(true),
            Value::Int64(2),
            Value::Date(3),
            Value::Float64(3.5),
            Value::Int64(big),
            Value::Int64(big + 1),
            Value::String("x".into()),
        ];
        for w in chain.windows(2) {
            assert_eq!(w[0].total_cmp(&w[1]), Less, "{} < {}", w[0], w[1]);
        }
        for (i, a) in chain.iter().enumerate() {
            for b in &chain[i + 1..] {
                assert_eq!(a.total_cmp(b), Less, "{a} < {b}");
            }
        }
    }

    #[test]
    fn cross_numeric_comparisons() {
        use Ordering::*;
        assert_eq!(Value::Int64(1).compare(&Value::Float64(1.5)), Some(Less));
        assert_eq!(Value::Float64(2.5).compare(&Value::Int64(2)), Some(Greater));
        assert_eq!(Value::Int64(3).compare(&Value::Date(3)), Some(Equal));
        assert_eq!(Value::String("abc".into()).compare(&Value::String("abd".into())), Some(Less));
        // Incomparable types evaluate to UNKNOWN, not a panic.
        assert_eq!(Value::Bool(true).compare(&Value::Int64(1)), None);
    }
}

//! Shared foundation types for the `gfcl` graph DBMS.
//!
//! This crate defines the vocabulary every other crate speaks:
//!
//! * [`DataType`] / [`Value`] — the property type system of the property
//!   graph model (Section 2 of the paper).
//! * [`VertexId`] / [`EdgeId`] — the paper's vertex and edge ID schemes
//!   (Section 4): a vertex is `(label, label-level positional offset)`, an
//!   n-n edge is `(edge label, source vertex, page-level positional offset)`.
//! * [`MemoryUsage`] — exact heap accounting, used by the memory-reduction
//!   experiments (Table 2) so reported sizes are measurements.
//! * [`Error`] / [`Result`] — the error type shared by storage and engines.
//! * [`govern`] — per-query fault domains: the [`CancelToken`] tripped by
//!   budgets, users and storage faults, and the thread-local fault scope
//!   the storage layer reports into.
//! * [`codec`] — byte-level encode/decode primitives and the FNV-1a
//!   checksum of the on-disk paged format.

pub mod codec;
pub mod error;
pub mod govern;
pub mod ids;
pub mod mem;
pub mod types;

pub use codec::{fnv1a_64, Reader, Writer};
pub use error::{Error, Result};
pub use govern::{fault_scope, report_io_fault, CancelReason, CancelToken, FaultScope};
pub use ids::{Direction, EdgeId, LabelId, VertexId, VertexOffset};
pub use mem::{human_bytes, MemoryUsage};
pub use types::{DataType, Value};

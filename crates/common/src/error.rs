//! Error type shared by storage, planner and engines.

use std::fmt;

use crate::govern::CancelReason;

/// All errors surfaced by the `gfcl` crates.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// A vertex or edge label name not present in the catalog.
    UnknownLabel(String),
    /// A property name not defined for the given label.
    UnknownProperty { label: String, property: String },
    /// A value or expression had an unexpected type.
    TypeMismatch { expected: String, found: String },
    /// Query could not be planned (e.g. disconnected pattern, cycle).
    Plan(String),
    /// Runtime failure during execution.
    Exec(String),
    /// A storage layout cannot serve the requested access path (e.g. an
    /// edge property read against a CSR whose layout omitted edge IDs).
    Storage(String),
    /// Invalid argument to a storage structure or builder.
    Invalid(String),
    /// The query's fault domain was tripped before it completed: an
    /// explicit cancellation or an exceeded time/memory budget.
    /// `elapsed_ms` and `peak_bytes` describe the query at the moment the
    /// trip was observed (both `0` when the reporting site had no timing
    /// or accounting context).
    Canceled { reason: CancelReason, elapsed_ms: u64, peak_bytes: u64 },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::UnknownLabel(l) => write!(f, "unknown label: {l}"),
            Error::UnknownProperty { label, property } => {
                write!(f, "unknown property {property} on label {label}")
            }
            Error::TypeMismatch { expected, found } => {
                write!(f, "type mismatch: expected {expected}, found {found}")
            }
            Error::Plan(m) => write!(f, "planning error: {m}"),
            Error::Exec(m) => write!(f, "execution error: {m}"),
            Error::Storage(m) => write!(f, "storage error: {m}"),
            Error::Invalid(m) => write!(f, "invalid argument: {m}"),
            Error::Canceled { reason, elapsed_ms, peak_bytes } => write!(
                f,
                "query canceled ({reason}) after {elapsed_ms} ms, peak tracked memory \
                 {peak_bytes} bytes"
            ),
        }
    }
}

impl std::error::Error for Error {}

/// Convenience alias used across all `gfcl` crates.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = Error::UnknownProperty { label: "PERSON".into(), property: "agee".into() };
        assert!(e.to_string().contains("agee"));
        assert!(e.to_string().contains("PERSON"));
        let e = Error::TypeMismatch { expected: "INT64".into(), found: "STRING".into() };
        assert!(e.to_string().contains("INT64"));
    }
}

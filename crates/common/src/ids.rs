//! Vertex and edge identifier schemes (Sections 4.1.2 and 4.2 of the paper).
//!
//! * A vertex ID is a pair `(vertex label, label-level positional offset)`.
//!   Offsets of the same label are consecutive, so the offset doubles as the
//!   index into that label's vertex columns.
//! * An n-n edge ID is a triple `(edge label, source vertex ID, page-level
//!   positional offset)`. The page-level offset — together with the paper's
//!   single-indexed property pages — gives constant-time access to the
//!   edge's properties from *either* direction.
//!
//! In adjacency lists these IDs are never stored whole: Section 5.2 factors
//! out the edge label (lists are clustered by label), the neighbour's vertex
//! ID (it is the other member of the `(edge, neighbour)` pair) and, per the
//! Figure 6 decision tree, often the positional offset itself. The structs
//! here are the *logical* identifiers used at API boundaries.

use std::fmt;

/// Index of a vertex or edge label in the catalog. 16 bits: real property
/// graphs have tens of labels (LDBC: 8 vertex + 15 edge).
pub type LabelId = u16;

/// Label-level positional offset of a vertex: its index within all vertices
/// of its label, and therefore into the label's vertex columns.
pub type VertexOffset = u64;

/// Logical vertex identifier: `(label, label-level positional offset)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VertexId {
    pub label: LabelId,
    pub offset: VertexOffset,
}

impl VertexId {
    pub fn new(label: LabelId, offset: VertexOffset) -> Self {
        VertexId { label, offset }
    }
}

impl fmt::Display for VertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}:{}", self.label, self.offset)
    }
}

/// Logical n-n edge identifier per the paper's new scheme:
/// `(edge label, source vertex, page-level positional offset)`.
///
/// Two edges are equal iff all three components are equal; this is exactly
/// the identification property (i) the paper requires, while property (ii)
/// — reading the offset `o` directly from the ID — is what makes
/// opposite-direction property reads constant time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EdgeId {
    pub label: LabelId,
    /// Source vertex (or destination, if the property pages are indexed
    /// backward; the indexed direction is a per-label storage choice).
    pub src: VertexId,
    /// Page-level positional offset within the property page of
    /// `src.offset / k`.
    pub page_offset: u64,
}

impl EdgeId {
    pub fn new(label: LabelId, src: VertexId, page_offset: u64) -> Self {
        EdgeId { label, src, page_offset }
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}:({},{})", self.label, self.src, self.page_offset)
    }
}

/// Traversal direction of an adjacency index. Every GDBMS double-indexes
/// edges (Section 3): forward lists are grouped by source, backward lists by
/// destination.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    Fwd,
    Bwd,
}

impl Direction {
    /// The opposite direction.
    pub fn reverse(self) -> Direction {
        match self {
            Direction::Fwd => Direction::Bwd,
            Direction::Bwd => Direction::Fwd,
        }
    }

    /// Index (0/1) for direction-keyed two-element arrays.
    pub fn index(self) -> usize {
        match self {
            Direction::Fwd => 0,
            Direction::Bwd => 1,
        }
    }
}

impl fmt::Display for Direction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Direction::Fwd => "fwd",
            Direction::Bwd => "bwd",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vertex_id_ordering_groups_by_label() {
        let a = VertexId::new(0, 10);
        let b = VertexId::new(1, 0);
        assert!(a < b, "label is the major sort key");
    }

    #[test]
    fn edge_id_equality_uses_all_components() {
        let v = VertexId::new(2, 5);
        let e1 = EdgeId::new(1, v, 7);
        let e2 = EdgeId::new(1, v, 8);
        let e3 = EdgeId::new(1, VertexId::new(2, 6), 7);
        assert_ne!(e1, e2);
        assert_ne!(e1, e3);
        assert_eq!(e1, EdgeId::new(1, v, 7));
    }

    #[test]
    fn direction_reverse_roundtrips() {
        assert_eq!(Direction::Fwd.reverse(), Direction::Bwd);
        assert_eq!(Direction::Bwd.reverse().reverse(), Direction::Bwd);
        assert_eq!(Direction::Fwd.index(), 0);
        assert_eq!(Direction::Bwd.index(), 1);
    }
}

//! Exact heap-memory accounting.
//!
//! Table 2 of the paper reports the memory of each storage component under
//! each optimization step. To reproduce it as a *measurement* rather than an
//! estimate, every storage structure implements [`MemoryUsage`] and reports
//! the heap bytes it owns (capacity, not length, for growable containers —
//! matching what the allocator actually holds).

/// Heap bytes owned by a value (excluding the inline `size_of::<Self>()`
/// footprint, which callers add when relevant).
pub trait MemoryUsage {
    fn memory_bytes(&self) -> usize;
}

impl<T: Copy> MemoryUsage for Vec<T> {
    fn memory_bytes(&self) -> usize {
        self.capacity() * std::mem::size_of::<T>()
    }
}

impl<T: Copy> MemoryUsage for Box<[T]> {
    fn memory_bytes(&self) -> usize {
        self.len() * std::mem::size_of::<T>()
    }
}

impl MemoryUsage for String {
    fn memory_bytes(&self) -> usize {
        self.capacity()
    }
}

impl<T: MemoryUsage> MemoryUsage for Option<T> {
    fn memory_bytes(&self) -> usize {
        self.as_ref().map_or(0, MemoryUsage::memory_bytes)
    }
}

/// Heap bytes of a `Vec<String>`: the spine plus every string's buffer.
pub fn vec_string_bytes(v: &[String]) -> usize {
    std::mem::size_of_val(v) + v.iter().map(String::capacity).sum::<usize>()
}

/// Render a byte count as a human-readable string (`1.23 GB`, `456.7 MB`,
/// `12.3 KB`, `87 B`), used by the bench harnesses when printing tables.
pub fn human_bytes(bytes: usize) -> String {
    const KB: f64 = 1024.0;
    const MB: f64 = 1024.0 * 1024.0;
    const GB: f64 = 1024.0 * 1024.0 * 1024.0;
    let b = bytes as f64;
    if b >= GB {
        format!("{:.2} GB", b / GB)
    } else if b >= MB {
        format!("{:.2} MB", b / MB)
    } else if b >= KB {
        format!("{:.2} KB", b / KB)
    } else {
        format!("{bytes} B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_accounts_capacity() {
        let mut v: Vec<u64> = Vec::with_capacity(16);
        v.push(1);
        assert_eq!(v.memory_bytes(), 16 * 8);
    }

    #[test]
    fn boxed_slice_accounts_len() {
        let b: Box<[u32]> = vec![1, 2, 3].into_boxed_slice();
        assert_eq!(b.memory_bytes(), 12);
    }

    #[test]
    fn option_and_strings() {
        let s = String::from("hello");
        assert!(s.memory_bytes() >= 5);
        let o: Option<Vec<u8>> = None;
        assert_eq!(o.memory_bytes(), 0);
        let strings = vec![String::from("ab"), String::from("cdef")];
        assert!(vec_string_bytes(&strings) >= 2 * std::mem::size_of::<String>() + 6);
    }

    #[test]
    fn human_bytes_formats() {
        assert_eq!(human_bytes(512), "512 B");
        assert_eq!(human_bytes(2048), "2.00 KB");
        assert!(human_bytes(3 * 1024 * 1024).starts_with("3.00 MB"));
        assert!(human_bytes(5 * 1024 * 1024 * 1024).starts_with("5.00 GB"));
    }
}

//! Byte-level serialization primitives for the on-disk format.
//!
//! The container is offline (no serde); every persisted structure encodes
//! itself through [`Writer`] and decodes through [`Reader`]. All integers
//! are little-endian; strings are a `u64` length followed by UTF-8 bytes;
//! `Option<T>` is a one-byte tag. `Reader` never panics on malformed
//! input — every read returns [`Error::Storage`] on truncation so a
//! corrupted file fails cleanly at open time.

use crate::error::{Error, Result};
use crate::types::DataType;

/// Append-only byte sink for metadata encoding.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    pub fn new() -> Writer {
        Writer { buf: Vec::new() }
    }

    /// The encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    pub fn bytes(&mut self, b: &[u8]) {
        self.buf.extend_from_slice(b);
    }

    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn str(&mut self, s: &str) {
        self.usize(s.len());
        self.bytes(s.as_bytes());
    }

    /// Encode a [`DataType`] as a one-byte tag. The single tag table all
    /// persisted structures share — keep in sync with [`Reader::dtype`].
    pub fn dtype(&mut self, dt: DataType) {
        self.u8(match dt {
            DataType::Int64 => 0,
            DataType::Float64 => 1,
            DataType::Bool => 2,
            DataType::String => 3,
            DataType::Date => 4,
        });
    }

    /// Encode an optional value: a presence byte, then the value.
    pub fn opt<T>(&mut self, v: Option<T>, mut enc: impl FnMut(&mut Writer, T)) {
        match v {
            Some(x) => {
                self.u8(1);
                enc(self, x);
            }
            None => self.u8(0),
        }
    }
}

/// Bounds-checked cursor over encoded bytes.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(Error::Storage(format!(
                "truncated metadata: wanted {n} bytes, {} left",
                self.remaining()
            )));
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    pub fn u8(&mut self) -> Result<u8> {
        Ok(self.bytes(1)?[0])
    }

    pub fn bool(&mut self) -> Result<bool> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            t => Err(Error::Storage(format!("invalid bool tag {t}"))),
        }
    }

    pub fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.bytes(4)?.try_into().expect("4 bytes")))
    }

    pub fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.bytes(8)?.try_into().expect("8 bytes")))
    }

    pub fn usize(&mut self) -> Result<usize> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| Error::Storage(format!("length {v} exceeds usize")))
    }

    /// A `usize` that must also be a plausible element count for the
    /// remaining input (each element at least one byte) — rejects absurd
    /// lengths from corrupted files before any allocation.
    pub fn count(&mut self) -> Result<usize> {
        let n = self.usize()?;
        if n > self.remaining() {
            return Err(Error::Storage(format!(
                "corrupt element count {n} with only {} bytes left",
                self.remaining()
            )));
        }
        Ok(n)
    }

    pub fn i64(&mut self) -> Result<i64> {
        Ok(i64::from_le_bytes(self.bytes(8)?.try_into().expect("8 bytes")))
    }

    pub fn f64(&mut self) -> Result<f64> {
        Ok(f64::from_le_bytes(self.bytes(8)?.try_into().expect("8 bytes")))
    }

    pub fn str(&mut self) -> Result<String> {
        let n = self.count()?;
        let raw = self.bytes(n)?;
        String::from_utf8(raw.to_vec()).map_err(|_| Error::Storage("invalid UTF-8".into()))
    }

    /// Decode a [`Writer::dtype`] tag.
    pub fn dtype(&mut self) -> Result<DataType> {
        Ok(match self.u8()? {
            0 => DataType::Int64,
            1 => DataType::Float64,
            2 => DataType::Bool,
            3 => DataType::String,
            4 => DataType::Date,
            t => return Err(Error::Storage(format!("invalid dtype tag {t}"))),
        })
    }

    /// Decode an optional value written by [`Writer::opt`].
    pub fn opt<T>(
        &mut self,
        mut dec: impl FnMut(&mut Reader<'a>) -> Result<T>,
    ) -> Result<Option<T>> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(dec(self)?)),
            t => Err(Error::Storage(format!("invalid option tag {t}"))),
        }
    }
}

/// FNV-1a over `data`: the per-page and metadata checksum of the on-disk
/// format. Not cryptographic — it guards against torn writes and
/// truncation, like the CRCs of classic database page headers.
pub fn fnv1a_64(data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_primitives() {
        let mut w = Writer::new();
        w.u8(7);
        w.bool(true);
        w.u32(123_456);
        w.u64(u64::MAX - 3);
        w.i64(-42);
        w.f64(2.5);
        w.str("héllo");
        w.opt(Some(9u64), Writer::u64);
        w.opt(None::<u64>, Writer::u64);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert!(r.bool().unwrap());
        assert_eq!(r.u32().unwrap(), 123_456);
        assert_eq!(r.u64().unwrap(), u64::MAX - 3);
        assert_eq!(r.i64().unwrap(), -42);
        assert_eq!(r.f64().unwrap(), 2.5);
        assert_eq!(r.str().unwrap(), "héllo");
        assert_eq!(r.opt(Reader::u64).unwrap(), Some(9));
        assert_eq!(r.opt(Reader::u64).unwrap(), None);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn truncation_is_a_storage_error() {
        let mut w = Writer::new();
        w.u64(1);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes[..5]);
        assert!(matches!(r.u64(), Err(Error::Storage(_))));
    }

    #[test]
    fn absurd_count_is_rejected() {
        let mut w = Writer::new();
        w.usize(usize::MAX / 2);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert!(matches!(r.count(), Err(Error::Storage(_))));
    }

    #[test]
    fn fnv_is_stable_and_input_sensitive() {
        assert_eq!(fnv1a_64(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv1a_64(b"abc"), fnv1a_64(b"abd"));
        assert_eq!(fnv1a_64(b"abc"), fnv1a_64(b"abc"));
    }
}

//! Cancellation primitives shared by every layer of the query fault
//! domain.
//!
//! A query's fault domain is one [`CancelToken`]: a shared atomic flag the
//! executor checks at morsel boundaries and the storage layer trips when a
//! post-open page read fails for good. The token lives here — below both
//! the columnar and core crates — because the *reporting* side (the paged
//! array's page-pin fallback) and the *checking* side (the pipeline
//! driver) sit on opposite ends of the dependency graph.
//!
//! The storage layer finds the owning query's token through a thread-local
//! stack installed by [`fault_scope`]: the driver pushes the token on every
//! worker thread for the duration of the query, so a failed page pin deep
//! inside a column read can cancel exactly the query that touched it —
//! other queries on healthy pages never observe the fault.

use std::cell::RefCell;
use std::fmt;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Arc, Mutex};

use crate::error::{Error, Result};

/// Why a query's fault domain was tripped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelReason {
    /// Explicit cancellation through [`CancelToken::cancel`] (a user or
    /// admission controller killed the query).
    User,
    /// The query exceeded its [`QueryBudget`](crate::govern) time limit.
    Timeout,
    /// The query's tracked allocations exceeded its memory limit.
    Memory,
    /// A post-open storage read failed after retries; the detail message
    /// lives on the token and surfaces as [`Error::Storage`].
    Io,
}

impl fmt::Display for CancelReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CancelReason::User => write!(f, "user request"),
            CancelReason::Timeout => write!(f, "time limit"),
            CancelReason::Memory => write!(f, "memory limit"),
            CancelReason::Io => write!(f, "I/O error"),
        }
    }
}

const LIVE: u8 = 0;

fn reason_code(reason: CancelReason) -> u8 {
    match reason {
        CancelReason::User => 1,
        CancelReason::Timeout => 2,
        CancelReason::Memory => 3,
        CancelReason::Io => 4,
    }
}

fn code_reason(code: u8) -> Option<CancelReason> {
    match code {
        1 => Some(CancelReason::User),
        2 => Some(CancelReason::Timeout),
        3 => Some(CancelReason::Memory),
        4 => Some(CancelReason::Io),
        _ => None,
    }
}

/// A shared, atomic cancellation flag: the heart of one query fault
/// domain.
///
/// The first `cancel` wins; later cancellations (and later I/O details)
/// are ignored, so the error a query reports names the *original* trip
/// cause even when the cancellation races follow-on failures. Checking is
/// one relaxed atomic load — cheap enough for per-morsel polling.
#[derive(Debug, Default)]
pub struct CancelToken {
    state: AtomicU8,
    /// Detail message for [`CancelReason::Io`], set (once) before the
    /// state flips so a reader that observes `Io` always finds it.
    detail: Mutex<Option<String>>,
}

impl CancelToken {
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Trip the token. The first reason sticks; this call is a no-op on an
    /// already-tripped token.
    pub fn cancel(&self, reason: CancelReason) {
        let _ = self.state.compare_exchange(
            LIVE,
            reason_code(reason),
            Ordering::AcqRel,
            Ordering::Acquire,
        );
    }

    /// Trip the token with [`CancelReason::Io`] and a human-readable
    /// detail (the storage error message).
    pub fn cancel_io(&self, detail: impl Into<String>) {
        {
            // lint: allow(a poisoned detail lock means a panic mid-cancel;
            // losing the message beats unwinding the storage layer)
            let mut slot = match self.detail.lock() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
            if slot.is_none() {
                *slot = Some(detail.into());
            }
        }
        self.cancel(CancelReason::Io);
    }

    /// The trip reason, or `None` while the domain is healthy.
    pub fn reason(&self) -> Option<CancelReason> {
        code_reason(self.state.load(Ordering::Acquire))
    }

    pub fn is_canceled(&self) -> bool {
        self.reason().is_some()
    }

    /// The I/O detail message, when the token tripped on `Io`.
    pub fn io_detail(&self) -> Option<String> {
        let slot = match self.detail.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        slot.clone()
    }

    /// Re-arm a tripped token so the owning engine can run further
    /// queries. Only the token's owner should call this — a query in
    /// flight would lose its pending cancellation.
    pub fn reset(&self) {
        self.state.store(LIVE, Ordering::Release);
        let mut slot = match self.detail.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        *slot = None;
    }

    /// Convert the trip state into the error the owning query reports:
    /// `Ok(())` while healthy, [`Error::Storage`] for I/O trips, and
    /// [`Error::Canceled`] otherwise. Callers with timing/memory context
    /// (the query governor) build richer `Canceled` errors themselves.
    pub fn check(&self) -> Result<()> {
        match self.reason() {
            None => Ok(()),
            Some(CancelReason::Io) => Err(Error::Storage(
                self.io_detail().unwrap_or_else(|| "storage read failed".into()),
            )),
            Some(reason) => Err(Error::Canceled { reason, elapsed_ms: 0, peak_bytes: 0 }),
        }
    }
}

thread_local! {
    /// Stack of fault domains active on this thread (a stack, not a slot,
    /// so nested scopes — e.g. a merge running inside a governed task —
    /// restore the outer domain on drop).
    static ACTIVE: RefCell<Vec<Arc<CancelToken>>> = const { RefCell::new(Vec::new()) };
}

/// Guard returned by [`fault_scope`]; uninstalls the token on drop.
#[must_use = "the fault domain is uninstalled when this guard drops"]
pub struct FaultScope {
    _not_send: std::marker::PhantomData<*const ()>,
}

impl Drop for FaultScope {
    fn drop(&mut self) {
        ACTIVE.with(|s| {
            s.borrow_mut().pop();
        });
    }
}

/// Install `token` as the current thread's fault domain for the lifetime
/// of the returned guard. Storage faults reported through
/// [`report_io_fault`] while the guard lives cancel this token.
pub fn fault_scope(token: &Arc<CancelToken>) -> FaultScope {
    ACTIVE.with(|s| s.borrow_mut().push(Arc::clone(token)));
    FaultScope { _not_send: std::marker::PhantomData }
}

/// Report a post-open storage fault to the innermost fault domain on this
/// thread. Returns `true` when a domain was installed (the owning query
/// will observe the cancellation at its next checkpoint); `false` when no
/// domain is active — the caller must then fail loudly rather than let
/// placeholder data masquerade as a result.
pub fn report_io_fault(detail: &str) -> bool {
    ACTIVE.with(|s| match s.borrow().last() {
        Some(token) => {
            token.cancel_io(detail);
            true
        }
        None => false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_cancel_wins() {
        let t = CancelToken::new();
        assert_eq!(t.reason(), None);
        t.cancel(CancelReason::Timeout);
        t.cancel(CancelReason::User);
        assert_eq!(t.reason(), Some(CancelReason::Timeout));
        t.reset();
        assert_eq!(t.reason(), None);
    }

    #[test]
    fn io_detail_reaches_check() {
        let t = CancelToken::new();
        t.cancel_io("page 7 read failed");
        t.cancel_io("a later fault");
        assert_eq!(t.reason(), Some(CancelReason::Io));
        let err = t.check().unwrap_err();
        assert_eq!(err, Error::Storage("page 7 read failed".into()));
    }

    #[test]
    fn check_maps_reasons_to_canceled() {
        let t = CancelToken::new();
        assert!(t.check().is_ok());
        t.cancel(CancelReason::Memory);
        match t.check().unwrap_err() {
            Error::Canceled { reason, .. } => assert_eq!(reason, CancelReason::Memory),
            e => panic!("unexpected error {e:?}"),
        }
    }

    #[test]
    fn fault_scope_installs_and_nests() {
        assert!(!report_io_fault("no domain"), "no scope installed");
        let outer = Arc::new(CancelToken::new());
        let inner = Arc::new(CancelToken::new());
        {
            let _a = fault_scope(&outer);
            {
                let _b = fault_scope(&inner);
                assert!(report_io_fault("inner fault"));
            }
            assert!(inner.is_canceled());
            assert!(!outer.is_canceled(), "inner domain absorbed the fault");
            assert!(report_io_fault("outer fault"));
        }
        assert!(outer.is_canceled());
        assert!(!report_io_fault("dropped"), "scopes uninstalled");
    }

    #[test]
    fn scope_pops_even_after_panic() {
        let token = Arc::new(CancelToken::new());
        let r = std::panic::catch_unwind(|| {
            let _s = fault_scope(&token);
            panic!("boom");
        });
        assert!(r.is_err());
        assert!(!report_io_fault("after unwind"), "guard popped during unwind");
    }
}

//! CLI entry point: `cargo run -p gfcl-analyze` from anywhere inside the
//! workspace. Prints one `file:line [rule] message` per finding and exits
//! non-zero if any survive, so CI can gate on it directly.

use std::process::ExitCode;

fn main() -> ExitCode {
    let cwd = match std::env::current_dir() {
        Ok(d) => d,
        Err(e) => {
            eprintln!("gfcl-analyze: cannot determine current dir: {e}");
            return ExitCode::FAILURE;
        }
    };
    let Some(root) = gfcl_analyze::find_workspace_root(&cwd) else {
        eprintln!("gfcl-analyze: no workspace Cargo.toml found above {}", cwd.display());
        return ExitCode::FAILURE;
    };
    match gfcl_analyze::scan_workspace(&root) {
        Ok((nfiles, findings)) if findings.is_empty() => {
            println!("gfcl-analyze: {nfiles} files scanned, 0 findings");
            ExitCode::SUCCESS
        }
        Ok((nfiles, findings)) => {
            for f in &findings {
                println!("{f}");
            }
            println!("gfcl-analyze: {nfiles} files scanned, {} findings", findings.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("gfcl-analyze: {e}");
            ExitCode::FAILURE
        }
    }
}

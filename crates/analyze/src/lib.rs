//! `gfcl-analyze` — the workspace conformance linter.
//!
//! A dependency-free, line-based static scanner (the container is offline;
//! no syn, no regex) enforcing the house rules that `rustfmt` and `clippy`
//! do not:
//!
//! | rule | scope | what it flags |
//! |------|-------|---------------|
//! | `hot-panic` | executor/pager hot paths | `unwrap()`, `expect(`, `panic!`, `unreachable!`, `todo!`, `unimplemented!`, non-debug `assert!` |
//! | `read-path-panic` | post-open page-read path | panicking macros, rejected even under `// lint: allow` — the policy is error propagation into the owning query |
//! | `hot-index` | executor/pager hot paths | indexing/slicing whose bracket expression contains arithmetic |
//! | `unsafe-no-safety` | every source file | `unsafe` without a `// SAFETY:` comment on or above the line |
//! | `as-cast` | codec/format files | narrowing `as` casts where `try_from` exists |
//! | `pub-undocumented` | the facade `src/lib.rs` | top-level `pub` items without a doc comment |
//!
//! A finding is suppressed by a `// lint: allow(reason)` comment on the
//! same line or the line above — the annotation *is* the justification and
//! is what turns "panic in a hot path" into "documented invariant".
//!
//! Two structural conventions keep the scanner honest without a parser:
//! test modules are file tails behind `#[cfg(test)]` (scanning stops
//! there), and line comments/doc comments are skipped entirely.

use std::fmt;
use std::path::{Path, PathBuf};

/// One rule violation at a source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Rule tag, e.g. `hot-panic`.
    pub rule: &'static str,
    /// Human-readable description of the violation.
    pub msg: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{} [{}] {}", self.file, self.line, self.rule, self.msg)
    }
}

/// Which rule groups apply to a file, derived from its workspace path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FileClass {
    /// Executor / driver / pager hot paths: a panic here takes down a
    /// worker mid-query; a mis-indexing is a morsel-boundary bug.
    pub hot_path: bool,
    /// Byte-level codec and on-disk format code: a silent `as` truncation
    /// here corrupts persisted data.
    pub codec: bool,
    /// The facade crate root: its public surface is the documented API.
    pub facade: bool,
    /// The post-open page-read path: since the fault-domain work its
    /// policy is error propagation into the owning query, so panicking
    /// macros are rejected *unconditionally* — `// lint: allow` cannot
    /// reintroduce panic-by-policy here (`unwrap`/`expect` stay
    /// suppressible for poisoned-lock handling).
    pub read_path: bool,
}

/// Files on the query/page hot path (see `ARCHITECTURE.md`).
const HOT_PATHS: &[&str] = &[
    "crates/core/src/exec.rs",
    "crates/core/src/driver.rs",
    "crates/columnar/src/paged.rs",
    "crates/storage/src/pager.rs",
    // The frontend's lexer and parser face arbitrary user text: a panic
    // here is a denial-of-service on any REPL/service embedding; errors
    // must flow out as Diagnostics (the parser proptests check this
    // dynamically, the lint keeps panicking calls out statically).
    "crates/frontend/src/lexer.rs",
    "crates/frontend/src/parser.rs",
    // The write path: every Scan/Extend over a mutated graph reads the
    // delta overlay per row, and the WAL sits on every commit. A panic in
    // either corrupts no data (the WAL is write-ahead) but kills the
    // writer with the global write lock held — errors must flow out as
    // Error::Storage so recovery stays an open() away.
    "crates/storage/src/delta.rs",
    "crates/storage/src/wal.rs",
    // The governor sits on every morsel boundary (token check, memory
    // accounting): a panic here kills the very machinery that exists to
    // turn failures into per-query errors.
    "crates/common/src/govern.rs",
    "crates/core/src/govern.rs",
];

/// The post-open page-read path, where the policy since the fault-domain
/// work is *error propagation*: a failed or corrupt page read becomes the
/// owning query's `Error::Storage`, never a process panic. Panicking
/// macros here are rejected even with a `// lint: allow` annotation.
const READ_PATHS: &[&str] = &["crates/storage/src/pager.rs"];

/// Codec / on-disk-format files where checked conversions exist.
const CODEC_PATHS: &[&str] =
    &["crates/common/src/codec.rs", "crates/storage/src/format.rs", "crates/columnar/src/paged.rs"];

/// Classify a workspace-relative path into its applicable rule groups.
pub fn classify(rel_path: &str) -> FileClass {
    FileClass {
        hot_path: HOT_PATHS.contains(&rel_path),
        codec: CODEC_PATHS.contains(&rel_path),
        facade: rel_path == "src/lib.rs",
        read_path: READ_PATHS.contains(&rel_path),
    }
}

/// Narrowing `as` cast targets: converting into these can silently drop
/// bits (or sign), and `TryFrom` exists for every one of them. Widening
/// targets (`u64`, `i64` from narrower, `f64`) are not flagged.
const NARROWING_TARGETS: &[&str] =
    &["u8", "u16", "u32", "i8", "i16", "i32", "usize", "isize", "f32"];

/// Replace the contents of string literals with spaces (quotes kept), so
/// rule patterns never match inside message text. Handles escapes; raw
/// strings are treated as plain (good enough for this workspace).
fn blank_strings(line: &str) -> String {
    let mut out = String::with_capacity(line.len());
    let mut chars = line.chars().peekable();
    let mut in_str = false;
    while let Some(c) = chars.next() {
        if in_str {
            match c {
                '\\' => {
                    out.push(' ');
                    if chars.next().is_some() {
                        out.push(' ');
                    }
                }
                '"' => {
                    in_str = false;
                    out.push('"');
                }
                _ => out.push(' '),
            }
        } else {
            if c == '"' {
                in_str = true;
            }
            out.push(c);
        }
    }
    out
}

/// Does `line` contain `pat` at a position not preceded by `not_after`?
/// Used to match `assert!(` but not `debug_assert!(`.
fn contains_not_after(line: &str, pat: &str, not_after: &str) -> bool {
    let mut from = 0;
    while let Some(i) = line[from..].find(pat) {
        let at = from + i;
        if !line[..at].ends_with(not_after) {
            return true;
        }
        from = at + pat.len();
    }
    false
}

/// Does any bracketed `[...]` expression on this line contain a spaced
/// binary arithmetic operator? `v[i]`, `v[*node]`, `v[a..b]` pass;
/// `v[i * W..]`, `page[byte % N..]` are flagged — offset arithmetic at an
/// indexing site is exactly where off-by-one and overflow bugs live.
fn has_arithmetic_index(line: &str) -> bool {
    let bytes = line.as_bytes();
    let mut depth = 0usize;
    let mut seg_start = 0usize;
    for (i, &b) in bytes.iter().enumerate() {
        match b {
            b'[' => {
                if depth == 0 {
                    seg_start = i + 1;
                }
                depth += 1;
            }
            b']' if depth > 0 => {
                depth -= 1;
                if depth == 0 {
                    let seg = &line[seg_start..i];
                    if [" + ", " - ", " * ", " / ", " % "].iter().any(|op| seg.contains(op)) {
                        return true;
                    }
                }
            }
            _ => {}
        }
    }
    false
}

/// Is this a narrowing `as` cast line? Returns the offending target type.
fn narrowing_cast(line: &str) -> Option<&'static str> {
    let mut from = 0;
    while let Some(i) = line[from..].find(" as ") {
        let after = &line[from + i + 4..];
        let token: String =
            after.chars().take_while(|c| c.is_ascii_alphanumeric() || *c == '_').collect();
        if let Some(t) = NARROWING_TARGETS.iter().find(|t| **t == token) {
            return Some(t);
        }
        from += i + 4;
    }
    None
}

/// Scan one file's source under `class`, returning every unsuppressed
/// finding. `rel_path` is used only for labeling.
pub fn scan_source(rel_path: &str, source: &str, class: FileClass) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut prev_lines: Vec<&str> = Vec::new();
    for (idx, raw) in source.lines().enumerate() {
        let lineno = idx + 1;
        let trimmed = raw.trim_start();
        // House style: the test module is the file's tail. Nothing after
        // it is shipped code, so the scan stops.
        if trimmed.starts_with("#[cfg(test)]") {
            break;
        }
        let is_comment = trimmed.starts_with("//");
        // Suppressed if the annotation is inline, or anywhere in the
        // contiguous comment block directly above (justifications are
        // encouraged to wrap onto continuation lines).
        let allowed = raw.contains("// lint: allow(") || {
            let mut found = false;
            for l in prev_lines.iter().rev().map(|l| l.trim_start()).skip_while(|l| l.is_empty()) {
                if !l.starts_with("//") {
                    break;
                }
                if l.starts_with("// lint: allow(") {
                    found = true;
                    break;
                }
            }
            found
        };
        let line = blank_strings(raw);
        if !is_comment && class.read_path {
            let panicking = ["panic!(", "unreachable!(", "todo!(", "unimplemented!("]
                .iter()
                .any(|p| line.contains(p))
                || ["assert!(", "assert_eq!(", "assert_ne!("]
                    .iter()
                    .any(|p| contains_not_after(&line, p, "debug_"));
            if panicking {
                // Deliberately bypasses `emit` (and thus the allow
                // annotation): panic-by-policy was removed from this path
                // and must not creep back behind a justification comment.
                findings.push(Finding {
                    file: rel_path.to_owned(),
                    line: lineno,
                    rule: "read-path-panic",
                    msg: "panicking macro on the post-open page-read path: this path's \
                          policy is error propagation (retry, then Error::Storage into \
                          the owning query) — `// lint: allow` does not apply here"
                        .into(),
                });
            }
        }
        let mut emit = |rule: &'static str, msg: String| {
            if !allowed {
                findings.push(Finding { file: rel_path.to_owned(), line: lineno, rule, msg });
            }
        };

        if !is_comment {
            if class.hot_path {
                for pat in [
                    ".unwrap()",
                    ".expect(",
                    "panic!(",
                    "unreachable!(",
                    "todo!(",
                    "unimplemented!(",
                ] {
                    if line.contains(pat) {
                        emit(
                            "hot-panic",
                            format!(
                                "`{}` on a query/page hot path: convert to Error::Plan/\
                                 Error::Storage or justify with `// lint: allow(reason)`",
                                pat.trim_start_matches('.')
                            ),
                        );
                    }
                }
                if ["assert!(", "assert_eq!(", "assert_ne!("]
                    .iter()
                    .any(|p| contains_not_after(&line, p, "debug_"))
                {
                    emit(
                        "hot-panic",
                        "bare assert on a hot path: use a named invariant helper with a \
                         diagnosable message, or `debug_assert!`"
                            .into(),
                    );
                }
                if has_arithmetic_index(&line) {
                    emit(
                        "hot-index",
                        "arithmetic inside an indexing/slicing expression on a hot path: \
                         hoist into a named bound or justify with `// lint: allow(reason)`"
                            .into(),
                    );
                }
            }
            if class.codec {
                if let Some(t) = narrowing_cast(&line) {
                    emit(
                        "as-cast",
                        format!(
                            "narrowing `as {t}` in codec/format code: use `{t}::try_from` \
                             (corruption must surface as Error::Storage, not truncation)"
                        ),
                    );
                }
            }
            // `unsafe` anywhere requires a SAFETY comment in the three
            // preceding lines (or inline). The workspace currently has
            // zero unsafe blocks; this keeps it justified if one appears.
            if (line.contains("unsafe ") || line.contains("unsafe{"))
                && !raw.contains("// SAFETY:")
                && !prev_lines.iter().rev().take(3).any(|l| l.contains("// SAFETY:"))
            {
                emit(
                    "unsafe-no-safety",
                    "`unsafe` without a `// SAFETY:` comment explaining the proof obligation"
                        .into(),
                );
            }
        }
        if class.facade && !raw.starts_with(' ') && trimmed.starts_with("pub ") {
            let documented = prev_lines
                .iter()
                .rev()
                .map(|l| l.trim_start())
                .find(|l| !l.starts_with("#[") && !l.starts_with("#!["))
                .is_some_and(|l| l.starts_with("///") || l.starts_with("//!"));
            if !documented {
                emit(
                    "pub-undocumented",
                    "public facade item without a doc comment: the facade is the documented \
                     API surface"
                        .into(),
                );
            }
        }
        prev_lines.push(raw);
    }
    findings
}

/// Recursively collect `.rs` files under `dir` (sorted for determinism).
fn rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<_> = std::fs::read_dir(dir)?.collect::<std::io::Result<Vec<_>>>()?;
    entries.sort_by_key(std::fs::DirEntry::path);
    for e in entries {
        let p = e.path();
        if p.is_dir() {
            rs_files(&p, out)?;
        } else if p.extension().is_some_and(|x| x == "rs") {
            out.push(p);
        }
    }
    Ok(())
}

/// Scan the whole workspace rooted at `root`: every crate under `crates/`
/// plus the facade `src/`. Vendored stand-ins and build output are out of
/// scope. Returns all findings, sorted by file then line.
pub fn scan_workspace(root: &Path) -> Result<(usize, Vec<Finding>), String> {
    let mut files = Vec::new();
    let crates = root.join("crates");
    let mut roots: Vec<PathBuf> = vec![root.join("src")];
    let mut crate_dirs: Vec<_> = std::fs::read_dir(&crates)
        .map_err(|e| format!("read {}: {e}", crates.display()))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    roots.extend(crate_dirs.into_iter().map(|d| d.join("src")));
    for r in roots {
        if r.is_dir() {
            rs_files(&r, &mut files).map_err(|e| format!("walk {}: {e}", r.display()))?;
        }
    }
    let mut findings = Vec::new();
    for f in &files {
        let rel = f
            .strip_prefix(root)
            .map_err(|_| format!("{} escapes the workspace", f.display()))?
            .to_string_lossy()
            .into_owned();
        let source =
            std::fs::read_to_string(f).map_err(|e| format!("read {}: {e}", f.display()))?;
        findings.extend(scan_source(&rel, &source, classify(&rel)));
    }
    findings.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok((files.len(), findings))
}

/// Locate the workspace root: the nearest ancestor of `start` whose
/// `Cargo.toml` declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(s) = std::fs::read_to_string(&manifest) {
            if s.contains("[workspace]") {
                return Some(d.to_path_buf());
            }
        }
        dir = d.parent();
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hot() -> FileClass {
        FileClass { hot_path: true, ..FileClass::default() }
    }

    fn rules(src: &str, class: FileClass) -> Vec<&'static str> {
        scan_source("t.rs", src, class).into_iter().map(|f| f.rule).collect()
    }

    #[test]
    fn hot_panic_flags_each_macro_and_method() {
        for src in [
            "let x = v.unwrap();",
            "let x = v.expect(\"msg\");",
            "panic!(\"boom\");",
            "unreachable!(\"no\");",
            "assert!(a > b);",
            "assert_eq!(a, b);",
        ] {
            assert_eq!(rules(src, hot()), vec!["hot-panic"], "{src}");
        }
    }

    #[test]
    fn debug_asserts_and_cold_files_pass() {
        assert!(rules("debug_assert!(a > b);", hot()).is_empty());
        assert!(rules("debug_assert_eq!(a, b);", hot()).is_empty());
        assert!(rules("let x = v.unwrap();", FileClass::default()).is_empty());
    }

    #[test]
    fn allow_annotations_suppress_same_line_and_line_above() {
        assert!(rules("v.unwrap() // lint: allow(len checked above)", hot()).is_empty());
        assert!(
            rules("// lint: allow(poisoned lock is fatal)\nv.lock().unwrap();", hot()).is_empty()
        );
        // A blank line between annotation and site still counts; unrelated
        // code in between does not.
        assert!(rules("// lint: allow(x)\n\nv.unwrap();", hot()).is_empty());
        assert_eq!(rules("// lint: allow(x)\nlet a = 1;\nv.unwrap();", hot()), vec!["hot-panic"]);
        // A justification wrapping onto continuation comment lines covers
        // the site below the whole block.
        assert!(
            rules("// lint: allow(reason that\n// wraps two lines)\nv.unwrap();", hot()).is_empty()
        );
    }

    #[test]
    fn test_module_tail_and_comments_are_skipped() {
        let src = "fn f() {}\n#[cfg(test)]\nmod tests {\n    fn g() { v.unwrap(); }\n}\n";
        assert!(rules(src, hot()).is_empty());
        assert!(rules("// calls v.unwrap() eventually", hot()).is_empty());
        assert!(rules("/// panics: via panic!( on bad input", hot()).is_empty());
    }

    #[test]
    fn string_literals_do_not_trip_rules() {
        assert!(rules(r#"let m = "call panic!( here";"#, hot()).is_empty());
        assert!(rules(
            r#"let m = "cast as u32 stays";"#,
            FileClass { codec: true, ..FileClass::default() }
        )
        .is_empty());
    }

    #[test]
    fn hot_index_flags_arithmetic_only() {
        assert_eq!(rules("let x = page[byte % PAGE_SIZE..];", hot()), vec!["hot-index"]);
        assert_eq!(rules("let x = raw[i * W..j];", hot()), vec!["hot-index"]);
        assert!(rules("let x = v[i];", hot()).is_empty());
        assert!(rules("let x = v[*node];", hot()).is_empty());
        assert!(rules("let x = v[a..b];", hot()).is_empty());
    }

    #[test]
    fn as_cast_flags_narrowing_not_widening() {
        let codec = FileClass { codec: true, ..FileClass::default() };
        assert_eq!(rules("let n = len as usize;", codec), vec!["as-cast"]);
        assert_eq!(rules("h.u32(PAGE_SIZE as u32);", codec), vec!["as-cast"]);
        assert!(rules("let n = len as u64;", codec).is_empty());
        assert!(rules("let f = x as f64;", codec).is_empty());
        assert!(rules("let n = len as usize;", FileClass::default()).is_empty());
    }

    #[test]
    fn unsafe_requires_safety_comment() {
        assert_eq!(rules("unsafe { ptr.read() }", FileClass::default()), vec!["unsafe-no-safety"]);
        assert!(rules(
            "// SAFETY: ptr is valid for reads\nunsafe { ptr.read() }",
            FileClass::default()
        )
        .is_empty());
        assert!(rules("unsafe { ptr.read() } // SAFETY: valid", FileClass::default()).is_empty());
    }

    #[test]
    fn facade_pub_items_need_docs() {
        let facade = FileClass { facade: true, ..FileClass::default() };
        assert_eq!(rules("pub use gfcl_core::Engine;", facade), vec!["pub-undocumented"]);
        assert!(rules("/// The engine trait.\npub use gfcl_core::Engine;", facade).is_empty());
        assert!(rules("/// Doc.\n#[derive(Debug)]\npub struct X;", facade).is_empty());
        // Indented (nested) pub items inherit the module's doc.
        assert!(rules("    pub use gfcl_columnar::*;", facade).is_empty());
    }

    #[test]
    fn read_path_rejects_panics_even_with_allow() {
        let rp = FileClass { read_path: true, ..FileClass::default() };
        for src in [
            "panic!(\"page {page_no} unreadable\");",
            "unreachable!();",
            "assert!(checksum == expected);",
            "assert_eq!(a, b);",
            // The allow escape hatch must NOT suppress the rule.
            "panic!(\"boom\") // lint: allow(post-open policy)",
            "// lint: allow(justified?)\nunreachable!();",
        ] {
            assert!(
                rules(src, rp).contains(&"read-path-panic"),
                "{src:?} must be rejected on the read path"
            );
        }
        // unwrap/expect stay suppressible (poisoned-lock handling) and are
        // not read-path findings; debug_assert is always fine.
        assert!(rules("// lint: allow(poisoned lock)\nm.lock().unwrap();", rp).is_empty());
        assert!(rules("debug_assert!(a < b);", rp).is_empty());
    }

    #[test]
    fn classify_matches_the_rule_scopes() {
        assert!(classify("crates/core/src/exec.rs").hot_path);
        assert!(classify("crates/columnar/src/paged.rs").hot_path);
        assert!(classify("crates/columnar/src/paged.rs").codec);
        assert!(classify("crates/common/src/codec.rs").codec);
        assert!(classify("crates/frontend/src/lexer.rs").hot_path);
        assert!(classify("crates/frontend/src/parser.rs").hot_path);
        assert!(!classify("crates/frontend/src/binder.rs").hot_path);
        assert!(classify("crates/storage/src/delta.rs").hot_path);
        assert!(classify("crates/storage/src/wal.rs").hot_path);
        assert!(!classify("crates/storage/src/store.rs").hot_path);
        assert!(classify("crates/common/src/govern.rs").hot_path);
        assert!(classify("crates/core/src/govern.rs").hot_path);
        assert!(classify("crates/storage/src/pager.rs").read_path);
        assert!(!classify("crates/storage/src/format.rs").read_path);
        assert!(classify("src/lib.rs").facade);
        assert_eq!(classify("crates/core/src/plan.rs"), FileClass::default());
    }
}

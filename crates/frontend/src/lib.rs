//! Text query frontend: parse → bind → [`PatternQuery`].
//!
//! A small Cypher-like language over the existing query model:
//!
//! ```text
//! MATCH (a:Person)-[k:knows]->(b:Person)
//! WHERE a.id = 42 AND k.date > date(1300000000)
//! RETURN b.fName, count(*)
//! ORDER BY count(*) DESC
//! LIMIT 5
//! ```
//!
//! The pipeline has three phases, each producing structured, spanned
//! diagnostics on failure:
//!
//! 1. **lex** ([`lexer`]) — text → tokens with byte spans,
//! 2. **parse** ([`parser`]) — tokens → spanned [`ast::Query`],
//! 3. **bind** ([`binder`]) — AST + [`Catalog`] → [`PatternQuery`], with
//!    label/property resolution, `Value::compare`-faithful type checking,
//!    and "did you mean" hints for near-misses.
//!
//! Everything downstream — the stats-driven optimizer, the plan verifier,
//! EXPLAIN, and all four engines — is shared with the `QueryBuilder` API
//! path unchanged. See `GRAMMAR.md` in this crate for the EBNF and the
//! `RETURN`-lowering rules.

pub mod ast;
pub mod binder;
pub mod diag;
pub mod lexer;
pub mod parser;

pub use diag::{Diagnostic, Phase, Span};

use gfcl_core::query::PatternQuery;
use gfcl_storage::Catalog;
use std::fmt;

/// A frontend failure, tagged with the phase that produced it. The payload
/// is always a fully rendered [`Diagnostic`].
#[derive(Debug, Clone, PartialEq)]
pub enum FrontendError {
    Lex(Diagnostic),
    Parse(Diagnostic),
    Bind(Diagnostic),
}

impl FrontendError {
    pub fn diagnostic(&self) -> &Diagnostic {
        match self {
            FrontendError::Lex(d) | FrontendError::Parse(d) | FrontendError::Bind(d) => d,
        }
    }
}

impl fmt::Display for FrontendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.diagnostic())
    }
}

impl std::error::Error for FrontendError {}

impl From<FrontendError> for gfcl_common::Error {
    /// Frontend errors cross the crate boundary as plan errors carrying the
    /// fully rendered diagnostic (snippet, caret, hint), so facade callers
    /// that only see `gfcl_common::Error` still get the rich message.
    fn from(e: FrontendError) -> Self {
        gfcl_common::Error::Plan(e.to_string())
    }
}

fn classify(d: Diagnostic) -> FrontendError {
    match d.phase {
        Phase::Lex => FrontendError::Lex(d),
        Phase::Parse => FrontendError::Parse(d),
        Phase::Bind => FrontendError::Bind(d),
    }
}

/// Lex and parse `source` into a spanned AST.
pub fn parse(source: &str) -> Result<ast::Query, FrontendError> {
    parser::parse(source).map_err(classify)
}

/// Lex and parse `source` into a top-level [`ast::Statement`]: a `MATCH`
/// query or an `INSERT` / `UPDATE` / `DELETE` mutation.
pub fn parse_statement(source: &str) -> Result<ast::Statement, FrontendError> {
    parser::parse_statement(source).map_err(classify)
}

/// Bind a parsed AST against `catalog`. `source` is the original query
/// text, used to render diagnostics.
pub fn bind(
    query: &ast::Query,
    source: &str,
    catalog: &Catalog,
) -> Result<PatternQuery, FrontendError> {
    binder::bind(query, source, catalog).map_err(classify)
}

/// Full frontend: text → [`PatternQuery`], ready for `gfcl_core::plan`.
pub fn compile(source: &str, catalog: &Catalog) -> Result<PatternQuery, FrontendError> {
    let ast = parse(source)?;
    bind(&ast, source, catalog)
}

//! Spanned abstract syntax tree for the text query language, plus a
//! pretty-printer whose output re-parses to an identical AST (modulo spans)
//! — the property the parser round-trip proptest checks.

use crate::diag::Span;
use std::fmt;

/// An identifier with its source span.
#[derive(Debug, Clone, PartialEq)]
pub struct Ident {
    pub text: String,
    pub span: Span,
}

impl Ident {
    pub fn new(text: impl Into<String>, span: Span) -> Self {
        Ident { text: text.into(), span }
    }
}

/// A full query: `MATCH ... [WHERE ...] RETURN ... [ORDER BY ...] [LIMIT n]
/// [USING ...]*`.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    pub paths: Vec<Path>,
    pub predicate: Option<Expr>,
    pub distinct: bool,
    pub ret: Vec<RetItem>,
    pub order_by: Vec<OrderItem>,
    pub limit: Option<Limit>,
    pub using: Vec<Using>,
}

/// One comma-separated `MATCH` path: a head node and zero or more
/// edge-then-node steps.
#[derive(Debug, Clone, PartialEq)]
pub struct Path {
    pub head: NodePat,
    pub steps: Vec<(EdgePat, NodePat)>,
}

/// `(a:Person)` introduces variable `a`; a bare `(a)` refers back to it.
#[derive(Debug, Clone, PartialEq)]
pub struct NodePat {
    pub var: Ident,
    pub label: Option<Ident>,
}

/// Direction the edge is written in: `-[..]->` or `<-[..]-`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dir {
    Right,
    Left,
}

/// `-[k:knows]->` / `<-[:hasCreator]-`; the variable is optional.
#[derive(Debug, Clone, PartialEq)]
pub struct EdgePat {
    pub var: Option<Ident>,
    pub label: Ident,
    pub dir: Dir,
    pub span: Span,
}

/// `a.prop`.
#[derive(Debug, Clone, PartialEq)]
pub struct PropRef {
    pub var: Ident,
    pub prop: Ident,
}

impl PropRef {
    pub fn span(&self) -> Span {
        self.var.span.merge(self.prop.span)
    }
}

/// Literal payloads. `Date` is the `date(<i64>)` constructor form.
#[derive(Debug, Clone, PartialEq)]
pub enum LitKind {
    Int(i64),
    Float(f64),
    Str(String),
    Bool(bool),
    Date(i64),
}

#[derive(Debug, Clone, PartialEq)]
pub struct Lit {
    pub kind: LitKind,
    pub span: Span,
}

/// Either side of a comparison.
#[derive(Debug, Clone, PartialEq)]
pub enum Operand {
    Prop(PropRef),
    Lit(Lit),
}

impl Operand {
    pub fn span(&self) -> Span {
        match self {
            Operand::Prop(p) => p.span(),
            Operand::Lit(l) => l.span,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl CmpOp {
    fn symbol(self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "<>",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StrOp {
    Contains,
    StartsWith,
    EndsWith,
}

impl StrOp {
    fn keyword(self) -> &'static str {
        match self {
            StrOp::Contains => "CONTAINS",
            StrOp::StartsWith => "STARTS WITH",
            StrOp::EndsWith => "ENDS WITH",
        }
    }
}

/// Boolean predicate expression (the `WHERE` clause).
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    Cmp { op: CmpOp, lhs: Operand, rhs: Operand },
    StrMatch { op: StrOp, prop: PropRef, pattern: Lit },
    InSet { prop: PropRef, values: Vec<Lit> },
    And(Vec<Expr>),
    Or(Vec<Expr>),
    Not(Box<Expr>),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    Count,
    Sum,
    Min,
    Max,
    Avg,
}

impl AggFunc {
    fn name(self) -> &'static str {
        match self {
            AggFunc::Count => "count",
            AggFunc::Sum => "sum",
            AggFunc::Min => "min",
            AggFunc::Max => "max",
            AggFunc::Avg => "avg",
        }
    }
}

/// One `RETURN` item.
#[derive(Debug, Clone, PartialEq)]
pub enum RetItem {
    Prop(PropRef),
    CountStar { span: Span },
    Agg { func: AggFunc, distinct: bool, prop: PropRef, span: Span },
}

impl RetItem {
    pub fn span(&self) -> Span {
        match self {
            RetItem::Prop(p) => p.span(),
            RetItem::CountStar { span } | RetItem::Agg { span, .. } => *span,
        }
    }

    /// Structural equality ignoring spans — used to match `ORDER BY` keys
    /// against `RETURN` columns.
    pub fn same_shape(&self, other: &RetItem) -> bool {
        match (self, other) {
            (RetItem::Prop(a), RetItem::Prop(b)) => {
                a.var.text == b.var.text && a.prop.text == b.prop.text
            }
            (RetItem::CountStar { .. }, RetItem::CountStar { .. }) => true,
            (
                RetItem::Agg { func: fa, distinct: da, prop: pa, .. },
                RetItem::Agg { func: fb, distinct: db, prop: pb, .. },
            ) => fa == fb && da == db && pa.var.text == pb.var.text && pa.prop.text == pb.prop.text,
            _ => false,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SortDir {
    Asc,
    Desc,
}

/// `ORDER BY <item> [ASC|DESC]`. `dir: None` means the direction was
/// omitted in the source (defaults to ascending at bind time).
#[derive(Debug, Clone, PartialEq)]
pub struct OrderItem {
    pub item: RetItem,
    pub dir: Option<SortDir>,
}

#[derive(Debug, Clone, PartialEq)]
pub struct Limit {
    pub value: i64,
    pub span: Span,
}

/// Optimizer hints: `USING START a` / `USING ORDER e2, e1`.
#[derive(Debug, Clone, PartialEq)]
pub enum Using {
    Start(Ident),
    Order(Vec<Ident>),
}

// ---------------------------------------------------------------------------
// Mutation statements.
// ---------------------------------------------------------------------------

/// A top-level statement: a read query (`MATCH ...`) or a mutation
/// (`INSERT` / `UPDATE` / `DELETE`), dispatched on the first keyword.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    Query(Query),
    Mutation(MutationStmt),
}

/// A vertex addressed by label and primary key: `PERSON 45`.
#[derive(Debug, Clone, PartialEq)]
pub struct VertexRef {
    pub label: Ident,
    pub key: i64,
    pub key_span: Span,
}

/// One `prop = literal` assignment inside a parenthesized list.
#[derive(Debug, Clone, PartialEq)]
pub struct PropAssign {
    pub prop: Ident,
    pub value: Lit,
}

/// A parsed mutation. Labels and properties are resolved downstream by
/// `gfcl_storage::WriteTxn` against the store's catalog; primary keys are
/// resolved to offsets at apply time so the statement is position-independent.
#[derive(Debug, Clone, PartialEq)]
pub enum MutationStmt {
    /// `INSERT VERTEX PERSON (name = 'x', age = 20)`
    InsertVertex { label: Ident, props: Vec<PropAssign> },
    /// `INSERT EDGE FOLLOWS FROM PERSON 45 TO PERSON 54 (since = 2020)`
    InsertEdge { label: Ident, src: VertexRef, dst: VertexRef, props: Vec<PropAssign> },
    /// `UPDATE VERTEX PERSON 45 SET (age = 46)`
    UpdateVertex { target: VertexRef, sets: Vec<PropAssign> },
    /// `DELETE VERTEX PERSON 45`
    DeleteVertex { target: VertexRef },
    /// `DELETE EDGE FOLLOWS FROM PERSON 45 TO PERSON 54`
    DeleteEdge { label: Ident, src: VertexRef, dst: VertexRef },
}

// ---------------------------------------------------------------------------
// Span normalization (round-trip tests compare span-stripped ASTs).
// ---------------------------------------------------------------------------

impl Query {
    /// Reset every span in the tree to [`Span::ZERO`], so ASTs built from
    /// different textual layouts compare equal structurally.
    pub fn strip_spans(&mut self) {
        for p in &mut self.paths {
            p.head.strip_spans();
            for (e, n) in &mut p.steps {
                e.span = Span::ZERO;
                if let Some(v) = &mut e.var {
                    v.span = Span::ZERO;
                }
                e.label.span = Span::ZERO;
                n.strip_spans();
            }
        }
        if let Some(e) = &mut self.predicate {
            e.strip_spans();
        }
        for r in &mut self.ret {
            r.strip_spans();
        }
        for o in &mut self.order_by {
            o.item.strip_spans();
        }
        if let Some(l) = &mut self.limit {
            l.span = Span::ZERO;
        }
        for u in &mut self.using {
            match u {
                Using::Start(v) => v.span = Span::ZERO,
                Using::Order(vs) => {
                    for v in vs {
                        v.span = Span::ZERO;
                    }
                }
            }
        }
    }
}

impl NodePat {
    fn strip_spans(&mut self) {
        self.var.span = Span::ZERO;
        if let Some(l) = &mut self.label {
            l.span = Span::ZERO;
        }
    }
}

impl PropRef {
    fn strip_spans(&mut self) {
        self.var.span = Span::ZERO;
        self.prop.span = Span::ZERO;
    }
}

impl Expr {
    fn strip_spans(&mut self) {
        match self {
            Expr::Cmp { lhs, rhs, .. } => {
                lhs.strip_spans();
                rhs.strip_spans();
            }
            Expr::StrMatch { prop, pattern, .. } => {
                prop.strip_spans();
                pattern.span = Span::ZERO;
            }
            Expr::InSet { prop, values } => {
                prop.strip_spans();
                for v in values {
                    v.span = Span::ZERO;
                }
            }
            Expr::And(xs) | Expr::Or(xs) => {
                for x in xs {
                    x.strip_spans();
                }
            }
            Expr::Not(x) => x.strip_spans(),
        }
    }

    /// Smallest span covering the whole expression.
    pub fn span(&self) -> Span {
        match self {
            Expr::Cmp { lhs, rhs, .. } => lhs.span().merge(rhs.span()),
            Expr::StrMatch { prop, pattern, .. } => prop.span().merge(pattern.span),
            Expr::InSet { prop, values } => values.iter().fold(prop.span(), |s, v| s.merge(v.span)),
            Expr::And(xs) | Expr::Or(xs) => {
                let mut s = Span::ZERO;
                let mut first = true;
                for x in xs {
                    s = if first { x.span() } else { s.merge(x.span()) };
                    first = false;
                }
                s
            }
            Expr::Not(x) => x.span(),
        }
    }
}

impl Operand {
    fn strip_spans(&mut self) {
        match self {
            Operand::Prop(p) => p.strip_spans(),
            Operand::Lit(l) => l.span = Span::ZERO,
        }
    }
}

impl RetItem {
    fn strip_spans(&mut self) {
        match self {
            RetItem::Prop(p) => p.strip_spans(),
            RetItem::CountStar { span } => *span = Span::ZERO,
            RetItem::Agg { prop, span, .. } => {
                prop.strip_spans();
                *span = Span::ZERO;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Pretty-printer. `format!("{query}")` re-parses to the same AST.
// ---------------------------------------------------------------------------

fn escape_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('\'');
    for c in s.chars() {
        match c {
            '\'' => out.push_str("\\'"),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            _ => out.push(c),
        }
    }
    out.push('\'');
    out
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            LitKind::Int(v) => write!(f, "{v}"),
            // `{:?}` prints the shortest digits that round-trip through
            // `f64::from_str` (e.g. `3.5`, `12.0`), which the lexer re-reads
            // exactly. Exponent forms only appear for magnitudes the
            // generator never produces.
            LitKind::Float(v) => write!(f, "{v:?}"),
            LitKind::Str(s) => write!(f, "{}", escape_str(s)),
            LitKind::Bool(b) => write!(f, "{b}"),
            LitKind::Date(v) => write!(f, "date({v})"),
        }
    }
}

impl fmt::Display for PropRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.var.text, self.prop.text)
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Prop(p) => write!(f, "{p}"),
            Operand::Lit(l) => write!(f, "{l}"),
        }
    }
}

impl Expr {
    /// Precedence tier: atoms bind tightest, then NOT, AND, OR.
    fn tier(&self) -> u8 {
        match self {
            Expr::Or(_) => 0,
            Expr::And(_) => 1,
            Expr::Not(_) => 2,
            _ => 3,
        }
    }

    fn fmt_child(&self, child: &Expr, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if child.tier() <= self.tier() {
            write!(f, "({child})")
        } else {
            write!(f, "{child}")
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Cmp { op, lhs, rhs } => write!(f, "{lhs} {} {rhs}", op.symbol()),
            Expr::StrMatch { op, prop, pattern } => {
                write!(f, "{prop} {} {pattern}", op.keyword())
            }
            Expr::InSet { prop, values } => {
                write!(f, "{prop} IN [")?;
                for (i, v) in values.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
            Expr::And(xs) => {
                for (i, x) in xs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " AND ")?;
                    }
                    self.fmt_child(x, f)?;
                }
                Ok(())
            }
            Expr::Or(xs) => {
                for (i, x) in xs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " OR ")?;
                    }
                    self.fmt_child(x, f)?;
                }
                Ok(())
            }
            Expr::Not(x) => {
                write!(f, "NOT ")?;
                self.fmt_child(x, f)
            }
        }
    }
}

impl fmt::Display for NodePat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.label {
            Some(l) => write!(f, "({}:{})", self.var.text, l.text),
            None => write!(f, "({})", self.var.text),
        }
    }
}

impl fmt::Display for EdgePat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let body = match &self.var {
            Some(v) => format!("[{}:{}]", v.text, self.label.text),
            None => format!("[:{}]", self.label.text),
        };
        match self.dir {
            Dir::Right => write!(f, "-{body}->"),
            Dir::Left => write!(f, "<-{body}-"),
        }
    }
}

impl fmt::Display for Path {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.head)?;
        for (e, n) in &self.steps {
            write!(f, "{e}{n}")?;
        }
        Ok(())
    }
}

impl fmt::Display for RetItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RetItem::Prop(p) => write!(f, "{p}"),
            RetItem::CountStar { .. } => write!(f, "count(*)"),
            RetItem::Agg { func, distinct, prop, .. } => {
                if *distinct {
                    write!(f, "{}(distinct {prop})", func.name())
                } else {
                    write!(f, "{}({prop})", func.name())
                }
            }
        }
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "MATCH ")?;
        for (i, p) in self.paths.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{p}")?;
        }
        if let Some(e) = &self.predicate {
            write!(f, "\nWHERE {e}")?;
        }
        write!(f, "\nRETURN ")?;
        if self.distinct {
            write!(f, "DISTINCT ")?;
        }
        for (i, r) in self.ret.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{r}")?;
        }
        if !self.order_by.is_empty() {
            write!(f, "\nORDER BY ")?;
            for (i, o) in self.order_by.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{}", o.item)?;
                match o.dir {
                    Some(SortDir::Asc) => write!(f, " ASC")?,
                    Some(SortDir::Desc) => write!(f, " DESC")?,
                    None => {}
                }
            }
        }
        if let Some(l) = &self.limit {
            write!(f, "\nLIMIT {}", l.value)?;
        }
        for u in &self.using {
            match u {
                Using::Start(v) => write!(f, "\nUSING START {}", v.text)?,
                Using::Order(vs) => {
                    write!(f, "\nUSING ORDER ")?;
                    for (i, v) in vs.iter().enumerate() {
                        if i > 0 {
                            write!(f, ", ")?;
                        }
                        write!(f, "{}", v.text)?;
                    }
                }
            }
        }
        Ok(())
    }
}

//! Recursive-descent parser: token stream → spanned [`ast::Query`](crate::ast::Query).
//!
//! Keywords (`MATCH`, `WHERE`, `AND`, `CONTAINS`, ...) are contextual: they
//! are plain identifiers matched case-insensitively where the grammar calls
//! for them, so schema names like a `date` property or a `count` variable
//! still work. Arrows are assembled from `-`/`<`/`>` tokens (see the lexer
//! docs), which keeps `a.x < -5` unambiguous with `<-[:label]-`.
//!
//! This module is on the analyzer's hot-panic lint paths: every failure
//! must surface as a spanned diagnostic, never a panic — the token-soup
//! proptest feeds arbitrary garbage through here.

use crate::ast::{
    AggFunc, CmpOp, Dir, EdgePat, Expr, Ident, Limit, Lit, LitKind, MutationStmt, NodePat, Operand,
    OrderItem, Path, PropAssign, PropRef, Query, RetItem, SortDir, Statement, StrOp, Using,
    VertexRef,
};
use crate::diag::{Diagnostic, Phase, Span};
use crate::lexer::{lex, Tok, Token};

struct Parser<'a> {
    src: &'a str,
    toks: Vec<Token>,
    i: usize,
}

fn is_kw(tok: &Tok, kw: &str) -> bool {
    matches!(tok, Tok::Ident(s) if s.eq_ignore_ascii_case(kw))
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Token {
        // `toks` always ends with an Eof token and the cursor never moves
        // past it, so the fallback is unreachable in practice.
        self.toks
            .get(self.i)
            .cloned()
            .unwrap_or(Token { tok: Tok::Eof, span: Span::new(self.src.len(), self.src.len()) })
    }

    fn peek_tok_at(&self, offset: usize) -> Tok {
        let idx = self.i + offset;
        self.toks.get(idx).map_or(Tok::Eof, |t| t.tok.clone())
    }

    fn advance(&mut self) {
        let last = self.toks.len().saturating_sub(1);
        if self.i < last {
            self.i += 1;
        }
    }

    fn bump(&mut self) -> Token {
        let t = self.peek();
        self.advance();
        t
    }

    fn err(&self, span: Span, msg: String, hint: Option<String>) -> Diagnostic {
        Diagnostic::new(Phase::Parse, self.src, span, msg, hint)
    }

    fn err_here(&self, expected: &str) -> Diagnostic {
        let t = self.peek();
        self.err(t.span, format!("expected {expected}, found {}", t.tok.describe()), None)
    }

    fn expect_tok(&mut self, tok: Tok, expected: &str) -> Result<Span, Diagnostic> {
        let t = self.peek();
        if t.tok == tok {
            self.advance();
            Ok(t.span)
        } else {
            Err(self.err_here(expected))
        }
    }

    fn at_kw(&self, kw: &str) -> bool {
        is_kw(&self.peek().tok, kw)
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.at_kw(kw) {
            self.advance();
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<Span, Diagnostic> {
        let t = self.peek();
        if is_kw(&t.tok, kw) {
            self.advance();
            Ok(t.span)
        } else {
            Err(self.err_here(&format!("`{kw}`")))
        }
    }

    /// A plain identifier (any spelling — keywords are contextual).
    fn expect_ident(&mut self, what: &str) -> Result<Ident, Diagnostic> {
        let t = self.peek();
        if let Tok::Ident(s) = t.tok {
            self.advance();
            Ok(Ident::new(s, t.span))
        } else {
            Err(self.err_here(what))
        }
    }

    // -- patterns ----------------------------------------------------------

    fn node(&mut self) -> Result<NodePat, Diagnostic> {
        self.expect_tok(Tok::LParen, "`(` to start a node pattern")?;
        let var = self.expect_ident("a node variable")?;
        let label = if self.peek().tok == Tok::Colon {
            self.advance();
            Some(self.expect_ident("a node label after `:`")?)
        } else {
            None
        };
        self.expect_tok(Tok::RParen, "`)` to close the node pattern")?;
        Ok(NodePat { var, label })
    }

    /// `[var:label]` / `[:label]` — the bracketed middle of an edge.
    fn edge_body(&mut self) -> Result<(Option<Ident>, Ident), Diagnostic> {
        self.expect_tok(Tok::LBrack, "`[` to open the edge pattern")?;
        let var = if matches!(self.peek().tok, Tok::Ident(_)) {
            Some(self.expect_ident("an edge variable")?)
        } else {
            None
        };
        self.expect_tok(Tok::Colon, "`:` before the edge label")?;
        let label = self.expect_ident("an edge label")?;
        self.expect_tok(Tok::RBrack, "`]` to close the edge pattern")?;
        Ok((var, label))
    }

    fn path(&mut self) -> Result<Path, Diagnostic> {
        let head = self.node()?;
        let mut steps = Vec::new();
        loop {
            let t = self.peek();
            match t.tok {
                // `-[..]->`
                Tok::Dash => {
                    self.advance();
                    let (var, label) = self.edge_body()?;
                    self.expect_tok(Tok::Dash, "`->` after the edge pattern")?;
                    let gt = self.expect_tok(Tok::Gt, "`->` after the edge pattern")?;
                    let node = self.node()?;
                    let span = t.span.merge(gt);
                    steps.push((EdgePat { var, label, dir: Dir::Right, span }, node));
                }
                // `<-[..]-`
                Tok::Lt => {
                    self.advance();
                    self.expect_tok(Tok::Dash, "`<-` to start an incoming edge")?;
                    let (var, label) = self.edge_body()?;
                    let dash = self.expect_tok(Tok::Dash, "`-` after the edge pattern")?;
                    let node = self.node()?;
                    let span = t.span.merge(dash);
                    steps.push((EdgePat { var, label, dir: Dir::Left, span }, node));
                }
                _ => break,
            }
        }
        Ok(Path { head, steps })
    }

    // -- literals & operands ----------------------------------------------

    fn literal(&mut self) -> Result<Lit, Diagnostic> {
        let t = self.peek();
        match t.tok {
            Tok::Int(v) => {
                self.advance();
                Ok(Lit { kind: LitKind::Int(v), span: t.span })
            }
            Tok::Float(v) => {
                self.advance();
                Ok(Lit { kind: LitKind::Float(v), span: t.span })
            }
            Tok::Str(s) => {
                self.advance();
                Ok(Lit { kind: LitKind::Str(s), span: t.span })
            }
            Tok::Dash => {
                self.advance();
                let n = self.bump();
                match n.tok {
                    Tok::Int(v) => {
                        Ok(Lit { kind: LitKind::Int(v.wrapping_neg()), span: t.span.merge(n.span) })
                    }
                    Tok::Float(v) => {
                        Ok(Lit { kind: LitKind::Float(-v), span: t.span.merge(n.span) })
                    }
                    _ => Err(self.err(
                        t.span.merge(n.span),
                        format!("expected a number after `-`, found {}", n.tok.describe()),
                        None,
                    )),
                }
            }
            Tok::Ident(ref s) if s.eq_ignore_ascii_case("true") => {
                self.advance();
                Ok(Lit { kind: LitKind::Bool(true), span: t.span })
            }
            Tok::Ident(ref s) if s.eq_ignore_ascii_case("false") => {
                self.advance();
                Ok(Lit { kind: LitKind::Bool(false), span: t.span })
            }
            Tok::Ident(ref s)
                if s.eq_ignore_ascii_case("date") && self.peek_tok_at(1) == Tok::LParen =>
            {
                self.advance();
                self.advance();
                let neg = self.peek().tok == Tok::Dash;
                if neg {
                    self.advance();
                }
                let n = self.peek();
                let Tok::Int(v) = n.tok else {
                    return Err(self.err_here("an integer timestamp inside date(...)"));
                };
                self.advance();
                let close = self.expect_tok(Tok::RParen, "`)` to close date(...)")?;
                let value = if neg { v.wrapping_neg() } else { v };
                Ok(Lit { kind: LitKind::Date(value), span: t.span.merge(close) })
            }
            _ => Err(self.err_here("a literal (integer, float, 'string', true/false, date(n))")),
        }
    }

    fn operand(&mut self) -> Result<Operand, Diagnostic> {
        let t = self.peek();
        if let Tok::Ident(ref s) = t.tok {
            let reserved = ["true", "false"].iter().any(|k| s.eq_ignore_ascii_case(k));
            let date_call = s.eq_ignore_ascii_case("date") && self.peek_tok_at(1) == Tok::LParen;
            if !reserved && !date_call {
                let var = self.expect_ident("a variable")?;
                self.expect_tok(Tok::Dot, "`.` after the variable (properties are `var.prop`)")?;
                let prop = self.expect_ident("a property name after `.`")?;
                return Ok(Operand::Prop(PropRef { var, prop }));
            }
        }
        Ok(Operand::Lit(self.literal()?))
    }

    // -- predicate expressions ---------------------------------------------

    fn expr(&mut self) -> Result<Expr, Diagnostic> {
        let first = self.and_expr()?;
        if !self.at_kw("OR") {
            return Ok(first);
        }
        let mut parts = vec![first];
        while self.eat_kw("OR") {
            parts.push(self.and_expr()?);
        }
        Ok(Expr::Or(parts))
    }

    fn and_expr(&mut self) -> Result<Expr, Diagnostic> {
        let first = self.unary_expr()?;
        if !self.at_kw("AND") {
            return Ok(first);
        }
        let mut parts = vec![first];
        while self.eat_kw("AND") {
            parts.push(self.unary_expr()?);
        }
        Ok(Expr::And(parts))
    }

    fn unary_expr(&mut self) -> Result<Expr, Diagnostic> {
        if self.eat_kw("NOT") {
            return Ok(Expr::Not(Box::new(self.unary_expr()?)));
        }
        if self.peek().tok == Tok::LParen {
            self.advance();
            let inner = self.expr()?;
            self.expect_tok(Tok::RParen, "`)` to close the parenthesized predicate")?;
            return Ok(inner);
        }
        self.comparison()
    }

    /// The string predicates and `IN` require a property on the left; plain
    /// comparisons accept property or literal on either side.
    fn comparison(&mut self) -> Result<Expr, Diagnostic> {
        let lhs = self.operand()?;
        let t = self.peek();
        let str_op = if is_kw(&t.tok, "CONTAINS") {
            self.advance();
            Some(StrOp::Contains)
        } else if is_kw(&t.tok, "STARTS") {
            self.advance();
            self.expect_kw("WITH")?;
            Some(StrOp::StartsWith)
        } else if is_kw(&t.tok, "ENDS") {
            self.advance();
            self.expect_kw("WITH")?;
            Some(StrOp::EndsWith)
        } else {
            None
        };
        if let Some(op) = str_op {
            let Operand::Prop(prop) = lhs else {
                return Err(self.err(
                    lhs.span(),
                    "string predicates (CONTAINS / STARTS WITH / ENDS WITH) apply to a property"
                        .to_string(),
                    Some("write `var.prop CONTAINS '...'`".to_string()),
                ));
            };
            let pat = self.literal()?;
            if !matches!(pat.kind, LitKind::Str(_)) {
                return Err(self.err(
                    pat.span,
                    "string predicates take a quoted string pattern".to_string(),
                    None,
                ));
            }
            return Ok(Expr::StrMatch { op, prop, pattern: pat });
        }
        if is_kw(&t.tok, "IN") {
            self.advance();
            let Operand::Prop(prop) = lhs else {
                return Err(self.err(
                    lhs.span(),
                    "`IN` applies to a property".to_string(),
                    Some("write `var.prop IN ['a', 'b']`".to_string()),
                ));
            };
            self.expect_tok(Tok::LBrack, "`[` to open the IN list")?;
            let mut values = vec![self.literal()?];
            while self.peek().tok == Tok::Comma {
                self.advance();
                values.push(self.literal()?);
            }
            self.expect_tok(Tok::RBrack, "`]` to close the IN list")?;
            return Ok(Expr::InSet { prop, values });
        }
        let op = match t.tok {
            Tok::Eq => CmpOp::Eq,
            Tok::Ne => CmpOp::Ne,
            Tok::Lt => CmpOp::Lt,
            Tok::Le => CmpOp::Le,
            Tok::Gt => CmpOp::Gt,
            Tok::Ge => CmpOp::Ge,
            _ => {
                return Err(self.err_here(
                    "a comparison operator (`=`, `<>`, `<`, `<=`, `>`, `>=`, CONTAINS, \
                     STARTS WITH, ENDS WITH, IN)",
                ))
            }
        };
        self.advance();
        let rhs = self.operand()?;
        Ok(Expr::Cmp { op, lhs, rhs })
    }

    // -- RETURN / ORDER BY / LIMIT / USING ---------------------------------

    fn agg_func(name: &str) -> Option<AggFunc> {
        if name.eq_ignore_ascii_case("count") {
            Some(AggFunc::Count)
        } else if name.eq_ignore_ascii_case("sum") {
            Some(AggFunc::Sum)
        } else if name.eq_ignore_ascii_case("min") {
            Some(AggFunc::Min)
        } else if name.eq_ignore_ascii_case("max") {
            Some(AggFunc::Max)
        } else if name.eq_ignore_ascii_case("avg") {
            Some(AggFunc::Avg)
        } else {
            None
        }
    }

    fn prop_ref(&mut self) -> Result<PropRef, Diagnostic> {
        let var = self.expect_ident("a variable")?;
        self.expect_tok(Tok::Dot, "`.` after the variable (return items are `var.prop`)")?;
        let prop = self.expect_ident("a property name after `.`")?;
        Ok(PropRef { var, prop })
    }

    fn ret_item(&mut self) -> Result<RetItem, Diagnostic> {
        let t = self.peek();
        if let Tok::Ident(ref s) = t.tok {
            if let Some(func) = Self::agg_func(s) {
                if self.peek_tok_at(1) == Tok::LParen {
                    self.advance();
                    self.advance();
                    if func == AggFunc::Count && self.peek().tok == Tok::Star {
                        self.advance();
                        let close = self.expect_tok(Tok::RParen, "`)` to close count(*)")?;
                        return Ok(RetItem::CountStar { span: t.span.merge(close) });
                    }
                    // `distinct` is contextual too: `count(distinct a.b)` vs
                    // a property ref on a variable named `distinct`.
                    let distinct = if func == AggFunc::Count
                        && self.at_kw("DISTINCT")
                        && self.peek_tok_at(1) != Tok::Dot
                    {
                        self.advance();
                        true
                    } else {
                        false
                    };
                    let prop = self.prop_ref()?;
                    let close = self.expect_tok(Tok::RParen, "`)` to close the aggregate")?;
                    return Ok(RetItem::Agg { func, distinct, prop, span: t.span.merge(close) });
                }
            }
        }
        Ok(RetItem::Prop(self.prop_ref()?))
    }

    fn order_items(&mut self) -> Result<Vec<OrderItem>, Diagnostic> {
        let mut items = Vec::new();
        loop {
            let item = self.ret_item()?;
            let dir = if self.eat_kw("ASC") {
                Some(SortDir::Asc)
            } else if self.eat_kw("DESC") {
                Some(SortDir::Desc)
            } else {
                None
            };
            items.push(OrderItem { item, dir });
            if self.peek().tok == Tok::Comma {
                self.advance();
            } else {
                return Ok(items);
            }
        }
    }

    fn using_clause(&mut self) -> Result<Using, Diagnostic> {
        if self.eat_kw("START") {
            return Ok(Using::Start(self.expect_ident("a node variable after USING START")?));
        }
        if self.eat_kw("ORDER") {
            let mut vars = vec![self.expect_ident("an edge variable after USING ORDER")?];
            while self.peek().tok == Tok::Comma {
                self.advance();
                vars.push(self.expect_ident("an edge variable")?);
            }
            return Ok(Using::Order(vars));
        }
        Err(self.err_here("`START` or `ORDER` after `USING`"))
    }

    fn query(&mut self) -> Result<Query, Diagnostic> {
        self.expect_kw("MATCH")?;
        let mut paths = vec![self.path()?];
        while self.peek().tok == Tok::Comma {
            self.advance();
            paths.push(self.path()?);
        }
        let predicate = if self.eat_kw("WHERE") { Some(self.expr()?) } else { None };
        self.expect_kw("RETURN")?;
        let distinct = self.eat_kw("DISTINCT");
        let mut ret = vec![self.ret_item()?];
        while self.peek().tok == Tok::Comma {
            self.advance();
            ret.push(self.ret_item()?);
        }
        let order_by = if self.at_kw("ORDER") {
            self.advance();
            self.expect_kw("BY")?;
            self.order_items()?
        } else {
            Vec::new()
        };
        let limit = if self.at_kw("LIMIT") {
            let kw = self.peek().span;
            self.advance();
            let t = self.peek();
            let Tok::Int(v) = t.tok else {
                return Err(self.err_here("a non-negative integer after LIMIT"));
            };
            self.advance();
            Some(Limit { value: v, span: kw.merge(t.span) })
        } else {
            None
        };
        let mut using = Vec::new();
        while self.eat_kw("USING") {
            using.push(self.using_clause()?);
        }
        if self.peek().tok != Tok::Eof {
            return Err(self.err_here("end of query"));
        }
        Ok(Query { paths, predicate, distinct, ret, order_by, limit, using })
    }

    // -- mutations ---------------------------------------------------------

    /// `label key` — a vertex addressed by label and integer primary key.
    fn vertex_ref(&mut self) -> Result<VertexRef, Diagnostic> {
        let label = self.expect_ident("a vertex label")?;
        let lit = self.literal()?;
        let LitKind::Int(key) = lit.kind else {
            return Err(self.err(
                lit.span,
                "vertices are addressed by integer primary key".to_string(),
                Some(format!("write `{} <key>` with an integer key", label.text)),
            ));
        };
        Ok(VertexRef { label, key, key_span: lit.span })
    }

    /// `(prop = literal, ...)` — at least one assignment.
    fn prop_assigns(&mut self) -> Result<Vec<PropAssign>, Diagnostic> {
        self.expect_tok(Tok::LParen, "`(` to open the property list")?;
        let mut out = Vec::new();
        loop {
            let prop = self.expect_ident("a property name")?;
            self.expect_tok(Tok::Eq, "`=` after the property name")?;
            let value = self.literal()?;
            out.push(PropAssign { prop, value });
            if self.peek().tok == Tok::Comma {
                self.advance();
            } else {
                break;
            }
        }
        self.expect_tok(Tok::RParen, "`)` to close the property list")?;
        Ok(out)
    }

    /// `FROM <label> <key> TO <label> <key>` — both endpoints of an edge.
    fn edge_endpoints(&mut self) -> Result<(VertexRef, VertexRef), Diagnostic> {
        self.expect_kw("FROM")?;
        let src = self.vertex_ref()?;
        self.expect_kw("TO")?;
        let dst = self.vertex_ref()?;
        Ok((src, dst))
    }

    fn mutation(&mut self) -> Result<MutationStmt, Diagnostic> {
        let stmt = if self.eat_kw("INSERT") {
            if self.eat_kw("VERTEX") {
                let label = self.expect_ident("a vertex label after `INSERT VERTEX`")?;
                let props = self.prop_assigns()?;
                MutationStmt::InsertVertex { label, props }
            } else if self.eat_kw("EDGE") {
                let label = self.expect_ident("an edge label after `INSERT EDGE`")?;
                let (src, dst) = self.edge_endpoints()?;
                let props =
                    if self.peek().tok == Tok::LParen { self.prop_assigns()? } else { Vec::new() };
                MutationStmt::InsertEdge { label, src, dst, props }
            } else {
                return Err(self.err_here("`VERTEX` or `EDGE` after `INSERT`"));
            }
        } else if self.eat_kw("UPDATE") {
            self.expect_kw("VERTEX")?;
            let target = self.vertex_ref()?;
            self.expect_kw("SET")?;
            let sets = self.prop_assigns()?;
            MutationStmt::UpdateVertex { target, sets }
        } else if self.eat_kw("DELETE") {
            if self.eat_kw("VERTEX") {
                MutationStmt::DeleteVertex { target: self.vertex_ref()? }
            } else if self.eat_kw("EDGE") {
                let label = self.expect_ident("an edge label after `DELETE EDGE`")?;
                let (src, dst) = self.edge_endpoints()?;
                MutationStmt::DeleteEdge { label, src, dst }
            } else {
                return Err(self.err_here("`VERTEX` or `EDGE` after `DELETE`"));
            }
        } else {
            return Err(self.err_here("`MATCH`, `INSERT`, `UPDATE` or `DELETE`"));
        };
        if self.peek().tok != Tok::Eof {
            return Err(self.err_here("end of statement"));
        }
        Ok(stmt)
    }

    fn statement(&mut self) -> Result<Statement, Diagnostic> {
        if self.at_kw("MATCH") {
            return Ok(Statement::Query(self.query()?));
        }
        Ok(Statement::Mutation(self.mutation()?))
    }
}

/// Lex and parse `source` into a spanned AST.
pub fn parse(source: &str) -> Result<Query, Diagnostic> {
    let toks = lex(source)?;
    let mut p = Parser { src: source, toks, i: 0 };
    p.query()
}

/// Lex and parse `source` as a top-level statement: a `MATCH` query or an
/// `INSERT` / `UPDATE` / `DELETE` mutation.
pub fn parse_statement(source: &str) -> Result<Statement, Diagnostic> {
    let toks = lex(source)?;
    let mut p = Parser { src: source, toks, i: 0 };
    p.statement()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_small_query() {
        let q = parse(
            "MATCH (a:Person)-[k:knows]->(b:Person), (b)<-[:hasCreator]-(c:Comment)\n\
             WHERE a.id = 42 AND c.length > 10\n\
             RETURN b.fName, count(*)\n\
             ORDER BY count(*) DESC\n\
             LIMIT 5",
        )
        .unwrap();
        assert_eq!(q.paths.len(), 2);
        assert_eq!(q.paths[0].steps.len(), 1);
        assert_eq!(q.paths[1].steps[0].0.dir, Dir::Left);
        assert!(matches!(q.predicate, Some(Expr::And(ref xs)) if xs.len() == 2));
        assert_eq!(q.ret.len(), 2);
        assert_eq!(q.order_by.len(), 1);
        assert_eq!(q.limit.as_ref().map(|l| l.value), Some(5));
    }

    #[test]
    fn negative_literal_vs_left_arrow() {
        let q = parse("MATCH (a:NODE) WHERE a.id > -5 RETURN count(*)").unwrap();
        let Some(Expr::Cmp { rhs: Operand::Lit(l), .. }) = q.predicate else {
            panic!("expected comparison")
        };
        assert_eq!(l.kind, LitKind::Int(-5));
    }

    #[test]
    fn date_call_and_date_property_coexist() {
        let q =
            parse("MATCH (a:P)-[k:knows]->(b:P) WHERE k.date > date(100) RETURN count(*)").unwrap();
        let Some(Expr::Cmp { lhs: Operand::Prop(p), rhs: Operand::Lit(l), .. }) = q.predicate
        else {
            panic!("expected comparison")
        };
        assert_eq!(p.prop.text, "date");
        assert_eq!(l.kind, LitKind::Date(100));
    }

    #[test]
    fn using_clauses() {
        let q = parse(
            "MATCH (a:N)-[e1:L]->(b:N)-[e2:L]->(c:N) RETURN count(*) \
             USING START c USING ORDER e2, e1",
        )
        .unwrap();
        assert_eq!(q.using.len(), 2);
        assert!(matches!(q.using[0], Using::Start(ref v) if v.text == "c"));
        assert!(matches!(q.using[1], Using::Order(ref vs) if vs.len() == 2));
    }

    #[test]
    fn keywords_are_case_insensitive() {
        assert!(parse("match (a:P) return a.id order by a.id desc limit 3").is_ok());
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let err = parse("MATCH (a:P) RETURN a.id garbage").unwrap_err();
        assert!(err.message.contains("expected end of query"), "{}", err.message);
    }

    #[test]
    fn missing_return_is_rejected() {
        let err = parse("MATCH (a:P)").unwrap_err();
        assert!(err.message.contains("`RETURN`"), "{}", err.message);
    }

    #[test]
    fn count_distinct_parses() {
        let q = parse("MATCH (a:P) RETURN a.g, count(distinct a.b)").unwrap();
        assert!(matches!(q.ret[1], RetItem::Agg { func: AggFunc::Count, distinct: true, .. }));
    }

    #[test]
    fn mutation_statements_parse() {
        let s = parse_statement("INSERT VERTEX PERSON (name = 'zoe', age = 30)").unwrap();
        let Statement::Mutation(MutationStmt::InsertVertex { label, props }) = s else {
            panic!("expected insert-vertex")
        };
        assert_eq!(label.text, "PERSON");
        assert_eq!(props.len(), 2);

        let s = parse_statement("insert edge FOLLOWS from PERSON 45 to PERSON 54 (since = 2020)")
            .unwrap();
        let Statement::Mutation(MutationStmt::InsertEdge { src, dst, props, .. }) = s else {
            panic!("expected insert-edge")
        };
        assert_eq!((src.key, dst.key), (45, 54));
        assert_eq!(props.len(), 1);

        let s = parse_statement("UPDATE VERTEX PERSON 45 SET (age = 46)").unwrap();
        assert!(matches!(s, Statement::Mutation(MutationStmt::UpdateVertex { .. })));
        let s = parse_statement("DELETE VERTEX PERSON 17").unwrap();
        assert!(matches!(s, Statement::Mutation(MutationStmt::DeleteVertex { .. })));
        let s = parse_statement("DELETE EDGE FOLLOWS FROM PERSON 45 TO PERSON 54").unwrap();
        assert!(matches!(s, Statement::Mutation(MutationStmt::DeleteEdge { .. })));

        // MATCH still routes to the query grammar.
        let s = parse_statement("MATCH (a:P) RETURN count(*)").unwrap();
        assert!(matches!(s, Statement::Query(_)));
    }

    #[test]
    fn mutation_errors_are_spanned() {
        let err = parse_statement("INSERT TABLE t (a = 1)").unwrap_err();
        assert!(err.message.contains("`VERTEX` or `EDGE`"), "{}", err.message);
        let err = parse_statement("UPDATE VERTEX PERSON 'x' SET (a = 1)").unwrap_err();
        assert!(err.message.contains("integer primary key"), "{}", err.message);
        let err = parse_statement("DELETE VERTEX PERSON 1 trailing").unwrap_err();
        assert!(err.message.contains("end of statement"), "{}", err.message);
    }

    #[test]
    fn pretty_print_round_trips() {
        let text = "MATCH (a:Person)-[k:knows]->(b:Person), (b)<-[:hasCreator]-(c:Comment)\n\
                    WHERE (a.id = 42 OR NOT b.fName CONTAINS 'x') AND c.browserUsed IN ['a', 'b']\n\
                    RETURN DISTINCT b.fName, b.lName\n\
                    ORDER BY b.fName DESC, b.lName\n\
                    LIMIT 7\n\
                    USING START a";
        let mut q1 = parse(text).unwrap();
        let printed = q1.to_string();
        let mut q2 = parse(&printed).unwrap();
        q1.strip_spans();
        q2.strip_spans();
        assert_eq!(q1, q2, "printed form:\n{printed}");
    }
}

//! Structured diagnostics for the text frontend.
//!
//! Every error the frontend can produce — lexical, syntactic, or semantic —
//! carries a byte span into the original query text and renders as a
//! compiler-style snippet with a caret underline, plus an optional
//! "did you mean" hint computed by edit distance over the candidate
//! namespace (labels, properties, variables).

use std::fmt;

/// Byte range into the query source. `end` is exclusive; a zero-width span
/// (`start == end`) points *at* a position, e.g. an unexpected end of input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    pub start: usize,
    pub end: usize,
}

impl Span {
    pub const ZERO: Span = Span { start: 0, end: 0 };

    pub fn new(start: usize, end: usize) -> Self {
        Span { start, end }
    }

    /// Smallest span covering both `self` and `other`.
    pub fn merge(self, other: Span) -> Span {
        Span { start: self.start.min(other.start), end: self.end.max(other.end) }
    }
}

/// Which frontend phase rejected the query. Controls the `{phase} error:`
/// prefix of the rendered diagnostic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    Lex,
    Parse,
    Bind,
}

impl Phase {
    fn label(self) -> &'static str {
        match self {
            Phase::Lex => "lex",
            Phase::Parse => "parse",
            Phase::Bind => "bind",
        }
    }
}

/// A fully rendered frontend error: message, 1-based source position, the
/// offending source line, a caret underline, and an optional hint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    pub phase: Phase,
    pub message: String,
    /// 1-based line number of the span start.
    pub line: usize,
    /// 1-based character column of the span start within that line.
    pub col: usize,
    /// The full source line containing the span start (without newline).
    pub snippet: String,
    /// Caret underline aligned under `snippet` (`^` repeated over the span).
    pub caret: String,
    pub hint: Option<String>,
}

impl Diagnostic {
    /// Build a diagnostic from a span into `source`, rendering the snippet
    /// and caret lines eagerly so the error is self-contained.
    pub fn new(
        phase: Phase,
        source: &str,
        span: Span,
        message: impl Into<String>,
        hint: Option<String>,
    ) -> Self {
        let start = span.start.min(source.len());
        let end = span.end.clamp(start, source.len());
        // Locate the line containing `start`.
        let line_start = source[..start].rfind('\n').map_or(0, |i| i + 1);
        let line_end = source[start..].find('\n').map_or(source.len(), |i| start + i);
        let line = source[..line_start].matches('\n').count() + 1;
        let snippet: String =
            source[line_start..line_end].chars().map(|c| if c == '\t' { ' ' } else { c }).collect();
        // Character (not byte) columns so the caret lines up for any input.
        let col = source[line_start..start].chars().count() + 1;
        let span_in_line = end.min(line_end).saturating_sub(start);
        let width = source[start..start + span_in_line].chars().count().max(1);
        let caret = format!("{}{}", " ".repeat(col - 1), "^".repeat(width));
        Diagnostic { phase, message: message.into(), line, col, snippet, caret, hint }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{} error: {}", self.phase.label(), self.message)?;
        writeln!(f, " --> query:{}:{}", self.line, self.col)?;
        let gutter = self.line.to_string();
        let pad = " ".repeat(gutter.len());
        writeln!(f, " {pad} |")?;
        writeln!(f, " {gutter} | {}", self.snippet)?;
        write!(f, " {pad} | {}", self.caret)?;
        if let Some(hint) = &self.hint {
            write!(f, "\n {pad} = help: {hint}")?;
        }
        Ok(())
    }
}

/// Levenshtein edit distance, used for "did you mean" hints. Candidate sets
/// here are catalog namespaces (a handful of labels or properties), so the
/// quadratic DP is irrelevant to performance.
fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// Pick the closest candidate to `name`, if any is close enough to be a
/// plausible typo (distance at most 2, and strictly less than the name's
/// own length so tiny names don't match everything). Case-insensitive
/// matches always qualify. Ties break lexicographically for determinism.
pub fn did_you_mean<'a>(name: &str, candidates: impl Iterator<Item = &'a str>) -> Option<String> {
    let mut best: Option<(usize, &str)> = None;
    for cand in candidates {
        if cand == name {
            continue;
        }
        let d = if cand.eq_ignore_ascii_case(name) { 0 } else { edit_distance(name, cand) };
        let limit = 2.min(name.chars().count().saturating_sub(1));
        if d > limit {
            continue;
        }
        best = match best {
            Some((bd, bc)) if (bd, bc) <= (d, cand) => Some((bd, bc)),
            _ => Some((d, cand)),
        };
    }
    best.map(|(_, c)| format!("did you mean `{c}`?"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn caret_points_at_span() {
        let src = "MATCH (a:Persn)\nRETURN a.id";
        let d = Diagnostic::new(Phase::Bind, src, Span::new(9, 14), "unknown label `Persn`", None);
        assert_eq!(d.line, 1);
        assert_eq!(d.col, 10);
        assert_eq!(d.snippet, "MATCH (a:Persn)");
        assert_eq!(d.caret, "         ^^^^^");
    }

    #[test]
    fn caret_second_line() {
        let src = "MATCH (a:Person)\nRETURN a.idd";
        let d = Diagnostic::new(Phase::Bind, src, Span::new(24, 28), "unknown property", None);
        assert_eq!(d.line, 2);
        assert_eq!(d.col, 8);
        assert_eq!(d.snippet, "RETURN a.idd");
    }

    #[test]
    fn zero_width_span_renders_single_caret() {
        let src = "RETURN";
        let d = Diagnostic::new(Phase::Parse, src, Span::new(6, 6), "unexpected end", None);
        assert_eq!(d.caret, "      ^");
    }

    #[test]
    fn hints_find_near_misses() {
        let cands = ["Person", "Comment", "Post"];
        assert_eq!(
            did_you_mean("Persn", cands.iter().copied()),
            Some("did you mean `Person`?".to_string())
        );
        assert_eq!(
            did_you_mean("person", cands.iter().copied()),
            Some("did you mean `Person`?".to_string())
        );
        assert_eq!(did_you_mean("Forum", cands.iter().copied()), None);
    }

    #[test]
    fn edit_distance_basics() {
        assert_eq!(edit_distance("kitten", "sitting"), 3);
        assert_eq!(edit_distance("", "abc"), 3);
        assert_eq!(edit_distance("abc", "abc"), 0);
    }
}

//! Hand-written lexer for the text query language.
//!
//! Produces a flat `Vec<Token>` with byte spans into the original source.
//! The token set is deliberately small: identifiers (keywords are contextual
//! and resolved by the parser), integer/float/string literals, and the
//! punctuation the pattern and predicate grammars need. `->` and `<-` are
//! not fused into single tokens — the parser assembles arrows from `Dash`,
//! `Lt` and `Gt` so that `a.x < -5` lexes the same way as `<-[:knows]-`.
//!
//! This module is on the analyzer's hot-panic/as-cast lint paths: it must
//! not panic on any input (the token-soup proptest feeds it arbitrary
//! bytes), so all indexing goes through `get` and all failures surface as
//! spanned [`Diagnostic`]s.

use crate::diag::{Diagnostic, Phase, Span};

/// One lexical token. Identifier payloads keep their original spelling;
/// keyword recognition is case-insensitive and happens in the parser.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    Ident(String),
    Int(i64),
    Float(f64),
    Str(String),
    LParen,
    RParen,
    LBrack,
    RBrack,
    Comma,
    Dot,
    Colon,
    Star,
    Dash,
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
    /// Synthetic end-of-input marker with a zero-width span, so the parser
    /// always has a position to point its "unexpected end" diagnostics at.
    Eof,
}

impl Tok {
    /// Short human name used in parser error messages.
    pub fn describe(&self) -> String {
        match self {
            Tok::Ident(s) => format!("`{s}`"),
            Tok::Int(v) => format!("integer `{v}`"),
            Tok::Float(v) => format!("float `{v}`"),
            Tok::Str(_) => "string literal".to_string(),
            Tok::LParen => "`(`".to_string(),
            Tok::RParen => "`)`".to_string(),
            Tok::LBrack => "`[`".to_string(),
            Tok::RBrack => "`]`".to_string(),
            Tok::Comma => "`,`".to_string(),
            Tok::Dot => "`.`".to_string(),
            Tok::Colon => "`:`".to_string(),
            Tok::Star => "`*`".to_string(),
            Tok::Dash => "`-`".to_string(),
            Tok::Lt => "`<`".to_string(),
            Tok::Le => "`<=`".to_string(),
            Tok::Gt => "`>`".to_string(),
            Tok::Ge => "`>=`".to_string(),
            Tok::Eq => "`=`".to_string(),
            Tok::Ne => "`<>`".to_string(),
            Tok::Eof => "end of query".to_string(),
        }
    }
}

/// A token plus its byte span in the source.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    pub tok: Tok,
    pub span: Span,
}

struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Lexer<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn peek_at(&self, offset: usize) -> Option<u8> {
        let idx = self.pos + offset;
        self.bytes.get(idx).copied()
    }

    fn err(&self, span: Span, msg: String, hint: Option<String>) -> Diagnostic {
        Diagnostic::new(Phase::Lex, self.src, span, msg, hint)
    }

    /// Skip whitespace and `//` / `--` line comments.
    fn skip_trivia(&mut self) {
        loop {
            match self.peek() {
                Some(b) if b.is_ascii_whitespace() => self.pos += 1,
                Some(b'/') if self.peek_at(1) == Some(b'/') => self.skip_line(),
                Some(b'-') if self.peek_at(1) == Some(b'-') => self.skip_line(),
                _ => return,
            }
        }
    }

    fn skip_line(&mut self) {
        while let Some(b) = self.peek() {
            self.pos += 1;
            if b == b'\n' {
                return;
            }
        }
    }

    fn ident(&mut self) -> Token {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_alphanumeric() || b == b'_' {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = self.src.get(start..self.pos).unwrap_or_default().to_string();
        Token { tok: Tok::Ident(text), span: Span::new(start, self.pos) }
    }

    fn number(&mut self) -> Result<Token, Diagnostic> {
        let start = self.pos;
        let mut is_float = false;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || b == b'_' {
                self.pos += 1;
            } else if b == b'.' && !is_float && self.peek_at(1).is_some_and(|d| d.is_ascii_digit())
            {
                is_float = true;
                self.pos += 1;
            } else {
                break;
            }
        }
        let span = Span::new(start, self.pos);
        let raw = self.src.get(start..self.pos).unwrap_or_default();
        let digits: String = raw.chars().filter(|c| *c != '_').collect();
        if is_float {
            match digits.parse::<f64>() {
                Ok(v) => Ok(Token { tok: Tok::Float(v), span }),
                Err(_) => Err(self.err(span, format!("invalid float literal `{raw}`"), None)),
            }
        } else {
            match digits.parse::<i64>() {
                Ok(v) => Ok(Token { tok: Tok::Int(v), span }),
                Err(_) => Err(self.err(
                    span,
                    format!("integer literal `{raw}` is out of range"),
                    Some("64-bit signed integers only".to_string()),
                )),
            }
        }
    }

    fn string(&mut self) -> Result<Token, Diagnostic> {
        let start = self.pos;
        self.pos += 1; // opening quote
        let mut value = String::new();
        loop {
            match self.peek() {
                None => {
                    return Err(self.err(
                        Span::new(start, start + 1),
                        "unterminated string literal".to_string(),
                        Some("strings are single-quoted: 'like this'".to_string()),
                    ));
                }
                Some(b'\'') => {
                    self.pos += 1;
                    return Ok(Token { tok: Tok::Str(value), span: Span::new(start, self.pos) });
                }
                Some(b'\\') => {
                    let esc_start = self.pos;
                    self.pos += 1;
                    let replacement = match self.peek() {
                        Some(b'\'') => '\'',
                        Some(b'\\') => '\\',
                        Some(b'n') => '\n',
                        Some(b't') => '\t',
                        Some(b'r') => '\r',
                        other => {
                            let width = other.map_or(0, |_| self.char_width());
                            let esc_end = self.pos + width;
                            return Err(self.err(
                                Span::new(esc_start, esc_end),
                                "unknown escape sequence in string literal".to_string(),
                                Some("supported escapes: \\' \\\\ \\n \\t \\r".to_string()),
                            ));
                        }
                    };
                    value.push(replacement);
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one whole UTF-8 character (multi-byte chars
                    // never contain the `'` or `\` bytes, but advancing by
                    // char keeps `value` well-formed).
                    if let Some(c) = self.src.get(self.pos..).and_then(|s| s.chars().next()) {
                        value.push(c);
                        self.pos += c.len_utf8();
                    } else {
                        self.pos += 1;
                    }
                }
            }
        }
    }

    /// Width in bytes of the character at the cursor (1 if out of range).
    fn char_width(&self) -> usize {
        self.src.get(self.pos..).and_then(|s| s.chars().next()).map_or(1, |c| c.len_utf8())
    }

    fn punct(&mut self, tok: Tok, len: usize) -> Token {
        let start = self.pos;
        self.pos += len;
        Token { tok, span: Span::new(start, self.pos) }
    }

    fn next_token(&mut self) -> Result<Option<Token>, Diagnostic> {
        self.skip_trivia();
        let Some(b) = self.peek() else { return Ok(None) };
        let t = match b {
            b'(' => self.punct(Tok::LParen, 1),
            b')' => self.punct(Tok::RParen, 1),
            b'[' => self.punct(Tok::LBrack, 1),
            b']' => self.punct(Tok::RBrack, 1),
            b',' => self.punct(Tok::Comma, 1),
            b'.' => self.punct(Tok::Dot, 1),
            b':' => self.punct(Tok::Colon, 1),
            b'*' => self.punct(Tok::Star, 1),
            b'-' => self.punct(Tok::Dash, 1),
            b'=' => self.punct(Tok::Eq, 1),
            b'<' => match self.peek_at(1) {
                Some(b'=') => self.punct(Tok::Le, 2),
                Some(b'>') => self.punct(Tok::Ne, 2),
                _ => self.punct(Tok::Lt, 1),
            },
            b'>' => match self.peek_at(1) {
                Some(b'=') => self.punct(Tok::Ge, 2),
                _ => self.punct(Tok::Gt, 1),
            },
            b'\'' => self.string()?,
            b if b.is_ascii_digit() => self.number()?,
            b if b.is_ascii_alphabetic() || b == b'_' => self.ident(),
            _ => {
                let width = self.char_width();
                let end = self.pos + width;
                let span = Span::new(self.pos, end);
                let shown = self.src.get(self.pos..end).unwrap_or("?");
                return Err(self.err(span, format!("unexpected character `{shown}`"), None));
            }
        };
        Ok(Some(t))
    }
}

/// Tokenize `source`, appending a zero-width [`Tok::Eof`] marker.
pub fn lex(source: &str) -> Result<Vec<Token>, Diagnostic> {
    let mut lx = Lexer { src: source, bytes: source.as_bytes(), pos: 0 };
    let mut out = Vec::new();
    while let Some(t) = lx.next_token()? {
        out.push(t);
    }
    let end = source.len();
    out.push(Token { tok: Tok::Eof, span: Span::new(end, end) });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn pattern_tokens() {
        assert_eq!(
            toks("(a:Person)-[k:knows]->(b)"),
            vec![
                Tok::LParen,
                Tok::Ident("a".into()),
                Tok::Colon,
                Tok::Ident("Person".into()),
                Tok::RParen,
                Tok::Dash,
                Tok::LBrack,
                Tok::Ident("k".into()),
                Tok::Colon,
                Tok::Ident("knows".into()),
                Tok::RBrack,
                Tok::Dash,
                Tok::Gt,
                Tok::LParen,
                Tok::Ident("b".into()),
                Tok::RParen,
                Tok::Eof,
            ]
        );
    }

    #[test]
    fn numbers_and_underscores() {
        assert_eq!(
            toks("1_400_000_000 3.5"),
            vec![Tok::Int(1_400_000_000), Tok::Float(3.5), Tok::Eof]
        );
    }

    #[test]
    fn comparison_operators() {
        assert_eq!(
            toks("< <= <> > >= ="),
            vec![Tok::Lt, Tok::Le, Tok::Ne, Tok::Gt, Tok::Ge, Tok::Eq, Tok::Eof]
        );
    }

    #[test]
    fn strings_and_escapes() {
        assert_eq!(toks(r"'a\'b\\c'"), vec![Tok::Str("a'b\\c".into()), Tok::Eof]);
    }

    #[test]
    fn comments_are_trivia() {
        assert_eq!(toks("1 // x\n-- y\n2"), vec![Tok::Int(1), Tok::Int(2), Tok::Eof]);
    }

    #[test]
    fn unterminated_string_is_a_lex_error() {
        let err = lex("RETURN 'oops").unwrap_err();
        assert!(err.message.contains("unterminated string"));
        assert_eq!(err.col, 8);
    }

    #[test]
    fn integer_overflow_is_reported() {
        let err = lex("99999999999999999999").unwrap_err();
        assert!(err.message.contains("out of range"));
    }

    #[test]
    fn unexpected_character() {
        let err = lex("RETURN a.x ; 1").unwrap_err();
        assert!(err.message.contains("unexpected character `;`"));
    }
}

//! Binder: spanned AST → [`PatternQuery`], resolved against the [`Catalog`].
//!
//! The binder is the semantic phase of the frontend. It
//!
//! * assigns node/edge variables their indices (first textual appearance
//!   order, matching how `QueryBuilder` programs declare them),
//! * resolves labels and properties against the catalog, attaching
//!   "did you mean" hints for near-misses,
//! * type-checks predicates with exactly the comparability rules of
//!   `Value::compare` ({Int64, Float64, Date} inter-comparable; Bool and
//!   String only with themselves),
//! * lowers `RETURN` to the same `ReturnSpec` shapes the builder API
//!   produces (see GRAMMAR.md for the mapping), and
//! * resolves `ORDER BY` keys structurally against the return columns.
//!
//! Everything past this point — planning, optimization, verification,
//! execution — is byte-identical to the `QueryBuilder` path; the corpus
//! harness in `crates/workloads` asserts that equivalence query by query.

use crate::ast;
use crate::diag::{did_you_mean, Diagnostic, Phase, Span};
use gfcl_common::{DataType, LabelId, Value};
use gfcl_core::query::{
    Agg, AggFunc as CoreAggFunc, CmpOp, EdgePattern, Expr, NodePattern, OrderKey, PatternQuery,
    PlanHints, PropRef, ReturnSpec, Scalar, SortDir, StrOp,
};
use gfcl_storage::Catalog;

/// What a variable is bound to: a node (vertex label) or a named edge.
#[derive(Clone, Copy)]
enum VarKind {
    Node { idx: usize, label: LabelId },
    Edge { idx: usize, label: LabelId },
}

struct Binder<'a> {
    src: &'a str,
    catalog: &'a Catalog,
    vars: Vec<(String, VarKind)>,
    nodes: Vec<NodePattern>,
    edges: Vec<EdgePattern>,
}

type BindResult<T> = Result<T, Diagnostic>;

impl<'a> Binder<'a> {
    fn err(&self, span: Span, msg: String, hint: Option<String>) -> Diagnostic {
        Diagnostic::new(Phase::Bind, self.src, span, msg, hint)
    }

    fn lookup(&self, name: &str) -> Option<VarKind> {
        self.vars.iter().find(|(n, _)| n == name).map(|(_, k)| *k)
    }

    fn var_names(&self) -> impl Iterator<Item = &str> {
        self.vars.iter().map(|(n, _)| n.as_str())
    }

    // -- pattern binding ---------------------------------------------------

    fn bind_node(&mut self, pat: &ast::NodePat) -> BindResult<usize> {
        let name = &pat.var.text;
        match (&pat.label, self.lookup(name)) {
            (Some(_), Some(_)) => Err(self.err(
                pat.var.span,
                format!("duplicate variable `{name}`"),
                Some(format!(
                    "labels appear on the first occurrence only; refer back with ({name})"
                )),
            )),
            (Some(label), None) => {
                let label_id = match self.catalog.vertex_label_id(&label.text) {
                    Ok(id) => id,
                    Err(_) => {
                        let hint = did_you_mean(
                            &label.text,
                            self.catalog.vertex_labels().iter().map(|d| d.name.as_str()),
                        );
                        return Err(self.err(
                            label.span,
                            format!("unknown node label `{}`", label.text),
                            hint,
                        ));
                    }
                };
                let idx = self.nodes.len();
                self.nodes.push(NodePattern { var: name.clone(), label: label.text.clone() });
                self.vars.push((name.clone(), VarKind::Node { idx, label: label_id }));
                Ok(idx)
            }
            (None, Some(VarKind::Node { idx, .. })) => Ok(idx),
            (None, Some(VarKind::Edge { .. })) => Err(self.err(
                pat.var.span,
                format!("`{name}` is an edge variable, but is used as a node here"),
                None,
            )),
            (None, None) => {
                let hint = did_you_mean(name, self.var_names())
                    .or_else(|| Some(format!("introduce it with ({name}:Label)")));
                Err(self.err(
                    pat.var.span,
                    format!("variable `{name}` has not been declared"),
                    hint,
                ))
            }
        }
    }

    fn bind_edge(&mut self, edge: &ast::EdgePat, from: usize, to: usize) -> BindResult<()> {
        // Written direction: `<-[..]-` swaps the endpoints.
        let (from, to) = match edge.dir {
            ast::Dir::Right => (from, to),
            ast::Dir::Left => (to, from),
        };
        let label_id = match self.catalog.edge_label_id(&edge.label.text) {
            Ok(id) => id,
            Err(_) => {
                let hint = did_you_mean(
                    &edge.label.text,
                    self.catalog.edge_labels().iter().map(|d| d.name.as_str()),
                );
                return Err(self.err(
                    edge.label.span,
                    format!("unknown edge label `{}`", edge.label.text),
                    hint,
                ));
            }
        };
        let var = match &edge.var {
            Some(v) => {
                if self.lookup(&v.text).is_some() {
                    return Err(self.err(v.span, format!("duplicate variable `{}`", v.text), None));
                }
                let idx = self.edges.len();
                self.vars.push((v.text.clone(), VarKind::Edge { idx, label: label_id }));
                Some(v.text.clone())
            }
            None => None,
        };
        self.edges.push(EdgePattern { var, label: edge.label.text.clone(), from, to });
        Ok(())
    }

    fn bind_paths(&mut self, paths: &[ast::Path]) -> BindResult<()> {
        for path in paths {
            let mut prev = self.bind_node(&path.head)?;
            for (edge, node) in &path.steps {
                let next = self.bind_node(node)?;
                self.bind_edge(edge, prev, next)?;
                prev = next;
            }
        }
        Ok(())
    }

    // -- property resolution & typing --------------------------------------

    /// Resolve `var.prop`: the variable must be bound, the property must
    /// exist on its label. Returns the lowered ref and the property dtype.
    fn resolve_prop(&self, p: &ast::PropRef) -> BindResult<(PropRef, DataType)> {
        let Some(kind) = self.lookup(&p.var.text) else {
            let hint = did_you_mean(&p.var.text, self.var_names());
            return Err(self.err(
                p.var.span,
                format!("variable `{}` is not declared in the MATCH pattern", p.var.text),
                hint,
            ));
        };
        let (label_name, props) = match kind {
            VarKind::Node { label, .. } => {
                let def = self.catalog.vertex_label(label);
                (def.name.as_str(), &def.properties)
            }
            VarKind::Edge { label, .. } => {
                let def = self.catalog.edge_label(label);
                (def.name.as_str(), &def.properties)
            }
        };
        match props.iter().find(|d| d.name == p.prop.text) {
            Some(def) => {
                Ok((PropRef { var: p.var.text.clone(), prop: p.prop.text.clone() }, def.dtype))
            }
            None => {
                let hint = did_you_mean(&p.prop.text, props.iter().map(|d| d.name.as_str()));
                Err(self.err(
                    p.prop.span,
                    format!("label `{label_name}` has no property `{}`", p.prop.text),
                    hint,
                ))
            }
        }
    }

    fn lit_value(lit: &ast::Lit) -> (Value, DataType) {
        match &lit.kind {
            ast::LitKind::Int(v) => (Value::Int64(*v), DataType::Int64),
            ast::LitKind::Float(v) => (Value::Float64(*v), DataType::Float64),
            ast::LitKind::Str(s) => (Value::String(s.clone()), DataType::String),
            ast::LitKind::Bool(b) => (Value::Bool(*b), DataType::Bool),
            ast::LitKind::Date(v) => (Value::Date(*v), DataType::Date),
        }
    }

    /// Mirror of `Value::compare`: which dtypes may meet in a comparison.
    fn comparable(a: DataType, b: DataType) -> bool {
        use DataType::*;
        let ordered = |t| matches!(t, Int64 | Float64 | Date);
        (ordered(a) && ordered(b)) || a == b
    }

    fn operand_desc(op: &ast::Operand) -> String {
        match op {
            ast::Operand::Prop(p) => format!("`{p}`"),
            ast::Operand::Lit(l) => format!("`{l}`"),
        }
    }

    fn lower_operand(&self, op: &ast::Operand) -> BindResult<(Scalar, DataType)> {
        match op {
            ast::Operand::Prop(p) => {
                let (r, t) = self.resolve_prop(p)?;
                Ok((Scalar::Prop(r), t))
            }
            ast::Operand::Lit(l) => {
                let (v, t) = Self::lit_value(l);
                Ok((Scalar::Const(v), t))
            }
        }
    }

    fn lower_expr(&self, e: &ast::Expr) -> BindResult<Expr> {
        match e {
            ast::Expr::Cmp { op, lhs, rhs } => {
                let (ls, lt) = self.lower_operand(lhs)?;
                let (rs, rt) = self.lower_operand(rhs)?;
                if !Self::comparable(lt, rt) {
                    let hint = if lt == DataType::String && rt != DataType::String {
                        Some("quote the value to compare as a string, e.g. 'like this'".to_string())
                    } else {
                        None
                    };
                    return Err(self.err(
                        lhs.span().merge(rhs.span()),
                        format!(
                            "cannot compare {} ({lt:?}) with {} ({rt:?})",
                            Self::operand_desc(lhs),
                            Self::operand_desc(rhs)
                        ),
                        hint,
                    ));
                }
                let op = match op {
                    ast::CmpOp::Eq => CmpOp::Eq,
                    ast::CmpOp::Ne => CmpOp::Ne,
                    ast::CmpOp::Lt => CmpOp::Lt,
                    ast::CmpOp::Le => CmpOp::Le,
                    ast::CmpOp::Gt => CmpOp::Gt,
                    ast::CmpOp::Ge => CmpOp::Ge,
                };
                Ok(Expr::Cmp { op, lhs: ls, rhs: rs })
            }
            ast::Expr::StrMatch { op, prop, pattern } => {
                let (r, t) = self.resolve_prop(prop)?;
                if t != DataType::String {
                    return Err(self.err(
                        prop.span(),
                        format!("`{prop}` is {t:?}, but string predicates match String"),
                        None,
                    ));
                }
                let ast::LitKind::Str(pat) = &pattern.kind else {
                    // The parser only admits string literals here.
                    return Err(self.err(
                        pattern.span,
                        "string predicates take a quoted string pattern".to_string(),
                        None,
                    ));
                };
                let op = match op {
                    ast::StrOp::Contains => StrOp::Contains,
                    ast::StrOp::StartsWith => StrOp::StartsWith,
                    ast::StrOp::EndsWith => StrOp::EndsWith,
                };
                Ok(Expr::StrMatch { op, prop: r, pattern: pat.clone() })
            }
            ast::Expr::InSet { prop, values } => {
                let (r, t) = self.resolve_prop(prop)?;
                if t != DataType::String {
                    return Err(self.err(
                        prop.span(),
                        format!("`{prop}` is {t:?}, but IN lists hold strings"),
                        None,
                    ));
                }
                let mut vals = Vec::with_capacity(values.len());
                for v in values {
                    let ast::LitKind::Str(s) = &v.kind else {
                        return Err(self.err(
                            v.span,
                            "IN lists hold string values".to_string(),
                            Some("quote each element: IN ['a', 'b']".to_string()),
                        ));
                    };
                    vals.push(Value::String(s.clone()));
                }
                Ok(Expr::InSet { prop: r, values: vals })
            }
            ast::Expr::And(xs) => {
                Ok(Expr::And(xs.iter().map(|x| self.lower_expr(x)).collect::<Result<_, _>>()?))
            }
            ast::Expr::Or(xs) => {
                Ok(Expr::Or(xs.iter().map(|x| self.lower_expr(x)).collect::<Result<_, _>>()?))
            }
            ast::Expr::Not(x) => Ok(Expr::Not(Box::new(self.lower_expr(x)?))),
        }
    }

    // -- RETURN lowering ---------------------------------------------------

    fn lower_agg(&self, item: &ast::RetItem) -> BindResult<Agg> {
        match item {
            ast::RetItem::CountStar { .. } => Ok(Agg::count_star()),
            ast::RetItem::Agg { func, distinct, prop, span } => {
                let (r, t) = self.resolve_prop(prop)?;
                let numeric = matches!(t, DataType::Int64 | DataType::Float64);
                let func = match func {
                    ast::AggFunc::Count if *distinct => CoreAggFunc::Count { distinct: true },
                    ast::AggFunc::Count => CoreAggFunc::Count { distinct: false },
                    ast::AggFunc::Sum | ast::AggFunc::Avg if !numeric => {
                        return Err(self.err(
                            *span,
                            format!(
                                "{}() needs a numeric property, `{prop}` is {t:?}",
                                if matches!(func, ast::AggFunc::Sum) { "sum" } else { "avg" }
                            ),
                            None,
                        ))
                    }
                    ast::AggFunc::Sum => CoreAggFunc::Sum,
                    ast::AggFunc::Avg => CoreAggFunc::Avg,
                    ast::AggFunc::Min => CoreAggFunc::Min,
                    ast::AggFunc::Max => CoreAggFunc::Max,
                };
                Ok(Agg { func, prop: Some(r) })
            }
            ast::RetItem::Prop(_) => Err(self.err(
                item.span(),
                "internal: lower_agg on a projection item".to_string(),
                None,
            )),
        }
    }

    /// Lower `RETURN` items to the `ReturnSpec` shapes the builder API
    /// produces. The mapping (documented in GRAMMAR.md):
    ///
    /// * `count(*)` alone → `CountStar`
    /// * a single plain `sum`/`min`/`max` → the scalar aggregate specs
    /// * only bare properties → `Props`
    /// * anything else with an aggregate → `GroupBy { keys, aggs }` where
    ///   the bare properties (which must all come first) are the keys
    fn lower_return(&self, items: &[ast::RetItem]) -> BindResult<ReturnSpec> {
        if let [only] = items {
            match only {
                ast::RetItem::CountStar { .. } => return Ok(ReturnSpec::CountStar),
                ast::RetItem::Agg { func, distinct: false, prop, .. } => {
                    let single = match func {
                        ast::AggFunc::Sum => Some(ReturnSpec::Sum as fn(PropRef) -> ReturnSpec),
                        ast::AggFunc::Min => Some(ReturnSpec::Min as fn(PropRef) -> ReturnSpec),
                        ast::AggFunc::Max => Some(ReturnSpec::Max as fn(PropRef) -> ReturnSpec),
                        _ => None,
                    };
                    if let Some(make) = single {
                        // Reuse lower_agg for the numeric check on sum().
                        let _ = self.lower_agg(only)?;
                        let (r, _) = self.resolve_prop(prop)?;
                        return Ok(make(r));
                    }
                }
                _ => {}
            }
        }
        let has_agg = items.iter().any(|i| !matches!(i, ast::RetItem::Prop(_)));
        if !has_agg {
            let mut props = Vec::with_capacity(items.len());
            for item in items {
                if let ast::RetItem::Prop(p) = item {
                    let (r, _) = self.resolve_prop(p)?;
                    props.push(r);
                }
            }
            return Ok(ReturnSpec::Props(props));
        }
        // Grouped return: keys (bare props) first, then aggregates.
        let mut keys = Vec::new();
        let mut aggs = Vec::new();
        for item in items {
            match item {
                ast::RetItem::Prop(p) => {
                    if !aggs.is_empty() {
                        return Err(self.err(
                            item.span(),
                            "grouping keys must come before aggregates in RETURN".to_string(),
                            Some("move the bare properties ahead of count()/sum()/...".to_string()),
                        ));
                    }
                    let (r, _) = self.resolve_prop(p)?;
                    keys.push(r);
                }
                _ => aggs.push(self.lower_agg(item)?),
            }
        }
        Ok(ReturnSpec::GroupBy { keys, aggs })
    }

    /// Render return columns the way EXPLAIN / result headers name them,
    /// for "available columns" hints.
    fn column_names(items: &[ast::RetItem]) -> String {
        items.iter().map(|i| i.to_string()).collect::<Vec<_>>().join(", ")
    }

    fn bind_order_by(
        &self,
        order: &[ast::OrderItem],
        ret_items: &[ast::RetItem],
        ret: &ReturnSpec,
    ) -> BindResult<Vec<OrderKey>> {
        if order.is_empty() {
            return Ok(Vec::new());
        }
        if !matches!(ret, ReturnSpec::Props(_) | ReturnSpec::GroupBy { .. }) {
            let span = order.first().map_or(Span::ZERO, |o| o.item.span());
            return Err(self.err(
                span,
                "ORDER BY applies to row-producing returns (projections or grouped aggregates)"
                    .to_string(),
                None,
            ));
        }
        let mut keys = Vec::with_capacity(order.len());
        for o in order {
            // Column order equals RETURN item order for both Props and
            // GroupBy (keys are required to precede aggregates).
            let Some(col) = ret_items.iter().position(|r| r.same_shape(&o.item)) else {
                return Err(self.err(
                    o.item.span(),
                    format!("ORDER BY key `{}` does not appear in RETURN", o.item),
                    Some(format!("available columns: {}", Self::column_names(ret_items))),
                ));
            };
            // Validate the key itself resolves (it names the same prop as a
            // RETURN item, which was already resolved — this is for spans).
            let dir = match o.dir {
                Some(ast::SortDir::Desc) => SortDir::Desc,
                _ => SortDir::Asc,
            };
            keys.push(OrderKey { col, dir });
        }
        Ok(keys)
    }

    // -- USING hints -------------------------------------------------------

    fn bind_using(&self, using: &[ast::Using]) -> BindResult<PlanHints> {
        let mut hints = PlanHints::default();
        for u in using {
            match u {
                ast::Using::Start(v) => {
                    if hints.start.is_some() {
                        return Err(self.err(
                            v.span,
                            "duplicate USING START clause".to_string(),
                            None,
                        ));
                    }
                    match self.lookup(&v.text) {
                        Some(VarKind::Node { .. }) => hints.start = Some(v.text.clone()),
                        _ => {
                            let node_vars = self
                                .vars
                                .iter()
                                .filter(|(_, k)| matches!(k, VarKind::Node { .. }))
                                .map(|(n, _)| n.as_str());
                            let hint = did_you_mean(&v.text, node_vars);
                            return Err(self.err(
                                v.span,
                                format!(
                                    "USING START refers to `{}`, which is not a node variable",
                                    v.text
                                ),
                                hint,
                            ));
                        }
                    }
                }
                ast::Using::Order(vars) => {
                    if hints.edge_order.is_some() {
                        let span = vars.first().map_or(Span::ZERO, |v| v.span);
                        return Err(self.err(
                            span,
                            "duplicate USING ORDER clause".to_string(),
                            None,
                        ));
                    }
                    let mut order = Vec::with_capacity(vars.len());
                    for v in vars {
                        match self.lookup(&v.text) {
                            Some(VarKind::Edge { idx, .. }) => order.push(idx),
                            _ => {
                                let edge_vars = self
                                    .vars
                                    .iter()
                                    .filter(|(_, k)| matches!(k, VarKind::Edge { .. }))
                                    .map(|(n, _)| n.as_str());
                                let hint = did_you_mean(&v.text, edge_vars);
                                return Err(self.err(
                                    v.span,
                                    format!(
                                        "USING ORDER refers to `{}`, which is not a named edge \
                                         variable",
                                        v.text
                                    ),
                                    hint,
                                ));
                            }
                        }
                    }
                    hints.edge_order = Some(order);
                }
            }
        }
        Ok(hints)
    }
}

/// Bind a parsed query against `catalog`, lowering it to a [`PatternQuery`].
/// `source` is the original query text, used to render diagnostics.
pub fn bind(
    query: &ast::Query,
    source: &str,
    catalog: &Catalog,
) -> Result<PatternQuery, Diagnostic> {
    let mut b =
        Binder { src: source, catalog, vars: Vec::new(), nodes: Vec::new(), edges: Vec::new() };
    b.bind_paths(&query.paths)?;

    // Top-level conjunctions become separate predicate entries, matching
    // how builder programs chain `.filter(..)` calls.
    let mut predicates = Vec::new();
    if let Some(expr) = &query.predicate {
        match expr {
            ast::Expr::And(parts) => {
                for p in parts {
                    predicates.push(b.lower_expr(p)?);
                }
            }
            other => predicates.push(b.lower_expr(other)?),
        }
    }

    let ret = b.lower_return(&query.ret)?;

    if query.distinct && !matches!(ret, ReturnSpec::Props(_)) {
        let span = query.ret.first().map_or(Span::ZERO, |r| r.span());
        return Err(b.err(
            span,
            "DISTINCT applies to projection returns only (grouped returns are already distinct \
             per key)"
                .to_string(),
            None,
        ));
    }

    let order_by = b.bind_order_by(&query.order_by, &query.ret, &ret)?;

    let limit = match &query.limit {
        Some(l) => {
            if !matches!(ret, ReturnSpec::Props(_) | ReturnSpec::GroupBy { .. }) {
                return Err(b.err(
                    l.span,
                    "LIMIT applies to row-producing returns (projections or grouped aggregates)"
                        .to_string(),
                    None,
                ));
            }
            match usize::try_from(l.value) {
                Ok(v) => Some(v),
                Err(_) => {
                    return Err(b.err(l.span, "LIMIT must be non-negative".to_string(), None))
                }
            }
        }
        None => None,
    };

    let hints = b.bind_using(&query.using)?;

    Ok(PatternQuery {
        nodes: b.nodes,
        edges: b.edges,
        predicates,
        ret,
        order_by,
        limit,
        distinct: query.distinct,
        hints,
    })
}

//! Parser property tests:
//!
//! 1. **Round-trip**: for random well-formed ASTs, pretty-print → re-parse
//!    → span-stripped equality. This pins the printer and parser to the
//!    same grammar — precedence, contextual keywords, literal forms.
//! 2. **Total on garbage**: the parser returns `Ok`/`Err` on arbitrary
//!    token soup and arbitrary char soup; it must never panic (the lexer
//!    and parser are also hot-panic-linted, this is the dynamic check).

use proptest::prelude::*;
use proptest::strategy::BoxedStrategy;

use gfcl_frontend::ast::{
    AggFunc, CmpOp, Dir, EdgePat, Expr, Ident, Limit, Lit, LitKind, NodePat, Operand, OrderItem,
    Path, PropRef, Query, RetItem, SortDir, StrOp, Using,
};
use gfcl_frontend::diag::Span;

// Identifier pools keep generated programs syntactically valid while still
// exercising contextual keywords (`order`, `date` are legal identifiers).
const VARS: &[&str] = &["a", "b", "c", "v0", "v1", "x", "y", "node", "order", "date"];
const LABELS: &[&str] = &["Person", "Comment", "knows", "likes", "T2", "lbl"];
const PROPS: &[&str] = &["id", "ts", "name", "val", "date", "p0"];
const STRINGS: &[&str] = &["", "abc", "a'b", "a\\b", "line\nbreak", "tab\there", "Ünïcode"];

fn ident(pool: &'static [&'static str]) -> impl Strategy<Value = Ident> {
    (0..pool.len()).prop_map(|i| Ident::new(pool[i], Span::ZERO))
}

fn lit() -> impl Strategy<Value = Lit> {
    let kind = prop_oneof![
        (-1_000_000_000_000i64..1_000_000_000_000).prop_map(LitKind::Int),
        ((-999i32..1000), (0i32..100))
            .prop_map(|(a, b)| LitKind::Float(f64::from(a) + f64::from(b) / 100.0)),
        (0..STRINGS.len()).prop_map(|i| LitKind::Str(STRINGS[i].to_owned())),
        any::<bool>().prop_map(LitKind::Bool),
        (-1_000_000_000_000i64..1_000_000_000_000).prop_map(LitKind::Date),
    ];
    kind.prop_map(|kind| Lit { kind, span: Span::ZERO })
}

fn str_lit() -> impl Strategy<Value = Lit> {
    (0..STRINGS.len())
        .prop_map(|i| Lit { kind: LitKind::Str(STRINGS[i].to_owned()), span: Span::ZERO })
}

fn prop_ref() -> impl Strategy<Value = PropRef> {
    (ident(VARS), ident(PROPS)).prop_map(|(var, prop)| PropRef { var, prop })
}

fn operand() -> impl Strategy<Value = Operand> {
    prop_oneof![prop_ref().prop_map(Operand::Prop), lit().prop_map(Operand::Lit)]
}

fn cmp_op() -> impl Strategy<Value = CmpOp> {
    prop_oneof![
        Just(CmpOp::Eq),
        Just(CmpOp::Ne),
        Just(CmpOp::Lt),
        Just(CmpOp::Le),
        Just(CmpOp::Gt),
        Just(CmpOp::Ge),
    ]
}

fn expr_leaf() -> impl Strategy<Value = Expr> {
    prop_oneof![
        (cmp_op(), operand(), operand()).prop_map(|(op, lhs, rhs)| Expr::Cmp { op, lhs, rhs }),
        (
            prop_oneof![Just(StrOp::Contains), Just(StrOp::StartsWith), Just(StrOp::EndsWith)],
            prop_ref(),
            str_lit()
        )
            .prop_map(|(op, prop, pattern)| Expr::StrMatch { op, prop, pattern }),
        (prop_ref(), proptest::collection::vec(lit(), 1..4))
            .prop_map(|(prop, values)| Expr::InSet { prop, values }),
    ]
}

/// Depth-bounded recursive expression strategy (the vendored proptest has no
/// `prop_recursive`, so recursion is explicit: depth 0 is a leaf, each level
/// above may wrap children in `AND` / `OR` / `NOT`).
fn expr_at(depth: u32) -> BoxedStrategy<Expr> {
    if depth == 0 {
        return expr_leaf().boxed();
    }
    let inner = expr_at(depth - 1);
    prop_oneof![
        expr_leaf().boxed(),
        proptest::collection::vec(inner.clone(), 2..4).prop_map(Expr::And).boxed(),
        proptest::collection::vec(inner.clone(), 2..4).prop_map(Expr::Or).boxed(),
        inner.prop_map(|e| Expr::Not(Box::new(e))).boxed(),
    ]
    .boxed()
}

fn expr() -> impl Strategy<Value = Expr> {
    expr_at(3)
}

fn node_pat() -> impl Strategy<Value = NodePat> {
    (ident(VARS), proptest::option::of(ident(LABELS)))
        .prop_map(|(var, label)| NodePat { var, label })
}

fn edge_pat() -> impl Strategy<Value = EdgePat> {
    (
        proptest::option::of(ident(VARS)),
        ident(LABELS),
        prop_oneof![Just(Dir::Right), Just(Dir::Left)],
    )
        .prop_map(|(var, label, dir)| EdgePat { var, label, dir, span: Span::ZERO })
}

fn path() -> impl Strategy<Value = Path> {
    (node_pat(), proptest::collection::vec((edge_pat(), node_pat()), 0..3))
        .prop_map(|(head, steps)| Path { head, steps })
}

fn ret_item() -> impl Strategy<Value = RetItem> {
    prop_oneof![
        prop_ref().prop_map(RetItem::Prop),
        Just(RetItem::CountStar { span: Span::ZERO }),
        (
            prop_oneof![
                Just((AggFunc::Count, false)),
                Just((AggFunc::Count, true)),
                Just((AggFunc::Sum, false)),
                Just((AggFunc::Min, false)),
                Just((AggFunc::Max, false)),
                Just((AggFunc::Avg, false)),
            ],
            prop_ref()
        )
            .prop_map(|((func, distinct), prop)| RetItem::Agg {
                func,
                distinct,
                prop,
                span: Span::ZERO
            }),
    ]
}

fn order_item() -> impl Strategy<Value = OrderItem> {
    (ret_item(), proptest::option::of(prop_oneof![Just(SortDir::Asc), Just(SortDir::Desc)]))
        .prop_map(|(item, dir)| OrderItem { item, dir })
}

fn using() -> impl Strategy<Value = Using> {
    prop_oneof![
        ident(VARS).prop_map(Using::Start),
        proptest::collection::vec(ident(VARS), 1..4).prop_map(Using::Order),
    ]
}

fn query() -> impl Strategy<Value = Query> {
    (
        proptest::collection::vec(path(), 1..3),
        proptest::option::of(expr()),
        any::<bool>(),
        proptest::collection::vec(ret_item(), 1..4),
        proptest::collection::vec(order_item(), 0..3),
        proptest::option::of((0i64..1_000_000).prop_map(|value| Limit { value, span: Span::ZERO })),
        proptest::collection::vec(using(), 0..3),
    )
        .prop_map(|(paths, predicate, distinct, ret, order_by, limit, using)| Query {
            paths,
            predicate,
            distinct,
            ret,
            order_by,
            limit,
            using,
        })
}

/// Fragments for the token-soup test: valid tokens, near-tokens, and junk.
const SOUP: &[&str] = &[
    "MATCH",
    "WHERE",
    "RETURN",
    "ORDER",
    "BY",
    "LIMIT",
    "USING",
    "START",
    "DISTINCT",
    "AND",
    "OR",
    "NOT",
    "IN",
    "CONTAINS",
    "STARTS",
    "WITH",
    "count",
    "sum",
    "date",
    "(",
    ")",
    "[",
    "]",
    "-",
    "->",
    "<-",
    "<",
    "<=",
    "<>",
    ">=",
    "=",
    "*",
    ",",
    ".",
    ":",
    "(a:Person)",
    "-[k:knows]->",
    "a.id",
    "'str",
    "'ok'",
    "''",
    "\\",
    "123",
    "1_2_3",
    "12.5",
    "9999999999999999999999",
    "-7",
    "true",
    "false",
    "count(*)",
    "//",
    "--",
    ";",
    "$",
    "€",
    "\n",
    "x",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// print → parse → strip spans → identical AST.
    #[test]
    fn pretty_printed_queries_reparse_identically(q in query()) {
        let text = q.to_string();
        let mut reparsed = gfcl_frontend::parse(&text)
            .unwrap_or_else(|e| panic!("printer emitted unparsable text:\n{text}\n{e}"));
        reparsed.strip_spans();
        prop_assert_eq!(reparsed, q, "round-trip diverged for:\n{}", text);
    }

    /// Token soup: any sequence of plausible fragments parses to Ok or a
    /// Diagnostic — never a panic.
    #[test]
    fn parser_is_total_on_token_soup(
        picks in proptest::collection::vec(0..SOUP.len(), 0..40),
    ) {
        let text = picks.iter().map(|&i| SOUP[i]).collect::<Vec<_>>().join(" ");
        let _ = gfcl_frontend::parse(&text);
    }

    /// Char soup: arbitrary unicode input is handled the same way.
    #[test]
    fn parser_is_total_on_char_soup(
        codepoints in proptest::collection::vec(0u32..0x11_0000, 0..80),
    ) {
        let text: String =
            codepoints.into_iter().map(|c| char::from_u32(c).unwrap_or('\u{FFFD}')).collect();
        let _ = gfcl_frontend::parse(&text);
    }
}

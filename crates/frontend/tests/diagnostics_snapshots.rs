//! Diagnostic-quality snapshots: every class of malformed query is pinned
//! with its full rendered diagnostic — message, `--> query:line:col`
//! locus, caret snippet, and any "did you mean" / help hint. A wording or
//! caret-placement regression shows up as a reviewable snapshot diff.
//!
//! To regenerate after an intentional change:
//!
//! ```sh
//! GFCL_BLESS=1 cargo test -p gfcl_frontend --test diagnostics_snapshots
//! ```

use gfcl_datagen::SocialParams;
use gfcl_storage::Catalog;

fn catalog() -> Catalog {
    gfcl_datagen::generate_social(SocialParams::scale(10)).catalog
}

/// `(name, malformed query)` — compiled against the social catalog; each
/// must fail, and the rendered diagnostic is snapshotted.
const CASES: &[(&str, &str)] = &[
    // -- lex ---------------------------------------------------------------
    ("lex-unterminated-string", "MATCH (a:Person) WHERE a.fName = 'Ali RETURN a.id"),
    ("lex-unknown-escape", "MATCH (a:Person) WHERE a.fName = 'a\\q' RETURN a.id"),
    ("lex-int-overflow", "MATCH (a:Person) WHERE a.id = 99999999999999999999 RETURN a.id"),
    ("lex-unknown-char", "MATCH (a:Person) RETURN a.id;"),
    // -- parse -------------------------------------------------------------
    ("parse-missing-return", "MATCH (a:Person)"),
    ("parse-undirected-edge", "MATCH (a:Person)-[k:knows]-(b:Person) RETURN a.id"),
    ("parse-trailing-tokens", "MATCH (a:Person) RETURN a.id RETURN a.id"),
    ("parse-unclosed-node", "MATCH (a:Person RETURN a.id"),
    ("parse-count-of-variable", "MATCH (a:Person) RETURN count(a)"),
    ("parse-limit-not-integer", "MATCH (a:Person) RETURN a.id LIMIT many"),
    ("parse-negative-limit", "MATCH (a:Person) RETURN a.id LIMIT -1"),
    ("parse-empty-in-list", "MATCH (a:Person) WHERE a.fName IN [] RETURN a.id"),
    ("parse-order-without-by", "MATCH (a:Person) RETURN a.id ORDER a.id"),
    // -- bind: pattern variables -------------------------------------------
    ("bind-unknown-node-label", "MATCH (a:Persn) RETURN a.id"),
    ("bind-unknown-edge-label", "MATCH (a:Person)-[k:nows]->(b:Person) RETURN a.id"),
    ("bind-duplicate-variable", "MATCH (a:Person)-[k:knows]->(a:Person) RETURN a.id"),
    (
        "bind-edge-var-used-as-node",
        "MATCH (a:Person)-[k:knows]->(b:Person), (k)-[l:likes]->(c:Comment) RETURN a.id",
    ),
    ("bind-undeclared-in-path", "MATCH (a:Person)-[k:knows]->(b) RETURN a.id"),
    ("bind-undeclared-in-return", "MATCH (person:Person) RETURN persn.id"),
    ("bind-unknown-property", "MATCH (a:Person) RETURN a.fNam"),
    // -- bind: typing ------------------------------------------------------
    ("bind-compare-int-with-string", "MATCH (a:Person) WHERE a.id = 'five' RETURN a.id"),
    ("bind-compare-string-with-int", "MATCH (a:Person) WHERE a.fName = 42 RETURN a.id"),
    ("bind-contains-on-int", "MATCH (a:Person) WHERE a.id CONTAINS '4' RETURN a.id"),
    ("bind-in-on-int", "MATCH (a:Person) WHERE a.id IN ['1', '2'] RETURN a.id"),
    ("bind-in-nonstring-element", "MATCH (a:Person) WHERE a.fName IN ['x', 3] RETURN a.id"),
    ("bind-sum-of-string", "MATCH (a:Person) RETURN sum(a.fName)"),
    ("bind-avg-of-string", "MATCH (a:Person) RETURN avg(a.gender)"),
    // -- bind: return shape ------------------------------------------------
    ("bind-keys-after-aggregates", "MATCH (a:Person) RETURN count(*), a.gender"),
    ("bind-order-by-on-count", "MATCH (a:Person) RETURN count(*) ORDER BY count(*)"),
    ("bind-order-by-key-not-returned", "MATCH (a:Person) RETURN a.fName ORDER BY a.lName"),
    ("bind-distinct-on-grouped", "MATCH (a:Person) RETURN DISTINCT a.gender, count(*)"),
    ("bind-limit-on-scalar-agg", "MATCH (a:Person) RETURN sum(a.id) LIMIT 3"),
    // -- bind: hints -------------------------------------------------------
    (
        "bind-using-start-on-edge",
        "MATCH (a:Person)-[k:knows]->(b:Person) RETURN count(*) USING START k",
    ),
    (
        "bind-using-order-on-node",
        "MATCH (a:Person)-[k:knows]->(b:Person) RETURN count(*) USING ORDER a",
    ),
    (
        "bind-duplicate-using-start",
        "MATCH (a:Person)-[k:knows]->(b:Person) RETURN count(*) USING START a USING START b",
    ),
];

fn assert_snapshot(file: &str, actual: &str) {
    let path = format!("{}/tests/snapshots/{file}", env!("CARGO_MANIFEST_DIR"));
    if std::env::var_os("GFCL_BLESS").is_some() {
        std::fs::write(&path, actual).unwrap_or_else(|e| panic!("cannot bless {path}: {e}"));
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("cannot read snapshot {path}: {e}; run with GFCL_BLESS=1 to create it")
    });
    if expected != actual {
        let diverge = expected
            .lines()
            .zip(actual.lines())
            .position(|(a, b)| a != b)
            .unwrap_or_else(|| expected.lines().count().min(actual.lines().count()));
        panic!(
            "diagnostics snapshot {file} changed at line {}: \n  expected: {:?}\n  actual:   {:?}\n\
             If intentional, re-bless with GFCL_BLESS=1 and review the diff.",
            diverge + 1,
            expected.lines().nth(diverge).unwrap_or(""),
            actual.lines().nth(diverge).unwrap_or(""),
        );
    }
}

#[test]
fn malformed_queries_render_pinned_diagnostics() {
    let catalog = catalog();
    let mut golden = String::new();
    for (name, query) in CASES {
        let err = match gfcl_frontend::compile(query, &catalog) {
            Err(e) => e,
            Ok(_) => panic!("{name}: expected a diagnostic, but the query compiled"),
        };
        golden.push_str(&format!("== {name} ==\n{query}\n--\n{err}\n\n"));
    }
    assert_snapshot("diagnostics.txt", &golden);
}

/// A query can be well-formed for the frontend yet rejected by the planner
/// — e.g. hand hints forcing an order where a chain predicate spans two
/// unflat list groups. The frontend's job is to pass the planner's
/// `[rule]`-tagged error through unchanged; pin one such case.
#[test]
fn planner_errors_surface_behind_well_formed_text() {
    let catalog = catalog();
    let q = "MATCH (a:Person)-[k1:knows]->(b:Person)-[k2:knows]->(c:Person)\n\
             WHERE k2.date > k1.date\n\
             RETURN count(*)\n\
             USING START b\n\
             USING ORDER k2, k1";
    let bound = gfcl_frontend::compile(q, &catalog).expect("frontend accepts the query");
    let err = gfcl_core::plan::plan(&bound, &catalog).expect_err("planner rejects the order");
    let msg = err.to_string();
    assert!(msg.contains("unflat"), "unexpected planner error: {msg}");
}

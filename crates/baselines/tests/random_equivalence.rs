//! Randomized cross-engine equivalence (DESIGN.md invariant 6): all four
//! engines must return identical canonical results on randomized pattern
//! queries over randomized small graphs, under randomized storage
//! configurations.

use std::sync::Arc;

use gfcl_baselines::{GfCvEngine, GfRvEngine, RelEngine};
use gfcl_common::DataType;
use gfcl_core::query::{col, ge, gt, le, lit, lt, PatternQuery, QueryBuilder};
use gfcl_core::{Engine, GfClEngine};
use gfcl_storage::{
    Cardinality, Catalog, ColumnarGraph, EdgePropLayout, PropertyDef, RawGraph, RowGraph,
    StorageConfig,
};
use proptest::prelude::*;

/// A random two-label graph: A-nodes with an int property, B-nodes with an
/// int property, an n-n edge label A->B with an int property, an n-1 label
/// A->B, and an n-n self-label A->A.
#[derive(Debug, Clone)]
struct RandomGraph {
    n_a: usize,
    n_b: usize,
    ab: Vec<(u64, u64, i64)>,
    aa: Vec<(u64, u64, i64)>,
    /// n-1: at most one per A (dst, prop).
    single: Vec<Option<(u64, i64)>>,
    a_props: Vec<Option<i64>>,
    b_props: Vec<Option<i64>>,
}

fn graph_strategy() -> impl Strategy<Value = RandomGraph> {
    (2usize..12, 2usize..12)
        .prop_flat_map(|(n_a, n_b)| {
            let ab = proptest::collection::vec((0..n_a as u64, 0..n_b as u64, -20i64..20), 0..60);
            let aa = proptest::collection::vec((0..n_a as u64, 0..n_a as u64, -20i64..20), 0..40);
            let single =
                proptest::collection::vec(proptest::option::of((0..n_b as u64, -20i64..20)), n_a);
            let a_props =
                proptest::collection::vec(proptest::option::weighted(0.8, -50i64..50), n_a);
            let b_props =
                proptest::collection::vec(proptest::option::weighted(0.8, -50i64..50), n_b);
            (Just(n_a), Just(n_b), ab, aa, single, a_props, b_props)
        })
        .prop_map(|(n_a, n_b, ab, aa, single, a_props, b_props)| RandomGraph {
            n_a,
            n_b,
            ab,
            aa,
            single,
            a_props,
            b_props,
        })
}

fn to_raw(g: &RandomGraph) -> RawGraph {
    let mut cat = Catalog::new();
    let a = cat.add_vertex_label("A", vec![PropertyDef::new("x", DataType::Int64)]).unwrap();
    let b = cat.add_vertex_label("B", vec![PropertyDef::new("y", DataType::Int64)]).unwrap();
    let ab = cat
        .add_edge_label(
            "AB",
            a,
            b,
            Cardinality::ManyMany,
            vec![PropertyDef::new("w", DataType::Int64)],
        )
        .unwrap();
    let aa = cat
        .add_edge_label(
            "AA",
            a,
            a,
            Cardinality::ManyMany,
            vec![PropertyDef::new("w", DataType::Int64)],
        )
        .unwrap();
    let sg = cat
        .add_edge_label(
            "SINGLE",
            a,
            b,
            Cardinality::ManyOne,
            vec![PropertyDef::new("w", DataType::Int64)],
        )
        .unwrap();
    let mut raw = RawGraph::new(cat);
    raw.vertices[a as usize].count = g.n_a;
    for v in &g.a_props {
        match v {
            Some(x) => raw.vertices[a as usize].props[0].push_i64(*x),
            None => raw.vertices[a as usize].props[0].push_null(),
        }
    }
    raw.vertices[b as usize].count = g.n_b;
    for v in &g.b_props {
        match v {
            Some(x) => raw.vertices[b as usize].props[0].push_i64(*x),
            None => raw.vertices[b as usize].props[0].push_null(),
        }
    }
    for &(s, d, w) in &g.ab {
        let t = &mut raw.edges[ab as usize];
        t.src.push(s);
        t.dst.push(d);
        t.props[0].push_i64(w);
    }
    for &(s, d, w) in &g.aa {
        let t = &mut raw.edges[aa as usize];
        t.src.push(s);
        t.dst.push(d);
        t.props[0].push_i64(w);
    }
    for (s, e) in g.single.iter().enumerate() {
        if let Some((d, w)) = e {
            let t = &mut raw.edges[sg as usize];
            t.src.push(s as u64);
            t.dst.push(*d);
            t.props[0].push_i64(*w);
        }
    }
    raw.validate().unwrap();
    raw
}

/// A small family of randomized queries exercising paths, stars,
/// single-cardinality joins, flat/unflat predicates and all return kinds.
fn queries(t1: i64, t2: i64) -> Vec<PatternQuery> {
    let path = QueryBuilder::default()
        .node("a1", "A")
        .node("a2", "A")
        .node("b", "B")
        .edge("e1", "AA", "a1", "a2")
        .edge("e2", "AB", "a2", "b")
        .filter(gt(col("e2", "w"), col("e1", "w")))
        .filter(ge(col("a1", "x"), lit(t1)))
        .returns_count()
        .build();
    let star = QueryBuilder::default()
        .node("a", "A")
        .node("b1", "B")
        .node("b2", "B")
        .edge("e1", "AB", "a", "b1")
        .edge("e2", "AB", "a", "b2")
        .filter(lt(col("b1", "y"), lit(t2)))
        .returns(&[("a", "x"), ("b2", "y")])
        .build();
    let single = QueryBuilder::default()
        .node("a", "A")
        .node("b", "B")
        .edge("s", "SINGLE", "a", "b")
        .filter(le(col("s", "w"), lit(t2)))
        .returns_sum("a", "x")
        .build();
    let backward = QueryBuilder::default()
        .node("a", "A")
        .node("b", "B")
        .edge("e", "AB", "a", "b")
        .filter(gt(col("e", "w"), lit(t1)))
        .start_at("b")
        .returns_count()
        .build();
    let agg = QueryBuilder::default()
        .node("a1", "A")
        .node("a2", "A")
        .edge("e", "AA", "a1", "a2")
        .returns_max("e", "w")
        .build();
    vec![path, star, single, backward, agg]
}

fn configs() -> Vec<StorageConfig> {
    vec![
        StorageConfig::default(),
        StorageConfig::cols(),
        StorageConfig { edge_prop_layout: EdgePropLayout::EdgeColumns, ..StorageConfig::default() },
        StorageConfig {
            edge_prop_layout: EdgePropLayout::DoubleIndexed,
            single_card_in_vcols: false,
            ..StorageConfig::default()
        },
        StorageConfig {
            edge_prop_layout: EdgePropLayout::Pages { k: 2 },
            ..StorageConfig::default()
        },
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn engines_agree_on_random_graphs(g in graph_strategy(), t1 in -20i64..20, t2 in -20i64..20) {
        let raw = to_raw(&g);
        let row = Arc::new(RowGraph::build(&raw).unwrap());
        for cfg in configs() {
            let colg = Arc::new(ColumnarGraph::build(&raw, cfg).unwrap());
            let engines: Vec<Box<dyn Engine>> = vec![
                Box::new(GfClEngine::new(colg.clone())),
                Box::new(GfCvEngine::new(colg.clone())),
                Box::new(GfRvEngine::new(row.clone())),
                Box::new(RelEngine::new(colg)),
            ];
            for (qi, q) in queries(t1, t2).into_iter().enumerate() {
                let canons: Vec<String> = engines
                    .iter()
                    .map(|e| e.execute(&q).unwrap().canonical())
                    .collect();
                for (i, c) in canons.iter().enumerate() {
                    prop_assert_eq!(
                        c, &canons[0],
                        "query {} under {:?}: {} vs {}",
                        qi, cfg, engines[i].name(), engines[0].name()
                    );
                }
            }
        }
    }
}

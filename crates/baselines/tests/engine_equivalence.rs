//! Invariant 6 (DESIGN.md): all four engines return identical results on
//! the same logical queries — counts, row multisets, and aggregates — over
//! both hand-built and generated graphs, under multiple storage
//! configurations.

use std::sync::Arc;

use gfcl_baselines::{GfCvEngine, GfRvEngine, RelEngine};
use gfcl_core::query::{col, contains, eq, ge, gt, lit, lt, starts_with, PatternQuery};
use gfcl_core::{Engine, GfClEngine};
use gfcl_datagen::{MovieParams, PowerLawParams, SocialParams};
use gfcl_storage::{ColumnarGraph, EdgePropLayout, RawGraph, RowGraph, StorageConfig};

/// All four engines over one raw graph.
fn engines(raw: &RawGraph, cfg: StorageConfig) -> Vec<Box<dyn Engine>> {
    let col_graph = Arc::new(ColumnarGraph::build(raw, cfg).unwrap());
    let row_graph = Arc::new(RowGraph::build(raw).unwrap());
    vec![
        Box::new(GfClEngine::new(col_graph.clone())),
        Box::new(GfCvEngine::new(col_graph.clone())),
        Box::new(GfRvEngine::new(row_graph)),
        Box::new(RelEngine::new(col_graph)),
    ]
}

fn assert_all_agree(raw: &RawGraph, cfg: StorageConfig, queries: &[(&str, PatternQuery)]) {
    let engines = engines(raw, cfg);
    for (name, q) in queries {
        let mut outputs = Vec::new();
        for e in &engines {
            let out =
                e.execute(q).unwrap_or_else(|err| panic!("{name} failed on {}: {err}", e.name()));
            outputs.push((e.name(), out.canonical()));
        }
        let reference = &outputs[0].1;
        for (ename, o) in &outputs[1..] {
            assert_eq!(o, reference, "query {name}: {ename} disagrees with {}", outputs[0].0);
        }
    }
}

fn example_queries() -> Vec<(&'static str, PatternQuery)> {
    vec![
        (
            "workat-filter",
            PatternQuery::builder()
                .node("a", "PERSON")
                .node("b", "ORG")
                .edge("e", "WORKAT", "a", "b")
                .filter(gt(col("a", "age"), lit(22)))
                .filter(lt(col("b", "estd"), lit(2015)))
                .returns(&[("a", "name"), ("b", "name")])
                .build(),
        ),
        (
            "two-hop-count",
            PatternQuery::builder()
                .node("a", "PERSON")
                .node("b", "PERSON")
                .node("c", "PERSON")
                .edge("e1", "FOLLOWS", "a", "b")
                .edge("e2", "FOLLOWS", "b", "c")
                .filter(gt(col("e2", "since"), col("e1", "since")))
                .returns_count()
                .build(),
        ),
        (
            "path-into-single-card",
            PatternQuery::builder()
                .node("a", "PERSON")
                .node("b", "PERSON")
                .node("o", "ORG")
                .edge("e1", "FOLLOWS", "a", "b")
                .edge("e2", "STUDYAT", "b", "o")
                .filter(gt(col("e2", "doj"), lit(2014)))
                .returns(&[("a", "name"), ("o", "name")])
                .build(),
        ),
        (
            "string-contains",
            PatternQuery::builder()
                .node("a", "PERSON")
                .node("b", "PERSON")
                .edge("e", "FOLLOWS", "a", "b")
                .filter(contains("a", "name", "e"))
                .returns_count()
                .build(),
        ),
        (
            "sum-agg",
            PatternQuery::builder()
                .node("a", "PERSON")
                .node("b", "PERSON")
                .edge("e", "FOLLOWS", "a", "b")
                .returns_sum("a", "age")
                .build(),
        ),
        (
            "min-max",
            PatternQuery::builder()
                .node("a", "PERSON")
                .node("b", "PERSON")
                .edge("e", "FOLLOWS", "a", "b")
                .returns_max("e", "since")
                .build(),
        ),
    ]
}

#[test]
fn example_graph_all_configs() {
    let raw = RawGraph::example();
    let mut configs: Vec<StorageConfig> =
        StorageConfig::ladder().into_iter().map(|(_, c)| c).collect();
    configs.push(StorageConfig {
        edge_prop_layout: EdgePropLayout::EdgeColumns,
        ..StorageConfig::default()
    });
    configs.push(StorageConfig {
        edge_prop_layout: EdgePropLayout::DoubleIndexed,
        ..StorageConfig::default()
    });
    configs.push(StorageConfig { single_card_in_vcols: false, ..StorageConfig::default() });
    for cfg in configs {
        assert_all_agree(&raw, cfg, &example_queries());
    }
}

#[test]
fn social_graph_queries() {
    let raw = gfcl_datagen::generate_social(SocialParams::scale(80));
    let queries = vec![
        (
            "friends-of-friends",
            PatternQuery::builder()
                .node("p", "Person")
                .node("f", "Person")
                .node("ff", "Person")
                .edge("k1", "knows", "p", "f")
                .edge("k2", "knows", "f", "ff")
                .filter(eq(col("p", "id"), lit(7)))
                .returns(&[("ff", "id")])
                .build(),
        ),
        (
            "comment-likes-date-filter",
            PatternQuery::builder()
                .node("p", "Person")
                .node("c", "Comment")
                .edge("l", "likes", "p", "c")
                .filter(lt(col("l", "date"), lit(1_400_000_000)))
                .filter(ge(col("c", "length"), lit(100)))
                .returns_count()
                .build(),
        ),
        (
            "reply-path-backward",
            PatternQuery::builder()
                .node("c", "Comment")
                .node("po", "Post")
                .node("f", "Forum")
                .edge("r", "replyOf", "c", "po")
                .edge("ct", "containerOf", "f", "po")
                .start_at("c")
                .returns_count()
                .build(),
        ),
        (
            "work-study-star",
            PatternQuery::builder()
                .node("p", "Person")
                .node("o1", "Organisation")
                .node("o2", "Organisation")
                .edge("w", "workAt", "p", "o1")
                .edge("s", "studyAt", "p", "o2")
                .filter(lt(col("w", "year"), lit(2016)))
                .returns_count()
                .build(),
        ),
        (
            "located-in-place-name",
            PatternQuery::builder()
                .node("p", "Person")
                .node("pl", "Place")
                .edge("loc", "personIsLocatedIn", "p", "pl")
                .filter(eq(col("pl", "name"), lit("India")))
                .returns_count()
                .build(),
        ),
    ];
    assert_all_agree(&raw, StorageConfig::default(), &queries);
    assert_all_agree(&raw, StorageConfig::cols(), &queries);
}

#[test]
fn movie_graph_star_queries() {
    let raw = gfcl_datagen::generate_movies(MovieParams::scale(150));
    let queries = vec![
        (
            "job-like-2a",
            PatternQuery::builder()
                .node("t", "title")
                .node("cn", "company_name")
                .node("k", "keyword")
                .edge("mc", "movie_companies", "t", "cn")
                .edge("mk", "movie_keyword", "t", "k")
                .filter(eq(col("cn", "country_code"), lit("[de]")))
                .filter(eq(col("k", "keyword"), lit("character-name-in-title")))
                .returns_count()
                .build(),
        ),
        (
            "job-like-note-contains",
            PatternQuery::builder()
                .node("t", "title")
                .node("cn", "company_name")
                .edge("mc", "movie_companies", "t", "cn")
                .filter(eq(col("mc", "company_type"), lit("production company")))
                .filter(contains("mc", "note", "(co-production)"))
                .returns_count()
                .build(),
        ),
        (
            "cast-star-with-satellite",
            PatternQuery::builder()
                .node("t", "title")
                .node("n", "name")
                .node("mi", "movie_info")
                .edge("ci", "cast_info", "t", "n")
                .edge("hmi", "has_movie_info", "t", "mi")
                .filter(eq(col("mi", "info_type"), lit("genres")))
                .filter(eq(col("mi", "info"), lit("Horror")))
                .filter(eq(col("n", "gender"), lit("m")))
                .returns_count()
                .build(),
        ),
        (
            "rating-string-range",
            PatternQuery::builder()
                .node("t", "title")
                .node("mii", "mov_info_2")
                .edge("h2", "has_mov_info_2", "t", "mii")
                .filter(eq(col("mii", "info_type"), lit("rating")))
                .filter(gt(col("mii", "info"), lit("8.0")))
                .filter(gt(col("t", "production_year"), lit(2000)))
                .returns_count()
                .build(),
        ),
        (
            "person-info-starts-with",
            PatternQuery::builder()
                .node("n", "name")
                .node("pi", "person_info")
                .edge("hpi", "has_person_info", "n", "pi")
                .filter(starts_with("n", "name", "Downey"))
                .filter(eq(col("pi", "info_type"), lit("trivia")))
                .returns_count()
                .build(),
        ),
    ];
    assert_all_agree(&raw, StorageConfig::default(), &queries);
}

#[test]
fn powerlaw_khop_counts() {
    let raw = gfcl_datagen::generate_powerlaw(PowerLawParams {
        nodes: 300,
        avg_degree: 6.0,
        exponent: 1.8,
        seed: 42,
    });
    let one_hop = PatternQuery::builder()
        .node("a", "NODE")
        .node("b", "NODE")
        .edge("e", "LINK", "a", "b")
        .filter(gt(col("e", "ts"), lit(1_350_000_000)))
        .returns_count()
        .build();
    let two_hop = PatternQuery::builder()
        .node("a", "NODE")
        .node("b", "NODE")
        .node("c", "NODE")
        .edge("e1", "LINK", "a", "b")
        .edge("e2", "LINK", "b", "c")
        .filter(gt(col("e2", "ts"), col("e1", "ts")))
        .returns_count()
        .build();
    assert_all_agree(
        &raw,
        StorageConfig::default(),
        &[("1-hop", one_hop.clone()), ("2-hop", two_hop.clone())],
    );
    // Edge-column and double-indexed layouts agree too (Section 8.3 setup).
    for layout in [EdgePropLayout::EdgeColumns, EdgePropLayout::DoubleIndexed] {
        assert_all_agree(
            &raw,
            StorageConfig { edge_prop_layout: layout, ..StorageConfig::default() },
            &[("1-hop", one_hop.clone()), ("2-hop", two_hop.clone())],
        );
    }
}

#[test]
fn sum_overflow_saturates_identically_on_every_engine() {
    // Regression: the baselines' whole-result SUM used to truncate the i128
    // accumulator with `as i64`, wrapping where GF-CL saturates.
    use gfcl_common::{DataType, Value};
    use gfcl_storage::{Catalog, PropertyDef};

    let mut cat = Catalog::new();
    let a = cat.add_vertex_label("A", vec![PropertyDef::new("x", DataType::Int64)]).unwrap();
    let mut raw = RawGraph::new(cat);
    raw.vertices[a as usize].count = 2;
    raw.vertices[a as usize].props[0].push_i64(i64::MAX - 1);
    raw.vertices[a as usize].props[0].push_i64(i64::MAX - 1);
    raw.validate().unwrap();

    let q = PatternQuery::builder().node("a", "A").returns_sum("a", "x").build();
    for e in engines(&raw, StorageConfig::default()) {
        match e.execute(&q).unwrap() {
            gfcl_core::QueryOutput::Agg { value, .. } => {
                assert_eq!(value, Value::Int64(i64::MAX), "{} must saturate", e.name());
            }
            other => panic!("{}: expected aggregate, got {other:?}", e.name()),
        }
    }
}

#[test]
fn empty_whole_result_aggregate_is_one_row_on_every_engine() {
    // SQL: an aggregate without GROUP BY returns one row over an empty
    // match set; all engines share the seeded keyless group.
    use gfcl_core::query::Agg;
    let raw = RawGraph::example();
    let q = PatternQuery::builder()
        .node("a", "PERSON")
        .filter(gt(col("a", "age"), lit(100)))
        .returns_agg(vec![Agg::count_star(), Agg::sum("a", "age"), Agg::min("a", "age")])
        .build();
    let reference = "rows[count(*),sum(a.age),min(a.age)]:0|NULL|NULL";
    for e in engines(&raw, StorageConfig::default()) {
        assert_eq!(e.execute(&q).unwrap().canonical(), reference, "{}", e.name());
    }
}

//! GF-CV: columnar storage with a Volcano-style tuple-at-a-time processor
//! (Section 8.6's ablation point, isolating processor gains from storage
//! gains).

use std::sync::Arc;

use gfcl_common::{Direction, LabelId, Result, Value};
use gfcl_core::engine::{Engine, QueryOutput};
use gfcl_core::plan::LogicalPlan;
use gfcl_storage::{AdjIndex, Catalog, ColumnarGraph, DeltaSnapshot, GraphSnapshot};

use crate::volcano::{self, AdjList, DeltaOverlay, EdgeSlot, VolcanoStorage};

/// Columnar-store adapter for the Volcano executor.
struct CvStore<'g> {
    g: &'g ColumnarGraph,
}

impl VolcanoStorage for CvStore<'_> {
    fn catalog(&self) -> &Catalog {
        self.g.catalog()
    }

    fn vertex_count(&self, label: LabelId) -> usize {
        self.g.vertex_count(label)
    }

    fn lookup_pk(&self, label: LabelId, key: i64) -> Option<u64> {
        self.g.lookup_pk(label, key)
    }

    fn adj_list(&self, elabel: LabelId, dir: Direction, from: u64) -> AdjList {
        match self.g.adj(elabel, dir) {
            AdjIndex::Csr(c) => {
                let (start, len) = c.list(from);
                AdjList::Csr { start, len: len as u64 }
            }
            AdjIndex::SingleCard(s) => AdjList::Single(s.nbr(from)),
        }
    }

    fn csr_entry(&self, elabel: LabelId, dir: Direction, pos: u64) -> (u64, u64) {
        let csr = self.g.adj(elabel, dir).as_csr().expect("csr_entry on CSR adjacency");
        // The edge token is the CSR position; property reads resolve it
        // through the same EdgePropRead machinery as the LBP — but one
        // value at a time, copied into the tuple.
        (csr.nbr_at(pos), pos)
    }

    fn vertex_prop(&self, label: LabelId, off: u64, prop: usize) -> Value {
        self.g.vertex_prop(label, prop).value(off as usize)
    }

    fn edge_prop(&self, elabel: LabelId, dir: Direction, slot: EdgeSlot, prop: usize) -> Value {
        self.g.read_edge_prop(elabel, dir, slot.from, slot.token, prop).unwrap_or(Value::Null)
    }
}

/// GF-CV: Columnar storage, Volcano-style processor.
pub struct GfCvEngine {
    graph: Arc<ColumnarGraph>,
    /// Delta overlay when executing against a mutable-store snapshot.
    delta: Option<Arc<DeltaSnapshot>>,
}

impl GfCvEngine {
    pub fn new(graph: Arc<ColumnarGraph>) -> Self {
        GfCvEngine { graph, delta: None }
    }

    /// Engine over one MVCC snapshot of a mutable `GraphStore`: queries
    /// observe `(baseline ⊎ delta) ∖ tombstones` as of the snapshot epoch.
    pub fn with_snapshot(snapshot: &GraphSnapshot) -> Self {
        let delta = snapshot.delta();
        GfCvEngine {
            graph: Arc::clone(snapshot.base()),
            delta: (!delta.is_empty()).then(|| Arc::clone(delta)),
        }
    }

    pub fn graph(&self) -> &ColumnarGraph {
        &self.graph
    }
}

impl Engine for GfCvEngine {
    fn name(&self) -> &'static str {
        "GF-CV"
    }

    fn catalog(&self) -> &Catalog {
        self.graph.catalog()
    }

    fn run_plan(&self, plan: &LogicalPlan) -> Result<QueryOutput> {
        // Per-query fault domain: a failed page read during execution
        // surfaces as this query's storage error (checked before the
        // result is published, so a placeholder page can't leak into it)
        // instead of a process panic.
        let token = Arc::new(gfcl_common::CancelToken::new());
        let _scope = gfcl_common::fault_scope(&token);
        let store = CvStore { g: &self.graph };
        let out = match &self.delta {
            Some(d) => volcano::execute(&DeltaOverlay::new(store, d), plan),
            None => volcano::execute(&store, plan),
        }?;
        token.check()?;
        Ok(out)
    }
}

//! Value-at-a-time predicate evaluation for the baseline engines.
//!
//! Unlike the LBP's compiled predicates (which probe dictionary-code
//! bitmaps), the Volcano and relational baselines evaluate expressions over
//! materialized [`Value`]s — including real string comparisons — exactly as
//! a row-oriented interpreter would. Three-valued logic matches the LBP.

use gfcl_common::Value;
use gfcl_core::plan::{PlanExpr, PlanScalar, SlotDef, SlotId, SlotSource};
use gfcl_core::query::{CmpOp, StrOp};

/// `slot -> property index` of pattern node `node`, for resolving
/// pushed-down scan predicates against storage (`usize::MAX` for slots of
/// other variables, which pushed predicates never touch). Shared by the
/// Volcano and relational scans so their slot resolution cannot diverge.
pub fn scan_prop_map(slots: &[SlotDef], node: usize) -> Vec<usize> {
    slots
        .iter()
        .map(|def| match def.source {
            SlotSource::NodeProp { node: n, prop } if n == node => prop,
            _ => usize::MAX,
        })
        .collect()
}

/// Evaluate `expr` with slot values provided by `slot`. `None` = UNKNOWN.
pub fn eval_expr(expr: &PlanExpr, slot: &impl Fn(SlotId) -> Value) -> Option<bool> {
    match expr {
        PlanExpr::Cmp { op, lhs, rhs } => {
            let a = scalar(lhs, slot);
            let b = scalar(rhs, slot);
            let ord = a.compare(&b)?;
            Some(cmp_holds(*op, ord))
        }
        PlanExpr::StrMatch { op, slot: s, pattern } => {
            let v = slot(*s);
            let text = v.as_str()?;
            Some(match op {
                StrOp::Contains => text.contains(pattern.as_str()),
                StrOp::StartsWith => text.starts_with(pattern.as_str()),
                StrOp::EndsWith => text.ends_with(pattern.as_str()),
            })
        }
        PlanExpr::InSet { slot: s, values } => {
            let v = slot(*s);
            if v.is_null() {
                return None;
            }
            Some(values.iter().any(|k| v.compare(k) == Some(std::cmp::Ordering::Equal)))
        }
        PlanExpr::And(es) => {
            let mut unknown = false;
            for e in es {
                match eval_expr(e, slot) {
                    Some(false) => return Some(false),
                    None => unknown = true,
                    Some(true) => {}
                }
            }
            if unknown {
                None
            } else {
                Some(true)
            }
        }
        PlanExpr::Or(es) => {
            let mut unknown = false;
            for e in es {
                match eval_expr(e, slot) {
                    Some(true) => return Some(true),
                    None => unknown = true,
                    Some(false) => {}
                }
            }
            if unknown {
                None
            } else {
                Some(false)
            }
        }
        PlanExpr::Not(e) => eval_expr(e, slot).map(|b| !b),
    }
}

/// TRUE-only convenience.
pub fn holds(expr: &PlanExpr, slot: &impl Fn(SlotId) -> Value) -> bool {
    eval_expr(expr, slot) == Some(true)
}

fn scalar(s: &PlanScalar, slot: &impl Fn(SlotId) -> Value) -> Value {
    match s {
        PlanScalar::Slot(i) => slot(*i),
        PlanScalar::Const(c) => c.clone(),
    }
}

fn cmp_holds(op: CmpOp, ord: std::cmp::Ordering) -> bool {
    use std::cmp::Ordering::*;
    match op {
        CmpOp::Eq => ord == Equal,
        CmpOp::Ne => ord != Equal,
        CmpOp::Lt => ord == Less,
        CmpOp::Le => ord != Greater,
        CmpOp::Gt => ord == Greater,
        CmpOp::Ge => ord != Less,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn slots(vals: Vec<Value>) -> impl Fn(SlotId) -> Value {
        move |i| vals[i].clone()
    }

    #[test]
    fn cmp_and_strings() {
        let s = slots(vec![Value::Int64(5), Value::String("production company".into())]);
        let gt = PlanExpr::Cmp {
            op: CmpOp::Gt,
            lhs: PlanScalar::Slot(0),
            rhs: PlanScalar::Const(Value::Int64(3)),
        };
        assert_eq!(eval_expr(&gt, &s), Some(true));
        let m = PlanExpr::StrMatch { op: StrOp::Contains, slot: 1, pattern: "duction".into() };
        assert_eq!(eval_expr(&m, &s), Some(true));
        let m = PlanExpr::StrMatch { op: StrOp::StartsWith, slot: 1, pattern: "company".into() };
        assert_eq!(eval_expr(&m, &s), Some(false));
    }

    #[test]
    fn null_propagates_as_unknown() {
        let s = slots(vec![Value::Null]);
        let e = PlanExpr::Cmp {
            op: CmpOp::Eq,
            lhs: PlanScalar::Slot(0),
            rhs: PlanScalar::Const(Value::Int64(0)),
        };
        assert_eq!(eval_expr(&e, &s), None);
        assert!(!holds(&e, &s));
        let in_set = PlanExpr::InSet { slot: 0, values: vec![Value::Int64(1)] };
        assert_eq!(eval_expr(&in_set, &s), None);
    }

    #[test]
    fn in_set_compares_values() {
        let s = slots(vec![Value::String("follows".into())]);
        let e = PlanExpr::InSet {
            slot: 0,
            values: vec![Value::String("follows".into()), Value::String("featured".into())],
        };
        assert_eq!(eval_expr(&e, &s), Some(true));
    }
}

//! Baseline engines for the evaluation (Section 8):
//!
//! * [`GfRvEngine`] — GF-RV: row store (interpreted attribute layout,
//!   8-byte IDs) + Volcano tuple-at-a-time processor; the system the paper
//!   starts from and the architectural analog of Neo4j/Memgraph.
//! * [`GfCvEngine`] — GF-CV: columnar storage + Volcano processor; isolates
//!   the list-based processor's contribution (Section 8.6).
//! * [`RelEngine`] — block-based hash joins over edge tables with no
//!   adjacency index and no pk seek; the MonetDB/Vertica stand-in for the
//!   Section 8.7 system comparison (see DESIGN.md §3).
//!
//! All engines execute the same [`gfcl_core::plan::LogicalPlan`].

pub mod cv;
pub mod eval;
pub mod relational;
pub mod rv;
pub mod volcano;

pub use cv::GfCvEngine;
pub use relational::RelEngine;
pub use rv::GfRvEngine;

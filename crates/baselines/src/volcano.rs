//! Generic Volcano-style tuple-at-a-time executor (Section 6's baseline).
//!
//! One partial-match tuple flows through an operator chain via `next()`
//! calls, exactly as in GraphflowDB's original processor (and Neo4j /
//! Memgraph): values are produced one at a time, properties are read into
//! the tuple as [`Value`]s, and every primitive computation pays an
//! iterator-call round trip. The executor is generic over
//! [`VolcanoStorage`], so the same processor runs on the row store (GF-RV)
//! and on columnar storage (GF-CV), isolating processing gains from storage
//! gains as in Section 8.6.

use std::collections::HashMap;

use gfcl_common::{Direction, Error, LabelId, Result, Value};
use gfcl_core::agg::{self, GroupTable};
use gfcl_core::engine::QueryOutput;
use gfcl_core::plan::{LogicalPlan, PlanExpr, PlanReturn, PlanStep};
use gfcl_storage::{base_edge_ref, delta_edge_ref, edge_ref_index, is_delta_edge_ref};
use gfcl_storage::{Catalog, DeltaSnapshot};

use crate::eval::holds;

/// Storage interface of the Volcano engines.
pub trait VolcanoStorage {
    fn catalog(&self) -> &Catalog;
    fn vertex_count(&self, label: LabelId) -> usize;
    fn lookup_pk(&self, label: LabelId, key: i64) -> Option<u64>;
    /// The adjacency list of `from` when traversing `(elabel, dir)`.
    fn adj_list(&self, elabel: LabelId, dir: Direction, from: u64) -> AdjList;
    /// Neighbour offset and edge token at CSR position `pos`.
    fn csr_entry(&self, elabel: LabelId, dir: Direction, pos: u64) -> (u64, u64);
    fn vertex_prop(&self, label: LabelId, off: u64, prop: usize) -> Value;
    /// Edge property via the tuple's edge slot.
    fn edge_prop(&self, elabel: LabelId, dir: Direction, slot: EdgeSlot, prop: usize) -> Value;
    /// Is the vertex at `off` visible? Clean stores only produce live
    /// offsets; the delta overlay hides tombstones and vacated slots.
    fn vertex_live(&self, _label: LabelId, _off: u64) -> bool {
        true
    }
}

/// Adjacency of one vertex.
pub enum AdjList {
    /// CSR positions `start..start+len`.
    Csr { start: u64, len: u64 },
    /// Single-cardinality vertex-column adjacency: at most one neighbour.
    Single(Option<u64>),
    /// A materialized `(neighbour, edge token)` list — produced by the
    /// delta overlay when the merged adjacency no longer matches any
    /// contiguous storage range.
    Owned(Vec<(u64, Option<u64>)>),
}

/// The edge binding stored in a tuple: the traversal source plus a
/// storage-specific token (CSR position or row edge ID; `None` for
/// vertex-column single-cardinality edges).
#[derive(Debug, Clone, Copy)]
pub struct EdgeSlot {
    pub from: u64,
    pub token: Option<u64>,
}

/// The single partial-match tuple flowing through the pipeline.
pub struct Tuple {
    pub nodes: Vec<u64>,
    pub edges: Vec<EdgeSlot>,
    pub slots: Vec<Value>,
}

enum VOp {
    ScanAll {
        label: LabelId,
        node: usize,
        next: u64,
        total: u64,
        /// Naive filter pushdown: predicates over the scanned node's
        /// properties, evaluated per vertex straight from storage before
        /// the tuple leaves the scan. No zone maps here — the Volcano
        /// engines exist to isolate the LBP's gains, so they do the
        /// honest tuple-at-a-time equivalent.
        pushed: Vec<PlanExpr>,
        /// `slot -> property index` of the scanned label, for resolving
        /// pushed-predicate slots against storage (`usize::MAX` for slots
        /// of other variables, which pushed predicates never touch).
        prop_of_slot: Vec<usize>,
    },
    ScanPk {
        label: LabelId,
        node: usize,
        key: i64,
        done: bool,
    },
    Extend {
        elabel: LabelId,
        dir: Direction,
        from: usize,
        to: usize,
        edge: usize,
        /// Remaining CSR range, or a pending single neighbour.
        state: ExtendState,
    },
    ReadNodeProp {
        label: LabelId,
        node: usize,
        prop: usize,
        slot: usize,
    },
    ReadEdgeProp {
        elabel: LabelId,
        dir: Direction,
        edge: usize,
        prop: usize,
        slot: usize,
    },
    Filter {
        expr: PlanExpr,
    },
}

enum ExtendState {
    Idle,
    Csr { pos: u64, end: u64 },
    Owned { list: Vec<(u64, Option<u64>)>, pos: usize },
}

fn vpull<S: VolcanoStorage>(ops: &mut [VOp], s: &S, t: &mut Tuple) -> Result<bool> {
    let (op, children) = ops.split_last_mut().expect("non-empty pipeline");
    match op {
        VOp::ScanAll { label, node, next, total, pushed, prop_of_slot } => loop {
            if *next >= *total {
                return Ok(false);
            }
            let v = *next;
            *next += 1;
            let pass = s.vertex_live(*label, v)
                && pushed
                    .iter()
                    .all(|e| holds(e, &|slot| s.vertex_prop(*label, v, prop_of_slot[slot])));
            if pass {
                t.nodes[*node] = v;
                return Ok(true);
            }
        },
        VOp::ScanPk { label, node, key, done } => {
            if *done {
                return Ok(false);
            }
            *done = true;
            match s.lookup_pk(*label, *key) {
                Some(off) => {
                    t.nodes[*node] = off;
                    Ok(true)
                }
                None => Ok(false),
            }
        }
        VOp::Extend { elabel, dir, from, to, edge, state } => loop {
            match state {
                ExtendState::Csr { pos, end } => {
                    if pos < end {
                        let (nbr, token) = s.csr_entry(*elabel, *dir, *pos);
                        t.nodes[*to] = nbr;
                        t.edges[*edge] = EdgeSlot { from: t.nodes[*from], token: Some(token) };
                        *pos += 1;
                        return Ok(true);
                    }
                    *state = ExtendState::Idle;
                }
                ExtendState::Owned { list, pos } => {
                    if *pos < list.len() {
                        let (nbr, token) = list[*pos];
                        t.nodes[*to] = nbr;
                        t.edges[*edge] = EdgeSlot { from: t.nodes[*from], token };
                        *pos += 1;
                        return Ok(true);
                    }
                    *state = ExtendState::Idle;
                }
                ExtendState::Idle => {}
            }
            if !vpull(children, s, t)? {
                return Ok(false);
            }
            match s.adj_list(*elabel, *dir, t.nodes[*from]) {
                AdjList::Csr { start, len } => {
                    *state = ExtendState::Csr { pos: start, end: start + len };
                }
                AdjList::Single(Some(nbr)) => {
                    t.nodes[*to] = nbr;
                    t.edges[*edge] = EdgeSlot { from: t.nodes[*from], token: None };
                    return Ok(true);
                }
                AdjList::Single(None) => {}
                AdjList::Owned(list) => {
                    *state = ExtendState::Owned { list, pos: 0 };
                }
            }
        },
        VOp::ReadNodeProp { label, node, prop, slot } => {
            if !vpull(children, s, t)? {
                return Ok(false);
            }
            t.slots[*slot] = s.vertex_prop(*label, t.nodes[*node], *prop);
            Ok(true)
        }
        VOp::ReadEdgeProp { elabel, dir, edge, prop, slot } => {
            if !vpull(children, s, t)? {
                return Ok(false);
            }
            t.slots[*slot] = s.edge_prop(*elabel, *dir, t.edges[*edge], *prop);
            Ok(true)
        }
        VOp::Filter { expr } => loop {
            if !vpull(children, s, t)? {
                return Ok(false);
            }
            let slots = &t.slots;
            if holds(expr, &|i| slots[i].clone()) {
                return Ok(true);
            }
        },
    }
}

/// A [`VolcanoStorage`] decorator overlaying a frozen [`DeltaSnapshot`] on
/// any clean store: queries observe `(baseline ⊎ delta) ∖ tombstones`, the
/// same merged view the GF-CL executor derives from `GraphView`.
///
/// Edge tokens use the shared tag scheme of `gfcl_storage::store`: `None`
/// passes a baseline single-cardinality edge through untagged, an even tag
/// wraps the inner store's own token `t` as `t << 1`, and an odd tag names
/// delta edge `d` as `(d << 1) | 1`. The inner store's offsets must agree
/// with the snapshot's baseline (GF-RV row offsets do, by construction from
/// the same `RawGraph`).
pub struct DeltaOverlay<'g, S> {
    inner: S,
    delta: &'g DeltaSnapshot,
}

impl<'g, S: VolcanoStorage> DeltaOverlay<'g, S> {
    pub fn new(inner: S, delta: &'g DeltaSnapshot) -> Self {
        DeltaOverlay { inner, delta }
    }

    /// Baseline vertex count of the `dir`-side source label of `elabel`.
    fn base_from_count(&self, elabel: LabelId, dir: Direction) -> u64 {
        let from_label = self.inner.catalog().edge_label(elabel).from_label(dir);
        self.inner.vertex_count(from_label) as u64
    }
}

impl<S: VolcanoStorage> VolcanoStorage for DeltaOverlay<'_, S> {
    fn catalog(&self) -> &Catalog {
        self.inner.catalog()
    }

    fn vertex_count(&self, label: LabelId) -> usize {
        self.inner.vertex_count(label) + self.delta.delta_slots(label) as usize
    }

    fn vertex_live(&self, label: LabelId, off: u64) -> bool {
        let n_base = self.inner.vertex_count(label) as u64;
        if off < n_base {
            !self.delta.vertex_tombed(label, off)
        } else {
            self.delta.delta_row(label, off - n_base).is_some()
        }
    }

    fn lookup_pk(&self, label: LabelId, key: i64) -> Option<u64> {
        if let Some(off) = self.delta.pk_delta(label, key) {
            return Some(off);
        }
        let off = self.inner.lookup_pk(label, key)?;
        (!self.delta.vertex_tombed(label, off)).then_some(off)
    }

    fn adj_list(&self, elabel: LabelId, dir: Direction, from: u64) -> AdjList {
        let mut list: Vec<(u64, Option<u64>)> = Vec::new();
        let tombed = |nbr: u64, occ: u32| {
            let (s, d) = if dir == Direction::Fwd { (from, nbr) } else { (nbr, from) };
            self.delta.edge_tombed(elabel, s, d, occ)
        };
        if from < self.base_from_count(elabel, dir) {
            match self.inner.adj_list(elabel, dir, from) {
                AdjList::Csr { start, len } => {
                    let mut seen: HashMap<u64, u32> = HashMap::new();
                    for pos in start..start + len {
                        let (nbr, token) = self.inner.csr_entry(elabel, dir, pos);
                        let occ = seen.entry(nbr).or_insert(0);
                        if !tombed(nbr, *occ) {
                            list.push((nbr, Some(base_edge_ref(token))));
                        }
                        *occ += 1;
                    }
                }
                AdjList::Single(Some(nbr)) => {
                    if !tombed(nbr, 0) {
                        // Untagged pass-through: the edge-property read path
                        // of the inner store already handles `token: None`.
                        list.push((nbr, None));
                    }
                }
                AdjList::Single(None) => {}
                AdjList::Owned(inner) => list.extend(inner),
            }
        }
        for &idx in self.delta.delta_edges_from(elabel, dir, from) {
            let e = self.delta.delta_edge(elabel, idx);
            let nbr = if dir == Direction::Fwd { e.dst } else { e.src };
            list.push((nbr, Some(delta_edge_ref(idx))));
        }
        AdjList::Owned(list)
    }

    fn csr_entry(&self, elabel: LabelId, dir: Direction, pos: u64) -> (u64, u64) {
        // Unreachable in practice: the overlay never hands out
        // `AdjList::Csr`, so the executor never asks for CSR positions.
        self.inner.csr_entry(elabel, dir, pos)
    }

    fn vertex_prop(&self, label: LabelId, off: u64, prop: usize) -> Value {
        let n_base = self.inner.vertex_count(label) as u64;
        if off < n_base {
            if let Some(row) = self.delta.updated_row(label, off) {
                return row[prop].clone();
            }
            self.inner.vertex_prop(label, off, prop)
        } else {
            match self.delta.delta_row(label, off - n_base) {
                Some(row) => row[prop].clone(),
                None => Value::Null,
            }
        }
    }

    fn edge_prop(&self, elabel: LabelId, dir: Direction, slot: EdgeSlot, prop: usize) -> Value {
        match slot.token {
            None => self.inner.edge_prop(elabel, dir, slot, prop),
            Some(tag) if is_delta_edge_ref(tag) => {
                self.delta.delta_edge(elabel, edge_ref_index(tag)).props[prop].clone()
            }
            Some(tag) => {
                let inner_slot = EdgeSlot { from: slot.from, token: Some(edge_ref_index(tag)) };
                self.inner.edge_prop(elabel, dir, inner_slot, prop)
            }
        }
    }
}

/// Execute a logical plan tuple-at-a-time over `storage`.
pub fn execute<S: VolcanoStorage>(storage: &S, plan: &LogicalPlan) -> Result<QueryOutput> {
    let mut ops: Vec<VOp> = Vec::with_capacity(plan.steps.len());
    // Direction of each bound edge (needed by property reads).
    let mut edge_dir: Vec<Option<Direction>> = vec![None; plan.edges.len()];
    for step in &plan.steps {
        match step {
            PlanStep::ScanAll { node, pushed } => {
                let label = plan.nodes[*node].label;
                let prop_of_slot = crate::eval::scan_prop_map(&plan.slots, *node);
                ops.push(VOp::ScanAll {
                    label,
                    node: *node,
                    next: 0,
                    total: storage.vertex_count(label) as u64,
                    pushed: pushed.clone(),
                    prop_of_slot,
                });
            }
            PlanStep::ScanPk { node, key } => {
                ops.push(VOp::ScanPk {
                    label: plan.nodes[*node].label,
                    node: *node,
                    key: *key,
                    done: false,
                });
            }
            PlanStep::Extend { edge, edge_label, dir, from, to, .. } => {
                edge_dir[*edge] = Some(*dir);
                ops.push(VOp::Extend {
                    elabel: *edge_label,
                    dir: *dir,
                    from: *from,
                    to: *to,
                    edge: *edge,
                    state: ExtendState::Idle,
                });
            }
            PlanStep::NodeProp { node, prop, slot } => {
                ops.push(VOp::ReadNodeProp {
                    label: plan.nodes[*node].label,
                    node: *node,
                    prop: *prop,
                    slot: *slot,
                });
            }
            PlanStep::EdgeProp { edge, prop, slot } => {
                let dir = edge_dir[*edge]
                    .ok_or_else(|| Error::Plan("edge property read before extend".into()))?;
                ops.push(VOp::ReadEdgeProp {
                    elabel: plan.edges[*edge].label,
                    dir,
                    edge: *edge,
                    prop: *prop,
                    slot: *slot,
                });
            }
            PlanStep::Filter { expr } => ops.push(VOp::Filter { expr: expr.clone() }),
        }
    }

    let mut t = Tuple {
        nodes: vec![0; plan.nodes.len()],
        edges: vec![EdgeSlot { from: 0, token: None }; plan.edges.len()],
        slots: vec![Value::Null; plan.slots.len()],
    };

    match &plan.ret {
        PlanReturn::CountStar => {
            let mut n = 0u64;
            while vpull(&mut ops, storage, &mut t)? {
                n += 1;
            }
            Ok(QueryOutput::Count(n))
        }
        PlanReturn::Props(slots) => {
            let mut rows = Vec::new();
            while vpull(&mut ops, storage, &mut t)? {
                rows.push(slots.iter().map(|&s| t.slots[s].clone()).collect());
            }
            let rows = agg::finalize_rows(plan, rows);
            Ok(QueryOutput::Rows { header: plan.header.clone(), rows })
        }
        PlanReturn::GroupBy { keys, aggs } => {
            // The naive reference: enumerate every tuple, fold it into the
            // shared group table with multiplicity 1.
            let mut table = GroupTable::new(aggs);
            while vpull(&mut ops, storage, &mut t)? {
                let key: Vec<Value> = keys.iter().map(|&s| t.slots[s].clone()).collect();
                let vals: Vec<Option<Value>> =
                    aggs.iter().map(|a| a.slot.map(|s| t.slots[s].clone())).collect();
                table.add_tuple(key, &vals);
            }
            Ok(table.into_output(plan))
        }
        PlanReturn::Sum(slot) => {
            let mut sum_i: i128 = 0;
            let mut sum_f: f64 = 0.0;
            let mut float = false;
            while vpull(&mut ops, storage, &mut t)? {
                match &t.slots[*slot] {
                    Value::Int64(v) | Value::Date(v) => sum_i += *v as i128,
                    Value::Float64(v) => {
                        float = true;
                        sum_f += v;
                    }
                    _ => {}
                }
            }
            let value =
                if float { Value::Float64(sum_f) } else { Value::Int64(agg::clamp_i128(sum_i)) };
            Ok(QueryOutput::Agg { name: plan.header[0].clone(), value })
        }
        PlanReturn::Min(slot) | PlanReturn::Max(slot) => {
            let want_min = matches!(plan.ret, PlanReturn::Min(_));
            let mut best = Value::Null;
            while vpull(&mut ops, storage, &mut t)? {
                let v = t.slots[*slot].clone();
                if v.is_null() {
                    continue;
                }
                let replace = match best.compare(&v) {
                    None => best.is_null(),
                    Some(ord) => {
                        if want_min {
                            ord == std::cmp::Ordering::Greater
                        } else {
                            ord == std::cmp::Ordering::Less
                        }
                    }
                };
                if replace {
                    best = v;
                }
            }
            Ok(QueryOutput::Agg { name: plan.header[0].clone(), value: best })
        }
    }
}

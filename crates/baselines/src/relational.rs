//! The relational baseline: a block-based processor executing graph
//! queries as **hash joins over edge tables**, the MonetDB/Vertica analog
//! of Section 8.7 (see DESIGN.md §3 substitutions).
//!
//! Architectural differences from the graph engines, mirroring the paper's
//! analysis:
//!
//! * no adjacency-list index is used for joins: every `Extend` step scans
//!   the *entire* edge table of the label and builds a hash table, then
//!   probes the accumulated intermediate result — efficient for
//!   unselective star joins, wasteful for selective path queries;
//! * no primary-key seek: a `p.id = X` predicate is a full scan + filter
//!   of the vertex table (the paper: "this join is performed using merge
//!   or hash joins, which requires scanning both Person and Knows
//!   tables");
//! * intermediate results are fully materialized flat columns — no
//!   factorization, so n-n joins multiply the intermediate size.

use std::collections::HashMap;
use std::sync::Arc;

use gfcl_common::{Direction, Error, LabelId, Result, Value};
use gfcl_core::agg::{self, GroupTable};
use gfcl_core::engine::{Engine, QueryOutput};
use gfcl_core::plan::{LogicalPlan, PlanReturn, PlanStep};
use gfcl_storage::{base_edge_ref, delta_edge_ref, edge_ref_index, is_delta_edge_ref};
use gfcl_storage::{AdjIndex, Catalog, ColumnarGraph, DeltaSnapshot, GraphSnapshot};

use crate::eval::holds;

/// Flat columnar intermediate result.
struct Inter {
    n: usize,
    nodes: Vec<Option<Vec<u64>>>,
    edges: Vec<Option<EdgeCols>>,
    slots: Vec<Option<Vec<Value>>>,
}

/// Per-edge binding columns (enough to read edge properties later).
struct EdgeCols {
    dir: Direction,
    from: Vec<u64>,
    token: Vec<Option<u64>>,
}

impl Inter {
    fn new(plan: &LogicalPlan) -> Inter {
        Inter {
            n: 0,
            nodes: vec![None; plan.nodes.len()],
            edges: plan.edges.iter().map(|_| None).collect(),
            slots: vec![None; plan.slots.len()],
        }
    }

    /// Keep only the rows at `keep` (gather compaction).
    fn gather(&mut self, keep: &[usize]) {
        for col in self.nodes.iter_mut().flatten() {
            *col = keep.iter().map(|&i| col[i]).collect();
        }
        for ec in self.edges.iter_mut().flatten() {
            ec.from = keep.iter().map(|&i| ec.from[i]).collect();
            ec.token = keep.iter().map(|&i| ec.token[i]).collect();
        }
        for col in self.slots.iter_mut().flatten() {
            *col = keep.iter().map(|&i| col[i].clone()).collect();
        }
        self.n = keep.len();
    }
}

/// The relational engine over columnar tables.
pub struct RelEngine {
    graph: Arc<ColumnarGraph>,
    /// Delta overlay when executing against a mutable-store snapshot.
    delta: Option<Arc<DeltaSnapshot>>,
}

impl RelEngine {
    pub fn new(graph: Arc<ColumnarGraph>) -> Self {
        RelEngine { graph, delta: None }
    }

    /// Engine over one MVCC snapshot of a mutable `GraphStore`: the edge
    /// tables it scans are `(baseline ⊎ delta) ∖ tombstones`, with edge
    /// tokens carrying the shared tag scheme of `gfcl_storage::store` when
    /// a delta is present.
    pub fn with_snapshot(snapshot: &GraphSnapshot) -> Self {
        let delta = snapshot.delta();
        RelEngine {
            graph: Arc::clone(snapshot.base()),
            delta: (!delta.is_empty()).then(|| Arc::clone(delta)),
        }
    }

    /// Effective vertex-table length: baseline rows plus delta slots.
    fn table_len(&self, label: LabelId) -> u64 {
        let n = self.graph.vertex_count(label) as u64;
        n + self.delta.as_ref().map_or(0, |d| d.delta_slots(label))
    }

    fn vertex_live(&self, label: LabelId, off: u64) -> bool {
        let n_base = self.graph.vertex_count(label) as u64;
        match &self.delta {
            None => off < n_base,
            Some(d) => {
                if off < n_base {
                    !d.vertex_tombed(label, off)
                } else {
                    d.delta_row(label, off - n_base).is_some()
                }
            }
        }
    }

    /// Effective property value of a (live) vertex-table row.
    fn vertex_value(&self, label: LabelId, off: u64, prop: usize) -> Value {
        let n_base = self.graph.vertex_count(label) as u64;
        if off < n_base {
            if let Some(row) = self.delta.as_ref().and_then(|d| d.updated_row(label, off)) {
                return row[prop].clone();
            }
            self.graph.vertex_prop(label, prop).value(off as usize)
        } else {
            match self.delta.as_ref().and_then(|d| d.delta_row(label, off - n_base)) {
                Some(row) => row[prop].clone(),
                None => Value::Null,
            }
        }
    }

    /// Scan the full edge table of `(elabel, dir)` into a hash table keyed
    /// by the `dir`-side endpoint. This is the per-join full-table-scan
    /// cost that adjacency indexes avoid. Under a delta, tombstoned edges
    /// are dropped (occurrence-counted against duplicate neighbours) and
    /// delta edges appended, with tagged tokens.
    fn build_edge_hash(
        &self,
        elabel: LabelId,
        dir: Direction,
    ) -> HashMap<u64, Vec<(u64, Option<u64>)>> {
        let g = &self.graph;
        let from_label = g.catalog().edge_label(elabel).from_label(dir);
        let n_from = g.vertex_count(from_label) as u64;
        let delta = self.delta.as_deref();
        let tombed = |from: u64, nbr: u64, occ: u32| {
            let (s, d) = if dir == Direction::Fwd { (from, nbr) } else { (nbr, from) };
            delta.is_some_and(|del| del.edge_tombed(elabel, s, d, occ))
        };
        let tag = |pos: u64| if delta.is_some() { Some(base_edge_ref(pos)) } else { Some(pos) };
        let mut table: HashMap<u64, Vec<(u64, Option<u64>)>> = HashMap::new();
        match g.adj(elabel, dir) {
            AdjIndex::Csr(csr) => {
                for v in 0..n_from {
                    let mut seen: HashMap<u64, u32> = HashMap::new();
                    for (pos, nbr) in csr.iter_list(v) {
                        let occ = seen.entry(nbr).or_insert(0);
                        if !tombed(v, nbr, *occ) {
                            table.entry(v).or_default().push((nbr, tag(pos)));
                        }
                        *occ += 1;
                    }
                }
            }
            AdjIndex::SingleCard(s) => {
                for v in 0..n_from {
                    if let Some(nbr) = s.nbr(v) {
                        if !tombed(v, nbr, 0) {
                            table.entry(v).or_default().push((nbr, None));
                        }
                    }
                }
            }
        }
        if let Some(d) = delta {
            for v in 0..self.table_len(from_label) {
                for &idx in d.delta_edges_from(elabel, dir, v) {
                    let e = d.delta_edge(elabel, idx);
                    let nbr = if dir == Direction::Fwd { e.dst } else { e.src };
                    table.entry(v).or_default().push((nbr, Some(delta_edge_ref(idx))));
                }
            }
        }
        table
    }

    /// Read one edge property through a probe-table token.
    fn edge_value(
        &self,
        elabel: LabelId,
        dir: Direction,
        from: u64,
        token: Option<u64>,
        prop: usize,
    ) -> Value {
        let Some(d) = self.delta.as_deref() else {
            return self
                .graph
                .read_edge_prop(elabel, dir, from, token, prop)
                .unwrap_or(Value::Null);
        };
        match token {
            None => self.graph.read_edge_prop(elabel, dir, from, None, prop).unwrap_or(Value::Null),
            Some(t) if is_delta_edge_ref(t) => {
                d.delta_edge(elabel, edge_ref_index(t)).props[prop].clone()
            }
            Some(t) => self
                .graph
                .read_edge_prop(elabel, dir, from, Some(edge_ref_index(t)), prop)
                .unwrap_or(Value::Null),
        }
    }
}

impl Engine for RelEngine {
    fn name(&self) -> &'static str {
        "REL"
    }

    fn catalog(&self) -> &Catalog {
        self.graph.catalog()
    }

    fn run_plan(&self, plan: &LogicalPlan) -> Result<QueryOutput> {
        // Per-query fault domain: a failed page read during execution
        // surfaces as this query's storage error (checked before the
        // result is published, so a placeholder page can't leak into it)
        // instead of a process panic.
        let token = Arc::new(gfcl_common::CancelToken::new());
        let _scope = gfcl_common::fault_scope(&token);
        let out = self.drive(plan)?;
        token.check()?;
        Ok(out)
    }
}

impl RelEngine {
    /// The execution body of [`Engine::run_plan`], run inside the
    /// per-query fault scope the trait method installs.
    fn drive(&self, plan: &LogicalPlan) -> Result<QueryOutput> {
        let g = &self.graph;
        let mut it = Inter::new(plan);

        for step in &plan.steps {
            match step {
                PlanStep::ScanAll { node, pushed } => {
                    let label = plan.nodes[*node].label;
                    // Naive pushdown: filter the vertex-table scan with the
                    // pushed predicates, reading properties straight from
                    // the columns (a relational scan-with-predicate).
                    let prop_of_slot = crate::eval::scan_prop_map(&plan.slots, *node);
                    let col: Vec<u64> = (0..self.table_len(label))
                        .filter(|&v| {
                            self.vertex_live(label, v)
                                && pushed.iter().all(|e| {
                                    holds(e, &|slot| {
                                        self.vertex_value(label, v, prop_of_slot[slot])
                                    })
                                })
                        })
                        .collect();
                    it.n = col.len();
                    it.nodes[*node] = Some(col);
                }
                PlanStep::ScanPk { node, key } => {
                    // No index: scan the vertex table comparing keys.
                    let label = plan.nodes[*node].label;
                    let pk_prop = g
                        .catalog()
                        .vertex_label(label)
                        .primary_key
                        .ok_or_else(|| Error::Plan("pk seek without pk".into()))?;
                    let matches: Vec<u64> = (0..self.table_len(label))
                        .filter(|&v| {
                            self.vertex_live(label, v)
                                && self.vertex_value(label, v, pk_prop) == Value::Int64(*key)
                        })
                        .collect();
                    it.n = matches.len();
                    it.nodes[*node] = Some(matches);
                }
                PlanStep::Extend { edge, edge_label, dir, from, to, .. } => {
                    let hash = self.build_edge_hash(*edge_label, *dir);
                    let probe = it.nodes[*from]
                        .as_ref()
                        .ok_or_else(|| Error::Plan("unbound from".into()))?;
                    // Probe: one output row per (input row, matching edge).
                    let mut keep: Vec<usize> = Vec::new();
                    let mut nbrs: Vec<u64> = Vec::new();
                    let mut froms: Vec<u64> = Vec::new();
                    let mut tokens: Vec<Option<u64>> = Vec::new();
                    for (row, &v) in probe.iter().enumerate() {
                        if let Some(matches) = hash.get(&v) {
                            for &(nbr, token) in matches {
                                keep.push(row);
                                nbrs.push(nbr);
                                froms.push(v);
                                tokens.push(token);
                            }
                        }
                    }
                    it.gather(&keep);
                    it.nodes[*to] = Some(nbrs);
                    it.edges[*edge] = Some(EdgeCols { dir: *dir, from: froms, token: tokens });
                }
                PlanStep::NodeProp { node, prop, slot } => {
                    let label = plan.nodes[*node].label;
                    let offs = it.nodes[*node]
                        .as_ref()
                        .ok_or_else(|| Error::Plan("unbound node".into()))?;
                    it.slots[*slot] =
                        Some(offs.iter().map(|&v| self.vertex_value(label, v, *prop)).collect());
                }
                PlanStep::EdgeProp { edge, prop, slot } => {
                    let elabel = plan.edges[*edge].label;
                    let ec = it.edges[*edge]
                        .as_ref()
                        .ok_or_else(|| Error::Plan("unbound edge".into()))?;
                    let mut vals = Vec::with_capacity(it.n);
                    for i in 0..it.n {
                        vals.push(self.edge_value(elabel, ec.dir, ec.from[i], ec.token[i], *prop));
                    }
                    it.slots[*slot] = Some(vals);
                }
                PlanStep::Filter { expr } => {
                    let mut keep = Vec::with_capacity(it.n);
                    for i in 0..it.n {
                        let slots = &it.slots;
                        let read = |s: usize| -> Value {
                            slots[s].as_ref().map_or(Value::Null, |c| c[i].clone())
                        };
                        if holds(expr, &read) {
                            keep.push(i);
                        }
                    }
                    it.gather(&keep);
                }
            }
        }

        match &plan.ret {
            PlanReturn::CountStar => Ok(QueryOutput::Count(it.n as u64)),
            PlanReturn::Props(slots) => {
                let mut rows = Vec::with_capacity(it.n);
                for i in 0..it.n {
                    rows.push(
                        slots
                            .iter()
                            .map(|&s| it.slots[s].as_ref().map_or(Value::Null, |c| c[i].clone()))
                            .collect(),
                    );
                }
                let rows = agg::finalize_rows(plan, rows);
                Ok(QueryOutput::Rows { header: plan.header.clone(), rows })
            }
            PlanReturn::GroupBy { keys, aggs } => {
                // Fold the flat materialized intermediate row-by-row into
                // the shared group table (hash-aggregate analog).
                let read = |s: usize, i: usize| -> Value {
                    it.slots[s].as_ref().map_or(Value::Null, |c| c[i].clone())
                };
                let mut table = GroupTable::new(aggs);
                for i in 0..it.n {
                    let key: Vec<Value> = keys.iter().map(|&s| read(s, i)).collect();
                    let vals: Vec<Option<Value>> =
                        aggs.iter().map(|a| a.slot.map(|s| read(s, i))).collect();
                    table.add_tuple(key, &vals);
                }
                Ok(table.into_output(plan))
            }
            PlanReturn::Sum(slot) => {
                let col = it.slots[*slot].as_ref().ok_or_else(|| Error::Plan("unfilled".into()))?;
                let mut sum_i: i128 = 0;
                let mut sum_f = 0.0f64;
                let mut float = false;
                for v in col {
                    match v {
                        Value::Int64(x) | Value::Date(x) => sum_i += *x as i128,
                        Value::Float64(x) => {
                            float = true;
                            sum_f += x;
                        }
                        _ => {}
                    }
                }
                let value = if float {
                    Value::Float64(sum_f)
                } else {
                    Value::Int64(agg::clamp_i128(sum_i))
                };
                Ok(QueryOutput::Agg { name: plan.header[0].clone(), value })
            }
            PlanReturn::Min(slot) | PlanReturn::Max(slot) => {
                let want_min = matches!(plan.ret, PlanReturn::Min(_));
                let col = it.slots[*slot].as_ref().ok_or_else(|| Error::Plan("unfilled".into()))?;
                let mut best = Value::Null;
                for v in col {
                    if v.is_null() {
                        continue;
                    }
                    let replace = match best.compare(v) {
                        None => best.is_null(),
                        Some(ord) => {
                            if want_min {
                                ord == std::cmp::Ordering::Greater
                            } else {
                                ord == std::cmp::Ordering::Less
                            }
                        }
                    };
                    if replace {
                        best = v.clone();
                    }
                }
                Ok(QueryOutput::Agg { name: plan.header[0].clone(), value: best })
            }
        }
    }
}

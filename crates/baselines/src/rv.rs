//! GF-RV: the row-oriented Volcano engine the paper starts from
//! (interpreted attribute layout + 8-byte IDs + tuple-at-a-time).

use std::sync::Arc;

use gfcl_common::{Direction, LabelId, Result, Value};
use gfcl_core::engine::{Engine, QueryOutput};
use gfcl_core::plan::LogicalPlan;
use gfcl_storage::{Catalog, DeltaSnapshot, GraphSnapshot, RowGraph};

use crate::volcano::{self, AdjList, DeltaOverlay, EdgeSlot, VolcanoStorage};

/// Row-store adapter for the Volcano executor.
struct RvStore<'g> {
    g: &'g RowGraph,
}

impl VolcanoStorage for RvStore<'_> {
    fn catalog(&self) -> &Catalog {
        self.g.catalog()
    }

    fn vertex_count(&self, label: LabelId) -> usize {
        self.g.vertex_count(label)
    }

    fn lookup_pk(&self, label: LabelId, key: i64) -> Option<u64> {
        self.g.lookup_pk(label, key)
    }

    fn adj_list(&self, elabel: LabelId, dir: Direction, from: u64) -> AdjList {
        // GF-RV stores every label in CSRs — no vertex-column shortcut.
        let (start, len) = self.g.adj(elabel, dir).list(from);
        AdjList::Csr { start, len: len as u64 }
    }

    fn csr_entry(&self, elabel: LabelId, dir: Direction, pos: u64) -> (u64, u64) {
        let (edge_id, nbr_global) = self.g.adj(elabel, dir).pair_at(pos);
        // 8-byte global IDs are converted back to label offsets on use.
        let nbr_label = self.g.catalog().edge_label(elabel).nbr_label(dir);
        (self.g.offset_of_global(nbr_label, nbr_global), edge_id)
    }

    fn vertex_prop(&self, label: LabelId, off: u64, prop: usize) -> Value {
        self.g.read_vertex_prop(label, off, prop)
    }

    fn edge_prop(&self, elabel: LabelId, _dir: Direction, slot: EdgeSlot, prop: usize) -> Value {
        let edge_id = slot.token.expect("GF-RV always stores edge IDs");
        self.g.read_edge_prop(elabel, edge_id, prop)
    }
}

/// GF-RV: Row-oriented storage, Volcano-style processor.
pub struct GfRvEngine {
    graph: Arc<RowGraph>,
    /// Delta overlay when executing against a mutable-store snapshot.
    delta: Option<Arc<DeltaSnapshot>>,
}

impl GfRvEngine {
    pub fn new(graph: Arc<RowGraph>) -> Self {
        GfRvEngine { graph, delta: None }
    }

    /// Engine over one MVCC snapshot of a mutable `GraphStore`. The row
    /// graph must be built from the snapshot's *baseline* `RawGraph`: its
    /// per-label vertex offsets then agree with the columnar baseline the
    /// delta was recorded against, so the overlay applies unchanged.
    pub fn with_snapshot(graph: Arc<RowGraph>, snapshot: &GraphSnapshot) -> Self {
        let delta = snapshot.delta();
        GfRvEngine { graph, delta: (!delta.is_empty()).then(|| Arc::clone(delta)) }
    }

    pub fn graph(&self) -> &RowGraph {
        &self.graph
    }
}

impl Engine for GfRvEngine {
    fn name(&self) -> &'static str {
        "GF-RV"
    }

    fn catalog(&self) -> &Catalog {
        self.graph.catalog()
    }

    fn run_plan(&self, plan: &LogicalPlan) -> Result<QueryOutput> {
        // GF-RV is fully resident (no demand paging), but runs inside a
        // fault domain like every other engine so the chaos suite's
        // "clean result or clean error" contract is uniform.
        let token = Arc::new(gfcl_common::CancelToken::new());
        let _scope = gfcl_common::fault_scope(&token);
        let store = RvStore { g: &self.graph };
        let out = match &self.delta {
            Some(d) => volcano::execute(&DeltaOverlay::new(store, d), plan),
            None => volcano::execute(&store, plan),
        }?;
        token.check()?;
        Ok(out)
    }
}

//! Tables 6a/6b/6c and Figure 11: end-to-end system comparison on the
//! LDBC-like IS/IC suites and the 33 JOB-like queries, across all four
//! engines, reported as runtimes and as relative factors vs GF-RV with the
//! Figure 11 percentile summary.
//!
//! Substitutions (DESIGN.md §3): GF-RV stands in for the row/Volcano GDBMS
//! design point (Neo4j's architecture); REL — block hash joins over edge
//! tables without adjacency indexes — stands in for MonetDB/Vertica.
//!
//! Paper headlines: GF-CL improves over GF-RV by a median 2.6x on LDBC and
//! 3.1x on JOB; the relational engines lose big on selective path queries
//! (no pk seek, full edge-table scans) and are competitive on unselective
//! star joins.

use std::sync::Arc;

use gfcl_baselines::{GfCvEngine, GfRvEngine, RelEngine};
use gfcl_bench::{banner, fmt_ms, time_query, TextTable};
use gfcl_core::{Engine, PatternQuery};
use gfcl_storage::{ColumnarGraph, RawGraph, RowGraph, StorageConfig};
use gfcl_workloads::job;
use gfcl_workloads::ldbc::{self, LdbcParams};

fn engines(raw: &RawGraph) -> Vec<Box<dyn Engine>> {
    let col = Arc::new(ColumnarGraph::build(raw, StorageConfig::default()).unwrap());
    let row = Arc::new(RowGraph::build(raw).unwrap());
    vec![
        Box::new(GfClEngine(col.clone())),
        Box::new(GfCvEngine::new(col.clone())),
        Box::new(GfRvEngine::new(row)),
        Box::new(RelEngine::new(col)),
    ]
}

// Thin wrapper so the GF-CL constructor reads uniformly above.
#[allow(non_snake_case)]
fn GfClEngine(g: Arc<ColumnarGraph>) -> gfcl_core::GfClEngine {
    gfcl_core::GfClEngine::new(g)
}

/// Run one suite; returns per-query relative slowdowns vs GF-RV keyed by
/// engine name.
fn run_suite(
    title: &str,
    raw: &RawGraph,
    queries: &[(String, PatternQuery)],
) -> Vec<(String, Vec<f64>)> {
    println!("--- {title} ---");
    let engines = engines(raw);
    let mut table =
        TextTable::new(vec!["query", "GF-CL", "GF-CV", "GF-RV", "REL", "count", "GF-CL vs RV"]);
    let mut rel_slowdowns: Vec<(String, Vec<f64>)> =
        engines.iter().map(|e| (e.name().to_owned(), Vec::new())).collect();

    for (name, q) in queries {
        let mut times = Vec::new();
        let mut counts = Vec::new();
        for e in &engines {
            let (secs, card) = time_query(e.as_ref(), q);
            times.push(secs);
            counts.push(card);
        }
        gfcl_bench::assert_same_count(name, &counts);
        let rv = times[2];
        for (i, t) in times.iter().enumerate() {
            rel_slowdowns[i].1.push(t / rv);
        }
        table.row(vec![
            name.clone(),
            fmt_ms(times[0]),
            fmt_ms(times[1]),
            fmt_ms(times[2]),
            fmt_ms(times[3]),
            counts[0].to_string(),
            format!("{:.1}x", rv / times[0]),
        ]);
    }
    table.print();
    println!();
    rel_slowdowns
}

/// Figure 11-style percentile summary of relative slowdowns vs GF-RV.
fn percentile_summary(title: &str, slowdowns: &[(String, Vec<f64>)]) {
    println!("--- {title}: relative slowdown vs GF-RV (Figure 11 percentiles) ---");
    let mut table = TextTable::new(vec!["engine", "p5", "p25", "median", "p75", "p95"]);
    for (name, values) in slowdowns {
        let mut v = values.clone();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let pct = |p: f64| -> f64 {
            let idx = ((v.len() - 1) as f64 * p).round() as usize;
            v[idx]
        };
        table.row(vec![
            name.clone(),
            format!("{:.2}", pct(0.05)),
            format!("{:.2}", pct(0.25)),
            format!("{:.2}", pct(0.50)),
            format!("{:.2}", pct(0.75)),
            format!("{:.2}", pct(0.95)),
        ]);
    }
    table.print();
    println!("(values < 1 = faster than GF-RV; paper medians: GF-CL 0.38 on LDBC,");
    println!(" 0.32 on JOB; VERTICA/MONET/NEO4J 13x-46x slower on LDBC)\n");
}

fn main() {
    banner(
        "Tables 6a/6b/6c + Figure 11: LDBC and JOB across four engines",
        "Section 8.7 (GF-CL median speedup 2.6x LDBC / 3.1x JOB over GF-RV)",
    );

    // LDBC-like: IS + IC suites.
    let persons = 4_000;
    let social = gfcl_bench::social(persons);
    let params = LdbcParams::for_scale(
        social.vertex_count(social.catalog.vertex_label_id("Person").unwrap()),
    );
    let is_queries = ldbc::is_queries(&params);
    let ic_queries = ldbc::ic_queries(&params);
    let mut ldbc_slow = run_suite("LDBC IS (Table 6a analog)", &social, &is_queries);
    let ic_slow = run_suite("LDBC IC (Table 6b analog)", &social, &ic_queries);
    for (a, b) in ldbc_slow.iter_mut().zip(ic_slow) {
        a.1.extend(b.1);
    }
    percentile_summary("LDBC (IS+IC)", &ldbc_slow);

    // JOB-like: all 33 queries.
    let movies = gfcl_bench::movies(6_000);
    let job_queries = job::all_queries();
    let job_slow = run_suite("JOB (Table 6c analog)", &movies, &job_queries);
    percentile_summary("JOB", &job_slow);
}

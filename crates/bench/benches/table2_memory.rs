//! Table 2: memory reduction from applying each storage optimization
//! step-by-step, starting from the row store (GF-RV) and ending at GF-CL.
//!
//! Paper (Table 2a, LDBC100): total 102.56 GB -> 43.54 GB (2.36x), with
//! per-step factors +1.25x (COLS), +1.21x (NEW-IDS), +1.45x (0-SUPR),
//! +1.07x (NULL). Table 2b (IMDb): 7.57 GB -> 3.72 GB (2.03x).
//! Absolute sizes differ (synthetic data, Rust value sizes); the *factors*
//! and their per-component distribution are the reproduction target.

use gfcl_bench::{banner, TextTable};
use gfcl_common::human_bytes;
use gfcl_storage::{ColumnarGraph, MemoryBreakdown, RawGraph, RowGraph, StorageConfig};

fn breakdowns(raw: &RawGraph) -> Vec<(String, MemoryBreakdown)> {
    let mut out = Vec::new();
    out.push(("GF-RV".to_owned(), RowGraph::build(raw).unwrap().memory_breakdown()));
    for (name, cfg) in StorageConfig::ladder() {
        let g = ColumnarGraph::build(raw, cfg).unwrap();
        out.push((name.to_owned(), g.memory_breakdown()));
    }
    out
}

fn component(b: &MemoryBreakdown, comp: &str) -> usize {
    match comp {
        "Vertex Props" => b.vertex_props,
        "Edge Props" => b.edge_props,
        "Fwd Adj. Lists" => b.fwd_adj,
        "Bwd Adj. Lists" => b.bwd_adj,
        _ => b.total(),
    }
}

fn print_dataset(title: &str, raw: &RawGraph, paper_total: &str) {
    println!("--- {title} ---");
    println!(
        "{} vertices, {} edges   (paper total reduction: {paper_total})",
        raw.total_vertices(),
        raw.total_edges()
    );
    let steps = breakdowns(raw);
    let mut table = TextTable::new(vec![
        "component".to_owned(),
        "GF-RV".to_owned(),
        "+COLS".to_owned(),
        "+NEW-IDS".to_owned(),
        "+0-SUPR".to_owned(),
        "+NULL".to_owned(),
        "GF-CL total factor".to_owned(),
    ]);
    for comp in ["Vertex Props", "Edge Props", "Fwd Adj. Lists", "Bwd Adj. Lists", "Total"] {
        let sizes: Vec<usize> = steps.iter().map(|(_, b)| component(b, comp)).collect();
        let mut cells = vec![comp.to_owned()];
        for (i, &s) in sizes.iter().enumerate() {
            if i == 0 {
                cells.push(human_bytes(s));
            } else {
                let step = sizes[i - 1] as f64 / s.max(1) as f64;
                cells.push(format!("{} (+{:.2}x)", human_bytes(s), step));
            }
        }
        cells.push(format!("{:.2}x", sizes[0] as f64 / sizes[sizes.len() - 1].max(1) as f64));
        table.row(cells);
    }
    table.print();
    println!();
}

fn main() {
    banner("Table 2: memory reductions per optimization step", "Tables 2a and 2b, Section 8.2");
    let social = gfcl_bench::social(2_000);
    print_dataset("LDBC-like social network (Table 2a analog)", &social, "2.36x");
    let movies = gfcl_bench::movies(4_000);
    print_dataset("IMDb-like movie database (Table 2b analog)", &movies, "2.03x");
}

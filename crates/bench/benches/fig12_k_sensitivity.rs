//! Figure 12 (Appendix A.1): sensitivity of the property-page size `k`.
//!
//! Repeats the Table 3 forward-plan experiment with k = 2^1 .. 2^17 and
//! with pure edge columns ("*", equivalent to k = ∞). Paper: performance is
//! stable up to roughly k = 2^9 (2^11 on the lower-degree FLICKR), then
//! degrades toward the edge-column numbers as pages outgrow the cache; the
//! default k = 128 = 2^7 sits safely inside the flat region.

use std::sync::Arc;

use gfcl_bench::{banner, fmt_ms, time_query, TextTable};
use gfcl_core::GfClEngine;
use gfcl_storage::{ColumnarGraph, EdgePropLayout, RawGraph, StorageConfig};
use gfcl_workloads::{khop, KhopMode};

struct Dataset {
    name: &'static str,
    raw: RawGraph,
    node: &'static str,
    edge: &'static str,
    prop: &'static str,
    threshold: i64,
}

fn main() {
    banner(
        "Figure 12: sensitivity of property-page size k (1H and 2H forward plans)",
        "Appendix A.1 (paper: flat up to ~2^9, k=128 in the safe region)",
    );

    let datasets = vec![
        Dataset {
            name: "LDBC-like",
            raw: gfcl_bench::social(2_000),
            node: "Person",
            edge: "knows",
            prop: "date",
            threshold: 1_375_000_000,
        },
        Dataset {
            name: "WIKI-like",
            raw: gfcl_bench::wiki(6_000),
            node: "NODE",
            edge: "LINK",
            prop: "ts",
            threshold: 1_400_000_000,
        },
        Dataset {
            name: "FLICKR-like",
            raw: gfcl_bench::flickr(15_000),
            node: "NODE",
            edge: "LINK",
            prop: "ts",
            threshold: 1_400_000_000,
        },
    ];

    let exponents: Vec<u32> = vec![1, 3, 5, 7, 9, 11, 13, 15, 17];

    for d in &datasets {
        println!("--- {} ---", d.name);
        let mut table = TextTable::new(vec!["k", "1H (ms)", "2H (ms)"]);
        for &e in &exponents {
            let k = 1usize << e;
            let cfg = StorageConfig {
                edge_prop_layout: EdgePropLayout::Pages { k },
                ..StorageConfig::default()
            };
            let engine = GfClEngine::new(Arc::new(ColumnarGraph::build(&d.raw, cfg).unwrap()));
            let t1 = time_query(
                &engine,
                &khop(d.node, d.edge, d.prop, 1, KhopMode::Chain(d.threshold), false),
            )
            .0;
            let t2 = time_query(
                &engine,
                &khop(d.node, d.edge, d.prop, 2, KhopMode::Chain(d.threshold), false),
            )
            .0;
            table.row(vec![format!("2^{e}"), fmt_ms(t1), fmt_ms(t2)]);
        }
        // "*" = pure edge columns (k = ∞).
        let cfg = StorageConfig {
            edge_prop_layout: EdgePropLayout::EdgeColumns,
            ..StorageConfig::default()
        };
        let engine = GfClEngine::new(Arc::new(ColumnarGraph::build(&d.raw, cfg).unwrap()));
        let t1 = time_query(
            &engine,
            &khop(d.node, d.edge, d.prop, 1, KhopMode::Chain(d.threshold), false),
        )
        .0;
        let t2 = time_query(
            &engine,
            &khop(d.node, d.edge, d.prop, 2, KhopMode::Chain(d.threshold), false),
        )
        .0;
        table.row(vec!["*".to_owned(), fmt_ms(t1), fmt_ms(t2)]);
        table.print();
        println!();
    }
}

//! Statistics-driven join ordering vs the worst declaration order.
//!
//! Not an experiment from the paper: the paper hand-picks its left-deep
//! plans (Section 8.7), so plan quality never appears in its tables. This
//! bench measures what that hand-picking is worth — and that the new
//! cost-based orderer (`gfcl_core::optimize`) recovers it automatically —
//! by running multi-hop queries on a power-law graph two ways:
//!
//! * **worst**: the declaration order forced verbatim through
//!   `start_at`/`edge_order` hints — scan every vertex, extend k hops, and
//!   only then apply the selective predicate sitting on the far endpoint;
//! * **optimized**: the same query with no hints; the orderer starts from
//!   the selective end (a pk seek or a filtered scan) and extends backward.
//!
//! On a power-law graph the worst order touches `n · d^k` intermediate
//! tuples, the optimized one a small fraction; the speedup grows with both
//! the hop count and the graph. The final column shows the orderer's own
//! cost estimates (from EXPLAIN) for the two plans.

use std::sync::Arc;

use gfcl_bench::{banner, fmt_factor, fmt_ms, time_plan, TextTable};
use gfcl_core::query::{col, eq, lit, lt, PatternQuery, QueryBuilder};
use gfcl_core::{Engine, GfClEngine};
use gfcl_storage::{ColumnarGraph, StorageConfig};

/// k-hop LINK chain with a predicate on the far endpoint's `id`.
fn far_end_query(hops: usize, pred: FarPred) -> PatternQuery {
    let mut b = QueryBuilder::default();
    for i in 0..=hops {
        b = b.node(&format!("v{i}"), "NODE");
    }
    for i in 0..hops {
        b = b.edge(&format!("e{}", i + 1), "LINK", &format!("v{i}"), &format!("v{}", i + 1));
    }
    let far = format!("v{hops}");
    b = match pred {
        FarPred::IdBelow(limit) => b.filter(lt(col(&far, "id"), lit(limit))),
        FarPred::IdEq(id) => b.filter(eq(col(&far, "id"), lit(id))),
    };
    b.returns_count().build()
}

#[derive(Clone, Copy)]
enum FarPred {
    /// Range predicate: selective scan at the far end.
    IdBelow(i64),
    /// Equality on the primary key: a constant-time seek at the far end.
    IdEq(i64),
}

/// The same query with the declaration order forced verbatim.
fn worst_declaration(q: &PatternQuery) -> PatternQuery {
    let mut w = q.clone();
    w.hints.start = Some("v0".into());
    w.hints.edge_order = Some((0..q.edges.len()).collect());
    w
}

fn main() {
    banner(
        "Optimizer orders: worst declaration order vs statistics-driven order",
        "not in the paper — measures what Section 8.7's hand-picked plans are worth",
    );

    let raw = gfcl_bench::flickr(8_000);
    let n = raw.vertex_count(0) as i64;
    let graph = Arc::new(ColumnarGraph::build(&raw, StorageConfig::default()).unwrap());
    let engine = GfClEngine::new(graph);

    let queries: Vec<(String, PatternQuery)> = vec![
        (format!("2-hop, far id < {}", n / 50), far_end_query(2, FarPred::IdBelow(n / 50))),
        (format!("3-hop, far id < {}", n / 50), far_end_query(3, FarPred::IdBelow(n / 50))),
        (format!("2-hop, far id = {}", n / 2), far_end_query(2, FarPred::IdEq(n / 2))),
        (format!("3-hop, far id = {}", n / 2), far_end_query(3, FarPred::IdEq(n / 2))),
    ];

    let mut table =
        TextTable::new(vec!["query", "worst (ms)", "optimized (ms)", "speedup", "est worst/opt"]);
    let mut best_speedup = 0.0f64;
    for (name, q) in &queries {
        let worst_plan = engine.plan(&worst_declaration(q)).unwrap();
        let opt_plan = engine.plan(q).unwrap();
        let est = |p: &gfcl_core::LogicalPlan| {
            p.step_cards.iter().flatten().copied().fold(0.0f64, f64::max)
        };
        let (t_worst, c_worst) = time_plan(&engine, &worst_plan);
        let (t_opt, c_opt) = time_plan(&engine, &opt_plan);
        assert_eq!(c_worst, c_opt, "{name}: both orders must return the same count");
        best_speedup = best_speedup.max(t_worst / t_opt);
        table.row(vec![
            name.clone(),
            fmt_ms(t_worst),
            fmt_ms(t_opt),
            fmt_factor(t_worst, t_opt),
            format!("{:.0}/{:.0}", est(&worst_plan), est(&opt_plan)),
        ]);
    }
    table.print();
    println!();
    gfcl_bench::assert_speedup(
        best_speedup,
        2.0,
        "statistics-driven order vs worst declaration order",
    );
}

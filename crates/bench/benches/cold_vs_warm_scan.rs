//! Cold vs warm buffer pool vs all-resident on a selective pushed scan.
//!
//! Not an experiment from the paper — it measures the on-disk format and
//! pager: the same zone-map-pruned selective scan runs (a) on the
//! all-resident built graph, (b) on a freshly reopened graph with an empty
//! pool (every surviving page faults from disk), and (c) on the reopened
//! graph once the pool is warm (every pin is a hit). The gap between (a)
//! and (c) is the pin overhead of the paged arm; the gap between (c) and
//! (b) is the fault cost zone-map pruning saves on pages that are never
//! read.
//!
//! Asserted invariant (all modes, including quick): the measured zone-map
//! page-skip rate — pages pruned without faulting over pages touched at
//! all — is at least the CPU-side block-skip rate the clustered layout
//! implies, i.e. pruning skips I/O at least as aggressively as it skips
//! block evaluations.

use std::sync::Arc;
use std::time::Instant;

use gfcl_bench::{banner, expect_count, fmt_factor, fmt_ms, record, time_query, TextTable};
use gfcl_core::query::{col, ge, lit, PatternQuery};
use gfcl_core::{Engine, GfClEngine};
use gfcl_datagen::PowerLawParams;
use gfcl_storage::{ColumnarGraph, StorageConfig};

/// `MATCH (v:NODE) WHERE v.id >= lo RETURN COUNT(*)` — on the clustered
/// id column, zone maps prune every block wholly below `lo`, and a COUNT
/// over the pushed scan never reads a property value, so `AllTrue` blocks
/// cost no I/O either: only the boundary blocks fault.
fn scan_ge(lo: i64) -> PatternQuery {
    PatternQuery::builder()
        .node("v", "NODE")
        .filter(ge(col("v", "id"), lit(lo)))
        .returns_count()
        .build()
}

fn main() {
    banner(
        "Cold vs warm buffer pool on a selective pushed scan",
        "on-disk paged format: zone-map pruning as I/O skipping",
    );

    let n = ((400_000f64 * gfcl_bench::scale()) as usize).max(4096);
    let raw = gfcl_datagen::generate_powerlaw(PowerLawParams {
        nodes: n,
        avg_degree: 2.0,
        exponent: 1.8,
        seed: 0x0D15C,
    });
    let built = Arc::new(ColumnarGraph::build(&raw, StorageConfig::default()).unwrap());
    let path = std::env::temp_dir().join(format!("gfcl_cold_warm_{}.gfcl", std::process::id()));
    built.save(&path).unwrap();

    let n_i = n as i64;
    let lo = n_i - n_i / 128; // ~0.78% selectivity, 99%+ of blocks prunable
    let q = scan_ge(lo);

    // (a) All-resident baseline.
    let resident_engine = GfClEngine::new(Arc::clone(&built));
    let (t_resident, card) = time_query(&resident_engine, &q);
    record("cold_vs_warm_scan/selective/resident", t_resident);

    // (b) Cold: a fresh open per run — the pool starts empty and every
    // page the scan cannot prune faults from disk. Median of 5 runs.
    let reopen = || Arc::new(ColumnarGraph::open(&path, StorageConfig::default()).unwrap());
    let mut cold_times: Vec<f64> = (0..5)
        .map(|_| {
            let g = reopen();
            let engine = GfClEngine::new(Arc::clone(&g));
            let t0 = Instant::now();
            let out = engine.execute(&q).expect("cold scan must run");
            let dt = t0.elapsed().as_secs_f64();
            assert_eq!(expect_count(&out), card, "reopen changed the count");
            dt
        })
        .collect();
    cold_times.sort_by(f64::total_cmp);
    let t_cold = cold_times[cold_times.len() / 2];
    record("cold_vs_warm_scan/selective/cold", t_cold);

    // The skip-rate invariant, measured on one dedicated cold run so the
    // counters cover exactly one execution.
    let g = reopen();
    let engine = GfClEngine::new(Arc::clone(&g));
    engine.execute(&q).unwrap();
    let stats = g.buffer_pool().unwrap().stats();
    let page_skip_rate =
        stats.pages_skipped as f64 / (stats.pages_skipped + stats.faults).max(1) as f64;
    // CPU-side block-skip rate of this query on the clustered id column:
    // a 1024-value block is AllFalse iff it lies wholly below `lo`.
    let total_blocks = n.div_ceil(1024);
    let skipped_blocks = lo as usize / 1024;
    let block_skip_rate = skipped_blocks as f64 / total_blocks as f64;

    // (c) Warm: same reopened graph, pool already holds every surviving
    // page — pins are hits, no I/O.
    let warm_engine = GfClEngine::new(Arc::clone(&g));
    let (t_warm, card_warm) = time_query(&warm_engine, &q);
    assert_eq!(card_warm, card, "warm run changed the count");
    record("cold_vs_warm_scan/selective/warm", t_warm);
    std::fs::remove_file(&path).unwrap();

    let mut table = TextTable::new(vec!["tier", "time (ms)", "vs resident"]);
    table.row(vec!["all-resident".to_owned(), fmt_ms(t_resident), "1.00x".to_owned()]);
    table.row(vec![
        "reopened, cold pool".to_owned(),
        fmt_ms(t_cold),
        fmt_factor(t_cold, t_resident),
    ]);
    table.row(vec![
        "reopened, warm pool".to_owned(),
        fmt_ms(t_warm),
        fmt_factor(t_warm, t_resident),
    ]);
    table.print();
    println!();
    println!(
        "page-skip rate {:.1}% (skipped {} / faulted {}), CPU block-skip rate {:.1}%",
        page_skip_rate * 100.0,
        stats.pages_skipped,
        stats.faults,
        block_skip_rate * 100.0,
    );
    assert!(
        page_skip_rate >= block_skip_rate,
        "zone-map page skipping ({page_skip_rate:.3}) fell below the CPU-side \
         block-skip rate ({block_skip_rate:.3}): pruning is evaluating blocks \
         it no longer saves I/O on"
    );
}

//! Plan-verifier overhead: planning with the structural verifier on
//! (`PlanOptions::default()`) vs off (`PlanOptions::no_verify()`).
//!
//! Not an experiment from the paper — it prices the PR-7 plan verifier.
//! Verification is a pure pass over the finished `LogicalPlan` (no graph
//! data touched), so its cost is a slice of planning time, which is itself
//! microseconds against millisecond-scale execution. The asserted budget
//! (outside quick mode):
//! * total verifier time across the suite < 1% of total end-to-end
//!   (plan + execute) time — i.e. verification is free at query scale.
//!
//! The recorded rows (`verify_overhead/...`) are absolute times, so the
//! perf-trajectory gate (`bench_compare`) additionally pins planning time
//! with verification against future regressions.

use std::sync::Arc;
use std::time::Instant;

use gfcl_bench::{banner, fmt_ms, quick, record, time_plan, TextTable};
use gfcl_core::plan::{plan_with, PlanOptions};
use gfcl_core::query::PatternQuery;
use gfcl_core::GfClEngine;
use gfcl_datagen::SocialParams;
use gfcl_storage::{Catalog, ColumnarGraph, StorageConfig};
use gfcl_workloads::grouped;
use gfcl_workloads::ldbc::{self, LdbcParams};

/// Median seconds per single `plan_with` call: `reps` repetitions of a
/// `k`-plan loop (planning is microseconds, so single calls are below
/// timer resolution).
fn plan_secs(q: &PatternQuery, cat: &Catalog, opts: &PlanOptions, k: usize, reps: usize) -> f64 {
    let mut times: Vec<f64> = (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            for _ in 0..k {
                std::hint::black_box(plan_with(q, cat, opts).unwrap());
            }
            t0.elapsed().as_secs_f64() / k as f64
        })
        .collect();
    times.sort_by(f64::total_cmp);
    times[reps / 2]
}

fn fmt_us(secs: f64) -> String {
    format!("{:.1}", secs * 1e6)
}

fn main() {
    banner(
        "Plan-verifier overhead: planning and end-to-end cost of verification",
        "PR-7 structural plan verifier (EXPLAIN `verified: N invariants`)",
    );

    let persons = ((8_000f64 * gfcl_bench::scale()) as usize).max(400);
    let raw = gfcl_datagen::generate_social(SocialParams::scale(persons));
    let graph = Arc::new(ColumnarGraph::build(&raw, StorageConfig::default()).unwrap());
    let engine = GfClEngine::new(graph.clone());
    let catalog = graph.catalog().clone();

    let params = LdbcParams::for_scale(persons);
    let mut queries = ldbc::all_queries(&params);
    queries.extend(grouped::ga_queries(&params));

    let (k, reps) = if quick() { (16, 3) } else { (64, 5) };

    let mut table = TextTable::new(vec![
        "query",
        "plan off (us)",
        "plan on (us)",
        "verify (us)",
        "e2e (ms)",
        "verify/e2e",
    ]);
    let mut total_verify = 0.0f64;
    let mut total_plan_on = 0.0f64;
    let mut total_plan_off = 0.0f64;
    let mut total_e2e = 0.0f64;
    for (name, q) in &queries {
        let on = PlanOptions::default();
        let off = PlanOptions::no_verify();
        let t_off = plan_secs(q, &catalog, &off, k, reps);
        let t_on = plan_secs(q, &catalog, &on, k, reps);
        let delta = t_on - t_off;

        let plan = plan_with(q, &catalog, &on).unwrap();
        let (t_exec, _card) = time_plan(&engine, &plan);
        let e2e = t_on + t_exec;

        total_verify += delta;
        total_plan_on += t_on;
        total_plan_off += t_off;
        total_e2e += e2e;
        table.row(vec![
            name.clone(),
            fmt_us(t_off),
            fmt_us(t_on),
            fmt_us(delta),
            fmt_ms(e2e),
            format!("{:.3}%", 100.0 * delta / e2e),
        ]);
    }
    table.print();
    println!();

    record("verify_overhead/plan-verify-on", total_plan_on);
    record("verify_overhead/plan-verify-off", total_plan_off);
    record("verify_overhead/end-to-end", total_e2e);

    let ratio = total_verify / total_e2e;
    println!(
        "suite totals: plan off {} ms, plan on {} ms, verifier {} ms, end-to-end {} ms",
        fmt_ms(total_plan_off),
        fmt_ms(total_plan_on),
        fmt_ms(total_verify),
        fmt_ms(total_e2e),
    );
    println!(
        "verifier share of end-to-end: {:.3}% (budget <1%{})",
        ratio * 100.0,
        if quick() { ", quick mode" } else { "" }
    );
    assert!(
        quick() || ratio < 0.01,
        "plan verification must stay under 1% of end-to-end time, measured {:.3}%",
        ratio * 100.0
    );
}

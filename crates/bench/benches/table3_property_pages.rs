//! Table 3: single-directional property pages (PAGE_P) vs plain edge
//! columns (COL_E) on 1-hop and 2-hop queries with edge-property
//! predicates, under forward (P_F) and backward (P_B) plans.
//!
//! Paper: forward plans under property pages are 1.9x–4.7x faster than
//! under edge columns (sequential vs random property reads), while
//! backward plans are comparable (~0.9x–1.1x) since neither layout gives
//! backward locality.

use std::sync::Arc;

use gfcl_bench::{assert_same_count, banner, fmt_factor, fmt_ms, time_query, TextTable};
use gfcl_core::GfClEngine;
use gfcl_storage::{ColumnarGraph, EdgePropLayout, RawGraph, StorageConfig};
use gfcl_workloads::khop::{khop, KhopMode};

struct Dataset {
    name: &'static str,
    raw: RawGraph,
    node_label: &'static str,
    edge_label: &'static str,
    prop: &'static str,
    /// Constant for the 1-hop predicate (roughly median of the values).
    threshold: i64,
    /// Selective (≈95th percentile) constant for the 2-hop chain — bounds
    /// the path count at cache-busting scale while every e1 property is
    /// still read (the paper bounds WIKI 2-hop with extra predicates too).
    threshold_2h: i64,
}

fn engines(raw: &RawGraph) -> (GfClEngine, GfClEngine) {
    let pages = StorageConfig::default();
    let cols =
        StorageConfig { edge_prop_layout: EdgePropLayout::EdgeColumns, ..StorageConfig::default() };
    (
        GfClEngine::new(Arc::new(ColumnarGraph::build(raw, pages).unwrap())),
        GfClEngine::new(Arc::new(ColumnarGraph::build(raw, cols).unwrap())),
    )
}

fn main() {
    banner(
        "Table 3: property pages (PAGE_P) vs edge columns (COL_E), k-hop runtimes",
        "Table 3, Section 8.3 (paper: fwd 1.9x-4.7x faster with pages; bwd ~1x)",
    );

    // Sizes are chosen so the edge-property column exceeds the LLC —
    // the locality contrast Table 3 measures needs out-of-cache columns.
    let datasets = vec![
        Dataset {
            name: "LDBC-like (knows)",
            raw: gfcl_bench::social_knows_heavy(250_000),
            node_label: "Person",
            edge_label: "knows",
            prop: "date",
            threshold: 1_375_000_000,
            threshold_2h: 1_532_000_000,
        },
        Dataset {
            name: "WIKI-like",
            raw: gfcl_bench::wiki(300_000),
            node_label: "NODE",
            edge_label: "LINK",
            prop: "ts",
            threshold: 1_400_000_000,
            threshold_2h: 1_490_000_000,
        },
        Dataset {
            name: "FLICKR-like",
            raw: gfcl_bench::flickr(900_000),
            node_label: "NODE",
            edge_label: "LINK",
            prop: "ts",
            threshold: 1_400_000_000,
            threshold_2h: 1_490_000_000,
        },
    ];

    let mut table = TextTable::new(vec![
        "plan",
        "layout",
        "dataset",
        "1H (ms)",
        "2H (ms)",
        "1H factor",
        "2H factor",
    ]);

    for d in &datasets {
        println!("{}: {} vertices, {} edges", d.name, d.raw.total_vertices(), d.raw.total_edges());
        let (pages, cols) = engines(&d.raw);
        for backward in [false, true] {
            let plan_name = if backward { "P_B" } else { "P_F" };
            let mut ms = [[0f64; 2]; 2]; // [layout][hops-1]
            for (hops_idx, hops) in [1usize, 2].iter().enumerate() {
                let threshold = if *hops == 1 { d.threshold } else { d.threshold_2h };
                let q = khop(
                    d.node_label,
                    d.edge_label,
                    d.prop,
                    *hops,
                    KhopMode::Chain(threshold),
                    backward,
                );
                let (t_pages, c1) = time_query(&pages, &q);
                let (t_cols, c2) = time_query(&cols, &q);
                assert_same_count(&format!("{} {}H", d.name, hops), &[c1, c2]);
                ms[0][hops_idx] = t_pages;
                ms[1][hops_idx] = t_cols;
            }
            for (layout_idx, layout) in ["PAGE_P", "COL_E"].iter().enumerate() {
                table.row(vec![
                    plan_name.to_owned(),
                    (*layout).to_owned(),
                    d.name.to_owned(),
                    fmt_ms(ms[layout_idx][0]),
                    fmt_ms(ms[layout_idx][1]),
                    if layout_idx == 1 { fmt_factor(ms[1][0], ms[0][0]) } else { "-".into() },
                    if layout_idx == 1 { fmt_factor(ms[1][1], ms[0][1]) } else { "-".into() },
                ]);
            }
        }
    }
    table.print();
    println!("\nfactor = COL_E time / PAGE_P time (higher = pages win, as in the paper's");
    println!("forward plans; backward plans should hover around 1.0x).");
}

//! Grouped aggregation over unflat list groups vs flatten-then-count.
//!
//! Not an experiment from the paper — it extends the Section 6.2
//! factorized-COUNT(*) argument to *grouped* aggregation: a grouped COUNT
//! whose grouping key sits on the flattened source side never enumerates
//! the unflat far-end adjacency lists; it adds their lengths (multiplicity
//! arithmetic) into a per-key table. The pre-existing alternative —
//! materialize every `(key)` row, then fold a hash map — pays one `Value`
//! allocation per *tuple*.
//!
//! The bench asserts the grouped sink beats flatten-then-count by >= 5x on
//! the 2-hop power-law workload (far end unflat, high fan-out).

use std::collections::HashMap;
use std::sync::Arc;

use gfcl_bench::{banner, fmt_factor, fmt_ms, record, time_plan, TextTable};
use gfcl_core::query::{Agg, PatternQuery, SortDir};
use gfcl_core::{Engine, GfClEngine, QueryOutput};
use gfcl_storage::{ColumnarGraph, StorageConfig};

/// k-hop chain over LINK, grouped by the start vertex: COUNT(*) per group.
fn grouped_khop(hops: usize) -> PatternQuery {
    let mut b = PatternQuery::builder();
    for i in 0..=hops {
        b = b.node(&format!("v{i}"), "NODE");
    }
    for i in 0..hops {
        b = b.edge(&format!("e{}", i + 1), "LINK", &format!("v{i}"), &format!("v{}", i + 1));
    }
    b.group_by(&[("v0", "id")]).returns_agg(vec![Agg::count_star()]).build()
}

/// The same matches as flat rows (key only) — the enumerate path.
fn flat_khop(hops: usize) -> PatternQuery {
    let mut b = PatternQuery::builder();
    for i in 0..=hops {
        b = b.node(&format!("v{i}"), "NODE");
    }
    for i in 0..hops {
        b = b.edge(&format!("e{}", i + 1), "LINK", &format!("v{i}"), &format!("v{}", i + 1));
    }
    b.returns(&[("v0", "id")]).build()
}

fn main() {
    banner(
        "Grouped aggregation: multiplicity folding vs flatten-then-count",
        "extends Section 6.2 factorized COUNT(*) to GROUP BY",
    );

    let raw = gfcl_bench::flickr(8_000);
    let graph = Arc::new(ColumnarGraph::build(&raw, StorageConfig::default()).unwrap());
    let engine = GfClEngine::new(graph);

    let mut table = TextTable::new(vec![
        "query",
        "flatten+fold (ms)",
        "grouped sink (ms)",
        "speedup",
        "groups",
    ]);
    let mut best_speedup = 0.0f64;
    for hops in [1usize, 2] {
        let grouped_plan = engine.plan(&grouped_khop(hops)).unwrap();
        let flat_plan = engine.plan(&flat_khop(hops)).unwrap();

        // Flatten-then-count: enumerate every (key) row, fold a hash map —
        // what every group-by had to do before the grouped sinks existed.
        let t0 = std::time::Instant::now();
        let flat_out = engine.run_plan(&flat_plan).unwrap();
        let QueryOutput::Rows { rows, .. } = &flat_out else { panic!("rows expected") };
        let mut fold: HashMap<i64, u64> = HashMap::new();
        for r in rows {
            *fold.entry(r[0].as_i64().unwrap()).or_insert(0) += 1;
        }
        let t_flat_once = t0.elapsed().as_secs_f64();
        // Re-measure with the shared protocol (plan timing dominates; the
        // fold is re-run outside, its one-time cost is below the noise).
        let (t_flat_plan, tuples) = time_plan(&engine, &flat_plan);
        let t_flat = t_flat_plan.max(t_flat_once);

        let (t_grouped, groups) = time_plan(&engine, &grouped_plan);

        // Cross-check: the grouped sink agrees with the naive fold.
        let QueryOutput::Rows { rows: grows, .. } = engine.run_plan(&grouped_plan).unwrap() else {
            panic!("rows expected")
        };
        assert_eq!(grows.len(), fold.len(), "{hops}-hop: group count mismatch");
        for gr in &grows {
            let k = gr[0].as_i64().unwrap();
            let c = gr[1].as_i64().unwrap() as u64;
            assert_eq!(fold.get(&k), Some(&c), "{hops}-hop: key {k}");
        }

        record(&format!("grouped_agg/{hops}-hop/flatten-then-count"), t_flat);
        record(&format!("grouped_agg/{hops}-hop/grouped-sink"), t_grouped);
        best_speedup = best_speedup.max(t_flat / t_grouped);
        table.row(vec![
            format!("{hops}-hop COUNT(*) by v0.id ({tuples} tuples)"),
            fmt_ms(t_flat),
            fmt_ms(t_grouped),
            fmt_factor(t_flat, t_grouped),
            format!("{groups}"),
        ]);
    }

    // Grouped top-k for the record: heaviest 10 sources by 2-hop count.
    let topk = {
        let mut q = grouped_khop(2);
        q.order_by = vec![gfcl_core::query::OrderKey { col: 1, dir: SortDir::Desc }];
        q.limit = Some(10);
        q
    };
    let topk_plan = engine.plan(&topk).unwrap();
    let (t_topk, k) = time_plan(&engine, &topk_plan);
    record("grouped_agg/2-hop/top-10", t_topk);
    table.row(vec![
        format!("2-hop top-10 by COUNT(*) desc"),
        "-".to_owned(),
        fmt_ms(t_topk),
        "-".to_owned(),
        format!("{k}"),
    ]);

    table.print();
    println!();
    gfcl_bench::assert_speedup(
        best_speedup,
        5.0,
        "grouped COUNT over the unflat far end vs flatten-then-count",
    );
}

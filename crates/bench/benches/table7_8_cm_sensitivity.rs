//! Tables 7 and 8 (Appendix A.2): sensitivity of the Jacobson NULL
//! compression parameters `(c, m)` — runtime of the Figure 10 query across
//! NULL densities (Table 7) and the index overhead in bytes (Table 8).
//!
//! Paper: runtime is insensitive to both parameters; overhead is exactly
//! `m/c` bits per element (plus the bit string), so (8,8), (16,16) and
//! (16,8) are the reasonable choices. `c = 24` would need a 1.6 GB map and
//! is rejected outright.

use std::sync::Arc;

use gfcl_bench::{banner, fmt_ms, time_query, TextTable};
use gfcl_columnar::{NullKind, RankParams};
use gfcl_common::human_bytes;
use gfcl_core::query::PatternQuery;
use gfcl_core::GfClEngine;
use gfcl_storage::{ColumnarGraph, StorageConfig};

fn creation_date_query() -> PatternQuery {
    PatternQuery::builder()
        .node("a", "Person")
        .node("b", "Comment")
        .edge("e", "likes", "a", "b")
        .returns_sum("b", "creationDate")
        .build()
}

fn combos() -> Vec<RankParams> {
    let mut v = Vec::new();
    for c in [8u32, 16] {
        for m in [8u32, 16, 24, 32] {
            v.push(RankParams::new(c, m).unwrap());
        }
    }
    v
}

fn main() {
    banner(
        "Tables 7/8: (c, m) sensitivity of the Jacobson NULL index",
        "Appendix A.2 (paper: runtime flat across (c,m); overhead = m/c bits/elem)",
    );

    // Table 7: runtime at each density for each (c, m).
    let mut headers = vec!["rho".to_owned()];
    headers.extend(combos().iter().map(|p| format!("{},{}", p.c, p.m)));
    let mut t7 = TextTable::new(headers);
    for non_null_pct in [100, 90, 80, 70, 60, 50, 40, 30, 20, 10] {
        let raw = gfcl_bench::social_with_nulls(4_000, 1.0 - non_null_pct as f64 / 100.0);
        let mut row = vec![format!("{non_null_pct}")];
        for params in combos() {
            let cfg = StorageConfig {
                null_compress: true,
                null_kind: NullKind::Jacobson(params),
                ..StorageConfig::default()
            };
            let engine = GfClEngine::new(Arc::new(ColumnarGraph::build(&raw, cfg).unwrap()));
            let (secs, _) = time_query(&engine, &creation_date_query());
            row.push(fmt_ms(secs));
        }
        t7.row(row);
    }
    println!("Table 7 analog: runtime (ms) of the likes->creationDate scan");
    t7.print();

    // Table 8: overhead of bit strings + prefix sums at rho = 50%.
    let raw = gfcl_bench::social_with_nulls(4_000, 0.5);
    let comment = raw.catalog.vertex_label_id("Comment").unwrap();
    let date_prop = raw.catalog.vertex_prop_idx(comment, "creationDate").unwrap();
    let mut headers = vec!["".to_owned()];
    headers.extend(combos().iter().map(|p| format!("{},{}", p.c, p.m)));
    let mut t8 = TextTable::new(headers);
    let mut row = vec!["overhead".to_owned()];
    let mut elems = 0usize;
    for params in combos() {
        let cfg = StorageConfig {
            null_compress: true,
            null_kind: NullKind::Jacobson(params),
            ..StorageConfig::default()
        };
        let g = ColumnarGraph::build(&raw, cfg).unwrap();
        let col = g.vertex_prop(comment, date_prop);
        elems = col.len();
        row.push(human_bytes(col.null_overhead_bytes()));
    }
    t8.row(row);
    println!("\nTable 8 analog: NULL-structure overhead (bit string + prefix sums)");
    println!("for the {elems}-element creationDate column at rho = 50%");
    t8.print();
    println!(
        "\nexpected bits/element: 1 + m/c (e.g. 1.5 at (16,8), 2 at (8,8)/(16,16), 5 at (8,32))"
    );
}

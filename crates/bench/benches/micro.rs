//! Criterion micro-benchmarks of the columnar primitives: rank queries,
//! fixed-width array access, dictionary predicate pre-evaluation, CSR list
//! lookup, and the two edge-property access paths of the property pages.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use gfcl_columnar::{Bitmap, Column, Dictionary, JacobsonRank, NullKind, RankParams, UIntArray};
use gfcl_common::{DataType, Direction};
use gfcl_storage::{ColumnarGraph, StorageConfig};

fn bench_rank(c: &mut Criterion) {
    let n = 1 << 20;
    let bits = Bitmap::from_fn(n, |i| i % 3 == 0);
    let rank = JacobsonRank::build(&bits, RankParams::default());
    let positions: Vec<usize> = (0..1024).map(|i| (i * 104_729) % n).collect();

    let mut g = c.benchmark_group("rank");
    g.bench_function("jacobson_1k_random", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for &p in &positions {
                acc += rank.rank(black_box(&bits), black_box(p));
            }
            acc
        })
    });
    g.bench_function("linear_scan_1k_random", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for &p in &positions {
                acc += bits.rank_scan(black_box(p));
            }
            acc
        })
    });
    g.finish();
}

fn bench_uint_array(c: &mut Criterion) {
    let values: Vec<u64> = (0..1_000_000u64).map(|i| i % 60_000).collect();
    let narrow = UIntArray::from_values(&values, true);
    let wide = UIntArray::from_values(&values, false);
    let idx: Vec<usize> = (0..4096).map(|i| (i * 48_271) % values.len()).collect();

    let mut g = c.benchmark_group("uint_array");
    g.bench_function("get_u16_4k", |b| {
        b.iter(|| idx.iter().map(|&i| narrow.get(black_box(i))).sum::<u64>())
    });
    g.bench_function("get_u64_4k", |b| {
        b.iter(|| idx.iter().map(|&i| wide.get(black_box(i))).sum::<u64>())
    });
    g.finish();
}

fn bench_dictionary(c: &mut Criterion) {
    let mut dict = Dictionary::new();
    for i in 0..1000 {
        dict.intern(&format!("value-{i}-{}", if i % 7 == 0 { "production" } else { "other" }));
    }
    c.bench_function("dictionary_contains_pre_eval_1000", |b| {
        b.iter(|| dict.matching_codes(|s| s.contains(black_box("production"))).count_ones())
    });
}

fn bench_null_column(c: &mut Criterion) {
    let values: Vec<Option<i64>> =
        (0..1_000_000).map(|i| (i % 3 == 0).then_some(i as i64)).collect();
    let jac = Column::from_i64(DataType::Int64, &values, NullKind::jacobson_default());
    let unc = Column::from_i64(DataType::Int64, &values, NullKind::Uncompressed);
    let idx: Vec<usize> = (0..4096).map(|i| (i * 48_271) % values.len()).collect();

    let mut g = c.benchmark_group("null_column_4k_random_reads");
    g.bench_function("jacobson", |b| {
        b.iter(|| idx.iter().filter_map(|&i| jac.get_i64(black_box(i))).sum::<i64>())
    });
    g.bench_function("uncompressed", |b| {
        b.iter(|| idx.iter().filter_map(|&i| unc.get_i64(black_box(i))).sum::<i64>())
    });
    g.finish();
}

fn bench_edge_prop_paths(c: &mut Criterion) {
    let raw = gfcl_datagen::generate_powerlaw(gfcl_datagen::PowerLawParams::flickr(20_000));
    let g = ColumnarGraph::build(&raw, StorageConfig::default()).unwrap();
    let link = g.catalog().edge_label_id("LINK").unwrap();
    let fwd = g.adj(link, Direction::Fwd).as_csr().unwrap();
    let n = raw.vertex_count(0) as u64;

    let mut grp = c.benchmark_group("edge_prop_pages");
    // Forward: iterate a batch of adjacency lists reading ts in list order.
    grp.bench_function("fwd_list_order_1k_vertices", |b| {
        let read = g.edge_prop_read(link, Direction::Fwd, 0).unwrap();
        b.iter(|| {
            let mut acc = 0i64;
            for v in 0..1000u64 {
                let (start, len) = fwd.list(v);
                for p in start..start + len as u64 {
                    let (col, flat) = g.resolve_edge_prop(read, link, Direction::Fwd, v, Some(p));
                    acc += col.get_i64(flat as usize).unwrap_or(0);
                }
            }
            acc
        })
    });
    // Backward: same number of reads through the (src, page offset) path.
    let bwd = g.adj(link, Direction::Bwd).as_csr().unwrap();
    grp.bench_function("bwd_random_1k_vertices", |b| {
        let read = g.edge_prop_read(link, Direction::Bwd, 0).unwrap();
        b.iter(|| {
            let mut acc = 0i64;
            for v in (0..n).step_by((n as usize / 1000).max(1)) {
                let (start, len) = bwd.list(v);
                for p in start..start + len as u64 {
                    let (col, flat) = g.resolve_edge_prop(read, link, Direction::Bwd, v, Some(p));
                    acc += col.get_i64(flat as usize).unwrap_or(0);
                }
            }
            acc
        })
    });
    grp.finish();
}

criterion_group!(
    benches,
    bench_rank,
    bench_uint_array,
    bench_dictionary,
    bench_null_column,
    bench_edge_prop_paths
);
criterion_main!(benches);

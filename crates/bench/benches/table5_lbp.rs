//! Table 5: the list-based processor (GF-CL) vs the Volcano-style
//! tuple-at-a-time processor over the *same columnar storage* (GF-CV), on
//! 1/2/3-hop queries — FILTER rows (predicate on the last edge) and
//! COUNT(*) rows (factorized aggregation).
//!
//! Paper: FILTER speedups 2.7x–15.2x; COUNT(*) speedups grow with path
//! length up to 905x (WIKI 3-hop), because the factorized count never
//! enumerates tuples.

use std::sync::Arc;

use gfcl_baselines::GfCvEngine;
use gfcl_bench::{assert_same_count, banner, fmt_factor, fmt_ms, time_query, TextTable};
use gfcl_core::GfClEngine;
use gfcl_storage::{ColumnarGraph, RawGraph, StorageConfig};
use gfcl_workloads::{khop, KhopMode};

struct Dataset {
    name: &'static str,
    raw: RawGraph,
    node: &'static str,
    edge: &'static str,
    prop: &'static str,
    threshold: i64,
    max_hops: usize,
}

fn main() {
    banner(
        "Table 5: list-based processor (GF-CL) vs columnar Volcano (GF-CV)",
        "Table 5, Section 8.6 (paper: FILTER 2.7x-15.2x, COUNT(*) up to 905x)",
    );

    let datasets = vec![
        Dataset {
            name: "LDBC-like",
            raw: gfcl_bench::social(1_500),
            node: "Person",
            edge: "knows",
            prop: "date",
            threshold: 1_440_000_000,
            max_hops: 3,
        },
        Dataset {
            name: "FLICKR-like",
            raw: gfcl_bench::flickr(12_000),
            node: "NODE",
            edge: "LINK",
            prop: "ts",
            threshold: 1_440_000_000,
            max_hops: 3,
        },
        Dataset {
            name: "WIKI-like",
            raw: gfcl_bench::wiki(2_500),
            node: "NODE",
            edge: "LINK",
            prop: "ts",
            threshold: 1_440_000_000,
            max_hops: 3,
        },
    ];

    let mut table = TextTable::new(vec![
        "dataset", "mode", "engine", "1-hop", "2-hop", "3-hop", "1H x", "2H x", "3H x",
    ]);

    for d in &datasets {
        let graph = Arc::new(ColumnarGraph::build(&d.raw, StorageConfig::default()).unwrap());
        let cl = GfClEngine::new(graph.clone());
        let cv = GfCvEngine::new(graph);
        for (mode_name, mode) in
            [("FILTER", KhopMode::LastEdgeGt(d.threshold)), ("COUNT(*)", KhopMode::CountStar)]
        {
            let mut cl_ms = [f64::NAN; 3];
            let mut cv_ms = [f64::NAN; 3];
            for hops in 1..=d.max_hops {
                let q = khop(d.node, d.edge, d.prop, hops, mode, false);
                let (t_cl, c1) = time_query(&cl, &q);
                let (t_cv, c2) = time_query(&cv, &q);
                assert_same_count(&format!("{} {mode_name} {hops}H", d.name), &[c1, c2]);
                cl_ms[hops - 1] = t_cl;
                cv_ms[hops - 1] = t_cv;
            }
            let fmt_or = |v: f64| if v.is_nan() { "-".to_owned() } else { fmt_ms(v) };
            table.row(vec![
                d.name.to_owned(),
                mode_name.to_owned(),
                "GF-CV".to_owned(),
                fmt_or(cv_ms[0]),
                fmt_or(cv_ms[1]),
                fmt_or(cv_ms[2]),
                String::new(),
                String::new(),
                String::new(),
            ]);
            table.row(vec![
                d.name.to_owned(),
                mode_name.to_owned(),
                "GF-CL".to_owned(),
                fmt_or(cl_ms[0]),
                fmt_or(cl_ms[1]),
                fmt_or(cl_ms[2]),
                fmt_factor(cv_ms[0], cl_ms[0]),
                fmt_factor(cv_ms[1], cl_ms[1]),
                fmt_factor(cv_ms[2], cl_ms[2]),
            ]);
        }
    }
    table.print();
    println!("\nfactor = GF-CV time / GF-CL time. Expect FILTER factors to grow with");
    println!("path length and COUNT(*) factors to explode (factorized counting).");
}

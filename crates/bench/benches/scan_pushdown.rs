//! Filter pushdown to storage: zone-map-pruned scans vs read-then-filter.
//!
//! Not an experiment from the paper — it measures the PR-5 pushdown path:
//! a scan with a pushed-down predicate consults per-block zone maps
//! (min/max synopses over the vertex-property columns), skips whole
//! morsels no row of which can match, and seeds the selection mask before
//! any property read materializes a value. The baseline is the same query
//! planned with `PlanOptions::no_pushdown()` (the `GFCL_NO_PUSHDOWN`
//! escape hatch): read the property into a vector, then filter.
//!
//! Asserted floors (outside quick mode):
//! * ≥ 5x on a selective (≤ 1% selectivity) range filter over a
//!   value-clustered key — the zone-map sweet spot;
//! * ≥ 1x (no regression) on a non-selective filter that every row passes;
//! * zone-map construction adds < 5% to `ColumnarGraph::build`.

use std::sync::Arc;
use std::time::Instant;

use gfcl_bench::{banner, fmt_factor, fmt_ms, quick, record, time_plan, TextTable};
use gfcl_core::plan::{plan_with, PlanOptions};
use gfcl_core::query::{col, ge, gt, lit, PatternQuery};
use gfcl_core::GfClEngine;
use gfcl_datagen::PowerLawParams;
use gfcl_storage::{ColumnarGraph, RawGraph, StorageConfig};

/// Scan-only query: `MATCH (v:NODE) WHERE v.id >= lo RETURN COUNT(*)`.
fn scan_ge(lo: i64) -> PatternQuery {
    PatternQuery::builder()
        .node("v", "NODE")
        .filter(ge(col("v", "id"), lit(lo)))
        .returns_count()
        .build()
}

/// 1-hop count with a pushed start filter (pruning compounds with the
/// extend: skipped vertices never reach the adjacency index).
fn one_hop_ge(lo: i64) -> PatternQuery {
    PatternQuery::builder()
        .node("v0", "NODE")
        .node("v1", "NODE")
        .edge("e1", "LINK", "v0", "v1")
        .filter(ge(col("v0", "id"), lit(lo)))
        .filter(gt(col("e1", "ts"), lit(1_350_000_000)))
        .returns_count()
        .start_at("v0")
        .build()
}

/// Median build time of `raw` under `cfg` over `runs` builds.
fn build_secs(raw: &RawGraph, cfg: StorageConfig, runs: usize) -> f64 {
    let mut times: Vec<f64> = (0..runs)
        .map(|_| {
            let t0 = Instant::now();
            let g = ColumnarGraph::build(raw, cfg).unwrap();
            let dt = t0.elapsed().as_secs_f64();
            std::hint::black_box(&g);
            dt
        })
        .collect();
    times.sort_by(f64::total_cmp);
    times[runs / 2]
}

fn main() {
    banner(
        "Scan pushdown: zone-map-pruned scans vs read-then-filter",
        "PR-5 filter pushdown (Vertica/GRAPHITE-style block skipping)",
    );

    let n = ((400_000f64 * gfcl_bench::scale()) as usize).max(4096);
    let raw = gfcl_datagen::generate_powerlaw(PowerLawParams {
        nodes: n,
        avg_degree: 2.0,
        exponent: 1.8,
        seed: 0x5CA9,
    });

    // Zone-map build overhead: the same graph with and without maps.
    let without = build_secs(&raw, StorageConfig { zone_maps: false, ..Default::default() }, 5);
    let with = build_secs(&raw, StorageConfig::default(), 5);
    let overhead = (with - without) / without;
    println!(
        "ColumnarGraph::build: {} ms without zone maps, {} ms with ({:+.1}% overhead)\n",
        fmt_ms(without),
        fmt_ms(with),
        overhead * 100.0
    );

    let graph = Arc::new(ColumnarGraph::build(&raw, StorageConfig::default()).unwrap());
    let engine = GfClEngine::new(graph.clone());
    let catalog = graph.catalog().clone();

    let n_i = n as i64;
    let cases: Vec<(&str, PatternQuery)> = vec![
        // ~0.78% of the key domain: ≤ 1% selectivity, 99%+ of blocks prunable.
        ("scan 0.8%-selective", scan_ge(n_i - n_i / 128)),
        ("scan non-selective", scan_ge(0)),
        ("1-hop 3%-selective start", one_hop_ge(n_i - n_i / 32)),
    ];

    let mut table =
        TextTable::new(vec!["query", "no pushdown (ms)", "pushdown (ms)", "speedup", "rows"]);
    let mut speedups = Vec::new();
    for (name, q) in &cases {
        let pushed = plan_with(q, &catalog, &PlanOptions::default()).unwrap();
        let plain = plan_with(q, &catalog, &PlanOptions::no_pushdown()).unwrap();
        let (t_plain, card_plain) = time_plan(&engine, &plain);
        let (t_push, card_push) = time_plan(&engine, &pushed);
        assert_eq!(card_plain, card_push, "{name}: pushdown changed the result");
        record(&format!("scan_pushdown/{name}/no-pushdown"), t_plain);
        record(&format!("scan_pushdown/{name}/pushdown"), t_push);
        speedups.push(t_plain / t_push);
        table.row(vec![
            (*name).to_owned(),
            fmt_ms(t_plain),
            fmt_ms(t_push),
            fmt_factor(t_plain, t_push),
            format!("{card_push}"),
        ]);
    }
    table.print();
    println!();

    gfcl_bench::assert_speedup(
        speedups[0],
        5.0,
        "zone-map-pruned scan vs read-then-filter on a <=1%-selective predicate",
    );
    gfcl_bench::assert_speedup(
        speedups[1],
        1.0,
        "pushdown on a non-selective predicate (no-regression floor)",
    );
    println!(
        "zone-map build overhead: {:+.1}% (floor <5%{})",
        overhead * 100.0,
        if quick() { ", quick mode" } else { "" }
    );
    assert!(
        quick() || overhead < 0.05,
        "zone-map construction must stay below 5% of build time, measured {:.1}%",
        overhead * 100.0
    );
}

//! Figure 10: query performance and memory when a sparse vertex property
//! column is stored Uncompressed, with the paper's Jacobson-indexed NULL
//! compression (J-NULL), or with Abadi's vanilla bit-string scheme
//! (Vanilla-NULL), across NULL densities.
//!
//! Workload (Section 8.5): `MATCH (a:Person)-[e:likes]->(b:Comment)
//! RETURN <aggregate of b.creationDate>` — scan persons, extend over
//! `likes`, read the (sparse) creationDate column of each reached comment.
//!
//! Paper: J-NULL is 1.19x–1.51x slower than Uncompressed (and *faster*
//! below ~30% density), while Vanilla-NULL is >20x slower than J-NULL and
//! was omitted from the plot. Memory: 2 bits/element overhead for J-NULL
//! vs 1 for Vanilla, both far below the uncompressed column at low
//! density.

use std::sync::Arc;

use gfcl_bench::{banner, fmt_ms, time_query, TextTable};
use gfcl_columnar::NullKind;
use gfcl_common::{human_bytes, MemoryUsage};
use gfcl_core::query::PatternQuery;
use gfcl_core::GfClEngine;
use gfcl_storage::{ColumnarGraph, StorageConfig};

fn creation_date_query() -> PatternQuery {
    PatternQuery::builder()
        .node("a", "Person")
        .node("b", "Comment")
        .edge("e", "likes", "a", "b")
        .returns_sum("b", "creationDate")
        .build()
}

fn main() {
    banner(
        "Figure 10: NULL-compression performance/memory vs density",
        "Figure 10, Section 8.5 (paper: J-NULL within 1.2-1.5x of uncompressed, \
         >20x faster than Vanilla; crossover below ~30% non-NULL)",
    );

    let layouts: Vec<(&str, NullKind)> = vec![
        ("Uncompressed", NullKind::Uncompressed),
        ("J-NULL", NullKind::jacobson_default()),
        ("Vanilla-NULL", NullKind::Vanilla),
    ];

    let mut table = TextTable::new(vec![
        "non-NULL %",
        "Uncompressed ms",
        "J-NULL ms",
        "Vanilla ms",
        "Unc col",
        "J-NULL col",
        "Vanilla col",
        "vanilla/jnull",
    ]);

    for non_null_pct in [100, 90, 80, 70, 60, 50, 40, 30, 20, 10] {
        let raw = gfcl_bench::social_with_nulls(6_000, 1.0 - non_null_pct as f64 / 100.0);
        let comment = raw.catalog.vertex_label_id("Comment").unwrap();
        let date_prop = raw.catalog.vertex_prop_idx(comment, "creationDate").unwrap();

        let mut ms = Vec::new();
        let mut col_bytes = Vec::new();
        for (_, kind) in &layouts {
            let cfg =
                StorageConfig { null_compress: true, null_kind: *kind, ..StorageConfig::default() };
            let g = ColumnarGraph::build(&raw, cfg).unwrap();
            col_bytes.push(g.vertex_prop(comment, date_prop).memory_bytes());
            let engine = GfClEngine::new(Arc::new(g));
            let (secs, _) = time_query(&engine, &creation_date_query());
            ms.push(secs);
        }
        table.row(vec![
            format!("{non_null_pct}%"),
            fmt_ms(ms[0]),
            fmt_ms(ms[1]),
            fmt_ms(ms[2]),
            human_bytes(col_bytes[0]),
            human_bytes(col_bytes[1]),
            human_bytes(col_bytes[2]),
            format!("{:.1}x", ms[2] / ms[1]),
        ]);
    }
    table.print();
    println!("\nExpected shape: J-NULL tracks Uncompressed closely (and can win at low");
    println!("density); Vanilla-NULL degrades with column length due to O(n) rank scans.");
}

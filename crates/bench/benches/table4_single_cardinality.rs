//! Table 4: vertex columns vs 2-level CSR for storing single-cardinality
//! edges — runtime of 1/2/3-hop `replyOf`-style chains plus the memory of
//! that label's storage, with and without NULL compression.
//!
//! Paper: vertex columns beat CSR by 1.26x–1.64x at equal compression, and
//! NULL-compressing the ~50%-empty lists shrinks vertex columns by 1.75x
//! (839.93 MB -> 478.86 MB) vs only 1.4x for CSR (offsets cannot be
//! compressed without losing constant-time access).

use std::sync::Arc;

use gfcl_bench::{assert_same_count, banner, fmt_ms, time_query, TextTable};
use gfcl_common::human_bytes;
use gfcl_core::{Engine, GfClEngine};
use gfcl_storage::{ColumnarGraph, RawGraph, StorageConfig};
use gfcl_workloads::khop_propless;

fn build(raw: &RawGraph, vcols: bool, null_compress: bool) -> (GfClEngine, usize) {
    let cfg =
        StorageConfig { single_card_in_vcols: vcols, null_compress, ..StorageConfig::default() };
    let g = ColumnarGraph::build(raw, cfg).unwrap();
    let label = g.catalog().edge_label_id("replyOfComment").unwrap();
    let (fwd, bwd, props) = g.edge_label_memory(label);
    (GfClEngine::new(Arc::new(g)), fwd + bwd + props)
}

fn main() {
    banner(
        "Table 4: vertex columns vs CSR for single-cardinality edges",
        "Table 4, Section 8.4 (paper: V-COL 1.26x-1.64x faster, 1.51x-1.89x smaller)",
    );
    // The workload: 1/2/3-hop chains over the half-empty replyOfComment
    // n-1 label, count(*), forward plans (as in the paper).
    let raw = gfcl_bench::social(12_000);
    let comment_count = raw.vertex_count(raw.catalog.vertex_label_id("Comment").unwrap());
    let reply_edges = raw.edge_count(raw.catalog.edge_label_id("replyOfComment").unwrap());
    println!(
        "{comment_count} comments, {reply_edges} replyOfComment edges ({:.1}% of forward lists empty)\n",
        100.0 * (1.0 - reply_edges as f64 / comment_count as f64)
    );

    let configs: Vec<(&str, bool, bool)> = vec![
        ("CSR-UNC", false, false),
        ("V-COL-UNC", true, false),
        ("CSR-C", false, true),
        ("V-COL-C", true, true),
    ];

    let mut table =
        TextTable::new(vec!["config", "1-hop (ms)", "2-hop (ms)", "3-hop (ms)", "mem (label)"]);
    let mut results: Vec<(String, [f64; 3], usize)> = Vec::new();
    for (name, vcols, nullc) in configs {
        let (engine, mem) = build(&raw, vcols, nullc);
        let mut times = [0f64; 3];
        let mut counts = Vec::new();
        for hops in 1..=3usize {
            let q = khop_propless("Comment", "replyOfComment", hops);
            let (secs, count) = time_query(&engine, &q);
            times[hops - 1] = secs;
            counts.push(count);
        }
        table.row(vec![
            name.to_owned(),
            fmt_ms(times[0]),
            fmt_ms(times[1]),
            fmt_ms(times[2]),
            human_bytes(mem),
        ]);
        results.push((name.to_owned(), times, mem));
    }
    table.print();

    // Pairwise factors as in the paper's prose.
    let by_name = |n: &str| results.iter().find(|(name, _, _)| name == n).unwrap();
    let (_, csr_unc, m_csr_unc) = by_name("CSR-UNC");
    let (_, vcol_unc, m_vcol_unc) = by_name("V-COL-UNC");
    let (_, csr_c, m_csr_c) = by_name("CSR-C");
    let (_, vcol_c, m_vcol_c) = by_name("V-COL-C");
    println!("\nuncompressed: V-COL vs CSR runtime factors: {:.2}x / {:.2}x / {:.2}x (paper: 1.62x/1.57x/1.64x)",
        csr_unc[0] / vcol_unc[0], csr_unc[1] / vcol_unc[1], csr_unc[2] / vcol_unc[2]);
    println!("compressed:   V-COL vs CSR runtime factors: {:.2}x / {:.2}x / {:.2}x (paper: 1.49x/1.26x/1.34x)",
        csr_c[0] / vcol_c[0], csr_c[1] / vcol_c[1], csr_c[2] / vcol_c[2]);
    println!(
        "memory: V-COL {:.2}x smaller than CSR uncompressed (paper 1.51x); NULL compression shrinks V-COL {:.2}x (paper 1.75x), CSR {:.2}x (paper 1.4x)",
        *m_csr_unc as f64 / *m_vcol_unc as f64,
        *m_vcol_unc as f64 / *m_vcol_c as f64,
        *m_csr_unc as f64 / *m_csr_c as f64,
    );

    // Consistency across configs.
    let q = khop_propless("Comment", "replyOfComment", 2);
    let counts: Vec<u64> = results
        .iter()
        .map(|(name, _, _)| {
            let vcols = name.starts_with("V-COL");
            let nullc = name.ends_with("-C");
            let (engine, _) = build(&raw, vcols, nullc);
            engine.execute(&q).unwrap().cardinality()
        })
        .collect();
    assert_same_count("2-hop across configs", &counts);
}

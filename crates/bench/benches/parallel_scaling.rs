//! Morsel-driven scaling: the parallel list-based processor vs the serial
//! path on k-hop COUNT(*) and FILTER queries, at 1/2/4/8 workers.
//!
//! Not a paper table — the paper evaluates GF-CL single-threaded — but the
//! scaling sanity check for the morsel-driven driver: COUNT(*) k-hops are
//! embarrassingly parallel over scan morsels, so 4 workers should deliver
//! well over the 1.5x acceptance bar on any multi-core host.

use std::sync::Arc;

use gfcl_bench::{banner, fmt_factor, fmt_ms, time_plan, TextTable};
use gfcl_core::{Engine, ExecOptions, GfClEngine};
use gfcl_storage::{ColumnarGraph, StorageConfig};
use gfcl_workloads::{khop, KhopMode};

fn main() {
    banner(
        "Parallel scaling: morsel-driven GF-CL vs serial GF-CL",
        "not in the paper - k-hop COUNT(*)/FILTER speedup at 1/2/4/8 workers",
    );
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("host parallelism: {cores} logical cores\n");

    let datasets = [
        ("FLICKR-like", gfcl_bench::flickr(60_000), "NODE", "LINK", "ts"),
        ("LDBC-like", gfcl_bench::social_knows_heavy(30_000), "Person", "knows", "date"),
    ];
    let thread_counts = [1usize, 2, 4, 8];

    let mut table =
        TextTable::new(vec!["dataset", "query", "serial", "2 thr", "4 thr", "8 thr", "4-thr x"]);

    for (name, raw, node, edge, prop) in &datasets {
        let graph = Arc::new(ColumnarGraph::build(raw, StorageConfig::default()).unwrap());
        for (mode_name, mode, hops) in [
            ("2-hop COUNT(*)", KhopMode::CountStar, 2),
            ("3-hop COUNT(*)", KhopMode::CountStar, 3),
            ("2-hop FILTER", KhopMode::LastEdgeGt(1_440_000_000), 2),
        ] {
            let q = khop(node, edge, prop, hops, mode, false);
            let mut times = Vec::new();
            let mut counts = Vec::new();
            for &t in &thread_counts {
                let engine = GfClEngine::with_options(graph.clone(), ExecOptions::with_threads(t));
                let plan = engine.plan(&q).unwrap();
                let (secs, card) = time_plan(&engine, &plan);
                times.push(secs);
                counts.push(card);
            }
            gfcl_bench::assert_same_count(mode_name, &counts);
            table.row(vec![
                (*name).to_owned(),
                mode_name.to_owned(),
                fmt_ms(times[0]),
                fmt_ms(times[1]),
                fmt_ms(times[2]),
                fmt_ms(times[3]),
                fmt_factor(times[0], times[2]),
            ]);
        }
    }
    table.print();
    println!("\n(x columns are serial time / 4-thread time; > 1 means the parallel path wins)");
}

//! Compare a bench-smoke run against the committed baseline.
//!
//! ```sh
//! bench_compare BENCH_BASELINE.json BENCH_PR.json [max_ratio]
//! ```
//!
//! Both files are the flat `{"bench name": ns_per_iter, ...}` maps the CI
//! `bench-smoke` job assembles from `GFCL_BENCH_JSON` lines. The tool
//! prints a per-bench delta table and exits non-zero when any bench shared
//! by both files regressed by more than `max_ratio` (default 2.0 —
//! quick-mode CI runners are noisy; the gate catches order-of-magnitude
//! breakage, the committed full-scale floors catch the rest). Benches new
//! in the PR or missing from it are reported but never fail the gate.

use std::process::ExitCode;

/// Parse the flat `{"name": number, ...}` map (the only JSON shape the
/// perf artifacts use — keys are sanitized by `gfcl_bench::record`, so no
/// escapes occur).
fn parse_flat_json(text: &str) -> Result<Vec<(String, f64)>, String> {
    let mut out = Vec::new();
    let bytes = text.as_bytes();
    let mut i = 0usize;
    while i < bytes.len() {
        // Find the next key.
        let Some(k0) = text[i..].find('"').map(|p| i + p + 1) else { break };
        let Some(k1) = text[k0..].find('"').map(|p| k0 + p) else {
            return Err("unterminated string".into());
        };
        let key = &text[k0..k1];
        let Some(colon) = text[k1..].find(':').map(|p| k1 + p + 1) else {
            return Err(format!("no value for key {key:?}"));
        };
        let rest = text[colon..].trim_start();
        let trimmed = text[colon..].len() - rest.len();
        let end =
            rest.find(|c: char| !(c.is_ascii_digit() || ".-+eE".contains(c))).unwrap_or(rest.len());
        let num: f64 =
            rest[..end].parse().map_err(|e| format!("bad number for key {key:?}: {e}"))?;
        out.push((key.to_owned(), num));
        i = colon + trimmed + end;
    }
    Ok(out)
}

fn load(path: &str) -> Vec<(String, f64)> {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
    parse_flat_json(&text).unwrap_or_else(|e| panic!("cannot parse {path}: {e}"))
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.2}s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.1}ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.1}us", ns / 1e3)
    } else {
        format!("{ns:.0}ns")
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.len() < 2 {
        eprintln!("usage: bench_compare <BASELINE.json> <PR.json> [max_ratio]");
        return ExitCode::from(2);
    }
    let max_ratio: f64 = args.get(2).map_or(2.0, |s| s.parse().expect("max_ratio"));
    let baseline = load(&args[0]);
    let pr = load(&args[1]);

    let mut regressions = 0usize;
    let width =
        pr.iter().chain(&baseline).map(|(k, _)| k.len()).max().unwrap_or(5).max("bench".len());
    println!("{:<width$} | {:>10} | {:>10} | {:>8}", "bench", "baseline", "PR", "ratio");
    println!("{}", "-".repeat(width + 38));
    for (name, pr_ns) in &pr {
        match baseline.iter().find(|(b, _)| b == name) {
            Some((_, base_ns)) if *base_ns > 0.0 => {
                let ratio = pr_ns / base_ns;
                let flag = if ratio > max_ratio {
                    regressions += 1;
                    "  << REGRESSION"
                } else {
                    ""
                };
                println!(
                    "{name:<width$} | {:>10} | {:>10} | {ratio:>7.2}x{flag}",
                    fmt_ns(*base_ns),
                    fmt_ns(*pr_ns),
                );
            }
            _ => println!("{name:<width$} | {:>10} | {:>10} |     new", "-", fmt_ns(*pr_ns)),
        }
    }
    for (name, base_ns) in &baseline {
        if !pr.iter().any(|(p, _)| p == name) {
            println!("{name:<width$} | {:>10} | {:>10} | missing", fmt_ns(*base_ns), "-");
        }
    }
    if regressions > 0 {
        eprintln!("\n{regressions} bench(es) regressed by more than {max_ratio:.1}x");
        return ExitCode::FAILURE;
    }
    println!("\nno bench regressed by more than {max_ratio:.1}x");
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_jq_style_pretty_json() {
        let text = "{\n  \"a/b c\": 12.5,\n  \"d\": 3e4\n}\n";
        let m = parse_flat_json(text).unwrap();
        assert_eq!(m, vec![("a/b c".to_owned(), 12.5), ("d".to_owned(), 3e4)]);
    }

    #[test]
    fn parses_compact_and_empty() {
        assert_eq!(parse_flat_json("{}").unwrap(), vec![]);
        let m = parse_flat_json("{\"x\":1,\"y\":-2.5}").unwrap();
        assert_eq!(m.len(), 2);
        assert_eq!(m[1], ("y".to_owned(), -2.5));
    }
}

//! Compare a bench-smoke run against the committed baseline.
//!
//! ```sh
//! bench_compare BENCH_BASELINE.json BENCH_PR.json [max_ratio]
//! ```
//!
//! Both files are the flat `{"bench name": ns_per_iter, ...}` maps the CI
//! `bench-smoke` job assembles from `GFCL_BENCH_JSON` lines. The tool
//! prints a per-bench delta table and exits non-zero when any bench shared
//! by both files regressed by more than `max_ratio` (default 2.0 —
//! quick-mode CI runners are noisy; the gate catches order-of-magnitude
//! breakage, the committed full-scale floors catch the rest). Benches
//! present in only one file are reported as `new` / `removed` rows and
//! never fail the gate — a renamed or retired bench must not break CI.

use std::process::ExitCode;

/// Parse the flat `{"name": number, ...}` map (the only JSON shape the
/// perf artifacts use — keys are sanitized by `gfcl_bench::record`, so no
/// escapes occur).
fn parse_flat_json(text: &str) -> Result<Vec<(String, f64)>, String> {
    let mut out = Vec::new();
    let bytes = text.as_bytes();
    let mut i = 0usize;
    while i < bytes.len() {
        // Find the next key.
        let Some(k0) = text[i..].find('"').map(|p| i + p + 1) else { break };
        let Some(k1) = text[k0..].find('"').map(|p| k0 + p) else {
            return Err("unterminated string".into());
        };
        let key = &text[k0..k1];
        let Some(colon) = text[k1..].find(':').map(|p| k1 + p + 1) else {
            return Err(format!("no value for key {key:?}"));
        };
        let rest = text[colon..].trim_start();
        let trimmed = text[colon..].len() - rest.len();
        let end =
            rest.find(|c: char| !(c.is_ascii_digit() || ".-+eE".contains(c))).unwrap_or(rest.len());
        let num: f64 =
            rest[..end].parse().map_err(|e| format!("bad number for key {key:?}: {e}"))?;
        out.push((key.to_owned(), num));
        i = colon + trimmed + end;
    }
    Ok(out)
}

/// How one bench moved between the two files.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Delta {
    /// Present in both: PR-over-baseline ratio, and whether it trips the
    /// gate.
    Ratio { ratio: f64, regressed: bool },
    /// Only in the PR file.
    New,
    /// Only in the baseline file (renamed or retired bench).
    Removed,
}

#[derive(Debug, Clone, PartialEq)]
struct Row {
    name: String,
    base_ns: Option<f64>,
    pr_ns: Option<f64>,
    delta: Delta,
}

/// Pure comparison: every PR bench in file order, then baseline-only
/// benches, with the number of gate-tripping regressions. `new`/`removed`
/// rows never count as regressions; neither does a baseline entry of 0
/// (a ratio over it would be meaningless).
fn compare(baseline: &[(String, f64)], pr: &[(String, f64)], max_ratio: f64) -> (Vec<Row>, usize) {
    let mut rows = Vec::with_capacity(baseline.len().max(pr.len()));
    let mut regressions = 0usize;
    for (name, pr_ns) in pr {
        let delta = match baseline.iter().find(|(b, _)| b == name) {
            Some((_, base_ns)) if *base_ns > 0.0 => {
                let ratio = pr_ns / base_ns;
                let regressed = ratio > max_ratio;
                regressions += regressed as usize;
                Delta::Ratio { ratio, regressed }
            }
            _ => Delta::New,
        };
        let base_ns = baseline.iter().find(|(b, _)| b == name).map(|(_, ns)| *ns);
        rows.push(Row { name: name.clone(), base_ns, pr_ns: Some(*pr_ns), delta });
    }
    for (name, base_ns) in baseline {
        if !pr.iter().any(|(p, _)| p == name) {
            rows.push(Row {
                name: name.clone(),
                base_ns: Some(*base_ns),
                pr_ns: None,
                delta: Delta::Removed,
            });
        }
    }
    (rows, regressions)
}

fn load(path: &str) -> Vec<(String, f64)> {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
    parse_flat_json(&text).unwrap_or_else(|e| panic!("cannot parse {path}: {e}"))
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.2}s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.1}ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.1}us", ns / 1e3)
    } else {
        format!("{ns:.0}ns")
    }
}

fn render(rows: &[Row]) {
    let width = rows.iter().map(|r| r.name.len()).max().unwrap_or(5).max("bench".len());
    println!("{:<width$} | {:>10} | {:>10} | {:>8}", "bench", "baseline", "PR", "ratio");
    println!("{}", "-".repeat(width + 38));
    for r in rows {
        let base = r.base_ns.map_or_else(|| "-".into(), fmt_ns);
        let pr = r.pr_ns.map_or_else(|| "-".into(), fmt_ns);
        match r.delta {
            Delta::Ratio { ratio, regressed } => {
                let flag = if regressed { "  << REGRESSION" } else { "" };
                println!("{:<width$} | {base:>10} | {pr:>10} | {ratio:>7.2}x{flag}", r.name);
            }
            Delta::New => println!("{:<width$} | {base:>10} | {pr:>10} |      new", r.name),
            Delta::Removed => println!("{:<width$} | {base:>10} | {pr:>10} |  removed", r.name),
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.len() < 2 {
        eprintln!("usage: bench_compare <BASELINE.json> <PR.json> [max_ratio]");
        return ExitCode::from(2);
    }
    let max_ratio: f64 = args.get(2).map_or(2.0, |s| s.parse().expect("max_ratio"));
    let baseline = load(&args[0]);
    let pr = load(&args[1]);

    let (rows, regressions) = compare(&baseline, &pr, max_ratio);
    render(&rows);
    if regressions > 0 {
        eprintln!("\n{regressions} bench(es) regressed by more than {max_ratio:.1}x");
        return ExitCode::FAILURE;
    }
    println!("\nno bench regressed by more than {max_ratio:.1}x");
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_jq_style_pretty_json() {
        let text = "{\n  \"a/b c\": 12.5,\n  \"d\": 3e4\n}\n";
        let m = parse_flat_json(text).unwrap();
        assert_eq!(m, vec![("a/b c".to_owned(), 12.5), ("d".to_owned(), 3e4)]);
    }

    #[test]
    fn parses_compact_and_empty() {
        assert_eq!(parse_flat_json("{}").unwrap(), vec![]);
        let m = parse_flat_json("{\"x\":1,\"y\":-2.5}").unwrap();
        assert_eq!(m.len(), 2);
        assert_eq!(m[1], ("y".to_owned(), -2.5));
    }

    fn m(pairs: &[(&str, f64)]) -> Vec<(String, f64)> {
        pairs.iter().map(|(k, v)| (k.to_string(), *v)).collect()
    }

    #[test]
    fn shared_benches_gate_on_ratio() {
        let (rows, regressions) =
            compare(&m(&[("a", 100.0), ("b", 100.0)]), &m(&[("a", 150.0), ("b", 300.0)]), 2.0);
        assert_eq!(regressions, 1);
        assert_eq!(rows[0].delta, Delta::Ratio { ratio: 1.5, regressed: false });
        assert_eq!(rows[1].delta, Delta::Ratio { ratio: 3.0, regressed: true });
    }

    #[test]
    fn disjoint_files_never_fail_the_gate() {
        // A fully renamed bench suite: every PR bench is new, every
        // baseline bench removed — and nothing regresses.
        let (rows, regressions) = compare(&m(&[("old", 100.0)]), &m(&[("new", 900.0)]), 2.0);
        assert_eq!(regressions, 0);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].delta, Delta::New);
        assert_eq!((rows[0].name.as_str(), rows[0].base_ns), ("new", None));
        assert_eq!(rows[1].delta, Delta::Removed);
        assert_eq!((rows[1].name.as_str(), rows[1].pr_ns), ("old", None));
    }

    #[test]
    fn empty_files_compare_cleanly() {
        let (rows, regressions) = compare(&[], &[], 2.0);
        assert!(rows.is_empty());
        assert_eq!(regressions, 0);
        let (rows, regressions) = compare(&[], &m(&[("x", 1.0)]), 2.0);
        assert_eq!(regressions, 0);
        assert_eq!(rows[0].delta, Delta::New);
    }

    #[test]
    fn zero_baseline_is_new_not_infinite_regression() {
        let (rows, regressions) = compare(&m(&[("a", 0.0)]), &m(&[("a", 50.0)]), 2.0);
        assert_eq!(regressions, 0);
        assert_eq!(rows[0].delta, Delta::New);
    }
}

//! Shared infrastructure for the benchmark harness.
//!
//! Every table and figure of the paper's evaluation section has a
//! `harness = false` bench target in `benches/` that regenerates it (see
//! DESIGN.md §2 for the index). Common pieces live here: the measurement
//! protocol, dataset builders sized for a laptop, and a plain-text table
//! printer that mimics the paper's layout.
//!
//! **Measurement protocol** (Section 8.1): each query runs 5 times
//! consecutively; the reported number is the average of the last 3 runs.
//! Queries whose first run exceeds one second fall back to 2 measured runs
//! to keep the full suite tractable.
//!
//! Set `GFCL_SCALE` (float, default 1.0) to grow or shrink every dataset.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use gfcl_core::{Engine, LogicalPlan, QueryOutput};
use gfcl_datagen::{MovieParams, PowerLawParams, SocialParams};
use gfcl_storage::RawGraph;

/// Global dataset scale multiplier from `GFCL_SCALE`.
pub fn scale() -> f64 {
    std::env::var("GFCL_SCALE").ok().and_then(|s| s.parse().ok()).unwrap_or(1.0)
}

/// Slug of the current bench (set by [`banner`]) + a measurement counter,
/// used to auto-label [`time_plan`] measurements in the perf-trajectory
/// JSON (`GFCL_BENCH_JSON`).
static BENCH_SLUG: Mutex<Option<String>> = Mutex::new(None);
static BENCH_SEQ: AtomicUsize = AtomicUsize::new(0);

/// Append one `{"bench": ..., "ns_per_iter": ...}` JSON line to the file
/// named by `GFCL_BENCH_JSON` (no-op when unset). CI's `bench-smoke` job
/// collects these lines into the `BENCH_PR.json` performance artifact;
/// criterion-harness benches record through the same file via the vendored
/// criterion stub.
pub fn record(name: &str, secs: f64) {
    let Ok(path) = std::env::var("GFCL_BENCH_JSON") else { return };
    let ns = secs * 1e9;
    if path.is_empty() || !ns.is_finite() {
        return;
    }
    use std::io::Write as _;
    let escaped: String =
        name.chars().map(|c| if c == '"' || c == '\\' { '_' } else { c }).collect();
    if let Ok(mut f) = std::fs::OpenOptions::new().create(true).append(true).open(&path) {
        let _ = writeln!(f, "{{\"bench\": \"{escaped}\", \"ns_per_iter\": {ns:.1}}}");
    }
}

/// True in CI's `bench-smoke` quick mode (`GFCL_BENCH_QUICK=1`): datasets
/// are shrunk via `GFCL_SCALE`, so speedup assertions should be reported
/// rather than enforced (panics still fail the job — that is the smoke).
pub fn quick() -> bool {
    std::env::var("GFCL_BENCH_QUICK").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// Enforce a speedup floor outside quick mode; always print the outcome.
pub fn assert_speedup(actual: f64, floor: f64, what: &str) {
    println!(
        "{what}: {actual:.1}x (floor {floor:.0}x{})",
        if quick() { ", quick mode" } else { "" }
    );
    assert!(quick() || actual >= floor, "expected {what} to reach {floor:.1}x, got {actual:.2}x");
}

/// Auto-label for unnamed measurements: `<banner slug>#<seq>`.
fn auto_record(secs: f64) {
    let slug = BENCH_SLUG.lock().ok().and_then(|s| s.clone()).unwrap_or_else(|| "bench".to_owned());
    let seq = BENCH_SEQ.fetch_add(1, Ordering::Relaxed);
    record(&format!("{slug}#{seq:03}"), secs);
}

fn scaled(n: usize) -> usize {
    ((n as f64 * scale()) as usize).max(16)
}

/// LDBC-like social network.
pub fn social(persons: usize) -> RawGraph {
    gfcl_datagen::generate_social(SocialParams::scale(scaled(persons)))
}

/// A knows-heavy social network: full-size KNOWS label but slimmed-down
/// satellite labels, for microbenchmarks that only traverse `knows`
/// (Tables 3/5, Figure 12) and need the edge-property column to exceed the
/// last-level cache.
pub fn social_knows_heavy(persons: usize) -> RawGraph {
    let mut p = SocialParams::scale(scaled(persons));
    p.comments_per_person = 1;
    p.posts_per_person = 1;
    p.likes_per_person = 1.0;
    gfcl_datagen::generate_social(p)
}

/// LDBC-like social network with a custom Comment.creationDate NULL
/// fraction (Figure 10 sweeps).
pub fn social_with_nulls(persons: usize, null_fraction: f64) -> RawGraph {
    let mut p = SocialParams::scale(scaled(persons));
    p.comment_date_null_fraction = null_fraction;
    gfcl_datagen::generate_social(p)
}

/// IMDb-like movie database.
pub fn movies(titles: usize) -> RawGraph {
    gfcl_datagen::generate_movies(MovieParams::scale(scaled(titles)))
}

/// FLICKR-like power-law graph (average degree 14).
pub fn flickr(nodes: usize) -> RawGraph {
    gfcl_datagen::generate_powerlaw(PowerLawParams::flickr(scaled(nodes)))
}

/// WIKI-like power-law graph (average degree 41).
pub fn wiki(nodes: usize) -> RawGraph {
    gfcl_datagen::generate_powerlaw(PowerLawParams::wiki(scaled(nodes)))
}

/// One measured query execution: `(average seconds, result cardinality)`.
pub fn time_plan(engine: &dyn Engine, plan: &LogicalPlan) -> (f64, u64) {
    let t0 = Instant::now();
    let out = engine.run_plan(plan).expect("query must run");
    let first = t0.elapsed();
    let card = out.cardinality();

    let measured = if first > Duration::from_secs(1) { 2 } else { 4 };
    let keep_last = if first > Duration::from_secs(1) { 2 } else { 3 };
    let mut times = Vec::with_capacity(measured);
    for _ in 0..measured {
        let t0 = Instant::now();
        let o = engine.run_plan(plan).expect("query must run");
        times.push(t0.elapsed().as_secs_f64());
        assert_eq!(o.cardinality(), card, "non-deterministic result");
    }
    let tail = &times[times.len() - keep_last.min(times.len())..];
    let avg = tail.iter().sum::<f64>() / tail.len() as f64;
    auto_record(avg);
    (avg, card)
}

/// Plan + measure.
pub fn time_query(engine: &dyn Engine, q: &gfcl_core::PatternQuery) -> (f64, u64) {
    let plan = engine.plan(q).expect("query must plan");
    time_plan(engine, &plan)
}

/// Milliseconds with sensible precision.
pub fn fmt_ms(secs: f64) -> String {
    let ms = secs * 1e3;
    if ms >= 100.0 {
        format!("{ms:.0}")
    } else if ms >= 1.0 {
        format!("{ms:.1}")
    } else {
        format!("{ms:.3}")
    }
}

/// `a / b` formatted as a speedup factor.
pub fn fmt_factor(a: f64, b: f64) -> String {
    if b == 0.0 {
        "-".into()
    } else {
        format!("{:.1}x", a / b)
    }
}

/// Quick sanity check that engines agreed on a result.
pub fn assert_same_count(name: &str, counts: &[u64]) {
    if let Some(first) = counts.first() {
        assert!(
            counts.iter().all(|c| c == first),
            "{name}: engines disagree on cardinality: {counts:?}"
        );
    }
}

/// Column-aligned plain-text table, in the spirit of the paper's tables.
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    pub fn new<S: Into<String>>(headers: Vec<S>) -> TextTable {
        TextTable { headers: headers.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    pub fn print(&self) {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let line = |cells: &[String]| {
            let joined: Vec<String> =
                cells.iter().zip(&widths).map(|(c, w)| format!("{c:>width$}", width = w)).collect();
            println!("| {} |", joined.join(" | "));
        };
        line(&self.headers);
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        println!("|-{}-|", sep.join("-|-"));
        for row in &self.rows {
            line(row);
        }
    }
}

/// Print a bench banner with the paper reference (and name the bench for
/// the perf-trajectory JSON).
pub fn banner(title: &str, paper_ref: &str) {
    let slug: String = title
        .chars()
        .take_while(|&c| c != ':')
        .map(|c| if c.is_ascii_alphanumeric() { c.to_ascii_lowercase() } else { '-' })
        .collect();
    if let Ok(mut s) = BENCH_SLUG.lock() {
        *s = Some(slug.trim_matches('-').to_owned());
    }
    println!();
    println!("=== {title} ===");
    println!("reproduces: {paper_ref}");
    println!("dataset scale multiplier GFCL_SCALE = {}", scale());
    println!();
}

/// Run a query on several engines, returning `(name, secs, cardinality)`.
pub fn race(engines: &[&dyn Engine], q: &gfcl_core::PatternQuery) -> Vec<(String, f64, u64)> {
    engines
        .iter()
        .map(|e| {
            let (secs, card) = time_query(*e, q);
            (e.name().to_owned(), secs, card)
        })
        .collect()
}

/// Extract a count (microbench sanity checks).
pub fn expect_count(o: &QueryOutput) -> u64 {
    o.as_count().expect("count output")
}

//! IMDb/JOB-like movie database generator.
//!
//! Substitute for the IMDb dataset converted to a property graph as the
//! paper describes (Section 8.1): entity tables become vertices,
//! relationship tables become n-n edges, denormalized type/info tables
//! become 1-n satellites. Preserves what the experiments exercise:
//!
//! * string-heavy edge properties (`movie_companies.note`,
//!   `cast_info.note/role/name`) with >50% NULLs on most of them —
//!   driving the Table 2b `+NULL` savings and the 3.14x edge-prop factor;
//! * star-join topology around `TITLE` — where LBP's factorized
//!   intermediate results shine (Section 8.7.2);
//! * the categorical constants the 33 JOB-like queries filter on.

use gfcl_common::DataType::*;
use gfcl_storage::{Cardinality, Catalog, PropertyDef, RawGraph};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::util::{maybe, pick_skewed, shuffle_edges, Zipf};

/// Scale parameters.
#[derive(Debug, Clone, Copy)]
pub struct MovieParams {
    pub titles: usize,
    pub seed: u64,
}

impl MovieParams {
    pub fn scale(titles: usize) -> MovieParams {
        MovieParams { titles, seed: 0x1BDB }
    }
}

/// Label names of the generated schema, for query builders.
pub mod labels {
    pub const TITLE: &str = "title";
    pub const NAME: &str = "name";
    pub const COMPANY_NAME: &str = "company_name";
    pub const KEYWORD: &str = "keyword";
    pub const MOVIE_INFO: &str = "movie_info";
    pub const MOV_INFO_2: &str = "mov_info_2";
    pub const PERSON_INFO: &str = "person_info";
    pub const AKA_NAME: &str = "aka_name";
    pub const COMPLETE_CAST: &str = "complete_cast";

    pub const MOVIE_COMPANIES: &str = "movie_companies";
    pub const MOVIE_KEYWORD: &str = "movie_keyword";
    pub const HAS_MOVIE_INFO: &str = "has_movie_info";
    pub const HAS_MOV_INFO_2: &str = "has_mov_info_2";
    pub const CAST_INFO: &str = "cast_info";
    pub const MOVIE_LINK: &str = "movie_link";
    pub const HAS_AKA_NAME: &str = "has_aka_name";
    pub const HAS_PERSON_INFO: &str = "has_person_info";
    pub const HAS_COMPLETE_CAST: &str = "has_complete_cast";
}

const KINDS: &[&str] = &["movie", "tv series", "episode", "video game"];
const COUNTRY_CODES: &[&str] = &["[us]", "[de]", "[jp]", "[gb]", "[fr]", "[ru]", "[in]", "[pl]"];
const KEYWORDS: &[&str] = &[
    "character-name-in-title",
    "sequel",
    "murder",
    "superhero",
    "marvel-cinematic-universe",
    "hero",
    "computer-animation",
    "blood",
    "revenge",
    "love",
];
const GENRES: &[&str] = &["Drama", "Comedy", "Horror", "Action", "Thriller"];
const COUNTRIES: &[&str] = &["USA", "Germany", "Sweden", "Japan", "France", "India"];
const INFO_TYPES: &[&str] = &["genres", "countries", "release dates", "budget", "languages"];
const INFO2_TYPES: &[&str] = &["rating", "votes", "top 250 rank"];
const PI_TYPES: &[&str] = &["mini biography", "trivia", "quotes"];
const LINK_TYPES: &[&str] = &["follows", "followedBy", "features", "remake of"];
const COMPANY_TYPES: &[&str] = &["production company", "distributor"];
const ROLES: &[&str] = &["actor", "actress", "director", "producer", "writer"];
const MC_NOTES: &[&str] = &[
    "(co-production)",
    "(theatrical) (France)",
    "(2006) (worldwide)",
    "(2008) (USA) (theatrical)",
    "(Japan) (TV)",
    "(worldwide) (all media)",
    "(presents)",
];
const CI_NOTES: &[&str] = &[
    "(voice)",
    "(voice: English version)",
    "(uncredited)",
    "(uncredited) (voice)",
    "(as himself)",
    "(archive footage)",
];
const CHAR_NAMES: &[&str] =
    &["Tony Stark", "Queen", "Batman", "The Woman", "Policeman", "Doctor", "Mother"];
const NAME_PARTS: &[&str] =
    &["Downey", "Timothy", "Angela", "Yoko", "Anders", "Brigitte", "Chen", "Boehm", "Marta"];

/// Generate the movie database.
pub fn generate(p: MovieParams) -> RawGraph {
    use labels::*;
    let mut cat = Catalog::new();
    let title = cat
        .add_vertex_label(
            TITLE,
            vec![
                PropertyDef::new("id", Int64),
                PropertyDef::new("title", String),
                PropertyDef::new("kind", String),
                PropertyDef::new("production_year", Int64),
                PropertyDef::new("episode_nr", Int64),
            ],
        )
        .unwrap();
    let name = cat
        .add_vertex_label(
            NAME,
            vec![
                PropertyDef::new("id", Int64),
                PropertyDef::new("name", String),
                PropertyDef::new("gender", String),
                PropertyDef::new("name_pcode_cf", String),
            ],
        )
        .unwrap();
    let company = cat
        .add_vertex_label(
            COMPANY_NAME,
            vec![
                PropertyDef::new("id", Int64),
                PropertyDef::new("name", String),
                PropertyDef::new("country_code", String),
            ],
        )
        .unwrap();
    let keyword = cat
        .add_vertex_label(
            KEYWORD,
            vec![PropertyDef::new("id", Int64), PropertyDef::new("keyword", String)],
        )
        .unwrap();
    let movie_info = cat
        .add_vertex_label(
            MOVIE_INFO,
            vec![
                PropertyDef::new("id", Int64),
                PropertyDef::new("info_type", String),
                PropertyDef::new("info", String),
                PropertyDef::new("note", String),
            ],
        )
        .unwrap();
    let mov_info_2 = cat
        .add_vertex_label(
            MOV_INFO_2,
            vec![
                PropertyDef::new("id", Int64),
                PropertyDef::new("info_type", String),
                PropertyDef::new("info", String),
            ],
        )
        .unwrap();
    let person_info = cat
        .add_vertex_label(
            PERSON_INFO,
            vec![
                PropertyDef::new("id", Int64),
                PropertyDef::new("info_type", String),
                PropertyDef::new("info", String),
                PropertyDef::new("note", String),
            ],
        )
        .unwrap();
    let aka_name = cat
        .add_vertex_label(
            AKA_NAME,
            vec![PropertyDef::new("id", Int64), PropertyDef::new("name", String)],
        )
        .unwrap();
    let complete_cast = cat
        .add_vertex_label(
            COMPLETE_CAST,
            vec![
                PropertyDef::new("id", Int64),
                PropertyDef::new("subject", String),
                PropertyDef::new("status", String),
            ],
        )
        .unwrap();
    for l in [
        title,
        name,
        company,
        keyword,
        movie_info,
        mov_info_2,
        person_info,
        aka_name,
        complete_cast,
    ] {
        cat.set_primary_key(l, "id").unwrap();
    }

    use Cardinality::*;
    let movie_companies = cat
        .add_edge_label(
            MOVIE_COMPANIES,
            title,
            company,
            ManyMany,
            vec![PropertyDef::new("company_type", String), PropertyDef::new("note", String)],
        )
        .unwrap();
    let movie_keyword =
        cat.add_edge_label(MOVIE_KEYWORD, title, keyword, ManyMany, vec![]).unwrap();
    let has_movie_info =
        cat.add_edge_label(HAS_MOVIE_INFO, title, movie_info, OneMany, vec![]).unwrap();
    let has_mov_info_2 =
        cat.add_edge_label(HAS_MOV_INFO_2, title, mov_info_2, OneMany, vec![]).unwrap();
    let cast_info = cat
        .add_edge_label(
            CAST_INFO,
            title,
            name,
            ManyMany,
            vec![
                PropertyDef::new("note", String),
                PropertyDef::new("role", String),
                PropertyDef::new("name", String),
                PropertyDef::new("nr_order", Int64),
            ],
        )
        .unwrap();
    let movie_link = cat
        .add_edge_label(
            MOVIE_LINK,
            title,
            title,
            ManyMany,
            vec![PropertyDef::new("link_type", String)],
        )
        .unwrap();
    let has_aka_name = cat.add_edge_label(HAS_AKA_NAME, name, aka_name, OneMany, vec![]).unwrap();
    let has_person_info =
        cat.add_edge_label(HAS_PERSON_INFO, name, person_info, OneMany, vec![]).unwrap();
    let has_complete_cast =
        cat.add_edge_label(HAS_COMPLETE_CAST, title, complete_cast, OneMany, vec![]).unwrap();

    let mut raw = RawGraph::new(cat);
    let mut rng = SmallRng::seed_from_u64(p.seed);

    let n_title = p.titles;
    let n_name = p.titles * 2;
    let n_company = (p.titles / 10).max(20);
    let n_keyword = (p.titles / 20).max(KEYWORDS.len() * 4);
    let n_mi = p.titles * 3;
    let n_mi2 = p.titles * 2;
    let n_pi = n_name / 2;
    let n_aka = n_name / 2;
    let n_cc = p.titles / 2;

    // ---- Vertices ----
    {
        let t = &mut raw.vertices[title as usize];
        t.count = n_title;
        for v in 0..n_title {
            t.props[0].push_i64(v as i64);
            if v == 0 {
                t.props[1].push_str("Shrek 2");
            } else {
                t.props[1].push_str(format!("Movie number {v}"));
            }
            t.props[2].push_str(*pick_skewed(KINDS, &mut rng));
            match maybe(&mut rng, 0.05, ()) {
                Some(()) => t.props[3].push_i64(rng.gen_range(1930..2021)),
                None => t.props[3].push_null(),
            }
            match maybe(&mut rng, 0.7, ()) {
                Some(()) => t.props[4].push_i64(rng.gen_range(0..200)),
                None => t.props[4].push_null(),
            }
        }
    }
    {
        let t = &mut raw.vertices[name as usize];
        t.count = n_name;
        for v in 0..n_name {
            t.props[0].push_i64(v as i64);
            let a = NAME_PARTS[v % NAME_PARTS.len()];
            let b = NAME_PARTS[(v * 7 + 3) % NAME_PARTS.len()];
            t.props[1].push_str(format!("{b}, {a}"));
            match maybe(&mut rng, 0.2, ()) {
                Some(()) => t.props[2].push_str(if rng.gen_bool(0.6) { "m" } else { "f" }),
                None => t.props[2].push_null(),
            }
            match maybe(&mut rng, 0.3, ()) {
                Some(()) => {
                    let c = (b'A' + (rng.gen_range(0u8..26))) as char;
                    t.props[3].push_str(format!("{c}{}", rng.gen_range(100..999)))
                }
                None => t.props[3].push_null(),
            }
        }
    }
    {
        let t = &mut raw.vertices[company as usize];
        t.count = n_company;
        for v in 0..n_company {
            t.props[0].push_i64(v as i64);
            if v % 3 == 0 {
                t.props[1].push_str(format!("Film Studio {v}"));
            } else {
                t.props[1].push_str(format!("Pictures {v}"));
            }
            t.props[2].push_str(*pick_skewed(COUNTRY_CODES, &mut rng));
        }
    }
    {
        let t = &mut raw.vertices[keyword as usize];
        t.count = n_keyword;
        for v in 0..n_keyword {
            t.props[0].push_i64(v as i64);
            match KEYWORDS.get(v) {
                Some(name) => t.props[1].push_str(*name),
                None => t.props[1].push_str(format!("keyword-{v}")),
            }
        }
    }
    {
        let t = &mut raw.vertices[movie_info as usize];
        t.count = n_mi;
        for v in 0..n_mi {
            t.props[0].push_i64(v as i64);
            let ty = *pick_skewed(INFO_TYPES, &mut rng);
            t.props[1].push_str(ty);
            let info = match ty {
                "genres" => (*pick_skewed(GENRES, &mut rng)).to_string(),
                "countries" => (*pick_skewed(COUNTRIES, &mut rng)).to_string(),
                "release dates" => {
                    format!("{}: {}", ["USA", "Japan", "Germany", "Sweden"][v % 4], 1990 + (v % 30))
                }
                "budget" => format!("${}", rng.gen_range(100_000..200_000_000)),
                _ => (*pick_skewed(LANGUAGES_MI, &mut rng)).to_string(),
            };
            t.props[2].push_str(info);
            match maybe(&mut rng, 0.8, ()) {
                Some(()) => t.props[3].push_str(if rng.gen_bool(0.3) {
                    "(internet)".to_string()
                } else {
                    format!("note {}", v % 17)
                }),
                None => t.props[3].push_null(),
            }
        }
    }
    {
        let t = &mut raw.vertices[mov_info_2 as usize];
        t.count = n_mi2;
        for v in 0..n_mi2 {
            t.props[0].push_i64(v as i64);
            let ty = *pick_skewed(INFO2_TYPES, &mut rng);
            t.props[1].push_str(ty);
            let info = match ty {
                "rating" => format!("{}.{}", rng.gen_range(1..10), rng.gen_range(0..10)),
                "votes" => format!("{}", rng.gen_range(10..2_000_000)),
                _ => format!("{}", rng.gen_range(1..251)),
            };
            t.props[2].push_str(info);
        }
    }
    {
        let t = &mut raw.vertices[person_info as usize];
        t.count = n_pi;
        for v in 0..n_pi {
            t.props[0].push_i64(v as i64);
            t.props[1].push_str(*pick_skewed(PI_TYPES, &mut rng));
            t.props[2].push_str(format!("biographical text {}", v % 1001));
            match maybe(&mut rng, 0.7, ()) {
                Some(()) => t.props[3].push_str(if v % 19 == 0 {
                    "Volker Boehm".to_string()
                } else {
                    format!("editor {}", v % 13)
                }),
                None => t.props[3].push_null(),
            }
        }
    }
    {
        let t = &mut raw.vertices[aka_name as usize];
        t.count = n_aka;
        for v in 0..n_aka {
            t.props[0].push_i64(v as i64);
            let a = NAME_PARTS[(v * 3 + 1) % NAME_PARTS.len()];
            t.props[1].push_str(format!("{a} a.k.a. {}", v % 29));
        }
    }
    {
        let t = &mut raw.vertices[complete_cast as usize];
        t.count = n_cc;
        for v in 0..n_cc {
            t.props[0].push_i64(v as i64);
            t.props[1].push_str(if rng.gen_bool(0.6) { "cast" } else { "crew" });
            t.props[2]
                .push_str(["complete", "complete+verified", "partial"][rng.gen_range(0..3usize)]);
        }
    }

    // ---- Edges ----
    // movie_companies: 1..4 per title, string props, NULL-heavy note.
    {
        let t = &mut raw.edges[movie_companies as usize];
        for m in 0..n_title as u64 {
            for _ in 0..rng.gen_range(1..5) {
                t.src.push(m);
                t.dst.push(rng.gen_range(0..n_company as u64));
                t.props[0].push_str(*pick_skewed(COMPANY_TYPES, &mut rng));
                match maybe(&mut rng, 0.55, ()) {
                    Some(()) => t.props[1].push_str(*pick_skewed(MC_NOTES, &mut rng)),
                    None => t.props[1].push_null(),
                }
            }
        }
    }
    // movie_keyword: 2..6 per title, no props.
    {
        let t = &mut raw.edges[movie_keyword as usize];
        let kw_zipf = Zipf::new(n_keyword, 1.1);
        for m in 0..n_title as u64 {
            for _ in 0..rng.gen_range(2..7) {
                t.src.push(m);
                t.dst.push((kw_zipf.sample(&mut rng) - 1) as u64);
            }
        }
    }
    // 1-n satellites: each info row belongs to one uniformly random parent.
    for (elabel, n_rows, n_parents) in [
        (has_movie_info, n_mi, n_title),
        (has_mov_info_2, n_mi2, n_title),
        (has_complete_cast, n_cc, n_title),
    ] {
        let t = &mut raw.edges[elabel as usize];
        for r in 0..n_rows as u64 {
            t.src.push(rng.gen_range(0..n_parents as u64));
            t.dst.push(r);
        }
    }
    for (elabel, n_rows, n_parents) in
        [(has_aka_name, n_aka, n_name), (has_person_info, n_pi, n_name)]
    {
        let t = &mut raw.edges[elabel as usize];
        for r in 0..n_rows as u64 {
            t.src.push(rng.gen_range(0..n_parents as u64));
            t.dst.push(r);
        }
    }
    // cast_info: power-law cast sizes, 4 NULL-heavy props.
    {
        let t = &mut raw.edges[cast_info as usize];
        let zipf = Zipf::new(60, 1.4);
        for m in 0..n_title as u64 {
            let cast = zipf.sample(&mut rng);
            for i in 0..cast {
                t.src.push(m);
                t.dst.push(rng.gen_range(0..n_name as u64));
                match maybe(&mut rng, 0.6, ()) {
                    Some(()) => t.props[0].push_str(*pick_skewed(CI_NOTES, &mut rng)),
                    None => t.props[0].push_null(),
                }
                match maybe(&mut rng, 0.3, ()) {
                    Some(()) => t.props[1].push_str(*pick_skewed(ROLES, &mut rng)),
                    None => t.props[1].push_null(),
                }
                match maybe(&mut rng, 0.7, ()) {
                    Some(()) => t.props[2].push_str(*pick_skewed(CHAR_NAMES, &mut rng)),
                    None => t.props[2].push_null(),
                }
                match maybe(&mut rng, 0.6, ()) {
                    Some(()) => t.props[3].push_i64(i as i64),
                    None => t.props[3].push_null(),
                }
            }
        }
    }
    // movie_link: ~10% of titles link to 1-2 others.
    {
        let t = &mut raw.edges[movie_link as usize];
        for m in 0..n_title as u64 {
            if rng.gen_bool(0.1) {
                for _ in 0..rng.gen_range(1..3) {
                    let mut d = rng.gen_range(0..n_title as u64);
                    if d == m {
                        d = (d + 1) % n_title as u64;
                    }
                    t.src.push(m);
                    t.dst.push(d);
                    t.props[0].push_str(*pick_skewed(LINK_TYPES, &mut rng));
                }
            }
        }
    }

    // Relationship tables in IMDb are keyed by their own row ids, not
    // clustered by movie: shuffle into arrival order.
    for e in [movie_companies, movie_keyword, cast_info, movie_link] {
        shuffle_edges(&mut raw.edges[e as usize], &mut rng);
    }

    raw.validate().expect("generated movie db is consistent");
    raw
}

const LANGUAGES_MI: &[&str] = &["English", "German", "Japanese", "French"];

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> RawGraph {
        generate(MovieParams::scale(300))
    }

    #[test]
    fn schema_shape() {
        let g = small();
        assert_eq!(g.catalog.vertex_label_count(), 9);
        assert_eq!(g.catalog.edge_label_count(), 9);
        // String-heavy edge properties.
        let string_props = g
            .catalog
            .edge_labels()
            .iter()
            .flat_map(|e| &e.properties)
            .filter(|p| p.dtype == gfcl_common::DataType::String)
            .count();
        assert!(string_props >= 5, "IMDb-like: string edge props (got {string_props})");
    }

    #[test]
    fn null_heavy_edge_properties() {
        let g = small();
        let ci = g.catalog.edge_label_id(labels::CAST_INFO).unwrap();
        // note and character-name are >50% NULL, as in IMDb.
        assert!(g.edges[ci as usize].props[0].null_fraction() > 0.5);
        assert!(g.edges[ci as usize].props[2].null_fraction() > 0.5);
        let mc = g.catalog.edge_label_id(labels::MOVIE_COMPANIES).unwrap();
        assert!(g.edges[mc as usize].props[1].null_fraction() > 0.4);
    }

    #[test]
    fn satellites_are_one_to_n() {
        let g = small();
        for name in [labels::HAS_MOVIE_INFO, labels::HAS_MOV_INFO_2, labels::HAS_AKA_NAME] {
            let e = g.catalog.edge_label_id(name).unwrap();
            let def = g.catalog.edge_label(e);
            assert_eq!(def.cardinality, Cardinality::OneMany, "{name}");
            // Every satellite row has exactly one parent.
            assert_eq!(g.edges[e as usize].len(), g.vertices[def.dst as usize].count);
        }
    }

    #[test]
    fn constants_for_job_queries_exist() {
        let g = small();
        let kw = g.catalog.vertex_label_id(labels::KEYWORD).unwrap();
        if let gfcl_storage::PropData::Str(words) = &g.vertices[kw as usize].props[1] {
            for needle in ["character-name-in-title", "sequel", "murder"] {
                assert!(words.iter().any(|w| w.as_deref() == Some(needle)), "{needle}");
            }
        }
        // Shrek 2 exists for JOB 29a.
        if let gfcl_storage::PropData::Str(titles) = &g.vertices[0].props[1] {
            assert_eq!(titles[0].as_deref(), Some("Shrek 2"));
        }
    }

    #[test]
    fn determinism() {
        let a = generate(MovieParams::scale(100));
        let b = generate(MovieParams::scale(100));
        assert_eq!(a.total_edges(), b.total_edges());
        assert_eq!(a.edges[4].src, b.edges[4].src);
    }
}

//! FLICKR/WIKI-like power-law graphs (KONECT substitutes).
//!
//! The paper's Tables 3 and 5 use the Flickr social network (2.3M nodes,
//! 33.1M edges, average degree 14) and the German Wikipedia hyperlink graph
//! (2.1M nodes, 86.3M edges, average degree 41), both with a timestamp edge
//! property. We generate scale-reduced graphs preserving the two features
//! the experiments exercise: the power-law degree distribution (list-length
//! mix) and the single `ts` edge property read in list order.

use gfcl_common::DataType;
use gfcl_storage::{Cardinality, Catalog, PropertyDef, RawGraph};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::util::{shuffle_edges, Zipf};

/// Parameters of a power-law graph.
#[derive(Debug, Clone, Copy)]
pub struct PowerLawParams {
    pub nodes: usize,
    /// Target average out-degree (14 for FLICKR-like, 41 for WIKI-like).
    pub avg_degree: f64,
    /// Zipf exponent of the degree distribution.
    pub exponent: f64,
    pub seed: u64,
}

impl PowerLawParams {
    /// FLICKR-like: average degree 14.
    pub fn flickr(nodes: usize) -> Self {
        PowerLawParams { nodes, avg_degree: 14.0, exponent: 1.8, seed: 0xF11C4 }
    }

    /// WIKI-like: average degree 41.
    pub fn wiki(nodes: usize) -> Self {
        PowerLawParams { nodes, avg_degree: 41.0, exponent: 1.8, seed: 0x3131 }
    }
}

/// Generate the graph: one `NODE` vertex label (with an `id` key), one n-n
/// `LINK` edge label carrying a `ts` timestamp.
pub fn generate(params: PowerLawParams) -> RawGraph {
    let mut cat = Catalog::new();
    let node = cat.add_vertex_label("NODE", vec![PropertyDef::new("id", DataType::Int64)]).unwrap();
    let link = cat
        .add_edge_label(
            "LINK",
            node,
            node,
            Cardinality::ManyMany,
            vec![PropertyDef::new("ts", DataType::Date)],
        )
        .unwrap();
    cat.set_primary_key(node, "id").unwrap();

    let mut raw = RawGraph::new(cat);
    let n = params.nodes;
    raw.vertices[node as usize].count = n;
    for v in 0..n {
        raw.vertices[node as usize].props[0].push_i64(v as i64);
    }

    let mut rng = SmallRng::seed_from_u64(params.seed);
    // Degrees: bounded Zipf scaled to the target mean.
    let max_deg = ((n as f64).sqrt() as usize).clamp(4, 4096);
    let zipf = Zipf::new(max_deg, params.exponent);
    let scale = params.avg_degree / zipf.mean();
    // Targets: rank-biased (low offsets are hubs) so backward lists are
    // power-law too, as in real webgraphs.
    let target_zipf = Zipf::new(n, 1.2);

    let t = &mut raw.edges[link as usize];
    let base_ts: i64 = 1_300_000_000;
    for v in 0..n as u64 {
        let deg = ((zipf.sample(&mut rng) as f64 * scale).round() as usize).max(1);
        for _ in 0..deg {
            let mut d = (target_zipf.sample(&mut rng) - 1) as u64;
            if d == v {
                d = (d + 1) % n as u64;
            }
            t.src.push(v);
            t.dst.push(d);
            t.props[0].push_i64(base_ts + rng.gen_range(0..200_000_000i64));
        }
    }
    // KONECT edge files are ordered by crawl time, not by source vertex.
    shuffle_edges(&mut raw.edges[link as usize], &mut rng);

    raw.validate().expect("generated graph is consistent");
    raw
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = generate(PowerLawParams::flickr(500));
        let b = generate(PowerLawParams::flickr(500));
        assert_eq!(a.edges[0].src, b.edges[0].src);
        assert_eq!(a.edges[0].dst, b.edges[0].dst);
    }

    #[test]
    fn average_degree_is_close_to_target() {
        let p = PowerLawParams { nodes: 3000, avg_degree: 14.0, exponent: 1.8, seed: 9 };
        let g = generate(p);
        let avg = g.edges[0].len() as f64 / p.nodes as f64;
        assert!((avg - 14.0).abs() < 5.0, "avg degree {avg}");
    }

    #[test]
    fn degrees_are_skewed() {
        let g = generate(PowerLawParams::wiki(2000));
        let mut deg = vec![0usize; 2000];
        for &s in &g.edges[0].src {
            deg[s as usize] += 1;
        }
        deg.sort_unstable_by(|a, b| b.cmp(a));
        let top10: usize = deg[..10].iter().sum();
        let total: usize = deg.iter().sum();
        assert!(top10 * 20 > total, "hubs should hold a large share of edges");
        // And in-degrees skewed as well.
        let mut indeg = vec![0usize; 2000];
        for &d in &g.edges[0].dst {
            indeg[d as usize] += 1;
        }
        indeg.sort_unstable_by(|a, b| b.cmp(a));
        assert!(indeg[0] > 5 * indeg[1000].max(1));
    }

    #[test]
    fn timestamps_are_populated() {
        let g = generate(PowerLawParams::flickr(200));
        assert_eq!(g.edges[0].props[0].null_fraction(), 0.0);
    }
}

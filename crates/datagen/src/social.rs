//! LDBC-SNB-like social network generator.
//!
//! Substitute for the LDBC SF10/SF100 datasets (DESIGN.md §3). Preserves the
//! structural ratios the paper's techniques exploit:
//!
//! * 8 vertex labels, 16 edge labels — ~10 of them property-less and ~10
//!   single-cardinality (LDBC: 10/15 property-less, 8/15 single);
//! * all edge properties are integers/dates (LDBC: all 4-byte ints);
//! * `KNOWS` degrees are power-law ("many adjacency lists are very small");
//! * ~50% of comments have no `REPLY_OF` edge (the paper reports 50.5%
//!   empty forward `replyOf` lists in LDBC100, driving Table 4);
//! * `Comment.creationDate` NULL density is a parameter (Figure 10 sweeps);
//! * the categorical pools include the constants the IC/IS workload filters
//!   on (`India`, `China`, `Rumi`, `Person`, ...).

use gfcl_common::DataType::*;
use gfcl_storage::{Cardinality, Catalog, PropertyDef, RawGraph};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::util::{maybe, pick_skewed, shuffle_edges, Zipf};

/// Scale and shape parameters.
#[derive(Debug, Clone, Copy)]
pub struct SocialParams {
    pub persons: usize,
    /// Comments per person (LDBC is comment-dominated; ~8 is laptop-scale).
    pub comments_per_person: usize,
    /// Posts per person.
    pub posts_per_person: usize,
    /// Target average KNOWS out-degree.
    pub knows_avg_degree: f64,
    /// Likes per person (average).
    pub likes_per_person: f64,
    /// NULL fraction of `Comment.creationDate` (Figure 10 sweeps; LDBC
    /// itself has none).
    pub comment_date_null_fraction: f64,
    pub seed: u64,
}

impl SocialParams {
    /// Default shape at a given person count.
    pub fn scale(persons: usize) -> SocialParams {
        SocialParams {
            persons,
            comments_per_person: 8,
            posts_per_person: 3,
            knows_avg_degree: 40.0,
            likes_per_person: 10.0,
            comment_date_null_fraction: 0.0,
            seed: 0x50C1A1,
        }
    }
}

/// Vertex/edge label names of the generated schema, for query builders.
pub mod labels {
    pub const PERSON: &str = "Person";
    pub const COMMENT: &str = "Comment";
    pub const POST: &str = "Post";
    pub const FORUM: &str = "Forum";
    pub const ORGANISATION: &str = "Organisation";
    pub const PLACE: &str = "Place";
    pub const TAG: &str = "Tag";
    pub const TAGCLASS: &str = "TagClass";

    pub const KNOWS: &str = "knows";
    pub const LIKES: &str = "likes";
    pub const HAS_CREATOR: &str = "hasCreator";
    pub const POST_HAS_CREATOR: &str = "postHasCreator";
    pub const REPLY_OF: &str = "replyOf";
    pub const REPLY_OF_COMMENT: &str = "replyOfComment";
    pub const CONTAINER_OF: &str = "containerOf";
    pub const HAS_MEMBER: &str = "hasMember";
    pub const HAS_MODERATOR: &str = "hasModerator";
    pub const PERSON_IS_LOCATED_IN: &str = "personIsLocatedIn";
    pub const ORG_IS_LOCATED_IN: &str = "orgIsLocatedIn";
    pub const COMMENT_IS_LOCATED_IN: &str = "commentIsLocatedIn";
    pub const WORK_AT: &str = "workAt";
    pub const STUDY_AT: &str = "studyAt";
    pub const POST_HAS_TAG: &str = "postHasTag";
    pub const HAS_INTEREST: &str = "hasInterest";
    pub const HAS_TYPE: &str = "hasType";
    pub const IS_SUBCLASS_OF: &str = "isSubclassOf";
}

const FIRST_NAMES: &[&str] =
    &["Jan", "Maria", "Chen", "Ali", "Ivan", "Jose", "Anna", "Wei", "Raj", "Lena", "Otto", "Mia"];
const LAST_NAMES: &[&str] =
    &["Khan", "Smith", "Li", "Kumar", "Garcia", "Novak", "Sato", "Yang", "Costa", "Meyer"];
const BROWSERS: &[&str] = &["Chrome", "Firefox", "Safari", "Internet Explorer", "Opera"];
const PLACES: &[&str] = &[
    "India",
    "China",
    "Germany",
    "France",
    "United_States",
    "Brazil",
    "Nigeria",
    "Japan",
    "Canada",
    "Mexico",
    "Italy",
    "Spain",
    "Poland",
    "Kenya",
    "Vietnam",
    "Peru",
    "Egypt",
    "Norway",
    "Chile",
    "Greece",
];
const TAG_NAMES: &[&str] =
    &["Rumi", "Mozart", "Napoleon", "Einstein", "Gandhi", "Shakespeare", "Curie", "Tesla"];
const TAGCLASS_NAMES: &[&str] =
    &["Person", "Artist", "Thing", "Place", "Organisation", "Event", "Work", "Species"];
const LANGUAGES: &[&str] = &["uz", "tk", "ar", "en", "zh"];
const ORG_TYPES: &[&str] = &["company", "university"];

const DATE_LO: i64 = 1_200_000_000;
const DATE_HI: i64 = 1_550_000_000;

/// Generate the social network.
pub fn generate(p: SocialParams) -> RawGraph {
    let mut cat = Catalog::new();
    use labels::*;
    let person = cat
        .add_vertex_label(
            PERSON,
            vec![
                PropertyDef::new("id", Int64),
                PropertyDef::new("fName", String),
                PropertyDef::new("lName", String),
                PropertyDef::new("gender", String),
                PropertyDef::new("birthday", Date),
                PropertyDef::new("creationDate", Date),
                PropertyDef::new("locationIP", String),
                PropertyDef::new("browserUsed", String),
            ],
        )
        .unwrap();
    let comment = cat
        .add_vertex_label(
            COMMENT,
            vec![
                PropertyDef::new("id", Int64),
                PropertyDef::new("creationDate", Date),
                PropertyDef::new("locationIP", String),
                PropertyDef::new("browserUsed", String),
                PropertyDef::new("content", String),
                PropertyDef::new("length", Int64),
            ],
        )
        .unwrap();
    let post = cat
        .add_vertex_label(
            POST,
            vec![
                PropertyDef::new("id", Int64),
                PropertyDef::new("creationDate", Date),
                PropertyDef::new("imageFile", String),
                PropertyDef::new("language", String),
                PropertyDef::new("content", String),
                PropertyDef::new("length", Int64),
            ],
        )
        .unwrap();
    let forum = cat
        .add_vertex_label(
            FORUM,
            vec![
                PropertyDef::new("id", Int64),
                PropertyDef::new("title", String),
                PropertyDef::new("creationDate", Date),
            ],
        )
        .unwrap();
    let org = cat
        .add_vertex_label(
            ORGANISATION,
            vec![
                PropertyDef::new("id", Int64),
                PropertyDef::new("type", String),
                PropertyDef::new("name", String),
            ],
        )
        .unwrap();
    let place = cat
        .add_vertex_label(
            PLACE,
            vec![PropertyDef::new("id", Int64), PropertyDef::new("name", String)],
        )
        .unwrap();
    let tag = cat
        .add_vertex_label(
            TAG,
            vec![PropertyDef::new("id", Int64), PropertyDef::new("name", String)],
        )
        .unwrap();
    let tagclass = cat
        .add_vertex_label(
            TAGCLASS,
            vec![PropertyDef::new("id", Int64), PropertyDef::new("name", String)],
        )
        .unwrap();
    for l in [person, comment, post, forum, org, place, tag, tagclass] {
        cat.set_primary_key(l, "id").unwrap();
    }

    use Cardinality::*;
    let knows = cat
        .add_edge_label(KNOWS, person, person, ManyMany, vec![PropertyDef::new("date", Date)])
        .unwrap();
    let likes = cat
        .add_edge_label(LIKES, person, comment, ManyMany, vec![PropertyDef::new("date", Date)])
        .unwrap();
    let has_creator = cat.add_edge_label(HAS_CREATOR, comment, person, ManyOne, vec![]).unwrap();
    let post_has_creator =
        cat.add_edge_label(POST_HAS_CREATOR, post, person, ManyOne, vec![]).unwrap();
    let reply_of = cat.add_edge_label(REPLY_OF, comment, post, ManyOne, vec![]).unwrap();
    let reply_of_comment =
        cat.add_edge_label(REPLY_OF_COMMENT, comment, comment, ManyOne, vec![]).unwrap();
    let container_of = cat.add_edge_label(CONTAINER_OF, forum, post, OneMany, vec![]).unwrap();
    let has_member = cat
        .add_edge_label(HAS_MEMBER, forum, person, ManyMany, vec![PropertyDef::new("date", Date)])
        .unwrap();
    let has_moderator = cat.add_edge_label(HAS_MODERATOR, forum, person, ManyOne, vec![]).unwrap();
    let person_located =
        cat.add_edge_label(PERSON_IS_LOCATED_IN, person, place, ManyOne, vec![]).unwrap();
    let org_located = cat.add_edge_label(ORG_IS_LOCATED_IN, org, place, ManyOne, vec![]).unwrap();
    let comment_located =
        cat.add_edge_label(COMMENT_IS_LOCATED_IN, comment, place, ManyOne, vec![]).unwrap();
    let work_at = cat
        .add_edge_label(WORK_AT, person, org, ManyMany, vec![PropertyDef::new("year", Int64)])
        .unwrap();
    let study_at = cat
        .add_edge_label(STUDY_AT, person, org, ManyOne, vec![PropertyDef::new("year", Int64)])
        .unwrap();
    let post_has_tag = cat.add_edge_label(POST_HAS_TAG, post, tag, ManyMany, vec![]).unwrap();
    let has_interest = cat.add_edge_label(HAS_INTEREST, person, tag, ManyMany, vec![]).unwrap();
    let has_type = cat.add_edge_label(HAS_TYPE, tag, tagclass, ManyOne, vec![]).unwrap();
    let is_subclass =
        cat.add_edge_label(IS_SUBCLASS_OF, tagclass, tagclass, ManyOne, vec![]).unwrap();

    let mut raw = RawGraph::new(cat);
    let mut rng = SmallRng::seed_from_u64(p.seed);

    let n_person = p.persons;
    let n_comment = p.persons * p.comments_per_person;
    let n_post = p.persons * p.posts_per_person;
    let n_forum = (p.persons / 2).max(4);
    let n_org = (p.persons / 20).max(8);
    let n_place = PLACES.len();
    let n_tag = (p.persons / 10).max(TAG_NAMES.len() * 2);
    let n_tagclass = TAGCLASS_NAMES.len() * 2;

    // ---- Vertices ----
    {
        let t = &mut raw.vertices[person as usize];
        t.count = n_person;
        for v in 0..n_person {
            t.props[0].push_i64(v as i64);
            t.props[1].push_str(*pick_skewed(FIRST_NAMES, &mut rng));
            t.props[2].push_str(*pick_skewed(LAST_NAMES, &mut rng));
            t.props[3].push_str(if rng.gen_bool(0.5) { "male" } else { "female" });
            t.props[4].push_i64(rng.gen_range(0..1_000_000_000));
            t.props[5].push_i64(rng.gen_range(DATE_LO..DATE_HI));
            t.props[6].push_str(format!(
                "{}.{}.{}.{}",
                rng.gen_range(1..255),
                rng.gen_range(0..255),
                rng.gen_range(0..255),
                rng.gen_range(1..255)
            ));
            t.props[7].push_str(*pick_skewed(BROWSERS, &mut rng));
        }
    }
    {
        let t = &mut raw.vertices[comment as usize];
        t.count = n_comment;
        for v in 0..n_comment {
            t.props[0].push_i64(v as i64);
            match maybe(&mut rng, p.comment_date_null_fraction, ()) {
                Some(()) => t.props[1].push_i64(rng.gen_range(DATE_LO..DATE_HI)),
                None => t.props[1].push_null(),
            }
            t.props[2].push_str(format!(
                "10.0.{}.{}",
                rng.gen_range(0..255),
                rng.gen_range(1..255)
            ));
            t.props[3].push_str(*pick_skewed(BROWSERS, &mut rng));
            t.props[4].push_str(format!("comment text {}", v % 997));
            t.props[5].push_i64(rng.gen_range(5..500));
        }
    }
    {
        let t = &mut raw.vertices[post as usize];
        t.count = n_post;
        for v in 0..n_post {
            t.props[0].push_i64(v as i64);
            t.props[1].push_i64(rng.gen_range(DATE_LO..DATE_HI));
            // imageFile is very sparse in LDBC.
            match maybe(&mut rng, 0.75, ()) {
                Some(()) => t.props[2].push_str(format!("photo{v}.jpg")),
                None => t.props[2].push_null(),
            }
            match maybe(&mut rng, 0.3, ()) {
                Some(()) => t.props[3].push_str(*pick_skewed(LANGUAGES, &mut rng)),
                None => t.props[3].push_null(),
            }
            match maybe(&mut rng, 0.25, ()) {
                Some(()) => t.props[4].push_str(format!("about topic {}", v % 499)),
                None => t.props[4].push_null(),
            }
            t.props[5].push_i64(rng.gen_range(5..2000));
        }
    }
    {
        let t = &mut raw.vertices[forum as usize];
        t.count = n_forum;
        for v in 0..n_forum {
            t.props[0].push_i64(v as i64);
            t.props[1].push_str(format!("Wall of member {}", v % n_person.max(1)));
            t.props[2].push_i64(rng.gen_range(DATE_LO..DATE_HI));
        }
    }
    {
        let t = &mut raw.vertices[org as usize];
        t.count = n_org;
        for v in 0..n_org {
            t.props[0].push_i64(v as i64);
            t.props[1].push_str(ORG_TYPES[v % 2]);
            t.props[2].push_str(format!("Org_{v}"));
        }
    }
    {
        let t = &mut raw.vertices[place as usize];
        t.count = n_place;
        for (v, name) in PLACES.iter().enumerate() {
            t.props[0].push_i64(v as i64);
            t.props[1].push_str(*name);
        }
    }
    {
        let t = &mut raw.vertices[tag as usize];
        t.count = n_tag;
        for v in 0..n_tag {
            t.props[0].push_i64(v as i64);
            match TAG_NAMES.get(v) {
                Some(name) => t.props[1].push_str(*name),
                None => t.props[1].push_str(format!("tag_{v}")),
            }
        }
    }
    {
        let t = &mut raw.vertices[tagclass as usize];
        t.count = n_tagclass;
        for v in 0..n_tagclass {
            t.props[0].push_i64(v as i64);
            match TAGCLASS_NAMES.get(v) {
                Some(name) => t.props[1].push_str(*name),
                None => t.props[1].push_str(format!("tagclass_{v}")),
            }
        }
    }

    // ---- Edges ----
    // KNOWS: power-law out-degrees.
    {
        let max_deg = ((n_person as f64).sqrt() as usize).clamp(4, 2048);
        let zipf = Zipf::new(max_deg, 1.6);
        let scale = p.knows_avg_degree / zipf.mean();
        let t = &mut raw.edges[knows as usize];
        for v in 0..n_person as u64 {
            let deg = ((zipf.sample(&mut rng) as f64 * scale).round() as usize)
                .clamp(1, n_person.saturating_sub(1));
            for _ in 0..deg {
                let mut d = rng.gen_range(0..n_person as u64);
                if d == v {
                    d = (d + 1) % n_person as u64;
                }
                t.src.push(v);
                t.dst.push(d);
                t.props[0].push_i64(rng.gen_range(DATE_LO..DATE_HI));
            }
        }
    }
    // LIKES: person -> comment.
    {
        let t = &mut raw.edges[likes as usize];
        for v in 0..n_person as u64 {
            let k = rng.gen_range(0..(2.0 * p.likes_per_person) as usize + 1);
            for _ in 0..k {
                t.src.push(v);
                t.dst.push(rng.gen_range(0..n_comment as u64));
                t.props[0].push_i64(rng.gen_range(DATE_LO..DATE_HI));
            }
        }
    }
    // HAS_CREATOR / COMMENT_IS_LOCATED_IN: one per comment.
    {
        for c in 0..n_comment as u64 {
            let t = &mut raw.edges[has_creator as usize];
            t.src.push(c);
            t.dst.push(rng.gen_range(0..n_person as u64));
            let t = &mut raw.edges[comment_located as usize];
            t.src.push(c);
            t.dst.push(rng.gen_range(0..n_place as u64));
        }
    }
    // POST_HAS_CREATOR + CONTAINER_OF: one per post.
    {
        for po in 0..n_post as u64 {
            let t = &mut raw.edges[post_has_creator as usize];
            t.src.push(po);
            t.dst.push(rng.gen_range(0..n_person as u64));
            let t = &mut raw.edges[container_of as usize];
            t.src.push(rng.gen_range(0..n_forum as u64));
            t.dst.push(po);
        }
    }
    // REPLY_OF: ~50% of comments reply to a post (50% empty fwd lists).
    {
        let t = &mut raw.edges[reply_of as usize];
        for c in 0..n_comment as u64 {
            if rng.gen_bool(0.5) {
                t.src.push(c);
                t.dst.push(rng.gen_range(0..n_post as u64));
            }
        }
    }
    // REPLY_OF_COMMENT: ~50% of comments reply to an earlier comment
    // (n-1, half-empty forward lists — the Table 4 workload; replies point
    // to lower offsets so chains are acyclic).
    {
        let t = &mut raw.edges[reply_of_comment as usize];
        for c in 1..n_comment as u64 {
            if rng.gen_bool(0.5) {
                t.src.push(c);
                t.dst.push(rng.gen_range(0..c));
            }
        }
    }
    // HAS_MEMBER (n-n, date) and HAS_MODERATOR (one per forum).
    {
        for f in 0..n_forum as u64 {
            let members = rng.gen_range(2..40);
            for _ in 0..members {
                let t = &mut raw.edges[has_member as usize];
                t.src.push(f);
                t.dst.push(rng.gen_range(0..n_person as u64));
                t.props[0].push_i64(rng.gen_range(DATE_LO..DATE_HI));
            }
            let t = &mut raw.edges[has_moderator as usize];
            t.src.push(f);
            t.dst.push(rng.gen_range(0..n_person as u64));
        }
    }
    // PERSON_IS_LOCATED_IN: one per person. WORK_AT ~30%, STUDY_AT ~50%.
    {
        for v in 0..n_person as u64 {
            let t = &mut raw.edges[person_located as usize];
            t.src.push(v);
            t.dst.push(rng.gen_range(0..n_place as u64));
            if rng.gen_bool(0.3) {
                let jobs = rng.gen_range(1..3);
                for _ in 0..jobs {
                    let t = &mut raw.edges[work_at as usize];
                    t.src.push(v);
                    t.dst.push(rng.gen_range(0..n_org as u64));
                    t.props[0].push_i64(rng.gen_range(2000..2021));
                }
            }
            if rng.gen_bool(0.5) {
                let t = &mut raw.edges[study_at as usize];
                t.src.push(v);
                t.dst.push(rng.gen_range(0..n_org as u64));
                t.props[0].push_i64(rng.gen_range(1990..2021));
            }
        }
    }
    // ORG_IS_LOCATED_IN: one per org.
    {
        let t = &mut raw.edges[org_located as usize];
        for o in 0..n_org as u64 {
            t.src.push(o);
            t.dst.push(rng.gen_range(0..n_place as u64));
        }
    }
    // POST_HAS_TAG: 0..4 per post; HAS_INTEREST: ~10 per person — the big
    // property-less n-n labels whose edge IDs the NEW-IDS step drops.
    {
        let t = &mut raw.edges[post_has_tag as usize];
        for po in 0..n_post as u64 {
            let k = rng.gen_range(0..4);
            for _ in 0..k {
                t.src.push(po);
                t.dst.push(rng.gen_range(0..n_tag as u64));
            }
        }
        let t = &mut raw.edges[has_interest as usize];
        for v in 0..n_person as u64 {
            for _ in 0..rng.gen_range(2..20) {
                t.src.push(v);
                t.dst.push(rng.gen_range(0..n_tag as u64));
            }
        }
    }
    // HAS_TYPE: one per tag; IS_SUBCLASS_OF: tree over tagclasses.
    {
        let t = &mut raw.edges[has_type as usize];
        for tg in 0..n_tag as u64 {
            t.src.push(tg);
            t.dst.push(rng.gen_range(0..n_tagclass as u64));
        }
        let t = &mut raw.edges[is_subclass as usize];
        for tc in 1..n_tagclass as u64 {
            t.src.push(tc);
            t.dst.push(rng.gen_range(0..tc));
        }
    }

    // Emit n-n edges in a realistic arrival order (LDBC update streams are
    // ordered by timestamp, not by source vertex).
    for e in [knows, likes, has_member, work_at, post_has_tag, has_interest] {
        shuffle_edges(&mut raw.edges[e as usize], &mut rng);
    }

    raw.validate().expect("generated social network is consistent");
    raw
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> RawGraph {
        generate(SocialParams::scale(200))
    }

    #[test]
    fn schema_shape_matches_ldbc() {
        let g = small();
        assert_eq!(g.catalog.vertex_label_count(), 8);
        assert_eq!(g.catalog.edge_label_count(), 18);
        let single =
            g.catalog.edge_labels().iter().filter(|e| e.cardinality.is_single_any()).count();
        assert!(single >= 8, "LDBC-like: many single-cardinality labels (got {single})");
        let propless = g.catalog.edge_labels().iter().filter(|e| e.properties.is_empty()).count();
        assert!(propless >= 10, "LDBC-like: most labels property-less (got {propless})");
        // All edge properties are ints/dates.
        for def in g.catalog.edge_labels() {
            for p in &def.properties {
                assert!(matches!(
                    p.dtype,
                    gfcl_common::DataType::Int64 | gfcl_common::DataType::Date
                ));
            }
        }
    }

    #[test]
    fn reply_of_is_half_empty() {
        let g = small();
        let reply = g.catalog.edge_label_id(labels::REPLY_OF).unwrap();
        let comments = g.vertex_count(g.catalog.vertex_label_id(labels::COMMENT).unwrap());
        let frac = g.edge_count(reply) as f64 / comments as f64;
        assert!((0.4..0.6).contains(&frac), "~50% of comments reply, got {frac}");
    }

    #[test]
    fn comment_date_null_fraction_is_honored() {
        let mut p = SocialParams::scale(100);
        p.comment_date_null_fraction = 0.7;
        let g = generate(p);
        let comment = g.catalog.vertex_label_id(labels::COMMENT).unwrap();
        let frac = g.vertices[comment as usize].props[1].null_fraction();
        assert!((0.6..0.8).contains(&frac), "got {frac}");
    }

    #[test]
    fn determinism() {
        let a = generate(SocialParams::scale(100));
        let b = generate(SocialParams::scale(100));
        assert_eq!(a.edges[0].src, b.edges[0].src);
        assert_eq!(a.total_edges(), b.total_edges());
    }

    #[test]
    fn knows_degree_is_near_target() {
        let p = SocialParams::scale(500);
        let g = generate(p);
        let knows = g.catalog.edge_label_id(labels::KNOWS).unwrap();
        let avg = g.edge_count(knows) as f64 / p.persons as f64;
        assert!((avg - p.knows_avg_degree).abs() < 20.0, "avg knows degree {avg}");
    }

    #[test]
    fn constant_pools_present() {
        let g = small();
        let place = g.catalog.vertex_label_id(labels::PLACE).unwrap();
        if let gfcl_storage::PropData::Str(names) = &g.vertices[place as usize].props[1] {
            assert!(names.iter().any(|n| n.as_deref() == Some("India")));
            assert!(names.iter().any(|n| n.as_deref() == Some("China")));
        } else {
            panic!("place names are strings");
        }
    }
}

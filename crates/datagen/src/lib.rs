//! Seeded synthetic dataset generators (DESIGN.md §3 substitutions).
//!
//! The paper evaluates on LDBC SNB (SF10/SF100), IMDb/JOB, and two KONECT
//! graphs (FLICKR, WIKI). Those datasets are multi-hundred-gigabyte and/or
//! licensed, so this crate generates scale-reduced synthetic equivalents
//! that preserve the structural characteristics the paper's techniques
//! exploit — label/cardinality ratios, property sparsity, degree
//! distributions, and the categorical constants the benchmark queries
//! filter on. All generators are deterministic given their seed.

pub mod movies;
pub mod powerlaw;
pub mod social;
pub mod util;

pub use movies::{generate as generate_movies, MovieParams};
pub use powerlaw::{generate as generate_powerlaw, PowerLawParams};
pub use social::{generate as generate_social, SocialParams};

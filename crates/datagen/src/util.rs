//! Sampling utilities shared by the generators.

use rand::rngs::SmallRng;
use rand::Rng;

/// Discrete bounded Zipf/power-law sampler over `1..=max`, used to draw
/// out-degrees and popularity ranks. Real graph data has power-law degree
/// distributions (Guideline 2), which is what makes "many adjacency lists
/// are very small" true and property-page locality matter.
#[derive(Debug, Clone)]
pub struct Zipf {
    /// Cumulative probabilities over 1..=max.
    cdf: Vec<f64>,
}

impl Zipf {
    /// A Zipf distribution over `1..=max` with exponent `s` (s ≈ 1.5–2.5
    /// for social graphs).
    pub fn new(max: usize, s: f64) -> Zipf {
        assert!(max >= 1);
        let mut cdf = Vec::with_capacity(max);
        let mut total = 0.0f64;
        for k in 1..=max {
            total += 1.0 / (k as f64).powf(s);
            cdf.push(total);
        }
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Draw a value in `1..=max`.
    pub fn sample(&self, rng: &mut SmallRng) -> usize {
        let u: f64 = rng.gen();
        match self.cdf.binary_search_by(|p| p.partial_cmp(&u).unwrap()) {
            Ok(i) | Err(i) => (i + 1).min(self.cdf.len()),
        }
    }

    /// Expected value of the distribution (to calibrate average degrees).
    pub fn mean(&self) -> f64 {
        let mut mean = 0.0;
        let mut prev = 0.0;
        for (i, &p) in self.cdf.iter().enumerate() {
            mean += (i + 1) as f64 * (p - prev);
            prev = p;
        }
        mean
    }
}

/// Scale a Zipf sampler's output so the empirical mean approaches
/// `target_mean`: returns the multiplier to apply to samples.
pub fn degree_scale(z: &Zipf, target_mean: f64) -> f64 {
    target_mean / z.mean()
}

/// Pick an element of a weighted pool: earlier entries are exponentially
/// more likely (rank-biased pick for realistic categorical skew).
pub fn pick_skewed<'a, T>(pool: &'a [T], rng: &mut SmallRng) -> &'a T {
    debug_assert!(!pool.is_empty());
    // Geometric-ish: each step halves the probability, bounded by pool size.
    let mut i = 0usize;
    while i + 1 < pool.len() && rng.gen_bool(0.5) {
        i += 1;
    }
    &pool[i]
}

/// Shuffle an edge table into a random arrival order (real edge files are
/// not grouped by source; this is what interleaves lists within property
/// pages and randomizes edge-column IDs).
pub fn shuffle_edges(table: &mut gfcl_storage::EdgeTable, rng: &mut SmallRng) {
    let n = table.len();
    let mut perm: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        perm.swap(i, j);
    }
    table.reorder(&perm);
}

/// `Some(value)` with probability `1 - null_fraction`.
pub fn maybe<T>(rng: &mut SmallRng, null_fraction: f64, value: T) -> Option<T> {
    if rng.gen_bool(null_fraction.clamp(0.0, 1.0)) {
        None
    } else {
        Some(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn zipf_samples_in_range_and_skewed() {
        let z = Zipf::new(100, 2.0);
        let mut rng = SmallRng::seed_from_u64(7);
        let mut counts = [0usize; 101];
        for _ in 0..10_000 {
            let v = z.sample(&mut rng);
            assert!((1..=100).contains(&v));
            counts[v] += 1;
        }
        assert!(counts[1] > counts[2]);
        assert!(counts[1] > 10 * counts[10].max(1));
    }

    #[test]
    fn zipf_mean_matches_empirical() {
        let z = Zipf::new(50, 1.8);
        let mut rng = SmallRng::seed_from_u64(3);
        let n = 50_000;
        let sum: usize = (0..n).map(|_| z.sample(&mut rng)).sum();
        let emp = sum as f64 / n as f64;
        assert!((emp - z.mean()).abs() < 0.2, "empirical {emp} vs analytic {}", z.mean());
    }

    #[test]
    fn pick_skewed_prefers_head() {
        let pool = ["a", "b", "c", "d"];
        let mut rng = SmallRng::seed_from_u64(1);
        let mut head = 0;
        for _ in 0..1000 {
            if *pick_skewed(&pool, &mut rng) == "a" {
                head += 1;
            }
        }
        assert!(head > 400);
    }

    #[test]
    fn maybe_respects_fraction() {
        let mut rng = SmallRng::seed_from_u64(2);
        let nulls = (0..1000).filter(|_| maybe(&mut rng, 0.7, ()).is_none()).count();
        assert!((600..800).contains(&nulls));
    }
}

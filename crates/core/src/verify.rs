//! Static verification of [`LogicalPlan`] structural invariants.
//!
//! Six PRs of growth piled implicit invariants into the plan→exec seam:
//! unflat-span executability, selection-mask ownership (exactly one scan
//! group seeds the mask), def-before-use dataflow, pushdown eligibility,
//! cardinality bookkeeping. Until now they were enforced only where each
//! happened to matter — inside order enumeration, or at runtime by the
//! equivalence suites catching symptoms. This module checks all of them in
//! one pass over the finished plan, as a dataflow typecheck, *before* any
//! engine compiles it.
//!
//! [`verify_plan`] runs from [`crate::plan::plan_with`] on every plan by
//! default (`GFCL_NO_VERIFY` is the escape hatch, `GFCL_VERIFY=strict`
//! overrides the escape hatch — CI exports it) and again from the EXPLAIN
//! renderer, which prints the `verified: N invariants` line. Violations are
//! [`Error::Plan`] values naming the violated rule, the offending step and
//! the variable or slot involved, e.g.
//!
//! ```text
//! plan verifier: [def-before-use] step 4 (FILTER): slot $2 (b.age) is
//! read before any property step fills it
//! ```
//!
//! The rule catalog (the `[...]` tags above) is documented in
//! `ARCHITECTURE.md`, "Plan verification & conformance lints". To add a
//! rule: pick a tag, add `ensure` calls in the matching phase of
//! `Verifier::run`, and cover it with a seeded corruption in
//! `crates/core/tests/verify_mutations.rs`.

use gfcl_common::{DataType, Direction, Error, Result, Value};
use gfcl_storage::Catalog;

use crate::optimize::GroupSim;
use crate::plan::{
    is_pushable, LogicalPlan, PlanAgg, PlanExpr, PlanReturn, PlanScalar, PlanStep, SlotSource,
};
use crate::query::AggFunc;

/// Outcome of a successful verification: how many individual invariant
/// checks the pass evaluated (deterministic per plan; EXPLAIN renders it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VerifyReport {
    /// Number of invariant checks evaluated (all passed).
    pub checks: usize,
}

/// Walk `plan` and check every structural invariant the executor and sinks
/// rely on. Returns the number of checks evaluated, or the first violation
/// as a structured [`Error::Plan`] naming rule, step and variable.
pub fn verify_plan(plan: &LogicalPlan, catalog: &Catalog) -> Result<VerifyReport> {
    let mut v = Verifier { plan, catalog, checks: 0 };
    v.run()?;
    Ok(VerifyReport { checks: v.checks })
}

struct Verifier<'a> {
    plan: &'a LogicalPlan,
    catalog: &'a Catalog,
    checks: usize,
}

/// Can values of these two column/constant types ever compare non-UNKNOWN
/// under [`Value::compare`]? The numeric family is `Int64`/`Date` and
/// `Int64`/`Float64`; `Date`/`Float64`, `Bool` and `String` only compare
/// with themselves.
fn comparable(a: DataType, b: DataType) -> bool {
    use DataType::{Date, Float64, Int64};
    a == b || matches!((a, b), (Int64, Date | Float64) | (Date | Float64, Int64))
}

fn step_kind(s: &PlanStep) -> &'static str {
    match s {
        PlanStep::ScanAll { .. } => "SCAN",
        PlanStep::ScanPk { .. } => "SCAN_PK",
        PlanStep::Extend { .. } => "EXTEND",
        PlanStep::NodeProp { .. } => "PROP",
        PlanStep::EdgeProp { .. } => "PROP",
        PlanStep::Filter { .. } => "FILTER",
    }
}

impl Verifier<'_> {
    /// Evaluate one invariant check: count it, and turn a failure into a
    /// structured [`Error::Plan`] tagged with its rule name.
    fn ensure(&mut self, ok: bool, rule: &str, msg: impl FnOnce() -> String) -> Result<()> {
        self.checks += 1;
        if ok {
            Ok(())
        } else {
            Err(Error::Plan(format!("plan verifier: [{rule}] {}", msg())))
        }
    }

    fn run(&mut self) -> Result<()> {
        self.check_tables()?;
        self.check_steps()?;
        self.check_sink()?;
        self.check_cards()?;
        Ok(())
    }

    /// Phase 1 — the node/edge/slot tables themselves: every label, endpoint
    /// and property index resolves in the catalog, and every slot's declared
    /// dtype matches the property it reads (`slot-schema`). Runs first so
    /// later phases can index the tables without re-checking bounds.
    fn check_tables(&mut self) -> Result<()> {
        let p = self.plan;
        for (i, n) in p.nodes.iter().enumerate() {
            self.ensure(
                (n.label as usize) < self.catalog.vertex_label_count(),
                "index-range",
                || format!("node {i} ({}) has unknown vertex label {}", n.var, n.label),
            )?;
        }
        for (i, e) in p.edges.iter().enumerate() {
            self.ensure(
                (e.label as usize) < self.catalog.edge_label_count(),
                "index-range",
                || format!("edge {i} has unknown edge label {}", e.label),
            )?;
            self.ensure(e.from < p.nodes.len() && e.to < p.nodes.len(), "index-range", || {
                format!("edge {i} endpoints ({}, {}) exceed the node table", e.from, e.to)
            })?;
            let def = self.catalog.edge_label(e.label);
            self.ensure(
                def.src == p.nodes[e.from].label && def.dst == p.nodes[e.to].label,
                "extend-schema",
                || {
                    format!(
                        "edge {i} ({}) connects labels ({}, {}) in the catalog but \
                         ({}, {}) in the plan",
                        def.name, def.src, def.dst, p.nodes[e.from].label, p.nodes[e.to].label
                    )
                },
            )?;
        }
        for (i, s) in p.slots.iter().enumerate() {
            let (dtype, what) = match s.source {
                SlotSource::NodeProp { node, prop } => {
                    self.ensure(node < p.nodes.len(), "index-range", || {
                        format!("slot ${i} ({}) references unknown node {node}", s.name)
                    })?;
                    let def = self.catalog.vertex_label(p.nodes[node].label);
                    self.ensure(prop < def.properties.len(), "index-range", || {
                        format!(
                            "slot ${i} ({}) references property {prop} of label {}, which \
                             has {} properties",
                            s.name,
                            def.name,
                            def.properties.len()
                        )
                    })?;
                    (
                        def.properties[prop].dtype,
                        format!("{}.{}", def.name, def.properties[prop].name),
                    )
                }
                SlotSource::EdgeProp { edge, prop } => {
                    self.ensure(edge < p.edges.len(), "index-range", || {
                        format!("slot ${i} ({}) references unknown edge {edge}", s.name)
                    })?;
                    let def = self.catalog.edge_label(p.edges[edge].label);
                    self.ensure(prop < def.properties.len(), "index-range", || {
                        format!(
                            "slot ${i} ({}) references property {prop} of edge label {}, \
                             which has {} properties",
                            s.name,
                            def.name,
                            def.properties.len()
                        )
                    })?;
                    (
                        def.properties[prop].dtype,
                        format!("{}.{}", def.name, def.properties[prop].name),
                    )
                }
            };
            self.ensure(s.dtype == dtype, "slot-schema", || {
                format!(
                    "slot ${i} ({}) is declared {:?} but {what} is {dtype:?} in the catalog",
                    s.name, s.dtype
                )
            })?;
        }
        Ok(())
    }

    /// Phase 2 — the step sequence: scan placement, def-before-use dataflow,
    /// extend schema consistency, pushed-predicate eligibility, and the
    /// unflat-span rule (via the same [`GroupSim`] the order enumerator
    /// uses). Bookkeeping mirrors the executor's compile pass.
    fn check_steps(&mut self) -> Result<()> {
        let p = self.plan;
        self.ensure(!p.steps.is_empty(), "scan-first", || "plan has no steps".into())?;
        self.ensure(
            matches!(p.steps.first(), Some(PlanStep::ScanAll { .. } | PlanStep::ScanPk { .. })),
            "scan-first",
            || "step 1 must be a scan (the scan group seeds the selection mask)".into(),
        )?;

        let mut node_bound = vec![false; p.nodes.len()];
        let mut edge_bound = vec![false; p.edges.len()];
        let mut slot_filled = vec![false; p.slots.len()];
        let mut sim = GroupSim::new(p.nodes.len(), p.edges.len());

        for (i, step) in p.steps.iter().enumerate() {
            let at = i + 1; // EXPLAIN numbers steps from 1; error messages match
            let kind = step_kind(step);
            if i > 0 {
                self.ensure(
                    !matches!(step, PlanStep::ScanAll { .. } | PlanStep::ScanPk { .. }),
                    "scan-first",
                    || {
                        format!(
                            "step {at} ({kind}): a second scan would seed a second selection \
                             mask; exactly one scan group is allowed"
                        )
                    },
                )?;
            }
            match step {
                PlanStep::ScanAll { node, pushed } => {
                    self.ensure(*node < p.nodes.len(), "index-range", || {
                        format!("step {at} ({kind}): scan node {node} exceeds the node table")
                    })?;
                    node_bound[*node] = true;
                    sim.scan(*node);
                    for e in pushed {
                        self.check_expr(e, at, kind)?;
                        self.ensure(is_pushable(e, &p.slots, *node), "pushed-scan-only", || {
                            format!(
                                "step {at} ({kind}): pushed predicate must compare properties \
                                 of the scanned node ({}) against constants only",
                                p.nodes[*node].var
                            )
                        })?;
                    }
                }
                PlanStep::ScanPk { node, key: _ } => {
                    self.ensure(*node < p.nodes.len(), "index-range", || {
                        format!("step {at} ({kind}): scan node {node} exceeds the node table")
                    })?;
                    let def = self.catalog.vertex_label(p.nodes[*node].label);
                    self.ensure(def.primary_key.is_some(), "extend-schema", || {
                        format!("step {at} ({kind}): label {} has no primary key to seek", def.name)
                    })?;
                    node_bound[*node] = true;
                    sim.scan(*node);
                }
                PlanStep::Extend { edge, edge_label, dir, from, to, single } => {
                    self.ensure(*edge < p.edges.len(), "index-range", || {
                        format!("step {at} ({kind}): edge {edge} exceeds the edge table")
                    })?;
                    self.ensure(
                        *from < p.nodes.len() && *to < p.nodes.len(),
                        "index-range",
                        || {
                            format!(
                            "step {at} ({kind}): endpoints ({from}, {to}) exceed the node table"
                        )
                        },
                    )?;
                    let pe = &p.edges[*edge];
                    self.ensure(*edge_label == pe.label, "extend-schema", || {
                        format!(
                            "step {at} ({kind}): traverses label {edge_label} but pattern \
                             edge {edge} has label {}",
                            pe.label
                        )
                    })?;
                    let expected = match dir {
                        Direction::Fwd => (pe.from, pe.to),
                        Direction::Bwd => (pe.to, pe.from),
                    };
                    self.ensure((*from, *to) == expected, "extend-schema", || {
                        format!(
                            "step {at} ({kind}): {dir:?} traversal of edge {edge} must go \
                             {} -> {}, plan says {from} -> {to}",
                            expected.0, expected.1
                        )
                    })?;
                    let def = self.catalog.edge_label(pe.label);
                    self.ensure(
                        *single == def.cardinality.is_single(*dir),
                        "extend-schema",
                        || {
                            format!(
                                "step {at} ({kind}): single={single} contradicts catalog \
                             cardinality {:?} for label {} in {dir:?}",
                                def.cardinality, def.name
                            )
                        },
                    )?;
                    self.ensure(node_bound[*from], "def-before-use", || {
                        format!(
                            "step {at} ({kind}): extends from unbound node ({})",
                            p.nodes[*from].var
                        )
                    })?;
                    self.ensure(!node_bound[*to], "def-before-use", || {
                        format!(
                            "step {at} ({kind}): target node ({}) is already bound — only \
                             acyclic (tree) patterns execute",
                            p.nodes[*to].var
                        )
                    })?;
                    self.ensure(!edge_bound[*edge], "def-before-use", || {
                        format!("step {at} ({kind}): edge {edge} is traversed twice")
                    })?;
                    node_bound[*to] = true;
                    edge_bound[*edge] = true;
                    sim.extend(*edge, *from, *to, *single);
                }
                PlanStep::NodeProp { node, prop, slot } => {
                    self.check_prop_read(at, kind, *slot, &mut slot_filled, || {
                        SlotSource::NodeProp { node: *node, prop: *prop }
                    })?;
                    self.ensure(node_bound[*node], "def-before-use", || {
                        format!(
                            "step {at} ({kind}): reads a property of unbound node ({})",
                            p.nodes[*node].var
                        )
                    })?;
                }
                PlanStep::EdgeProp { edge, prop, slot } => {
                    self.check_prop_read(at, kind, *slot, &mut slot_filled, || {
                        SlotSource::EdgeProp { edge: *edge, prop: *prop }
                    })?;
                    self.ensure(edge_bound[*edge], "def-before-use", || {
                        format!("step {at} ({kind}): reads a property of unbound edge {edge}")
                    })?;
                }
                PlanStep::Filter { expr } => {
                    self.check_expr(expr, at, kind)?;
                    for s in expr.slots() {
                        self.ensure(slot_filled[s], "def-before-use", || {
                            format!(
                                "step {at} ({kind}): slot ${s} ({}) is read before any \
                                 property step fills it",
                                p.slots[s].name
                            )
                        })?;
                    }
                    let mut groups: Vec<usize> = expr
                        .slots()
                        .iter()
                        .map(|&s| sim.group_of_slot(&p.slots[s]))
                        .filter(|&g| sim.is_unflat(g))
                        .collect();
                    groups.sort_unstable();
                    groups.dedup();
                    self.ensure(groups.len() < 2, "unflat-span", || {
                        format!(
                            "step {at} ({kind}): predicate spans {} unflat list groups; the \
                             list-based processor evaluates a filter over at most one",
                            groups.len()
                        )
                    })?;
                }
            }
        }

        // Every node the plan *uses* — an edge endpoint or a property
        // source — must be bound by the end. (A degenerate edge-less
        // pattern may declare nodes it never touches; the planner scans
        // only the start node, and that is pinned behavior.)
        let mut node_used = vec![false; p.nodes.len()];
        for e in &p.edges {
            node_used[e.from] = true;
            node_used[e.to] = true;
        }
        for s in &p.slots {
            if let SlotSource::NodeProp { node, .. } = s.source {
                node_used[node] = true;
            }
        }
        for (i, (b, used)) in node_bound.iter().zip(&node_used).enumerate() {
            self.ensure(*b || !used, "binding-complete", || {
                format!("pattern node {i} ({}) is used but never bound by any step", p.nodes[i].var)
            })?;
        }
        for (i, b) in edge_bound.iter().enumerate() {
            self.ensure(*b, "binding-complete", || {
                format!("pattern edge {i} is never traversed by any step")
            })?;
        }

        // Slots the sink consumes must be filled by a property step; slots
        // feeding only pushed predicates legitimately have none (the scan
        // evaluates them directly on the columns).
        for s in self.sink_slots() {
            self.ensure(s < p.slots.len(), "index-range", || {
                format!("sink references slot ${s}, which exceeds the slot table")
            })?;
            self.ensure(slot_filled[s], "def-before-use", || {
                format!("sink reads slot ${s} ({}) but no property step fills it", p.slots[s].name)
            })?;
        }
        Ok(())
    }

    /// Shared checks of `NodeProp`/`EdgeProp`: slot in range, written at
    /// most once, and its [`SlotSource`] agrees with the step's own fields.
    fn check_prop_read(
        &mut self,
        at: usize,
        kind: &str,
        slot: usize,
        slot_filled: &mut [bool],
        source: impl FnOnce() -> SlotSource,
    ) -> Result<()> {
        let p = self.plan;
        self.ensure(slot < p.slots.len(), "index-range", || {
            format!("step {at} ({kind}): slot ${slot} exceeds the slot table")
        })?;
        self.ensure(p.slots[slot].source == source(), "slot-schema", || {
            format!(
                "step {at} ({kind}): fills slot ${slot} ({}) from a different variable or \
                 property than the slot declares",
                p.slots[slot].name
            )
        })?;
        self.ensure(!slot_filled[slot], "def-before-use", || {
            format!("step {at} ({kind}): slot ${slot} ({}) is filled twice", p.slots[slot].name)
        })?;
        slot_filled[slot] = true;
        Ok(())
    }

    /// Type-check one predicate: slot indexes in range, comparison operand
    /// types comparable under [`Value::compare`], string matches over
    /// `String` columns, `IN` list values comparable with their column.
    fn check_expr(&mut self, e: &PlanExpr, at: usize, kind: &str) -> Result<()> {
        let p = self.plan;
        for s in e.slots() {
            self.ensure(s < p.slots.len(), "index-range", || {
                format!("step {at} ({kind}): predicate slot ${s} exceeds the slot table")
            })?;
        }
        match e {
            PlanExpr::Cmp { lhs, rhs, .. } => {
                let dt = |s: &PlanScalar| match s {
                    PlanScalar::Slot(i) => Some(p.slots[*i].dtype),
                    PlanScalar::Const(v) => v.data_type(), // NULL compares UNKNOWN: allowed
                };
                if let (Some(a), Some(b)) = (dt(lhs), dt(rhs)) {
                    let rendered = self.name_of(e);
                    self.ensure(comparable(a, b), "expr-type", || {
                        format!(
                            "step {at} ({kind}): comparison between incomparable types \
                             {a:?} and {b:?} in ({rendered})"
                        )
                    })?;
                }
            }
            PlanExpr::StrMatch { slot, .. } => {
                self.ensure(p.slots[*slot].dtype == DataType::String, "expr-type", || {
                    format!(
                        "step {at} ({kind}): string match over non-string slot ${slot} ({}: \
                         {:?})",
                        p.slots[*slot].name, p.slots[*slot].dtype
                    )
                })?;
            }
            PlanExpr::InSet { slot, values } => {
                let dtype = p.slots[*slot].dtype;
                for v in values {
                    if let Some(d) = v.data_type() {
                        self.ensure(comparable(dtype, d), "expr-type", || {
                            format!(
                                "step {at} ({kind}): IN list value {v} ({d:?}) is \
                                 incomparable with slot ${slot} ({}: {dtype:?})",
                                p.slots[*slot].name
                            )
                        })?;
                    }
                }
            }
            PlanExpr::And(es) | PlanExpr::Or(es) => {
                for e in es {
                    self.check_expr(e, at, kind)?;
                }
            }
            PlanExpr::Not(inner) => self.check_expr(inner, at, kind)?,
        }
        Ok(())
    }

    fn name_of(&self, e: &PlanExpr) -> String {
        crate::optimize::expr_str(e, &self.plan.slots)
    }

    /// Every slot the sink reads (projection columns, aggregate inputs,
    /// grouping keys). Indexes are *not* yet validated — callers check.
    fn sink_slots(&self) -> Vec<usize> {
        match &self.plan.ret {
            PlanReturn::CountStar => Vec::new(),
            PlanReturn::Props(ids) => ids.clone(),
            PlanReturn::Sum(s) | PlanReturn::Min(s) | PlanReturn::Max(s) => vec![*s],
            PlanReturn::GroupBy { keys, aggs } => {
                keys.iter().copied().chain(aggs.iter().filter_map(|a| a.slot)).collect()
            }
        }
    }

    /// Phase 3 — the sink: header arity, ORDER BY column range, DISTINCT
    /// and LIMIT placement, materialization flags of returned slots, and
    /// aggregate input types.
    fn check_sink(&mut self) -> Result<()> {
        let p = self.plan;
        let arity = match &p.ret {
            PlanReturn::CountStar
            | PlanReturn::Sum(_)
            | PlanReturn::Min(_)
            | PlanReturn::Max(_) => 1,
            PlanReturn::Props(ids) => ids.len(),
            PlanReturn::GroupBy { keys, aggs } => keys.len() + aggs.len(),
        };
        self.ensure(p.header.len() == arity, "sink-shape", || {
            format!("header has {} columns but the return produces {arity}", p.header.len())
        })?;
        for &(col, _) in &p.order_by {
            self.ensure(col < p.header.len(), "sink-shape", || {
                format!("ORDER BY column {col} is out of range: {} output columns", p.header.len())
            })?;
        }
        self.ensure(
            p.order_by.is_empty()
                || matches!(p.ret, PlanReturn::Props(_) | PlanReturn::GroupBy { .. }),
            "sink-shape",
            || "ORDER BY requires a row-producing return".into(),
        )?;
        self.ensure(!p.distinct || matches!(p.ret, PlanReturn::Props(_)), "sink-shape", || {
            "DISTINCT applies to projection returns only".into()
        })?;
        match &p.ret {
            PlanReturn::Props(ids) => {
                for &s in ids {
                    if s < p.slots.len() {
                        self.ensure(p.slots[s].for_return, "sink-shape", || {
                            format!(
                                "projected slot ${s} ({}) is not marked for_return; its \
                                 string values would stay dictionary-encoded",
                                p.slots[s].name
                            )
                        })?;
                    }
                }
            }
            PlanReturn::Sum(s) => {
                self.check_agg_input(&PlanAgg { func: AggFunc::Sum, slot: Some(*s) })?
            }
            PlanReturn::GroupBy { keys, aggs } => {
                for &s in keys {
                    if s < p.slots.len() {
                        self.ensure(p.slots[s].for_return, "sink-shape", || {
                            format!(
                                "grouping key slot ${s} ({}) is not marked for_return",
                                p.slots[s].name
                            )
                        })?;
                    }
                }
                for a in aggs {
                    self.check_agg_input(a)?;
                }
            }
            PlanReturn::CountStar | PlanReturn::Min(_) | PlanReturn::Max(_) => {}
        }
        Ok(())
    }

    /// Aggregate input shape: `COUNT(*)` takes no slot, everything else
    /// takes one; `SUM`/`AVG` fold arithmetically, so their input must be
    /// numeric.
    fn check_agg_input(&mut self, a: &PlanAgg) -> Result<()> {
        let p = self.plan;
        match a.func {
            AggFunc::CountStar => self
                .ensure(a.slot.is_none(), "sink-shape", || "COUNT(*) must not read a slot".into()),
            _ => {
                self.ensure(a.slot.is_some(), "sink-shape", || {
                    format!("{:?} aggregate needs an input slot", a.func)
                })?;
                let Some(s) = a.slot else { return Ok(()) };
                if s >= p.slots.len() {
                    return Ok(()); // index-range already reported by check_steps
                }
                if matches!(a.func, AggFunc::Sum | AggFunc::Avg) {
                    let dt = p.slots[s].dtype;
                    self.ensure(
                        matches!(dt, DataType::Int64 | DataType::Float64 | DataType::Date),
                        "expr-type",
                        || {
                            format!(
                                "{:?} aggregate over non-numeric slot ${s} ({}: {dt:?})",
                                a.func, p.slots[s].name
                            )
                        },
                    )?;
                }
                Ok(())
            }
        }
    }

    /// Phase 4 — estimate bookkeeping: `step_cards` stays parallel to
    /// `steps`, estimates are finite and non-negative, and a catalog without
    /// statistics implies no estimates anywhere (`card-bookkeeping`).
    fn check_cards(&mut self) -> Result<()> {
        let p = self.plan;
        self.ensure(p.step_cards.len() == p.steps.len(), "card-bookkeeping", || {
            format!(
                "step_cards has {} entries for {} steps; estimates must stay parallel",
                p.step_cards.len(),
                p.steps.len()
            )
        })?;
        let has_stats = self.catalog.stats().is_some();
        for (i, c) in p.step_cards.iter().enumerate() {
            if let Some(est) = c {
                self.ensure(est.is_finite() && *est >= 0.0, "card-bookkeeping", || {
                    format!("step {} estimate {est} is not a finite non-negative count", i + 1)
                })?;
                self.ensure(has_stats, "card-bookkeeping", || {
                    format!(
                        "step {} carries estimate {est} but the catalog has no statistics",
                        i + 1
                    )
                })?;
            }
        }
        if let Some(est) = p.sink_card {
            self.ensure(est.is_finite() && est >= 0.0, "card-bookkeeping", || {
                format!("sink estimate {est} is not a finite non-negative count")
            })?;
            self.ensure(has_stats, "card-bookkeeping", || {
                format!("sink carries estimate {est} but the catalog has no statistics")
            })?;
        }
        Ok(())
    }
}

/// Shared with [`Value::data_type`]: keep the import used and the rule
/// docs honest about where comparability comes from.
const _: fn(&Value) -> Option<DataType> = Value::data_type;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::plan;
    use crate::query::{col, gt, lit, PatternQuery};
    use gfcl_storage::{ColumnarGraph, RawGraph, StorageConfig};

    fn catalog() -> Catalog {
        ColumnarGraph::build(&RawGraph::example(), StorageConfig::default())
            .unwrap()
            .catalog()
            .clone()
    }

    #[test]
    fn accepts_planner_output_and_counts_checks() {
        let cat = catalog();
        let q = PatternQuery::builder()
            .node("a", "PERSON")
            .node("b", "PERSON")
            .edge("e", "FOLLOWS", "a", "b")
            .filter(gt(col("a", "age"), lit(30)))
            .returns(&[("a", "name"), ("b", "name")])
            .build();
        let p = plan(&q, &cat).unwrap();
        let r1 = verify_plan(&p, &cat).unwrap();
        let r2 = verify_plan(&p, &cat).unwrap();
        assert!(r1.checks > 10, "a real plan exercises many checks, got {}", r1.checks);
        assert_eq!(r1, r2, "check count is deterministic");
    }

    #[test]
    fn comparability_matches_value_compare() {
        use DataType::*;
        assert!(comparable(Int64, Date) && comparable(Float64, Int64));
        assert!(!comparable(Date, Float64), "Value::compare treats these as UNKNOWN");
        assert!(!comparable(String, Int64) && !comparable(Bool, Int64));
        assert!(comparable(String, String) && comparable(Bool, Bool));
    }
}

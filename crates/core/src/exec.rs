//! The list-based processor: physical operators and plan compilation
//! (Section 6.2).
//!
//! This module owns the *static* half of execution: compiling a
//! [`LogicalPlan`] into a `Pipeline` of physical operators plus the
//! intermediate [`Chunk`] they fill. The *dynamic* half — driving one or
//! more pipelines to completion and merging their sink states — lives in
//! [`crate::driver`], which instantiates one `Pipeline` per worker thread
//! from the same plan (morsel-driven parallelism).
//!
//! Operators pull chunk *states* from their child: each state is one
//! configuration of the intermediate chunk's list groups (flattened
//! positions + filled blocks) representing a set of tuples. The operators:
//!
//! * `ScanAll` / `ScanPk` — claim `[next, next + 1024)` vertex ranges (the
//!   paper's default morsel) from a shared atomic [`ScanCursor`], so
//!   multiple pipelines over the same plan partition the scan without
//!   coordination beyond one `fetch_add` per morsel.
//! * `ListExtend` — n-side joins over a CSR: flattens its source group
//!   (iterating its selected positions across calls) and fills the output
//!   group with **zero-copy views** of the current vertex's adjacency list.
//! * `ColumnExtend` — single-cardinality joins via vertex columns: appends
//!   neighbour blocks to the *same* group (no new factor is needed because
//!   each tuple extends to at most one neighbour); missing edges unselect.
//! * `ReadNodeProp` / `ReadEdgeProp` — vectorized property reads in list
//!   order (Desideratum 1). Edge reads resolve through
//!   [`gfcl_storage::EdgePropRead`], so the same operator exercises
//!   property pages, edge columns, and double-indexed layouts.
//! * `Filter` — evaluates a compiled predicate over the (single) unflat
//!   group among its inputs, broadcasting flat operands, and ANDs the
//!   result into the group's selection mask.
//!
//! The sinks (in [`crate::driver`]) implement the Section 6.2
//! aggregation-on-compressed-data trick: `COUNT(*)` multiplies group
//! contributions without ever enumerating tuples.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use gfcl_columnar::{Column, Dictionary};
use gfcl_common::{DataType, Direction, Error, LabelId, Result, Value};
use gfcl_storage::{AdjIndex, ColumnarGraph, GraphView, StrExt};

use crate::agg::{AggState, GroupTable, OrdValue};
use crate::chunk::{Chunk, ListGroup, NodeData, ValueVector, VecRef};
use crate::plan::{LogicalPlan, PlanAgg, PlanStep, SlotSource};
use crate::pred::{
    compile_pred, compile_row_pred, compile_scan_pred, BlockVerdict, CPred, EvalCtx, RowPred,
    ScanPred, SlotCol,
};

// Re-export the driver entry points here so `exec::execute` keeps working
// as the canonical "run a plan on the columnar graph" call.
pub use crate::driver::{execute, execute_with, ExecOptions};

/// Default scan morsel size (the paper's block size for scans, and the unit
/// of work handed to each parallel pipeline).
pub const SCAN_MORSEL: usize = 1024;

/// The shared scan cursor: hands out disjoint `[start, end)` vertex-offset
/// morsels to however many pipelines pull from it. One `fetch_add` per
/// morsel is the only cross-worker synchronization in the whole executor —
/// everything downstream of the scan is thread-private.
///
/// A single pipeline pulling from a fresh cursor sees exactly the morsel
/// sequence the serial executor produced (`[0, 1024)`, `[1024, 2048)`, …),
/// which keeps `threads = 1` bit-identical to the historical serial path.
#[derive(Debug)]
pub struct ScanCursor {
    next: AtomicU64,
    total: u64,
    /// Morsel size the scan operator claims per pull (tunable via
    /// [`ExecOptions::morsel_size`]; [`SCAN_MORSEL`] by default).
    morsel: u64,
    /// The owning query's governor, when one is installed: scans check it
    /// once per claimed morsel, which bounds how far a canceled query can
    /// run past its trip point.
    governor: Option<Arc<crate::govern::QueryGovernor>>,
}

impl ScanCursor {
    /// A cursor over `total` scan positions with the default morsel size.
    pub fn new(total: u64) -> ScanCursor {
        ScanCursor::with_morsel(total, SCAN_MORSEL as u64)
    }

    /// A cursor over `total` scan positions claiming `morsel` at a time.
    pub fn with_morsel(total: u64, morsel: u64) -> ScanCursor {
        debug_assert!(morsel > 0);
        ScanCursor { next: AtomicU64::new(0), total, morsel, governor: None }
    }

    /// Attach the owning query's governor; every worker pulling from this
    /// cursor then observes budget trips at morsel granularity.
    pub fn governed(mut self, gov: Arc<crate::govern::QueryGovernor>) -> ScanCursor {
        self.governor = Some(gov);
        self
    }

    /// The morsel-boundary budget/cancellation check. A no-op `Ok(())`
    /// for ungoverned cursors (unit tests, embedded uses).
    #[inline]
    pub fn checkpoint(&self) -> Result<()> {
        match &self.governor {
            Some(gov) => gov.checkpoint(),
            None => Ok(()),
        }
    }

    /// Cursor sized for `plan`'s scan step (`ScanPk` is a single morsel).
    pub fn for_plan(g: &ColumnarGraph, plan: &LogicalPlan) -> Result<ScanCursor> {
        ScanCursor::for_plan_with(g, plan, SCAN_MORSEL as u64)
    }

    /// [`ScanCursor::for_plan`] with an explicit morsel size.
    pub fn for_plan_with(g: &ColumnarGraph, plan: &LogicalPlan, morsel: u64) -> Result<ScanCursor> {
        ScanCursor::for_plan_view(GraphView::clean(g), plan, morsel)
    }

    /// Cursor sized for `plan`'s scan over a (possibly delta-overlaid)
    /// snapshot view: scans cover the baseline rows plus every delta slot.
    pub fn for_plan_view(
        view: GraphView<'_>,
        plan: &LogicalPlan,
        morsel: u64,
    ) -> Result<ScanCursor> {
        match plan.steps.first() {
            Some(PlanStep::ScanAll { node, .. }) => {
                Ok(ScanCursor::with_morsel(view.scan_total(plan.nodes[*node].label), morsel))
            }
            Some(PlanStep::ScanPk { .. }) => Ok(ScanCursor::with_morsel(1, morsel)),
            _ => Err(Error::Plan("plan does not start with a scan".into())),
        }
    }

    /// The morsel size scans claim from this cursor.
    pub fn morsel(&self) -> u64 {
        self.morsel
    }

    /// Claim the next morsel of up to `morsel` positions. Returns `None`
    /// once the scan is exhausted.
    #[inline]
    pub fn claim(&self, morsel: u64) -> Option<(u64, u64)> {
        debug_assert!(morsel > 0);
        let start = self.next.fetch_add(morsel, Ordering::Relaxed);
        if start >= self.total {
            None
        } else {
            let end = (start + morsel).min(self.total);
            debug_assert!(check_morsel_bounds(start, end, self.total).is_ok());
            Some((start, end))
        }
    }

    /// Total number of scan positions this cursor covers.
    pub fn total(&self) -> u64 {
        self.total
    }
}

/// The morsel-partitioning invariant, named so a violation is diagnosable:
/// every range a [`ScanCursor`] hands out must be non-empty, in order, and
/// inside the scan's `total` positions. A failure here means concurrent
/// workers received overlapping or out-of-bounds morsels — a partitioning
/// bug that would silently double-count or skip tuples if left to surface
/// as a downstream index panic.
pub fn check_morsel_bounds(start: u64, end: u64, total: u64) -> Result<()> {
    if start < end && end <= total {
        Ok(())
    } else {
        Err(Error::Exec(format!(
            "morsel invariant violated: claimed [{start}, {end}) over {total} scan positions \
             (require start < end <= total)"
        )))
    }
}

/// A physical operator. `ops[i]`'s child is `ops[i-1]`; `ops[0]` is a scan.
enum Op<'g> {
    ScanAll {
        label: LabelId,
        out: VecRef,
        cursor: Arc<ScanCursor>,
        /// Pushed-down predicates, compiled against the scanned label's
        /// property columns. The scan consults their zone maps per block
        /// (skipping morsels no row of which can match) and seeds the
        /// group's selection mask from the survivors — before any
        /// `ReadNodeProp` touches a column.
        pushed: Vec<ScanPred<'g>>,
        /// The pushed predicates recompiled for row-at-a-time evaluation
        /// through the snapshot view — used only on morsels the delta
        /// touches, where positional column reads may be stale.
        row_pushed: Vec<RowPred<'g>>,
        /// Does the snapshot's delta touch this label's vertices at all?
        /// `false` ⇒ the clean zone-map path is exact for every morsel.
        touched: bool,
        /// Baseline vertex count; offsets at or past it are delta slots.
        n_base: u64,
        /// Scratch selection mask, reused across morsels.
        mask: Vec<bool>,
        /// Scratch per-predicate block verdicts, reused across blocks.
        verdicts: Vec<BlockVerdict>,
        /// Pages pinned for the morsel being probed (paged columns only):
        /// rows of inconclusive blocks are faulted once per morsel, not
        /// once per row, and released when the next morsel is claimed.
        pins: Vec<std::sync::Arc<Vec<u8>>>,
    },
    ScanPk {
        label: LabelId,
        key: i64,
        out: VecRef,
        cursor: Arc<ScanCursor>,
    },
    ListExtend {
        label: LabelId,
        dir: Direction,
        nbr_label: LabelId,
        from: VecRef,
        out_group: usize,
        /// Does the snapshot's delta touch this adjacency (or insert
        /// vertices on the from side)? `false` ⇒ zero-copy CSR views.
        maybe_dirty: bool,
        /// Baseline vertex count of the from-side label: offsets past it
        /// have no CSR entry and always take the merged path.
        from_count: u64,
        /// A chunk state is held from the child and being iterated.
        active: bool,
        /// This op flattens the source group (it arrived unflat).
        owns_iter: bool,
        pos: i64,
        single_shot_done: bool,
    },
    ColumnExtend {
        label: LabelId,
        dir: Direction,
        nbr_label: LabelId,
        from: VecRef,
        node_out: VecRef,
        /// Location of the `SingleEdge` descriptor vector (tag storage on
        /// the dirty path).
        edge_out: VecRef,
        /// Does the snapshot's delta touch this adjacency?
        maybe_dirty: bool,
    },
    ReadNodeProp {
        node: VecRef,
        out: VecRef,
        label: LabelId,
        prop: usize,
        dtype: DataType,
        /// Does the snapshot's delta touch this label's vertices? `true` ⇒
        /// values resolve row-at-a-time through the view.
        touched: bool,
        /// Pages pinned for the chunk being filled (paged columns only).
        pins: Vec<std::sync::Arc<Vec<u8>>>,
    },
    ReadEdgeProp {
        edge: VecRef,
        out: VecRef,
        prop: usize,
        dtype: DataType,
    },
    Filter {
        pred: CPred,
        mask: Vec<bool>,
    },
}

/// An edge-ID-resolving property read reached an adjacency index without
/// CSR backing. The storage layer only hands out [`gfcl_storage::EdgePropRead`]
/// variants it can serve, so this indicates a layout/catalog mismatch;
/// surface it as a storage error rather than unwinding a worker.
fn csr_missing() -> Error {
    Error::Storage("edge property read requires a CSR-backed adjacency list".into())
}

/// Pull the next chunk state through `ops`.
fn pull(ops: &mut [Op<'_>], view: GraphView<'_>, chunk: &mut Chunk) -> Result<bool> {
    let g = view.base();
    // lint: allow(compile() always emits a scan as ops[0]; the plan
    // verifier's scan-first rule rejects scanless plans before compilation)
    let (op, children) = ops.split_last_mut().expect("pipeline has at least a scan");
    match op {
        Op::ScanAll {
            label,
            out,
            cursor,
            pushed,
            row_pushed,
            touched,
            n_base,
            mask,
            verdicts,
            pins,
        } => loop {
            let Some((start, end)) = cursor.claim(cursor.morsel()) else {
                return Ok(false);
            };
            // Morsel-boundary fault-domain check: a canceled/over-budget
            // query stops here even when zone maps prune every morsel
            // (the `continue` below never reaches the driver loop).
            cursor.checkpoint()?;
            pins.clear();
            let n = (end - start) as usize;
            // Evaluate the pushed predicates morsel-wide: one zone-map
            // verdict per overlapping block, row evaluation only where the
            // verdict is inconclusive. A morsel with no survivor is
            // skipped without ever materializing its chunk state. Blocks
            // the snapshot's delta touches (tombstones, updates, or
            // appended slots) fall back to row-at-a-time evaluation
            // through the view; pristine baseline blocks keep full
            // zone-map pruning.
            let mut all_selected = true;
            if *touched || !pushed.is_empty() {
                mask.clear();
                mask.resize(n, false);
                let mut any_selected = false;
                let zb = gfcl_columnar::ZONE_BLOCK as u64;
                let mut bs = start;
                while bs < end {
                    let block = (bs / zb) as usize;
                    let be = ((bs / zb + 1) * zb).min(end);
                    let pristine =
                        !*touched || (be <= *n_base && !view.base_range_touched(*label, bs, be));
                    if !pristine {
                        for v in bs..be {
                            let keep = view.vertex_live(*label, v)
                                && row_pushed.iter().all(|p| p.holds_row(view, *label, v));
                            // lint: allow(v in [start, end); mask has
                            // end - start entries)
                            mask[(v - start) as usize] = keep;
                            any_selected |= keep;
                            all_selected &= keep;
                        }
                        bs = be;
                        continue;
                    }
                    // Per-predicate verdicts: in a Mixed block, predicates
                    // the zone map already proved AllTrue are skipped in
                    // the row loop (only the inconclusive ones pay probes).
                    verdicts.clear();
                    verdicts.extend(pushed.iter().map(|p| p.prune(block)));
                    let combined = verdicts.iter().fold(BlockVerdict::AllTrue, |v, p| v.and(*p));
                    match combined {
                        BlockVerdict::AllFalse => {
                            all_selected = false;
                            // The zone map proved no row probe is needed:
                            // the block's pages are never faulted. Credit
                            // the skip to the pool's I/O accounting.
                            for p in pushed.iter() {
                                p.for_each_column(&mut |c| {
                                    c.note_skipped_rows(bs as usize, be as usize);
                                });
                            }
                        }
                        BlockVerdict::AllTrue => {
                            // lint: allow(bs/be lie in [start, end] and
                            // mask.len() == end - start by construction)
                            mask[(bs - start) as usize..(be - start) as usize].fill(true);
                            any_selected = true;
                        }
                        BlockVerdict::Mixed => {
                            // Fault each inconclusive predicate's pages for
                            // this block once, up front, and hold the pins
                            // through the row probes below.
                            for (p, &vd) in pushed.iter().zip(verdicts.iter()) {
                                if vd != BlockVerdict::AllTrue {
                                    p.for_each_column(&mut |c| {
                                        c.pin_rows(bs as usize, be as usize, pins);
                                    });
                                }
                            }
                            for v in bs..be {
                                let keep = pushed
                                    .iter()
                                    .zip(verdicts.iter())
                                    .filter(|(_, &vd)| vd != BlockVerdict::AllTrue)
                                    .all(|(p, _)| p.holds_at(v as usize));
                                // lint: allow(v in [start, end); mask has
                                // end - start entries)
                                mask[(v - start) as usize] = keep;
                                any_selected |= keep;
                                all_selected &= keep;
                            }
                        }
                    }
                    bs = be;
                }
                if !any_selected {
                    continue; // the whole morsel is pruned
                }
            }
            let vals: Vec<u64> = (start..end).collect();
            let group = &mut chunk.groups[out.group];
            group.reset(n);
            group.vectors[out.vec] =
                ValueVector::Node { label: *label, data: NodeData::Owned(vals) };
            if !all_selected {
                group.and_mask(mask);
            }
            return Ok(true);
        },
        Op::ScanPk { label, key, out, cursor } => {
            if cursor.claim(1).is_none() {
                return Ok(false);
            }
            match view.lookup_pk(*label, *key) {
                Some(off) => {
                    let group = &mut chunk.groups[out.group];
                    group.reset(1);
                    group.vectors[out.vec] =
                        ValueVector::Node { label: *label, data: NodeData::Owned(vec![off]) };
                    Ok(true)
                }
                None => Ok(false),
            }
        }
        Op::ListExtend {
            label,
            dir,
            nbr_label,
            from,
            out_group,
            maybe_dirty,
            from_count,
            active,
            owns_iter,
            pos,
            single_shot_done,
        } => {
            loop {
                if !*active {
                    if !pull(children, view, chunk)? {
                        return Ok(false);
                    }
                    *active = true;
                    *owns_iter = !chunk.groups[from.group].is_flat();
                    *pos = -1;
                    *single_shot_done = false;
                }
                // Advance to the next selected source position.
                let src_idx = if *owns_iter {
                    let fg = &mut chunk.groups[from.group];
                    let mut p = *pos + 1;
                    while (p as usize) < fg.len && !fg.selected(p as usize) {
                        p += 1;
                    }
                    if (p as usize) < fg.len {
                        *pos = p;
                        fg.cur_idx = p;
                        Some(p as usize)
                    } else {
                        None
                    }
                } else if *single_shot_done {
                    None
                } else {
                    *single_shot_done = true;
                    Some(chunk.groups[from.group].cur_idx as usize)
                };
                let Some(i) = src_idx else {
                    *active = false;
                    continue;
                };
                let src = chunk.groups[from.group].vectors[from.vec].node_offset(g, i);
                if *maybe_dirty && (src >= *from_count || view.edge_list_dirty(*label, *dir, src)) {
                    // The delta touches this list (or the source vertex is
                    // delta-inserted and has no CSR entry): materialize the
                    // merged adjacency with tagged edge references.
                    let (nbrs, refs) = view.merged_adj(*label, *dir, src);
                    if nbrs.is_empty() {
                        continue;
                    }
                    let og = &mut chunk.groups[*out_group];
                    og.reset(nbrs.len());
                    og.vectors[0] =
                        ValueVector::Node { label: *nbr_label, data: NodeData::Owned(nbrs) };
                    og.vectors[1] =
                        ValueVector::EdgeRefs { label: *label, dir: *dir, from: src, refs };
                    return Ok(true);
                }
                let csr = match g.adj(*label, *dir) {
                    AdjIndex::Csr(c) => c,
                    AdjIndex::SingleCard(_) => {
                        return Err(Error::Exec("ListExtend over vertex-column adjacency".into()))
                    }
                };
                let (start, len) = csr.list(src);
                if len == 0 {
                    continue; // empty list: tuple produces no matches
                }
                let og = &mut chunk.groups[*out_group];
                og.reset(len);
                og.vectors[0] = ValueVector::Node {
                    label: *nbr_label,
                    data: NodeData::AdjView { label: *label, dir: *dir, start },
                };
                og.vectors[1] =
                    ValueVector::EdgeList { label: *label, dir: *dir, from: src, start };
                return Ok(true);
            }
        }
        Op::ColumnExtend { label, dir, nbr_label, from, node_out, edge_out, maybe_dirty } => loop {
            if !pull(children, view, chunk)? {
                return Ok(false);
            }
            let n = chunk.groups[from.group].len;
            // Reuse the output allocation across fills.
            let mut vals = match std::mem::replace(
                &mut chunk.groups[node_out.group].vectors[node_out.vec],
                ValueVector::Empty,
            ) {
                ValueVector::Node { data: NodeData::Owned(mut v), .. } => {
                    v.clear();
                    v
                }
                _ => Vec::with_capacity(n),
            };
            let mut mask = vec![true; n];
            let mut any_missing = false;
            if *maybe_dirty {
                // The delta touches this adjacency: resolve each tuple's
                // neighbour through the view and record tagged edge
                // references for downstream property reads.
                let mut tags: Vec<u64> = Vec::with_capacity(n);
                for (i, keep) in mask.iter_mut().enumerate() {
                    let off = chunk.groups[from.group].vectors[from.vec].node_offset(g, i);
                    match view.single_nbr(*label, *dir, off) {
                        Some((nb, tag)) => {
                            vals.push(nb);
                            tags.push(tag);
                        }
                        None => {
                            vals.push(0);
                            tags.push(0);
                            *keep = false;
                            any_missing = true;
                        }
                    }
                }
                if let ValueVector::SingleEdge { tags: slot, .. } =
                    &mut chunk.groups[edge_out.group].vectors[edge_out.vec]
                {
                    *slot = Some(tags);
                }
            } else {
                let adj = match g.adj(*label, *dir) {
                    AdjIndex::SingleCard(s) => s,
                    AdjIndex::Csr(_) => {
                        return Err(Error::Exec("ColumnExtend over CSR adjacency".into()))
                    }
                };
                for (i, keep) in mask.iter_mut().enumerate() {
                    let off = chunk.groups[from.group].vectors[from.vec].node_offset(g, i);
                    match adj.nbr(off) {
                        Some(nb) => vals.push(nb),
                        None => {
                            vals.push(0);
                            *keep = false;
                            any_missing = true;
                        }
                    }
                }
            }
            chunk.groups[node_out.group].vectors[node_out.vec] =
                ValueVector::Node { label: *nbr_label, data: NodeData::Owned(vals) };
            let fg = &mut chunk.groups[from.group];
            if any_missing {
                fg.and_mask(&mask);
            }
            if fg.is_flat() {
                if fg.selected(fg.cur_idx as usize) {
                    return Ok(true);
                }
            } else if fg.sel_count > 0 {
                return Ok(true);
            }
            // Current tuple(s) all died: pull the next state.
        },
        Op::ReadNodeProp { node, out, label, prop, dtype, touched, pins } => {
            if !pull(children, view, chunk)? {
                return Ok(false);
            }
            let n = chunk.groups[node.group].len;
            let col = g.vertex_prop(*label, *prop);
            let reuse = std::mem::replace(
                &mut chunk.groups[out.group].vectors[out.vec],
                ValueVector::Empty,
            );
            let ng = &chunk.groups[node.group];
            let node_vec = &ng.vectors[node.vec];
            if *touched {
                // The delta touches this label: every offset resolves
                // through the view (updated rows, delta slots, string
                // codes past the baseline dictionary).
                pins.clear();
                let filled = fill_vector_from_values(
                    n,
                    *dtype,
                    reuse,
                    ng.sel.as_deref(),
                    |i| view.vertex_value(*label, node_vec.node_offset(g, i), *prop),
                    col.dictionary(),
                    view.vertex_str_ext(*label, *prop),
                )?;
                chunk.groups[out.group].vectors[out.vec] = filled;
                return Ok(true);
            }
            // For a paged column, fault the chunk's page span once up front
            // (scan output is a contiguous morsel, so the span is tight);
            // skip the pre-pin for scattered gathers that would span far
            // more pages than the chunk touches.
            pins.clear();
            if col.is_paged() && n > 0 {
                let sel = ng.sel.as_deref();
                let (mut lo, mut hi) = (u64::MAX, 0u64);
                for i in 0..n {
                    if sel.is_none_or(|s| s[i]) {
                        let v = node_vec.node_offset(g, i);
                        lo = lo.min(v);
                        hi = hi.max(v);
                    }
                }
                if lo <= hi && (hi - lo) < 4 * n as u64 {
                    col.pin_rows(lo as usize, hi as usize + 1, pins);
                }
            }
            // Selection-aware: positions already unselected (by a pushed
            // scan predicate or an upstream filter) cost zero column
            // probes — nothing downstream ever reads them.
            let filled = fill_vector(col, n, *dtype, reuse, ng.sel.as_deref(), |i| {
                node_vec.node_offset(g, i)
            });
            chunk.groups[out.group].vectors[out.vec] = filled;
            Ok(true)
        }
        Op::ReadEdgeProp { edge, out, prop, dtype } => {
            if !pull(children, view, chunk)? {
                return Ok(false);
            }
            let n = chunk.groups[edge.group].len;
            let reuse = std::mem::replace(
                &mut chunk.groups[out.group].vectors[out.vec],
                ValueVector::Empty,
            );
            let eg = &chunk.groups[edge.group];
            let sel = eg.sel.as_deref();
            let filled = match &eg.vectors[edge.vec] {
                ValueVector::EdgeList { label, dir, from, start } => {
                    let read = g.edge_prop_read(*label, *dir, *prop)?;
                    let (label, dir, from, start) = (*label, *dir, *from, *start);
                    // Hoist the access-path resolution out of the
                    // per-element loop: each layout reduces to one bulk
                    // fill over the list's flat positions. Only the
                    // non-indexed direction of the page layout still pays
                    // a per-element neighbour lookup.
                    use gfcl_storage::EdgePropRead;
                    match read {
                        // Indexed direction: the flat index IS the CSR
                        // position — a purely sequential fill.
                        EdgePropRead::ByPosition(col) => {
                            fill_vector(col, n, *dtype, reuse, sel, |i| start + i as u64)
                        }
                        EdgePropRead::ByEdgeId(col) => {
                            let csr = g.adj(label, dir).as_csr().ok_or_else(csr_missing)?;
                            fill_vector(col, n, *dtype, reuse, sel, |i| {
                                csr.edge_id_at(start + i as u64)
                            })
                        }
                        EdgePropRead::ByPageOffset { pages, col, nbr_is_src } => {
                            let csr = g.adj(label, dir).as_csr().ok_or_else(csr_missing)?;
                            if nbr_is_src {
                                // Non-indexed direction: the page is keyed
                                // by the neighbour, resolved per element.
                                fill_vector(col, n, *dtype, reuse, sel, |i| {
                                    let pos = start + i as u64;
                                    pages.flat_index(csr.nbr_at(pos), csr.edge_id_at(pos))
                                })
                            } else {
                                fill_vector(col, n, *dtype, reuse, sel, |i| {
                                    pages.flat_index(from, csr.edge_id_at(start + i as u64))
                                })
                            }
                        }
                        EdgePropRead::ByVertex { .. } => {
                            let col_probe =
                                g.resolve_edge_prop(read, label, dir, from, Some(start)).0;
                            fill_vector(col_probe, n, *dtype, reuse, sel, |i| {
                                g.resolve_edge_prop(read, label, dir, from, Some(start + i as u64))
                                    .1
                            })
                        }
                    }
                }
                ValueVector::EdgeRefs { label, dir, from, refs } => {
                    // Merged adjacency list: each element is a tagged edge
                    // reference (baseline CSR position or delta index),
                    // resolved value-at-a-time through the view.
                    let col = edge_prop_col(g.edge_prop_read(*label, *dir, *prop)?);
                    let (label, dir, from) = (*label, *dir, *from);
                    let mut vals: Vec<Value> = Vec::with_capacity(n);
                    for i in 0..n {
                        vals.push(if sel.is_none_or(|m| m[i]) {
                            view.edge_value(label, dir, from, refs[i], *prop)?
                        } else {
                            Value::Null
                        });
                    }
                    fill_vector_from_values(
                        n,
                        *dtype,
                        reuse,
                        sel,
                        |i| vals[i].clone(),
                        col.dictionary(),
                        view.edge_str_ext(label, dir, *prop),
                    )?
                }
                ValueVector::SingleEdge { label, dir, from_vec, nbr_vec, tags } => {
                    let read = g.edge_prop_read(*label, *dir, *prop)?;
                    if let Some(tags) = tags {
                        // Dirty path: tagged references recorded by
                        // `ColumnExtend` resolve through the view.
                        let col = edge_prop_col(read);
                        let vecs = &eg.vectors;
                        let mut vals: Vec<Value> = Vec::with_capacity(n);
                        for i in 0..n {
                            vals.push(if sel.is_none_or(|m| m[i]) {
                                let from = vecs[*from_vec].node_offset(g, i);
                                view.edge_value(*label, *dir, from, tags[i], *prop)?
                            } else {
                                Value::Null
                            });
                        }
                        fill_vector_from_values(
                            n,
                            *dtype,
                            reuse,
                            sel,
                            |i| vals[i].clone(),
                            col.dictionary(),
                            view.edge_str_ext(*label, *dir, *prop),
                        )?
                    } else {
                        let (col, endpoint_is_nbr) =
                            match read {
                                gfcl_storage::EdgePropRead::ByVertex { col, endpoint_is_nbr } => {
                                    (col, endpoint_is_nbr)
                                }
                                _ => return Err(Error::Exec(
                                    "single-cardinality edge must read props via vertex columns"
                                        .into(),
                                )),
                            };
                        let src_vec = if endpoint_is_nbr { *nbr_vec } else { *from_vec };
                        let vecs = &eg.vectors;
                        fill_vector(col, n, *dtype, reuse, sel, |i| vecs[src_vec].node_offset(g, i))
                    }
                }
                _ => return Err(Error::Exec("edge property read on non-edge vector".into())),
            };
            chunk.groups[out.group].vectors[out.vec] = filled;
            Ok(true)
        }
        Op::Filter { pred, mask } => loop {
            if !pull(children, view, chunk)? {
                return Ok(false);
            }
            // Find the unflat group among the predicate's inputs.
            let mut target: Option<usize> = None;
            let mut multi = false;
            for r in pred.vec_refs() {
                if !chunk.groups[r.group].is_flat() {
                    if target.is_some() && target != Some(r.group) {
                        multi = true;
                    }
                    target = Some(r.group);
                }
            }
            if multi {
                return Err(Error::Exec(
                    "filter spans two unflat list groups; the planner must flatten one first"
                        .into(),
                ));
            }
            match target {
                None => {
                    // All operands flat: keep/drop the single current tuple.
                    let ctx = EvalCtx { chunk, target: usize::MAX, pos: 0 };
                    if pred.holds(&ctx) {
                        return Ok(true);
                    }
                }
                Some(tg) => {
                    let len = chunk.groups[tg].len;
                    mask.clear();
                    for p in 0..len {
                        let keep = chunk.groups[tg].selected(p)
                            && pred.holds(&EvalCtx { chunk, target: tg, pos: p });
                        mask.push(keep);
                    }
                    let group = &mut chunk.groups[tg];
                    group.and_mask(mask);
                    if group.sel_count > 0 {
                        return Ok(true);
                    }
                }
            }
        },
    }
}

/// Vectorized read of `col` at positions given by `idx(i)` into a typed
/// block, reusing `reuse`'s allocation when the shapes match. String
/// columns stay dictionary-encoded ([`ValueVector::Code`]); decoding is
/// deferred to the sink (late materialization).
///
/// Selection-aware: positions unselected in `sel` are filled with a NULL
/// placeholder *without probing the column* — nothing downstream reads an
/// unselected position, so a selective pushed-down predicate makes every
/// later property read over the same group proportionally cheaper.
fn fill_vector(
    col: &Column,
    n: usize,
    dtype: DataType,
    reuse: ValueVector,
    sel: Option<&[bool]>,
    idx: impl Fn(usize) -> u64,
) -> ValueVector {
    let live = |i: usize| sel.is_none_or(|m| m[i]);
    match col.dtype() {
        DataType::Int64 | DataType::Date => {
            let (mut vals, mut valid) = match reuse {
                ValueVector::I64 { mut vals, mut valid, .. } => {
                    vals.clear();
                    valid.clear();
                    (vals, valid)
                }
                _ => (Vec::with_capacity(n), Vec::with_capacity(n)),
            };
            for i in 0..n {
                match if live(i) { col.get_i64(idx(i) as usize) } else { None } {
                    Some(v) => {
                        vals.push(v);
                        valid.push(true);
                    }
                    None => {
                        vals.push(0);
                        valid.push(false);
                    }
                }
            }
            ValueVector::I64 { vals, valid, date: dtype == DataType::Date }
        }
        DataType::Float64 => {
            let mut vals = Vec::with_capacity(n);
            let mut valid = Vec::with_capacity(n);
            for i in 0..n {
                match if live(i) { col.get_f64(idx(i) as usize) } else { None } {
                    Some(v) => {
                        vals.push(v);
                        valid.push(true);
                    }
                    None => {
                        vals.push(0.0);
                        valid.push(false);
                    }
                }
            }
            ValueVector::F64 { vals, valid }
        }
        DataType::Bool => {
            let mut vals = Vec::with_capacity(n);
            let mut valid = Vec::with_capacity(n);
            for i in 0..n {
                match if live(i) { col.get_bool(idx(i) as usize) } else { None } {
                    Some(v) => {
                        vals.push(v);
                        valid.push(true);
                    }
                    None => {
                        vals.push(false);
                        valid.push(false);
                    }
                }
            }
            ValueVector::Bool { vals, valid }
        }
        DataType::String => {
            let (mut vals, mut valid) = match reuse {
                ValueVector::Code { mut vals, mut valid } => {
                    vals.clear();
                    valid.clear();
                    (vals, valid)
                }
                _ => (Vec::with_capacity(n), Vec::with_capacity(n)),
            };
            for i in 0..n {
                match if live(i) { col.get_code(idx(i) as usize) } else { None } {
                    Some(v) => {
                        vals.push(v);
                        valid.push(true);
                    }
                    None => {
                        vals.push(0);
                        valid.push(false);
                    }
                }
            }
            ValueVector::Code { vals, valid }
        }
    }
}

/// The column backing an edge property, whatever the access path (used for
/// its dictionary on the value-at-a-time dirty paths).
fn edge_prop_col(read: gfcl_storage::EdgePropRead<'_>) -> &Column {
    match read {
        gfcl_storage::EdgePropRead::ByPosition(c)
        | gfcl_storage::EdgePropRead::ByEdgeId(c)
        | gfcl_storage::EdgePropRead::ByPageOffset { col: c, .. }
        | gfcl_storage::EdgePropRead::ByVertex { col: c, .. } => c,
    }
}

/// [`fill_vector`] for the snapshot-overlay paths: values arrive as
/// [`Value`]s from the view instead of positional column reads. String
/// values re-encode through the baseline dictionary, falling back to the
/// delta's string extension for values the baseline never saw — so the
/// whole pipeline stays code-typed and the sink's late-materialization
/// decode works unchanged.
fn fill_vector_from_values(
    n: usize,
    dtype: DataType,
    reuse: ValueVector,
    sel: Option<&[bool]>,
    get: impl Fn(usize) -> Value,
    dict: Option<&Dictionary>,
    ext: Option<&StrExt>,
) -> Result<ValueVector> {
    let live = |i: usize| sel.is_none_or(|m| m[i]);
    Ok(match dtype {
        DataType::Int64 | DataType::Date => {
            let (mut vals, mut valid) = match reuse {
                ValueVector::I64 { mut vals, mut valid, .. } => {
                    vals.clear();
                    valid.clear();
                    (vals, valid)
                }
                _ => (Vec::with_capacity(n), Vec::with_capacity(n)),
            };
            for i in 0..n {
                match if live(i) { get(i) } else { Value::Null } {
                    Value::Int64(v) | Value::Date(v) => {
                        vals.push(v);
                        valid.push(true);
                    }
                    _ => {
                        vals.push(0);
                        valid.push(false);
                    }
                }
            }
            ValueVector::I64 { vals, valid, date: dtype == DataType::Date }
        }
        DataType::Float64 => {
            let mut vals = Vec::with_capacity(n);
            let mut valid = Vec::with_capacity(n);
            for i in 0..n {
                match if live(i) { get(i) } else { Value::Null } {
                    Value::Float64(v) => {
                        vals.push(v);
                        valid.push(true);
                    }
                    _ => {
                        vals.push(0.0);
                        valid.push(false);
                    }
                }
            }
            ValueVector::F64 { vals, valid }
        }
        DataType::Bool => {
            let mut vals = Vec::with_capacity(n);
            let mut valid = Vec::with_capacity(n);
            for i in 0..n {
                match if live(i) { get(i) } else { Value::Null } {
                    Value::Bool(v) => {
                        vals.push(v);
                        valid.push(true);
                    }
                    _ => {
                        vals.push(false);
                        valid.push(false);
                    }
                }
            }
            ValueVector::Bool { vals, valid }
        }
        DataType::String => {
            let (mut vals, mut valid) = match reuse {
                ValueVector::Code { mut vals, mut valid } => {
                    vals.clear();
                    valid.clear();
                    (vals, valid)
                }
                _ => (Vec::with_capacity(n), Vec::with_capacity(n)),
            };
            for i in 0..n {
                match if live(i) { get(i) } else { Value::Null } {
                    Value::String(s) => {
                        let code = dict
                            .and_then(|d| d.code_of(&s))
                            .map(u64::from)
                            .or_else(|| ext.and_then(|e| e.code_of(&s)));
                        match code {
                            Some(c) => {
                                vals.push(c);
                                valid.push(true);
                            }
                            None => {
                                return Err(Error::Exec(format!(
                                    "string value {s:?} missing from both the baseline \
                                     dictionary and the delta string extension"
                                )))
                            }
                        }
                    }
                    _ => {
                        vals.push(0);
                        valid.push(false);
                    }
                }
            }
            ValueVector::Code { vals, valid }
        }
    })
}

/// Read position `idx` of a block as a [`Value`] (row materialization).
/// `sc` provides the dictionary (and any delta string extension) for
/// decoding string codes.
pub(crate) fn vector_value(v: &ValueVector, idx: usize, sc: SlotCol<'_>) -> Value {
    match v {
        ValueVector::I64 { vals, valid, date } => {
            if valid[idx] {
                if *date {
                    Value::Date(vals[idx])
                } else {
                    Value::Int64(vals[idx])
                }
            } else {
                Value::Null
            }
        }
        ValueVector::F64 { vals, valid } => {
            if valid[idx] {
                Value::Float64(vals[idx])
            } else {
                Value::Null
            }
        }
        ValueVector::Bool { vals, valid } => {
            if valid[idx] {
                Value::Bool(vals[idx])
            } else {
                Value::Null
            }
        }
        ValueVector::Code { vals, valid } => {
            if valid[idx] {
                // Code vectors are only compiled for String slots, whose
                // columns are dictionary-encoded by the slot-schema plan
                // invariant.
                let dict =
                    sc.col.and_then(Column::dictionary).expect("string slot has a dictionary"); // lint: allow(slot-schema invariant)
                let code = vals[idx];
                if (code as usize) < dict.len() {
                    Value::String(dict.decode(code).to_owned())
                } else {
                    // lint: allow(codes past the dictionary are only
                    // produced under a delta snapshot, which always wires
                    // the extension into the slot)
                    let ext = sc.ext.expect("code beyond dictionary has a delta extension");
                    Value::String(ext.decode(code).to_owned())
                }
            } else {
                Value::Null
            }
        }
        // lint: allow(callers pass property/node slots only; compile()
        // never wires an EdgeList vector into a value sink)
        _ => panic!("vector_value on non-scalar vector"),
    }
}

/// One compiled operator pipeline plus the chunk it fills: the thread-
/// private execution state of one worker. Any number of pipelines can be
/// compiled from the same [`LogicalPlan`]; pipelines sharing a
/// [`ScanCursor`] partition the scan between them.
pub(crate) struct Pipeline<'g> {
    ops: Vec<Op<'g>>,
    pub(crate) chunk: Chunk,
    /// Vector location of each plan slot.
    pub(crate) slot_refs: Vec<VecRef>,
    /// Storage column (and any delta string extension) backing each slot
    /// (dictionary decode at the sink).
    pub(crate) slot_cols: Vec<SlotCol<'g>>,
}

impl<'g> Pipeline<'g> {
    /// Pull the next chunk state through the pipeline. `false` = drained.
    pub(crate) fn next_state(&mut self, view: GraphView<'_>) -> Result<bool> {
        pull(&mut self.ops, view, &mut self.chunk)
    }
}

/// Compile `plan` into a [`Pipeline`] whose scan pulls morsels from
/// `cursor` (physical compilation). The pipeline executes against `view`:
/// a clean view compiles to exactly the historical zero-copy operators,
/// while a delta-overlaid snapshot additionally arms the per-operator
/// dirty paths (`(baseline ⊎ delta) ∖ tombstones`).
pub(crate) fn compile<'g>(
    view: GraphView<'g>,
    plan: &LogicalPlan,
    cursor: &Arc<ScanCursor>,
) -> Result<Pipeline<'g>> {
    let g = view.base();
    let mut group_vectors: Vec<Vec<ValueVector>> = Vec::new();
    let mut node_locs: Vec<Option<VecRef>> = vec![None; plan.nodes.len()];
    #[derive(Clone, Copy)]
    struct EdgeBinding {
        vref: VecRef,
    }
    let mut edge_locs: Vec<Option<EdgeBinding>> = vec![None; plan.edges.len()];
    let mut slot_refs: Vec<VecRef> = vec![VecRef { group: usize::MAX, vec: 0 }; plan.slots.len()];
    let mut slot_cols: Vec<SlotCol<'g>> = vec![SlotCol::default(); plan.slots.len()];
    let mut ops: Vec<Op<'g>> = Vec::with_capacity(plan.steps.len());

    for step in &plan.steps {
        match step {
            PlanStep::ScanAll { node, pushed } => {
                let label = plan.nodes[*node].label;
                group_vectors.push(vec![ValueVector::Empty]);
                let out = VecRef { group: 0, vec: 0 };
                node_locs[*node] = Some(out);
                // Resolve each pushed predicate's slots straight to the
                // scanned label's property columns — no chunk vector is
                // ever involved.
                let scan_cols: Vec<SlotCol<'g>> = plan
                    .slots
                    .iter()
                    .map(|def| match def.source {
                        SlotSource::NodeProp { node: n, prop } if n == *node => SlotCol {
                            col: Some(g.vertex_prop(label, prop)),
                            ext: view.vertex_str_ext(label, prop),
                        },
                        _ => SlotCol::default(),
                    })
                    .collect();
                let compiled: Vec<ScanPred<'g>> = pushed
                    .iter()
                    .map(|e| compile_scan_pred(e, &plan.slots, &scan_cols))
                    .collect::<Result<_>>()?;
                // On a touched label, recompile the same predicates for
                // row-at-a-time evaluation through the view (delta-touched
                // blocks can't trust positional column reads).
                let touched = view.vertex_label_touched(label);
                let row_compiled: Vec<RowPred<'g>> = if touched {
                    let props: Vec<Option<usize>> = plan
                        .slots
                        .iter()
                        .map(|def| match def.source {
                            SlotSource::NodeProp { node: n, prop } if n == *node => Some(prop),
                            _ => None,
                        })
                        .collect();
                    pushed
                        .iter()
                        .map(|e| compile_row_pred(e, &plan.slots, &props, &scan_cols))
                        .collect::<Result<_>>()?
                } else {
                    Vec::new()
                };
                ops.push(Op::ScanAll {
                    label,
                    out,
                    cursor: Arc::clone(cursor),
                    pushed: compiled,
                    row_pushed: row_compiled,
                    touched,
                    n_base: g.vertex_count(label) as u64,
                    mask: Vec::new(),
                    verdicts: Vec::new(),
                    pins: Vec::new(),
                });
            }
            PlanStep::ScanPk { node, key } => {
                let label = plan.nodes[*node].label;
                group_vectors.push(vec![ValueVector::Empty]);
                let out = VecRef { group: 0, vec: 0 };
                node_locs[*node] = Some(out);
                ops.push(Op::ScanPk { label, key: *key, out, cursor: Arc::clone(cursor) });
            }
            PlanStep::Extend { edge, edge_label, dir, from, to, .. } => {
                let from_ref =
                    node_locs[*from].ok_or_else(|| Error::Plan("unbound from".into()))?;
                let nbr_label = g.catalog().edge_label(*edge_label).nbr_label(*dir);
                let from_label = plan.nodes[*from].label;
                // Delta-inserted from-vertices have no adjacency entry, so
                // vertex insertions arm the dirty path even when no edge of
                // this label changed.
                let maybe_dirty = view.edge_label_touched(*edge_label, *dir)
                    || view.vertex_label_touched(from_label);
                match g.adj(*edge_label, *dir) {
                    AdjIndex::Csr(_) => {
                        let out_group = group_vectors.len();
                        group_vectors.push(vec![ValueVector::Empty, ValueVector::Empty]);
                        node_locs[*to] = Some(VecRef { group: out_group, vec: 0 });
                        edge_locs[*edge] =
                            Some(EdgeBinding { vref: VecRef { group: out_group, vec: 1 } });
                        ops.push(Op::ListExtend {
                            label: *edge_label,
                            dir: *dir,
                            nbr_label,
                            from: from_ref,
                            out_group,
                            maybe_dirty,
                            from_count: g.vertex_count(from_label) as u64,
                            active: false,
                            owns_iter: false,
                            pos: -1,
                            single_shot_done: false,
                        });
                    }
                    AdjIndex::SingleCard(_) => {
                        let gidx = from_ref.group;
                        let nv = group_vectors[gidx].len();
                        group_vectors[gidx].push(ValueVector::Empty);
                        let ev = group_vectors[gidx].len();
                        group_vectors[gidx].push(ValueVector::SingleEdge {
                            label: *edge_label,
                            dir: *dir,
                            from_vec: from_ref.vec,
                            nbr_vec: nv,
                            tags: None,
                        });
                        node_locs[*to] = Some(VecRef { group: gidx, vec: nv });
                        edge_locs[*edge] =
                            Some(EdgeBinding { vref: VecRef { group: gidx, vec: ev } });
                        ops.push(Op::ColumnExtend {
                            label: *edge_label,
                            dir: *dir,
                            nbr_label,
                            from: from_ref,
                            node_out: VecRef { group: gidx, vec: nv },
                            edge_out: VecRef { group: gidx, vec: ev },
                            maybe_dirty,
                        });
                    }
                }
            }
            PlanStep::NodeProp { node, prop, slot } => {
                let nref = node_locs[*node].ok_or_else(|| Error::Plan("unbound node".into()))?;
                let label = plan.nodes[*node].label;
                let out = VecRef { group: nref.group, vec: group_vectors[nref.group].len() };
                group_vectors[nref.group].push(ValueVector::Empty);
                slot_refs[*slot] = out;
                slot_cols[*slot] = SlotCol {
                    col: Some(g.vertex_prop(label, *prop)),
                    ext: view.vertex_str_ext(label, *prop),
                };
                let def = &plan.slots[*slot];
                ops.push(Op::ReadNodeProp {
                    node: nref,
                    out,
                    label,
                    prop: *prop,
                    dtype: def.dtype,
                    touched: view.vertex_label_touched(label),
                    pins: Vec::new(),
                });
            }
            PlanStep::EdgeProp { edge, prop, slot } => {
                let eb = edge_locs[*edge].ok_or_else(|| Error::Plan("unbound edge".into()))?;
                let elabel = plan.edges[*edge].label;
                // The column backing this slot (for dictionary compile):
                // resolve through any direction — property columns are
                // shared across directions except DoubleIndexed, where
                // dictionaries are built from the same data.
                let dir = match &group_vectors[eb.vref.group][eb.vref.vec] {
                    ValueVector::SingleEdge { dir, .. } => *dir,
                    _ => {
                        // EdgeList direction is known from the Extend step
                        // that produced it; find it in ops order.
                        plan.steps
                            .iter()
                            .find_map(|s| match s {
                                PlanStep::Extend { edge: e2, dir, .. } if e2 == edge => Some(*dir),
                                _ => None,
                            })
                            .ok_or_else(|| Error::Plan("edge prop before extend".into()))?
                    }
                };
                let read = g.edge_prop_read(elabel, dir, *prop)?;
                let col: &Column = match read {
                    gfcl_storage::EdgePropRead::ByPosition(c)
                    | gfcl_storage::EdgePropRead::ByEdgeId(c)
                    | gfcl_storage::EdgePropRead::ByPageOffset { col: c, .. }
                    | gfcl_storage::EdgePropRead::ByVertex { col: c, .. } => c,
                };
                let out = VecRef { group: eb.vref.group, vec: group_vectors[eb.vref.group].len() };
                group_vectors[eb.vref.group].push(ValueVector::Empty);
                slot_refs[*slot] = out;
                slot_cols[*slot] =
                    SlotCol { col: Some(col), ext: view.edge_str_ext(elabel, dir, *prop) };
                let def = &plan.slots[*slot];
                ops.push(Op::ReadEdgeProp { edge: eb.vref, out, prop: *prop, dtype: def.dtype });
            }
            PlanStep::Filter { expr } => {
                let pred = compile_pred(expr, &plan.slots, &slot_refs, &slot_cols)?;
                ops.push(Op::Filter { pred, mask: Vec::new() });
            }
        }
    }

    // Assemble the chunk from the collected group shapes.
    let mut chunk = Chunk::new(&group_vectors.iter().map(Vec::len).collect::<Vec<_>>());
    for (gi, vecs) in group_vectors.into_iter().enumerate() {
        chunk.groups[gi].vectors = vecs;
    }

    Ok(Pipeline { ops, chunk, slot_refs, slot_cols })
}

/// Enumerate the Cartesian product of the chunk's groups, materializing the
/// referenced slots for each represented tuple (decoding string codes
/// through their columns' dictionaries — late materialization).
pub(crate) fn enumerate_rows(
    chunk: &Chunk,
    refs: &[(VecRef, SlotCol<'_>)],
    rows: &mut Vec<Vec<Value>>,
) {
    // Positions per group: flat groups are fixed at cur_idx.
    let n_groups = chunk.groups.len();
    let mut positions = vec![0usize; n_groups];
    // Candidate position lists per group.
    let per_group: Vec<Vec<usize>> =
        chunk
            .groups
            .iter()
            .map(|gr| {
                if gr.is_flat() {
                    vec![gr.cur_idx as usize]
                } else {
                    gr.iter_selected().collect()
                }
            })
            .collect();
    if per_group.iter().any(Vec::is_empty) {
        return;
    }
    let mut cursor = vec![0usize; n_groups];
    loop {
        for gi in 0..n_groups {
            positions[gi] = per_group[gi][cursor[gi]];
        }
        rows.push(
            refs.iter()
                .map(|(r, col)| {
                    vector_value(&chunk.groups[r.group].vectors[r.vec], positions[r.group], *col)
                })
                .collect(),
        );
        // Odometer increment.
        let mut gi = n_groups;
        loop {
            if gi == 0 {
                return;
            }
            gi -= 1;
            cursor[gi] += 1;
            if cursor[gi] < per_group[gi].len() {
                break;
            }
            cursor[gi] = 0;
        }
    }
}

// ---- Aggregation sinks over factorized chunk states ------------------------
//
// The Section 6.2 trick generalized: a chunk state represents the Cartesian
// product of its list groups, so any aggregate that is a sum over tuples can
// be computed per *position* with a multiplicity — the product of the other
// groups' contributions — instead of per tuple. The grouped sinks below
// enumerate only the positions of the groups holding *grouping keys*
// (usually flat by the time the sink runs); the groups holding aggregated
// extension lists are folded value-by-value with their multiplicity and are
// **never** flattened into tuples.

/// Iterate the Cartesian product of the selected positions of `groups`
/// (flat groups contribute their single `cur_idx`), calling `f` with the
/// current position of each listed group (parallel to `groups`). With an
/// empty `groups` list, `f` is called exactly once.
fn for_each_combo(chunk: &Chunk, groups: &[usize], mut f: impl FnMut(&[usize])) {
    let per: Vec<Vec<usize>> = groups
        .iter()
        .map(|&gi| {
            let gr = &chunk.groups[gi];
            if gr.is_flat() {
                vec![gr.cur_idx as usize]
            } else {
                gr.iter_selected().collect()
            }
        })
        .collect();
    if per.iter().any(Vec::is_empty) {
        return;
    }
    let mut cursor = vec![0usize; groups.len()];
    let mut pos = vec![0usize; groups.len()];
    loop {
        for i in 0..groups.len() {
            pos[i] = per[i][cursor[i]];
        }
        f(&pos);
        let mut i = groups.len();
        loop {
            if i == 0 {
                return;
            }
            i -= 1;
            cursor[i] += 1;
            if cursor[i] < per[i].len() {
                break;
            }
            cursor[i] = 0;
        }
    }
}

/// Grouped-aggregation sink: flattens only the grouping keys, folding every
/// other list group into the per-group [`AggState`]s by multiplicity.
///
/// Consecutive chunk states almost always carry the *same* key values (the
/// flattened scan side advances one position per many downstream states),
/// so the sink accumulates the current key's states in a pending run and
/// touches the group table only on key changes — one table probe per key
/// run instead of one per chunk state.
pub(crate) struct GroupBySink<'g> {
    /// Key slot locations + backing columns (string decode at the sink).
    key_refs: Vec<(VecRef, SlotCol<'g>)>,
    /// Aggregate input locations (`None` = `COUNT(*)`).
    agg_refs: Vec<Option<(VecRef, SlotCol<'g>)>>,
    /// Distinct groups the keys live in, sorted (the only groups whose
    /// positions the sink ever enumerates).
    key_groups: Vec<usize>,
    aggs: Vec<PlanAgg>,
    table: GroupTable,
    /// The run cache: states accumulated for `pending_key` since it was
    /// last seen changing.
    pending_key: Option<Vec<Value>>,
    pending: Vec<AggState>,
    /// Scratch: per-group contributions of the current chunk state.
    contrib: Vec<u64>,
    /// Scratch: key values of the current state.
    key_buf: Vec<Value>,
    /// Heap growth of the pending run not yet folded into the table's
    /// estimate (flushed together with the run itself).
    pending_bytes: u64,
}

impl<'g> GroupBySink<'g> {
    pub(crate) fn new(pipe: &Pipeline<'g>, keys: &[usize], aggs: &[PlanAgg]) -> GroupBySink<'g> {
        let key_refs: Vec<_> =
            keys.iter().map(|&s| (pipe.slot_refs[s], pipe.slot_cols[s])).collect();
        let agg_refs: Vec<_> =
            aggs.iter().map(|a| a.slot.map(|s| (pipe.slot_refs[s], pipe.slot_cols[s]))).collect();
        let mut key_groups: Vec<usize> = key_refs.iter().map(|(r, _)| r.group).collect();
        key_groups.sort_unstable();
        key_groups.dedup();
        GroupBySink {
            key_refs,
            agg_refs,
            key_groups,
            aggs: aggs.to_vec(),
            table: GroupTable::new(aggs),
            pending_key: None,
            pending: Vec::new(),
            contrib: Vec::new(),
            key_buf: Vec::new(),
            pending_bytes: 0,
        }
    }

    /// Merge the pending run into the table.
    fn flush(&mut self) {
        if let Some(key) = self.pending_key.take() {
            let states = self.table.group(key);
            for (a, b) in states.iter_mut().zip(self.pending.drain(..)) {
                a.merge(b);
            }
        }
        self.table.add_bytes(self.pending_bytes);
        self.pending_bytes = 0;
    }

    /// The sink's current heap estimate (table plus pending run), polled
    /// by the driver after each absorbed state.
    pub(crate) fn approx_bytes(&self) -> u64 {
        self.table.approx_bytes() + self.pending_bytes
    }

    /// Fold one chunk state into the sink.
    pub(crate) fn absorb(&mut self, chunk: &Chunk) {
        self.contrib.clear();
        self.contrib.extend(chunk.groups.iter().map(ListGroup::contribution));
        if self.contrib.contains(&0) {
            return; // the state represents no tuples
        }
        // Tuples per key combination contributed by the non-key groups.
        let mult_nonkey: u64 = self
            .contrib
            .iter()
            .enumerate()
            .filter(|(gi, _)| !self.key_groups.contains(gi))
            .map(|(_, &c)| c)
            .product();

        if self.key_groups.iter().all(|&g| chunk.groups[g].is_flat()) {
            // Fast path: every key group is flat — a single key combination
            // per state, folded into the run cache.
            self.key_buf.clear();
            for (r, col) in &self.key_refs {
                let gr = &chunk.groups[r.group];
                self.key_buf.push(vector_value(&gr.vectors[r.vec], gr.cur_idx as usize, *col));
            }
            if self.pending_key.as_deref() != Some(&self.key_buf[..]) {
                self.flush();
                self.pending_key = Some(self.key_buf.clone());
                self.pending = self.aggs.iter().map(|a| AggState::new(a.func)).collect();
            }
            let (agg_refs, key_groups, contrib, pending) =
                (&self.agg_refs, &self.key_groups, &self.contrib, &mut self.pending);
            let mut grew = 0u64;
            for (state, input) in pending.iter_mut().zip(agg_refs) {
                grew += fold_agg(state, input, chunk, key_groups, contrib, mult_nonkey, |gi| {
                    chunk.groups[gi].cur_idx.max(0) as usize
                });
            }
            self.pending_bytes += grew;
            return;
        }

        // General path: some key group is still unflat — enumerate the key
        // combinations (and only those), probing the table per combination.
        self.flush();
        let (key_refs, agg_refs, key_groups, contrib, table) =
            (&self.key_refs, &self.agg_refs, &self.key_groups, &self.contrib, &mut self.table);
        for_each_combo(chunk, key_groups, |pos| {
            // Position of a group: the combo position for key groups, the
            // flattened `cur_idx` otherwise (only used for flat groups).
            let pos_in = |gi: usize| match key_groups.iter().position(|&k| k == gi) {
                Some(i) => pos[i],
                None => chunk.groups[gi].cur_idx.max(0) as usize,
            };
            let key: Vec<Value> = key_refs
                .iter()
                .map(|(r, col)| {
                    vector_value(&chunk.groups[r.group].vectors[r.vec], pos_in(r.group), *col)
                })
                .collect();
            let mut grew = 0u64;
            {
                let states = table.group(key);
                for (state, input) in states.iter_mut().zip(agg_refs) {
                    grew += fold_agg(state, input, chunk, key_groups, contrib, mult_nonkey, pos_in);
                }
            }
            table.add_bytes(grew);
        });
    }

    /// Flush the run cache and hand back the completed table.
    pub(crate) fn finish(mut self) -> GroupTable {
        self.flush();
        self.table
    }
}

/// Fold one aggregate input of one chunk state into `state`.
/// `pos_in` resolves the current position of a *key* group; `mult_nonkey`
/// is the tuple count contributed by all non-key groups. Returns the
/// state's heap growth (see [`AggState::update`]) for memory budgeting.
fn fold_agg(
    state: &mut AggState,
    input: &Option<(VecRef, SlotCol<'_>)>,
    chunk: &Chunk,
    key_groups: &[usize],
    contrib: &[u64],
    mult_nonkey: u64,
    pos_in: impl Fn(usize) -> usize,
) -> u64 {
    match input {
        // COUNT(*): pure multiplicity arithmetic, no values read.
        None => {
            state.add_count(mult_nonkey);
            0
        }
        Some((r, col)) => {
            let vec = &chunk.groups[r.group].vectors[r.vec];
            if key_groups.contains(&r.group) {
                // The input sits in a key group: one value per combo,
                // weighted by the other groups.
                state.update(&vector_value(vec, pos_in(r.group), *col), mult_nonkey)
            } else {
                // The input sits in an extension group: fold its selected
                // values with the multiplicity of every group but itself —
                // never enumerating tuples.
                let excl = mult_nonkey / contrib[r.group];
                let gr = &chunk.groups[r.group];
                if gr.is_flat() {
                    state.update(&vector_value(vec, gr.cur_idx as usize, *col), excl)
                } else {
                    let mut grew = 0u64;
                    for i in gr.iter_selected() {
                        grew += state.update(&vector_value(vec, i, *col), excl);
                    }
                    grew
                }
            }
        }
    }
}

/// Top-k sink for ordered/limited projections: buffers rows, pruning to the
/// limit by the total row order whenever the buffer grows past a threshold,
/// so a `LIMIT k` query holds O(k) rows per worker regardless of result
/// size. The per-worker prune is safe because the top-k of a union is the
/// top-k of the per-worker top-ks.
pub(crate) struct TopKSink<'g> {
    refs: Vec<(VecRef, SlotCol<'g>)>,
    order_by: Vec<(usize, bool)>,
    limit: Option<usize>,
    pub(crate) rows: Vec<Vec<Value>>,
    /// Heap estimate of `rows`, kept incrementally (recomputed only on
    /// the rare prune), polled by the driver for memory budgeting.
    pub(crate) bytes: u64,
}

impl<'g> TopKSink<'g> {
    pub(crate) fn new(pipe: &Pipeline<'g>, plan: &LogicalPlan, slots: &[usize]) -> TopKSink<'g> {
        TopKSink {
            refs: slots.iter().map(|&s| (pipe.slot_refs[s], pipe.slot_cols[s])).collect(),
            order_by: plan.order_by.clone(),
            limit: plan.limit,
            rows: Vec::new(),
            bytes: 0,
        }
    }

    pub(crate) fn absorb(&mut self, chunk: &Chunk) {
        let before = self.rows.len();
        enumerate_rows(chunk, &self.refs, &mut self.rows);
        self.bytes += self.rows[before..].iter().map(|r| crate::govern::row_bytes(r)).sum::<u64>();
        if let Some(k) = self.limit {
            if self.rows.len() >= (4 * k).max(4096) {
                self.rows.sort_unstable_by(|a, b| crate::agg::cmp_rows(a, b, &self.order_by));
                self.rows.truncate(k);
                self.bytes = self.rows.iter().map(|r| crate::govern::row_bytes(r)).sum();
            }
        }
    }
}

/// DISTINCT sink: deduplicates projection rows into a canonical-order set.
/// Factorization pays off here too — only the groups actually referenced by
/// the projection are enumerated, so `DISTINCT a.x` over a many-neighbour
/// extension never walks the neighbour lists of unprojected variables.
pub(crate) struct DistinctSink<'g> {
    refs: Vec<(VecRef, SlotCol<'g>)>,
    /// Distinct groups referenced by the projection, sorted.
    ref_groups: Vec<usize>,
    pub(crate) set: std::collections::BTreeSet<Vec<OrdValue>>,
    /// Heap estimate of `set`, grown on every fresh insertion, polled by
    /// the driver for memory budgeting.
    pub(crate) bytes: u64,
}

impl<'g> DistinctSink<'g> {
    pub(crate) fn new(pipe: &Pipeline<'g>, slots: &[usize]) -> DistinctSink<'g> {
        let refs: Vec<_> = slots.iter().map(|&s| (pipe.slot_refs[s], pipe.slot_cols[s])).collect();
        let mut ref_groups: Vec<usize> = refs.iter().map(|(r, _)| r.group).collect();
        ref_groups.sort_unstable();
        ref_groups.dedup();
        DistinctSink { refs, ref_groups, set: std::collections::BTreeSet::new(), bytes: 0 }
    }

    pub(crate) fn absorb(&mut self, chunk: &Chunk) {
        if chunk.groups.iter().any(|gr| gr.contribution() == 0) {
            return;
        }
        let (refs, ref_groups, set) = (&self.refs, &self.ref_groups, &mut self.set);
        let mut grew = 0u64;
        for_each_combo(chunk, ref_groups, |pos| {
            let row: Vec<OrdValue> = refs
                .iter()
                .map(|(r, col)| {
                    // lint: allow(ref_groups is built from these same refs
                    // in new(), so every r.group is present)
                    let i = pos[ref_groups.iter().position(|&g| g == r.group).expect("ref group")];
                    OrdValue(vector_value(&chunk.groups[r.group].vectors[r.vec], i, *col))
                })
                .collect();
            let row_heap: u64 = row.iter().map(|v| crate::govern::value_bytes(&v.0)).sum();
            if set.insert(row) {
                grew += row_heap + std::mem::size_of::<Vec<OrdValue>>() as u64;
            }
        });
        self.bytes += grew;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cursor_hands_out_serial_morsel_sequence() {
        let c = ScanCursor::new(2500);
        assert_eq!(c.claim(SCAN_MORSEL as u64), Some((0, 1024)));
        assert_eq!(c.claim(SCAN_MORSEL as u64), Some((1024, 2048)));
        assert_eq!(c.claim(SCAN_MORSEL as u64), Some((2048, 2500)));
        assert_eq!(c.claim(SCAN_MORSEL as u64), None);
        assert_eq!(c.claim(SCAN_MORSEL as u64), None, "stays drained");
    }

    #[test]
    fn cursor_partitions_exactly_under_concurrency() {
        let total = 10_000u64;
        let c = ScanCursor::new(total);
        let ranges: Vec<(u64, u64)> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    s.spawn(|| {
                        let mut got = Vec::new();
                        while let Some(r) = c.claim(64) {
                            got.push(r);
                        }
                        got
                    })
                })
                .collect();
            handles.into_iter().flat_map(|h| h.join().unwrap()).collect()
        });
        let mut ranges = ranges;
        ranges.sort_unstable();
        // Disjoint, gap-free cover of [0, total).
        let mut expect = 0;
        for (s, e) in ranges {
            assert_eq!(s, expect);
            check_morsel_bounds(s, e, total).unwrap();
            expect = e;
        }
        assert_eq!(expect, total);
    }

    #[test]
    fn single_morsel_cursor_fires_once() {
        let c = ScanCursor::new(1);
        assert_eq!(c.claim(1), Some((0, 1)));
        assert_eq!(c.claim(1), None);
    }
}

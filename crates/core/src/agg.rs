//! Shared grouped-aggregation and row-finishing machinery.
//!
//! The list-based processor's grouped sinks ([`crate::exec`]) and the
//! baseline engines (`gfcl-baselines`) both fold matches into the same
//! [`GroupTable`], so cross-engine results agree byte-for-byte: the LBP
//! feeds it multiplicity-weighted values straight from unflat list groups,
//! the baselines feed it one enumerated tuple at a time, and both finish
//! through [`GroupTable::into_output`] / [`finalize_rows`], which order
//! rows by the total [`Value::total_cmp`] order before applying
//! `ORDER BY` / `LIMIT`.
//!
//! Determinism: the table is a `BTreeMap` over totally-ordered keys and
//! every aggregate state merges associatively (integer sums in `i128`,
//! `AVG` as exact sum + count divided once at the end), so the final
//! output is identical for any worker count and any morsel interleaving —
//! modulo float addition order for `SUM`/`AVG` over DOUBLE columns, which
//! inherits the whole-result `SUM` caveat.

use std::collections::{BTreeMap, BTreeSet};

use gfcl_common::{DataType, Value};

use crate::engine::QueryOutput;
use crate::plan::{LogicalPlan, PlanAgg, PlanReturn};
use crate::query::AggFunc;

/// [`Value`] wrapper whose `Ord` is [`Value::total_cmp`] — the canonical
/// key/sort ordering of grouped and distinct results.
#[derive(Debug, Clone, PartialEq)]
pub struct OrdValue(pub Value);

impl Eq for OrdValue {}

impl PartialOrd for OrdValue {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdValue {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// Should `candidate` replace `best` in a MIN (`want_min`) / MAX fold?
/// NULLs never replace anything; anything replaces NULL.
pub fn improves(best: &Value, candidate: &Value, want_min: bool) -> bool {
    if candidate.is_null() {
        return false;
    }
    match best.compare(candidate) {
        None => best.is_null(),
        Some(ord) => {
            if want_min {
                ord == std::cmp::Ordering::Greater
            } else {
                ord == std::cmp::Ordering::Less
            }
        }
    }
}

/// Heap bytes owned by a [`Value`]'s string buffer (zero for everything
/// else) — the only part of an aggregate state that grows on replace.
fn string_heap(v: &Value) -> u64 {
    match v {
        Value::String(s) => s.capacity() as u64,
        _ => 0,
    }
}

/// Saturating `i128 → i64` conversion (shared by every integer SUM sink).
pub fn clamp_i128(v: i128) -> i64 {
    if v > i64::MAX as i128 {
        i64::MAX
    } else if v < i64::MIN as i128 {
        i64::MIN
    } else {
        v as i64
    }
}

/// The running state of one aggregate within one group.
#[derive(Debug, Clone)]
pub enum AggState {
    /// `COUNT(*)` / `COUNT(x.p)` — tuple or non-NULL-value count.
    Count(u64),
    /// `COUNT(DISTINCT x.p)` — distinct non-NULL values.
    Distinct(BTreeSet<OrdValue>),
    /// `SUM` — exact `i128` for integers, `f64` for doubles; `seen` counts
    /// non-NULL inputs so an all-NULL group sums to NULL (SQL semantics).
    Sum { ints: i128, floats: f64, seen: u64 },
    /// `MIN` / `MAX`.
    Best { value: Value, want_min: bool },
    /// `AVG` — exact sum + count, divided once at finish.
    Avg { ints: i128, floats: f64, count: u64 },
}

impl AggState {
    /// Fresh state for one aggregate.
    pub fn new(func: AggFunc) -> AggState {
        match func {
            AggFunc::CountStar | AggFunc::Count { distinct: false } => AggState::Count(0),
            AggFunc::Count { distinct: true } => AggState::Distinct(BTreeSet::new()),
            AggFunc::Sum => AggState::Sum { ints: 0, floats: 0.0, seen: 0 },
            AggFunc::Min => AggState::Best { value: Value::Null, want_min: true },
            AggFunc::Max => AggState::Best { value: Value::Null, want_min: false },
            AggFunc::Avg => AggState::Avg { ints: 0, floats: 0.0, count: 0 },
        }
    }

    /// Fold `value`, representing `mult` identical tuples, into the state.
    /// `COUNT(*)` ignores the value; MIN/MAX/DISTINCT ignore `mult`.
    ///
    /// Returns the state's heap growth in bytes (only `DISTINCT` sets and
    /// string-valued MIN/MAX ever grow), which the owning sink charges
    /// against the query's memory budget.
    pub fn update(&mut self, value: &Value, mult: u64) -> u64 {
        if mult == 0 {
            return 0;
        }
        match self {
            AggState::Count(n) => {
                if !value.is_null() {
                    *n += mult;
                }
                0
            }
            AggState::Distinct(set) => {
                if !value.is_null() && set.insert(OrdValue(value.clone())) {
                    crate::govern::value_bytes(value)
                } else {
                    0
                }
            }
            AggState::Sum { ints, floats, seen } => {
                match value {
                    Value::Int64(v) | Value::Date(v) => {
                        *ints += *v as i128 * mult as i128;
                        *seen += mult;
                    }
                    Value::Float64(v) => {
                        *floats += v * mult as f64;
                        *seen += mult;
                    }
                    _ => {}
                }
                0
            }
            AggState::Best { value: best, want_min } => {
                if improves(best, value, *want_min) {
                    let old = string_heap(best);
                    *best = value.clone();
                    string_heap(best).saturating_sub(old)
                } else {
                    0
                }
            }
            AggState::Avg { ints, floats, count } => {
                match value {
                    Value::Int64(v) | Value::Date(v) => {
                        *ints += *v as i128 * mult as i128;
                        *count += mult;
                    }
                    Value::Float64(v) => {
                        *floats += v * mult as f64;
                        *count += mult;
                    }
                    _ => {}
                }
                0
            }
        }
    }

    /// `COUNT(*)`: add `mult` tuples without reading any value.
    pub fn add_count(&mut self, mult: u64) {
        if let AggState::Count(n) = self {
            *n += mult;
        }
    }

    /// Associative merge of two partial states (worker barrier).
    pub fn merge(&mut self, other: AggState) {
        match (self, other) {
            (AggState::Count(a), AggState::Count(b)) => *a += b,
            (AggState::Distinct(a), AggState::Distinct(b)) => a.extend(b),
            (
                AggState::Sum { ints, floats, seen },
                AggState::Sum { ints: i2, floats: f2, seen: s2 },
            ) => {
                *ints = ints.saturating_add(i2);
                *floats += f2;
                *seen += s2;
            }
            (AggState::Best { value, want_min }, AggState::Best { value: v2, .. }) => {
                if improves(value, &v2, *want_min) {
                    *value = v2;
                }
            }
            (
                AggState::Avg { ints, floats, count },
                AggState::Avg { ints: i2, floats: f2, count: c2 },
            ) => {
                *ints = ints.saturating_add(i2);
                *floats += f2;
                *count += c2;
            }
            _ => unreachable!("merging mismatched aggregate states"),
        }
    }

    /// The final aggregate value. `dtype` is the input property's type
    /// (`None` for `COUNT(*)`), which decides the SUM output type.
    pub fn finish(self, dtype: Option<DataType>) -> Value {
        match self {
            AggState::Count(n) => Value::Int64(n as i64),
            AggState::Distinct(set) => Value::Int64(set.len() as i64),
            AggState::Sum { ints, floats, seen } => {
                if seen == 0 {
                    Value::Null
                } else if dtype == Some(DataType::Float64) {
                    Value::Float64(floats)
                } else {
                    Value::Int64(clamp_i128(ints))
                }
            }
            AggState::Best { value, .. } => value,
            AggState::Avg { ints, floats, count } => {
                if count == 0 {
                    Value::Null
                } else {
                    Value::Float64((ints as f64 + floats) / count as f64)
                }
            }
        }
    }
}

/// A grouped-aggregation accumulator: group key → one [`AggState`] per
/// aggregate. `BTreeMap` over the total value order makes iteration (and
/// therefore output order and partial-merge order) deterministic.
#[derive(Debug)]
pub struct GroupTable {
    aggs: Vec<PlanAgg>,
    map: BTreeMap<Vec<OrdValue>, Vec<AggState>>,
    /// Running heap estimate: key bytes + state array per group, plus the
    /// growth reported by [`AggState::update`] at the feeding sites.
    bytes: u64,
}

impl GroupTable {
    /// Empty table for the given aggregate list.
    pub fn new(aggs: &[PlanAgg]) -> GroupTable {
        GroupTable { aggs: aggs.to_vec(), map: BTreeMap::new(), bytes: 0 }
    }

    /// The aggregate states of `key`, created on first sight.
    pub fn group(&mut self, key: Vec<Value>) -> &mut Vec<AggState> {
        let key: Vec<OrdValue> = key.into_iter().map(OrdValue).collect();
        if !self.map.contains_key(&key) {
            self.bytes += key.iter().map(|k| crate::govern::value_bytes(&k.0)).sum::<u64>()
                + (self.aggs.len() * std::mem::size_of::<AggState>()) as u64
                + (std::mem::size_of::<Vec<OrdValue>>() + std::mem::size_of::<Vec<AggState>>())
                    as u64;
        }
        let aggs = &self.aggs;
        self.map.entry(key).or_insert_with(|| aggs.iter().map(|a| AggState::new(a.func)).collect())
    }

    /// Fold one fully-enumerated tuple (the baselines' path): `values[i]`
    /// is the input of aggregate `i`, `None` for `COUNT(*)` (which counts
    /// the tuple itself — unlike `COUNT(x.p)` with a NULL input).
    pub fn add_tuple(&mut self, key: Vec<Value>, values: &[Option<Value>]) {
        let mut grew = 0u64;
        {
            let states = self.group(key);
            for (st, v) in states.iter_mut().zip(values) {
                match v {
                    None => st.add_count(1),
                    Some(v) => grew += st.update(v, 1),
                }
            }
        }
        self.bytes += grew;
    }

    /// The table's heap estimate for memory budgeting. Conservative on
    /// merge (duplicate keys are counted once per side) — the budget sees
    /// at least what the table holds.
    pub fn approx_bytes(&self) -> u64 {
        self.bytes
    }

    /// Fold in growth observed outside [`GroupTable::add_tuple`] — the
    /// LBP sink feeds states through [`GroupTable::group`] directly and
    /// reports the [`AggState::update`] totals here.
    pub fn add_bytes(&mut self, bytes: u64) {
        self.bytes += bytes;
    }

    /// Merge another table's groups into this one (worker barrier; the
    /// callers merge in worker-index order).
    pub fn merge(&mut self, other: GroupTable) {
        self.bytes += other.bytes;
        for (key, states) in other.map {
            match self.map.entry(key) {
                std::collections::btree_map::Entry::Vacant(e) => {
                    e.insert(states);
                }
                std::collections::btree_map::Entry::Occupied(mut e) => {
                    for (a, b) in e.get_mut().iter_mut().zip(states) {
                        a.merge(b);
                    }
                }
            }
        }
    }

    /// Number of groups accumulated so far.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no group has been seen.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Finish every group into output rows (keys then aggregates, in key
    /// order), then apply `ORDER BY` / `LIMIT` and wrap as rows output.
    pub fn into_output(mut self, plan: &LogicalPlan) -> QueryOutput {
        // SQL semantics: an aggregate without GROUP BY keys returns exactly
        // one row even over an empty match set (COUNT(*) = 0, SUM/AVG/
        // MIN/MAX = NULL) — seed the single keyless group if nothing fed it.
        if let PlanReturn::GroupBy { keys, .. } = &plan.ret {
            if keys.is_empty() && self.map.is_empty() {
                self.group(Vec::new());
            }
        }
        let dtypes: Vec<Option<DataType>> =
            self.aggs.iter().map(|a| a.slot.map(|s| plan.slots[s].dtype)).collect();
        let mut rows: Vec<Vec<Value>> = self
            .map
            .into_iter()
            .map(|(key, states)| {
                key.into_iter()
                    .map(|k| k.0)
                    .chain(states.into_iter().zip(&dtypes).map(|(st, dt)| st.finish(*dt)))
                    .collect()
            })
            .collect();
        rows = order_and_limit(rows, &plan.order_by, plan.limit);
        QueryOutput::Rows { header: plan.header.clone(), rows }
    }
}

/// Total deterministic row comparison: the `ORDER BY` keys first, then the
/// whole row as a tie-break, so equal-key rows still order canonically.
pub fn cmp_rows(a: &[Value], b: &[Value], order_by: &[(usize, bool)]) -> std::cmp::Ordering {
    for &(col, desc) in order_by {
        let ord = a[col].total_cmp(&b[col]);
        let ord = if desc { ord.reverse() } else { ord };
        if ord != std::cmp::Ordering::Equal {
            return ord;
        }
    }
    for (x, y) in a.iter().zip(b) {
        let ord = x.total_cmp(y);
        if ord != std::cmp::Ordering::Equal {
            return ord;
        }
    }
    std::cmp::Ordering::Equal
}

/// Sort rows by [`cmp_rows`] and truncate to `limit`. With no `ORDER BY`
/// keys this is the canonical total order, so `LIMIT` alone is still
/// deterministic across engines and worker counts.
pub fn order_and_limit(
    mut rows: Vec<Vec<Value>>,
    order_by: &[(usize, bool)],
    limit: Option<usize>,
) -> Vec<Vec<Value>> {
    rows.sort_unstable_by(|a, b| cmp_rows(a, b, order_by));
    if let Some(k) = limit {
        rows.truncate(k);
    }
    rows
}

/// Finish a projection-row result the way the sinks do: optional DISTINCT,
/// then `ORDER BY` / `LIMIT` when present. Plain unordered projections are
/// returned as-is (engines may emit them in any order).
pub fn finalize_rows(plan: &LogicalPlan, rows: Vec<Vec<Value>>) -> Vec<Vec<Value>> {
    let rows = if plan.distinct {
        let set: BTreeSet<Vec<OrdValue>> =
            rows.into_iter().map(|r| r.into_iter().map(OrdValue).collect()).collect();
        set.into_iter().map(|r| r.into_iter().map(|v| v.0).collect()).collect()
    } else {
        rows
    };
    if plan.order_by.is_empty() && plan.limit.is_none() {
        return rows;
    }
    order_and_limit(rows, &plan.order_by, plan.limit)
}

/// True when the plan's sink wants fully enumerated tuples sorted/limited
/// (a top-k or distinct projection) rather than raw row streaming.
pub fn needs_row_finish(plan: &LogicalPlan) -> bool {
    matches!(plan.ret, PlanReturn::Props(_))
        && (plan.distinct || !plan.order_by.is_empty() || plan.limit.is_some())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn agg_states_fold_with_multiplicity() {
        let mut s = AggState::new(AggFunc::Sum);
        s.update(&Value::Int64(5), 3);
        s.update(&Value::Null, 7);
        assert_eq!(s.finish(Some(DataType::Int64)), Value::Int64(15));

        let mut c = AggState::new(AggFunc::CountStar);
        c.add_count(4);
        c.add_count(2);
        assert_eq!(c.finish(None), Value::Int64(6));

        let mut d = AggState::new(AggFunc::Count { distinct: true });
        d.update(&Value::Int64(1), 5);
        d.update(&Value::Int64(1), 2);
        d.update(&Value::Int64(2), 1);
        d.update(&Value::Null, 9);
        assert_eq!(d.finish(Some(DataType::Int64)), Value::Int64(2));

        let mut a = AggState::new(AggFunc::Avg);
        a.update(&Value::Int64(1), 1);
        a.update(&Value::Int64(2), 3);
        assert_eq!(a.finish(Some(DataType::Int64)), Value::Float64(1.75));
    }

    #[test]
    fn empty_sum_and_avg_are_null() {
        assert_eq!(AggState::new(AggFunc::Sum).finish(Some(DataType::Int64)), Value::Null);
        assert_eq!(AggState::new(AggFunc::Avg).finish(Some(DataType::Int64)), Value::Null);
        assert_eq!(AggState::new(AggFunc::Min).finish(Some(DataType::Int64)), Value::Null);
    }

    #[test]
    fn merge_is_associative_for_int_aggregates() {
        let mut a = AggState::new(AggFunc::Sum);
        a.update(&Value::Int64(i64::MAX - 1), 1);
        let mut b = AggState::new(AggFunc::Sum);
        b.update(&Value::Int64(i64::MAX - 1), 1);
        a.merge(b);
        assert_eq!(a.finish(Some(DataType::Int64)), Value::Int64(i64::MAX), "saturates");
    }

    #[test]
    fn rows_order_with_desc_and_tiebreak() {
        let rows = vec![
            vec![Value::Int64(1), Value::String("b".into())],
            vec![Value::Int64(2), Value::String("a".into())],
            vec![Value::Int64(1), Value::String("a".into())],
        ];
        let sorted = order_and_limit(rows, &[(0, true)], Some(2));
        assert_eq!(
            sorted,
            vec![
                vec![Value::Int64(2), Value::String("a".into())],
                vec![Value::Int64(1), Value::String("a".into())],
            ]
        );
    }

    #[test]
    fn null_keys_group_together_and_sort_first() {
        let aggs = vec![PlanAgg { func: AggFunc::CountStar, slot: None }];
        let mut t = GroupTable::new(&aggs);
        t.add_tuple(vec![Value::Null], &[None]);
        t.add_tuple(vec![Value::Null], &[None]);
        t.add_tuple(vec![Value::Int64(0)], &[None]);
        assert_eq!(t.len(), 2);
        let keys: Vec<_> = t.map.keys().cloned().collect();
        assert_eq!(keys[0][0], OrdValue(Value::Null));
    }
}

//! Intermediate-result representation of the list-based processor
//! (Section 6.1, Figure 9): [`ValueVector`]s grouped into [`ListGroup`]s,
//! grouped into an intermediate [`Chunk`].
//!
//! A chunk represents a set of intermediate tuples as the Cartesian product
//! of its list groups. Each group is either **unflat** (`cur_idx == -1`),
//! representing as many tuples as its block length, or **flat**
//! (`cur_idx >= 0`), representing the single tuple at `cur_idx`. Blocks are
//! *variable-length* — sized to the adjacency list they came from — and
//! node blocks produced by `ListExtend` are zero-copy [`NodeData::AdjView`]
//! descriptors pointing into CSR storage rather than materialized copies
//! (LBP advantage (ii) in Section 6).

use gfcl_common::{Direction, LabelId};
use gfcl_storage::ColumnarGraph;

/// Node-offset block: owned values or a zero-copy view into an adjacency
/// list in the CSR.
#[derive(Debug, Clone)]
pub enum NodeData {
    Owned(Vec<u64>),
    /// `len` elements starting at CSR position `start` of `(label, dir)`.
    AdjView {
        label: LabelId,
        dir: Direction,
        start: u64,
    },
}

/// A block of values, all of the same logical length as the containing
/// [`ListGroup`].
#[derive(Debug, Clone)]
pub enum ValueVector {
    /// Placeholder before the first fill.
    Empty,
    /// Vertex offsets of `label`.
    Node {
        label: LabelId,
        data: NodeData,
    },
    /// The edges of one adjacency list: `(label, dir)` CSR positions
    /// `start..start+len`, traversed from vertex `from`. Zero-copy: only
    /// the descriptor is stored.
    EdgeList {
        label: LabelId,
        dir: Direction,
        from: u64,
        start: u64,
    },
    /// Edges of one adjacency list under a mutated snapshot: tagged
    /// references (baseline CSR position or delta-edge index, see
    /// `gfcl_storage::store`) materialized by the merge, traversed from
    /// vertex `from`.
    EdgeRefs {
        label: LabelId,
        dir: Direction,
        from: u64,
        refs: Vec<u64>,
    },
    /// Edges bound by a `ColumnExtend` (single-cardinality): the edge at
    /// position `i` is identified by the vertex at `from_vec[i]` (and its
    /// neighbour at `nbr_vec[i]`). Under a mutated snapshot `tags[i]`
    /// carries the tagged edge reference instead (`None` on the clean
    /// zero-copy path).
    SingleEdge {
        label: LabelId,
        dir: Direction,
        from_vec: usize,
        nbr_vec: usize,
        tags: Option<Vec<u64>>,
    },
    /// Int64/Date property values.
    I64 {
        vals: Vec<i64>,
        valid: Vec<bool>,
        date: bool,
    },
    F64 {
        vals: Vec<f64>,
        valid: Vec<bool>,
    },
    Bool {
        vals: Vec<bool>,
        valid: Vec<bool>,
    },
    /// Dictionary codes of a string property. Strings stay compressed
    /// through the whole pipeline — predicates probe code bitmaps, and the
    /// sink decodes only returned values (late materialization).
    Code {
        vals: Vec<u64>,
        valid: Vec<bool>,
    },
}

impl ValueVector {
    /// Vertex offset at position `i` (Node vectors only).
    #[inline]
    pub fn node_offset(&self, g: &ColumnarGraph, i: usize) -> u64 {
        match self {
            ValueVector::Node { data: NodeData::Owned(v), .. } => v[i],
            ValueVector::Node { data: NodeData::AdjView { label, dir, start }, .. } => {
                g.adj(*label, *dir).as_csr().expect("adj view over CSR").nbr_at(start + i as u64)
            }
            _ => panic!("node_offset on non-node vector"),
        }
    }
}

/// A factorized group of equal-length blocks plus flattening state and a
/// selection mask.
#[derive(Debug, Clone)]
pub struct ListGroup {
    pub vectors: Vec<ValueVector>,
    /// Logical length of all blocks in this group.
    pub len: usize,
    /// `-1` = unflat (the group represents `len` tuples); `>= 0` = flat
    /// (the single tuple at this position).
    pub cur_idx: i64,
    /// Selection mask (`None` = all selected).
    pub sel: Option<Vec<bool>>,
    /// Number of selected positions.
    pub sel_count: usize,
}

impl ListGroup {
    /// A group with `n_vectors` placeholder blocks.
    pub fn new(n_vectors: usize) -> ListGroup {
        ListGroup {
            vectors: (0..n_vectors).map(|_| ValueVector::Empty).collect(),
            len: 0,
            cur_idx: -1,
            sel: None,
            sel_count: 0,
        }
    }

    /// Reset for a new fill of length `len`: unflat, all selected.
    pub fn reset(&mut self, len: usize) {
        self.len = len;
        self.cur_idx = -1;
        self.sel = None;
        self.sel_count = len;
    }

    pub fn is_flat(&self) -> bool {
        self.cur_idx >= 0
    }

    /// Is position `i` selected?
    #[inline]
    pub fn selected(&self, i: usize) -> bool {
        match &self.sel {
            Some(m) => m[i],
            None => true,
        }
    }

    /// Number of tuples this group contributes to the factorized product:
    /// 1 when flat, `sel_count` when unflat.
    #[inline]
    pub fn contribution(&self) -> u64 {
        if self.is_flat() {
            1
        } else {
            self.sel_count as u64
        }
    }

    /// AND a freshly computed mask into the selection.
    pub fn and_mask(&mut self, mask: &[bool]) {
        debug_assert_eq!(mask.len(), self.len);
        match &mut self.sel {
            Some(sel) => {
                let mut count = 0;
                for (s, &m) in sel.iter_mut().zip(mask) {
                    *s = *s && m;
                    count += *s as usize;
                }
                self.sel_count = count;
            }
            None => {
                self.sel = Some(mask.to_vec());
                self.sel_count = mask.iter().filter(|&&b| b).count();
            }
        }
    }

    /// Unselect a single position.
    pub fn unselect(&mut self, i: usize) {
        let len = self.len;
        let sel = self.sel.get_or_insert_with(|| vec![true; len]);
        if sel[i] {
            sel[i] = false;
            self.sel_count -= 1;
        }
    }

    /// Iterate selected positions.
    pub fn iter_selected(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.len).filter(move |&i| self.selected(i))
    }
}

/// The intermediate chunk: an ordered set of list groups whose Cartesian
/// product is the current set of intermediate tuples.
#[derive(Debug, Clone)]
pub struct Chunk {
    pub groups: Vec<ListGroup>,
}

impl Chunk {
    pub fn new(group_sizes: &[usize]) -> Chunk {
        Chunk { groups: group_sizes.iter().map(|&n| ListGroup::new(n)).collect() }
    }

    /// Number of tuples currently represented: the product of group
    /// contributions (the `count(*)` fast path of Section 6.2).
    pub fn tuple_count(&self) -> u64 {
        self.groups.iter().map(ListGroup::contribution).product()
    }

    /// Product of contributions of all groups except `skip`.
    pub fn tuple_count_excluding(&self, skip: usize) -> u64 {
        self.groups
            .iter()
            .enumerate()
            .filter(|(g, _)| *g != skip)
            .map(|(_, lg)| lg.contribution())
            .product()
    }
}

/// Location of a block: `(group index, vector index)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VecRef {
    pub group: usize,
    pub vec: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contribution_flat_vs_unflat() {
        let mut g = ListGroup::new(1);
        g.reset(10);
        assert_eq!(g.contribution(), 10);
        g.cur_idx = 3;
        assert_eq!(g.contribution(), 1);
        assert!(g.is_flat());
    }

    #[test]
    fn masks_and_together() {
        let mut g = ListGroup::new(1);
        g.reset(4);
        g.and_mask(&[true, true, false, true]);
        assert_eq!(g.sel_count, 3);
        g.and_mask(&[true, false, true, true]);
        assert_eq!(g.sel_count, 2);
        let sel: Vec<usize> = g.iter_selected().collect();
        assert_eq!(sel, vec![0, 3]);
        g.unselect(0);
        assert_eq!(g.sel_count, 1);
        g.unselect(0); // idempotent
        assert_eq!(g.sel_count, 1);
    }

    #[test]
    fn chunk_tuple_count_is_product() {
        let mut c = Chunk::new(&[1, 1, 1]);
        c.groups[0].reset(5);
        c.groups[1].reset(3);
        c.groups[2].reset(7);
        assert_eq!(c.tuple_count(), 105);
        c.groups[1].cur_idx = 0; // flatten
        assert_eq!(c.tuple_count(), 35);
        c.groups[2].and_mask(&[true, false, true, false, true, false, true]);
        assert_eq!(c.tuple_count(), 20);
        assert_eq!(c.tuple_count_excluding(2), 5);
    }

    #[test]
    fn reset_clears_mask_and_flattening() {
        let mut g = ListGroup::new(2);
        g.reset(4);
        g.and_mask(&[false, false, true, true]);
        g.cur_idx = 2;
        g.reset(6);
        assert!(!g.is_flat());
        assert_eq!(g.sel_count, 6);
        assert!(g.sel.is_none());
    }
}

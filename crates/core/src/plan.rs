//! The logical planner: resolves a [`PatternQuery`] against a catalog into
//! a linear, left-deep [`LogicalPlan`] shared by all four engines.
//!
//! The paper hand-picks "the best left-deep plan, which was obvious in most
//! cases" (Section 8.7). This module goes further: when the catalog carries
//! build-time [`gfcl_storage::Stats`], the [`crate::optimize`] cost model
//! picks the start node and extend order itself; hints remain an override
//! (`edge_order` is honored verbatim, after full validation), and a catalog
//! without statistics falls back to the paper's policy — start from an
//! equality-filtered vertex when the query has one and extend outward in
//! declaration order. In every case properties are read as soon as their
//! variable is bound and each filter is applied at the earliest step where
//! all of its inputs are bound.

use gfcl_common::{DataType, Direction, Error, LabelId, Result, Value};
use gfcl_storage::Catalog;

use crate::optimize;
use crate::query::{
    AggFunc, CmpOp, Expr, PatternQuery, PropRef, ReturnSpec, Scalar, SortDir, StrOp,
};

/// A resolved reference to a slot holding a property value during
/// execution. Slots are engine-agnostic: LBP maps them to vectors, the
/// Volcano engines to tuple fields.
pub type SlotId = usize;

/// A scalar operand over slots.
#[derive(Debug, Clone)]
pub enum PlanScalar {
    Slot(SlotId),
    Const(Value),
}

/// A resolved boolean expression over slots.
#[derive(Debug, Clone)]
pub enum PlanExpr {
    Cmp { op: CmpOp, lhs: PlanScalar, rhs: PlanScalar },
    StrMatch { op: StrOp, slot: SlotId, pattern: String },
    InSet { slot: SlotId, values: Vec<Value> },
    And(Vec<PlanExpr>),
    Or(Vec<PlanExpr>),
    Not(Box<PlanExpr>),
}

impl PlanExpr {
    /// All slots referenced by this expression.
    pub fn slots(&self) -> Vec<SlotId> {
        let mut out = Vec::new();
        self.collect(&mut out);
        out
    }

    fn collect(&self, out: &mut Vec<SlotId>) {
        match self {
            PlanExpr::Cmp { lhs, rhs, .. } => {
                if let PlanScalar::Slot(s) = lhs {
                    out.push(*s);
                }
                if let PlanScalar::Slot(s) = rhs {
                    out.push(*s);
                }
            }
            PlanExpr::StrMatch { slot, .. } | PlanExpr::InSet { slot, .. } => out.push(*slot),
            PlanExpr::And(es) | PlanExpr::Or(es) => es.iter().for_each(|e| e.collect(out)),
            PlanExpr::Not(e) => e.collect(out),
        }
    }
}

/// Where a slot's value comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlotSource {
    /// Property `prop` of pattern node `node`.
    NodeProp { node: usize, prop: usize },
    /// Property `prop` of pattern edge `edge`.
    EdgeProp { edge: usize, prop: usize },
}

/// Metadata of one slot.
#[derive(Debug, Clone)]
pub struct SlotDef {
    pub source: SlotSource,
    pub dtype: DataType,
    /// Whether the slot appears in the RETURN clause (string slots used
    /// only in predicates stay dictionary-encoded; returned ones must be
    /// materialized).
    pub for_return: bool,
    pub name: String,
}

/// One step of the linear plan.
#[derive(Debug, Clone)]
pub enum PlanStep {
    /// Scan all vertices of the start node's label. `pushed` holds the
    /// filter conjuncts pushed down into the scan (single-node property
    /// predicates): the storage layer evaluates them positionally on the
    /// vertex-property columns — skipping whole blocks via zone maps —
    /// before any property read materializes a value.
    ScanAll { node: usize, pushed: Vec<PlanExpr> },
    /// Seek the start node by primary key.
    ScanPk { node: usize, key: i64 },
    /// Join an unbound node via the adjacency index of `edge_label`.
    Extend {
        /// Index into the query's edge list.
        edge: usize,
        edge_label: LabelId,
        dir: Direction,
        from: usize,
        to: usize,
        /// Cardinality is single in `dir` (planner-level; engines consult
        /// storage for the actual index kind).
        single: bool,
    },
    /// Materialize a node property into a slot.
    NodeProp { node: usize, prop: usize, slot: SlotId },
    /// Materialize an edge property into a slot.
    EdgeProp { edge: usize, prop: usize, slot: SlotId },
    /// Apply a predicate over already-filled slots.
    Filter { expr: PlanExpr },
}

/// One resolved aggregate of a grouped return.
#[derive(Debug, Clone)]
pub struct PlanAgg {
    pub func: AggFunc,
    /// Input slot (`None` only for `COUNT(*)`).
    pub slot: Option<SlotId>,
}

/// What the plan returns.
#[derive(Debug, Clone)]
pub enum PlanReturn {
    CountStar,
    /// Materialize these slots for every match.
    Props(Vec<SlotId>),
    Sum(SlotId),
    Min(SlotId),
    Max(SlotId),
    /// Grouped aggregation: one output row per distinct combination of the
    /// key slots, aggregates folded directly from unflat list groups.
    GroupBy {
        keys: Vec<SlotId>,
        aggs: Vec<PlanAgg>,
    },
}

/// Resolved metadata of one pattern node.
#[derive(Debug, Clone)]
pub struct PlanNode {
    pub var: String,
    pub label: LabelId,
}

/// Resolved metadata of one pattern edge.
#[derive(Debug, Clone)]
pub struct PlanEdge {
    pub var: Option<String>,
    pub label: LabelId,
    pub from: usize,
    pub to: usize,
}

/// How the extend order of a plan was chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OrderSource {
    /// An explicit `edge_order` hint, honored verbatim.
    Hints,
    /// The cost-based orderer over catalog statistics
    /// ([`crate::optimize`]).
    Stats,
    /// Declaration order (no statistics, no hints — the paper's policy).
    Declaration,
}

/// The linear left-deep logical plan.
#[derive(Debug, Clone)]
pub struct LogicalPlan {
    pub nodes: Vec<PlanNode>,
    pub edges: Vec<PlanEdge>,
    pub slots: Vec<SlotDef>,
    pub steps: Vec<PlanStep>,
    pub ret: PlanReturn,
    /// Header names for row outputs.
    pub header: Vec<String>,
    /// `ORDER BY` keys: `(output column, descending)`, applied by the sink.
    pub order_by: Vec<(usize, bool)>,
    /// `LIMIT n`, applied by the sink after any ordering.
    pub limit: Option<usize>,
    /// `RETURN DISTINCT` on a projection return.
    pub distinct: bool,
    /// How the extend order was chosen.
    pub order_source: OrderSource,
    /// Estimated cardinality after each step, parallel to `steps`
    /// (`None` when the catalog carries no statistics).
    pub step_cards: Vec<Option<f64>>,
    /// Estimated number of output rows the sink produces (groups for a
    /// grouped return, matches for a projection); `None` without
    /// statistics. Sink-aware costing: grouped sinks never enumerate the
    /// flat result, so their cost is bounded by this, not by the final
    /// step cardinality.
    pub sink_card: Option<f64>,
}

/// Knobs of the planning pass itself (not of any single query).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanOptions {
    /// Push eligible scan-node filter conjuncts into the scan step
    /// (`PlanStep::ScanAll::pushed`), enabling zone-map block skipping and
    /// selection-aware property reads. On by default; `GFCL_NO_PUSHDOWN`
    /// is the environment escape hatch.
    pub pushdown: bool,
    /// Run the structural plan verifier ([`crate::verify`]) on the finished
    /// plan before returning it. On by default; `GFCL_NO_VERIFY` is the
    /// environment escape hatch, and `GFCL_VERIFY=strict` overrides the
    /// escape hatch (CI exports it so every suite plans with verification).
    pub verify: bool,
}

impl Default for PlanOptions {
    fn default() -> Self {
        PlanOptions { pushdown: true, verify: true }
    }
}

impl PlanOptions {
    /// Options from the environment: `GFCL_NO_PUSHDOWN` set to anything
    /// but empty/`0` disables filter pushdown (the escape hatch used by
    /// the pushdown-equivalence suites and for triaging pruning bugs);
    /// `GFCL_NO_VERIFY` likewise disables plan verification, unless
    /// `GFCL_VERIFY=strict` forces it back on.
    pub fn from_env() -> PlanOptions {
        let set =
            |name: &str| std::env::var(name).is_ok_and(|v| !v.trim().is_empty() && v.trim() != "0");
        let strict = std::env::var("GFCL_VERIFY").is_ok_and(|v| v.trim() == "strict");
        PlanOptions { pushdown: !set("GFCL_NO_PUSHDOWN"), verify: strict || !set("GFCL_NO_VERIFY") }
    }

    /// Planning with filter pushdown disabled (every predicate stays a
    /// `Filter` step).
    pub fn no_pushdown() -> PlanOptions {
        PlanOptions { pushdown: false, ..PlanOptions::default() }
    }

    /// Planning with the structural verifier disabled — the programmatic
    /// form of `GFCL_NO_VERIFY`, used by the verifier-overhead bench.
    pub fn no_verify() -> PlanOptions {
        PlanOptions { verify: false, ..PlanOptions::default() }
    }
}

/// Plan `query` against `catalog` (options from the environment).
pub fn plan(query: &PatternQuery, catalog: &Catalog) -> Result<LogicalPlan> {
    plan_with(query, catalog, &PlanOptions::from_env())
}

/// Plan `query` against `catalog` under explicit [`PlanOptions`].
pub fn plan_with(
    query: &PatternQuery,
    catalog: &Catalog,
    opts: &PlanOptions,
) -> Result<LogicalPlan> {
    // Hand-assembled queries get the same structural validation the fluent
    // builder runs in `try_build` — identical `[rule]`-tagged errors from
    // both entry points (previously an out-of-range edge endpoint would
    // panic here instead of erroring).
    query.validate()?;
    Planner { query, catalog, opts: *opts }.run()
}

struct Planner<'a> {
    query: &'a PatternQuery,
    catalog: &'a Catalog,
    opts: PlanOptions,
}

impl Planner<'_> {
    fn run(self) -> Result<LogicalPlan> {
        let q = self.query;
        if q.nodes.is_empty() {
            return Err(Error::Plan("pattern has no nodes".into()));
        }

        // Resolve node labels.
        let mut nodes = Vec::with_capacity(q.nodes.len());
        for n in &q.nodes {
            nodes.push(PlanNode {
                var: n.var.clone(),
                label: self.catalog.vertex_label_id(&n.label)?,
            });
        }
        // Resolve edge labels and check endpoint consistency.
        let mut edges = Vec::with_capacity(q.edges.len());
        for e in &q.edges {
            let label = self.catalog.edge_label_id(&e.label)?;
            let def = self.catalog.edge_label(label);
            if def.src != nodes[e.from].label || def.dst != nodes[e.to].label {
                return Err(Error::Plan(format!(
                    "edge {} connects labels ({}, {}), pattern has ({}, {})",
                    e.label, def.src, def.dst, nodes[e.from].label, nodes[e.to].label
                )));
            }
            edges.push(PlanEdge { var: e.var.clone(), label, from: e.from, to: e.to });
        }

        // Detect a primary-key equality predicate usable as a seek, e.g.
        // `p.id = 22468883` on the start variable.
        let mut pk_seek: Option<(usize, i64, usize)> = None; // (node, key, pred idx)
        for (pi, pred) in q.predicates.iter().enumerate() {
            if let Expr::Cmp { op: CmpOp::Eq, lhs, rhs } = pred {
                let (pref, konst) = match (lhs, rhs) {
                    (Scalar::Prop(p), Scalar::Const(c)) | (Scalar::Const(c), Scalar::Prop(p)) => {
                        (p, c)
                    }
                    _ => continue,
                };
                let Some(node) = q.node_idx(&pref.var) else { continue };
                let def = self.catalog.vertex_label(nodes[node].label);
                let Some(pk_idx) = def.primary_key else { continue };
                if def.properties[pk_idx].name != pref.prop {
                    continue;
                }
                let Some(key) = konst.as_i64() else { continue };
                pk_seek = Some((node, key, pi));
                break;
            }
        }

        // Resolve an explicit start hint early so unknown variables error
        // on every path.
        let hint_start = match &q.hints.start {
            Some(var) => Some(
                q.node_idx(var)
                    .ok_or_else(|| Error::Plan(format!("unknown start variable {var}")))?,
            ),
            None => None,
        };

        // Order the edges. Three sources, in precedence order:
        //   1. an `edge_order` hint — validated, then honored verbatim;
        //   2. the cost-based orderer, when the catalog carries statistics;
        //   3. declaration order (first-incident-to-bound), the paper's
        //      hand-picked-plan policy.
        let (start, extend_seq, order_source) = if let Some(o) = &q.hints.edge_order {
            validate_edge_order(o, edges.len())?;
            let start = match (hint_start, pk_seek) {
                (Some(s), _) => s,
                (None, Some((node, _, _)))
                    if o.first()
                        .is_none_or(|&e0| edges[e0].from == node || edges[e0].to == node) =>
                {
                    node
                }
                (None, _) => o.first().map_or(0, |&e0| edges[e0].from),
            };
            let seq = self.bind_hinted(start, o, &nodes, &edges)?;
            (start, seq, OrderSource::Hints)
        } else {
            // Resolve predicates against scratch slots for the cost model
            // (also surfaces unknown-variable/property errors early).
            let mut scratch_slots: Vec<SlotDef> = Vec::new();
            let scratch_preds: Vec<PlanExpr> = q
                .predicates
                .iter()
                .map(|p| self.resolve_expr(p, &nodes, &edges, &mut scratch_slots))
                .collect::<Result<_>>()?;
            let preds =
                optimize::pred_infos(&scratch_preds, &scratch_slots, &nodes, &edges, self.catalog);
            let chosen = optimize::choose_order(
                &nodes,
                &edges,
                self.catalog,
                &preds,
                pk_seek.map(|(n, _, _)| n),
                hint_start,
            );
            match chosen {
                Some(o) => (o.start, o.seq, OrderSource::Stats),
                None => {
                    let start = hint_start.or(pk_seek.map(|(n, _, _)| n)).unwrap_or(0);
                    let seq = self.bind_declaration(start, &nodes, &edges)?;
                    (start, seq, OrderSource::Declaration)
                }
            }
        };
        // Only use the seek if it is on the start node.
        let pk_seek = pk_seek.filter(|&(node, _, _)| node == start);

        // Slot assignment: every distinct PropRef used in predicates or
        // returns gets one slot.
        let mut slots: Vec<SlotDef> = Vec::new();

        // Resolve predicates (skipping the one consumed by the pk seek).
        let mut resolved_preds: Vec<PlanExpr> = Vec::new();
        for (pi, pred) in q.predicates.iter().enumerate() {
            if pk_seek.map(|(_, _, skip)| skip) == Some(pi) {
                continue;
            }
            resolved_preds.push(self.resolve_expr(pred, &nodes, &edges, &mut slots)?);
        }

        // Return clause.
        let (ret, header) = match &q.ret {
            ReturnSpec::CountStar => (PlanReturn::CountStar, vec!["count(*)".to_owned()]),
            ReturnSpec::Props(ps) => {
                let mut ids = Vec::with_capacity(ps.len());
                let mut header = Vec::with_capacity(ps.len());
                for p in ps {
                    ids.push(self.slot_of(p, true, &nodes, &edges, &mut slots)?);
                    header.push(format!("{}.{}", p.var, p.prop));
                }
                (PlanReturn::Props(ids), header)
            }
            ReturnSpec::Sum(p) => {
                let s = self.agg_slot_of(p, "SUM", &nodes, &edges, &mut slots)?;
                (PlanReturn::Sum(s), vec![format!("sum({}.{})", p.var, p.prop)])
            }
            ReturnSpec::Min(p) => {
                let s = self.agg_slot_of(p, "MIN", &nodes, &edges, &mut slots)?;
                (PlanReturn::Min(s), vec![format!("min({}.{})", p.var, p.prop)])
            }
            ReturnSpec::Max(p) => {
                let s = self.agg_slot_of(p, "MAX", &nodes, &edges, &mut slots)?;
                (PlanReturn::Max(s), vec![format!("max({}.{})", p.var, p.prop)])
            }
            ReturnSpec::GroupBy { keys, aggs } => {
                let mut key_ids = Vec::with_capacity(keys.len());
                let mut header = Vec::with_capacity(keys.len() + aggs.len());
                for k in keys {
                    // Keys are materialized per output row (strings decode
                    // at the sink, like projection columns).
                    key_ids.push(self.slot_of(k, true, &nodes, &edges, &mut slots)?);
                    header.push(format!("{}.{}", k.var, k.prop));
                }
                let mut plan_aggs = Vec::with_capacity(aggs.len());
                for a in aggs {
                    let (slot, rendered) = match &a.prop {
                        None => (None, "*".to_owned()),
                        Some(p) => {
                            let name = agg_name(a.func);
                            (
                                Some(self.agg_slot_of(p, name, &nodes, &edges, &mut slots)?),
                                format!("{}.{}", p.var, p.prop),
                            )
                        }
                    };
                    header.push(match a.func {
                        AggFunc::Count { distinct: true } => {
                            format!("count(distinct {rendered})")
                        }
                        _ => format!("{}({rendered})", agg_name(a.func).to_lowercase()),
                    });
                    plan_aggs.push(PlanAgg { func: a.func, slot });
                }
                (PlanReturn::GroupBy { keys: key_ids, aggs: plan_aggs }, header)
            }
        };

        // Resolve ORDER BY keys against the output columns.
        let mut order_by = Vec::with_capacity(q.order_by.len());
        for k in &q.order_by {
            if k.col >= header.len() {
                return Err(Error::Plan(format!(
                    "order_by column {} is out of range: the query returns {} columns",
                    k.col,
                    header.len()
                )));
            }
            order_by.push((k.col, k.dir == SortDir::Desc));
        }

        // Emit steps: scan, then per extend: bind node, read props that
        // become available, apply filters whose slots are all filled.
        let mut steps: Vec<PlanStep> = Vec::new();
        match pk_seek {
            Some((node, key, _)) => steps.push(PlanStep::ScanPk { node, key }),
            None => steps.push(PlanStep::ScanAll { node: start, pushed: Vec::new() }),
        }

        let mut node_bound = vec![false; nodes.len()];
        let mut edge_bound = vec![false; edges.len()];
        node_bound[start] = true;
        let mut slot_filled = vec![false; slots.len()];
        let mut pred_done = vec![false; resolved_preds.len()];

        let emit_available = |steps: &mut Vec<PlanStep>,
                              node_bound: &[bool],
                              edge_bound: &[bool],
                              slot_filled: &mut Vec<bool>,
                              pred_done: &mut Vec<bool>| {
            for (si, def) in slots.iter().enumerate() {
                if slot_filled[si] {
                    continue;
                }
                match def.source {
                    SlotSource::NodeProp { node, prop } if node_bound[node] => {
                        steps.push(PlanStep::NodeProp { node, prop, slot: si });
                        slot_filled[si] = true;
                    }
                    SlotSource::EdgeProp { edge, prop } if edge_bound[edge] => {
                        steps.push(PlanStep::EdgeProp { edge, prop, slot: si });
                        slot_filled[si] = true;
                    }
                    _ => {}
                }
            }
            for (pi, pred) in resolved_preds.iter().enumerate() {
                if !pred_done[pi] && pred.slots().iter().all(|&s| slot_filled[s]) {
                    steps.push(PlanStep::Filter { expr: pred.clone() });
                    pred_done[pi] = true;
                }
            }
        };

        emit_available(&mut steps, &node_bound, &edge_bound, &mut slot_filled, &mut pred_done);
        for (ei, dir, from, to) in extend_seq {
            let def = self.catalog.edge_label(edges[ei].label);
            steps.push(PlanStep::Extend {
                edge: ei,
                edge_label: edges[ei].label,
                dir,
                from,
                to,
                single: def.cardinality.is_single(dir),
            });
            node_bound[to] = true;
            edge_bound[ei] = true;
            emit_available(&mut steps, &node_bound, &edge_bound, &mut slot_filled, &mut pred_done);
        }

        if let Some(pi) = pred_done.iter().position(|&d| !d) {
            return Err(Error::Plan(format!(
                "predicate {pi} references variables never bound by the pattern"
            )));
        }

        // Filter pushdown: move every pushable conjunct over the scanned
        // node's properties out of its `Filter` step and into the scan
        // itself, where storage can evaluate it positionally on the
        // columns and skip whole blocks via zone maps. Semantically a
        // no-op (the same mask is ANDed into the scan group either way),
        // so `GFCL_NO_PUSHDOWN` exists purely as a triage/benchmark
        // escape hatch.
        if self.opts.pushdown {
            if let Some(PlanStep::ScanAll { node: scan_node, .. }) = steps.first() {
                let scan_node = *scan_node;
                let mut pushed: Vec<PlanExpr> = Vec::new();
                steps.retain(|s| match s {
                    PlanStep::Filter { expr } if is_pushable(expr, &slots, scan_node) => {
                        pushed.push(expr.clone());
                        false
                    }
                    _ => true,
                });
                if let Some(PlanStep::ScanAll { pushed: p, .. }) = steps.first_mut() {
                    *p = pushed;
                }
                // Slots that only fed pushed predicates no longer need a
                // property-read step at all: the scan evaluates directly
                // on the column. Keep reads for every slot the remaining
                // filters or the RETURN clause still touch.
                let mut used = vec![false; slots.len()];
                for s in &steps {
                    if let PlanStep::Filter { expr } = s {
                        for sl in expr.slots() {
                            used[sl] = true;
                        }
                    }
                }
                match &ret {
                    PlanReturn::CountStar => {}
                    PlanReturn::Props(ids) => ids.iter().for_each(|&s| used[s] = true),
                    PlanReturn::Sum(s) | PlanReturn::Min(s) | PlanReturn::Max(s) => used[*s] = true,
                    PlanReturn::GroupBy { keys, aggs } => {
                        keys.iter().for_each(|&s| used[s] = true);
                        aggs.iter().filter_map(|a| a.slot).for_each(|s| used[s] = true);
                    }
                }
                steps.retain(|s| match s {
                    PlanStep::NodeProp { slot, .. } | PlanStep::EdgeProp { slot, .. } => {
                        used[*slot]
                    }
                    _ => true,
                });
            }
        }

        let step_cards = optimize::estimate_steps(&steps, &nodes, &edges, &slots, self.catalog);
        let sink_card =
            optimize::estimate_sink(&ret, &step_cards, &slots, &nodes, &edges, self.catalog);
        let plan = LogicalPlan {
            nodes,
            edges,
            slots,
            steps,
            ret,
            header,
            order_by,
            limit: q.limit,
            distinct: q.distinct,
            order_source,
            step_cards,
            sink_card,
        };
        // Reject plans whose order would make a filter span two unflat
        // list groups at plan time instead of mid-query. Reachable through
        // edge_order hints and through the declaration-order fallback;
        // optimizer-chosen orders are executable by construction.
        optimize::check_executable(&plan)?;
        // Full structural verification ([`crate::verify`]): def-before-use
        // dataflow, schema/type flow, pushdown eligibility, bookkeeping.
        // Deny by default; `GFCL_NO_VERIFY` / `PlanOptions::no_verify` is
        // the escape hatch.
        if self.opts.verify {
            crate::verify::verify_plan(&plan, self.catalog)?;
        }
        Ok(plan)
    }

    /// Bind a hinted edge order verbatim: every edge must touch a bound
    /// node when its turn comes (the hint is *not* reinterpreted).
    fn bind_hinted(
        &self,
        start: usize,
        order: &[usize],
        nodes: &[PlanNode],
        edges: &[PlanEdge],
    ) -> Result<Vec<(usize, Direction, usize, usize)>> {
        let mut bound = vec![false; nodes.len()];
        bound[start] = true;
        let mut seq = Vec::with_capacity(order.len());
        for (pos, &ei) in order.iter().enumerate() {
            let e = &edges[ei];
            let (dir, from, to) = match (bound[e.from], bound[e.to]) {
                (true, true) => return Err(cycle_error(e, self.catalog)),
                (true, false) => (Direction::Fwd, e.from, e.to),
                (false, true) => (Direction::Bwd, e.to, e.from),
                (false, false) => {
                    return Err(Error::Plan(format!(
                        "edge_order is not connected: edge {ei} (at position {pos}) touches \
                         no bound node variable"
                    )))
                }
            };
            bound[to] = true;
            seq.push((ei, dir, from, to));
        }
        Ok(seq)
    }

    /// Declaration-order binding (first incident edge wins), the paper's
    /// hand-picked-plan policy and the fallback when no statistics exist.
    fn bind_declaration(
        &self,
        start: usize,
        nodes: &[PlanNode],
        edges: &[PlanEdge],
    ) -> Result<Vec<(usize, Direction, usize, usize)>> {
        let mut bound = vec![false; nodes.len()];
        bound[start] = true;
        let mut seq = Vec::with_capacity(edges.len());
        let mut remaining: Vec<usize> = (0..edges.len()).collect();
        while !remaining.is_empty() {
            let pos = remaining
                .iter()
                .position(|&ei| bound[edges[ei].from] || bound[edges[ei].to])
                .ok_or_else(|| Error::Plan("pattern is disconnected".into()))?;
            let ei = remaining.remove(pos);
            let e = &edges[ei];
            let (dir, from, to) = if bound[e.from] {
                (Direction::Fwd, e.from, e.to)
            } else {
                (Direction::Bwd, e.to, e.from)
            };
            if bound[to] {
                return Err(cycle_error(e, self.catalog));
            }
            bound[to] = true;
            seq.push((ei, dir, from, to));
        }
        Ok(seq)
    }

    /// [`Planner::slot_of`] for aggregate inputs: an undeclared property (or
    /// variable) surfaces as [`Error::Plan`] *naming the property* at plan
    /// time — it used to escape as a bare catalog error and, through the
    /// infallible `build()` path, a panic.
    fn agg_slot_of(
        &self,
        pref: &PropRef,
        func: &str,
        nodes: &[PlanNode],
        edges: &[PlanEdge],
        slots: &mut Vec<SlotDef>,
    ) -> Result<SlotId> {
        self.slot_of(pref, false, nodes, edges, slots).map_err(|e| {
            Error::Plan(format!(
                "{func}({}.{}) aggregates a property the pattern does not declare: {e}",
                pref.var, pref.prop
            ))
        })
    }

    /// Resolve a property reference to its slot, allocating one if needed.
    fn slot_of(
        &self,
        pref: &PropRef,
        for_return: bool,
        nodes: &[PlanNode],
        edges: &[PlanEdge],
        slots: &mut Vec<SlotDef>,
    ) -> Result<SlotId> {
        let q = self.query;
        let source = if let Some(node) = q.node_idx(&pref.var) {
            let prop = self.catalog.vertex_prop_idx(nodes[node].label, &pref.prop)?;
            SlotSource::NodeProp { node, prop }
        } else if let Some(edge) = q.edge_idx(&pref.var) {
            let prop = self.catalog.edge_prop_idx(edges[edge].label, &pref.prop)?;
            SlotSource::EdgeProp { edge, prop }
        } else {
            return Err(Error::Plan(format!("unknown variable {}", pref.var)));
        };
        if let Some(i) = slots.iter().position(|s| s.source == source) {
            slots[i].for_return |= for_return;
            return Ok(i);
        }
        let dtype = match source {
            SlotSource::NodeProp { node, prop } => {
                self.catalog.vertex_label(nodes[node].label).properties[prop].dtype
            }
            SlotSource::EdgeProp { edge, prop } => {
                self.catalog.edge_label(edges[edge].label).properties[prop].dtype
            }
        };
        slots.push(SlotDef {
            source,
            dtype,
            for_return,
            name: format!("{}.{}", pref.var, pref.prop),
        });
        Ok(slots.len() - 1)
    }

    fn resolve_expr(
        &self,
        e: &Expr,
        nodes: &[PlanNode],
        edges: &[PlanEdge],
        slots: &mut Vec<SlotDef>,
    ) -> Result<PlanExpr> {
        Ok(match e {
            Expr::Cmp { op, lhs, rhs } => PlanExpr::Cmp {
                op: *op,
                lhs: self.resolve_scalar(lhs, nodes, edges, slots)?,
                rhs: self.resolve_scalar(rhs, nodes, edges, slots)?,
            },
            Expr::StrMatch { op, prop, pattern } => PlanExpr::StrMatch {
                op: *op,
                slot: self.slot_of(prop, false, nodes, edges, slots)?,
                pattern: pattern.clone(),
            },
            Expr::InSet { prop, values } => PlanExpr::InSet {
                slot: self.slot_of(prop, false, nodes, edges, slots)?,
                values: values.clone(),
            },
            Expr::And(es) => PlanExpr::And(
                es.iter()
                    .map(|e| self.resolve_expr(e, nodes, edges, slots))
                    .collect::<Result<_>>()?,
            ),
            Expr::Or(es) => PlanExpr::Or(
                es.iter()
                    .map(|e| self.resolve_expr(e, nodes, edges, slots))
                    .collect::<Result<_>>()?,
            ),
            Expr::Not(inner) => {
                PlanExpr::Not(Box::new(self.resolve_expr(inner, nodes, edges, slots)?))
            }
        })
    }

    fn resolve_scalar(
        &self,
        s: &Scalar,
        nodes: &[PlanNode],
        edges: &[PlanEdge],
        slots: &mut Vec<SlotDef>,
    ) -> Result<PlanScalar> {
        Ok(match s {
            Scalar::Prop(p) => PlanScalar::Slot(self.slot_of(p, false, nodes, edges, slots)?),
            Scalar::Const(c) => PlanScalar::Const(c.clone()),
        })
    }
}

/// Can `e` be pushed down into a scan of pattern node `node`? Every leaf
/// must compare a single property slot of that node against constants —
/// single-column comparisons, `IN` lists, and string matches (which the
/// predicate compiler pre-evaluates on the dictionary), closed under
/// AND/OR/NOT. Anything touching another variable, two slots, or no slot
/// at all stays a `Filter` step.
pub(crate) fn is_pushable(e: &PlanExpr, slots: &[SlotDef], node: usize) -> bool {
    let on_node =
        |s: &SlotId| matches!(slots[*s].source, SlotSource::NodeProp { node: n, .. } if n == node);
    match e {
        PlanExpr::Cmp { lhs, rhs, .. } => match (lhs, rhs) {
            (PlanScalar::Slot(s), PlanScalar::Const(_))
            | (PlanScalar::Const(_), PlanScalar::Slot(s)) => on_node(s),
            _ => false,
        },
        PlanExpr::StrMatch { slot, .. } | PlanExpr::InSet { slot, .. } => on_node(slot),
        PlanExpr::And(es) | PlanExpr::Or(es) => es.iter().all(|e| is_pushable(e, slots, node)),
        PlanExpr::Not(inner) => is_pushable(inner, slots, node),
    }
}

/// Upper-case display name of an aggregate function.
pub fn agg_name(f: AggFunc) -> &'static str {
    match f {
        AggFunc::CountStar | AggFunc::Count { .. } => "COUNT",
        AggFunc::Sum => "SUM",
        AggFunc::Min => "MIN",
        AggFunc::Max => "MAX",
        AggFunc::Avg => "AVG",
    }
}

/// The cyclic-pattern rejection shared by all binding paths. Anonymous
/// edges are identified by their label name, as before the orderer rework.
fn cycle_error(e: &PlanEdge, catalog: &Catalog) -> Error {
    let label = &catalog.edge_label(e.label).name;
    Error::Plan(format!(
        "cyclic pattern at edge {} — only acyclic (tree) patterns are supported; \
         GraphflowDB handles cycles via worst-case-optimal joins [Mhedhbi & \
         Salihoglu 2019], which are outside this paper's scope",
        e.var.as_deref().unwrap_or(label)
    ))
}

/// Validate an `edge_order` hint: it must be a permutation of
/// `0..edges.len()`. Duplicate or out-of-range indexes previously slipped
/// through a length-only check and panicked later at `edges[ei]`; they are
/// now reported as [`Error::Plan`] naming the offending index.
fn validate_edge_order(order: &[usize], n_edges: usize) -> Result<()> {
    if order.len() != n_edges {
        return Err(Error::Plan(format!(
            "edge_order must mention every edge exactly once: got {} entries for {} edges",
            order.len(),
            n_edges
        )));
    }
    let mut seen = vec![false; n_edges];
    for &ei in order {
        if ei >= n_edges {
            return Err(Error::Plan(format!(
                "edge_order index {ei} is out of range: the pattern has {n_edges} edges"
            )));
        }
        if seen[ei] {
            return Err(Error::Plan(format!("edge_order mentions edge {ei} more than once")));
        }
        seen[ei] = true;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{col, gt, lit, PatternQuery};
    use gfcl_storage::RawGraph;

    fn catalog() -> Catalog {
        RawGraph::example().catalog
    }

    fn two_hop() -> PatternQuery {
        PatternQuery::builder()
            .node("a", "PERSON")
            .node("b", "PERSON")
            .node("c", "ORG")
            .edge("e1", "FOLLOWS", "a", "b")
            .edge("e2", "WORKAT", "b", "c")
            .filter(gt(col("a", "age"), lit(50)))
            .filter(gt(col("e1", "since"), lit(2000)))
            .returns_count()
            .build()
    }

    #[test]
    fn plans_left_deep_with_early_filters() {
        let p = plan(&two_hop(), &catalog()).unwrap();
        // The scan-node filter `a.age > 50` is pushed into the scan; since
        // a.age feeds nothing else, its property read disappears entirely.
        // Expect: ScanAll(a, pushed), Extend(e1), EdgeProp(e1.since),
        // Filter, Extend(e2).
        match &p.steps[0] {
            PlanStep::ScanAll { node: 0, pushed } => assert_eq!(pushed.len(), 1),
            s => panic!("expected pushed scan, got {s:?}"),
        }
        assert!(matches!(p.steps[1], PlanStep::Extend { dir: Direction::Fwd, from: 0, to: 1, .. }));
        assert!(matches!(p.steps[2], PlanStep::EdgeProp { edge: 0, .. }));
        assert!(matches!(p.steps[3], PlanStep::Filter { .. }));
        assert!(matches!(
            p.steps[4],
            PlanStep::Extend { dir: Direction::Fwd, from: 1, to: 2, single: true, .. }
        ));
        assert_eq!(p.steps.len(), 5);
    }

    #[test]
    fn pushdown_can_be_disabled() {
        // With pushdown off, the historical shape: ScanAll, NodeProp,
        // Filter, Extend, EdgeProp, Filter, Extend.
        let p = plan_with(&two_hop(), &catalog(), &PlanOptions::no_pushdown()).unwrap();
        assert!(
            matches!(&p.steps[0], PlanStep::ScanAll { pushed, .. } if pushed.is_empty()),
            "{:?}",
            p.steps[0]
        );
        assert!(matches!(p.steps[1], PlanStep::NodeProp { node: 0, .. }));
        assert!(matches!(p.steps[2], PlanStep::Filter { .. }));
        assert_eq!(p.steps.len(), 7);
    }

    #[test]
    fn multi_variable_and_edge_predicates_stay_filters() {
        // An edge predicate and a two-variable predicate must not be
        // pushed; a pushable OR/NOT combination over scan-node props must.
        let q = PatternQuery::builder()
            .node("a", "PERSON")
            .node("b", "PERSON")
            .edge("e1", "FOLLOWS", "a", "b")
            .filter(crate::query::or(vec![
                gt(col("a", "age"), lit(50)),
                crate::query::eq(col("a", "name"), lit("bob")),
            ]))
            .filter(gt(col("e1", "since"), lit(2000)))
            .filter(gt(col("b", "age"), col("a", "age")))
            .returns_count()
            .build();
        let p = plan(&q, &catalog()).unwrap();
        match &p.steps[0] {
            PlanStep::ScanAll { pushed, .. } => assert_eq!(pushed.len(), 1, "only the OR"),
            s => panic!("expected scan, got {s:?}"),
        }
        let filters = p.steps.iter().filter(|s| matches!(s, PlanStep::Filter { .. })).count();
        assert_eq!(filters, 2, "edge + two-variable predicates stay");
        // a.age still has a read step: the unpushed b.age > a.age needs it.
        assert!(p
            .steps
            .iter()
            .any(|s| matches!(s, PlanStep::NodeProp { node: 0, prop, .. } if *prop == 1)));
    }

    #[test]
    fn backward_plan_when_started_from_the_far_end() {
        let mut q = two_hop();
        q.hints.start = Some("c".into());
        q.hints.edge_order = Some(vec![1, 0]);
        let p = plan(&q, &catalog()).unwrap();
        let dirs: Vec<Direction> = p
            .steps
            .iter()
            .filter_map(|s| match s {
                PlanStep::Extend { dir, .. } => Some(*dir),
                _ => None,
            })
            .collect();
        assert_eq!(dirs, vec![Direction::Bwd, Direction::Bwd]);
    }

    #[test]
    fn rejects_cycles_and_disconnected_patterns() {
        let q = PatternQuery::builder()
            .node("a", "PERSON")
            .node("b", "PERSON")
            .edge("e1", "FOLLOWS", "a", "b")
            .edge("e2", "FOLLOWS", "b", "a")
            .returns_count()
            .build();
        let err = plan(&q, &catalog()).unwrap_err();
        assert!(err.to_string().contains("cyclic"));

        let q =
            PatternQuery::builder().node("a", "PERSON").node("b", "PERSON").returns_count().build();
        // b is never connected: treat as an error only if an edge exists.
        // A two-node pattern with no edges is degenerate; the planner scans
        // `a` and ignores `b`, which we reject via bound check below.
        let p = plan(&q, &catalog());
        // No edges: plan succeeds with just the scan of `a`.
        assert!(p.is_ok());
    }

    #[test]
    fn rejects_label_mismatch() {
        let q = PatternQuery::builder()
            .node("a", "ORG")
            .node("b", "PERSON")
            .edge("e", "FOLLOWS", "a", "b")
            .returns_count()
            .build();
        assert!(plan(&q, &catalog()).is_err());
    }

    #[test]
    fn slots_are_deduplicated() {
        let q = PatternQuery::builder()
            .node("a", "PERSON")
            .filter(gt(col("a", "age"), lit(10)))
            .filter(gt(col("a", "age"), lit(20)))
            .returns(&[("a", "age")])
            .build();
        let p = plan(&q, &catalog()).unwrap();
        assert_eq!(p.slots.len(), 1);
        assert!(p.slots[0].for_return);
        let n_reads = p.steps.iter().filter(|s| matches!(s, PlanStep::NodeProp { .. })).count();
        assert_eq!(n_reads, 1, "shared slot is read once");
    }

    /// Catalog with build-time statistics (the optimizer's precondition).
    fn catalog_with_stats() -> Catalog {
        use gfcl_storage::{ColumnarGraph, StorageConfig};
        ColumnarGraph::build(&RawGraph::example(), StorageConfig::default())
            .unwrap()
            .catalog()
            .clone()
    }

    #[test]
    fn edge_order_with_duplicate_index_is_a_plan_error() {
        // Regression: a duplicate index passed the length-only check and
        // panicked later at `edges[ei]` bookkeeping; it must be a plan
        // error naming the offending index.
        let mut q = two_hop();
        q.hints.edge_order = Some(vec![0, 0]);
        let err = plan(&q, &catalog()).unwrap_err();
        assert!(matches!(err, Error::Plan(_)), "{err:?}");
        assert!(err.to_string().contains("edge 0 more than once"), "{err}");
    }

    #[test]
    fn edge_order_with_out_of_range_index_is_a_plan_error() {
        let mut q = two_hop();
        q.hints.edge_order = Some(vec![0, 5]);
        let err = plan(&q, &catalog()).unwrap_err();
        assert!(matches!(err, Error::Plan(_)), "{err:?}");
        assert!(err.to_string().contains("index 5 is out of range"), "{err}");
        // Wrong length is still rejected.
        let mut q = two_hop();
        q.hints.edge_order = Some(vec![0]);
        let err = plan(&q, &catalog()).unwrap_err();
        assert!(err.to_string().contains("every edge exactly once"), "{err}");
    }

    #[test]
    fn disconnected_edge_order_is_a_plan_error() {
        // Start at `a`; hinting e2 (b->c) first leaves it with no bound
        // endpoint, and the hint is honored verbatim rather than reordered.
        let mut q = two_hop();
        q.hints.start = Some("a".into());
        q.hints.edge_order = Some(vec![1, 0]);
        let err = plan(&q, &catalog()).unwrap_err();
        assert!(err.to_string().contains("not connected"), "{err}");
    }

    #[test]
    fn optimizer_starts_from_the_selective_end() {
        // 2-hop FOLLOWS chain with an equality filter on the far end: with
        // statistics, the planner starts there and traverses backward.
        let cat = catalog_with_stats();
        let q = PatternQuery::builder()
            .node("a", "PERSON")
            .node("b", "PERSON")
            .node("c", "PERSON")
            .edge("e1", "FOLLOWS", "a", "b")
            .edge("e2", "FOLLOWS", "b", "c")
            .filter(crate::query::eq(col("c", "age"), lit(17)))
            .returns_count()
            .build();
        let p = plan(&q, &cat).unwrap();
        assert_eq!(p.order_source, OrderSource::Stats);
        assert!(matches!(p.steps[0], PlanStep::ScanAll { node: 2, .. }), "{:?}", p.steps[0]);
        let dirs: Vec<Direction> = p
            .steps
            .iter()
            .filter_map(|s| match s {
                PlanStep::Extend { dir, .. } => Some(*dir),
                _ => None,
            })
            .collect();
        assert_eq!(dirs, vec![Direction::Bwd, Direction::Bwd]);
        // Estimates are attached to every step.
        assert!(p.step_cards.iter().all(Option::is_some));
        // Without statistics the same query starts at `a` in declaration
        // order (the paper's policy), with no estimates.
        let p = plan(&q, &catalog()).unwrap();
        assert_eq!(p.order_source, OrderSource::Declaration);
        assert!(matches!(p.steps[0], PlanStep::ScanAll { node: 0, .. }));
        assert!(p.step_cards.iter().all(Option::is_none));
    }

    #[test]
    fn optimizer_respects_a_start_hint() {
        let cat = catalog_with_stats();
        let q = PatternQuery::builder()
            .node("a", "PERSON")
            .node("b", "PERSON")
            .node("c", "PERSON")
            .edge("e1", "FOLLOWS", "a", "b")
            .edge("e2", "FOLLOWS", "b", "c")
            .filter(crate::query::eq(col("c", "age"), lit(17)))
            .returns_count()
            .start_at("a")
            .build();
        let p = plan(&q, &cat).unwrap();
        assert_eq!(p.order_source, OrderSource::Stats);
        assert!(matches!(p.steps[0], PlanStep::ScanAll { node: 0, .. }));
    }

    #[test]
    fn inexecutable_hinted_order_is_rejected_at_plan_time() {
        // Chain predicate e2.since > e1.since: starting in the middle and
        // extending both ways leaves e1 and e2 in two different unflat list
        // groups when the filter becomes evaluable — the LBP cannot run
        // that, and the planner must say so before execution starts.
        let q = PatternQuery::builder()
            .node("a", "PERSON")
            .node("b", "PERSON")
            .node("c", "PERSON")
            .edge("e1", "FOLLOWS", "a", "b")
            .edge("e2", "FOLLOWS", "b", "c")
            .filter(gt(col("e2", "since"), col("e1", "since")))
            .returns_count()
            .start_at("b")
            .edge_order(vec![1, 0])
            .build();
        let err = plan(&q, &catalog()).unwrap_err();
        assert!(matches!(err, Error::Plan(_)), "{err:?}");
        assert!(err.to_string().contains("unflat"), "{err}");
        // The optimizer, by contrast, never picks such an order.
        let mut q = q;
        q.hints = Default::default();
        let p = plan(&q, &catalog_with_stats()).unwrap();
        assert_eq!(p.order_source, OrderSource::Stats);
    }

    #[test]
    fn pk_seek_is_detected() {
        let mut cat = catalog();
        cat.set_primary_key(0, "age").unwrap(); // age as a stand-in pk
        let q = PatternQuery::builder()
            .node("a", "PERSON")
            .node("b", "PERSON")
            .edge("e", "FOLLOWS", "a", "b")
            .filter(crate::query::eq(col("a", "age"), lit(45)))
            .returns_count()
            .build();
        let p = plan(&q, &cat).unwrap();
        assert!(matches!(p.steps[0], PlanStep::ScanPk { node: 0, key: 45 }));
        // The pk predicate is consumed by the seek.
        assert!(!p.steps.iter().any(|s| matches!(s, PlanStep::Filter { .. })));
    }
}

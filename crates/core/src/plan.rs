//! The logical planner: resolves a [`PatternQuery`] against a catalog into
//! a linear, left-deep [`LogicalPlan`] shared by all four engines.
//!
//! The paper hand-picks "the best left-deep plan, which was obvious in most
//! cases" (Section 8.7): start from an equality-filtered vertex when the
//! query has one (LDBC path queries start from a vertex ID) and extend
//! outward, reading properties as soon as their variable is bound and
//! applying each filter at the earliest step where all of its inputs are
//! bound. This module implements exactly that policy, plus hints to force
//! specific orders for the microbenchmarks (forward vs backward plans of
//! Section 8.3).

use gfcl_common::{DataType, Direction, Error, LabelId, Result, Value};
use gfcl_storage::Catalog;

use crate::query::{
    CmpOp, Expr, PatternQuery, PropRef, ReturnSpec, Scalar, StrOp,
};

/// A resolved reference to a slot holding a property value during
/// execution. Slots are engine-agnostic: LBP maps them to vectors, the
/// Volcano engines to tuple fields.
pub type SlotId = usize;

/// A scalar operand over slots.
#[derive(Debug, Clone)]
pub enum PlanScalar {
    Slot(SlotId),
    Const(Value),
}

/// A resolved boolean expression over slots.
#[derive(Debug, Clone)]
pub enum PlanExpr {
    Cmp { op: CmpOp, lhs: PlanScalar, rhs: PlanScalar },
    StrMatch { op: StrOp, slot: SlotId, pattern: String },
    InSet { slot: SlotId, values: Vec<Value> },
    And(Vec<PlanExpr>),
    Or(Vec<PlanExpr>),
    Not(Box<PlanExpr>),
}

impl PlanExpr {
    /// All slots referenced by this expression.
    pub fn slots(&self) -> Vec<SlotId> {
        let mut out = Vec::new();
        self.collect(&mut out);
        out
    }

    fn collect(&self, out: &mut Vec<SlotId>) {
        match self {
            PlanExpr::Cmp { lhs, rhs, .. } => {
                if let PlanScalar::Slot(s) = lhs {
                    out.push(*s);
                }
                if let PlanScalar::Slot(s) = rhs {
                    out.push(*s);
                }
            }
            PlanExpr::StrMatch { slot, .. } | PlanExpr::InSet { slot, .. } => out.push(*slot),
            PlanExpr::And(es) | PlanExpr::Or(es) => es.iter().for_each(|e| e.collect(out)),
            PlanExpr::Not(e) => e.collect(out),
        }
    }
}

/// Where a slot's value comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlotSource {
    /// Property `prop` of pattern node `node`.
    NodeProp { node: usize, prop: usize },
    /// Property `prop` of pattern edge `edge`.
    EdgeProp { edge: usize, prop: usize },
}

/// Metadata of one slot.
#[derive(Debug, Clone)]
pub struct SlotDef {
    pub source: SlotSource,
    pub dtype: DataType,
    /// Whether the slot appears in the RETURN clause (string slots used
    /// only in predicates stay dictionary-encoded; returned ones must be
    /// materialized).
    pub for_return: bool,
    pub name: String,
}

/// One step of the linear plan.
#[derive(Debug, Clone)]
pub enum PlanStep {
    /// Scan all vertices of the start node's label.
    ScanAll { node: usize },
    /// Seek the start node by primary key.
    ScanPk { node: usize, key: i64 },
    /// Join an unbound node via the adjacency index of `edge_label`.
    Extend {
        /// Index into the query's edge list.
        edge: usize,
        edge_label: LabelId,
        dir: Direction,
        from: usize,
        to: usize,
        /// Cardinality is single in `dir` (planner-level; engines consult
        /// storage for the actual index kind).
        single: bool,
    },
    /// Materialize a node property into a slot.
    NodeProp { node: usize, prop: usize, slot: SlotId },
    /// Materialize an edge property into a slot.
    EdgeProp { edge: usize, prop: usize, slot: SlotId },
    /// Apply a predicate over already-filled slots.
    Filter { expr: PlanExpr },
}

/// What the plan returns.
#[derive(Debug, Clone)]
pub enum PlanReturn {
    CountStar,
    /// Materialize these slots for every match.
    Props(Vec<SlotId>),
    Sum(SlotId),
    Min(SlotId),
    Max(SlotId),
}

/// Resolved metadata of one pattern node.
#[derive(Debug, Clone)]
pub struct PlanNode {
    pub var: String,
    pub label: LabelId,
}

/// Resolved metadata of one pattern edge.
#[derive(Debug, Clone)]
pub struct PlanEdge {
    pub var: Option<String>,
    pub label: LabelId,
    pub from: usize,
    pub to: usize,
}

/// The linear left-deep logical plan.
#[derive(Debug, Clone)]
pub struct LogicalPlan {
    pub nodes: Vec<PlanNode>,
    pub edges: Vec<PlanEdge>,
    pub slots: Vec<SlotDef>,
    pub steps: Vec<PlanStep>,
    pub ret: PlanReturn,
    /// Header names for row outputs.
    pub header: Vec<String>,
}

/// Plan `query` against `catalog`.
pub fn plan(query: &PatternQuery, catalog: &Catalog) -> Result<LogicalPlan> {
    Planner { query, catalog }.run()
}

struct Planner<'a> {
    query: &'a PatternQuery,
    catalog: &'a Catalog,
}

impl Planner<'_> {
    fn run(self) -> Result<LogicalPlan> {
        let q = self.query;
        if q.nodes.is_empty() {
            return Err(Error::Plan("pattern has no nodes".into()));
        }

        // Resolve node labels.
        let mut nodes = Vec::with_capacity(q.nodes.len());
        for n in &q.nodes {
            nodes.push(PlanNode { var: n.var.clone(), label: self.catalog.vertex_label_id(&n.label)? });
        }
        // Resolve edge labels and check endpoint consistency.
        let mut edges = Vec::with_capacity(q.edges.len());
        for e in &q.edges {
            let label = self.catalog.edge_label_id(&e.label)?;
            let def = self.catalog.edge_label(label);
            if def.src != nodes[e.from].label || def.dst != nodes[e.to].label {
                return Err(Error::Plan(format!(
                    "edge {} connects labels ({}, {}), pattern has ({}, {})",
                    e.label,
                    def.src,
                    def.dst,
                    nodes[e.from].label,
                    nodes[e.to].label
                )));
            }
            edges.push(PlanEdge { var: e.var.clone(), label, from: e.from, to: e.to });
        }

        // Detect a primary-key equality predicate usable as a seek, e.g.
        // `p.id = 22468883` on the start variable.
        let mut pk_seek: Option<(usize, i64, usize)> = None; // (node, key, pred idx)
        for (pi, pred) in q.predicates.iter().enumerate() {
            if let Expr::Cmp { op: CmpOp::Eq, lhs, rhs } = pred {
                let (pref, konst) = match (lhs, rhs) {
                    (Scalar::Prop(p), Scalar::Const(c)) | (Scalar::Const(c), Scalar::Prop(p)) => {
                        (p, c)
                    }
                    _ => continue,
                };
                let Some(node) = q.node_idx(&pref.var) else { continue };
                let def = self.catalog.vertex_label(nodes[node].label);
                let Some(pk_idx) = def.primary_key else { continue };
                if def.properties[pk_idx].name != pref.prop {
                    continue;
                }
                let Some(key) = konst.as_i64() else { continue };
                pk_seek = Some((node, key, pi));
                break;
            }
        }

        // Choose the start node: hint > pk-seek > smallest label.
        let start = if let Some(var) = &q.hints.start {
            q.node_idx(var).ok_or_else(|| Error::Plan(format!("unknown start variable {var}")))?
        } else if let Some((node, _, _)) = pk_seek {
            node
        } else {
            0
        };
        // Only use the seek if it is on the start node.
        let pk_seek = pk_seek.filter(|&(node, _, _)| node == start);

        // Order the edges: hinted order, else first-incident-to-bound in
        // declaration order (queries are written in a sensible left-deep
        // order, matching the paper's hand-picked plans).
        let order: Vec<usize> = match &q.hints.edge_order {
            Some(o) => {
                if o.len() != edges.len() {
                    return Err(Error::Plan("edge_order must mention every edge once".into()));
                }
                o.clone()
            }
            None => (0..edges.len()).collect(),
        };

        let mut bound = vec![false; nodes.len()];
        bound[start] = true;
        let mut extend_seq: Vec<(usize, Direction, usize, usize)> = Vec::new(); // (edge, dir, from, to)
        let mut remaining: Vec<usize> = order;
        while !remaining.is_empty() {
            let pos = remaining
                .iter()
                .position(|&ei| bound[edges[ei].from] || bound[edges[ei].to])
                .ok_or_else(|| Error::Plan("pattern is disconnected".into()))?;
            let ei = remaining.remove(pos);
            let e = &edges[ei];
            let (dir, from, to) = if bound[e.from] {
                (Direction::Fwd, e.from, e.to)
            } else {
                (Direction::Bwd, e.to, e.from)
            };
            if bound[to] {
                return Err(Error::Plan(format!(
                    "cyclic pattern at edge {} — only acyclic (tree) patterns are supported; \
                     GraphflowDB handles cycles via worst-case-optimal joins [Mhedhbi & \
                     Salihoglu 2019], which are outside this paper's scope",
                    e.var.as_deref().unwrap_or(&q.edges[ei].label)
                )));
            }
            bound[to] = true;
            extend_seq.push((ei, dir, from, to));
        }

        // Slot assignment: every distinct PropRef used in predicates or
        // returns gets one slot.
        let mut slots: Vec<SlotDef> = Vec::new();
        let mut slot_of = |pref: &PropRef,
                           for_return: bool,
                           slots: &mut Vec<SlotDef>|
         -> Result<SlotId> {
            let source = if let Some(node) = q.node_idx(&pref.var) {
                let prop = self.catalog.vertex_prop_idx(nodes[node].label, &pref.prop)?;
                SlotSource::NodeProp { node, prop }
            } else if let Some(edge) = q.edge_idx(&pref.var) {
                let prop = self.catalog.edge_prop_idx(edges[edge].label, &pref.prop)?;
                SlotSource::EdgeProp { edge, prop }
            } else {
                return Err(Error::Plan(format!("unknown variable {}", pref.var)));
            };
            if let Some(i) = slots.iter().position(|s| s.source == source) {
                slots[i].for_return |= for_return;
                return Ok(i);
            }
            let dtype = match source {
                SlotSource::NodeProp { node, prop } => {
                    self.catalog.vertex_label(nodes[node].label).properties[prop].dtype
                }
                SlotSource::EdgeProp { edge, prop } => {
                    self.catalog.edge_label(edges[edge].label).properties[prop].dtype
                }
            };
            slots.push(SlotDef {
                source,
                dtype,
                for_return,
                name: format!("{}.{}", pref.var, pref.prop),
            });
            Ok(slots.len() - 1)
        };

        // Resolve predicates (skipping the one consumed by the pk seek).
        let mut resolved_preds: Vec<PlanExpr> = Vec::new();
        for (pi, pred) in q.predicates.iter().enumerate() {
            if pk_seek.map(|(_, _, skip)| skip) == Some(pi) {
                continue;
            }
            resolved_preds.push(self.resolve_expr(pred, &mut slots, &mut slot_of)?);
        }

        // Return clause.
        let (ret, header) = match &q.ret {
            ReturnSpec::CountStar => (PlanReturn::CountStar, vec!["count(*)".to_owned()]),
            ReturnSpec::Props(ps) => {
                let mut ids = Vec::with_capacity(ps.len());
                let mut header = Vec::with_capacity(ps.len());
                for p in ps {
                    ids.push(slot_of(p, true, &mut slots)?);
                    header.push(format!("{}.{}", p.var, p.prop));
                }
                (PlanReturn::Props(ids), header)
            }
            ReturnSpec::Sum(p) => {
                let s = slot_of(p, false, &mut slots)?;
                (PlanReturn::Sum(s), vec![format!("sum({}.{})", p.var, p.prop)])
            }
            ReturnSpec::Min(p) => {
                let s = slot_of(p, false, &mut slots)?;
                (PlanReturn::Min(s), vec![format!("min({}.{})", p.var, p.prop)])
            }
            ReturnSpec::Max(p) => {
                let s = slot_of(p, false, &mut slots)?;
                (PlanReturn::Max(s), vec![format!("max({}.{})", p.var, p.prop)])
            }
        };

        // Emit steps: scan, then per extend: bind node, read props that
        // become available, apply filters whose slots are all filled.
        let mut steps: Vec<PlanStep> = Vec::new();
        match pk_seek {
            Some((node, key, _)) => steps.push(PlanStep::ScanPk { node, key }),
            None => steps.push(PlanStep::ScanAll { node: start }),
        }

        let mut node_bound = vec![false; nodes.len()];
        let mut edge_bound = vec![false; edges.len()];
        node_bound[start] = true;
        let mut slot_filled = vec![false; slots.len()];
        let mut pred_done = vec![false; resolved_preds.len()];

        let emit_available =
            |steps: &mut Vec<PlanStep>,
             node_bound: &[bool],
             edge_bound: &[bool],
             slot_filled: &mut Vec<bool>,
             pred_done: &mut Vec<bool>| {
                for (si, def) in slots.iter().enumerate() {
                    if slot_filled[si] {
                        continue;
                    }
                    match def.source {
                        SlotSource::NodeProp { node, prop } if node_bound[node] => {
                            steps.push(PlanStep::NodeProp { node, prop, slot: si });
                            slot_filled[si] = true;
                        }
                        SlotSource::EdgeProp { edge, prop } if edge_bound[edge] => {
                            steps.push(PlanStep::EdgeProp { edge, prop, slot: si });
                            slot_filled[si] = true;
                        }
                        _ => {}
                    }
                }
                for (pi, pred) in resolved_preds.iter().enumerate() {
                    if !pred_done[pi] && pred.slots().iter().all(|&s| slot_filled[s]) {
                        steps.push(PlanStep::Filter { expr: pred.clone() });
                        pred_done[pi] = true;
                    }
                }
            };

        emit_available(&mut steps, &node_bound, &edge_bound, &mut slot_filled, &mut pred_done);
        for (ei, dir, from, to) in extend_seq {
            let def = self.catalog.edge_label(edges[ei].label);
            steps.push(PlanStep::Extend {
                edge: ei,
                edge_label: edges[ei].label,
                dir,
                from,
                to,
                single: def.cardinality.is_single(dir),
            });
            node_bound[to] = true;
            edge_bound[ei] = true;
            emit_available(&mut steps, &node_bound, &edge_bound, &mut slot_filled, &mut pred_done);
        }

        if let Some(pi) = pred_done.iter().position(|&d| !d) {
            return Err(Error::Plan(format!(
                "predicate {pi} references variables never bound by the pattern"
            )));
        }

        Ok(LogicalPlan { nodes, edges, slots, steps, ret, header })
    }

    fn resolve_expr(
        &self,
        e: &Expr,
        slots: &mut Vec<SlotDef>,
        slot_of: &mut impl FnMut(&PropRef, bool, &mut Vec<SlotDef>) -> Result<SlotId>,
    ) -> Result<PlanExpr> {
        Ok(match e {
            Expr::Cmp { op, lhs, rhs } => PlanExpr::Cmp {
                op: *op,
                lhs: self.resolve_scalar(lhs, slots, slot_of)?,
                rhs: self.resolve_scalar(rhs, slots, slot_of)?,
            },
            Expr::StrMatch { op, prop, pattern } => PlanExpr::StrMatch {
                op: *op,
                slot: slot_of(prop, false, slots)?,
                pattern: pattern.clone(),
            },
            Expr::InSet { prop, values } => {
                PlanExpr::InSet { slot: slot_of(prop, false, slots)?, values: values.clone() }
            }
            Expr::And(es) => PlanExpr::And(
                es.iter().map(|e| self.resolve_expr(e, slots, slot_of)).collect::<Result<_>>()?,
            ),
            Expr::Or(es) => PlanExpr::Or(
                es.iter().map(|e| self.resolve_expr(e, slots, slot_of)).collect::<Result<_>>()?,
            ),
            Expr::Not(inner) => {
                PlanExpr::Not(Box::new(self.resolve_expr(inner, slots, slot_of)?))
            }
        })
    }

    fn resolve_scalar(
        &self,
        s: &Scalar,
        slots: &mut Vec<SlotDef>,
        slot_of: &mut impl FnMut(&PropRef, bool, &mut Vec<SlotDef>) -> Result<SlotId>,
    ) -> Result<PlanScalar> {
        Ok(match s {
            Scalar::Prop(p) => PlanScalar::Slot(slot_of(p, false, slots)?),
            Scalar::Const(c) => PlanScalar::Const(c.clone()),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{col, gt, lit, PatternQuery};
    use gfcl_storage::RawGraph;

    fn catalog() -> Catalog {
        RawGraph::example().catalog
    }

    fn two_hop() -> PatternQuery {
        PatternQuery::builder()
            .node("a", "PERSON")
            .node("b", "PERSON")
            .node("c", "ORG")
            .edge("e1", "FOLLOWS", "a", "b")
            .edge("e2", "WORKAT", "b", "c")
            .filter(gt(col("a", "age"), lit(50)))
            .filter(gt(col("e1", "since"), lit(2000)))
            .returns_count()
            .build()
    }

    #[test]
    fn plans_left_deep_with_early_filters() {
        let p = plan(&two_hop(), &catalog()).unwrap();
        // Expect: ScanAll(a), NodeProp(a.age), Filter, Extend(e1),
        // EdgeProp(e1.since), Filter, Extend(e2).
        assert!(matches!(p.steps[0], PlanStep::ScanAll { node: 0 }));
        assert!(matches!(p.steps[1], PlanStep::NodeProp { node: 0, .. }));
        assert!(matches!(p.steps[2], PlanStep::Filter { .. }));
        assert!(matches!(
            p.steps[3],
            PlanStep::Extend { dir: Direction::Fwd, from: 0, to: 1, .. }
        ));
        assert!(matches!(p.steps[4], PlanStep::EdgeProp { edge: 0, .. }));
        assert!(matches!(p.steps[5], PlanStep::Filter { .. }));
        assert!(matches!(
            p.steps[6],
            PlanStep::Extend { dir: Direction::Fwd, from: 1, to: 2, single: true, .. }
        ));
        assert_eq!(p.steps.len(), 7);
    }

    #[test]
    fn backward_plan_when_started_from_the_far_end() {
        let mut q = two_hop();
        q.hints.start = Some("c".into());
        q.hints.edge_order = Some(vec![1, 0]);
        let p = plan(&q, &catalog()).unwrap();
        let dirs: Vec<Direction> = p
            .steps
            .iter()
            .filter_map(|s| match s {
                PlanStep::Extend { dir, .. } => Some(*dir),
                _ => None,
            })
            .collect();
        assert_eq!(dirs, vec![Direction::Bwd, Direction::Bwd]);
    }

    #[test]
    fn rejects_cycles_and_disconnected_patterns() {
        let q = PatternQuery::builder()
            .node("a", "PERSON")
            .node("b", "PERSON")
            .edge("e1", "FOLLOWS", "a", "b")
            .edge("e2", "FOLLOWS", "b", "a")
            .returns_count()
            .build();
        let err = plan(&q, &catalog()).unwrap_err();
        assert!(err.to_string().contains("cyclic"));

        let q = PatternQuery::builder()
            .node("a", "PERSON")
            .node("b", "PERSON")
            .returns_count()
            .build();
        // b is never connected: treat as an error only if an edge exists.
        // A two-node pattern with no edges is degenerate; the planner scans
        // `a` and ignores `b`, which we reject via bound check below.
        let p = plan(&q, &catalog());
        // No edges: plan succeeds with just the scan of `a`.
        assert!(p.is_ok());
    }

    #[test]
    fn rejects_label_mismatch() {
        let q = PatternQuery::builder()
            .node("a", "ORG")
            .node("b", "PERSON")
            .edge("e", "FOLLOWS", "a", "b")
            .returns_count()
            .build();
        assert!(plan(&q, &catalog()).is_err());
    }

    #[test]
    fn slots_are_deduplicated() {
        let q = PatternQuery::builder()
            .node("a", "PERSON")
            .filter(gt(col("a", "age"), lit(10)))
            .filter(gt(col("a", "age"), lit(20)))
            .returns(&[("a", "age")])
            .build();
        let p = plan(&q, &catalog()).unwrap();
        assert_eq!(p.slots.len(), 1);
        assert!(p.slots[0].for_return);
        let n_reads = p
            .steps
            .iter()
            .filter(|s| matches!(s, PlanStep::NodeProp { .. }))
            .count();
        assert_eq!(n_reads, 1, "shared slot is read once");
    }

    #[test]
    fn pk_seek_is_detected() {
        let mut cat = catalog();
        cat.set_primary_key(0, "age").unwrap(); // age as a stand-in pk
        let q = PatternQuery::builder()
            .node("a", "PERSON")
            .node("b", "PERSON")
            .edge("e", "FOLLOWS", "a", "b")
            .filter(crate::query::eq(col("a", "age"), lit(45)))
            .returns_count()
            .build();
        let p = plan(&q, &cat).unwrap();
        assert!(matches!(p.steps[0], PlanStep::ScanPk { node: 0, key: 45 }));
        // The pk predicate is consumed by the seek.
        assert!(!p.steps.iter().any(|s| matches!(s, PlanStep::Filter { .. })));
    }
}

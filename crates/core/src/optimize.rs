//! The statistics-driven join orderer and the EXPLAIN renderer.
//!
//! The paper's evaluation hand-picks "the best left-deep plan, which was
//! obvious in most cases" (Section 8.7). A system serving arbitrary queries
//! has to pick that plan itself: a pattern written in an unlucky edge order
//! can blow up intermediate list groups by orders of magnitude. This module
//! closes the gap with a classic textbook design specialized to the
//! list-based processor:
//!
//! * **Cost model** — a plan's cost is the sum of its estimated
//!   intermediate tuple counts. A scan contributes the label's vertex count
//!   (1 for a primary-key seek); each extend multiplies the running
//!   cardinality by the average degree of `(edge label, direction)` from
//!   [`gfcl_storage::Stats`] — which is ≤ 1 for single-cardinality edges,
//!   reflecting their 1:1 `ColumnExtend` — and by the selectivity of every
//!   predicate that becomes evaluable at that point.
//! * **Selectivity** — equality predicates use `1/NDV` from the
//!   per-property statistics, ranges use the integer min/max when known
//!   (else 1/3), string matches use a fixed 0.1, `IN` uses `k/NDV`;
//!   conjunction/disjunction/negation combine the usual way, and every
//!   comparison is discounted by the column's NULL fraction.
//! * **Enumeration** — all connected left-deep orders over every candidate
//!   start node, exhaustively up to [`EXHAUSTIVE_EDGES`] edges (with
//!   branch-and-bound pruning), greedy with one-step lookahead above.
//! * **Executability** — the LBP's `Filter` operator cannot evaluate a
//!   predicate spanning two *unflat* list groups (see
//!   [`crate::exec`]); candidate orders that would require one are
//!   rejected during enumeration, and `check_executable` re-verifies the
//!   final plan (including hinted ones) at plan time instead of failing
//!   mid-query.
//!
//! The same machinery renders `EXPLAIN` output ([`render_explain`]): the
//! chosen order with per-step cardinality estimates, the physical operator
//! each extend compiles to (`ListExtend` vs `ColumnExtend`) and the flatten
//! points where a factorized group collapses.

use std::fmt::Write as _;

use gfcl_columnar::UIntArray;
use gfcl_common::{DataType, Direction, Error, Result, Value};
use gfcl_storage::{Catalog, PropStats, Stats};

use crate::plan::{
    LogicalPlan, OrderSource, PlanEdge, PlanExpr, PlanNode, PlanReturn, PlanScalar, PlanStep,
    SlotDef, SlotSource,
};
use crate::query::{CmpOp, StrOp};

/// Patterns with at most this many edges are ordered by exhaustive
/// enumeration; larger ones fall back to greedy with one-step lookahead.
pub const EXHAUSTIVE_EDGES: usize = 6;

/// Default selectivity of a range predicate when no min/max is known.
const RANGE_SEL: f64 = 1.0 / 3.0;
/// Default selectivity of a string match predicate.
const STR_MATCH_SEL: f64 = 0.1;
/// NDV assumed for a property with no statistics.
const DEFAULT_NDV: f64 = 10.0;
/// Selectivities never drop below this (avoids zero-cost plans).
const MIN_SEL: f64 = 1e-9;

/// One extend: `(edge index, traversal direction, from node, to node)`.
pub(crate) type ExtendSeq = Vec<(usize, Direction, usize, usize)>;

/// The orderer's decision: a start node and a connected extend sequence.
pub(crate) struct Ordering {
    pub start: usize,
    pub seq: ExtendSeq,
}

// ---- Selectivity estimation ----------------------------------------------

/// Statistics of the property behind a slot (`None` when the catalog has no
/// stats).
fn slot_stats<'a>(
    slot: &SlotDef,
    nodes: &[PlanNode],
    edges: &[PlanEdge],
    catalog: &'a Catalog,
) -> Option<&'a PropStats> {
    let stats = catalog.stats()?;
    Some(match slot.source {
        SlotSource::NodeProp { node, prop } => &stats.vertex(nodes[node].label).props[prop],
        SlotSource::EdgeProp { edge, prop } => &stats.edge(edges[edge].label).props[prop],
    })
}

/// Mirror a comparison so the slot ends up on the left-hand side.
fn flip(op: CmpOp) -> CmpOp {
    match op {
        CmpOp::Lt => CmpOp::Gt,
        CmpOp::Le => CmpOp::Ge,
        CmpOp::Gt => CmpOp::Lt,
        CmpOp::Ge => CmpOp::Le,
        CmpOp::Eq | CmpOp::Ne => op,
    }
}

/// Fraction of the `[min, max]` integer domain admitted by `slot op c`.
fn range_fraction(ps: &PropStats, op: CmpOp, c: i64) -> Option<f64> {
    let (min, max) = (ps.min_i64?, ps.max_i64?);
    if max < min {
        return None;
    }
    let span = (max as i128 - min as i128 + 1) as f64;
    let frac = match op {
        CmpOp::Lt => (c as i128 - min as i128) as f64 / span,
        CmpOp::Le => (c as i128 - min as i128 + 1) as f64 / span,
        CmpOp::Gt => (max as i128 - c as i128) as f64 / span,
        CmpOp::Ge => (max as i128 - c as i128 + 1) as f64 / span,
        CmpOp::Eq | CmpOp::Ne => return None,
    };
    Some(frac.clamp(0.0, 1.0))
}

/// Selectivity of `slot op const`.
fn cmp_const_sel(
    op: CmpOp,
    slot: &SlotDef,
    c: &Value,
    nodes: &[PlanNode],
    edges: &[PlanEdge],
    catalog: &Catalog,
) -> f64 {
    let Some(ps) = slot_stats(slot, nodes, edges, catalog) else {
        return match op {
            CmpOp::Eq => 1.0 / DEFAULT_NDV,
            CmpOp::Ne => 1.0 - 1.0 / DEFAULT_NDV,
            _ => RANGE_SEL,
        };
    };
    let notnull = 1.0 - ps.null_fraction;
    let ndv = (ps.ndv as f64).max(1.0);
    match op {
        CmpOp::Eq => notnull / ndv,
        CmpOp::Ne => notnull * (1.0 - 1.0 / ndv),
        _ => {
            let frac = c.as_i64().and_then(|k| range_fraction(ps, op, k)).unwrap_or(RANGE_SEL);
            notnull * frac
        }
    }
}

/// Estimated selectivity of a resolved predicate in `[MIN_SEL, 1]`.
pub(crate) fn selectivity(
    e: &PlanExpr,
    slots: &[SlotDef],
    nodes: &[PlanNode],
    edges: &[PlanEdge],
    catalog: &Catalog,
) -> f64 {
    let sel = match e {
        PlanExpr::Cmp { op, lhs, rhs } => match (lhs, rhs) {
            (PlanScalar::Slot(s), PlanScalar::Const(c)) => {
                cmp_const_sel(*op, &slots[*s], c, nodes, edges, catalog)
            }
            (PlanScalar::Const(c), PlanScalar::Slot(s)) => {
                cmp_const_sel(flip(*op), &slots[*s], c, nodes, edges, catalog)
            }
            (PlanScalar::Slot(a), PlanScalar::Slot(b)) => {
                let ndv = |s: &usize| {
                    slot_stats(&slots[*s], nodes, edges, catalog)
                        .map_or(DEFAULT_NDV, |ps| (ps.ndv as f64).max(1.0))
                };
                match op {
                    CmpOp::Eq => 1.0 / ndv(a).max(ndv(b)),
                    CmpOp::Ne => 1.0 - 1.0 / ndv(a).max(ndv(b)),
                    _ => RANGE_SEL,
                }
            }
            (PlanScalar::Const(_), PlanScalar::Const(_)) => 1.0,
        },
        PlanExpr::StrMatch { slot, .. } => {
            let notnull = slot_stats(&slots[*slot], nodes, edges, catalog)
                .map_or(1.0, |ps| 1.0 - ps.null_fraction);
            notnull * STR_MATCH_SEL
        }
        PlanExpr::InSet { slot, values } => {
            let ps = slot_stats(&slots[*slot], nodes, edges, catalog);
            let ndv = ps.map_or(DEFAULT_NDV, |p| (p.ndv as f64).max(1.0));
            let notnull = ps.map_or(1.0, |p| 1.0 - p.null_fraction);
            notnull * (values.len() as f64 / ndv).min(1.0)
        }
        PlanExpr::And(es) => {
            es.iter().map(|e| selectivity(e, slots, nodes, edges, catalog)).product()
        }
        PlanExpr::Or(es) => {
            1.0 - es
                .iter()
                .map(|e| 1.0 - selectivity(e, slots, nodes, edges, catalog))
                .product::<f64>()
        }
        PlanExpr::Not(inner) => 1.0 - selectivity(inner, slots, nodes, edges, catalog),
    };
    sel.clamp(MIN_SEL, 1.0)
}

// ---- Predicate analysis ---------------------------------------------------

/// What the orderer needs to know about one predicate: which pattern
/// variables it touches and how selective it is.
pub(crate) struct PredInfo {
    /// Distinct pattern-node indexes referenced, sorted.
    pub node_srcs: Vec<usize>,
    /// Distinct pattern-edge indexes referenced, sorted.
    pub edge_srcs: Vec<usize>,
    pub sel: f64,
}

impl PredInfo {
    fn source_count(&self) -> usize {
        self.node_srcs.len() + self.edge_srcs.len()
    }
}

/// Analyze resolved predicates for the orderer.
pub(crate) fn pred_infos(
    preds: &[PlanExpr],
    slots: &[SlotDef],
    nodes: &[PlanNode],
    edges: &[PlanEdge],
    catalog: &Catalog,
) -> Vec<PredInfo> {
    preds
        .iter()
        .map(|p| {
            let mut node_srcs = Vec::new();
            let mut edge_srcs = Vec::new();
            for s in p.slots() {
                match slots[s].source {
                    SlotSource::NodeProp { node, .. } => node_srcs.push(node),
                    SlotSource::EdgeProp { edge, .. } => edge_srcs.push(edge),
                }
            }
            node_srcs.sort_unstable();
            node_srcs.dedup();
            edge_srcs.sort_unstable();
            edge_srcs.dedup();
            PredInfo { node_srcs, edge_srcs, sel: selectivity(p, slots, nodes, edges, catalog) }
        })
        .collect()
}

// ---- Order enumeration ----------------------------------------------------

/// A predicate spanning more than one pattern variable, applied by the cost
/// model when its last source becomes bound.
struct MultiPred {
    nodes: Vec<usize>,
    edges: Vec<usize>,
    sel: f64,
}

/// Shared context of one ordering run.
struct Cost<'a> {
    nodes: &'a [PlanNode],
    edges: &'a [PlanEdge],
    catalog: &'a Catalog,
    stats: &'a Stats,
    /// Product of single-variable predicate selectivities per node / edge.
    node_sel: Vec<f64>,
    edge_sel: Vec<f64>,
    multi: Vec<MultiPred>,
    pk_node: Option<usize>,
}

/// The incremental state of one candidate order: bound variables, the list
/// group each variable lives in (mirroring [`crate::exec::compile`]),
/// running cardinality and accumulated cost.
#[derive(Clone)]
struct SimState {
    bound_node: Vec<bool>,
    done_edge: Vec<bool>,
    /// List-group placement of every bound variable, shared with the
    /// hinted-order executability check so both mirror [`crate::exec`].
    groups: GroupSim,
    multi_applied: Vec<bool>,
    card: f64,
    cost: f64,
    seq: ExtendSeq,
}

impl<'a> Cost<'a> {
    fn new(
        nodes: &'a [PlanNode],
        edges: &'a [PlanEdge],
        catalog: &'a Catalog,
        stats: &'a Stats,
        preds: &[PredInfo],
        pk_node: Option<usize>,
    ) -> Cost<'a> {
        let mut node_sel = vec![1.0; nodes.len()];
        let mut edge_sel = vec![1.0; edges.len()];
        let mut multi = Vec::new();
        for p in preds {
            match (p.source_count(), p.node_srcs.first(), p.edge_srcs.first()) {
                (0, _, _) => {} // constant predicate: irrelevant to ordering
                (1, Some(&n), _) => node_sel[n] *= p.sel,
                (1, _, Some(&e)) => edge_sel[e] *= p.sel,
                _ => multi.push(MultiPred {
                    nodes: p.node_srcs.clone(),
                    edges: p.edge_srcs.clone(),
                    sel: p.sel,
                }),
            }
        }
        Cost { nodes, edges, catalog, stats, node_sel, edge_sel, multi, pk_node }
    }

    fn start_state(&self, start: usize) -> SimState {
        let vcount = self.stats.vertex(self.nodes[start].label).count as f64;
        let card = vcount * self.node_sel[start];
        let mut groups = GroupSim::new(self.nodes.len(), self.edges.len());
        groups.scan(start);
        SimState {
            bound_node: {
                let mut b = vec![false; self.nodes.len()];
                b[start] = true;
                b
            },
            done_edge: vec![false; self.edges.len()],
            groups,
            multi_applied: vec![false; self.multi.len()],
            card,
            // A pk seek replaces the scan with a constant-time lookup.
            cost: if self.pk_node == Some(start) { 1.0 } else { vcount },
            seq: Vec::with_capacity(self.edges.len()),
        }
    }

    /// Extend `st` along edge `ei`. Returns `false` when the step is not a
    /// valid frontier extension or would make a multi-variable predicate
    /// span two unflat list groups (not executable by the LBP).
    fn apply(&self, st: &mut SimState, ei: usize) -> bool {
        let e = &self.edges[ei];
        let (dir, from, to) = match (st.bound_node[e.from], st.bound_node[e.to]) {
            (true, false) => (Direction::Fwd, e.from, e.to),
            (false, true) => (Direction::Bwd, e.to, e.from),
            _ => return false, // cycle or disconnected
        };
        let single = self.catalog.edge_label(e.label).cardinality.is_single(dir);
        st.groups.extend(ei, from, to, single);
        st.bound_node[to] = true;
        st.done_edge[ei] = true;
        st.card *= self.stats.avg_degree(e.label, dir);
        // The extend materializes its full fan-out before any predicate
        // prunes it: charge the pre-filter cardinality, then discount.
        st.cost += st.card;
        st.card *= self.edge_sel[ei] * self.node_sel[to];
        for (mi, m) in self.multi.iter().enumerate() {
            if st.multi_applied[mi]
                || !m.nodes.iter().all(|&n| st.bound_node[n])
                || !m.edges.iter().all(|&x| st.done_edge[x])
            {
                continue;
            }
            let mut groups: Vec<usize> = m
                .nodes
                .iter()
                .map(|&n| st.groups.group_of_node[n])
                .chain(m.edges.iter().map(|&x| st.groups.group_of_edge[x]))
                .filter(|&g| st.groups.unflat[g])
                .collect();
            groups.sort_unstable();
            groups.dedup();
            if groups.len() >= 2 {
                return false; // Filter would span two unflat groups
            }
            st.multi_applied[mi] = true;
            st.card *= m.sel;
        }
        st.seq.push((ei, dir, from, to));
        true
    }

    /// Exhaustive DFS over connected orders with branch-and-bound pruning.
    fn dfs(&self, st: SimState, best: &mut Option<SimState>) {
        if let Some(b) = best {
            if st.cost >= b.cost {
                return;
            }
        }
        if st.seq.len() == self.edges.len() {
            *best = Some(st);
            return;
        }
        for ei in 0..self.edges.len() {
            if st.done_edge[ei] {
                continue;
            }
            let e = &self.edges[ei];
            if st.bound_node[e.from] == st.bound_node[e.to] {
                continue; // not a frontier edge (or closes a cycle)
            }
            let mut next = st.clone();
            if self.apply(&mut next, ei) {
                self.dfs(next, best);
            }
        }
    }

    /// Frontier edge indexes of `st`.
    fn frontier(&self, st: &SimState) -> Vec<usize> {
        (0..self.edges.len())
            .filter(|&ei| {
                !st.done_edge[ei]
                    && (st.bound_node[self.edges[ei].from] != st.bound_node[self.edges[ei].to])
            })
            .collect()
    }

    /// Greedy construction with one-step lookahead, for large patterns.
    fn greedy(&self, start: usize) -> Option<SimState> {
        let mut st = self.start_state(start);
        while st.seq.len() < self.edges.len() {
            let mut choice: Option<(f64, SimState)> = None;
            for ei in self.frontier(&st) {
                let mut cand = st.clone();
                if !self.apply(&mut cand, ei) {
                    continue;
                }
                // Lookahead: the cheapest valid continuation after `ei`.
                let mut look = f64::INFINITY;
                let mut extensible = cand.seq.len() == self.edges.len();
                for ej in self.frontier(&cand) {
                    let mut two = cand.clone();
                    if self.apply(&mut two, ej) {
                        extensible = true;
                        look = look.min(two.card);
                    }
                }
                if !extensible {
                    continue; // dead end (executability)
                }
                let key = cand.card + if look.is_finite() { look } else { 0.0 };
                if choice.as_ref().is_none_or(|(k, _)| key < *k) {
                    choice = Some((key, cand));
                }
            }
            st = choice?.1;
        }
        Some(st)
    }
}

/// Choose a start node and extend order minimizing the estimated sum of
/// intermediate cardinalities. Returns `None` when the catalog carries no
/// statistics, the pattern has no edges, or no connected executable order
/// exists (cyclic / disconnected patterns — the caller's declaration-order
/// fallback reports those with the established error messages).
pub(crate) fn choose_order(
    nodes: &[PlanNode],
    edges: &[PlanEdge],
    catalog: &Catalog,
    preds: &[PredInfo],
    pk_node: Option<usize>,
    fixed_start: Option<usize>,
) -> Option<Ordering> {
    let stats = catalog.stats()?;
    if edges.is_empty() {
        return None;
    }
    let cost = Cost::new(nodes, edges, catalog, stats, preds, pk_node);
    let starts: Vec<usize> = match fixed_start {
        Some(s) => vec![s],
        None => (0..nodes.len()).collect(),
    };
    let mut best: Option<SimState> = None;
    for &start in &starts {
        if edges.len() <= EXHAUSTIVE_EDGES {
            cost.dfs(cost.start_state(start), &mut best);
        } else if let Some(st) = cost.greedy(start) {
            if best.as_ref().is_none_or(|b| st.cost < b.cost) {
                best = Some(st);
            }
        }
    }
    // Greedy cannot backtrack: a pattern whose multi-variable predicates
    // dead-end every one-step-lookahead path from every start would fall
    // back to declaration order — the exact failure mode this module
    // exists to prevent. Rescue moderately sized patterns with the
    // exhaustive search (8! orders per start at most, pruned).
    if best.is_none() && edges.len() > EXHAUSTIVE_EDGES && edges.len() <= EXHAUSTIVE_EDGES + 2 {
        for &start in &starts {
            cost.dfs(cost.start_state(start), &mut best);
        }
    }
    best.map(|st| Ordering {
        start: st.seq.first().map_or(starts[0], |&(_, _, from, _)| from),
        seq: st.seq,
    })
}

// ---- Per-step estimates and plan-time executability -----------------------

/// Estimated cardinality after each plan step (`None` per step when the
/// catalog has no statistics). Scans set the running estimate, extends
/// multiply it by the average degree, filters by their selectivity;
/// property reads carry it through unchanged.
pub(crate) fn estimate_steps(
    steps: &[PlanStep],
    nodes: &[PlanNode],
    edges: &[PlanEdge],
    slots: &[SlotDef],
    catalog: &Catalog,
) -> Vec<Option<f64>> {
    let Some(stats) = catalog.stats() else {
        return vec![None; steps.len()];
    };
    let mut card = 0.0f64;
    steps
        .iter()
        .map(|s| {
            match s {
                PlanStep::ScanAll { node, pushed } => {
                    card = stats.vertex(nodes[*node].label).count as f64;
                    // Pushed predicates prune inside the scan itself.
                    for e in pushed {
                        card *= selectivity(e, slots, nodes, edges, catalog);
                    }
                }
                PlanStep::ScanPk { .. } => card = 1.0,
                PlanStep::Extend { edge_label, dir, .. } => {
                    card *= stats.avg_degree(*edge_label, *dir);
                }
                PlanStep::Filter { expr } => {
                    card *= selectivity(expr, slots, nodes, edges, catalog);
                }
                PlanStep::NodeProp { .. } | PlanStep::EdgeProp { .. } => {}
            }
            Some(card)
        })
        .collect()
}

/// Estimated sink output cardinality (`None` without statistics): 1 for the
/// scalar aggregates, the final match estimate for projections, and
/// `min(Π NDV(key), final estimate)` for grouped returns. This is the
/// sink-aware half of the cost model: a grouped sink's work is bounded by
/// its group count plus the flattened key positions, never by the full
/// Cartesian tuple count that a projection sink would enumerate.
pub(crate) fn estimate_sink(
    ret: &PlanReturn,
    step_cards: &[Option<f64>],
    slots: &[SlotDef],
    nodes: &[PlanNode],
    edges: &[PlanEdge],
    catalog: &Catalog,
) -> Option<f64> {
    let final_card = step_cards.last().copied().flatten()?;
    Some(match ret {
        PlanReturn::CountStar | PlanReturn::Sum(_) | PlanReturn::Min(_) | PlanReturn::Max(_) => 1.0,
        PlanReturn::Props(_) => final_card,
        PlanReturn::GroupBy { keys, .. } => {
            let ndv_product: f64 = keys
                .iter()
                .map(|&s| {
                    slot_stats(&slots[s], nodes, edges, catalog)
                        .map_or(DEFAULT_NDV, |ps| (ps.ndv as f64).max(1.0))
                })
                .product();
            ndv_product.min(final_card).max(1.0)
        }
    })
}

/// Tracks which list group every pattern variable's vectors land in when
/// [`crate::exec::compile`] lowers the plan, and which groups are still
/// unflat. `Extend` over a CSR (`single == false`) compiles to a
/// `ListExtend`, which flattens its source group and opens a new one;
/// single-cardinality extends compile to `ColumnExtend` and stay in place.
#[derive(Clone)]
pub(crate) struct GroupSim {
    group_of_node: Vec<usize>,
    group_of_edge: Vec<usize>,
    unflat: Vec<bool>,
}

impl GroupSim {
    pub(crate) fn new(n_nodes: usize, n_edges: usize) -> GroupSim {
        GroupSim {
            group_of_node: vec![usize::MAX; n_nodes],
            group_of_edge: vec![usize::MAX; n_edges],
            unflat: vec![true], // group 0 = the scan group
        }
    }

    pub(crate) fn scan(&mut self, node: usize) {
        self.group_of_node[node] = 0;
    }

    /// Apply an extend; returns `true` when it flattens its source group
    /// (a `ListExtend` whose source was still unflat).
    pub(crate) fn extend(&mut self, edge: usize, from: usize, to: usize, single: bool) -> bool {
        if single {
            let g = self.group_of_node[from];
            self.group_of_node[to] = g;
            self.group_of_edge[edge] = g;
            false
        } else {
            let src = self.group_of_node[from];
            let flattens = self.unflat[src];
            self.unflat[src] = false;
            self.unflat.push(true);
            let g = self.unflat.len() - 1;
            self.group_of_node[to] = g;
            self.group_of_edge[edge] = g;
            flattens
        }
    }

    /// Group of the variable behind a slot.
    pub(crate) fn group_of_slot(&self, def: &SlotDef) -> usize {
        match def.source {
            SlotSource::NodeProp { node, .. } => self.group_of_node[node],
            SlotSource::EdgeProp { edge, .. } => self.group_of_edge[edge],
        }
    }

    /// Is list group `g` still unflat at this point of the walk?
    pub(crate) fn is_unflat(&self, g: usize) -> bool {
        self.unflat[g]
    }
}

/// Verify that every `Filter` step touches at most one unflat list group —
/// the invariant [`crate::exec`]'s `Filter` operator enforces at runtime.
/// Orders chosen by the optimizer satisfy this by construction; hinted
/// orders are checked here so a bad `edge_order` fails at plan time with
/// [`Error::Plan`] instead of mid-query.
pub(crate) fn check_executable(plan: &LogicalPlan) -> Result<()> {
    let mut sim = GroupSim::new(plan.nodes.len(), plan.edges.len());
    for step in &plan.steps {
        match step {
            PlanStep::ScanAll { node, .. } | PlanStep::ScanPk { node, .. } => sim.scan(*node),
            PlanStep::Extend { edge, from, to, single, .. } => {
                sim.extend(*edge, *from, *to, *single);
            }
            PlanStep::NodeProp { .. } | PlanStep::EdgeProp { .. } => {}
            PlanStep::Filter { expr } => {
                let mut groups: Vec<usize> = expr
                    .slots()
                    .iter()
                    .map(|&s| sim.group_of_slot(&plan.slots[s]))
                    .filter(|&g| sim.unflat[g])
                    .collect();
                groups.sort_unstable();
                groups.dedup();
                if groups.len() >= 2 {
                    return Err(Error::Plan(format!(
                        "edge order is not executable: predicate ({}) would span two unflat \
                         list groups, which the list-based processor cannot evaluate; use a \
                         different edge order (e.g. via edge_order hints)",
                        expr_str(expr, &plan.slots)
                    )));
                }
            }
        }
    }
    Ok(())
}

/// Estimated fraction of zone-map blocks a pushed-down predicate lets the
/// scan skip, from the catalog statistics (`None` without statistics).
///
/// Two placement models, chosen by predicate shape: range comparisons
/// assume a *value-clustered* column (timestamps, sequential keys — the
/// classic zone-map win), where the skippable fraction is simply the
/// non-matching fraction of the domain; everything else assumes random
/// placement, where a block of [`gfcl_columnar::ZONE_BLOCK`] rows is
/// skippable only if every row misses: `(1 - sel)^B`.
pub(crate) fn zone_skip_estimate(
    e: &PlanExpr,
    slots: &[SlotDef],
    nodes: &[PlanNode],
    edges: &[PlanEdge],
    catalog: &Catalog,
) -> Option<f64> {
    catalog.stats()?;
    let sel = selectivity(e, slots, nodes, edges, catalog);
    let clustered =
        matches!(e, PlanExpr::Cmp { op: CmpOp::Lt | CmpOp::Le | CmpOp::Gt | CmpOp::Ge, .. });
    let skip =
        if clustered { 1.0 - sel } else { (1.0 - sel).powi(gfcl_columnar::ZONE_BLOCK as i32) };
    Some(skip.clamp(0.0, 1.0))
}

/// Estimated data pages the scan faults to probe a pushed-down predicate
/// when the graph is opened from disk: the operand columns' value bytes in
/// [`gfcl_columnar::PAGE_SIZE`] pages, scaled by the fraction of blocks the
/// zone maps let the scan skip *before* faulting. Informational (the
/// in-memory path reads zero pages); `None` without statistics.
pub(crate) fn page_read_estimate(
    e: &PlanExpr,
    slots: &[SlotDef],
    nodes: &[PlanNode],
    edges: &[PlanEdge],
    catalog: &Catalog,
) -> Option<u64> {
    let stats = catalog.stats()?;
    let mut pages = 0.0f64;
    for s in e.slots() {
        let def = &slots[s];
        // Pushed predicates are vertex-side by construction.
        let SlotSource::NodeProp { node, prop } = def.source else {
            continue;
        };
        let vs = stats.vertex(nodes[node].label);
        let width = match def.dtype {
            DataType::Int64 | DataType::Date | DataType::Float64 => 8,
            DataType::Bool => 1,
            // Strings are probed through their dictionary codes, stored at
            // the narrowest width that fits the distinct-value count.
            DataType::String => UIntArray::width_for(vs.props[prop].ndv.saturating_sub(1)),
        };
        pages += (vs.count as f64 * width as f64 / gfcl_columnar::PAGE_SIZE as f64).ceil();
    }
    let skip = zone_skip_estimate(e, slots, nodes, edges, catalog).unwrap_or(0.0);
    Some(((pages * (1.0 - skip)).ceil() as u64).max(1))
}

// ---- EXPLAIN rendering ----------------------------------------------------

fn op_str(op: CmpOp) -> &'static str {
    match op {
        CmpOp::Eq => "=",
        CmpOp::Ne => "<>",
        CmpOp::Lt => "<",
        CmpOp::Le => "<=",
        CmpOp::Gt => ">",
        CmpOp::Ge => ">=",
    }
}

fn scalar_str(s: &PlanScalar, slots: &[SlotDef]) -> String {
    match s {
        PlanScalar::Slot(i) => slots[*i].name.clone(),
        PlanScalar::Const(v) => v.to_string(),
    }
}

/// Human-readable rendering of a resolved predicate.
pub(crate) fn expr_str(e: &PlanExpr, slots: &[SlotDef]) -> String {
    match e {
        PlanExpr::Cmp { op, lhs, rhs } => {
            format!("{} {} {}", scalar_str(lhs, slots), op_str(*op), scalar_str(rhs, slots))
        }
        PlanExpr::StrMatch { op, slot, pattern } => {
            let kw = match op {
                StrOp::Contains => "CONTAINS",
                StrOp::StartsWith => "STARTS WITH",
                StrOp::EndsWith => "ENDS WITH",
            };
            format!("{} {kw} \"{pattern}\"", slots[*slot].name)
        }
        PlanExpr::InSet { slot, values } => {
            let vals: Vec<String> = values.iter().map(ToString::to_string).collect();
            format!("{} IN ({})", slots[*slot].name, vals.join(", "))
        }
        PlanExpr::And(es) => {
            es.iter().map(|e| format!("({})", expr_str(e, slots))).collect::<Vec<_>>().join(" AND ")
        }
        PlanExpr::Or(es) => {
            es.iter().map(|e| format!("({})", expr_str(e, slots))).collect::<Vec<_>>().join(" OR ")
        }
        PlanExpr::Not(inner) => format!("NOT ({})", expr_str(inner, slots)),
    }
}

/// Compact estimate formatting: one decimal below 10, integral above.
fn fmt_est(x: f64) -> String {
    if x >= 9.95 {
        format!("~{x:.0}")
    } else {
        format!("~{x:.1}")
    }
}

/// Render a plan as EXPLAIN text: order provenance, each step with its
/// physical operator and flatten points, and per-step cardinality
/// estimates when statistics are available.
pub fn render_explain(plan: &LogicalPlan, catalog: &Catalog) -> String {
    let mut out = String::new();
    let source = match plan.order_source {
        OrderSource::Hints => "order: hints",
        OrderSource::Stats => "order: statistics",
        OrderSource::Declaration => "order: declaration",
    };
    let _ = writeln!(
        out,
        "QUERY PLAN  ({} nodes, {} edges; {source})",
        plan.nodes.len(),
        plan.edges.len()
    );
    let mut sim = GroupSim::new(plan.nodes.len(), plan.edges.len());
    for (i, step) in plan.steps.iter().enumerate() {
        let desc = match step {
            PlanStep::ScanAll { node, .. } => {
                sim.scan(*node);
                let n = &plan.nodes[*node];
                format!("SCAN      ({}:{})", n.var, catalog.vertex_label(n.label).name)
            }
            PlanStep::ScanPk { node, key } => {
                sim.scan(*node);
                let n = &plan.nodes[*node];
                let def = catalog.vertex_label(n.label);
                let pk = def.primary_key.map_or("pk", |i| def.properties[i].name.as_str());
                format!("SCAN_PK   ({}:{}) {}.{pk} = {key}", n.var, def.name, n.var)
            }
            PlanStep::Extend { edge, edge_label, dir, from, to, single } => {
                let flattens = sim.extend(*edge, *from, *to, *single);
                let label = &catalog.edge_label(*edge_label).name;
                let evar =
                    plan.edges[*edge].var.as_deref().map_or_else(String::new, ToOwned::to_owned);
                let (fv, tv) = (&plan.nodes[*from].var, &plan.nodes[*to].var);
                let arrow = match dir {
                    Direction::Fwd => format!("({fv})-[{evar}:{label}]->({tv})"),
                    Direction::Bwd => format!("({fv})<-[{evar}:{label}]-({tv})"),
                };
                let op = if *single { "ColumnExtend" } else { "ListExtend" };
                let flat = if flattens { format!(", flattens ({fv})") } else { String::new() };
                format!("EXTEND    {arrow}  [{op}{flat}]")
            }
            PlanStep::NodeProp { slot, .. } | PlanStep::EdgeProp { slot, .. } => {
                format!("PROP      {} -> ${slot}", plan.slots[*slot].name)
            }
            PlanStep::Filter { expr } => {
                format!("FILTER    {}", expr_str(expr, &plan.slots))
            }
        };
        let line = match plan.step_cards[i] {
            Some(est) => format!("{:>2}. {desc:<58} est {}", i + 1, fmt_est(est)),
            None => format!("{:>2}. {desc}", i + 1),
        };
        let _ = writeln!(out, "{}", line.trim_end());
        // Pushed-down scan predicates: one sub-line each, with the
        // estimated fraction of zone-map blocks the scan can skip.
        if let PlanStep::ScanAll { pushed, .. } = step {
            for e in pushed {
                let skip = zone_skip_estimate(e, &plan.slots, &plan.nodes, &plan.edges, catalog)
                    .map_or_else(String::new, |s| format!("  [est zone-skip ~{:.0}%]", s * 100.0));
                let io = page_read_estimate(e, &plan.slots, &plan.nodes, &plan.edges, catalog)
                    .map_or_else(String::new, |p| format!("  [~{p} pages read]"));
                let _ = writeln!(out, "      pushed: {}{skip}{io}", expr_str(e, &plan.slots));
            }
        }
    }
    // Grouped sink: which groups hold keys (and must be enumerated when
    // still unflat) vs the unflat groups the aggregates fold by
    // multiplicity without ever flattening.
    if let PlanReturn::GroupBy { keys, .. } = &plan.ret {
        let key_groups: Vec<usize> = {
            let mut g: Vec<usize> =
                keys.iter().map(|&s| sim.group_of_slot(&plan.slots[s])).collect();
            g.sort_unstable();
            g.dedup();
            g
        };
        let enumerated = key_groups.iter().filter(|&&g| sim.unflat[g]).count();
        let folded =
            sim.unflat.iter().enumerate().filter(|(g, &u)| u && !key_groups.contains(g)).count();
        let by = if keys.is_empty() {
            "whole result".to_owned()
        } else {
            keys.iter().map(|&s| plan.slots[s].name.clone()).collect::<Vec<_>>().join(", ")
        };
        let est =
            plan.sink_card.map_or_else(String::new, |c| format!("  est {} groups", fmt_est(c)));
        let _ = writeln!(
            out,
            "    GROUP     BY {by}  [flattens keys only: {enumerated} unflat key group(s) \
             enumerated, {folded} unflat group(s) folded by multiplicity]{est}"
        );
    }
    let ret = match &plan.ret {
        PlanReturn::CountStar => "COUNT(*)".to_owned(),
        PlanReturn::Props(ids) => {
            let cols =
                ids.iter().map(|&s| plan.slots[s].name.clone()).collect::<Vec<_>>().join(", ");
            if plan.distinct {
                format!("DISTINCT {cols}")
            } else {
                cols
            }
        }
        PlanReturn::Sum(s) => format!("SUM({})", plan.slots[*s].name),
        PlanReturn::Min(s) => format!("MIN({})", plan.slots[*s].name),
        PlanReturn::Max(s) => format!("MAX({})", plan.slots[*s].name),
        PlanReturn::GroupBy { .. } => plan.header.join(", "),
    };
    let _ = writeln!(out, "    RETURN    {ret}");
    if !plan.order_by.is_empty() || plan.limit.is_some() {
        let keys = plan
            .order_by
            .iter()
            .map(|&(col, desc)| {
                format!("{} {}", plan.header[col], if desc { "desc" } else { "asc" })
            })
            .collect::<Vec<_>>()
            .join(", ");
        let mut line = String::from("    ");
        if !plan.order_by.is_empty() {
            let _ = write!(line, "ORDER BY  {keys}");
        }
        if let Some(k) = plan.limit {
            if !plan.order_by.is_empty() {
                let _ = write!(line, "  ");
            }
            let _ = write!(line, "LIMIT     {k}");
        }
        let _ = writeln!(out, "{line}");
    }
    // The structural verifier's receipt ([`crate::verify`]): how many
    // invariant checks this plan passed before any engine may compile it.
    match crate::verify::verify_plan(plan, catalog) {
        Ok(report) => {
            let _ = writeln!(out, "    verified: {} invariants", report.checks);
        }
        Err(e) => {
            let _ = writeln!(out, "    NOT VERIFIED: {e}");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{plan, PlanStep};
    use crate::query::{col, eq, ge, gt, lit, PatternQuery};
    use gfcl_storage::{ColumnarGraph, RawGraph, StorageConfig};

    fn catalog_with_stats() -> Catalog {
        ColumnarGraph::build(&RawGraph::example(), StorageConfig::default())
            .unwrap()
            .catalog()
            .clone()
    }

    /// Plan a single-node query and return the selectivity of its filter.
    fn filter_sel(cat: &Catalog, q: &PatternQuery) -> f64 {
        let p = plan(q, cat).unwrap();
        let expr = p
            .steps
            .iter()
            .find_map(|s| match s {
                PlanStep::Filter { expr } => Some(expr.clone()),
                PlanStep::ScanAll { pushed, .. } => pushed.first().cloned(),
                _ => None,
            })
            .expect("query has a filter");
        selectivity(&expr, &p.slots, &p.nodes, &p.edges, cat)
    }

    #[test]
    fn equality_uses_ndv_and_ranges_use_min_max() {
        let cat = catalog_with_stats();
        // PERSON.age has 4 distinct values in [17, 54].
        let eq_q = PatternQuery::builder()
            .node("a", "PERSON")
            .filter(eq(col("a", "age"), lit(45)))
            .returns_count()
            .build();
        assert!((filter_sel(&cat, &eq_q) - 0.25).abs() < 1e-12);
        // age >= 17 covers the whole domain; age > 54 none of it.
        let all = PatternQuery::builder()
            .node("a", "PERSON")
            .filter(ge(col("a", "age"), lit(17)))
            .returns_count()
            .build();
        assert!((filter_sel(&cat, &all) - 1.0).abs() < 1e-12);
        let none = PatternQuery::builder()
            .node("a", "PERSON")
            .filter(gt(col("a", "age"), lit(54)))
            .returns_count()
            .build();
        assert!(filter_sel(&cat, &none) <= MIN_SEL * 1.001);
    }

    #[test]
    fn string_and_slot_slot_predicates_get_default_selectivities() {
        let cat = catalog_with_stats();
        let q = PatternQuery::builder()
            .node("a", "PERSON")
            .filter(crate::query::contains("a", "name", "li"))
            .returns_count()
            .build();
        assert!((filter_sel(&cat, &q) - STR_MATCH_SEL).abs() < 1e-12);
        // e2.since > e1.since: a slot-slot range comparison.
        let q = PatternQuery::builder()
            .node("a", "PERSON")
            .node("b", "PERSON")
            .node("c", "PERSON")
            .edge("e1", "FOLLOWS", "a", "b")
            .edge("e2", "FOLLOWS", "b", "c")
            .filter(gt(col("e2", "since"), col("e1", "since")))
            .returns_count()
            .build();
        assert!((filter_sel(&cat, &q) - RANGE_SEL).abs() < 1e-12);
    }

    #[test]
    fn estimates_multiply_degrees_along_the_plan() {
        let cat = catalog_with_stats();
        // FOLLOWS 1-hop COUNT(*): scan 4 persons, extend by avg degree 2.
        let q = PatternQuery::builder()
            .node("a", "PERSON")
            .node("b", "PERSON")
            .edge("e", "FOLLOWS", "a", "b")
            .returns_count()
            .build();
        let p = plan(&q, &cat).unwrap();
        assert_eq!(p.step_cards[0], Some(4.0));
        assert_eq!(*p.step_cards.last().unwrap(), Some(8.0));
    }

    #[test]
    fn explain_renders_operators_flatten_points_and_estimates() {
        let cat = catalog_with_stats();
        let q = PatternQuery::builder()
            .node("a", "PERSON")
            .node("b", "PERSON")
            .node("c", "ORG")
            .edge("e1", "FOLLOWS", "a", "b")
            .edge("e2", "WORKAT", "b", "c")
            .filter(gt(col("a", "age"), lit(50)))
            .returns_count()
            .start_at("a")
            .edge_order(vec![0, 1])
            .build();
        let p = plan(&q, &cat).unwrap();
        let text = render_explain(&p, &cat);
        assert!(text.contains("order: hints"), "{text}");
        assert!(text.contains("SCAN      (a:PERSON)"), "{text}");
        assert!(text.contains("[ListExtend, flattens (a)]"), "{text}");
        assert!(text.contains("[ColumnExtend]"), "{text}");
        assert!(text.contains("pushed: a.age > 50"), "{text}");
        assert!(text.contains("est zone-skip ~"), "{text}");
        assert!(text.contains("pages read]"), "{text}");
        assert!(text.contains("est ~"), "{text}");
        assert!(text.contains("RETURN    COUNT(*)"), "{text}");
    }
}

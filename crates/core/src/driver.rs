//! The pipeline driver: morsel-driven (optionally parallel) execution of a
//! compiled [`LogicalPlan`] and the factorized aggregation sinks of
//! Section 6.2.
//!
//! The paper evaluates the list-based processor single-threaded; this
//! module adds intra-query parallelism in the style of morsel-driven
//! scheduling (Leis et al., SIGMOD 2014), which composes naturally with
//! the LBP because scans already produce independent
//! [`SCAN_MORSEL`]-sized vertex ranges:
//!
//! * a shared [`ScanCursor`] hands out disjoint `[next, next + 1024)`
//!   vertex ranges with one `fetch_add` per morsel;
//! * each worker owns a **private pipeline** — operators, intermediate
//!   [`crate::chunk::Chunk`], and compiled predicates — instantiated from
//!   the shared plan by `crate::exec::compile`, so no intermediate state
//!   is ever shared;
//! * each worker folds its chunk states into a private `Partial` sink
//!   (count, sum, min/max, or rows);
//! * the partials merge at the scope barrier, in worker-index order, into
//!   the final [`QueryOutput`].
//!
//! Workers run under [`std::thread::scope`], so the graph and plan are
//! borrowed, not `Arc`-ed, and a worker's `Result` propagates at the
//! barrier. With `threads = 1` no thread is spawned and the single
//! pipeline observes exactly the serial morsel sequence, keeping output
//! bit-identical to the historical serial executor.
//!
//! Integer `SUM` accumulates in `i128` and **saturates** to the `i64`
//! domain on overflow instead of silently truncating.

use std::sync::Arc;
use std::time::Duration;

use gfcl_common::{DataType, Result, Value};
use gfcl_storage::{ColumnarGraph, GraphView};

use crate::agg::{self, clamp_i128, improves, GroupTable, OrdValue};
use crate::chunk::VecRef;
use crate::engine::QueryOutput;
use crate::exec::{
    compile, enumerate_rows, vector_value, DistinctSink, GroupBySink, Pipeline, ScanCursor,
    TopKSink, SCAN_MORSEL,
};
use crate::govern::{fault_scope, row_bytes, CancelToken, MemTracker, QueryBudget, QueryGovernor};
use crate::plan::{LogicalPlan, PlanReturn};
use crate::pred::SlotCol;

/// Execution options for the list-based processor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecOptions {
    /// Number of worker pipelines. `1` (the default) runs the historical
    /// serial path on the calling thread; `n > 1` spawns `n` scoped
    /// workers that partition the scan morsel-by-morsel. Validated at
    /// execution time: `0` (the sentinel [`ExecOptions::from_env`] stores
    /// for garbage `GFCL_THREADS` input) is an
    /// [`Error::Plan`](gfcl_common::Error::Plan) naming the variable.
    pub threads: usize,
    /// Scan morsel size: how many vertices each pipeline claims per pull.
    /// [`SCAN_MORSEL`] (1024) by default — equal to the zone-map block, so
    /// one pruned block skips exactly one morsel; tune the two geometries
    /// together via `GFCL_MORSEL`. Validated at execution time: `0` (the
    /// sentinel [`ExecOptions::from_env`] stores for garbage input) is an
    /// [`Error::Plan`](gfcl_common::Error::Plan).
    pub morsel_size: usize,
    /// Wall-clock budget in milliseconds (`GFCL_TIME_LIMIT_MS`); `None`
    /// is unlimited. Checked at morsel boundaries, so an over-budget
    /// query fails with
    /// [`Error::Canceled`](gfcl_common::Error::Canceled) within one
    /// morsel of the limit. `Some(0)` is the invalid-input sentinel,
    /// rejected at execution time.
    pub time_limit_ms: Option<u64>,
    /// Tracked-operator-memory budget in bytes (`GFCL_MEM_LIMIT_MB`,
    /// converted); `None` is unlimited. Covers the allocating sinks —
    /// group tables, top-k buffers, distinct sets, result rows — summed
    /// across workers. `Some(0)` is the invalid-input sentinel.
    pub mem_limit_bytes: Option<u64>,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions {
            threads: 1,
            morsel_size: SCAN_MORSEL,
            time_limit_ms: None,
            mem_limit_bytes: None,
        }
    }
}

impl ExecOptions {
    /// Serial execution (one pipeline on the calling thread).
    pub fn serial() -> ExecOptions {
        ExecOptions::default()
    }

    /// Parallel execution with `threads` workers (clamped to at least 1).
    pub fn with_threads(threads: usize) -> ExecOptions {
        ExecOptions { threads: threads.max(1), ..ExecOptions::default() }
    }

    /// This configuration with a custom scan morsel size.
    pub fn morsel(self, morsel_size: usize) -> ExecOptions {
        ExecOptions { morsel_size, ..self }
    }

    /// This configuration with a wall-clock budget.
    pub fn time_limit_ms(self, ms: u64) -> ExecOptions {
        ExecOptions { time_limit_ms: Some(ms), ..self }
    }

    /// This configuration with a tracked-memory budget.
    pub fn mem_limit_bytes(self, bytes: u64) -> ExecOptions {
        ExecOptions { mem_limit_bytes: Some(bytes), ..self }
    }

    /// Read the worker count from `GFCL_THREADS`, the scan morsel size
    /// from `GFCL_MORSEL`, and the query budgets from
    /// `GFCL_TIME_LIMIT_MS` / `GFCL_MEM_LIMIT_MB` (unset or empty ⇒ the
    /// default for each). This is how CI drives the whole test suite
    /// through the parallel path without touching call sites.
    ///
    /// A set-but-invalid value (unparsable, or zero where a positive
    /// integer is required) is *not* silently defaulted: it is recorded
    /// as that option's invalid sentinel (`0` for `threads` and
    /// `morsel_size`, `Some(0)` for the budgets), which every execution
    /// rejects with a plan error naming the variable — a typo in a tuning
    /// or budget knob must not quietly change what was measured or
    /// enforced.
    pub fn from_env() -> ExecOptions {
        // Unset/empty → None; set → Some(parsed positive) or Some(0).
        let positive = |name: &str| -> Option<u64> {
            match std::env::var(name) {
                Err(_) => None,
                Ok(s) if s.trim().is_empty() => None,
                Ok(s) => Some(s.trim().parse::<u64>().ok().filter(|&v| v > 0).unwrap_or(0)),
            }
        };
        let threads = positive("GFCL_THREADS").unwrap_or(1) as usize;
        let morsel_size = positive("GFCL_MORSEL").unwrap_or(SCAN_MORSEL as u64) as usize;
        let time_limit_ms = positive("GFCL_TIME_LIMIT_MS");
        let mem_limit_bytes =
            positive("GFCL_MEM_LIMIT_MB").map(|mb| mb.saturating_mul(1024 * 1024));
        ExecOptions { threads, morsel_size, time_limit_ms, mem_limit_bytes }
    }

    /// Reject the invalid-input sentinels [`ExecOptions::from_env`]
    /// records, naming the environment variable that produced each.
    fn validate(&self) -> Result<()> {
        let bad = |what: &str| {
            Err(gfcl_common::Error::Plan(format!(
                "{what} must be a positive integer (check ExecOptions / the environment)"
            )))
        };
        if self.threads == 0 {
            return bad("worker count (GFCL_THREADS)");
        }
        if self.morsel_size == 0 {
            return bad("scan morsel size (GFCL_MORSEL)");
        }
        if self.time_limit_ms == Some(0) {
            return bad("time limit (GFCL_TIME_LIMIT_MS)");
        }
        if self.mem_limit_bytes == Some(0) {
            return bad("memory limit (GFCL_MEM_LIMIT_MB)");
        }
        Ok(())
    }

    /// The declarative budget slice of these options.
    pub fn budget(&self) -> QueryBudget {
        QueryBudget {
            time_limit: self.time_limit_ms.map(Duration::from_millis),
            mem_limit_bytes: self.mem_limit_bytes,
        }
    }
}

/// One worker's private sink state. Merging partials is associative and
/// performed in worker-index order, so results are deterministic for a
/// fixed thread count (and for all integer aggregates, for *any* thread
/// count).
enum Partial {
    Count(u64),
    Sum {
        ints: i128,
        floats: f64,
    },
    Best(Value),
    Rows(Vec<Vec<Value>>),
    /// Grouped aggregation: one partial [`GroupTable`] per worker.
    Grouped(GroupTable),
    /// DISTINCT projection: one deduplicated row set per worker.
    Distinct(std::collections::BTreeSet<Vec<OrdValue>>),
}

/// Execute a logical plan on the columnar graph with the list-based
/// processor (serial — one pipeline, the paper's configuration).
pub fn execute(g: &ColumnarGraph, plan: &LogicalPlan) -> Result<QueryOutput> {
    execute_with(g, plan, &ExecOptions::serial())
}

/// Execute a logical plan with `opts.threads` morsel-driven workers.
pub fn execute_with(
    g: &ColumnarGraph,
    plan: &LogicalPlan,
    opts: &ExecOptions,
) -> Result<QueryOutput> {
    execute_view(GraphView::clean(g), plan, opts)
}

/// Execute a logical plan against a snapshot view — the baseline overlaid
/// with the snapshot's delta (if any) — with `opts.threads` morsel-driven
/// workers. The clean-view case is exactly the historical execution path.
pub fn execute_view(
    view: GraphView<'_>,
    plan: &LogicalPlan,
    opts: &ExecOptions,
) -> Result<QueryOutput> {
    execute_view_governed(view, plan, opts, None)
}

/// [`execute_view`] under an externally-owned [`CancelToken`] (the
/// engine's cancellation handle). The query runs inside its own fault
/// domain: the token, `opts`' budgets, and any storage fault reported by
/// a page read on a worker thread all trip the same per-query governor,
/// which every worker observes at its next morsel boundary.
pub fn execute_view_governed(
    view: GraphView<'_>,
    plan: &LogicalPlan,
    opts: &ExecOptions,
    token: Option<Arc<CancelToken>>,
) -> Result<QueryOutput> {
    opts.validate()?;
    let token = token.unwrap_or_default();
    // A handle canceled before the query even started still applies —
    // but a stale trip from a *previous* query on a reused engine token
    // is the engine's to clear (Engine::reset), not ours to ignore.
    token.check()?;
    let gov = Arc::new(QueryGovernor::new(token, opts.budget()));
    let cursor = Arc::new(
        ScanCursor::for_plan_view(view, plan, opts.morsel_size as u64)?.governed(Arc::clone(&gov)),
    );
    // Never spawn more workers than there are morsels to hand out.
    let max_useful = (cursor.total() as usize).div_ceil(opts.morsel_size).max(1);
    let threads = opts.threads.min(max_useful);

    if threads == 1 {
        let _scope = fault_scope(gov.token());
        let mut pipeline = compile(view, plan, &cursor)?;
        let partial = drive(view, plan, &mut pipeline, &gov)?;
        return finish(plan, vec![partial]);
    }

    let partials: Vec<Result<Partial>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let cursor = Arc::clone(&cursor);
                let gov = Arc::clone(&gov);
                scope.spawn(move || {
                    // Per-worker fault domain: a page-read failure on this
                    // thread trips the shared token, and every sibling
                    // stops at its next morsel boundary.
                    let _scope = fault_scope(gov.token());
                    let mut pipeline = compile(view, plan, &cursor)?;
                    drive(view, plan, &mut pipeline, &gov)
                })
            })
            .collect();
        // lint: allow(join() only errs if the worker itself panicked, and
        // re-raising that panic on the driver thread is the intended
        // propagation — recoverable failures arrive as the inner Result)
        handles.into_iter().map(|h| h.join().expect("LBP worker panicked")).collect()
    });
    let partials = partials.into_iter().collect::<Result<Vec<_>>>()?;
    finish(plan, partials)
}

/// Drain one pipeline into a [`Partial`] sink.
///
/// Fault-domain contract: the governor is checked after every pipeline
/// state (and inside the scan's claim loop, which covers morsels the
/// zone maps prune without producing a state), and once more after the
/// loop drains — a partial is never published from a tripped query, so a
/// zeroed placeholder page served to an I/O-faulted worker can never
/// leak into results.
fn drive(
    view: GraphView<'_>,
    plan: &LogicalPlan,
    pipe: &mut Pipeline<'_>,
    gov: &QueryGovernor,
) -> Result<Partial> {
    use crate::chunk::ValueVector;
    match &plan.ret {
        PlanReturn::CountStar => {
            let mut count: u64 = 0;
            while pipe.next_state(view)? {
                gov.checkpoint()?;
                count += pipe.chunk.tuple_count();
            }
            gov.checkpoint()?;
            Ok(Partial::Count(count))
        }
        PlanReturn::Sum(slot) => {
            let r = pipe.slot_refs[*slot];
            let mut sum_i: i128 = 0;
            let mut sum_f: f64 = 0.0;
            while pipe.next_state(view)? {
                gov.checkpoint()?;
                let group = &pipe.chunk.groups[r.group];
                let mult = pipe.chunk.tuple_count_excluding(r.group);
                let mut add = |idx: usize| match &group.vectors[r.vec] {
                    ValueVector::I64 { vals, valid, .. } if valid[idx] => {
                        sum_i += vals[idx] as i128 * mult as i128;
                    }
                    ValueVector::F64 { vals, valid } if valid[idx] => {
                        sum_f += vals[idx] * mult as f64;
                    }
                    _ => {}
                };
                if group.is_flat() {
                    add(group.cur_idx as usize);
                } else {
                    for idx in group.iter_selected() {
                        add(idx);
                    }
                }
            }
            gov.checkpoint()?;
            Ok(Partial::Sum { ints: sum_i, floats: sum_f })
        }
        PlanReturn::Min(slot) | PlanReturn::Max(slot) => {
            let want_min = matches!(plan.ret, PlanReturn::Min(_));
            let r = pipe.slot_refs[*slot];
            let r_col = pipe.slot_cols[*slot];
            let mut best: Value = Value::Null;
            while pipe.next_state(view)? {
                gov.checkpoint()?;
                let group = &pipe.chunk.groups[r.group];
                let mut consider = |idx: usize| {
                    let v = vector_value(&group.vectors[r.vec], idx, r_col);
                    if improves(&best, &v, want_min) {
                        best = v;
                    }
                };
                if group.is_flat() {
                    consider(group.cur_idx as usize);
                } else {
                    for idx in group.iter_selected() {
                        consider(idx);
                    }
                }
            }
            gov.checkpoint()?;
            Ok(Partial::Best(best))
        }
        PlanReturn::Props(slots) if plan.distinct => {
            let mut sink = DistinctSink::new(pipe, slots);
            let mut mem = MemTracker::new(gov);
            while pipe.next_state(view)? {
                sink.absorb(&pipe.chunk);
                mem.update(sink.bytes);
                gov.checkpoint()?;
            }
            gov.checkpoint()?;
            Ok(Partial::Distinct(sink.set))
        }
        PlanReturn::Props(slots) if agg::needs_row_finish(plan) => {
            let mut sink = TopKSink::new(pipe, plan, slots);
            let mut mem = MemTracker::new(gov);
            while pipe.next_state(view)? {
                sink.absorb(&pipe.chunk);
                mem.update(sink.bytes);
                gov.checkpoint()?;
            }
            gov.checkpoint()?;
            Ok(Partial::Rows(sink.rows))
        }
        PlanReturn::Props(slots) => {
            let refs: Vec<(VecRef, SlotCol)> =
                slots.iter().map(|&s| (pipe.slot_refs[s], pipe.slot_cols[s])).collect();
            let mut rows: Vec<Vec<Value>> = Vec::new();
            let mut mem = MemTracker::new(gov);
            let mut bytes: u64 = 0;
            while pipe.next_state(view)? {
                let before = rows.len();
                enumerate_rows(&pipe.chunk, &refs, &mut rows);
                bytes += rows[before..].iter().map(|r| row_bytes(r)).sum::<u64>();
                mem.update(bytes);
                gov.checkpoint()?;
            }
            gov.checkpoint()?;
            Ok(Partial::Rows(rows))
        }
        PlanReturn::GroupBy { keys, aggs } => {
            let mut sink = GroupBySink::new(pipe, keys, aggs);
            let mut mem = MemTracker::new(gov);
            while pipe.next_state(view)? {
                sink.absorb(&pipe.chunk);
                mem.update(sink.approx_bytes());
                gov.checkpoint()?;
            }
            gov.checkpoint()?;
            Ok(Partial::Grouped(sink.finish()))
        }
    }
}

/// Merge worker partials (in worker-index order) into the final output.
fn finish(plan: &LogicalPlan, partials: Vec<Partial>) -> Result<QueryOutput> {
    match &plan.ret {
        PlanReturn::CountStar => {
            let mut count: u64 = 0;
            for p in partials {
                if let Partial::Count(c) = p {
                    count += c;
                }
            }
            Ok(QueryOutput::Count(count))
        }
        PlanReturn::Sum(slot) => {
            let dtype = plan.slots[*slot].dtype;
            let mut sum_i: i128 = 0;
            let mut sum_f: f64 = 0.0;
            for p in partials {
                if let Partial::Sum { ints, floats } = p {
                    sum_i = sum_i.saturating_add(ints);
                    sum_f += floats;
                }
            }
            let value = match dtype {
                DataType::Float64 => Value::Float64(sum_f),
                // Saturate rather than truncate: `SUM` of in-domain i64
                // values can exceed i64, and `as i64` would wrap silently.
                _ => Value::Int64(clamp_i128(sum_i)),
            };
            Ok(QueryOutput::Agg { name: plan.header[0].clone(), value })
        }
        PlanReturn::Min(_) | PlanReturn::Max(_) => {
            let want_min = matches!(plan.ret, PlanReturn::Min(_));
            let mut best: Value = Value::Null;
            for p in partials {
                if let Partial::Best(v) = p {
                    if improves(&best, &v, want_min) {
                        best = v;
                    }
                }
            }
            Ok(QueryOutput::Agg { name: plan.header[0].clone(), value: best })
        }
        PlanReturn::Props(_) => {
            let mut rows: Vec<Vec<Value>> = Vec::new();
            for p in partials {
                match p {
                    Partial::Rows(r) => rows.extend(r),
                    Partial::Distinct(set) => {
                        rows.extend(
                            set.into_iter().map(|r| r.into_iter().map(|v| v.0).collect::<Vec<_>>()),
                        );
                    }
                    _ => {}
                }
            }
            let rows = agg::finalize_rows(plan, rows);
            Ok(QueryOutput::Rows { header: plan.header.clone(), rows })
        }
        PlanReturn::GroupBy { aggs, .. } => {
            let mut table = GroupTable::new(aggs);
            for p in partials {
                if let Partial::Grouped(t) = p {
                    table.merge(t);
                }
            }
            Ok(table.into_output(plan))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exec_options_defaults_and_env() {
        assert_eq!(ExecOptions::default().threads, 1);
        assert_eq!(ExecOptions::serial().threads, 1);
        assert_eq!(ExecOptions::with_threads(0).threads, 1, "clamped");
        assert_eq!(ExecOptions::with_threads(8).threads, 8);
    }

    #[test]
    fn i128_clamp_saturates() {
        assert_eq!(clamp_i128(i64::MAX as i128 + 1), i64::MAX);
        assert_eq!(clamp_i128(i64::MIN as i128 - 1), i64::MIN);
        assert_eq!(clamp_i128(-7), -7);
    }

    #[test]
    fn improves_follows_min_max_semantics() {
        let (a, b) = (Value::Int64(3), Value::Int64(5));
        assert!(improves(&Value::Null, &a, true));
        assert!(improves(&Value::Null, &a, false));
        assert!(!improves(&a, &Value::Null, true));
        assert!(improves(&b, &a, true), "3 beats 5 for MIN");
        assert!(improves(&a, &b, false), "5 beats 3 for MAX");
        assert!(!improves(&a, &b, true));
    }
}

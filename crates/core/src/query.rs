//! The logical query model: acyclic `MATCH` patterns with conjunctive
//! predicates and a return clause (Section 2).
//!
//! This is the query language GraphflowDB's prototype supports —
//! select-project-join over fixed-length subgraph patterns plus a limited
//! form of aggregation — and it is shared by all four engines so that every
//! benchmark runs the *same logical query* under different storage and
//! processing designs.
//!
//! ```
//! use gfcl_core::query::{PatternQuery, col, lit, gt, lt};
//!
//! // MATCH (a:PERSON)-[e:WORKAT]->(b:ORG)
//! // WHERE a.age > 22 AND b.estd < 2015 RETURN *
//! let q = PatternQuery::builder()
//!     .node("a", "PERSON")
//!     .node("b", "ORG")
//!     .edge("e", "WORKAT", "a", "b")
//!     .filter(gt(col("a", "age"), lit(22)))
//!     .filter(lt(col("b", "estd"), lit(2015)))
//!     .returns_count()
//!     .build();
//! assert_eq!(q.nodes.len(), 2);
//! ```

use gfcl_common::{Error, Result, Value};

/// A node variable in the pattern.
#[derive(Debug, Clone, PartialEq)]
pub struct NodePattern {
    pub var: String,
    pub label: String,
}

/// An edge in the pattern, written in the edge label's canonical direction:
/// `from` must match the label's source and `to` its destination. The
/// planner decides the *traversal* direction.
#[derive(Debug, Clone, PartialEq)]
pub struct EdgePattern {
    pub var: Option<String>,
    pub label: String,
    /// Index into [`PatternQuery::nodes`].
    pub from: usize,
    pub to: usize,
}

/// Reference to a property of a pattern variable (node or edge).
#[derive(Debug, Clone, PartialEq)]
pub struct PropRef {
    pub var: String,
    pub prop: String,
}

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

/// String predicates against a constant pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StrOp {
    Contains,
    StartsWith,
    EndsWith,
}

/// A boolean expression over pattern variables.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Comparison between two scalar operands.
    Cmp {
        op: CmpOp,
        lhs: Scalar,
        rhs: Scalar,
    },
    /// String match of a property against a constant pattern.
    StrMatch {
        op: StrOp,
        prop: PropRef,
        pattern: String,
    },
    /// Property value ∈ set of constants.
    InSet {
        prop: PropRef,
        values: Vec<Value>,
    },
    And(Vec<Expr>),
    Or(Vec<Expr>),
    Not(Box<Expr>),
}

/// A scalar operand: a property reference or a constant.
#[derive(Debug, Clone, PartialEq)]
pub enum Scalar {
    Prop(PropRef),
    Const(Value),
}

impl Expr {
    /// All property references in this expression.
    pub fn prop_refs(&self) -> Vec<&PropRef> {
        let mut out = Vec::new();
        self.collect_refs(&mut out);
        out
    }

    fn collect_refs<'a>(&'a self, out: &mut Vec<&'a PropRef>) {
        match self {
            Expr::Cmp { lhs, rhs, .. } => {
                if let Scalar::Prop(p) = lhs {
                    out.push(p);
                }
                if let Scalar::Prop(p) = rhs {
                    out.push(p);
                }
            }
            Expr::StrMatch { prop, .. } => out.push(prop),
            Expr::InSet { prop, .. } => out.push(prop),
            Expr::And(es) | Expr::Or(es) => {
                for e in es {
                    e.collect_refs(out);
                }
            }
            Expr::Not(e) => e.collect_refs(out),
        }
    }
}

/// An aggregate function, per group or whole-result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// `COUNT(*)` — tuples per group (no input property).
    CountStar,
    /// `COUNT(x.p)` / `COUNT(DISTINCT x.p)` — non-NULL (distinct) values.
    Count {
        distinct: bool,
    },
    Sum,
    Min,
    Max,
    /// `AVG(x.p)` — always returns a DOUBLE (exact for integer inputs:
    /// the division happens once, at the end).
    Avg,
}

/// One aggregate call in a `RETURN` clause: the function plus its input
/// property (`None` only for `COUNT(*)`).
#[derive(Debug, Clone, PartialEq)]
pub struct Agg {
    pub func: AggFunc,
    pub prop: Option<PropRef>,
}

impl Agg {
    /// `COUNT(*)`.
    pub fn count_star() -> Agg {
        Agg { func: AggFunc::CountStar, prop: None }
    }

    /// `COUNT(var.prop)` — non-NULL values.
    pub fn count(var: &str, prop: &str) -> Agg {
        Agg { func: AggFunc::Count { distinct: false }, prop: Some(pref(var, prop)) }
    }

    /// `COUNT(DISTINCT var.prop)`.
    pub fn count_distinct(var: &str, prop: &str) -> Agg {
        Agg { func: AggFunc::Count { distinct: true }, prop: Some(pref(var, prop)) }
    }

    /// `SUM(var.prop)`.
    pub fn sum(var: &str, prop: &str) -> Agg {
        Agg { func: AggFunc::Sum, prop: Some(pref(var, prop)) }
    }

    /// `MIN(var.prop)`.
    pub fn min(var: &str, prop: &str) -> Agg {
        Agg { func: AggFunc::Min, prop: Some(pref(var, prop)) }
    }

    /// `MAX(var.prop)`.
    pub fn max(var: &str, prop: &str) -> Agg {
        Agg { func: AggFunc::Max, prop: Some(pref(var, prop)) }
    }

    /// `AVG(var.prop)`.
    pub fn avg(var: &str, prop: &str) -> Agg {
        Agg { func: AggFunc::Avg, prop: Some(pref(var, prop)) }
    }
}

fn pref(var: &str, prop: &str) -> PropRef {
    PropRef { var: var.into(), prop: prop.into() }
}

/// Sort direction of one `ORDER BY` key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SortDir {
    Asc,
    Desc,
}

/// One `ORDER BY` key: an index into the query's output columns (the
/// RETURN projection, or grouping keys followed by aggregates).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OrderKey {
    pub col: usize,
    pub dir: SortDir,
}

/// What the query returns.
#[derive(Debug, Clone, PartialEq)]
pub enum ReturnSpec {
    /// `RETURN COUNT(*)` — the factorized fast path of Section 6.2.
    CountStar,
    /// `RETURN a.x, b.y, ...` — materialized rows.
    Props(Vec<PropRef>),
    /// `RETURN SUM(x.p)` over all matches (with multiplicity).
    Sum(PropRef),
    /// `RETURN MIN(x.p)`.
    Min(PropRef),
    /// `RETURN MAX(x.p)`.
    Max(PropRef),
    /// `RETURN k1, k2, ..., AGG1, AGG2, ...` — grouped aggregation
    /// (Section 6.2 extended: aggregates fold unflat list groups by
    /// multiplicity; only the grouping keys are ever flattened). With no
    /// keys this is a whole-result multi-aggregate.
    GroupBy { keys: Vec<PropRef>, aggs: Vec<Agg> },
}

/// Planner hints: a start variable and/or an explicit edge order, used by
/// the benchmarks to force the forward/backward plans of Section 8.3.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PlanHints {
    pub start: Option<String>,
    /// Order in which pattern edges should be joined (indexes into
    /// [`PatternQuery::edges`]).
    pub edge_order: Option<Vec<usize>>,
}

/// A complete logical query.
#[derive(Debug, Clone, PartialEq)]
pub struct PatternQuery {
    pub nodes: Vec<NodePattern>,
    pub edges: Vec<EdgePattern>,
    /// Conjunctive predicates (`WHERE c1 AND c2 AND ...`).
    pub predicates: Vec<Expr>,
    pub ret: ReturnSpec,
    /// `ORDER BY` keys over the output columns (applies to row-producing
    /// returns: projections and grouped aggregates).
    pub order_by: Vec<OrderKey>,
    /// `LIMIT n` — with `order_by` this is top-k; without, the first `n`
    /// rows in canonical (total) order, so results stay deterministic.
    pub limit: Option<usize>,
    /// `RETURN DISTINCT` (projections only).
    pub distinct: bool,
    pub hints: PlanHints,
}

impl PatternQuery {
    pub fn builder() -> QueryBuilder {
        QueryBuilder::default()
    }

    /// Index of a node variable.
    pub fn node_idx(&self, var: &str) -> Option<usize> {
        self.nodes.iter().position(|n| n.var == var)
    }

    /// Index of an edge variable.
    pub fn edge_idx(&self, var: &str) -> Option<usize> {
        self.edges.iter().position(|e| e.var.as_deref() == Some(var))
    }

    /// Structural validation shared by both query entry points: the fluent
    /// builder ([`QueryBuilder::try_build`]) and direct planning of a
    /// hand-assembled `PatternQuery` (`gfcl_core::plan` calls this before
    /// doing anything else). Errors are `[rule]`-tagged like the plan
    /// verifier's, so a malformed query fails identically no matter which
    /// door it came through.
    pub fn validate(&self) -> Result<()> {
        let fail =
            |rule: &str, msg: String| Err(Error::Plan(format!("query verifier: [{rule}] {msg}")));
        for (i, n) in self.nodes.iter().enumerate() {
            if self.nodes[..i].iter().any(|m| m.var == n.var) {
                return fail("pattern-vars", format!("duplicate node variable {}", n.var));
            }
        }
        for (i, e) in self.edges.iter().enumerate() {
            if let Some(v) = &e.var {
                if self.nodes.iter().any(|n| &n.var == v)
                    || self.edges[..i].iter().any(|d| d.var.as_deref() == Some(v.as_str()))
                {
                    return fail("pattern-vars", format!("duplicate edge variable {v}"));
                }
            }
            if e.from >= self.nodes.len() || e.to >= self.nodes.len() {
                return fail(
                    "index-range",
                    format!(
                        "edge {i} endpoints ({}, {}) exceed the node table (len {})",
                        e.from,
                        e.to,
                        self.nodes.len()
                    ),
                );
            }
        }
        if let ReturnSpec::GroupBy { aggs, .. } = &self.ret {
            for a in aggs {
                if a.prop.is_none() && !matches!(a.func, AggFunc::CountStar) {
                    return fail(
                        "sink-shape",
                        "aggregate other than COUNT(*) needs a property".into(),
                    );
                }
            }
        }
        if self.distinct && !matches!(self.ret, ReturnSpec::Props(_)) {
            return fail(
                "sink-shape",
                "DISTINCT applies to projection returns only (grouped returns are already \
                 distinct per key)"
                    .into(),
            );
        }
        if (!self.order_by.is_empty() || self.limit.is_some())
            && !matches!(self.ret, ReturnSpec::Props(_) | ReturnSpec::GroupBy { .. })
        {
            return fail(
                "sink-shape",
                "order_by/limit apply to row-producing returns (projections or grouped \
                 aggregates)"
                    .into(),
            );
        }
        Ok(())
    }
}

/// An edge awaiting endpoint resolution: the builder records endpoint
/// *names* and resolves them to node indexes at build time, so malformed
/// patterns surface as [`Error::Plan`] from [`QueryBuilder::try_build`]
/// instead of panicking mid-construction.
#[derive(Debug, Clone)]
struct PendingEdge {
    var: Option<String>,
    label: String,
    from: String,
    to: String,
}

/// Fluent builder for [`PatternQuery`].
#[derive(Debug, Default)]
pub struct QueryBuilder {
    nodes: Vec<NodePattern>,
    edges: Vec<PendingEdge>,
    predicates: Vec<Expr>,
    ret: Option<ReturnSpec>,
    group_keys: Vec<PropRef>,
    aggs: Vec<Agg>,
    order_by: Vec<OrderKey>,
    limit: Option<usize>,
    distinct: bool,
    hints: PlanHints,
}

impl QueryBuilder {
    /// Declare a node variable with its label. Duplicate variables are
    /// reported by [`QueryBuilder::try_build`].
    pub fn node(mut self, var: &str, label: &str) -> Self {
        self.nodes.push(NodePattern { var: var.into(), label: label.into() });
        self
    }

    /// Declare an edge `(from)-[var:label]->(to)` between declared nodes.
    /// Undeclared endpoints are reported by [`QueryBuilder::try_build`].
    pub fn edge(mut self, var: &str, label: &str, from: &str, to: &str) -> Self {
        self.edges.push(PendingEdge {
            var: (!var.is_empty()).then(|| var.to_owned()),
            label: label.into(),
            from: from.into(),
            to: to.into(),
        });
        self
    }

    /// Anonymous edge.
    pub fn edge_anon(self, label: &str, from: &str, to: &str) -> Self {
        self.edge("", label, from, to)
    }

    /// Add a conjunct to the WHERE clause.
    pub fn filter(mut self, e: Expr) -> Self {
        self.predicates.push(e);
        self
    }

    pub fn returns_count(mut self) -> Self {
        self.ret = Some(ReturnSpec::CountStar);
        self
    }

    /// `RETURN var.prop, ...`
    pub fn returns(mut self, props: &[(&str, &str)]) -> Self {
        self.ret = Some(ReturnSpec::Props(
            props.iter().map(|(v, p)| PropRef { var: (*v).into(), prop: (*p).into() }).collect(),
        ));
        self
    }

    pub fn returns_sum(mut self, var: &str, prop: &str) -> Self {
        self.ret = Some(ReturnSpec::Sum(PropRef { var: var.into(), prop: prop.into() }));
        self
    }

    pub fn returns_min(mut self, var: &str, prop: &str) -> Self {
        self.ret = Some(ReturnSpec::Min(PropRef { var: var.into(), prop: prop.into() }));
        self
    }

    pub fn returns_max(mut self, var: &str, prop: &str) -> Self {
        self.ret = Some(ReturnSpec::Max(PropRef { var: var.into(), prop: prop.into() }));
        self
    }

    /// `GROUP BY var.prop, ...` — the grouping keys of a grouped-aggregate
    /// return ([`QueryBuilder::returns_agg`]). Calling this without any
    /// aggregates returns one row per distinct key combination.
    pub fn group_by(mut self, keys: &[(&str, &str)]) -> Self {
        self.group_keys.extend(keys.iter().map(|(v, p)| pref(v, p)));
        self
    }

    /// `RETURN <group keys>, agg1, agg2, ...` — aggregate per group (or
    /// whole-result when no [`QueryBuilder::group_by`] keys were declared).
    /// Output columns are the grouping keys followed by the aggregates, in
    /// declaration order.
    pub fn returns_agg(mut self, aggs: Vec<Agg>) -> Self {
        self.aggs.extend(aggs);
        self
    }

    /// `ORDER BY column <asc|desc>`, by output-column index (repeatable;
    /// keys apply in call order). NULLs sort first ascending.
    pub fn order_by(mut self, col: usize, dir: SortDir) -> Self {
        self.order_by.push(OrderKey { col, dir });
        self
    }

    /// `LIMIT n`. Combined with [`QueryBuilder::order_by`] this is a top-k
    /// query; alone it keeps the first `n` rows in canonical order.
    pub fn limit(mut self, n: usize) -> Self {
        self.limit = Some(n);
        self
    }

    /// `RETURN DISTINCT` — deduplicate projection rows.
    pub fn distinct(mut self) -> Self {
        self.distinct = true;
        self
    }

    /// Force the planner to start matching at `var`.
    pub fn start_at(mut self, var: &str) -> Self {
        self.hints.start = Some(var.into());
        self
    }

    /// Force an explicit edge join order.
    pub fn edge_order(mut self, order: Vec<usize>) -> Self {
        self.hints.edge_order = Some(order);
        self
    }

    /// Build the query, validating the pattern. Builder-specific shape
    /// errors (undeclared edge endpoints, conflicting returns clauses) are
    /// reported here; everything structural is delegated to
    /// [`PatternQuery::validate`], the same check `plan()` runs, so both
    /// entry points produce identical `[rule]`-tagged errors.
    pub fn try_build(self) -> Result<PatternQuery> {
        let pos_of = |var: &str| -> Result<usize> {
            self.nodes.iter().position(|n| n.var == var).ok_or_else(|| {
                Error::Plan(format!("edge references undeclared node variable {var}"))
            })
        };
        let mut edges = Vec::with_capacity(self.edges.len());
        for e in &self.edges {
            edges.push(EdgePattern {
                var: e.var.clone(),
                label: e.label.clone(),
                from: pos_of(&e.from)?,
                to: pos_of(&e.to)?,
            });
        }
        let grouped = !self.group_keys.is_empty() || !self.aggs.is_empty();
        let ret = if grouped {
            if self.ret.is_some() {
                return Err(Error::Plan(
                    "group_by/returns_agg cannot be combined with another returns_* clause".into(),
                ));
            }
            ReturnSpec::GroupBy { keys: self.group_keys, aggs: self.aggs }
        } else {
            self.ret.unwrap_or(ReturnSpec::CountStar)
        };
        let q = PatternQuery {
            nodes: self.nodes,
            edges,
            predicates: self.predicates,
            ret,
            order_by: self.order_by,
            limit: self.limit,
            distinct: self.distinct,
            hints: self.hints,
        };
        q.validate()?;
        Ok(q)
    }

    /// Infallible convenience over [`QueryBuilder::try_build`] for
    /// hand-written (statically well-formed) patterns. Panics with the
    /// underlying [`Error::Plan`] message on a malformed pattern.
    pub fn build(self) -> PatternQuery {
        self.try_build().unwrap_or_else(|e| panic!("{e}"))
    }
}

// ---- Expression helper constructors ----

/// `var.prop` operand.
pub fn col(var: &str, prop: &str) -> Scalar {
    Scalar::Prop(PropRef { var: var.into(), prop: prop.into() })
}

/// Constant operand.
pub fn lit(v: impl Into<Value>) -> Scalar {
    Scalar::Const(v.into())
}

/// Date-typed constant operand (plain `i64` literals become `Int64`).
pub fn lit_date(ts: i64) -> Scalar {
    Scalar::Const(Value::Date(ts))
}

macro_rules! cmp_fn {
    ($name:ident, $op:ident) => {
        #[doc = concat!("`lhs ", stringify!($op), " rhs` comparison.")]
        pub fn $name(lhs: Scalar, rhs: Scalar) -> Expr {
            Expr::Cmp { op: CmpOp::$op, lhs, rhs }
        }
    };
}
cmp_fn!(eq, Eq);
cmp_fn!(ne, Ne);
cmp_fn!(lt, Lt);
cmp_fn!(le, Le);
cmp_fn!(gt, Gt);
cmp_fn!(ge, Ge);

/// `var.prop CONTAINS pattern`.
pub fn contains(var: &str, prop: &str, pattern: &str) -> Expr {
    Expr::StrMatch {
        op: StrOp::Contains,
        prop: PropRef { var: var.into(), prop: prop.into() },
        pattern: pattern.into(),
    }
}

/// `var.prop STARTS WITH pattern`.
pub fn starts_with(var: &str, prop: &str, pattern: &str) -> Expr {
    Expr::StrMatch {
        op: StrOp::StartsWith,
        prop: PropRef { var: var.into(), prop: prop.into() },
        pattern: pattern.into(),
    }
}

/// `var.prop ENDS WITH pattern`.
pub fn ends_with(var: &str, prop: &str, pattern: &str) -> Expr {
    Expr::StrMatch {
        op: StrOp::EndsWith,
        prop: PropRef { var: var.into(), prop: prop.into() },
        pattern: pattern.into(),
    }
}

/// `var.prop IN (values...)`.
pub fn in_set(var: &str, prop: &str, values: &[&str]) -> Expr {
    Expr::InSet {
        prop: PropRef { var: var.into(), prop: prop.into() },
        values: values.iter().map(|s| Value::String((*s).to_owned())).collect(),
    }
}

/// Conjunction.
pub fn and(es: Vec<Expr>) -> Expr {
    Expr::And(es)
}

/// Disjunction.
pub fn or(es: Vec<Expr>) -> Expr {
    Expr::Or(es)
}

/// Negation.
pub fn not(e: Expr) -> Expr {
    Expr::Not(Box::new(e))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_constructs_pattern() {
        let q = PatternQuery::builder()
            .node("a", "PERSON")
            .node("b", "PERSON")
            .node("c", "ORG")
            .edge("e1", "FOLLOWS", "a", "b")
            .edge_anon("WORKAT", "b", "c")
            .filter(gt(col("a", "age"), lit(50)))
            .returns(&[("b", "name")])
            .start_at("a")
            .build();
        assert_eq!(q.nodes.len(), 3);
        assert_eq!(q.edges.len(), 2);
        assert_eq!(q.edges[0].var.as_deref(), Some("e1"));
        assert!(q.edges[1].var.is_none());
        assert_eq!(q.node_idx("c"), Some(2));
        assert_eq!(q.edge_idx("e1"), Some(0));
        assert_eq!(q.hints.start.as_deref(), Some("a"));
        assert!(matches!(q.ret, ReturnSpec::Props(_)));
    }

    #[test]
    fn prop_refs_collected_recursively() {
        let e = and(vec![
            gt(col("a", "x"), lit(1)),
            or(vec![contains("b", "s", "foo"), not(eq(col("c", "y"), col("d", "z")))]),
        ]);
        let refs = e.prop_refs();
        let vars: Vec<&str> = refs.iter().map(|r| r.var.as_str()).collect();
        assert_eq!(vars, vec!["a", "b", "c", "d"]);
    }

    #[test]
    fn edge_to_unknown_node_is_a_plan_error() {
        // Regression: this used to panic inside `.edge(...)`; the fallible
        // build path reports it as Error::Plan instead.
        let err = PatternQuery::builder()
            .node("a", "X")
            .edge("e", "E", "a", "missing")
            .try_build()
            .unwrap_err();
        assert!(matches!(err, Error::Plan(_)), "{err:?}");
        assert!(err.to_string().contains("undeclared node variable missing"));
    }

    #[test]
    fn duplicate_node_variable_is_a_plan_error() {
        let err = PatternQuery::builder().node("a", "X").node("a", "Y").try_build().unwrap_err();
        assert!(matches!(err, Error::Plan(_)), "{err:?}");
        assert!(err.to_string().contains("duplicate node variable a"));
    }

    #[test]
    #[should_panic(expected = "undeclared node variable")]
    fn infallible_build_panics_with_the_plan_error() {
        let _ = PatternQuery::builder().node("a", "X").edge("e", "E", "a", "missing").build();
    }

    #[test]
    fn value_conversions() {
        assert_eq!(Value::from(3i64), Value::Int64(3));
        assert_eq!(Value::from("s"), Value::String("s".into()));
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from(1.5f64), Value::Float64(1.5));
    }
}

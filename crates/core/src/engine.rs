//! The [`Engine`] abstraction and the GF-CL engine (columnar storage +
//! list-based processor).
//!
//! All four engines of the evaluation (GF-CL here; GF-RV, GF-CV and the
//! relational baseline in `gfcl-baselines`) execute the same
//! [`LogicalPlan`], so benchmark comparisons isolate storage/processor
//! design, not planning differences.

use std::sync::Arc;

use gfcl_common::{Result, Value};
use gfcl_storage::{Catalog, ColumnarGraph, DeltaSnapshot, GraphSnapshot, GraphView};

use crate::driver::{self, ExecOptions};
use crate::govern::CancelToken;
use crate::plan::{plan, LogicalPlan};
use crate::query::PatternQuery;

/// The result of a query.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryOutput {
    /// `COUNT(*)`.
    Count(u64),
    /// Materialized projection rows.
    Rows { header: Vec<String>, rows: Vec<Vec<Value>> },
    /// A single aggregate value.
    Agg { name: String, value: Value },
}

impl QueryOutput {
    /// Number of result rows (the count itself for `Count`).
    pub fn cardinality(&self) -> u64 {
        match self {
            QueryOutput::Count(n) => *n,
            QueryOutput::Rows { rows, .. } => rows.len() as u64,
            QueryOutput::Agg { .. } => 1,
        }
    }

    /// The count, if this is a `Count` output.
    pub fn as_count(&self) -> Option<u64> {
        match self {
            QueryOutput::Count(n) => Some(*n),
            _ => None,
        }
    }

    /// A canonical, order-insensitive fingerprint used by the cross-engine
    /// equivalence tests: engines may emit rows in different orders.
    pub fn canonical(&self) -> String {
        match self {
            QueryOutput::Count(n) => format!("count:{n}"),
            QueryOutput::Agg { name, value } => format!("agg:{name}={value}"),
            QueryOutput::Rows { header, rows } => {
                let mut lines: Vec<String> = rows
                    .iter()
                    .map(|r| r.iter().map(ToString::to_string).collect::<Vec<_>>().join("|"))
                    .collect();
                lines.sort_unstable();
                format!("rows[{}]:{}", header.join(","), lines.join(";"))
            }
        }
    }
}

/// A query execution engine over some storage layout.
pub trait Engine {
    /// Short name used in benchmark tables ("GF-CL", "GF-RV", ...).
    fn name(&self) -> &'static str;

    /// The catalog queries are planned against.
    fn catalog(&self) -> &Catalog;

    /// Execute a pre-planned logical plan.
    fn run_plan(&self, plan: &LogicalPlan) -> Result<QueryOutput>;

    /// Execute a pre-planned logical plan under explicit [`ExecOptions`].
    ///
    /// The default implementation ignores the options and runs the
    /// engine's native (serial) path — only engines with intra-query
    /// parallelism ([`GfClEngine`]) override this.
    fn run_plan_with(&self, plan: &LogicalPlan, opts: &ExecOptions) -> Result<QueryOutput> {
        let _ = opts;
        self.run_plan(plan)
    }

    /// Plan and execute a query.
    fn execute(&self, q: &PatternQuery) -> Result<QueryOutput> {
        let p = plan(q, self.catalog())?;
        self.run_plan(&p)
    }

    /// Plan and execute a query under explicit [`ExecOptions`].
    fn execute_with(&self, q: &PatternQuery, opts: &ExecOptions) -> Result<QueryOutput> {
        let p = plan(q, self.catalog())?;
        self.run_plan_with(&p, opts)
    }

    /// Plan a query against this engine's catalog (exposed so benchmarks
    /// can plan once and time `run_plan` alone).
    fn plan(&self, q: &PatternQuery) -> Result<LogicalPlan> {
        plan(q, self.catalog())
    }

    /// Render the plan this engine would execute for `q` as EXPLAIN text:
    /// the chosen extend order and its provenance (statistics, hints, or
    /// declaration order), per-step cardinality estimates when the catalog
    /// carries statistics, and the physical operator each extend compiles
    /// to (`ListExtend` vs `ColumnExtend`, with flatten points).
    ///
    /// ```
    /// use std::sync::Arc;
    /// use gfcl_core::{Engine, GfClEngine};
    /// use gfcl_core::query::{col, gt, lit, PatternQuery};
    /// use gfcl_storage::{ColumnarGraph, RawGraph, StorageConfig};
    ///
    /// let graph = ColumnarGraph::build(&RawGraph::example(), StorageConfig::default()).unwrap();
    /// let engine = GfClEngine::new(Arc::new(graph));
    /// let q = PatternQuery::builder()
    ///     .node("a", "PERSON")
    ///     .node("b", "ORG")
    ///     .edge("e", "WORKAT", "a", "b")
    ///     .filter(gt(col("a", "age"), lit(22)))
    ///     .returns_count()
    ///     .build();
    /// let text = engine.explain(&q).unwrap();
    /// assert!(text.contains("EXTEND"), "{text}");
    /// assert!(text.contains("order: statistics"), "{text}");
    /// ```
    fn explain(&self, q: &PatternQuery) -> Result<String> {
        let p = plan(q, self.catalog())?;
        Ok(crate::optimize::render_explain(&p, self.catalog()))
    }

    /// The engine's cancellation handle, when it supports cooperative
    /// cancellation: `cancel(CancelReason::User)` from any thread stops
    /// in-flight and future queries at their next morsel boundary with
    /// [`Error::Canceled`](gfcl_common::Error::Canceled); `reset()`
    /// re-arms the engine. `None` (the default) means the engine runs
    /// queries to completion.
    fn cancel_handle(&self) -> Option<Arc<CancelToken>> {
        None
    }
}

/// GF-CL: columnar storage + list-based processor (the paper's system),
/// optionally with morsel-driven intra-query parallelism.
pub struct GfClEngine {
    graph: Arc<ColumnarGraph>,
    /// Delta overlay when the engine executes against a mutable-store
    /// snapshot; `None` runs the historical clean-graph path.
    delta: Option<Arc<DeltaSnapshot>>,
    opts: ExecOptions,
    /// The engine's cancellation handle: shared with every query this
    /// engine runs, handed out by [`Engine::cancel_handle`]. A trip
    /// sticks until [`CancelToken::reset`].
    cancel: Arc<CancelToken>,
}

impl GfClEngine {
    /// Engine with options from the environment ([`ExecOptions::from_env`]:
    /// `GFCL_THREADS` workers, serial when unset — the paper's
    /// configuration and bit-identical to the historical executor).
    pub fn new(graph: Arc<ColumnarGraph>) -> Self {
        GfClEngine::with_options(graph, ExecOptions::from_env())
    }

    /// Engine with explicit execution options.
    pub fn with_options(graph: Arc<ColumnarGraph>, opts: ExecOptions) -> Self {
        GfClEngine { graph, delta: None, opts, cancel: Arc::new(CancelToken::new()) }
    }

    /// Engine over one MVCC snapshot of a mutable [`gfcl_storage::GraphStore`]:
    /// queries observe `(baseline ⊎ delta) ∖ tombstones` as of the
    /// snapshot's epoch, isolated from concurrent writers.
    pub fn with_snapshot(snapshot: &GraphSnapshot) -> Self {
        GfClEngine::with_snapshot_options(snapshot, ExecOptions::from_env())
    }

    /// [`GfClEngine::with_snapshot`] with explicit execution options.
    pub fn with_snapshot_options(snapshot: &GraphSnapshot, opts: ExecOptions) -> Self {
        let delta = snapshot.delta();
        GfClEngine {
            graph: Arc::clone(snapshot.base()),
            delta: (!delta.is_empty()).then(|| Arc::clone(delta)),
            opts,
            cancel: Arc::new(CancelToken::new()),
        }
    }

    pub fn graph(&self) -> &ColumnarGraph {
        &self.graph
    }

    /// The options every `run_plan`/`execute` call uses.
    pub fn options(&self) -> &ExecOptions {
        &self.opts
    }

    fn view(&self) -> GraphView<'_> {
        GraphView::new(&self.graph, self.delta.as_deref())
    }
}

impl Engine for GfClEngine {
    fn name(&self) -> &'static str {
        "GF-CL"
    }

    fn catalog(&self) -> &Catalog {
        self.graph.catalog()
    }

    fn run_plan(&self, plan: &LogicalPlan) -> Result<QueryOutput> {
        driver::execute_view_governed(self.view(), plan, &self.opts, Some(Arc::clone(&self.cancel)))
    }

    fn run_plan_with(&self, plan: &LogicalPlan, opts: &ExecOptions) -> Result<QueryOutput> {
        driver::execute_view_governed(self.view(), plan, opts, Some(Arc::clone(&self.cancel)))
    }

    fn cancel_handle(&self) -> Option<Arc<CancelToken>> {
        Some(Arc::clone(&self.cancel))
    }
}

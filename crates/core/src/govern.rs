//! Per-query resource governance: time and memory budgets folded into the
//! same [`CancelToken`] that user cancellation and storage faults trip.
//!
//! Every query executed through [`crate::driver`] owns one
//! [`QueryGovernor`]. The governor is checked at *morsel boundaries* — in
//! [`ScanCursor::claim`](crate::exec::ScanCursor) and once per pipeline
//! state inside the driver loop — so a tripped token stops the query
//! within one morsel of the trip point, without any per-tuple overhead on
//! the hot path.
//!
//! The token itself lives in [`gfcl_common::govern`] (re-exported here) so
//! the storage layer, which sits below this crate, can report I/O faults
//! into whichever query's fault scope is installed on the calling thread.
//!
//! Memory accounting is cooperative and approximate-but-conservative:
//! every allocating sink (group tables, top-k heaps, distinct sets,
//! result rows) reports its heap growth through [`MemTracker`], the
//! governor folds per-worker charges into one atomic counter, and
//! exceeding the budget trips [`CancelReason::Memory`] — the query dies
//! cleanly instead of taking the process down with an OOM.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use gfcl_common::{Error, Result, Value};

pub use gfcl_common::govern::{fault_scope, CancelReason, CancelToken, FaultScope};

/// Declarative per-query limits. `None` means unlimited; the default has
/// no limits, so governance is pay-for-what-you-use.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryBudget {
    /// Wall-clock ceiling, checked at every morsel boundary.
    pub time_limit: Option<Duration>,
    /// Ceiling on tracked operator heap memory (group tables, top-k,
    /// distinct sets, buffered result rows) summed across workers.
    pub mem_limit_bytes: Option<u64>,
}

/// The per-query governance state shared by all workers of one execution:
/// the cancel token, the budget, the clock, and the memory counter.
#[derive(Debug)]
pub struct QueryGovernor {
    token: Arc<CancelToken>,
    budget: QueryBudget,
    start: Instant,
    mem: AtomicU64,
    peak: AtomicU64,
}

impl QueryGovernor {
    pub fn new(token: Arc<CancelToken>, budget: QueryBudget) -> QueryGovernor {
        QueryGovernor {
            token,
            budget,
            start: Instant::now(),
            mem: AtomicU64::new(0),
            peak: AtomicU64::new(0),
        }
    }

    /// The token workers install as their fault scope and engines hand
    /// out as the cancellation handle.
    pub fn token(&self) -> &Arc<CancelToken> {
        &self.token
    }

    /// Tracked operator memory right now, summed across workers.
    pub fn mem_bytes(&self) -> u64 {
        self.mem.load(Ordering::Relaxed)
    }

    /// High-water mark of [`QueryGovernor::mem_bytes`].
    pub fn peak_bytes(&self) -> u64 {
        self.peak.load(Ordering::Relaxed)
    }

    /// Milliseconds since the query started.
    pub fn elapsed_ms(&self) -> u64 {
        u64::try_from(self.start.elapsed().as_millis()).unwrap_or(u64::MAX)
    }

    /// The morsel-boundary check: observe an already-tripped token (user
    /// cancel, memory, storage fault reported from below) or trip the
    /// time budget ourselves. `Ok(())` means keep going.
    pub fn checkpoint(&self) -> Result<()> {
        if let Some(reason) = self.token.reason() {
            return Err(self.canceled(reason));
        }
        if let Some(limit) = self.budget.time_limit {
            if self.start.elapsed() > limit {
                self.token.cancel(CancelReason::Timeout);
                return Err(self.canceled(CancelReason::Timeout));
            }
        }
        Ok(())
    }

    /// Charge `bytes` of operator heap growth; trips the memory budget
    /// (and the token) when the new total exceeds it. The caller keeps
    /// running until its next checkpoint — accounting never fails, only
    /// the query does.
    pub fn grow(&self, bytes: u64) {
        if bytes == 0 {
            return;
        }
        let now = self.mem.fetch_add(bytes, Ordering::Relaxed) + bytes;
        self.peak.fetch_max(now, Ordering::Relaxed);
        if let Some(limit) = self.budget.mem_limit_bytes {
            if now > limit {
                self.token.cancel(CancelReason::Memory);
            }
        }
    }

    /// Release `bytes` previously charged with [`QueryGovernor::grow`].
    pub fn shrink(&self, bytes: u64) {
        if bytes > 0 {
            self.mem.fetch_sub(bytes, Ordering::Relaxed);
        }
    }

    /// Build the error for a tripped token, stamped with this query's
    /// elapsed time and memory high-water mark. I/O trips keep their
    /// [`Error::Storage`] identity (the failure is the storage layer's,
    /// not the budget's); everything else is [`Error::Canceled`].
    pub fn canceled(&self, reason: CancelReason) -> Error {
        match reason {
            CancelReason::Io => Error::Storage(
                self.token
                    .io_detail()
                    .unwrap_or_else(|| "storage read failed during execution".into()),
            ),
            reason => Error::Canceled {
                reason,
                elapsed_ms: self.elapsed_ms(),
                peak_bytes: self.peak_bytes(),
            },
        }
    }
}

/// RAII memory charge held by one worker against one sink: call
/// [`MemTracker::update`] with the sink's current byte estimate after
/// each absorb; the delta is charged (or released) on the governor, and
/// the whole charge is released when the worker's pipeline is dropped —
/// merged partials are accounted by the merging thread.
#[derive(Debug)]
pub struct MemTracker<'g> {
    gov: &'g QueryGovernor,
    charged: u64,
}

impl<'g> MemTracker<'g> {
    pub fn new(gov: &'g QueryGovernor) -> MemTracker<'g> {
        MemTracker { gov, charged: 0 }
    }

    /// Reconcile the charge with the sink's current size.
    pub fn update(&mut self, now_bytes: u64) {
        if now_bytes > self.charged {
            self.gov.grow(now_bytes - self.charged);
        } else {
            self.gov.shrink(self.charged - now_bytes);
        }
        self.charged = now_bytes;
    }
}

impl Drop for MemTracker<'_> {
    fn drop(&mut self) {
        self.gov.shrink(self.charged);
    }
}

/// Heap bytes attributable to one [`Value`]: the inline enum plus any
/// owned string buffer. An estimate for budgeting, not an allocator
/// measurement — consistent across engines is what matters.
pub fn value_bytes(v: &Value) -> u64 {
    let heap = match v {
        Value::String(s) => s.capacity() as u64,
        _ => 0,
    };
    std::mem::size_of::<Value>() as u64 + heap
}

/// Heap bytes of one output row (its `Vec` buffer plus string payloads).
pub fn row_bytes(row: &[Value]) -> u64 {
    row.iter().map(value_bytes).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_budget_trips_at_checkpoint() {
        let gov = QueryGovernor::new(
            Arc::new(CancelToken::new()),
            QueryBudget { time_limit: Some(Duration::ZERO), mem_limit_bytes: None },
        );
        std::thread::sleep(Duration::from_millis(2));
        match gov.checkpoint() {
            Err(Error::Canceled { reason: CancelReason::Timeout, .. }) => {}
            other => panic!("expected timeout, got {other:?}"),
        }
        assert_eq!(gov.token().reason(), Some(CancelReason::Timeout));
    }

    #[test]
    fn memory_budget_trips_within_one_checkpoint() {
        let gov = QueryGovernor::new(
            Arc::new(CancelToken::new()),
            QueryBudget { time_limit: None, mem_limit_bytes: Some(100) },
        );
        gov.grow(60);
        assert!(gov.checkpoint().is_ok(), "under budget");
        gov.grow(60);
        match gov.checkpoint() {
            Err(Error::Canceled { reason: CancelReason::Memory, peak_bytes, .. }) => {
                assert_eq!(peak_bytes, 120);
            }
            other => panic!("expected memory cancel, got {other:?}"),
        }
    }

    #[test]
    fn shrink_releases_and_peak_is_sticky() {
        let gov = QueryGovernor::new(Arc::new(CancelToken::new()), QueryBudget::default());
        gov.grow(500);
        gov.shrink(400);
        assert_eq!(gov.mem_bytes(), 100);
        assert_eq!(gov.peak_bytes(), 500);
    }

    #[test]
    fn tracker_reconciles_and_releases_on_drop() {
        let gov = QueryGovernor::new(Arc::new(CancelToken::new()), QueryBudget::default());
        {
            let mut t = MemTracker::new(&gov);
            t.update(300);
            assert_eq!(gov.mem_bytes(), 300);
            t.update(120); // sink shrank (e.g. top-k pruned)
            assert_eq!(gov.mem_bytes(), 120);
        }
        assert_eq!(gov.mem_bytes(), 0, "drop releases the worker's charge");
        assert_eq!(gov.peak_bytes(), 300);
    }

    #[test]
    fn io_trips_surface_as_storage_errors() {
        let gov = QueryGovernor::new(Arc::new(CancelToken::new()), QueryBudget::default());
        gov.token().cancel_io("page 7 unreadable");
        match gov.checkpoint() {
            Err(Error::Storage(detail)) => assert!(detail.contains("page 7")),
            other => panic!("expected storage error, got {other:?}"),
        }
    }

    #[test]
    fn value_accounting_counts_string_heap() {
        let s = Value::String("x".repeat(64));
        assert!(value_bytes(&s) >= 64 + std::mem::size_of::<Value>() as u64);
        assert_eq!(value_bytes(&Value::Int64(1)), std::mem::size_of::<Value>() as u64);
    }
}

//! Compiled vectorized predicates.
//!
//! [`PlanExpr`]s are compiled once per query execution into [`CPred`]s that
//! evaluate directly over chunk vectors. Two columnar techniques from the
//! paper apply here:
//!
//! * **String predicates run on compressed data**: any predicate comparing
//!   a dictionary-encoded string slot with constants (`=`, `<`, `CONTAINS`,
//!   `STARTS WITH`, `IN`, ...) is pre-evaluated once per *distinct* value
//!   against the column's dictionary, producing a bitmap over codes; the
//!   per-row check is then a single bit probe (Section 5.1).
//! * **Flat/list operand mixing** (Section 6.2): a binary expression's
//!   operands may live in a flattened group (a single value) or in the
//!   unflat target group (a block); evaluation broadcasts flat operands.
//!
//! NULL semantics are SQL's three-valued logic: comparisons with NULL are
//! UNKNOWN, and only tuples whose predicate is TRUE survive.

use gfcl_columnar::{Bitmap, Column};
use gfcl_common::{DataType, Error, Result, Value};

use crate::chunk::{Chunk, ValueVector, VecRef};
use crate::plan::{PlanExpr, PlanScalar, SlotDef};
use crate::query::{CmpOp, StrOp};

/// An i64 operand: a slot block or a constant.
#[derive(Debug, Clone, Copy)]
pub enum I64Operand {
    Slot(VecRef),
    Const(i64),
}

/// An f64 operand, possibly promoting an integer slot.
#[derive(Debug, Clone, Copy)]
pub enum F64Operand {
    F64Slot(VecRef),
    I64Slot(VecRef),
    Const(f64),
}

/// A compiled predicate.
#[derive(Debug, Clone)]
pub enum CPred {
    Const(bool),
    CmpI64 {
        op: CmpOp,
        lhs: I64Operand,
        rhs: I64Operand,
    },
    CmpF64 {
        op: CmpOp,
        lhs: F64Operand,
        rhs: F64Operand,
    },
    BoolEq {
        slot: VecRef,
        expected: bool,
    },
    /// String predicate pre-evaluated over the dictionary: true iff the
    /// row's code is set in the bitmap.
    CodeIn {
        slot: VecRef,
        set: Bitmap,
    },
    I64In {
        slot: VecRef,
        set: Vec<i64>,
    },
    And(Vec<CPred>),
    Or(Vec<CPred>),
    Not(Box<CPred>),
}

/// Evaluation position: the target group is indexed by `pos`; every other
/// (flat) group contributes the value at its `cur_idx`.
pub struct EvalCtx<'c> {
    pub chunk: &'c Chunk,
    /// Group whose positions are being scanned (`usize::MAX` = all flat).
    pub target: usize,
    pub pos: usize,
}

impl EvalCtx<'_> {
    #[inline]
    fn index_of(&self, r: VecRef) -> usize {
        if r.group == self.target {
            self.pos
        } else {
            let g = &self.chunk.groups[r.group];
            debug_assert!(g.is_flat(), "non-target group must be flattened");
            g.cur_idx as usize
        }
    }

    #[inline]
    fn read_i64(&self, r: VecRef) -> Option<i64> {
        let idx = self.index_of(r);
        match &self.chunk.groups[r.group].vectors[r.vec] {
            ValueVector::I64 { vals, valid, .. } => valid[idx].then(|| vals[idx]),
            _ => None,
        }
    }

    #[inline]
    fn read_f64(&self, r: VecRef) -> Option<f64> {
        let idx = self.index_of(r);
        match &self.chunk.groups[r.group].vectors[r.vec] {
            ValueVector::F64 { vals, valid } => valid[idx].then(|| vals[idx]),
            _ => None,
        }
    }

    #[inline]
    fn read_bool(&self, r: VecRef) -> Option<bool> {
        let idx = self.index_of(r);
        match &self.chunk.groups[r.group].vectors[r.vec] {
            ValueVector::Bool { vals, valid } => valid[idx].then(|| vals[idx]),
            _ => None,
        }
    }

    #[inline]
    fn read_code(&self, r: VecRef) -> Option<u64> {
        let idx = self.index_of(r);
        match &self.chunk.groups[r.group].vectors[r.vec] {
            ValueVector::Code { vals, valid } => valid[idx].then(|| vals[idx]),
            _ => None,
        }
    }
}

#[inline]
fn cmp_holds<T: PartialOrd>(op: CmpOp, a: T, b: T) -> bool {
    match op {
        CmpOp::Eq => a == b,
        CmpOp::Ne => a != b,
        CmpOp::Lt => a < b,
        CmpOp::Le => a <= b,
        CmpOp::Gt => a > b,
        CmpOp::Ge => a >= b,
    }
}

impl CPred {
    /// Three-valued evaluation at one position. `None` = UNKNOWN.
    pub fn eval(&self, ctx: &EvalCtx<'_>) -> Option<bool> {
        match self {
            CPred::Const(b) => Some(*b),
            CPred::CmpI64 { op, lhs, rhs } => {
                let a = match lhs {
                    I64Operand::Slot(r) => ctx.read_i64(*r)?,
                    I64Operand::Const(k) => *k,
                };
                let b = match rhs {
                    I64Operand::Slot(r) => ctx.read_i64(*r)?,
                    I64Operand::Const(k) => *k,
                };
                Some(cmp_holds(*op, a, b))
            }
            CPred::CmpF64 { op, lhs, rhs } => {
                let read = |o: &F64Operand| -> Option<f64> {
                    match o {
                        F64Operand::F64Slot(r) => ctx.read_f64(*r),
                        F64Operand::I64Slot(r) => ctx.read_i64(*r).map(|v| v as f64),
                        F64Operand::Const(k) => Some(*k),
                    }
                };
                Some(cmp_holds(*op, read(lhs)?, read(rhs)?))
            }
            CPred::BoolEq { slot, expected } => Some(ctx.read_bool(*slot)? == *expected),
            CPred::CodeIn { slot, set } => Some(set.get(ctx.read_code(*slot)? as usize)),
            CPred::I64In { slot, set } => {
                let v = ctx.read_i64(*slot)?;
                Some(set.binary_search(&v).is_ok())
            }
            CPred::And(es) => {
                let mut unknown = false;
                for e in es {
                    match e.eval(ctx) {
                        Some(false) => return Some(false),
                        None => unknown = true,
                        Some(true) => {}
                    }
                }
                if unknown {
                    None
                } else {
                    Some(true)
                }
            }
            CPred::Or(es) => {
                let mut unknown = false;
                for e in es {
                    match e.eval(ctx) {
                        Some(true) => return Some(true),
                        None => unknown = true,
                        Some(false) => {}
                    }
                }
                if unknown {
                    None
                } else {
                    Some(false)
                }
            }
            CPred::Not(e) => e.eval(ctx).map(|b| !b),
        }
    }

    /// TRUE-only convenience: UNKNOWN filters the tuple out.
    #[inline]
    pub fn holds(&self, ctx: &EvalCtx<'_>) -> bool {
        self.eval(ctx) == Some(true)
    }

    /// All slots (as vector refs) this predicate touches.
    pub fn vec_refs(&self) -> Vec<VecRef> {
        let mut out = Vec::new();
        self.collect_refs(&mut out);
        out
    }

    fn collect_refs(&self, out: &mut Vec<VecRef>) {
        match self {
            CPred::Const(_) => {}
            CPred::CmpI64 { lhs, rhs, .. } => {
                if let I64Operand::Slot(r) = lhs {
                    out.push(*r);
                }
                if let I64Operand::Slot(r) = rhs {
                    out.push(*r);
                }
            }
            CPred::CmpF64 { lhs, rhs, .. } => {
                for o in [lhs, rhs] {
                    match o {
                        F64Operand::F64Slot(r) | F64Operand::I64Slot(r) => out.push(*r),
                        F64Operand::Const(_) => {}
                    }
                }
            }
            CPred::BoolEq { slot, .. } | CPred::CodeIn { slot, .. } | CPred::I64In { slot, .. } => {
                out.push(*slot)
            }
            CPred::And(es) | CPred::Or(es) => es.iter().for_each(|e| e.collect_refs(out)),
            CPred::Not(e) => e.collect_refs(out),
        }
    }
}

/// Compile a resolved plan expression. `slot_refs[slot]` locates each
/// slot's vector; `slot_cols[slot]` is the storage column it reads (for
/// dictionary pre-evaluation).
pub fn compile_pred(
    expr: &PlanExpr,
    slot_defs: &[SlotDef],
    slot_refs: &[VecRef],
    slot_cols: &[Option<&Column>],
) -> Result<CPred> {
    let c = Compiler { slot_defs, slot_refs, slot_cols };
    c.compile(expr)
}

struct Compiler<'a> {
    slot_defs: &'a [SlotDef],
    slot_refs: &'a [VecRef],
    slot_cols: &'a [Option<&'a Column>],
}

impl Compiler<'_> {
    fn compile(&self, e: &PlanExpr) -> Result<CPred> {
        match e {
            PlanExpr::And(es) => {
                Ok(CPred::And(es.iter().map(|e| self.compile(e)).collect::<Result<_>>()?))
            }
            PlanExpr::Or(es) => {
                Ok(CPred::Or(es.iter().map(|e| self.compile(e)).collect::<Result<_>>()?))
            }
            PlanExpr::Not(inner) => Ok(CPred::Not(Box::new(self.compile(inner)?))),
            PlanExpr::StrMatch { op, slot, pattern } => {
                let dict = self.dict_of(*slot)?;
                let set = match op {
                    StrOp::Contains => dict.matching_codes(|s| s.contains(pattern.as_str())),
                    StrOp::StartsWith => dict.matching_codes(|s| s.starts_with(pattern.as_str())),
                    StrOp::EndsWith => dict.matching_codes(|s| s.ends_with(pattern.as_str())),
                };
                Ok(CPred::CodeIn { slot: self.slot_refs[*slot], set })
            }
            PlanExpr::InSet { slot, values } => match self.slot_defs[*slot].dtype {
                DataType::String => {
                    let needles: Vec<&str> = values.iter().filter_map(Value::as_str).collect();
                    let dict = self.dict_of(*slot)?;
                    let set = dict.matching_codes(|s| needles.contains(&s));
                    Ok(CPred::CodeIn { slot: self.slot_refs[*slot], set })
                }
                DataType::Int64 | DataType::Date => {
                    let mut set: Vec<i64> = values.iter().filter_map(Value::as_i64).collect();
                    set.sort_unstable();
                    set.dedup();
                    Ok(CPred::I64In { slot: self.slot_refs[*slot], set })
                }
                t => Err(Error::TypeMismatch {
                    expected: "STRING or INT64 for IN".into(),
                    found: t.to_string(),
                }),
            },
            PlanExpr::Cmp { op, lhs, rhs } => self.compile_cmp(*op, lhs, rhs),
        }
    }

    fn compile_cmp(&self, op: CmpOp, lhs: &PlanScalar, rhs: &PlanScalar) -> Result<CPred> {
        use PlanScalar::*;
        let stype = |s: &PlanScalar| -> Option<DataType> {
            match s {
                Slot(i) => Some(self.slot_defs[*i].dtype),
                Const(v) => v.data_type(),
            }
        };
        let lt = stype(lhs);
        let rt = stype(rhs);
        // NULL constant: comparison is always UNKNOWN.
        if lt.is_none() || rt.is_none() {
            return Ok(CPred::And(vec![CPred::Const(true), CPred::Const(false)]));
        }
        let (lt, rt) = (lt.unwrap(), rt.unwrap());

        // String comparisons become dictionary bitmaps.
        if lt == DataType::String || rt == DataType::String {
            return match (lhs, rhs) {
                (Slot(s), Const(c)) => self.string_cmp(*s, op, c),
                (Const(c), Slot(s)) => self.string_cmp(*s, flip(op), c),
                (Slot(_), Slot(_)) => Err(Error::Plan(
                    "string comparisons between two variables are not supported \
                     (dictionaries are per-column)"
                        .into(),
                )),
                (Const(a), Const(b)) => {
                    Ok(CPred::Const(a.compare(b).map(|o| cmp_holds_ord(op, o)) == Some(true)))
                }
            };
        }

        // Bool equality.
        if lt == DataType::Bool || rt == DataType::Bool {
            return match (op, lhs, rhs) {
                (CmpOp::Eq | CmpOp::Ne, Slot(s), Const(c))
                | (CmpOp::Eq | CmpOp::Ne, Const(c), Slot(s)) => {
                    let expected = c.as_bool().ok_or_else(|| Error::TypeMismatch {
                        expected: "BOOL".into(),
                        found: "non-bool".into(),
                    })?;
                    let p = CPred::BoolEq { slot: self.slot_refs[*s], expected };
                    Ok(if op == CmpOp::Ne { CPred::Not(Box::new(p)) } else { p })
                }
                _ => Err(Error::Plan("unsupported boolean comparison".into())),
            };
        }

        // Float if either side is a float; else integer/date.
        let is_float = lt == DataType::Float64 || rt == DataType::Float64;
        if is_float {
            let f_operand = |s: &PlanScalar| -> Result<F64Operand> {
                Ok(match s {
                    Slot(i) => match self.slot_defs[*i].dtype {
                        DataType::Float64 => F64Operand::F64Slot(self.slot_refs[*i]),
                        _ => F64Operand::I64Slot(self.slot_refs[*i]),
                    },
                    Const(v) => F64Operand::Const(v.as_f64().ok_or_else(|| {
                        Error::TypeMismatch { expected: "numeric".into(), found: v.to_string() }
                    })?),
                })
            };
            return Ok(CPred::CmpF64 { op, lhs: f_operand(lhs)?, rhs: f_operand(rhs)? });
        }
        let i_operand = |s: &PlanScalar| -> Result<I64Operand> {
            Ok(match s {
                Slot(i) => I64Operand::Slot(self.slot_refs[*i]),
                Const(v) => I64Operand::Const(v.as_i64().ok_or_else(|| Error::TypeMismatch {
                    expected: "INT64/DATE".into(),
                    found: v.to_string(),
                })?),
            })
        };
        Ok(CPred::CmpI64 { op, lhs: i_operand(lhs)?, rhs: i_operand(rhs)? })
    }

    fn string_cmp(&self, slot: usize, op: CmpOp, konst: &Value) -> Result<CPred> {
        let needle = konst.as_str().ok_or_else(|| Error::TypeMismatch {
            expected: "STRING".into(),
            found: konst.to_string(),
        })?;
        let dict = self.dict_of(slot)?;
        let set = dict.matching_codes(|s| cmp_holds_ord(op, s.cmp(needle)));
        Ok(CPred::CodeIn { slot: self.slot_refs[slot], set })
    }

    fn dict_of(&self, slot: usize) -> Result<&gfcl_columnar::Dictionary> {
        self.slot_cols[slot].and_then(Column::dictionary).ok_or_else(|| Error::TypeMismatch {
            expected: "STRING column".into(),
            found: self.slot_defs[slot].dtype.to_string(),
        })
    }
}

fn flip(op: CmpOp) -> CmpOp {
    match op {
        CmpOp::Lt => CmpOp::Gt,
        CmpOp::Le => CmpOp::Ge,
        CmpOp::Gt => CmpOp::Lt,
        CmpOp::Ge => CmpOp::Le,
        o => o,
    }
}

fn cmp_holds_ord(op: CmpOp, ord: std::cmp::Ordering) -> bool {
    use std::cmp::Ordering::*;
    match op {
        CmpOp::Eq => ord == Equal,
        CmpOp::Ne => ord != Equal,
        CmpOp::Lt => ord == Less,
        CmpOp::Le => ord != Greater,
        CmpOp::Gt => ord == Greater,
        CmpOp::Ge => ord != Less,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chunk::{Chunk, ListGroup, ValueVector};

    fn chunk_with(vals: Vec<i64>, valid: Vec<bool>) -> Chunk {
        let mut g = ListGroup::new(1);
        g.reset(vals.len());
        g.vectors[0] = ValueVector::I64 { vals, valid, date: false };
        Chunk { groups: vec![g] }
    }

    #[test]
    fn i64_comparison_with_nulls() {
        let chunk = chunk_with(vec![5, 10, 0], vec![true, true, false]);
        let p = CPred::CmpI64 {
            op: CmpOp::Gt,
            lhs: I64Operand::Slot(VecRef { group: 0, vec: 0 }),
            rhs: I64Operand::Const(6),
        };
        let at = |pos| p.eval(&EvalCtx { chunk: &chunk, target: 0, pos });
        assert_eq!(at(0), Some(false));
        assert_eq!(at(1), Some(true));
        assert_eq!(at(2), None, "NULL comparison is UNKNOWN");
        assert!(!p.holds(&EvalCtx { chunk: &chunk, target: 0, pos: 2 }));
    }

    #[test]
    fn three_valued_and_or() {
        let chunk = chunk_with(vec![0], vec![false]); // NULL slot
        let r = VecRef { group: 0, vec: 0 };
        let unknown =
            CPred::CmpI64 { op: CmpOp::Eq, lhs: I64Operand::Slot(r), rhs: I64Operand::Const(0) };
        let t = CPred::Const(true);
        let f = CPred::Const(false);
        let ctx = EvalCtx { chunk: &chunk, target: 0, pos: 0 };
        assert_eq!(CPred::And(vec![unknown.clone(), f.clone()]).eval(&ctx), Some(false));
        assert_eq!(CPred::And(vec![unknown.clone(), t.clone()]).eval(&ctx), None);
        assert_eq!(CPred::Or(vec![unknown.clone(), t]).eval(&ctx), Some(true));
        assert_eq!(CPred::Or(vec![unknown.clone(), f]).eval(&ctx), None);
        assert_eq!(CPred::Not(Box::new(unknown)).eval(&ctx), None);
    }

    #[test]
    fn flat_group_broadcast() {
        // Group 0 flat at idx 1, group 1 is the target.
        let mut g0 = ListGroup::new(1);
        g0.reset(3);
        g0.vectors[0] =
            ValueVector::I64 { vals: vec![100, 200, 300], valid: vec![true; 3], date: false };
        g0.cur_idx = 1;
        let mut g1 = ListGroup::new(1);
        g1.reset(2);
        g1.vectors[0] =
            ValueVector::I64 { vals: vec![150, 250], valid: vec![true; 2], date: false };
        let chunk = Chunk { groups: vec![g0, g1] };
        // g1.val > g0.val (flat broadcast of 200)
        let p = CPred::CmpI64 {
            op: CmpOp::Gt,
            lhs: I64Operand::Slot(VecRef { group: 1, vec: 0 }),
            rhs: I64Operand::Slot(VecRef { group: 0, vec: 0 }),
        };
        assert_eq!(p.eval(&EvalCtx { chunk: &chunk, target: 1, pos: 0 }), Some(false));
        assert_eq!(p.eval(&EvalCtx { chunk: &chunk, target: 1, pos: 1 }), Some(true));
    }

    #[test]
    fn code_in_bitmap() {
        let mut g = ListGroup::new(1);
        g.reset(3);
        g.vectors[0] = ValueVector::Code { vals: vec![0, 1, 2], valid: vec![true, true, false] };
        let chunk = Chunk { groups: vec![g] };
        let set = Bitmap::from_bools(&[true, false, true]);
        let p = CPred::CodeIn { slot: VecRef { group: 0, vec: 0 }, set };
        let at = |pos| p.eval(&EvalCtx { chunk: &chunk, target: 0, pos });
        assert_eq!(at(0), Some(true));
        assert_eq!(at(1), Some(false));
        assert_eq!(at(2), None);
    }
}

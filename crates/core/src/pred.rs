//! Compiled vectorized predicates.
//!
//! [`PlanExpr`]s are compiled once per query execution into [`CPredG`]s
//! that evaluate directly over columnar data. Two columnar techniques from
//! the paper apply here:
//!
//! * **String predicates run on compressed data**: any predicate comparing
//!   a dictionary-encoded string slot with constants (`=`, `<`, `CONTAINS`,
//!   `STARTS WITH`, `IN`, ...) is pre-evaluated once per *distinct* value
//!   against the column's dictionary, producing a bitmap over codes; the
//!   per-row check is then a single bit probe (Section 5.1).
//! * **Flat/list operand mixing** (Section 6.2): a binary expression's
//!   operands may live in a flattened group (a single value) or in the
//!   unflat target group (a block); evaluation broadcasts flat operands.
//!
//! The compiled form is generic over *where an operand lives*
//! ([`CPredG<L>`]): the `Filter` operator evaluates [`CPred`]s whose
//! operands are chunk-vector locations ([`VecRef`]), while pushed-down scan
//! predicates evaluate [`ScanPred`]s whose operands are storage columns —
//! one compiler, one evaluation semantics, two operand resolutions, so
//! pushdown can never drift from the in-pipeline filter. Scan predicates
//! additionally support **zone-map pruning** ([`ScanPred::prune`]): a
//! per-block verdict from the column's [`gfcl_columnar::ZoneMap`] that lets
//! the scan skip whole blocks without reading a single value.
//!
//! NULL semantics are SQL's three-valued logic: comparisons with NULL are
//! UNKNOWN, and only tuples whose predicate is TRUE survive.

use gfcl_columnar::{Bitmap, Column, Dictionary, ZoneInfo};

use gfcl_common::{DataType, Error, LabelId, Result, Value};
use gfcl_storage::{GraphView, StrExt};

use crate::chunk::{Chunk, ValueVector, VecRef};
use crate::plan::{PlanExpr, PlanScalar, SlotDef, SlotId};
use crate::query::{CmpOp, StrOp};

/// The storage backing of one plan slot: the baseline column (dictionary
/// decode and pre-evaluation) plus, when the graph carries uncommitted
/// mutations, the delta's string extension for values absent from the
/// baseline dictionary. Code spaces concatenate: codes `< dict.len()` are
/// baseline, codes `>= dict.len()` resolve through the extension.
#[derive(Debug, Clone, Copy, Default)]
pub struct SlotCol<'g> {
    pub col: Option<&'g Column>,
    pub ext: Option<&'g StrExt>,
}

impl<'g> SlotCol<'g> {
    /// A slot backed by a baseline column only (the clean-graph case).
    pub fn clean(col: Option<&'g Column>) -> SlotCol<'g> {
        SlotCol { col, ext: None }
    }
}

/// An i64 operand: a located slot or a constant.
#[derive(Debug, Clone, Copy)]
pub enum I64Operand<L> {
    Slot(L),
    Const(i64),
}

/// An f64 operand, possibly promoting an integer slot.
#[derive(Debug, Clone, Copy)]
pub enum F64Operand<L> {
    F64Slot(L),
    I64Slot(L),
    Const(f64),
}

/// A compiled predicate over operand locations `L`.
#[derive(Debug, Clone)]
pub enum CPredG<L> {
    Const(bool),
    /// UNKNOWN for every row (a comparison with a literal NULL).
    Unknown,
    CmpI64 {
        op: CmpOp,
        lhs: I64Operand<L>,
        rhs: I64Operand<L>,
    },
    CmpF64 {
        op: CmpOp,
        lhs: F64Operand<L>,
        rhs: F64Operand<L>,
    },
    BoolEq {
        slot: L,
        expected: bool,
    },
    /// String predicate pre-evaluated over the dictionary: true iff the
    /// row's code is set in the bitmap.
    CodeIn {
        slot: L,
        set: Bitmap,
    },
    I64In {
        slot: L,
        set: Vec<i64>,
    },
    And(Vec<CPredG<L>>),
    Or(Vec<CPredG<L>>),
    Not(Box<CPredG<L>>),
}

/// The in-pipeline compiled predicate: operands are chunk-vector locations.
pub type CPred = CPredG<VecRef>;

/// A pushed-down scan predicate: operands are storage columns, evaluated
/// positionally at a vertex offset (and pruned block-wise via zone maps).
pub type ScanPred<'g> = CPredG<&'g Column>;

/// Resolves an operand location to a typed value (three-valued: `None` =
/// NULL).
pub trait PredReader<L> {
    fn i64(&self, loc: &L) -> Option<i64>;
    fn f64(&self, loc: &L) -> Option<f64>;
    fn bool(&self, loc: &L) -> Option<bool>;
    fn code(&self, loc: &L) -> Option<u64>;
}

/// Evaluation position: the target group is indexed by `pos`; every other
/// (flat) group contributes the value at its `cur_idx`.
pub struct EvalCtx<'c> {
    pub chunk: &'c Chunk,
    /// Group whose positions are being scanned (`usize::MAX` = all flat).
    pub target: usize,
    pub pos: usize,
}

impl EvalCtx<'_> {
    #[inline]
    fn index_of(&self, r: VecRef) -> usize {
        if r.group == self.target {
            self.pos
        } else {
            let g = &self.chunk.groups[r.group];
            debug_assert!(g.is_flat(), "non-target group must be flattened");
            g.cur_idx as usize
        }
    }
}

impl PredReader<VecRef> for EvalCtx<'_> {
    #[inline]
    fn i64(&self, r: &VecRef) -> Option<i64> {
        let idx = self.index_of(*r);
        match &self.chunk.groups[r.group].vectors[r.vec] {
            ValueVector::I64 { vals, valid, .. } => valid[idx].then(|| vals[idx]),
            _ => None,
        }
    }

    #[inline]
    fn f64(&self, r: &VecRef) -> Option<f64> {
        let idx = self.index_of(*r);
        match &self.chunk.groups[r.group].vectors[r.vec] {
            ValueVector::F64 { vals, valid } => valid[idx].then(|| vals[idx]),
            _ => None,
        }
    }

    #[inline]
    fn bool(&self, r: &VecRef) -> Option<bool> {
        let idx = self.index_of(*r);
        match &self.chunk.groups[r.group].vectors[r.vec] {
            ValueVector::Bool { vals, valid } => valid[idx].then(|| vals[idx]),
            _ => None,
        }
    }

    #[inline]
    fn code(&self, r: &VecRef) -> Option<u64> {
        let idx = self.index_of(*r);
        match &self.chunk.groups[r.group].vectors[r.vec] {
            ValueVector::Code { vals, valid } => valid[idx].then(|| vals[idx]),
            _ => None,
        }
    }
}

/// Positional reader over storage columns: operand `&Column`, row = the
/// vertex offset `v`.
pub struct ScanCtx {
    pub v: usize,
}

impl PredReader<&Column> for ScanCtx {
    #[inline]
    fn i64(&self, col: &&Column) -> Option<i64> {
        col.get_i64(self.v)
    }

    #[inline]
    fn f64(&self, col: &&Column) -> Option<f64> {
        col.get_f64(self.v)
    }

    #[inline]
    fn bool(&self, col: &&Column) -> Option<bool> {
        col.get_bool(self.v)
    }

    #[inline]
    fn code(&self, col: &&Column) -> Option<u64> {
        col.get_code(self.v)
    }
}

/// Operand of a row-level predicate: a vertex property index plus the
/// dictionary/extension needed to translate string values back into the
/// compiled bitmap's code space.
#[derive(Debug, Clone, Copy)]
pub struct RowOperand<'g> {
    pub prop: usize,
    pub dict: Option<&'g Dictionary>,
    pub ext: Option<&'g StrExt>,
}

/// A pushed-down predicate recompiled for row-at-a-time evaluation through
/// a [`GraphView`]: the scan falls back to this for rows the delta touches
/// (updated, inserted, or inside a tombstoned block), where the baseline
/// columns no longer tell the truth.
pub type RowPred<'g> = CPredG<RowOperand<'g>>;

/// Reader evaluating a [`RowPred`] at one vertex of one label.
pub struct RowCtx<'g> {
    pub view: GraphView<'g>,
    pub label: LabelId,
    pub off: u64,
}

impl<'g> PredReader<RowOperand<'g>> for RowCtx<'g> {
    #[inline]
    fn i64(&self, o: &RowOperand<'g>) -> Option<i64> {
        match self.view.vertex_value(self.label, self.off, o.prop) {
            Value::Int64(v) | Value::Date(v) => Some(v),
            _ => None,
        }
    }

    #[inline]
    fn f64(&self, o: &RowOperand<'g>) -> Option<f64> {
        match self.view.vertex_value(self.label, self.off, o.prop) {
            Value::Float64(v) => Some(v),
            _ => None,
        }
    }

    #[inline]
    fn bool(&self, o: &RowOperand<'g>) -> Option<bool> {
        match self.view.vertex_value(self.label, self.off, o.prop) {
            Value::Bool(v) => Some(v),
            _ => None,
        }
    }

    #[inline]
    fn code(&self, o: &RowOperand<'g>) -> Option<u64> {
        match self.view.vertex_value(self.label, self.off, o.prop) {
            Value::String(s) => o
                .dict
                .and_then(|d| d.code_of(&s))
                .map(u64::from)
                .or_else(|| o.ext.and_then(|e| e.code_of(&s))),
            _ => None,
        }
    }
}

impl<'g> RowPred<'g> {
    /// TRUE-only evaluation at one `(label, off)` vertex of `view`.
    #[inline]
    pub fn holds_row(&self, view: GraphView<'g>, label: LabelId, off: u64) -> bool {
        self.eval_with(&RowCtx { view, label, off }) == Some(true)
    }
}

#[inline]
fn cmp_holds<T: PartialOrd>(op: CmpOp, a: T, b: T) -> bool {
    match op {
        CmpOp::Eq => a == b,
        CmpOp::Ne => a != b,
        CmpOp::Lt => a < b,
        CmpOp::Le => a <= b,
        CmpOp::Gt => a > b,
        CmpOp::Ge => a >= b,
    }
}

impl<L> CPredG<L> {
    /// Three-valued evaluation at one position. `None` = UNKNOWN.
    pub fn eval_with<R: PredReader<L>>(&self, r: &R) -> Option<bool> {
        match self {
            CPredG::Const(b) => Some(*b),
            CPredG::Unknown => None,
            CPredG::CmpI64 { op, lhs, rhs } => {
                let a = match lhs {
                    I64Operand::Slot(l) => r.i64(l)?,
                    I64Operand::Const(k) => *k,
                };
                let b = match rhs {
                    I64Operand::Slot(l) => r.i64(l)?,
                    I64Operand::Const(k) => *k,
                };
                Some(cmp_holds(*op, a, b))
            }
            CPredG::CmpF64 { op, lhs, rhs } => {
                let read = |o: &F64Operand<L>| -> Option<f64> {
                    match o {
                        F64Operand::F64Slot(l) => r.f64(l),
                        F64Operand::I64Slot(l) => r.i64(l).map(|v| v as f64),
                        F64Operand::Const(k) => Some(*k),
                    }
                };
                Some(cmp_holds(*op, read(lhs)?, read(rhs)?))
            }
            CPredG::BoolEq { slot, expected } => Some(r.bool(slot)? == *expected),
            CPredG::CodeIn { slot, set } => {
                // A code past the bitmap cannot be in the set. (Delta string
                // extensions grow the code space; predicates compiled before
                // the extension existed stay sound.)
                let c = r.code(slot)? as usize;
                Some(c < set.len() && set.get(c))
            }
            CPredG::I64In { slot, set } => {
                let v = r.i64(slot)?;
                Some(set.binary_search(&v).is_ok())
            }
            CPredG::And(es) => {
                let mut unknown = false;
                for e in es {
                    match e.eval_with(r) {
                        Some(false) => return Some(false),
                        None => unknown = true,
                        Some(true) => {}
                    }
                }
                if unknown {
                    None
                } else {
                    Some(true)
                }
            }
            CPredG::Or(es) => {
                let mut unknown = false;
                for e in es {
                    match e.eval_with(r) {
                        Some(true) => return Some(true),
                        None => unknown = true,
                        Some(false) => {}
                    }
                }
                if unknown {
                    None
                } else {
                    Some(false)
                }
            }
            CPredG::Not(e) => e.eval_with(r).map(|b| !b),
        }
    }
}

impl CPred {
    /// Three-valued evaluation at one chunk position. `None` = UNKNOWN.
    pub fn eval(&self, ctx: &EvalCtx<'_>) -> Option<bool> {
        self.eval_with(ctx)
    }

    /// TRUE-only convenience: UNKNOWN filters the tuple out.
    #[inline]
    pub fn holds(&self, ctx: &EvalCtx<'_>) -> bool {
        self.eval(ctx) == Some(true)
    }

    /// All slots (as vector refs) this predicate touches.
    pub fn vec_refs(&self) -> Vec<VecRef> {
        let mut out = Vec::new();
        self.collect_refs(&mut out);
        out
    }

    fn collect_refs(&self, out: &mut Vec<VecRef>) {
        match self {
            CPredG::Const(_) | CPredG::Unknown => {}
            CPredG::CmpI64 { lhs, rhs, .. } => {
                if let I64Operand::Slot(r) = lhs {
                    out.push(*r);
                }
                if let I64Operand::Slot(r) = rhs {
                    out.push(*r);
                }
            }
            CPredG::CmpF64 { lhs, rhs, .. } => {
                for o in [lhs, rhs] {
                    match o {
                        F64Operand::F64Slot(r) | F64Operand::I64Slot(r) => out.push(*r),
                        F64Operand::Const(_) => {}
                    }
                }
            }
            CPredG::BoolEq { slot, .. }
            | CPredG::CodeIn { slot, .. }
            | CPredG::I64In { slot, .. } => out.push(*slot),
            CPredG::And(es) | CPredG::Or(es) => es.iter().for_each(|e| e.collect_refs(out)),
            CPredG::Not(e) => e.collect_refs(out),
        }
    }
}

// ---- Zone-map pruning ------------------------------------------------------

/// What a zone map can prove about one block under a scan predicate, in
/// terms of `holds` (TRUE-only) semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockVerdict {
    /// Every row in the block satisfies the predicate (no row is NULL on
    /// any input): the whole block passes without evaluation.
    AllTrue,
    /// No row in the block can satisfy the predicate: skip the block.
    AllFalse,
    /// The summary is inconclusive: evaluate row by row.
    Mixed,
}

impl BlockVerdict {
    /// Conjunction of two verdicts (`holds` of `a AND b`).
    pub fn and(self, other: BlockVerdict) -> BlockVerdict {
        use BlockVerdict::*;
        match (self, other) {
            (AllFalse, _) | (_, AllFalse) => AllFalse,
            (AllTrue, AllTrue) => AllTrue,
            _ => Mixed,
        }
    }
}

/// Zone entry of `col`'s block `b`, when a zone map exists and the block is
/// in range.
fn zone_entry(col: &Column, b: usize) -> Option<&gfcl_columnar::ZoneEntry> {
    let zm = col.zone_map()?;
    (b < zm.n_blocks()).then(|| zm.block(b))
}

/// `(every value satisfies, no value satisfies)` for `value op k` over a
/// domain `[min, max]` — the single truth table shared by the integer and
/// float pruners, so their semantics cannot drift apart. With a NaN
/// endpoint or constant every comparison below is false, and both flags
/// come back false (= inconclusive), which is the conservative answer.
fn ordered_flags<T: PartialOrd + Copy>(op: CmpOp, min: T, max: T, k: T) -> (bool, bool) {
    match op {
        CmpOp::Eq => (min >= k && max <= k, k < min || k > max),
        CmpOp::Ne => (k < min || k > max, min >= k && max <= k),
        CmpOp::Lt => (max < k, min >= k),
        CmpOp::Le => (max <= k, min > k),
        CmpOp::Gt => (min > k, max <= k),
        CmpOp::Ge => (min >= k, max < k),
    }
}

/// Verdict of `col[block] op k` over an integer domain `[min, max]`.
fn ordered_verdict<T: PartialOrd + Copy>(
    op: CmpOp,
    min: T,
    max: T,
    k: T,
    has_nulls: bool,
) -> BlockVerdict {
    let (all_t, all_f) = ordered_flags(op, min, max, k);
    if all_f {
        BlockVerdict::AllFalse
    } else if all_t && !has_nulls {
        BlockVerdict::AllTrue
    } else {
        BlockVerdict::Mixed
    }
}

fn prune_i64(col: &Column, b: usize, op: CmpOp, k: i64) -> BlockVerdict {
    let Some(e) = zone_entry(col, b) else { return BlockVerdict::Mixed };
    if e.all_null() {
        return BlockVerdict::AllFalse;
    }
    match e.info {
        ZoneInfo::I64 { min, max } => ordered_verdict(op, min, max, k, e.has_nulls()),
        _ => BlockVerdict::Mixed,
    }
}

/// `col[block] op k` for a float comparison; `col` may be an integer column
/// promoted to f64.
fn prune_f64(col: &Column, b: usize, op: CmpOp, k: f64, int_col: bool) -> BlockVerdict {
    let Some(e) = zone_entry(col, b) else { return BlockVerdict::Mixed };
    if e.all_null() {
        return BlockVerdict::AllFalse;
    }
    let (min, max, has_nan) = match e.info {
        ZoneInfo::I64 { min, max } if int_col => (min as f64, max as f64, false),
        ZoneInfo::F64 { min, max, has_nan } if !int_col => (min, max, has_nan),
        _ => return BlockVerdict::Mixed,
    };
    // Verdict over the non-NaN domain (vacuously both when empty)...
    let (mut all_t, mut all_f) =
        if min <= max { ordered_flags(op, min, max, k) } else { (true, true) };
    // ...adjusted for NaN rows: a NaN value fails every ordered comparison
    // and `=` but satisfies `<>` — against ANY constant, NaN included
    // (IEEE 754: `NaN != x` is true for every x).
    if has_nan {
        if op == CmpOp::Ne {
            all_f = false;
        } else {
            all_t = false;
        }
    }
    if all_f {
        BlockVerdict::AllFalse
    } else if all_t && !e.has_nulls() {
        BlockVerdict::AllTrue
    } else {
        BlockVerdict::Mixed
    }
}

impl<'g> ScanPred<'g> {
    /// Evaluate at vertex offset `v` (three-valued).
    #[inline]
    pub fn eval_at(&self, v: usize) -> Option<bool> {
        self.eval_with(&ScanCtx { v })
    }

    /// TRUE-only evaluation at vertex offset `v`.
    #[inline]
    pub fn holds_at(&self, v: usize) -> bool {
        self.eval_at(v) == Some(true)
    }

    /// Call `f` on every operand column the predicate touches — the scan
    /// uses this to pin (or skip-account) a block's pages before probing.
    pub fn for_each_column(&self, f: &mut impl FnMut(&'g Column)) {
        match self {
            CPredG::Const(_) | CPredG::Unknown => {}
            CPredG::CmpI64 { lhs, rhs, .. } => {
                for o in [lhs, rhs] {
                    if let I64Operand::Slot(c) = o {
                        f(c);
                    }
                }
            }
            CPredG::CmpF64 { lhs, rhs, .. } => {
                for o in [lhs, rhs] {
                    match o {
                        F64Operand::F64Slot(c) | F64Operand::I64Slot(c) => f(c),
                        F64Operand::Const(_) => {}
                    }
                }
            }
            CPredG::BoolEq { slot, .. }
            | CPredG::CodeIn { slot, .. }
            | CPredG::I64In { slot, .. } => f(slot),
            CPredG::And(es) | CPredG::Or(es) => es.iter().for_each(|e| e.for_each_column(f)),
            CPredG::Not(e) => e.for_each_column(f),
        }
    }

    /// Consult the operand columns' zone maps for a verdict over zone block
    /// `b` (positions `[b * ZONE_BLOCK, (b+1) * ZONE_BLOCK)`). Conservative:
    /// any missing zone map or inconclusive summary yields
    /// [`BlockVerdict::Mixed`].
    pub fn prune(&self, b: usize) -> BlockVerdict {
        use BlockVerdict::*;
        match self {
            CPredG::Const(true) => AllTrue,
            CPredG::Const(false) | CPredG::Unknown => AllFalse,
            CPredG::CmpI64 { op, lhs, rhs } => match (lhs, rhs) {
                (I64Operand::Slot(c), I64Operand::Const(k)) => prune_i64(c, b, *op, *k),
                (I64Operand::Const(k), I64Operand::Slot(c)) => prune_i64(c, b, flip(*op), *k),
                (I64Operand::Const(a), I64Operand::Const(k)) => {
                    if cmp_holds(*op, *a, *k) {
                        AllTrue
                    } else {
                        AllFalse
                    }
                }
                (I64Operand::Slot(_), I64Operand::Slot(_)) => Mixed,
            },
            CPredG::CmpF64 { op, lhs, rhs } => {
                let side = |o: &F64Operand<&'g Column>| match o {
                    F64Operand::F64Slot(c) => Some((*c, false)),
                    F64Operand::I64Slot(c) => Some((*c, true)),
                    F64Operand::Const(_) => None,
                };
                match (side(lhs), side(rhs)) {
                    (Some((c, int_col)), None) => {
                        let F64Operand::Const(k) = rhs else { unreachable!() };
                        prune_f64(c, b, *op, *k, int_col)
                    }
                    (None, Some((c, int_col))) => {
                        let F64Operand::Const(k) = lhs else { unreachable!() };
                        prune_f64(c, b, flip(*op), *k, int_col)
                    }
                    _ => Mixed,
                }
            }
            CPredG::BoolEq { slot, expected } => {
                let Some(e) = zone_entry(slot, b) else { return Mixed };
                if e.all_null() {
                    return AllFalse;
                }
                match e.info {
                    ZoneInfo::Bool { any_true, any_false } => {
                        let (hit, miss) =
                            if *expected { (any_true, any_false) } else { (any_false, any_true) };
                        if !hit {
                            AllFalse
                        } else if !miss && !e.has_nulls() {
                            AllTrue
                        } else {
                            Mixed
                        }
                    }
                    _ => Mixed,
                }
            }
            CPredG::CodeIn { slot, set } => {
                let Some(e) = zone_entry(slot, b) else { return Mixed };
                if e.all_null() {
                    return AllFalse;
                }
                match &e.info {
                    ZoneInfo::Codes { present } => {
                        let mut any_hit = false;
                        let mut any_miss = false;
                        for c in present.iter_ones() {
                            if c < set.len() && set.get(c) {
                                any_hit = true;
                            } else {
                                any_miss = true;
                            }
                        }
                        if !any_hit {
                            AllFalse
                        } else if !any_miss && !e.has_nulls() {
                            AllTrue
                        } else {
                            Mixed
                        }
                    }
                    _ => Mixed,
                }
            }
            CPredG::I64In { slot, set } => {
                let Some(e) = zone_entry(slot, b) else { return Mixed };
                if e.all_null() {
                    return AllFalse;
                }
                match e.info {
                    ZoneInfo::I64 { min, max } => {
                        if set.iter().all(|&v| v < min || v > max) {
                            AllFalse
                        } else if min == max && set.binary_search(&min).is_ok() && !e.has_nulls() {
                            AllTrue
                        } else {
                            Mixed
                        }
                    }
                    _ => Mixed,
                }
            }
            CPredG::And(es) => {
                let mut v = AllTrue;
                for e in es {
                    v = v.and(e.prune(b));
                    if v == AllFalse {
                        return AllFalse;
                    }
                }
                v
            }
            CPredG::Or(es) => {
                let mut all_false = true;
                for e in es {
                    match e.prune(b) {
                        AllTrue => return AllTrue,
                        AllFalse => {}
                        Mixed => all_false = false,
                    }
                }
                if all_false {
                    AllFalse
                } else {
                    Mixed
                }
            }
            // NOT over an AllTrue block is uniformly false. The converse
            // does NOT hold: AllFalse covers UNKNOWN rows, whose negation
            // is still UNKNOWN, so only Mixed is safe there.
            CPredG::Not(e) => match e.prune(b) {
                AllTrue => AllFalse,
                _ => Mixed,
            },
        }
    }
}

// ---- Compilation -----------------------------------------------------------

/// Compile a resolved plan expression for the `Filter` operator.
/// `slot_refs[slot]` locates each slot's vector; `slot_cols[slot]` is the
/// storage column it reads (for dictionary pre-evaluation).
pub fn compile_pred(
    expr: &PlanExpr,
    slot_defs: &[SlotDef],
    slot_refs: &[VecRef],
    slot_cols: &[SlotCol<'_>],
) -> Result<CPred> {
    let c = Compiler { slot_defs, slot_cols, loc_of: |s: SlotId| slot_refs[s] };
    c.compile(expr)
}

/// Compile a pushed-down scan predicate: every slot resolves directly to
/// its vertex-property column (`cols[slot]`, `None` for slots that are not
/// properties of the scanned node — an internal planner error).
pub fn compile_scan_pred<'g>(
    expr: &PlanExpr,
    slot_defs: &[SlotDef],
    cols: &[SlotCol<'g>],
) -> Result<ScanPred<'g>> {
    if let Some(&s) = expr.slots().iter().find(|&&s| cols[s].col.is_none()) {
        return Err(Error::Plan(format!(
            "pushed-down predicate references slot {s} ({}), which is not a property of \
             the scanned node",
            slot_defs[s].name
        )));
    }
    let c = Compiler {
        slot_defs,
        slot_cols: cols,
        loc_of: |s: SlotId| cols[s].col.expect("checked above"),
    };
    c.compile(expr)
}

/// Recompile a pushed-down scan predicate for row-at-a-time evaluation
/// through a [`GraphView`]: `props[slot]` is the scanned label's property
/// index behind each slot (`None` for foreign slots, which pushed
/// predicates never reference). The bitmap code spaces are identical to
/// [`compile_scan_pred`]'s, so the two forms cannot disagree on a row.
pub fn compile_row_pred<'g>(
    expr: &PlanExpr,
    slot_defs: &[SlotDef],
    props: &[Option<usize>],
    cols: &[SlotCol<'g>],
) -> Result<RowPred<'g>> {
    if let Some(&s) = expr.slots().iter().find(|&&s| props[s].is_none()) {
        return Err(Error::Plan(format!(
            "pushed-down predicate references slot {s} ({}), which is not a property of \
             the scanned node",
            slot_defs[s].name
        )));
    }
    let c = Compiler {
        slot_defs,
        slot_cols: cols,
        loc_of: |s: SlotId| RowOperand {
            prop: props[s].expect("checked above"),
            dict: cols[s].col.and_then(Column::dictionary),
            ext: cols[s].ext,
        },
    };
    c.compile(expr)
}

struct Compiler<'a, 'g, L, F: Fn(SlotId) -> L> {
    slot_defs: &'a [SlotDef],
    /// Backing storage columns (dictionary pre-evaluation) plus any delta
    /// string extensions growing their code spaces.
    slot_cols: &'a [SlotCol<'g>],
    loc_of: F,
}

impl<'g, L, F: Fn(SlotId) -> L> Compiler<'_, 'g, L, F> {
    fn compile(&self, e: &PlanExpr) -> Result<CPredG<L>> {
        match e {
            PlanExpr::And(es) => {
                Ok(CPredG::And(es.iter().map(|e| self.compile(e)).collect::<Result<_>>()?))
            }
            PlanExpr::Or(es) => {
                Ok(CPredG::Or(es.iter().map(|e| self.compile(e)).collect::<Result<_>>()?))
            }
            PlanExpr::Not(inner) => Ok(CPredG::Not(Box::new(self.compile(inner)?))),
            PlanExpr::StrMatch { op, slot, pattern } => {
                let set = match op {
                    StrOp::Contains => {
                        self.codes_matching(*slot, |s| s.contains(pattern.as_str()))?
                    }
                    StrOp::StartsWith => {
                        self.codes_matching(*slot, |s| s.starts_with(pattern.as_str()))?
                    }
                    StrOp::EndsWith => {
                        self.codes_matching(*slot, |s| s.ends_with(pattern.as_str()))?
                    }
                };
                Ok(CPredG::CodeIn { slot: (self.loc_of)(*slot), set })
            }
            PlanExpr::InSet { slot, values } => match self.slot_defs[*slot].dtype {
                DataType::String => {
                    let needles: Vec<&str> = values.iter().filter_map(Value::as_str).collect();
                    let set = self.codes_matching(*slot, |s| needles.contains(&s))?;
                    Ok(CPredG::CodeIn { slot: (self.loc_of)(*slot), set })
                }
                DataType::Int64 | DataType::Date => {
                    let mut set: Vec<i64> = values.iter().filter_map(Value::as_i64).collect();
                    set.sort_unstable();
                    set.dedup();
                    Ok(CPredG::I64In { slot: (self.loc_of)(*slot), set })
                }
                t => Err(Error::TypeMismatch {
                    expected: "STRING or INT64 for IN".into(),
                    found: t.to_string(),
                }),
            },
            PlanExpr::Cmp { op, lhs, rhs } => self.compile_cmp(*op, lhs, rhs),
        }
    }

    fn compile_cmp(&self, op: CmpOp, lhs: &PlanScalar, rhs: &PlanScalar) -> Result<CPredG<L>> {
        use PlanScalar::*;
        let stype = |s: &PlanScalar| -> Option<DataType> {
            match s {
                Slot(i) => Some(self.slot_defs[*i].dtype),
                Const(v) => v.data_type(),
            }
        };
        let lt = stype(lhs);
        let rt = stype(rhs);
        // NULL constant: comparison is always UNKNOWN.
        if lt.is_none() || rt.is_none() {
            return Ok(CPredG::Unknown);
        }
        let (lt, rt) = (lt.unwrap(), rt.unwrap());

        // String comparisons become dictionary bitmaps.
        if lt == DataType::String || rt == DataType::String {
            return match (lhs, rhs) {
                (Slot(s), Const(c)) => self.string_cmp(*s, op, c),
                (Const(c), Slot(s)) => self.string_cmp(*s, flip(op), c),
                (Slot(_), Slot(_)) => Err(Error::Plan(
                    "string comparisons between two variables are not supported \
                     (dictionaries are per-column)"
                        .into(),
                )),
                (Const(a), Const(b)) => {
                    Ok(CPredG::Const(a.compare(b).map(|o| cmp_holds_ord(op, o)) == Some(true)))
                }
            };
        }

        // Bool equality.
        if lt == DataType::Bool || rt == DataType::Bool {
            return match (op, lhs, rhs) {
                (CmpOp::Eq | CmpOp::Ne, Slot(s), Const(c))
                | (CmpOp::Eq | CmpOp::Ne, Const(c), Slot(s)) => {
                    let expected = c.as_bool().ok_or_else(|| Error::TypeMismatch {
                        expected: "BOOL".into(),
                        found: "non-bool".into(),
                    })?;
                    let p = CPredG::BoolEq { slot: (self.loc_of)(*s), expected };
                    Ok(if op == CmpOp::Ne { CPredG::Not(Box::new(p)) } else { p })
                }
                _ => Err(Error::Plan("unsupported boolean comparison".into())),
            };
        }

        // Float if either side is a float; else integer/date.
        let is_float = lt == DataType::Float64 || rt == DataType::Float64;
        if is_float {
            let f_operand = |s: &PlanScalar| -> Result<F64Operand<L>> {
                Ok(match s {
                    Slot(i) => match self.slot_defs[*i].dtype {
                        DataType::Float64 => F64Operand::F64Slot((self.loc_of)(*i)),
                        _ => F64Operand::I64Slot((self.loc_of)(*i)),
                    },
                    Const(v) => F64Operand::Const(v.as_f64().ok_or_else(|| {
                        Error::TypeMismatch { expected: "numeric".into(), found: v.to_string() }
                    })?),
                })
            };
            return Ok(CPredG::CmpF64 { op, lhs: f_operand(lhs)?, rhs: f_operand(rhs)? });
        }
        let i_operand = |s: &PlanScalar| -> Result<I64Operand<L>> {
            Ok(match s {
                Slot(i) => I64Operand::Slot((self.loc_of)(*i)),
                Const(v) => I64Operand::Const(v.as_i64().ok_or_else(|| Error::TypeMismatch {
                    expected: "INT64/DATE".into(),
                    found: v.to_string(),
                })?),
            })
        };
        Ok(CPredG::CmpI64 { op, lhs: i_operand(lhs)?, rhs: i_operand(rhs)? })
    }

    fn string_cmp(&self, slot: usize, op: CmpOp, konst: &Value) -> Result<CPredG<L>> {
        let needle = konst.as_str().ok_or_else(|| Error::TypeMismatch {
            expected: "STRING".into(),
            found: konst.to_string(),
        })?;
        let set = self.codes_matching(slot, |s| cmp_holds_ord(op, s.cmp(needle)))?;
        Ok(CPredG::CodeIn { slot: (self.loc_of)(slot), set })
    }

    fn dict_of(&self, slot: usize) -> Result<&'g Dictionary> {
        self.slot_cols[slot].col.and_then(Column::dictionary).ok_or_else(|| Error::TypeMismatch {
            expected: "STRING column".into(),
            found: self.slot_defs[slot].dtype.to_string(),
        })
    }

    /// Codes of `slot` whose strings satisfy `f`: the baseline dictionary's
    /// codes, extended past `dict.len()` with any delta-appended strings so
    /// the bitmap covers every code a merged scan can produce.
    fn codes_matching(&self, slot: usize, f: impl Fn(&str) -> bool) -> Result<Bitmap> {
        let dict = self.dict_of(slot)?;
        Ok(match self.slot_cols[slot].ext {
            Some(ext) if !ext.is_empty() => Bitmap::from_fn(ext.code_end() as usize, |c| {
                if c < dict.len() {
                    f(dict.decode(c as u64))
                } else {
                    f(ext.decode(c as u64))
                }
            }),
            _ => dict.matching_codes(f),
        })
    }
}

fn flip(op: CmpOp) -> CmpOp {
    match op {
        CmpOp::Lt => CmpOp::Gt,
        CmpOp::Le => CmpOp::Ge,
        CmpOp::Gt => CmpOp::Lt,
        CmpOp::Ge => CmpOp::Le,
        o => o,
    }
}

fn cmp_holds_ord(op: CmpOp, ord: std::cmp::Ordering) -> bool {
    use std::cmp::Ordering::*;
    match op {
        CmpOp::Eq => ord == Equal,
        CmpOp::Ne => ord != Equal,
        CmpOp::Lt => ord == Less,
        CmpOp::Le => ord != Greater,
        CmpOp::Gt => ord == Greater,
        CmpOp::Ge => ord != Less,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chunk::{Chunk, ListGroup, ValueVector};
    use gfcl_columnar::NullKind;
    use gfcl_columnar::ZONE_BLOCK;

    fn chunk_with(vals: Vec<i64>, valid: Vec<bool>) -> Chunk {
        let mut g = ListGroup::new(1);
        g.reset(vals.len());
        g.vectors[0] = ValueVector::I64 { vals, valid, date: false };
        Chunk { groups: vec![g] }
    }

    #[test]
    fn i64_comparison_with_nulls() {
        let chunk = chunk_with(vec![5, 10, 0], vec![true, true, false]);
        let p = CPred::CmpI64 {
            op: CmpOp::Gt,
            lhs: I64Operand::Slot(VecRef { group: 0, vec: 0 }),
            rhs: I64Operand::Const(6),
        };
        let at = |pos| p.eval(&EvalCtx { chunk: &chunk, target: 0, pos });
        assert_eq!(at(0), Some(false));
        assert_eq!(at(1), Some(true));
        assert_eq!(at(2), None, "NULL comparison is UNKNOWN");
        assert!(!p.holds(&EvalCtx { chunk: &chunk, target: 0, pos: 2 }));
    }

    #[test]
    fn three_valued_and_or() {
        let chunk = chunk_with(vec![0], vec![false]); // NULL slot
        let r = VecRef { group: 0, vec: 0 };
        let unknown =
            CPred::CmpI64 { op: CmpOp::Eq, lhs: I64Operand::Slot(r), rhs: I64Operand::Const(0) };
        let t = CPred::Const(true);
        let f = CPred::Const(false);
        let ctx = EvalCtx { chunk: &chunk, target: 0, pos: 0 };
        assert_eq!(CPred::And(vec![unknown.clone(), f.clone()]).eval(&ctx), Some(false));
        assert_eq!(CPred::And(vec![unknown.clone(), t.clone()]).eval(&ctx), None);
        assert_eq!(CPred::Or(vec![unknown.clone(), t]).eval(&ctx), Some(true));
        assert_eq!(CPred::Or(vec![unknown.clone(), f]).eval(&ctx), None);
        assert_eq!(CPred::Not(Box::new(unknown)).eval(&ctx), None);
        // A comparison against a literal NULL is UNKNOWN — and so is its
        // negation (it used to compile to a constant FALSE, whose negation
        // wrongly kept every row).
        assert_eq!(CPred::Not(Box::new(CPred::Unknown)).eval(&ctx), None);
    }

    #[test]
    fn flat_group_broadcast() {
        // Group 0 flat at idx 1, group 1 is the target.
        let mut g0 = ListGroup::new(1);
        g0.reset(3);
        g0.vectors[0] =
            ValueVector::I64 { vals: vec![100, 200, 300], valid: vec![true; 3], date: false };
        g0.cur_idx = 1;
        let mut g1 = ListGroup::new(1);
        g1.reset(2);
        g1.vectors[0] =
            ValueVector::I64 { vals: vec![150, 250], valid: vec![true; 2], date: false };
        let chunk = Chunk { groups: vec![g0, g1] };
        // g1.val > g0.val (flat broadcast of 200)
        let p = CPred::CmpI64 {
            op: CmpOp::Gt,
            lhs: I64Operand::Slot(VecRef { group: 1, vec: 0 }),
            rhs: I64Operand::Slot(VecRef { group: 0, vec: 0 }),
        };
        assert_eq!(p.eval(&EvalCtx { chunk: &chunk, target: 1, pos: 0 }), Some(false));
        assert_eq!(p.eval(&EvalCtx { chunk: &chunk, target: 1, pos: 1 }), Some(true));
    }

    #[test]
    fn code_in_bitmap() {
        let mut g = ListGroup::new(1);
        g.reset(3);
        g.vectors[0] = ValueVector::Code { vals: vec![0, 1, 2], valid: vec![true, true, false] };
        let chunk = Chunk { groups: vec![g] };
        let set = Bitmap::from_bools(&[true, false, true]);
        let p = CPred::CodeIn { slot: VecRef { group: 0, vec: 0 }, set };
        let at = |pos| p.eval(&EvalCtx { chunk: &chunk, target: 0, pos });
        assert_eq!(at(0), Some(true));
        assert_eq!(at(1), Some(false));
        assert_eq!(at(2), None);
    }

    /// Column of three zone blocks: [0, B), [B, 2B) all-NULL, then a short
    /// all-42 tail.
    fn zoned_column() -> Column {
        let mut values: Vec<Option<i64>> = (0..ZONE_BLOCK as i64).map(Some).collect();
        values.extend(std::iter::repeat_n(None, ZONE_BLOCK));
        values.extend(std::iter::repeat_n(Some(42i64), 10));
        let mut col = Column::from_i64(DataType::Int64, &values, NullKind::jacobson_default());
        col.build_zone_map();
        col
    }

    #[test]
    fn scan_pred_prunes_i64_blocks() {
        let col = zoned_column();
        let p: ScanPred<'_> = CPredG::CmpI64 {
            op: CmpOp::Ge,
            lhs: I64Operand::Slot(&col),
            rhs: I64Operand::Const(ZONE_BLOCK as i64),
        };
        // Block 0 holds 0..B: nothing >= B. Block 1 is all-NULL. Block 2
        // holds only 42 < B... wait, 42 < B, so AllFalse there too.
        assert_eq!(p.prune(0), BlockVerdict::AllFalse);
        assert_eq!(p.prune(1), BlockVerdict::AllFalse, "all-NULL block never matches");
        assert_eq!(p.prune(2), BlockVerdict::AllFalse);
        // A predicate satisfied by every row of a NULL-free block.
        let p: ScanPred<'_> = CPredG::CmpI64 {
            op: CmpOp::Ge,
            lhs: I64Operand::Slot(&col),
            rhs: I64Operand::Const(0),
        };
        assert_eq!(p.prune(0), BlockVerdict::AllTrue);
        assert_eq!(p.prune(1), BlockVerdict::AllFalse);
        assert_eq!(p.prune(2), BlockVerdict::AllTrue, "single-value block");
        // Straddling the min/max: inconclusive.
        let p: ScanPred<'_> = CPredG::CmpI64 {
            op: CmpOp::Lt,
            lhs: I64Operand::Slot(&col),
            rhs: I64Operand::Const(10),
        };
        assert_eq!(p.prune(0), BlockVerdict::Mixed);
        // Equality on the single-value tail block.
        let p: ScanPred<'_> = CPredG::CmpI64 {
            op: CmpOp::Eq,
            lhs: I64Operand::Slot(&col),
            rhs: I64Operand::Const(42),
        };
        assert_eq!(p.prune(2), BlockVerdict::AllTrue);
        let p: ScanPred<'_> = CPredG::I64In { slot: &col, set: vec![-5, 42] };
        assert_eq!(p.prune(0), BlockVerdict::Mixed, "42 falls inside [0, B)");
        assert_eq!(p.prune(2), BlockVerdict::AllTrue);
        let p: ScanPred<'_> = CPredG::I64In { slot: &col, set: vec![-5] };
        assert_eq!(p.prune(0), BlockVerdict::AllFalse);
    }

    #[test]
    fn scan_pred_eval_matches_column_reads() {
        let col = zoned_column();
        let p: ScanPred<'_> = CPredG::CmpI64 {
            op: CmpOp::Lt,
            lhs: I64Operand::Slot(&col),
            rhs: I64Operand::Const(5),
        };
        assert_eq!(p.eval_at(3), Some(true));
        assert_eq!(p.eval_at(7), Some(false));
        assert_eq!(p.eval_at(ZONE_BLOCK + 1), None, "NULL row is UNKNOWN");
        assert!(!p.holds_at(ZONE_BLOCK + 1));
    }

    #[test]
    fn nan_blocks_are_never_all_true_for_ordered_ops() {
        let values = vec![Some(1.0f64), Some(f64::NAN), Some(3.0)];
        let mut col = Column::from_f64(&values, NullKind::None);
        col.build_zone_map();
        let lt: ScanPred<'_> = CPredG::CmpF64 {
            op: CmpOp::Lt,
            lhs: F64Operand::F64Slot(&col),
            rhs: F64Operand::Const(10.0),
        };
        // Every non-NaN value is < 10, but the NaN row is not.
        assert_eq!(lt.prune(0), BlockVerdict::Mixed);
        assert_eq!(lt.eval_at(1), Some(false), "NaN fails ordered comparisons");
        // <> matches NaN rows, so AllFalse must not fire either way.
        let ne: ScanPred<'_> = CPredG::CmpF64 {
            op: CmpOp::Ne,
            lhs: F64Operand::F64Slot(&col),
            rhs: F64Operand::Const(7.0),
        };
        assert_eq!(ne.prune(0), BlockVerdict::AllTrue, "all values differ from 7, NaN included");
        let eq_outside: ScanPred<'_> = CPredG::CmpF64 {
            op: CmpOp::Eq,
            lhs: F64Operand::F64Slot(&col),
            rhs: F64Operand::Const(99.0),
        };
        assert_eq!(eq_outside.prune(0), BlockVerdict::AllFalse);
    }

    #[test]
    fn nan_constant_and_all_nan_blocks() {
        // Regression: `col <> NaN` is TRUE for every row (IEEE 754:
        // `x != NaN` always holds), including over an all-NaN block — the
        // pruner must never report AllFalse for it.
        let mut all_nan = Column::from_f64(&[Some(f64::NAN), Some(f64::NAN)], NullKind::None);
        all_nan.build_zone_map();
        fn ne_nan(c: &Column) -> ScanPred<'_> {
            CPredG::CmpF64 {
                op: CmpOp::Ne,
                lhs: F64Operand::F64Slot(c),
                rhs: F64Operand::Const(f64::NAN),
            }
        }
        assert_eq!(ne_nan(&all_nan).eval_at(0), Some(true));
        assert_eq!(ne_nan(&all_nan).prune(0), BlockVerdict::AllTrue);
        let mut mixed = Column::from_f64(&[Some(1.0), Some(f64::NAN)], NullKind::None);
        mixed.build_zone_map();
        assert_ne!(ne_nan(&mixed).prune(0), BlockVerdict::AllFalse);
        // Other comparisons with a NaN constant are false for every row;
        // the pruner may only say Mixed (never AllTrue).
        let lt_nan: ScanPred<'_> = CPredG::CmpF64 {
            op: CmpOp::Lt,
            lhs: F64Operand::F64Slot(&mixed),
            rhs: F64Operand::Const(f64::NAN),
        };
        assert_eq!(lt_nan.eval_at(0), Some(false));
        assert_ne!(lt_nan.prune(0), BlockVerdict::AllTrue);
    }

    #[test]
    fn verdict_combinators() {
        use BlockVerdict::*;
        assert_eq!(AllTrue.and(AllTrue), AllTrue);
        assert_eq!(AllTrue.and(Mixed), Mixed);
        assert_eq!(Mixed.and(AllFalse), AllFalse);
        // NOT: only AllTrue inverts (AllFalse may hide UNKNOWN rows).
        let col = zoned_column();
        let inner: ScanPred<'_> = CPredG::CmpI64 {
            op: CmpOp::Ge,
            lhs: I64Operand::Slot(&col),
            rhs: I64Operand::Const(0),
        };
        assert_eq!(inner.prune(0), AllTrue);
        let not = CPredG::Not(Box::new(inner));
        assert_eq!(not.prune(0), AllFalse);
        // NOT over the all-NULL block: rows are UNKNOWN, negation is too.
        assert_eq!(not.prune(1), Mixed);
    }
}

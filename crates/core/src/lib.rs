//! `gfcl-core` — the paper's primary contribution: the **list-based
//! processor** (LBP, Section 6) and the query front-end shared by every
//! engine in the evaluation.
//!
//! * [`query`] — the logical query model (acyclic MATCH patterns,
//!   conjunctive predicates, COUNT/projection/aggregate returns);
//! * [`plan`] — the left-deep planner resolving queries against a catalog;
//! * [`chunk`] — factorized intermediate results: value vectors, list
//!   groups with flat/unflat state, intermediate chunks;
//! * [`pred`] — compiled vectorized predicates (string predicates run on
//!   dictionary codes);
//! * [`exec`] — the LBP operators (Scan, ListExtend, ColumnExtend,
//!   property readers, Filter) and factorized aggregation sinks;
//! * [`engine`] — the [`Engine`] trait and [`GfClEngine`].

pub mod chunk;
pub mod engine;
pub mod exec;
pub mod plan;
pub mod pred;
pub mod query;

pub use engine::{Engine, GfClEngine, QueryOutput};
pub use plan::{plan as plan_query, LogicalPlan, PlanReturn, PlanStep};
pub use query::{PatternQuery, ReturnSpec};

//! `gfcl-core` — the paper's primary contribution: the **list-based
//! processor** (LBP, Section 6) and the query front-end shared by every
//! engine in the evaluation.
//!
//! * [`query`] — the logical query model (acyclic MATCH patterns,
//!   conjunctive predicates, COUNT/projection/aggregate returns);
//! * [`plan`] — the left-deep planner resolving queries against a catalog;
//! * [`optimize`] — the statistics-driven join orderer (cost-based start
//!   node and extend order) and the `EXPLAIN` renderer;
//! * [`chunk`] — factorized intermediate results: value vectors, list
//!   groups with flat/unflat state, intermediate chunks;
//! * [`pred`] — compiled vectorized predicates (string predicates run on
//!   dictionary codes);
//! * [`exec`] — the LBP operators (Scan, ListExtend, ColumnExtend,
//!   property readers, Filter), the grouped/top-k/distinct sinks, and
//!   per-worker pipeline compilation;
//! * [`agg`] — the aggregate-state and group-table machinery shared with
//!   the baseline engines (so grouped results agree byte-for-byte);
//! * [`driver`] — the morsel-driven pipeline driver: [`ExecOptions`],
//!   parallel workers over a shared scan cursor, and the factorized
//!   aggregation sinks with their partial-state merge;
//! * [`govern`] — per-query fault domains: the [`govern::QueryGovernor`]
//!   enforcing time/memory budgets and cooperative cancellation at morsel
//!   boundaries, over the shared token storage faults report into;
//! * [`engine`] — the [`Engine`] trait and [`GfClEngine`];
//! * [`verify`] — the structural plan verifier: every plan is checked as a
//!   dataflow typecheck (def-before-use, schema/type flow, unflat-span,
//!   pushdown eligibility, bookkeeping) before any engine compiles it.

pub mod agg;
pub mod chunk;
pub mod driver;
pub mod engine;
pub mod exec;
pub mod govern;
pub mod optimize;
pub mod plan;
pub mod pred;
pub mod query;
pub mod verify;

pub use driver::ExecOptions;
pub use engine::{Engine, GfClEngine, QueryOutput};
pub use govern::{CancelReason, CancelToken, QueryBudget, QueryGovernor};
pub use optimize::render_explain;
pub use plan::{
    plan as plan_query, plan_with as plan_query_with, LogicalPlan, OrderSource, PlanOptions,
    PlanReturn, PlanStep,
};
pub use query::{Agg, AggFunc, PatternQuery, ReturnSpec, SortDir};
pub use verify::{verify_plan, VerifyReport};

// The morsel-driven driver shares these between scoped worker threads by
// reference; keep them `Send + Sync` by construction.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<LogicalPlan>();
    assert_send_sync::<PatternQuery>();
    assert_send_sync::<QueryOutput>();
    assert_send_sync::<ExecOptions>();
    assert_send_sync::<exec::ScanCursor>();
    assert_send_sync::<QueryGovernor>();
    assert_send_sync::<CancelToken>();
};

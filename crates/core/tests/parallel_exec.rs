//! Morsel-driven parallel execution: serial/parallel agreement on the
//! GF-CL engine and the saturating `SUM` sink.

use std::sync::Arc;

use gfcl_common::DataType;
use gfcl_core::query::{col, gt, lit, PatternQuery, QueryBuilder};
use gfcl_core::{Engine, ExecOptions, GfClEngine, QueryOutput};
use gfcl_datagen::PowerLawParams;
use gfcl_storage::{Catalog, ColumnarGraph, PropertyDef, RawGraph, StorageConfig};

fn powerlaw_graph(nodes: usize) -> Arc<ColumnarGraph> {
    let raw = gfcl_datagen::generate_powerlaw(PowerLawParams {
        nodes,
        avg_degree: 6.0,
        exponent: 1.8,
        seed: 11,
    });
    Arc::new(ColumnarGraph::build(&raw, StorageConfig::default()).unwrap())
}

fn queries() -> Vec<(&'static str, PatternQuery)> {
    let count = PatternQuery::builder()
        .node("a", "NODE")
        .node("b", "NODE")
        .node("c", "NODE")
        .edge("e1", "LINK", "a", "b")
        .edge("e2", "LINK", "b", "c")
        .returns_count()
        .build();
    let filtered = PatternQuery::builder()
        .node("a", "NODE")
        .node("b", "NODE")
        .node("c", "NODE")
        .edge("e1", "LINK", "a", "b")
        .edge("e2", "LINK", "b", "c")
        .filter(gt(col("e2", "ts"), col("e1", "ts")))
        .returns_count()
        .build();
    let rows = PatternQuery::builder()
        .node("a", "NODE")
        .node("b", "NODE")
        .edge("e", "LINK", "a", "b")
        .filter(gt(col("e", "ts"), lit(1_400_000_000)))
        .returns(&[("a", "id"), ("b", "id")])
        .build();
    let sum = PatternQuery::builder()
        .node("a", "NODE")
        .node("b", "NODE")
        .edge("e", "LINK", "a", "b")
        .returns_sum("b", "id")
        .build();
    let agg = PatternQuery::builder()
        .node("a", "NODE")
        .node("b", "NODE")
        .edge("e", "LINK", "a", "b")
        .returns_max("e", "ts")
        .build();
    vec![
        ("2-hop-count", count),
        ("2-hop-chain-filter", filtered),
        ("1-hop-rows", rows),
        ("1-hop-sum", sum),
        ("1-hop-max", agg),
    ]
}

#[test]
fn serial_and_parallel_agree_on_powerlaw() {
    // > 4 morsels of 1024, so 4 workers genuinely share the scan.
    let graph = powerlaw_graph(5000);
    let serial = GfClEngine::with_options(graph.clone(), ExecOptions::serial());
    for threads in [2, 4, 7] {
        let par = GfClEngine::with_options(graph.clone(), ExecOptions::with_threads(threads));
        for (name, q) in queries() {
            let a = serial.execute(&q).unwrap().canonical();
            let b = par.execute(&q).unwrap().canonical();
            assert_eq!(a, b, "{name} at {threads} threads");
        }
    }
}

#[test]
fn more_workers_than_morsels_is_fine() {
    // 600 vertices = one morsel; 4 workers must not double-count.
    let graph = powerlaw_graph(600);
    let q = PatternQuery::builder()
        .node("a", "NODE")
        .node("b", "NODE")
        .edge("e", "LINK", "a", "b")
        .returns_count()
        .build();
    let serial = GfClEngine::with_options(graph.clone(), ExecOptions::serial());
    let par = GfClEngine::with_options(graph, ExecOptions::with_threads(4));
    assert_eq!(serial.execute(&q).unwrap(), par.execute(&q).unwrap());
}

/// A single-label graph whose `x` property holds values near `i64::MAX`.
fn huge_value_graph(values: &[i64]) -> Arc<ColumnarGraph> {
    let mut cat = Catalog::new();
    let a = cat.add_vertex_label("A", vec![PropertyDef::new("x", DataType::Int64)]).unwrap();
    let mut raw = RawGraph::new(cat);
    raw.vertices[a as usize].count = values.len();
    for &v in values {
        raw.vertices[a as usize].props[0].push_i64(v);
    }
    raw.validate().unwrap();
    Arc::new(ColumnarGraph::build(&raw, StorageConfig::default()).unwrap())
}

fn sum_x(graph: Arc<ColumnarGraph>, threads: usize) -> i64 {
    let engine = GfClEngine::with_options(graph, ExecOptions::with_threads(threads));
    let q = QueryBuilder::default().node("a", "A").returns_sum("a", "x").build();
    match engine.execute(&q).unwrap() {
        QueryOutput::Agg { value, .. } => value.as_i64().unwrap(),
        other => panic!("expected aggregate, got {other:?}"),
    }
}

#[test]
fn sum_saturates_instead_of_truncating() {
    // Regression: the i128 accumulator used to be cast with `as i64`,
    // wrapping 2 * (i64::MAX - 1) to -4. It must saturate.
    for threads in [1, 4] {
        let g = huge_value_graph(&[i64::MAX - 1, i64::MAX - 1]);
        assert_eq!(sum_x(g, threads), i64::MAX, "positive saturation, {threads} threads");
        let g = huge_value_graph(&[i64::MIN + 1, i64::MIN + 1]);
        assert_eq!(sum_x(g, threads), i64::MIN, "negative saturation, {threads} threads");
        // In-domain sums are exact.
        let g = huge_value_graph(&[i64::MAX - 10, 7, -3]);
        assert_eq!(sum_x(g, threads), i64::MAX - 6);
    }
}

//! End-to-end correctness of the list-based processor on the running
//! example graph and on generated data, across every storage configuration
//! (DESIGN.md invariants 6 and 7).

use std::sync::Arc;

use gfcl_core::query::{col, contains, ge, gt, lit, lt, PatternQuery};
use gfcl_core::{Engine, GfClEngine, QueryOutput};
use gfcl_datagen::SocialParams;
use gfcl_storage::{ColumnarGraph, EdgePropLayout, RawGraph, StorageConfig};

fn engine_with(raw: &RawGraph, cfg: StorageConfig) -> GfClEngine {
    GfClEngine::new(Arc::new(ColumnarGraph::build(raw, cfg).unwrap()))
}

fn engine(raw: &RawGraph) -> GfClEngine {
    engine_with(raw, StorageConfig::default())
}

fn all_configs() -> Vec<StorageConfig> {
    let mut v: Vec<StorageConfig> = StorageConfig::ladder().into_iter().map(|(_, c)| c).collect();
    v.push(StorageConfig {
        edge_prop_layout: EdgePropLayout::EdgeColumns,
        ..StorageConfig::default()
    });
    v.push(StorageConfig {
        edge_prop_layout: EdgePropLayout::DoubleIndexed,
        ..StorageConfig::default()
    });
    v.push(StorageConfig { single_card_in_vcols: false, ..StorageConfig::default() });
    v
}

#[test]
fn paper_example_1_workat_filter() {
    // MATCH (a:PERSON)-[e:WORKAT]->(b:ORG)
    // WHERE a.age > 22 AND b.estd < 2015 RETURN * — Example 1 of the paper.
    let raw = RawGraph::example();
    let q = PatternQuery::builder()
        .node("a", "PERSON")
        .node("b", "ORG")
        .edge("e", "WORKAT", "a", "b")
        .filter(gt(col("a", "age"), lit(22)))
        .filter(lt(col("b", "estd"), lit(2015)))
        .returns(&[("a", "name"), ("b", "name")])
        .build();
    for cfg in all_configs() {
        let out = engine_with(&raw, cfg).execute(&q).unwrap();
        // alice(45)->UW(1934) and bob(54)->UofT(1885) both qualify.
        let QueryOutput::Rows { rows, .. } = &out else { panic!("rows expected") };
        let mut names: Vec<String> = rows.iter().map(|r| format!("{}-{}", r[0], r[1])).collect();
        names.sort();
        assert_eq!(names, vec![r#""alice"-"UW""#, r#""bob"-"UofT""#], "{cfg:?}");
    }
}

#[test]
fn one_hop_count_matches_edge_count() {
    let raw = RawGraph::example();
    let q = PatternQuery::builder()
        .node("a", "PERSON")
        .node("b", "PERSON")
        .edge("e", "FOLLOWS", "a", "b")
        .returns_count()
        .build();
    assert_eq!(engine(&raw).execute(&q).unwrap(), QueryOutput::Count(8));
}

#[test]
fn two_hop_count_brute_force() {
    // MATCH (a)-[:FOLLOWS]->(b)-[:FOLLOWS]->(c) RETURN COUNT(*).
    let raw = RawGraph::example();
    let edges = [(0u64, 1u64), (1, 2), (0, 3), (1, 3), (2, 3), (3, 1), (2, 1), (2, 0)];
    let expected =
        edges.iter().flat_map(|&(_, b)| edges.iter().filter(move |&&(b2, _)| b2 == b)).count()
            as u64;
    let q = PatternQuery::builder()
        .node("a", "PERSON")
        .node("b", "PERSON")
        .node("c", "PERSON")
        .edge("e1", "FOLLOWS", "a", "b")
        .edge("e2", "FOLLOWS", "b", "c")
        .returns_count()
        .build();
    for cfg in all_configs() {
        assert_eq!(
            engine_with(&raw, cfg).execute(&q).unwrap(),
            QueryOutput::Count(expected),
            "{cfg:?}"
        );
    }
}

#[test]
fn edge_property_predicate_along_path() {
    // 2-hop where the second edge is more recent than the first — the
    // Section 8.3 microbenchmark shape, exercising flat-vs-list expression
    // evaluation.
    let raw = RawGraph::example();
    let edges = [
        (0u64, 1u64, 2003i64),
        (1, 2, 2009),
        (0, 3, 1999),
        (1, 3, 2006),
        (2, 3, 2015),
        (3, 1, 2012),
        (2, 1, 1992),
        (2, 0, 2011),
    ];
    let expected = edges
        .iter()
        .flat_map(|&(_, b, s1)| edges.iter().filter(move |&&(b2, _, s2)| b2 == b && s2 > s1))
        .count() as u64;
    let q = PatternQuery::builder()
        .node("a", "PERSON")
        .node("b", "PERSON")
        .node("c", "PERSON")
        .edge("e1", "FOLLOWS", "a", "b")
        .edge("e2", "FOLLOWS", "b", "c")
        .filter(gt(col("e2", "since"), col("e1", "since")))
        .returns_count()
        .build();
    for cfg in all_configs() {
        assert_eq!(
            engine_with(&raw, cfg).execute(&q).unwrap(),
            QueryOutput::Count(expected),
            "{cfg:?}"
        );
    }
}

#[test]
fn backward_plan_gives_same_answer() {
    let raw = RawGraph::example();
    let base = PatternQuery::builder()
        .node("a", "PERSON")
        .node("b", "PERSON")
        .node("c", "PERSON")
        .edge("e1", "FOLLOWS", "a", "b")
        .edge("e2", "FOLLOWS", "b", "c")
        .filter(gt(col("e2", "since"), col("e1", "since")))
        .returns_count();
    let fwd = base.build();
    let mut bwd = fwd.clone();
    bwd.hints.start = Some("c".into());
    bwd.hints.edge_order = Some(vec![1, 0]);
    let e = engine(&raw);
    assert_eq!(e.execute(&fwd).unwrap(), e.execute(&bwd).unwrap());
}

#[test]
fn single_cardinality_column_extend() {
    // Path ending in an n-1 edge: (a)-[:FOLLOWS]->(b)-[:STUDYAT]->(o).
    let raw = RawGraph::example();
    // STUDYAT: peter(2)->UW, jenny(3)->UofT. FOLLOWS into 2: {1->2}; into 3:
    // {0->3, 1->3, 2->3}. So pairs: (1,2,UW), (0,3,UofT), (1,3,UofT), (2,3,UofT).
    let q = PatternQuery::builder()
        .node("a", "PERSON")
        .node("b", "PERSON")
        .node("o", "ORG")
        .edge("e1", "FOLLOWS", "a", "b")
        .edge("e2", "STUDYAT", "b", "o")
        .returns(&[("b", "name"), ("o", "name")])
        .build();
    for cfg in all_configs() {
        let out = engine_with(&raw, cfg).execute(&q).unwrap();
        let QueryOutput::Rows { rows, .. } = out else { panic!() };
        let mut pairs: Vec<String> = rows.iter().map(|r| format!("{}-{}", r[0], r[1])).collect();
        pairs.sort();
        assert_eq!(
            pairs,
            vec![r#""jenny"-"UofT""#, r#""jenny"-"UofT""#, r#""jenny"-"UofT""#, r#""peter"-"UW""#],
            "{cfg:?}"
        );
    }
}

#[test]
fn single_card_edge_property_read_both_directions() {
    // Read doj through the forward (vertex-column) side...
    let raw = RawGraph::example();
    let q = PatternQuery::builder()
        .node("a", "PERSON")
        .node("o", "ORG")
        .edge("w", "WORKAT", "a", "o")
        .filter(gt(col("w", "doj"), lit(1990)))
        .returns(&[("a", "name")])
        .build();
    let out = engine(&raw).execute(&q).unwrap();
    let QueryOutput::Rows { rows, .. } = out else { panic!() };
    assert_eq!(rows.len(), 1); // only alice (2006); bob joined 1980
    assert_eq!(rows[0][0].to_string(), r#""alice""#);

    // ... and through the backward (CSR) side.
    let q = PatternQuery::builder()
        .node("a", "PERSON")
        .node("o", "ORG")
        .edge("w", "WORKAT", "a", "o")
        .filter(gt(col("w", "doj"), lit(1990)))
        .returns(&[("a", "name")])
        .start_at("o")
        .build();
    let out = engine(&raw).execute(&q).unwrap();
    let QueryOutput::Rows { rows, .. } = out else { panic!() };
    assert_eq!(rows.len(), 1);
    assert_eq!(rows[0][0].to_string(), r#""alice""#);
}

#[test]
fn string_predicates_run_on_dictionary_codes() {
    let raw = RawGraph::example();
    let q = PatternQuery::builder()
        .node("a", "PERSON")
        .node("b", "PERSON")
        .edge("e", "FOLLOWS", "a", "b")
        .filter(contains("a", "name", "e")) // alice, peter (not bob, jenny... jenny has 'e'!)
        .returns_count()
        .build();
    // Names with 'e': alice, peter, jenny. Their out-degrees: 0->2, 2->3, 3->1.
    assert_eq!(engine(&raw).execute(&q).unwrap(), QueryOutput::Count(6));
}

#[test]
fn count_star_equals_materialized_rows_on_generated_graph() {
    // Invariant 7: the factorized COUNT(*) equals the enumerated row count.
    let raw = gfcl_datagen::generate_social(SocialParams::scale(60));
    let e = engine(&raw);
    let count_q = PatternQuery::builder()
        .node("a", "Person")
        .node("b", "Person")
        .node("c", "Person")
        .edge("k1", "knows", "a", "b")
        .edge("k2", "knows", "b", "c")
        .filter(ge(col("k2", "date"), col("k1", "date")))
        .returns_count()
        .build();
    let mut rows_q = count_q.clone();
    rows_q.ret = gfcl_core::ReturnSpec::Props(vec![
        gfcl_core::query::PropRef { var: "a".into(), prop: "id".into() },
        gfcl_core::query::PropRef { var: "c".into(), prop: "id".into() },
    ]);
    let n = e.execute(&count_q).unwrap().as_count().unwrap();
    let rows = e.execute(&rows_q).unwrap().cardinality();
    assert_eq!(n, rows);
    assert!(n > 0, "workload should be non-trivial");
}

#[test]
fn pk_seek_starts_path_queries() {
    let raw = gfcl_datagen::generate_social(SocialParams::scale(50));
    let e = engine(&raw);
    let q = PatternQuery::builder()
        .node("p", "Person")
        .node("f", "Person")
        .edge("k", "knows", "p", "f")
        .filter(gfcl_core::query::eq(col("p", "id"), lit(25)))
        .returns(&[("f", "id")])
        .build();
    let out = e.execute(&q).unwrap();
    // Must equal the unindexed variant.
    let q2 = PatternQuery::builder()
        .node("p", "Person")
        .node("f", "Person")
        .edge("k", "knows", "p", "f")
        .filter(gfcl_core::query::ge(col("p", "id"), lit(25)))
        .filter(gfcl_core::query::le(col("p", "id"), lit(25)))
        .returns(&[("f", "id")])
        .build();
    let out2 = e.execute(&q2).unwrap();
    assert_eq!(out.canonical(), out2.canonical());
}

#[test]
fn aggregates_sum_min_max() {
    let raw = RawGraph::example();
    let e = engine(&raw);
    // SUM of `since` over all FOLLOWS edges.
    let q = PatternQuery::builder()
        .node("a", "PERSON")
        .node("b", "PERSON")
        .edge("e", "FOLLOWS", "a", "b")
        .returns_sum("e", "since")
        .build();
    let expected: i64 = [2003, 2009, 1999, 2006, 2015, 2012, 1992, 2011].iter().sum();
    match e.execute(&q).unwrap() {
        QueryOutput::Agg { value, .. } => assert_eq!(value.as_i64(), Some(expected)),
        o => panic!("unexpected {o:?}"),
    }
    // MIN/MAX of age.
    let q = PatternQuery::builder().node("a", "PERSON").returns_min("a", "age").build();
    match e.execute(&q).unwrap() {
        QueryOutput::Agg { value, .. } => assert_eq!(value.as_i64(), Some(17)),
        o => panic!("unexpected {o:?}"),
    }
    let q = PatternQuery::builder().node("a", "PERSON").returns_max("a", "age").build();
    match e.execute(&q).unwrap() {
        QueryOutput::Agg { value, .. } => assert_eq!(value.as_i64(), Some(54)),
        o => panic!("unexpected {o:?}"),
    }
}

#[test]
fn sum_respects_factorized_multiplicity() {
    // SUM(a.age) over (a)-[:FOLLOWS]->(b): each a counted deg(a) times.
    let raw = RawGraph::example();
    let ages = [45i64, 54, 17, 23];
    let degs = [2i64, 2, 3, 1];
    let expected: i64 = ages.iter().zip(&degs).map(|(a, d)| a * d).sum();
    let q = PatternQuery::builder()
        .node("a", "PERSON")
        .node("b", "PERSON")
        .edge("e", "FOLLOWS", "a", "b")
        .returns_sum("a", "age")
        .build();
    match engine(&raw).execute(&q).unwrap() {
        QueryOutput::Agg { value, .. } => assert_eq!(value.as_i64(), Some(expected)),
        o => panic!("unexpected {o:?}"),
    }
}

#[test]
fn star_pattern_stays_factorized() {
    // Star from b: two FOLLOWS branches; count = sum over b of
    // indeg(b) * outdeg(b).
    let raw = RawGraph::example();
    let edges = [(0u64, 1u64), (1, 2), (0, 3), (1, 3), (2, 3), (3, 1), (2, 1), (2, 0)];
    let expected: u64 = (0..4u64)
        .map(|b| {
            let indeg = edges.iter().filter(|&&(_, d)| d == b).count() as u64;
            let outdeg = edges.iter().filter(|&&(s, _)| s == b).count() as u64;
            indeg * outdeg
        })
        .sum();
    let q = PatternQuery::builder()
        .node("b", "PERSON")
        .node("x", "PERSON")
        .node("y", "PERSON")
        .edge("e1", "FOLLOWS", "x", "b")
        .edge("e2", "FOLLOWS", "b", "y")
        .start_at("b")
        .returns_count()
        .build();
    assert_eq!(engine(&raw).execute(&q).unwrap(), QueryOutput::Count(expected));
}

#[test]
fn empty_results() {
    let raw = RawGraph::example();
    let e = engine(&raw);
    let q = PatternQuery::builder()
        .node("a", "PERSON")
        .node("b", "ORG")
        .edge("w", "WORKAT", "a", "b")
        .filter(gt(col("a", "age"), lit(1000)))
        .returns_count()
        .build();
    assert_eq!(e.execute(&q).unwrap(), QueryOutput::Count(0));
    let q = PatternQuery::builder()
        .node("a", "PERSON")
        .node("b", "ORG")
        .edge("w", "WORKAT", "a", "b")
        .filter(gt(col("a", "age"), lit(1000)))
        .returns(&[("a", "name")])
        .build();
    assert_eq!(e.execute(&q).unwrap().cardinality(), 0);
}

#[test]
fn string_slot_both_filtered_and_returned() {
    // Regression (found via LDBC IC06): a string slot used in a predicate
    // AND in the RETURN clause must stay dictionary-encoded for the filter
    // and decode correctly at the sink.
    let raw = RawGraph::example();
    let q = PatternQuery::builder()
        .node("a", "PERSON")
        .node("b", "PERSON")
        .edge("e", "FOLLOWS", "a", "b")
        .filter(gfcl_core::query::ne(col("b", "name"), lit("jenny")))
        .returns(&[("b", "name")])
        .build();
    let out = engine(&raw).execute(&q).unwrap();
    let QueryOutput::Rows { rows, .. } = out else { panic!() };
    // FOLLOWS edges not ending at jenny (offset 3): (0,1),(1,2),(3,1),(2,1),(2,0).
    assert_eq!(rows.len(), 5);
    assert!(rows.iter().all(|r| r[0] != gfcl_common::Value::String("jenny".into())));
    assert!(rows.iter().any(|r| r[0] == gfcl_common::Value::String("bob".into())));
}

#[test]
fn star_with_selective_filter_between_same_label_branches() {
    // The IC06 shape: two ListExtends over the same label from the same
    // group, with a highly selective filter on the first branch.
    let raw = RawGraph::example();
    let q = PatternQuery::builder()
        .node("a", "PERSON")
        .node("b", "PERSON")
        .node("x", "PERSON")
        .node("y", "PERSON")
        .edge("e0", "FOLLOWS", "a", "b")
        .edge("e1", "FOLLOWS", "b", "x")
        .edge("e2", "FOLLOWS", "b", "y")
        .filter(gfcl_core::query::eq(col("x", "name"), lit("jenny")))
        .filter(gfcl_core::query::ne(col("y", "name"), lit("jenny")))
        .returns(&[("y", "name")])
        .build();
    // Brute force: in-edges into b times (jenny-follows of b) x (non-jenny
    // follows of b): b=0: 1x(1x1)=1; b=1: 3x(1x1)=3; b=2: 1x(1x2)=2; b=3: 0.
    assert_eq!(engine(&raw).execute(&q).unwrap().cardinality(), 6);
}

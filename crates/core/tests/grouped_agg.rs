//! Grouped aggregation, top-k, and DISTINCT through the list-based
//! processor, hand-checked on the paper's Figure-1 example graph — at one
//! worker and at four (the partial-table merge path).

use std::sync::Arc;

use gfcl_common::{Error, Value};
use gfcl_core::query::{col, eq, gt, lit, Agg, PatternQuery, SortDir};
use gfcl_core::{Engine, ExecOptions, GfClEngine, QueryOutput};
use gfcl_storage::{ColumnarGraph, RawGraph, StorageConfig};

fn engine(threads: usize) -> GfClEngine {
    let g = Arc::new(ColumnarGraph::build(&RawGraph::example(), StorageConfig::default()).unwrap());
    GfClEngine::with_options(g, ExecOptions::with_threads(threads))
}

fn follows_grouped() -> PatternQuery {
    // MATCH (a:PERSON)-[e:FOLLOWS]->(b:PERSON)
    // RETURN a.gender, COUNT(*), SUM(e.since), MIN(b.age), AVG(b.age),
    //        COUNT(DISTINCT b.gender)
    PatternQuery::builder()
        .node("a", "PERSON")
        .node("b", "PERSON")
        .edge("e", "FOLLOWS", "a", "b")
        .group_by(&[("a", "gender")])
        .returns_agg(vec![
            Agg::count_star(),
            Agg::sum("e", "since"),
            Agg::min("b", "age"),
            Agg::avg("b", "age"),
            Agg::count_distinct("b", "gender"),
        ])
        .build()
}

#[test]
fn grouped_aggregates_match_hand_computed_values() {
    for threads in [1, 4] {
        let out = engine(threads).execute(&follows_grouped()).unwrap();
        let QueryOutput::Rows { header, rows } = out else { panic!("rows expected") };
        assert_eq!(
            header,
            vec![
                "a.gender",
                "count(*)",
                "sum(e.since)",
                "min(b.age)",
                "avg(b.age)",
                "count(distinct b.gender)"
            ]
        );
        // Keys sort canonically: "F" < "M".
        assert_eq!(
            rows,
            vec![
                vec![
                    Value::String("F".into()),
                    Value::Int64(3),
                    Value::Int64(6014),
                    Value::Int64(23),
                    Value::Float64((54 + 23 + 54) as f64 / 3.0),
                    // alice/jenny follow bob (M) and jenny (F).
                    Value::Int64(2),
                ],
                vec![
                    Value::String("M".into()),
                    Value::Int64(5),
                    Value::Int64(10033),
                    Value::Int64(17),
                    Value::Float64((17 + 23 + 23 + 54 + 45) as f64 / 5.0),
                    Value::Int64(2),
                ],
            ],
            "threads={threads}"
        );
    }
}

#[test]
fn whole_result_multi_aggregate_has_no_keys() {
    let q = PatternQuery::builder()
        .node("a", "PERSON")
        .node("b", "PERSON")
        .edge("e", "FOLLOWS", "a", "b")
        .returns_agg(vec![Agg::count_star(), Agg::max("e", "since"), Agg::avg("a", "age")])
        .build();
    for threads in [1, 4] {
        let out = engine(threads).execute(&q).unwrap();
        let QueryOutput::Rows { rows, .. } = out else { panic!("rows expected") };
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0][0], Value::Int64(8));
        assert_eq!(rows[0][1], Value::Int64(2015));
    }
}

#[test]
fn group_by_without_aggregates_returns_distinct_keys() {
    let q = PatternQuery::builder().node("a", "PERSON").group_by(&[("a", "gender")]).build();
    let out = engine(1).execute(&q).unwrap();
    let QueryOutput::Rows { rows, .. } = out else { panic!("rows expected") };
    assert_eq!(rows, vec![vec![Value::String("F".into())], vec![Value::String("M".into())]]);
}

#[test]
fn top_k_orders_and_limits_deterministically() {
    // Top-2 FOLLOWS edges by `since`, newest first.
    let q = PatternQuery::builder()
        .node("a", "PERSON")
        .node("b", "PERSON")
        .edge("e", "FOLLOWS", "a", "b")
        .returns(&[("a", "name"), ("e", "since")])
        .order_by(1, SortDir::Desc)
        .limit(2)
        .build();
    for threads in [1, 4] {
        let out = engine(threads).execute(&q).unwrap();
        let QueryOutput::Rows { rows, .. } = out else { panic!("rows expected") };
        assert_eq!(
            rows,
            vec![
                vec![Value::String("peter".into()), Value::Int64(2015)],
                vec![Value::String("jenny".into()), Value::Int64(2012)],
            ],
            "threads={threads}"
        );
    }
}

#[test]
fn grouped_output_supports_order_by_and_limit() {
    // The busiest follower: GROUP BY a.name ORDER BY count(*) DESC LIMIT 1.
    let q = PatternQuery::builder()
        .node("a", "PERSON")
        .node("b", "PERSON")
        .edge("e", "FOLLOWS", "a", "b")
        .group_by(&[("a", "name")])
        .returns_agg(vec![Agg::count_star()])
        .order_by(1, SortDir::Desc)
        .limit(1)
        .build();
    for threads in [1, 4] {
        let out = engine(threads).execute(&q).unwrap();
        let QueryOutput::Rows { rows, .. } = out else { panic!("rows expected") };
        assert_eq!(rows, vec![vec![Value::String("peter".into()), Value::Int64(3)]]);
    }
}

#[test]
fn distinct_deduplicates_and_sorts_canonically() {
    // Followed persons' genders, deduplicated.
    let q = PatternQuery::builder()
        .node("a", "PERSON")
        .node("b", "PERSON")
        .edge("e", "FOLLOWS", "a", "b")
        .returns(&[("b", "gender")])
        .distinct()
        .build();
    for threads in [1, 4] {
        let out = engine(threads).execute(&q).unwrap();
        let QueryOutput::Rows { rows, .. } = out else { panic!("rows expected") };
        assert_eq!(
            rows,
            vec![vec![Value::String("F".into())], vec![Value::String("M".into())]],
            "threads={threads}"
        );
    }
}

#[test]
fn whole_result_aggregate_over_empty_match_returns_one_row() {
    // SQL: an aggregate without GROUP BY returns exactly one row even when
    // nothing matches — COUNT(*) = 0, SUM/MIN/AVG = NULL. (Regression: the
    // keyless group used to exist only if a chunk state fed it.)
    let q = PatternQuery::builder()
        .node("a", "PERSON")
        .filter(gt(col("a", "age"), lit(100)))
        .returns_agg(vec![
            Agg::count_star(),
            Agg::sum("a", "age"),
            Agg::min("a", "age"),
            Agg::avg("a", "age"),
            Agg::count_distinct("a", "gender"),
        ])
        .build();
    for threads in [1, 4] {
        let out = engine(threads).execute(&q).unwrap();
        let QueryOutput::Rows { rows, .. } = out else { panic!("rows expected") };
        assert_eq!(
            rows,
            vec![vec![Value::Int64(0), Value::Null, Value::Null, Value::Null, Value::Int64(0),]],
            "threads={threads}"
        );
    }
    // A *keyed* grouped aggregate over an empty match still returns no rows.
    let keyed = PatternQuery::builder()
        .node("a", "PERSON")
        .filter(gt(col("a", "age"), lit(100)))
        .group_by(&[("a", "gender")])
        .returns_agg(vec![Agg::count_star()])
        .build();
    let QueryOutput::Rows { rows, .. } = engine(1).execute(&keyed).unwrap() else { panic!() };
    assert!(rows.is_empty());
}

// ---- Satellite regressions -------------------------------------------------

#[test]
fn min_max_over_empty_result_is_null_not_a_sentinel() {
    // No PERSON is older than 100: the match set is empty.
    for threads in [1, 4] {
        let e = engine(threads);
        for (q, name) in [
            (
                PatternQuery::builder()
                    .node("a", "PERSON")
                    .filter(gt(col("a", "age"), lit(100)))
                    .returns_min("a", "age")
                    .build(),
                "min(a.age)",
            ),
            (
                PatternQuery::builder()
                    .node("a", "PERSON")
                    .filter(gt(col("a", "age"), lit(100)))
                    .returns_max("a", "age")
                    .build(),
                "max(a.age)",
            ),
        ] {
            let out = e.execute(&q).unwrap();
            assert_eq!(
                out,
                QueryOutput::Agg { name: name.into(), value: Value::Null },
                "threads={threads}"
            );
        }
    }
}

#[test]
fn aggregate_over_undeclared_property_is_a_plan_error_naming_it() {
    let e = engine(1);
    for q in [
        PatternQuery::builder().node("a", "PERSON").returns_sum("a", "salary").build(),
        PatternQuery::builder().node("a", "PERSON").returns_min("a", "salary").build(),
        PatternQuery::builder().node("a", "PERSON").returns_max("a", "salary").build(),
        PatternQuery::builder()
            .node("a", "PERSON")
            .returns_agg(vec![Agg::sum("a", "salary")])
            .build(),
    ] {
        let err = e.plan(&q).unwrap_err();
        assert!(matches!(err, Error::Plan(_)), "{err:?}");
        assert!(err.to_string().contains("a.salary"), "{err}");
    }
}

#[test]
fn malformed_grouped_clauses_fail_at_build_time() {
    // DISTINCT with aggregates.
    let err = PatternQuery::builder()
        .node("a", "PERSON")
        .group_by(&[("a", "gender")])
        .returns_agg(vec![Agg::count_star()])
        .distinct()
        .try_build()
        .unwrap_err();
    assert!(matches!(err, Error::Plan(_)), "{err:?}");

    // group_by combined with another returns_* clause.
    let err = PatternQuery::builder()
        .node("a", "PERSON")
        .group_by(&[("a", "gender")])
        .returns_count()
        .try_build()
        .unwrap_err();
    assert!(err.to_string().contains("returns_"), "{err}");

    // order_by on a scalar return.
    let err = PatternQuery::builder()
        .node("a", "PERSON")
        .returns_count()
        .order_by(0, SortDir::Asc)
        .try_build()
        .unwrap_err();
    assert!(err.to_string().contains("order_by"), "{err}");
}

#[test]
fn order_by_out_of_range_is_a_plan_error() {
    let q = PatternQuery::builder()
        .node("a", "PERSON")
        .returns(&[("a", "name")])
        .order_by(3, SortDir::Asc)
        .build();
    let err = engine(1).plan(&q).unwrap_err();
    assert!(matches!(err, Error::Plan(_)), "{err:?}");
    assert!(err.to_string().contains("column 3"), "{err}");
}

#[test]
fn grouped_key_on_an_unflat_far_end_is_enumerated_not_wrong() {
    // Key on the *extension* side: GROUP BY b.name over FOLLOWS — the key
    // group is the unflat adjacency view, so the sink enumerates it (keys
    // only) and still agrees with the tuple count.
    let q = PatternQuery::builder()
        .node("a", "PERSON")
        .node("b", "PERSON")
        .edge("e", "FOLLOWS", "a", "b")
        .group_by(&[("b", "name")])
        .returns_agg(vec![Agg::count_star()])
        .build();
    for threads in [1, 4] {
        let out = engine(threads).execute(&q).unwrap();
        let QueryOutput::Rows { rows, .. } = out else { panic!("rows expected") };
        // In-degrees: alice 1 (p2->p0), bob 3, jenny 3, peter 1.
        assert_eq!(
            rows,
            vec![
                vec![Value::String("alice".into()), Value::Int64(1)],
                vec![Value::String("bob".into()), Value::Int64(3)],
                vec![Value::String("jenny".into()), Value::Int64(3)],
                vec![Value::String("peter".into()), Value::Int64(1)],
            ],
            "threads={threads}"
        );
    }
}

#[test]
fn pk_seek_grouped_query_works() {
    // Seek + group: bob's followees by gender.
    let mut cat_graph = RawGraph::example();
    cat_graph.catalog.set_primary_key(0, "age").unwrap();
    let g = Arc::new(ColumnarGraph::build(&cat_graph, StorageConfig::default()).unwrap());
    let e = GfClEngine::with_options(g, ExecOptions::serial());
    let q = PatternQuery::builder()
        .node("a", "PERSON")
        .node("b", "PERSON")
        .edge("e", "FOLLOWS", "a", "b")
        .filter(eq(col("a", "age"), lit(54)))
        .group_by(&[("b", "gender")])
        .returns_agg(vec![Agg::count_star()])
        .build();
    let QueryOutput::Rows { rows, .. } = e.execute(&q).unwrap() else { panic!() };
    // bob follows peter (M) and jenny (F).
    assert_eq!(
        rows,
        vec![
            vec![Value::String("F".into()), Value::Int64(1)],
            vec![Value::String("M".into()), Value::Int64(1)],
        ]
    );
}

//! Entry-point symmetry for query validation: a malformed query must fail
//! with the *same* `[rule]`-tagged error whether it goes through
//! `QueryBuilder::try_build` or is hand-assembled and passed straight to
//! `plan()`. Historically some checks lived only in `try_build`, so a
//! hand-built `PatternQuery` with (say) an out-of-range edge endpoint
//! panicked inside the planner instead of erroring.

use gfcl_common::Error;
use gfcl_core::plan::{plan_with, PlanOptions};
use gfcl_core::query::{
    Agg, AggFunc, EdgePattern, NodePattern, OrderKey, PatternQuery, PlanHints, PropRef,
    QueryBuilder, ReturnSpec, SortDir,
};
use gfcl_storage::{Catalog, ColumnarGraph, RawGraph, StorageConfig};

fn catalog() -> Catalog {
    ColumnarGraph::build(&RawGraph::example(), StorageConfig::default()).unwrap().catalog().clone()
}

fn base() -> PatternQuery {
    PatternQuery {
        nodes: vec![NodePattern { var: "a".into(), label: "PERSON".into() }],
        edges: vec![],
        predicates: vec![],
        ret: ReturnSpec::CountStar,
        order_by: vec![],
        limit: None,
        distinct: false,
        hints: PlanHints::default(),
    }
}

fn plan_err(q: &PatternQuery) -> String {
    let catalog = catalog();
    match plan_with(q, &catalog, &PlanOptions::default()) {
        Err(Error::Plan(msg)) => msg,
        other => panic!("expected a plan error, got {other:?}"),
    }
}

fn build_err(b: QueryBuilder) -> String {
    match b.try_build() {
        Err(Error::Plan(msg)) => msg,
        other => panic!("expected a build error, got {other:?}"),
    }
}

#[test]
fn duplicate_node_variable_same_error_both_paths() {
    let via_builder =
        build_err(PatternQuery::builder().node("a", "PERSON").node("a", "PERSON").returns_count());
    let mut q = base();
    q.nodes.push(NodePattern { var: "a".into(), label: "PERSON".into() });
    let via_plan = plan_err(&q);
    assert_eq!(via_builder, via_plan);
    assert!(via_plan.contains("[pattern-vars]"), "{via_plan}");
    assert!(via_plan.contains("duplicate node variable a"), "{via_plan}");
}

#[test]
fn out_of_range_edge_endpoint_is_an_error_not_a_panic() {
    let mut q = base();
    q.edges.push(EdgePattern { var: None, label: "FOLLOWS".into(), from: 0, to: 7 });
    let msg = plan_err(&q);
    assert!(msg.contains("[index-range]"), "{msg}");
    assert!(msg.contains("exceed the node table"), "{msg}");
}

#[test]
fn duplicate_edge_variable_rejected_on_both_paths() {
    let via_builder = build_err(
        PatternQuery::builder()
            .node("a", "PERSON")
            .node("b", "PERSON")
            .edge("e", "FOLLOWS", "a", "b")
            .edge("e", "FOLLOWS", "b", "a")
            .returns_count(),
    );
    let mut q = base();
    q.nodes.push(NodePattern { var: "b".into(), label: "PERSON".into() });
    q.edges.push(EdgePattern { var: Some("e".into()), label: "FOLLOWS".into(), from: 0, to: 1 });
    q.edges.push(EdgePattern { var: Some("e".into()), label: "FOLLOWS".into(), from: 1, to: 0 });
    let via_plan = plan_err(&q);
    assert_eq!(via_builder, via_plan);
    assert!(via_plan.contains("[pattern-vars]"), "{via_plan}");
    assert!(via_plan.contains("duplicate edge variable e"), "{via_plan}");
}

#[test]
fn edge_variable_shadowing_a_node_variable_is_rejected() {
    let mut q = base();
    q.nodes.push(NodePattern { var: "b".into(), label: "PERSON".into() });
    q.edges.push(EdgePattern { var: Some("a".into()), label: "FOLLOWS".into(), from: 0, to: 1 });
    let msg = plan_err(&q);
    assert!(msg.contains("duplicate edge variable a"), "{msg}");
}

#[test]
fn distinct_on_count_star_same_error_both_paths() {
    let via_builder =
        build_err(PatternQuery::builder().node("a", "PERSON").returns_count().distinct());
    let mut q = base();
    q.distinct = true;
    let via_plan = plan_err(&q);
    assert_eq!(via_builder, via_plan);
    assert!(via_plan.contains("[sink-shape]"), "{via_plan}");
    assert!(via_plan.contains("DISTINCT applies to projection returns only"), "{via_plan}");
}

#[test]
fn order_by_on_scalar_return_same_error_both_paths() {
    let via_builder = build_err(
        PatternQuery::builder().node("a", "PERSON").returns_count().order_by(0, SortDir::Asc),
    );
    let mut q = base();
    q.order_by.push(OrderKey { col: 0, dir: SortDir::Asc });
    let via_plan = plan_err(&q);
    assert_eq!(via_builder, via_plan);
    assert!(via_plan.contains("[sink-shape]"), "{via_plan}");
}

#[test]
fn limit_on_sum_return_rejected_when_planned_directly() {
    let mut q = base();
    q.ret = ReturnSpec::Sum(PropRef { var: "a".into(), prop: "age".into() });
    q.limit = Some(3);
    let msg = plan_err(&q);
    assert!(msg.contains("order_by/limit apply to row-producing returns"), "{msg}");
}

#[test]
fn agg_without_property_rejected_when_planned_directly() {
    let mut q = base();
    q.ret = ReturnSpec::GroupBy {
        keys: vec![],
        aggs: vec![Agg { func: AggFunc::Sum, prop: None }, Agg::count_star()],
    };
    let msg = plan_err(&q);
    assert!(msg.contains("[sink-shape]"), "{msg}");
    assert!(msg.contains("aggregate other than COUNT(*) needs a property"), "{msg}");
}

#[test]
fn well_formed_query_still_plans() {
    let catalog = catalog();
    let q = PatternQuery::builder()
        .node("a", "PERSON")
        .node("b", "PERSON")
        .edge("e", "FOLLOWS", "a", "b")
        .returns_count()
        .build();
    assert!(plan_with(&q, &catalog, &PlanOptions::default()).is_ok());
}

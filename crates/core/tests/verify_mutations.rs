//! Mutation suite for the plan verifier: seed structurally-corrupted
//! plans and assert each one is rejected with a structured `Error::Plan`
//! naming the violated rule.
//!
//! Every mutation starts from a plan the optimizer actually emitted (so
//! the baseline verifies clean), applies exactly one corruption of the
//! kind a planner or optimizer bug would introduce, and checks the
//! verifier's `[rule]` tag plus a distinctive fragment of the message.
//! Together with `verifier_conformance.rs` in the workloads crate (every
//! emitted plan accepted) this pins the verifier from both sides.

use gfcl_common::{DataType, Error, Value};
use gfcl_core::plan::{LogicalPlan, PlanExpr, PlanScalar, PlanStep};
use gfcl_core::query::{and, col, gt, lit, PatternQuery};
use gfcl_core::{plan_query, verify_plan};
use gfcl_storage::{Catalog, ColumnarGraph, RawGraph, StorageConfig};

fn catalog() -> Catalog {
    ColumnarGraph::build(&RawGraph::example(), StorageConfig::default()).unwrap().catalog().clone()
}

/// `MATCH (a:PERSON)-[:FOLLOWS]->(b:PERSON) WHERE a.age > 30 AND
/// b.age > 25 RETURN a.name, b.name` — exercises a pushed scan predicate,
/// a list extend, property reads, a post-extend filter and a projection.
fn base_plan(cat: &Catalog) -> LogicalPlan {
    let q = PatternQuery::builder()
        .node("a", "PERSON")
        .node("b", "PERSON")
        .edge("e", "FOLLOWS", "a", "b")
        .filter(and(vec![gt(col("a", "age"), lit(30)), gt(col("b", "age"), lit(25))]))
        .returns(&[("a", "name"), ("b", "name")])
        .build();
    plan_query(&q, cat).expect("base query plans")
}

/// Two list extends from the scanned node: the groups of `b` and `c` are
/// both unflat when the final filter runs. The filter itself touches only
/// `b` (legal); the unflat-span mutation widens it to span both groups.
fn two_branch_plan(cat: &Catalog) -> LogicalPlan {
    let q = PatternQuery::builder()
        .node("a", "PERSON")
        .node("b", "PERSON")
        .node("c", "PERSON")
        .edge("e1", "FOLLOWS", "a", "b")
        .edge("e2", "FOLLOWS", "a", "c")
        .start_at("a")
        .filter(gt(col("b", "age"), lit(25)))
        .returns_sum("c", "age")
        .build();
    plan_query(&q, cat).expect("two-branch query plans")
}

/// A plan whose predicate (`a.age > 30` over the scanned node only) the
/// planner pushed into the scan step.
fn pushed_plan(cat: &Catalog) -> LogicalPlan {
    let q = PatternQuery::builder()
        .node("a", "PERSON")
        .node("b", "PERSON")
        .edge("e", "FOLLOWS", "a", "b")
        .start_at("a")
        .filter(gt(col("a", "age"), lit(30)))
        .returns_count()
        .build();
    let p = plan_query(&q, cat).expect("pushable query plans");
    match &p.steps[0] {
        PlanStep::ScanAll { pushed, .. } if !pushed.is_empty() => p,
        s => panic!("expected a scan with pushed predicates, got {s:?}"),
    }
}

/// Index of the named slot in the plan's slot table.
fn slot_named(p: &LogicalPlan, name: &str) -> usize {
    p.slots.iter().position(|s| s.name == name).unwrap_or_else(|| panic!("no slot {name}"))
}

/// Apply `mutate` to a fresh base plan and assert the verifier rejects it
/// with the expected rule tag and message fragment.
#[track_caller]
fn assert_rejected(
    plan: LogicalPlan,
    cat: &Catalog,
    mutate: impl FnOnce(&mut LogicalPlan),
    rule: &str,
    fragment: &str,
) {
    let mut p = plan;
    verify_plan(&p, cat).expect("uncorrupted plan must verify");
    mutate(&mut p);
    match verify_plan(&p, cat) {
        Ok(r) => panic!("corrupted plan passed {} checks; expected [{rule}]", r.checks),
        Err(Error::Plan(msg)) => {
            assert!(msg.contains(&format!("[{rule}]")), "expected rule [{rule}], got: {msg}");
            assert!(msg.contains(fragment), "expected fragment {fragment:?} in: {msg}");
        }
        Err(e) => panic!("expected Error::Plan, got {e:?}"),
    }
}

/// Position of the first `Filter` step at or after `from`.
fn filter_at(p: &LogicalPlan, from: usize) -> usize {
    (from..p.steps.len())
        .find(|&i| matches!(p.steps[i], PlanStep::Filter { .. }))
        .expect("plan has a filter step")
}

#[test]
fn rejects_dropped_property_definition() {
    let cat = catalog();
    assert_rejected(
        base_plan(&cat),
        &cat,
        |p| {
            // Drop the NodeProp step feeding the post-extend filter: the
            // filter then reads a slot nothing fills.
            let f = filter_at(p, 0);
            let slot = match &p.steps[f] {
                PlanStep::Filter { expr } => expr.slots()[0],
                _ => unreachable!(),
            };
            let def = p
                .steps
                .iter()
                .position(|s| matches!(s, PlanStep::NodeProp { slot: sl, .. } if *sl == slot))
                .expect("filter slot has a defining step");
            p.steps.remove(def);
            p.step_cards.remove(def);
        },
        "def-before-use",
        "before any property step fills it",
    );
}

#[test]
fn rejects_slot_dtype_desync() {
    let cat = catalog();
    assert_rejected(
        base_plan(&cat),
        &cat,
        |p| p.slots[0].dtype = DataType::Bool,
        "slot-schema",
        "declared Bool",
    );
}

#[test]
fn rejects_filter_spanning_two_unflat_groups() {
    let cat = catalog();
    assert_rejected(
        two_branch_plan(&cat),
        &cat,
        |p| {
            // Widen the b-only filter to also constrain c.age and move it
            // to the end of the plan (after c.age is filled): the
            // combined predicate spans the two unflat branch groups.
            let c_age = slot_named(p, "c.age");
            let f = filter_at(p, 0);
            let orig = match p.steps.remove(f) {
                PlanStep::Filter { expr } => expr,
                _ => unreachable!(),
            };
            let card = p.step_cards.remove(f);
            p.steps.push(PlanStep::Filter {
                expr: PlanExpr::And(vec![
                    orig,
                    PlanExpr::Cmp {
                        op: gfcl_core::query::CmpOp::Gt,
                        lhs: PlanScalar::Slot(c_age),
                        rhs: PlanScalar::Const(Value::Int64(0)),
                    },
                ]),
            });
            p.step_cards.push(card);
        },
        "unflat-span",
        "spans 2 unflat list groups",
    );
}

#[test]
fn rejects_pushed_predicate_on_non_scan_node() {
    let cat = catalog();
    assert_rejected(
        base_plan(&cat),
        &cat,
        |p| {
            // Push a predicate over b (not the scanned a) into the scan.
            let b_age = slot_named(p, "b.age");
            match &mut p.steps[0] {
                PlanStep::ScanAll { pushed, .. } => pushed.push(PlanExpr::Cmp {
                    op: gfcl_core::query::CmpOp::Gt,
                    lhs: PlanScalar::Slot(b_age),
                    rhs: PlanScalar::Const(Value::Int64(25)),
                }),
                _ => unreachable!(),
            }
        },
        "pushed-scan-only",
        "properties of the scanned node",
    );
}

#[test]
fn rejects_slot_to_slot_pushed_predicate() {
    let cat = catalog();
    assert_rejected(
        base_plan(&cat),
        &cat,
        |p| {
            // A pushed predicate comparing two slots — both of the
            // scanned node, but the scan evaluates pushed predicates
            // positionally against constants only.
            let a_age = slot_named(p, "a.age");
            match &mut p.steps[0] {
                PlanStep::ScanAll { pushed, .. } => {
                    pushed.push(PlanExpr::Cmp {
                        op: gfcl_core::query::CmpOp::Lt,
                        lhs: PlanScalar::Slot(a_age),
                        rhs: PlanScalar::Slot(a_age),
                    });
                }
                _ => unreachable!(),
            }
        },
        "pushed-scan-only",
        "against constants only",
    );
}

#[test]
fn rejects_step_cards_length_mismatch() {
    let cat = catalog();
    assert_rejected(
        base_plan(&cat),
        &cat,
        |p| {
            p.step_cards.pop();
        },
        "card-bookkeeping",
        "must stay parallel",
    );
}

#[test]
fn rejects_non_finite_estimate() {
    let cat = catalog();
    assert_rejected(
        base_plan(&cat),
        &cat,
        |p| p.step_cards[0] = Some(f64::NAN),
        "card-bookkeeping",
        "estimate",
    );
}

#[test]
fn rejects_out_of_range_predicate_slot() {
    let cat = catalog();
    assert_rejected(
        base_plan(&cat),
        &cat,
        |p| {
            let f = filter_at(p, 0);
            p.steps[f] = PlanStep::Filter {
                expr: PlanExpr::Cmp {
                    op: gfcl_core::query::CmpOp::Gt,
                    lhs: PlanScalar::Slot(99),
                    rhs: PlanScalar::Const(Value::Int64(0)),
                },
            };
        },
        "index-range",
        "slot $99 exceeds the slot table",
    );
}

#[test]
fn rejects_extend_from_unbound_node() {
    let cat = catalog();
    // Three-node chain a->b->c: swapping the two extends makes the first
    // one traverse from the still-unbound b.
    let q = PatternQuery::builder()
        .node("a", "PERSON")
        .node("b", "PERSON")
        .node("c", "PERSON")
        .edge("e1", "FOLLOWS", "a", "b")
        .edge("e2", "FOLLOWS", "b", "c")
        .edge_order(vec![0, 1])
        .returns_count()
        .build();
    let plan = plan_query(&q, &cat).expect("chain query plans");
    assert_rejected(
        plan,
        &cat,
        |p| {
            let extends: Vec<usize> = (0..p.steps.len())
                .filter(|&i| matches!(p.steps[i], PlanStep::Extend { .. }))
                .collect();
            assert_eq!(extends.len(), 2);
            p.steps.swap(extends[0], extends[1]);
        },
        "def-before-use",
        "extends from unbound node",
    );
}

#[test]
fn rejects_second_scan() {
    let cat = catalog();
    assert_rejected(
        base_plan(&cat),
        &cat,
        |p| {
            let scan = p.steps[0].clone();
            let card = p.step_cards[0];
            p.steps.push(scan);
            p.step_cards.push(card);
        },
        "scan-first",
        "exactly one scan group",
    );
}

#[test]
fn rejects_out_of_range_order_by_column() {
    let cat = catalog();
    assert_rejected(
        base_plan(&cat),
        &cat,
        |p| p.order_by = vec![(99, false)],
        "sink-shape",
        "ORDER BY column 99 is out of range",
    );
}

#[test]
fn rejects_single_flag_contradicting_catalog() {
    let cat = catalog();
    assert_rejected(
        base_plan(&cat),
        &cat,
        |p| {
            for s in &mut p.steps {
                if let PlanStep::Extend { single, .. } = s {
                    *single = !*single;
                }
            }
        },
        "extend-schema",
        "contradicts catalog",
    );
}

#[test]
fn rejects_header_arity_mismatch() {
    let cat = catalog();
    assert_rejected(
        base_plan(&cat),
        &cat,
        |p| p.header.push("phantom".into()),
        "sink-shape",
        "header has 3 columns",
    );
}

#[test]
fn rejects_incomparable_comparison_types() {
    let cat = catalog();
    assert_rejected(
        pushed_plan(&cat),
        &cat,
        |p| {
            // Turn the planner-pushed `a.age > 30` into `a.age > true`.
            match &mut p.steps[0] {
                PlanStep::ScanAll { pushed, .. } => match &mut pushed[0] {
                    PlanExpr::Cmp { rhs, .. } => *rhs = PlanScalar::Const(Value::Bool(true)),
                    _ => unreachable!(),
                },
                _ => unreachable!(),
            }
        },
        "expr-type",
        "incomparable types",
    );
}

#[test]
fn rejects_edge_endpoint_outside_node_table() {
    let cat = catalog();
    assert_rejected(
        base_plan(&cat),
        &cat,
        |p| p.edges[0].to = 99,
        "index-range",
        "exceed the node table",
    );
}

#[test]
fn rejects_unmarked_projection_slot() {
    let cat = catalog();
    assert_rejected(
        base_plan(&cat),
        &cat,
        |p| {
            for s in &mut p.slots {
                s.for_return = false;
            }
        },
        "sink-shape",
        "not marked for_return",
    );
}

#[test]
fn rejects_doubly_filled_slot() {
    let cat = catalog();
    assert_rejected(
        base_plan(&cat),
        &cat,
        |p| {
            let def = p
                .steps
                .iter()
                .position(|s| matches!(s, PlanStep::NodeProp { .. }))
                .expect("plan reads a node property");
            let dup = p.steps[def].clone();
            let card = p.step_cards[def];
            p.steps.insert(def + 1, dup);
            p.step_cards.insert(def + 1, card);
        },
        "def-before-use",
        "filled twice",
    );
}

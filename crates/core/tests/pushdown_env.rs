//! Environment knobs of the executor: the `GFCL_NO_PUSHDOWN` escape
//! hatch plus the validated `GFCL_MORSEL` / `GFCL_THREADS` /
//! `GFCL_TIME_LIMIT_MS` / `GFCL_MEM_LIMIT_MB` pattern (garbage errors at
//! execution naming the variable, it never silently runs a default).
//! These mutate process environment variables, so each knob gets exactly
//! one `#[test]` (tests in one binary run concurrently; distinct
//! variables don't interfere).

use std::sync::Arc;

use gfcl_core::plan::{plan, plan_with, PlanOptions, PlanStep};
use gfcl_core::query::{col, ge, lit, PatternQuery};
use gfcl_core::{Engine, ExecOptions, GfClEngine};
use gfcl_storage::{ColumnarGraph, RawGraph, StorageConfig};

fn filtered_query() -> PatternQuery {
    PatternQuery::builder()
        .node("a", "PERSON")
        .filter(ge(col("a", "age"), lit(40)))
        .returns_count()
        .build()
}

fn pushed_len(p: &gfcl_core::LogicalPlan) -> usize {
    match &p.steps[0] {
        PlanStep::ScanAll { pushed, .. } => pushed.len(),
        s => panic!("expected a scan, got {s:?}"),
    }
}

#[test]
fn gfcl_no_pushdown_disables_the_rewrite() {
    let catalog = RawGraph::example().catalog;
    // Default: the scan-node filter is pushed.
    assert_eq!(pushed_len(&plan(&filtered_query(), &catalog).unwrap()), 1);

    std::env::set_var("GFCL_NO_PUSHDOWN", "1");
    let no_push = plan(&filtered_query(), &catalog).unwrap();
    std::env::remove_var("GFCL_NO_PUSHDOWN");
    assert_eq!(pushed_len(&no_push), 0);
    assert!(no_push.steps.iter().any(|s| matches!(s, PlanStep::Filter { .. })));

    // "0" and empty mean "not disabled".
    std::env::set_var("GFCL_NO_PUSHDOWN", "0");
    let opts = PlanOptions::from_env();
    std::env::remove_var("GFCL_NO_PUSHDOWN");
    assert!(opts.pushdown);

    // The programmatic escape hatch matches the env one.
    let p = plan_with(&filtered_query(), &catalog, &PlanOptions::no_pushdown()).unwrap();
    assert_eq!(pushed_len(&p), 0);
}

#[test]
fn gfcl_threads_is_validated() {
    let graph =
        Arc::new(ColumnarGraph::build(&RawGraph::example(), StorageConfig::default()).unwrap());

    // Garbage (including explicit zero) becomes the invalid sentinel and
    // is rejected at execution time naming the knob — it must not
    // silently fall back to serial.
    for garbage in ["many", "0", "-2", "1.5"] {
        std::env::set_var("GFCL_THREADS", garbage);
        let opts = ExecOptions::from_env();
        std::env::remove_var("GFCL_THREADS");
        assert_eq!(opts.threads, 0, "{garbage:?} must map to the invalid sentinel");
        let engine = GfClEngine::with_options(Arc::clone(&graph), opts);
        let err = engine.execute(&filtered_query()).unwrap_err();
        assert!(matches!(err, gfcl_common::Error::Plan(_)), "{err:?}");
        assert!(err.to_string().contains("GFCL_THREADS"), "{err}");
    }

    // A valid value is honored; unset falls back to serial.
    std::env::set_var("GFCL_THREADS", "3");
    let opts = ExecOptions::from_env();
    std::env::remove_var("GFCL_THREADS");
    assert_eq!(opts.threads, 3);
    assert_eq!(ExecOptions::from_env().threads, 1);
}

#[test]
fn gfcl_time_limit_is_validated() {
    let graph =
        Arc::new(ColumnarGraph::build(&RawGraph::example(), StorageConfig::default()).unwrap());

    for garbage in ["soon", "0", "-1"] {
        std::env::set_var("GFCL_TIME_LIMIT_MS", garbage);
        let opts = ExecOptions::from_env();
        std::env::remove_var("GFCL_TIME_LIMIT_MS");
        assert_eq!(opts.time_limit_ms, Some(0), "{garbage:?} must map to the invalid sentinel");
        let engine = GfClEngine::with_options(Arc::clone(&graph), opts);
        let err = engine.execute(&filtered_query()).unwrap_err();
        assert!(err.to_string().contains("GFCL_TIME_LIMIT_MS"), "{err}");
    }

    // A generous limit doesn't disturb a small query; unset means none.
    std::env::set_var("GFCL_TIME_LIMIT_MS", "60000");
    let opts = ExecOptions::from_env();
    std::env::remove_var("GFCL_TIME_LIMIT_MS");
    assert_eq!(opts.time_limit_ms, Some(60_000));
    let engine = GfClEngine::with_options(Arc::clone(&graph), opts);
    assert!(engine.execute(&filtered_query()).is_ok());
    assert_eq!(ExecOptions::from_env().time_limit_ms, None);
}

#[test]
fn gfcl_mem_limit_is_validated() {
    let graph =
        Arc::new(ColumnarGraph::build(&RawGraph::example(), StorageConfig::default()).unwrap());

    for garbage in ["lots", "0", "-5"] {
        std::env::set_var("GFCL_MEM_LIMIT_MB", garbage);
        let opts = ExecOptions::from_env();
        std::env::remove_var("GFCL_MEM_LIMIT_MB");
        assert_eq!(opts.mem_limit_bytes, Some(0), "{garbage:?} must map to the invalid sentinel");
        let engine = GfClEngine::with_options(Arc::clone(&graph), opts);
        let err = engine.execute(&filtered_query()).unwrap_err();
        assert!(err.to_string().contains("GFCL_MEM_LIMIT_MB"), "{err}");
    }

    std::env::set_var("GFCL_MEM_LIMIT_MB", "512");
    let opts = ExecOptions::from_env();
    std::env::remove_var("GFCL_MEM_LIMIT_MB");
    assert_eq!(opts.mem_limit_bytes, Some(512 * 1024 * 1024));
    let engine = GfClEngine::with_options(Arc::clone(&graph), opts);
    assert!(engine.execute(&filtered_query()).is_ok());
    assert_eq!(ExecOptions::from_env().mem_limit_bytes, None);
}

#[test]
fn gfcl_morsel_is_validated() {
    let graph =
        Arc::new(ColumnarGraph::build(&RawGraph::example(), StorageConfig::default()).unwrap());

    // Garbage becomes the invalid sentinel, rejected at execution time
    // with a plan error naming the knob.
    for garbage in ["nope", "0", "-3"] {
        std::env::set_var("GFCL_MORSEL", garbage);
        let opts = ExecOptions::from_env();
        std::env::remove_var("GFCL_MORSEL");
        assert_eq!(opts.morsel_size, 0, "{garbage:?} must map to the invalid sentinel");
        let engine = GfClEngine::with_options(Arc::clone(&graph), opts);
        let err = engine.execute(&filtered_query()).unwrap_err();
        assert!(matches!(err, gfcl_common::Error::Plan(_)), "{err:?}");
        assert!(err.to_string().contains("GFCL_MORSEL"), "{err}");
    }

    // A valid value is honored; unset falls back to the default.
    std::env::set_var("GFCL_MORSEL", "7");
    let opts = ExecOptions::from_env();
    std::env::remove_var("GFCL_MORSEL");
    assert_eq!(opts.morsel_size, 7);
    assert_eq!(ExecOptions::from_env().morsel_size, gfcl_core::exec::SCAN_MORSEL);

    // And a non-default morsel produces identical results.
    let engine = GfClEngine::with_options(Arc::clone(&graph), ExecOptions::serial());
    let tuned = GfClEngine::with_options(Arc::clone(&graph), ExecOptions::serial().morsel(3));
    let q = filtered_query();
    assert_eq!(engine.execute(&q).unwrap(), tuned.execute(&q).unwrap());
}

//! The write-optimized delta store (ROADMAP #2, the paper's Section 7
//! mitigation): vertex/edge inserts, updates and deletes buffered in
//! append-friendly per-label structures that overlay the immutable
//! read-optimized [`ColumnarGraph`] baseline.
//!
//! The design is the classic write-store / read-store split the paper cites
//! (C-Store's WS, positional delta trees), with the paper's own offset
//! discipline: deleted delta slots are **recycled** through
//! [`crate::OffsetRecycler`] so the delta's positional ID space stays dense,
//! exactly as Section 7 prescribes for the baseline's vertex offsets.
//!
//! Two types split the write and read sides:
//!
//! * [`DeltaStore`] — the mutable accumulator. All mutations funnel through
//!   [`DeltaStore::apply`] with an already-resolved [`ResolvedOp`], the same
//!   entry point WAL replay uses, so a replayed log reconstructs the store
//!   byte-for-byte. `apply` validates everything (arity, types, liveness,
//!   primary-key uniqueness, cardinality constraints) and returns
//!   [`Error::Storage`]/[`Error::Invalid`] on bad input — a corrupted WAL
//!   record can never panic the open path.
//! * [`DeltaSnapshot`] — an immutable, index-enriched freeze of the store
//!   published to readers under one MVCC epoch. Queries resolve
//!   `(baseline ⊎ delta) ∖ tombstones` through its lookup structures; the
//!   baseline portion keeps its zone maps and compiled predicates, and only
//!   rows/lists the delta actually touches pay the overlay price.
//!
//! **ID spaces.** Vertices keep per-label positional offsets: baseline rows
//! occupy `0..n_base` and delta rows occupy `n_base + slot` (slots recycled
//! LIFO). Baseline edges are identified storage-agnostically as
//! `(src, dst, occ)` — the `occ`-th duplicate of that endpoint pair in the
//! source's adjacency list. Both the columnar CSR and the row store build
//! their lists with the same stable grouping of the input edge table, so the
//! occurrence index names the same physical edge in every engine. Delta
//! edges are identified by their insertion index, which is never recycled
//! (deleted delta edges keep their slot with a `deleted` flag) so WAL
//! replay and snapshot readers agree on indices.

use std::collections::{HashMap, HashSet};

use gfcl_common::{DataType, Direction, Error, LabelId, Reader, Result, Value, Writer};

use crate::catalog::Catalog;
use crate::columnar_graph::{AdjIndex, ColumnarGraph};
use crate::mutation::OffsetRecycler;

/// A fully resolved mutation, the unit of WAL logging and replay.
///
/// "Resolved" means every identifier is positional: vertex offsets instead
/// of primary keys, full post-image rows instead of partial assignments,
/// and [`EdgeTarget`]s instead of endpoint pairs. Resolution happens once,
/// in the writer's transaction (`gfcl_storage::store`), against the state
/// the op will apply to — so replaying the same op sequence over the same
/// baseline is deterministic by construction.
#[derive(Debug, Clone, PartialEq)]
pub enum ResolvedOp {
    /// Insert a vertex of `label` with a full-width property row.
    InsertVertex { label: LabelId, row: Vec<Value> },
    /// Replace the property row of the (live) vertex at `off`.
    UpdateVertex { label: LabelId, off: u64, row: Vec<Value> },
    /// Delete the vertex at `off`, cascading to its incident edges.
    DeleteVertex { label: LabelId, off: u64 },
    /// Insert an edge `src -> dst` of edge label `label`.
    InsertEdge { label: LabelId, src: u64, dst: u64, props: Vec<Value> },
    /// Delete one edge of `label`.
    DeleteEdge { label: LabelId, target: EdgeTarget },
}

/// The identity of one edge for deletion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeTarget {
    /// A baseline edge: the `occ`-th `(src, dst)` duplicate in list order.
    Base { src: u64, dst: u64, occ: u32 },
    /// A delta-inserted edge by insertion index.
    Delta { idx: u64 },
}

/// One delta-inserted edge. `deleted` edges keep their slot so indices
/// stay stable for the WAL and for published snapshots.
#[derive(Debug, Clone, PartialEq)]
pub struct DeltaEdge {
    pub src: u64,
    pub dst: u64,
    pub props: Box<[Value]>,
    pub deleted: bool,
}

fn value_enc(w: &mut Writer, v: &Value) {
    match v {
        Value::Null => w.u8(0),
        Value::Int64(x) => {
            w.u8(1);
            w.i64(*x);
        }
        Value::Float64(x) => {
            w.u8(2);
            w.f64(*x);
        }
        Value::Bool(x) => {
            w.u8(3);
            w.bool(*x);
        }
        Value::Date(x) => {
            w.u8(4);
            w.i64(*x);
        }
        Value::String(s) => {
            w.u8(5);
            w.str(s);
        }
    }
}

fn value_dec(r: &mut Reader<'_>) -> Result<Value> {
    Ok(match r.u8()? {
        0 => Value::Null,
        1 => Value::Int64(r.i64()?),
        2 => Value::Float64(r.f64()?),
        3 => Value::Bool(r.bool()?),
        4 => Value::Date(r.i64()?),
        5 => Value::String(r.str()?),
        t => return Err(Error::Storage(format!("unknown value tag {t} in WAL record"))),
    })
}

fn row_enc(w: &mut Writer, row: &[Value]) {
    w.usize(row.len());
    for v in row {
        value_enc(w, v);
    }
}

fn row_dec(r: &mut Reader<'_>) -> Result<Vec<Value>> {
    let n = r.count()?;
    let mut row = Vec::with_capacity(n);
    for _ in 0..n {
        row.push(value_dec(r)?);
    }
    Ok(row)
}

impl ResolvedOp {
    pub fn encode(&self, w: &mut Writer) {
        match self {
            ResolvedOp::InsertVertex { label, row } => {
                w.u8(0);
                w.u32(u32::from(*label));
                row_enc(w, row);
            }
            ResolvedOp::UpdateVertex { label, off, row } => {
                w.u8(1);
                w.u32(u32::from(*label));
                w.u64(*off);
                row_enc(w, row);
            }
            ResolvedOp::DeleteVertex { label, off } => {
                w.u8(2);
                w.u32(u32::from(*label));
                w.u64(*off);
            }
            ResolvedOp::InsertEdge { label, src, dst, props } => {
                w.u8(3);
                w.u32(u32::from(*label));
                w.u64(*src);
                w.u64(*dst);
                row_enc(w, props);
            }
            ResolvedOp::DeleteEdge { label, target } => {
                w.u8(4);
                w.u32(u32::from(*label));
                match target {
                    EdgeTarget::Base { src, dst, occ } => {
                        w.u8(0);
                        w.u64(*src);
                        w.u64(*dst);
                        w.u32(*occ);
                    }
                    EdgeTarget::Delta { idx } => {
                        w.u8(1);
                        w.u64(*idx);
                    }
                }
            }
        }
    }

    pub fn decode(r: &mut Reader<'_>) -> Result<ResolvedOp> {
        let label_of = |v: u32| -> Result<LabelId> {
            LabelId::try_from(v).map_err(|_| Error::Storage(format!("label id {v} out of range")))
        };
        Ok(match r.u8()? {
            0 => ResolvedOp::InsertVertex { label: label_of(r.u32()?)?, row: row_dec(r)? },
            1 => {
                let label = label_of(r.u32()?)?;
                let off = r.u64()?;
                ResolvedOp::UpdateVertex { label, off, row: row_dec(r)? }
            }
            2 => ResolvedOp::DeleteVertex { label: label_of(r.u32()?)?, off: r.u64()? },
            3 => {
                let label = label_of(r.u32()?)?;
                let src = r.u64()?;
                let dst = r.u64()?;
                ResolvedOp::InsertEdge { label, src, dst, props: row_dec(r)? }
            }
            4 => {
                let label = label_of(r.u32()?)?;
                let target = match r.u8()? {
                    0 => EdgeTarget::Base { src: r.u64()?, dst: r.u64()?, occ: r.u32()? },
                    1 => EdgeTarget::Delta { idx: r.u64()? },
                    t => {
                        return Err(Error::Storage(format!("unknown edge-target tag {t}")));
                    }
                };
                ResolvedOp::DeleteEdge { label, target }
            }
            t => return Err(Error::Storage(format!("unknown mutation-op tag {t}"))),
        })
    }
}

/// The mutable write store. One per [`crate::store::GraphStore`]; writers
/// mutate a private clone and publish it wholesale on commit, so readers
/// only ever observe the frozen [`DeltaSnapshot`]s.
#[derive(Debug, Clone, Default)]
pub struct DeltaStore {
    /// Per vertex label: delta rows by slot (`None` = vacated by a delete).
    v_rows: Vec<Vec<Option<Box<[Value]>>>>,
    /// Per vertex label: slot allocator recycling vacated delta slots.
    v_recycler: Vec<OffsetRecycler>,
    /// Per vertex label: full post-image rows overriding baseline offsets.
    v_updates: Vec<HashMap<u64, Box<[Value]>>>,
    /// Per vertex label: tombstoned baseline offsets.
    v_tombs: Vec<HashSet<u64>>,
    /// Per vertex label: primary keys of live delta rows -> global offset.
    v_pk: Vec<HashMap<i64, u64>>,
    /// Per edge label: delta edges in insertion order (slots never reused).
    e_rows: Vec<Vec<DeltaEdge>>,
    /// Per edge label: tombstoned baseline edges, `(src, dst) -> occs`.
    e_tombs: Vec<HashMap<(u64, u64), Vec<u32>>>,
    /// `[elabel][dir]`: endpoint -> live delta edge indices in insertion
    /// order, maintained incrementally on every edge mutation. This is the
    /// same shape the snapshot publishes, kept live so vertex-delete
    /// cascades, cardinality checks and delete-edge resolution cost
    /// O(incident edges) instead of scanning every delta edge. Invariants:
    /// only live edges appear, and a key with no edges is removed — so
    /// `freeze` can publish a clone verbatim.
    e_from: Vec<[HashMap<u64, Vec<u64>>; 2]>,
}

impl DeltaStore {
    pub fn new(catalog: &Catalog) -> DeltaStore {
        let nv = catalog.vertex_label_count();
        let ne = catalog.edge_label_count();
        DeltaStore {
            v_rows: vec![Vec::new(); nv],
            v_recycler: vec![OffsetRecycler::new(); nv],
            v_updates: vec![HashMap::new(); nv],
            v_tombs: vec![HashSet::new(); nv],
            v_pk: vec![HashMap::new(); nv],
            e_rows: vec![Vec::new(); ne],
            e_tombs: vec![HashMap::new(); ne],
            e_from: (0..ne).map(|_| [HashMap::new(), HashMap::new()]).collect(),
        }
    }

    /// True when no mutation is buffered (merge is a no-op).
    pub fn is_empty(&self) -> bool {
        self.v_rows.iter().all(|r| r.iter().all(Option::is_none))
            && self.v_updates.iter().all(HashMap::is_empty)
            && self.v_tombs.iter().all(HashSet::is_empty)
            && self.e_rows.iter().all(|r| r.iter().all(|e| e.deleted))
            && self.e_tombs.iter().all(HashMap::is_empty)
    }

    /// Number of buffered ops' worth of state, as a rough merge trigger.
    pub fn mutation_count(&self) -> usize {
        self.v_rows.iter().map(Vec::len).sum::<usize>()
            + self.v_updates.iter().map(HashMap::len).sum::<usize>()
            + self.v_tombs.iter().map(HashSet::len).sum::<usize>()
            + self.e_rows.iter().map(Vec::len).sum::<usize>()
            + self.e_tombs.iter().map(|t| t.values().map(Vec::len).sum::<usize>()).sum::<usize>()
    }

    // ---- effective-state queries (writer side) -----------------------------

    /// Is the vertex at global offset `off` visible?
    pub fn vertex_live(&self, base: &ColumnarGraph, label: LabelId, off: u64) -> bool {
        let n_base = base.vertex_count(label) as u64;
        if off < n_base {
            !self.v_tombs[label as usize].contains(&off)
        } else {
            let slot = (off - n_base) as usize;
            self.v_rows[label as usize].get(slot).is_some_and(Option::is_some)
        }
    }

    /// Effective vertex count including live and vacated delta slots (the
    /// scan range is `0..n_base + delta_slots`).
    pub fn scan_total(&self, base: &ColumnarGraph, label: LabelId) -> u64 {
        base.vertex_count(label) as u64 + self.v_rows[label as usize].len() as u64
    }

    /// Effective primary-key lookup: delta rows shadow nothing (pk is
    /// unique), tombstoned baseline rows are invisible.
    pub fn lookup_pk(&self, base: &ColumnarGraph, label: LabelId, key: i64) -> Option<u64> {
        if let Some(&off) = self.v_pk[label as usize].get(&key) {
            return Some(off);
        }
        let off = base.lookup_pk(label, key)?;
        if self.v_tombs[label as usize].contains(&off) {
            None
        } else {
            Some(off)
        }
    }

    /// Effective property value of the vertex at `off` (must be live).
    pub fn vertex_value(
        &self,
        base: &ColumnarGraph,
        label: LabelId,
        off: u64,
        prop: usize,
    ) -> Value {
        let n_base = base.vertex_count(label) as u64;
        if off < n_base {
            if let Some(row) = self.v_updates[label as usize].get(&off) {
                return row[prop].clone();
            }
            base.vertex_prop(label, prop).value(off as usize)
        } else {
            let slot = (off - n_base) as usize;
            match self.v_rows[label as usize].get(slot).and_then(Option::as_ref) {
                Some(row) => row[prop].clone(),
                None => Value::Null,
            }
        }
    }

    /// The global offset the next `InsertVertex { label, .. }` will land
    /// on (recycled gap or fresh slot), without allocating it.
    pub fn peek_insert_offset(&self, base: &ColumnarGraph, label: LabelId) -> u64 {
        base.vertex_count(label) as u64 + self.v_recycler[label as usize].peek()
    }

    /// Resolve "delete the first live `(src, dst)` edge" to a stable
    /// [`EdgeTarget`]: baseline occurrences in list order first, then delta
    /// edges in insertion order.
    pub fn resolve_delete_edge(
        &self,
        base: &ColumnarGraph,
        label: LabelId,
        src: u64,
        dst: u64,
    ) -> Result<EdgeTarget> {
        let n_base = base.vertex_count(base.catalog().edge_label(label).src) as u64;
        if src < n_base {
            let tombs = self.e_tombs[label as usize].get(&(src, dst));
            let is_tombed = |occ: u32| tombs.is_some_and(|v| v.contains(&occ));
            let n_occ = base_occurrences(base, label, src, dst);
            for occ in 0..n_occ {
                if !is_tombed(occ) {
                    return Ok(EdgeTarget::Base { src, dst, occ });
                }
            }
        }
        // The per-endpoint index lists live edges in insertion order, so
        // the first `dst` match is the oldest live delta edge — the same
        // answer the old full scan gave, at O(out-degree) cost.
        if let Some(idxs) = self.e_from[label as usize][0].get(&src) {
            for &idx in idxs {
                if self.e_rows[label as usize][idx as usize].dst == dst {
                    return Ok(EdgeTarget::Delta { idx });
                }
            }
        }
        Err(Error::Invalid(format!(
            "no live edge {} from offset {src} to {dst}",
            base.catalog().edge_label(label).name
        )))
    }

    // ---- the single mutation gate ------------------------------------------

    /// Validate and apply one resolved op. This is the only way state enters
    /// the store — the writer's transaction and WAL replay both call it, so
    /// a committed log replays to exactly the state that was published.
    pub fn apply(&mut self, base: &ColumnarGraph, op: &ResolvedOp) -> Result<()> {
        match op {
            ResolvedOp::InsertVertex { label, row } => self.insert_vertex(base, *label, row),
            ResolvedOp::UpdateVertex { label, off, row } => {
                self.update_vertex(base, *label, *off, row)
            }
            ResolvedOp::DeleteVertex { label, off } => self.delete_vertex(base, *label, *off),
            ResolvedOp::InsertEdge { label, src, dst, props } => {
                self.insert_edge(base, *label, *src, *dst, props)
            }
            ResolvedOp::DeleteEdge { label, target } => self.delete_edge(base, *label, *target),
        }
    }

    fn check_vlabel(&self, base: &ColumnarGraph, label: LabelId) -> Result<()> {
        if (label as usize) < base.catalog().vertex_label_count() {
            Ok(())
        } else {
            Err(Error::Storage(format!("vertex label id {label} out of range")))
        }
    }

    fn check_elabel(&self, base: &ColumnarGraph, label: LabelId) -> Result<()> {
        if (label as usize) < base.catalog().edge_label_count() {
            Ok(())
        } else {
            Err(Error::Storage(format!("edge label id {label} out of range")))
        }
    }

    fn insert_vertex(&mut self, base: &ColumnarGraph, label: LabelId, row: &[Value]) -> Result<()> {
        self.check_vlabel(base, label)?;
        let def = base.catalog().vertex_label(label);
        let row = normalize_row(&def.name, &def.properties, row)?;
        if let Some(pidx) = def.primary_key {
            let key = row[pidx].as_i64().ok_or_else(|| {
                Error::Invalid(format!("vertex label {} requires a non-null Int64 pk", def.name))
            })?;
            if self.lookup_pk(base, label, key).is_some() {
                return Err(Error::Invalid(format!("duplicate primary key {key} on {}", def.name)));
            }
            let slot = self.v_recycler[label as usize].allocate();
            let off = base.vertex_count(label) as u64 + slot;
            self.v_pk[label as usize].insert(key, off);
            self.place_row(base, label, slot, row);
        } else {
            let slot = self.v_recycler[label as usize].allocate();
            self.place_row(base, label, slot, row);
        }
        Ok(())
    }

    fn place_row(&mut self, _base: &ColumnarGraph, label: LabelId, slot: u64, row: Box<[Value]>) {
        let rows = &mut self.v_rows[label as usize];
        let slot = slot as usize;
        if slot == rows.len() {
            rows.push(Some(row));
        } else {
            // The recycler only hands out vacated slots below its
            // high-water mark, which equals rows.len().
            rows[slot] = Some(row);
        }
    }

    fn update_vertex(
        &mut self,
        base: &ColumnarGraph,
        label: LabelId,
        off: u64,
        row: &[Value],
    ) -> Result<()> {
        self.check_vlabel(base, label)?;
        if !self.vertex_live(base, label, off) {
            return Err(Error::Invalid(format!("update of a dead vertex at offset {off}")));
        }
        let def = base.catalog().vertex_label(label);
        let row = normalize_row(&def.name, &def.properties, row)?;
        if let Some(pidx) = def.primary_key {
            let old = self.vertex_value(base, label, off, pidx);
            if old != row[pidx] {
                return Err(Error::Invalid(format!(
                    "primary key of {} is immutable (delete and re-insert instead)",
                    def.name
                )));
            }
        }
        let n_base = base.vertex_count(label) as u64;
        if off < n_base {
            self.v_updates[label as usize].insert(off, row);
        } else {
            let slot = (off - n_base) as usize;
            self.v_rows[label as usize][slot] = Some(row);
        }
        Ok(())
    }

    fn delete_vertex(&mut self, base: &ColumnarGraph, label: LabelId, off: u64) -> Result<()> {
        self.check_vlabel(base, label)?;
        if !self.vertex_live(base, label, off) {
            return Err(Error::Invalid(format!("delete of a dead vertex at offset {off}")));
        }
        let catalog = base.catalog();
        // Cascade: every live edge incident to the vertex dies with it.
        // Delta edges come from the per-endpoint index, so the cascade
        // pays for incident edges only, never the whole delta.
        for elabel in 0..catalog.edge_label_count() as LabelId {
            let def = catalog.edge_label(elabel);
            if def.src == label {
                self.tomb_base_side(base, elabel, Direction::Fwd, off);
                self.drop_delta_side(elabel, 0, off);
            }
            if def.dst == label {
                self.tomb_base_side(base, elabel, Direction::Bwd, off);
                self.drop_delta_side(elabel, 1, off);
            }
        }
        let def = catalog.vertex_label(label);
        if let Some(pidx) = def.primary_key {
            if let Some(key) = self.vertex_value(base, label, off, pidx).as_i64() {
                self.v_pk[label as usize].remove(&key);
            }
        }
        let n_base = base.vertex_count(label) as u64;
        if off < n_base {
            self.v_updates[label as usize].remove(&off);
            self.v_tombs[label as usize].insert(off);
        } else {
            let slot = off - n_base;
            self.v_rows[label as usize][slot as usize] = None;
            self.v_recycler[label as usize].release(slot);
        }
        Ok(())
    }

    /// Delete every live delta edge whose side-`d` endpoint (0 = src,
    /// 1 = dst) is `v`, keeping both directions of the endpoint index
    /// consistent.
    fn drop_delta_side(&mut self, elabel: LabelId, d: usize, v: u64) {
        let el = elabel as usize;
        let Some(idxs) = self.e_from[el][d].remove(&v) else {
            return;
        };
        let other = 1 - d;
        for &idx in &idxs {
            let i = idx as usize;
            let (src, dst) = {
                let e = &mut self.e_rows[el][i];
                e.deleted = true;
                (e.src, e.dst)
            };
            let other_v = if d == 0 { dst } else { src };
            if let Some(list) = self.e_from[el][other].get_mut(&other_v) {
                list.retain(|&x| x != idx);
                if list.is_empty() {
                    self.e_from[el][other].remove(&other_v);
                }
            }
        }
    }

    /// Tombstone every baseline edge of `elabel` whose `dir`-side endpoint
    /// is the baseline vertex `v` (no-op for delta vertices, which have no
    /// baseline edges).
    fn tomb_base_side(&mut self, base: &ColumnarGraph, elabel: LabelId, dir: Direction, v: u64) {
        let from_label = base.catalog().edge_label(elabel).from_label(dir);
        if v >= base.vertex_count(from_label) as u64 {
            return;
        }
        let mut seen: HashMap<u64, u32> = HashMap::new();
        let mut tomb = |tombs: &mut HashMap<(u64, u64), Vec<u32>>, nbr: u64| {
            let occ = seen.entry(nbr).or_insert(0);
            let key = if dir == Direction::Fwd { (v, nbr) } else { (nbr, v) };
            let occs = tombs.entry(key).or_default();
            if !occs.contains(occ) {
                occs.push(*occ);
            }
            *occ += 1;
        };
        match base.adj(elabel, dir) {
            AdjIndex::Csr(csr) => {
                let tombs = &mut self.e_tombs[elabel as usize];
                for (_, nbr) in csr.iter_list(v) {
                    tomb(tombs, nbr);
                }
            }
            AdjIndex::SingleCard(s) => {
                if let Some(nbr) = s.nbr(v) {
                    tomb(&mut self.e_tombs[elabel as usize], nbr);
                }
            }
        }
    }

    fn insert_edge(
        &mut self,
        base: &ColumnarGraph,
        label: LabelId,
        src: u64,
        dst: u64,
        props: &[Value],
    ) -> Result<()> {
        self.check_elabel(base, label)?;
        let def = base.catalog().edge_label(label);
        let props = normalize_row(&def.name, &def.properties, props)?;
        let (slabel, dlabel) = (def.src, def.dst);
        if !self.vertex_live(base, slabel, src) {
            return Err(Error::Invalid(format!("edge source offset {src} is not a live vertex")));
        }
        if !self.vertex_live(base, dlabel, dst) {
            return Err(Error::Invalid(format!(
                "edge destination offset {dst} is not a live vertex"
            )));
        }
        // Cardinality constraints stay invariants of the merged view: a
        // single-cardinality endpoint must not already have a live edge.
        let card = def.cardinality;
        for (dir, v) in [(Direction::Fwd, src), (Direction::Bwd, dst)] {
            if card.is_single(dir) && self.effective_degree_nonzero(base, label, dir, v) {
                return Err(Error::Invalid(format!(
                    "cardinality violation: {} already has a live {} edge in direction {dir}",
                    v, def.name
                )));
            }
        }
        let l = label as usize;
        let idx = self.e_rows[l].len() as u64;
        self.e_rows[l].push(DeltaEdge { src, dst, props, deleted: false });
        self.e_from[l][0].entry(src).or_default().push(idx);
        self.e_from[l][1].entry(dst).or_default().push(idx);
        Ok(())
    }

    /// Does the (live) vertex `v` have at least one live `(elabel, dir)`
    /// edge in the merged view?
    fn effective_degree_nonzero(
        &self,
        base: &ColumnarGraph,
        elabel: LabelId,
        dir: Direction,
        v: u64,
    ) -> bool {
        // The endpoint index holds only live edges and no empty lists, so
        // key presence alone answers the delta side in O(1).
        if self.e_from[elabel as usize][dir_idx(dir)].contains_key(&v) {
            return true;
        }
        let from_label = base.catalog().edge_label(elabel).from_label(dir);
        if v >= base.vertex_count(from_label) as u64 {
            return false;
        }
        let tombs = &self.e_tombs[elabel as usize];
        let mut seen: HashMap<u64, u32> = HashMap::new();
        let mut check = |nbr: u64| -> bool {
            let occ = seen.entry(nbr).or_insert(0);
            let key = if dir == Direction::Fwd { (v, nbr) } else { (nbr, v) };
            let alive = !tombs.get(&key).is_some_and(|occs| occs.contains(occ));
            *occ += 1;
            alive
        };
        match base.adj(elabel, dir) {
            AdjIndex::Csr(csr) => csr.iter_list(v).any(|(_, nbr)| check(nbr)),
            AdjIndex::SingleCard(s) => s.nbr(v).is_some_and(check),
        }
    }

    fn delete_edge(
        &mut self,
        base: &ColumnarGraph,
        label: LabelId,
        target: EdgeTarget,
    ) -> Result<()> {
        self.check_elabel(base, label)?;
        match target {
            EdgeTarget::Base { src, dst, occ } => {
                if occ >= base_occurrences(base, label, src, dst) {
                    return Err(Error::Invalid(format!(
                        "no baseline edge ({src} -> {dst}, occurrence {occ})"
                    )));
                }
                let occs = self.e_tombs[label as usize].entry((src, dst)).or_default();
                if occs.contains(&occ) {
                    return Err(Error::Invalid(format!(
                        "baseline edge ({src} -> {dst}, occurrence {occ}) already deleted"
                    )));
                }
                occs.push(occ);
            }
            EdgeTarget::Delta { idx } => {
                let l = label as usize;
                let e = self.e_rows[l]
                    .get_mut(idx as usize)
                    .filter(|e| !e.deleted)
                    .ok_or_else(|| Error::Invalid(format!("no live delta edge at index {idx}")))?;
                e.deleted = true;
                let (src, dst) = (e.src, e.dst);
                for (d, v) in [(0, src), (1, dst)] {
                    if let Some(list) = self.e_from[l][d].get_mut(&v) {
                        list.retain(|&x| x != idx);
                        if list.is_empty() {
                            self.e_from[l][d].remove(&v);
                        }
                    }
                }
            }
        }
        Ok(())
    }

    // ---- freeze ------------------------------------------------------------

    /// Freeze the current state into an immutable snapshot with the derived
    /// read-side indices (from-indices, dirty sets, string extensions,
    /// sorted offset lists for block-level checks).
    pub fn freeze(&self, base: &ColumnarGraph) -> DeltaSnapshot {
        let catalog = base.catalog();
        let nv = catalog.vertex_label_count();
        let ne = catalog.edge_label_count();

        let mut v_tombs_sorted = Vec::with_capacity(nv);
        let mut v_touched_offs = Vec::with_capacity(nv);
        let mut v_str_ext: Vec<Vec<StrExt>> = Vec::with_capacity(nv);
        for l in 0..nv {
            let mut tombs: Vec<u64> = self.v_tombs[l].iter().copied().collect();
            tombs.sort_unstable();
            // Baseline offsets a pushed-down scan cannot prune or probe
            // positionally: tombstones and overridden rows.
            let mut touched: Vec<u64> =
                self.v_tombs[l].iter().chain(self.v_updates[l].keys()).copied().collect();
            touched.sort_unstable();
            touched.dedup();
            v_tombs_sorted.push(tombs);
            v_touched_offs.push(touched);

            let def = catalog.vertex_label(l as LabelId);
            let mut exts = Vec::with_capacity(def.properties.len());
            for (p, pd) in def.properties.iter().enumerate() {
                let mut ext = if pd.dtype == DataType::String {
                    let dict = base.vertex_prop(l as LabelId, p).dictionary();
                    StrExt::new(dict.map_or(0, |d| d.len()))
                } else {
                    StrExt::new(0)
                };
                if pd.dtype == DataType::String {
                    let dict = base.vertex_prop(l as LabelId, p).dictionary();
                    let mut note = |v: &Value| {
                        if let Value::String(s) = v {
                            if dict.and_then(|d| d.code_of(s)).is_none() {
                                ext.intern(s);
                            }
                        }
                    };
                    for row in self.v_rows[l].iter().flatten() {
                        note(&row[p]);
                    }
                    for row in self.v_updates[l].values() {
                        note(&row[p]);
                    }
                }
                exts.push(ext);
            }
            v_str_ext.push(exts);
        }

        let mut e_from = Vec::with_capacity(ne);
        let mut e_dirty = Vec::with_capacity(ne);
        let mut e_str_ext: Vec<Vec<[StrExt; 2]>> = Vec::with_capacity(ne);
        for l in 0..ne {
            // The live per-endpoint index already has the snapshot's exact
            // shape (live edges only, insertion order, no empty lists) —
            // publish a clone instead of rebuilding from a full edge scan.
            let fwd = self.e_from[l][0].clone();
            let bwd = self.e_from[l][1].clone();
            let mut dirty_fwd: HashSet<u64> = HashSet::new();
            let mut dirty_bwd: HashSet<u64> = HashSet::new();
            for &(src, dst) in self.e_tombs[l].keys() {
                dirty_fwd.insert(src);
                dirty_bwd.insert(dst);
            }
            dirty_fwd.extend(fwd.keys().copied());
            dirty_bwd.extend(bwd.keys().copied());
            e_from.push([fwd, bwd]);
            e_dirty.push([dirty_fwd, dirty_bwd]);

            let def = catalog.edge_label(l as LabelId);
            let mut exts = Vec::with_capacity(def.properties.len());
            for (p, pd) in def.properties.iter().enumerate() {
                let mut pair = [StrExt::new(0), StrExt::new(0)];
                if pd.dtype == DataType::String {
                    for (d, dir) in [(0, Direction::Fwd), (1, Direction::Bwd)] {
                        let dict_ref = base
                            .edge_prop_read(l as LabelId, dir, p)
                            .ok()
                            .and_then(|read| read.column().dictionary());
                        let mut ext = StrExt::new(dict_ref.map_or(0, |d| d.len()));
                        for e in &self.e_rows[l] {
                            if e.deleted {
                                continue;
                            }
                            if let Value::String(s) = &e.props[p] {
                                if dict_ref.and_then(|dd| dd.code_of(s)).is_none() {
                                    ext.intern(s);
                                }
                            }
                        }
                        pair[d] = ext;
                    }
                }
                exts.push(pair);
            }
            e_str_ext.push(exts);
        }

        DeltaSnapshot {
            empty: self.is_empty(),
            v_rows: self.v_rows.clone(),
            v_updates: self.v_updates.clone(),
            v_tomb_set: self.v_tombs.clone(),
            v_tombs_sorted,
            v_touched_offs,
            v_pk: self.v_pk.clone(),
            v_str_ext,
            e_rows: self.e_rows.clone(),
            e_tombs: self.e_tombs.clone(),
            e_from,
            e_dirty,
            e_str_ext,
        }
    }
}

/// Count of `(src, dst)` duplicates in the baseline adjacency of `label`.
fn base_occurrences(base: &ColumnarGraph, label: LabelId, src: u64, dst: u64) -> u32 {
    let slabel = base.catalog().edge_label(label).src;
    if src >= base.vertex_count(slabel) as u64 {
        return 0;
    }
    match base.adj(label, Direction::Fwd) {
        AdjIndex::Csr(csr) => {
            let mut n = 0;
            for (_, nbr) in csr.iter_list(src) {
                if nbr == dst {
                    n += 1;
                }
            }
            n
        }
        AdjIndex::SingleCard(s) => u32::from(s.nbr(src) == Some(dst)),
    }
}

/// Normalize and validate a property row against its label's schema:
/// right arity, right types (`Int64` literals coerce to `Date` columns),
/// NULLs allowed everywhere except where a later constraint (pk) rejects
/// them.
fn normalize_row(
    label_name: &str,
    defs: &[crate::catalog::PropertyDef],
    row: &[Value],
) -> Result<Box<[Value]>> {
    if row.len() != defs.len() {
        return Err(Error::Invalid(format!(
            "property row for {label_name} has {} values, schema has {}",
            row.len(),
            defs.len()
        )));
    }
    let mut out = Vec::with_capacity(row.len());
    for (v, d) in row.iter().zip(defs) {
        let v = match (d.dtype, v) {
            (_, Value::Null) => Value::Null,
            (DataType::Int64, Value::Int64(x)) => Value::Int64(*x),
            (DataType::Date, Value::Date(x)) | (DataType::Date, Value::Int64(x)) => Value::Date(*x),
            (DataType::Float64, Value::Float64(x)) => Value::Float64(*x),
            (DataType::Float64, Value::Int64(x)) => Value::Float64(*x as f64),
            (DataType::Bool, Value::Bool(x)) => Value::Bool(*x),
            (DataType::String, Value::String(s)) => Value::String(s.clone()),
            (dt, v) => {
                return Err(Error::TypeMismatch {
                    expected: dt.to_string(),
                    found: format!("{v:?} for {label_name}.{}", d.name),
                })
            }
        };
        out.push(v);
    }
    Ok(out.into_boxed_slice())
}

/// Extension dictionary for one string property: codes continue after the
/// baseline dictionary (`code = base_len + idx`), so a chunk's code vector
/// can mix baseline and delta rows and still decode unambiguously.
#[derive(Debug, Clone, Default)]
pub struct StrExt {
    base_len: u64,
    strs: Vec<String>,
    map: HashMap<String, u64>,
}

impl StrExt {
    pub fn new(base_len: usize) -> StrExt {
        StrExt { base_len: base_len as u64, strs: Vec::new(), map: HashMap::new() }
    }

    fn intern(&mut self, s: &str) -> u64 {
        if let Some(&c) = self.map.get(s) {
            return c;
        }
        let code = self.base_len + self.strs.len() as u64;
        self.strs.push(s.to_owned());
        self.map.insert(s.to_owned(), code);
        code
    }

    /// Full code of `s` if it is an extension string.
    pub fn code_of(&self, s: &str) -> Option<u64> {
        self.map.get(s).copied()
    }

    /// Decode a full code `>= base_len()`.
    pub fn decode(&self, code: u64) -> &str {
        let ext_idx = (code - self.base_len) as usize;
        &self.strs[ext_idx]
    }

    /// First extension code (== the baseline dictionary's length).
    pub fn base_len(&self) -> u64 {
        self.base_len
    }

    pub fn is_empty(&self) -> bool {
        self.strs.is_empty()
    }

    /// Total code-space size (`base_len + extension entries`).
    pub fn code_end(&self) -> u64 {
        self.base_len + self.strs.len() as u64
    }

    /// Iterate `(full code, string)` over the extension entries.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &str)> {
        self.strs.iter().enumerate().map(|(i, s)| (self.base_len + i as u64, s.as_str()))
    }
}

/// An immutable freeze of the delta, published to readers under one MVCC
/// epoch. All lookups are by positional offset and are representation-
/// agnostic: the columnar engines, the row-store engine and the relational
/// baseline overlay the same snapshot over their own baselines.
#[derive(Debug, Clone, Default)]
pub struct DeltaSnapshot {
    empty: bool,
    v_rows: Vec<Vec<Option<Box<[Value]>>>>,
    v_updates: Vec<HashMap<u64, Box<[Value]>>>,
    v_tomb_set: Vec<HashSet<u64>>,
    /// Tombstoned baseline offsets, sorted (block-overlap checks).
    v_tombs_sorted: Vec<Vec<u64>>,
    /// Sorted union of tombstoned + overridden baseline offsets: the rows a
    /// compiled scan predicate must not trust positionally.
    v_touched_offs: Vec<Vec<u64>>,
    v_pk: Vec<HashMap<i64, u64>>,
    /// `[label][prop]` extension dictionaries (empty for non-strings).
    v_str_ext: Vec<Vec<StrExt>>,
    e_rows: Vec<Vec<DeltaEdge>>,
    e_tombs: Vec<HashMap<(u64, u64), Vec<u32>>>,
    /// `[elabel][dir]`: from-vertex -> live delta edge indices, in
    /// insertion order.
    e_from: Vec<[HashMap<u64, Vec<u64>>; 2]>,
    /// `[elabel][dir]`: from-vertices whose adjacency list differs from the
    /// baseline (tombstoned entries or delta edges).
    e_dirty: Vec<[HashSet<u64>; 2]>,
    /// `[elabel][prop][dir]` extension dictionaries.
    e_str_ext: Vec<Vec<[StrExt; 2]>>,
}

impl DeltaSnapshot {
    /// An empty snapshot (the state of a freshly opened store).
    pub fn empty_for(catalog: &Catalog) -> DeltaSnapshot {
        DeltaStore::new(catalog).freeze_empty(catalog)
    }

    /// True when the snapshot holds no mutation at all — every view helper
    /// is then the identity and engines take their unmodified fast paths.
    pub fn is_empty(&self) -> bool {
        self.empty
    }

    // ---- vertices ----------------------------------------------------------

    /// Number of delta vertex slots (live or vacated) for `label`; the scan
    /// range extends to `n_base + delta_slots(label)`.
    pub fn delta_slots(&self, label: LabelId) -> u64 {
        self.v_rows.get(label as usize).map_or(0, |r| r.len() as u64)
    }

    /// The delta row at `slot`, if live.
    pub fn delta_row(&self, label: LabelId, slot: u64) -> Option<&[Value]> {
        self.v_rows.get(label as usize)?.get(slot as usize)?.as_deref()
    }

    /// The full post-image row overriding baseline offset `off`, if any.
    pub fn updated_row(&self, label: LabelId, off: u64) -> Option<&[Value]> {
        self.v_updates.get(label as usize)?.get(&off).map(|r| &r[..])
    }

    /// Is the baseline offset `off` tombstoned?
    pub fn vertex_tombed(&self, label: LabelId, off: u64) -> bool {
        self.v_tomb_set.get(label as usize).is_some_and(|t| t.contains(&off))
    }

    /// Tombstoned baseline offsets of `label`, ascending — the order merge
    /// removes them in.
    pub fn vertex_tombs_sorted(&self, label: LabelId) -> &[u64] {
        self.v_tombs_sorted.get(label as usize).map_or(&[], |v| &v[..])
    }

    /// Does `label` carry any vertex-side mutation (rows, updates, tombs)?
    pub fn vertex_label_touched(&self, label: LabelId) -> bool {
        let l = label as usize;
        self.v_rows.get(l).is_some_and(|r| !r.is_empty())
            || self.v_updates.get(l).is_some_and(|u| !u.is_empty())
            || self.v_tomb_set.get(l).is_some_and(|t| !t.is_empty())
    }

    /// Do any tombstoned/overridden baseline offsets fall in `[start, end)`?
    /// Sorted-vec binary search: the common all-clean scan block answers in
    /// O(log n) without touching per-row state.
    pub fn base_range_touched(&self, label: LabelId, start: u64, end: u64) -> bool {
        let Some(offs) = self.v_touched_offs.get(label as usize) else {
            return false;
        };
        let i = offs.partition_point(|&o| o < start);
        offs.get(i).is_some_and(|&o| o < end)
    }

    /// Primary-key lookup against the delta only (`None` = ask the base,
    /// then reject tombstoned hits).
    pub fn pk_delta(&self, label: LabelId, key: i64) -> Option<u64> {
        self.v_pk.get(label as usize)?.get(&key).copied()
    }

    /// Extension dictionary of a string vertex property.
    pub fn vertex_str_ext(&self, label: LabelId, prop: usize) -> Option<&StrExt> {
        self.v_str_ext.get(label as usize)?.get(prop).filter(|e| !e.is_empty())
    }

    // ---- edges -------------------------------------------------------------

    /// Is the baseline edge `(src, dst, occ)` tombstoned?
    pub fn edge_tombed(&self, label: LabelId, src: u64, dst: u64, occ: u32) -> bool {
        self.e_tombs
            .get(label as usize)
            .and_then(|t| t.get(&(src, dst)))
            .is_some_and(|occs| occs.contains(&occ))
    }

    /// Does the adjacency list of `from` in `(label, dir)` differ from the
    /// baseline?
    pub fn edge_list_dirty(&self, label: LabelId, dir: Direction, from: u64) -> bool {
        self.e_dirty.get(label as usize).is_some_and(|d| d[dir_idx(dir)].contains(&from))
    }

    /// Does `(label, dir)` carry any edge mutation at all? (`false` keeps
    /// the whole zero-copy extend path.)
    pub fn edge_label_touched(&self, label: LabelId, dir: Direction) -> bool {
        self.e_dirty.get(label as usize).is_some_and(|d| !d[dir_idx(dir)].is_empty())
    }

    /// Live delta edge indices whose `dir`-side endpoint is `from`.
    pub fn delta_edges_from(&self, label: LabelId, dir: Direction, from: u64) -> &[u64] {
        self.e_from
            .get(label as usize)
            .and_then(|d| d[dir_idx(dir)].get(&from))
            .map_or(&[], |v| &v[..])
    }

    /// The delta edge at `idx` (deleted edges keep their slot).
    pub fn delta_edge(&self, label: LabelId, idx: u64) -> &DeltaEdge {
        &self.e_rows[label as usize][idx as usize]
    }

    /// Total delta edge slots for `label`.
    pub fn delta_edge_count(&self, label: LabelId) -> u64 {
        self.e_rows.get(label as usize).map_or(0, |r| r.len() as u64)
    }

    /// Extension dictionary of a string edge property for one traversal
    /// direction.
    pub fn edge_str_ext(&self, label: LabelId, dir: Direction, prop: usize) -> Option<&StrExt> {
        self.e_str_ext
            .get(label as usize)?
            .get(prop)
            .map(|pair| &pair[dir_idx(dir)])
            .filter(|e| !e.is_empty())
    }
}

fn dir_idx(dir: Direction) -> usize {
    match dir {
        Direction::Fwd => 0,
        Direction::Bwd => 1,
    }
}

impl DeltaStore {
    /// [`DeltaStore::freeze`] without a baseline: only valid when the store
    /// is empty (used to seed a store's first snapshot).
    fn freeze_empty(&self, catalog: &Catalog) -> DeltaSnapshot {
        debug_assert!(self.is_empty());
        let nv = catalog.vertex_label_count();
        let ne = catalog.edge_label_count();
        DeltaSnapshot {
            empty: true,
            v_rows: vec![Vec::new(); nv],
            v_updates: vec![HashMap::new(); nv],
            v_tomb_set: vec![HashSet::new(); nv],
            v_tombs_sorted: vec![Vec::new(); nv],
            v_touched_offs: vec![Vec::new(); nv],
            v_pk: vec![HashMap::new(); nv],
            v_str_ext: (0..nv)
                .map(|l| {
                    catalog
                        .vertex_label(l as LabelId)
                        .properties
                        .iter()
                        .map(|_| StrExt::new(0))
                        .collect()
                })
                .collect(),
            e_rows: vec![Vec::new(); ne],
            e_tombs: vec![HashMap::new(); ne],
            e_from: (0..ne).map(|_| [HashMap::new(), HashMap::new()]).collect(),
            e_dirty: (0..ne).map(|_| [HashSet::new(), HashSet::new()]).collect(),
            e_str_ext: (0..ne)
                .map(|l| {
                    catalog
                        .edge_label(l as LabelId)
                        .properties
                        .iter()
                        .map(|_| [StrExt::new(0), StrExt::new(0)])
                        .collect()
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::StorageConfig;
    use crate::raw::RawGraph;

    /// The example graph with `PERSON.age` promoted to a primary key (the
    /// example ages 45/54/17/23 are unique Int64s).
    fn example() -> ColumnarGraph {
        let mut raw = RawGraph::example();
        raw.catalog.set_primary_key(0, "age").unwrap();
        ColumnarGraph::build(&raw, StorageConfig::default()).unwrap()
    }

    // PERSON schema: name (String), age (Int64, pk), gender (String).
    fn person_row(name: &str, age: i64, gender: &str) -> Vec<Value> {
        vec![Value::String(name.into()), Value::Int64(age), Value::String(gender.into())]
    }

    #[test]
    fn insert_update_delete_roundtrip() {
        let g = example();
        let person = g.catalog().vertex_label_id("PERSON").unwrap();
        let mut d = DeltaStore::new(g.catalog());
        assert!(d.is_empty());

        d.apply(&g, &ResolvedOp::InsertVertex { label: person, row: person_row("zoe", 31, "F") })
            .unwrap();
        let off = g.vertex_count(person) as u64;
        assert!(d.vertex_live(&g, person, off));
        assert_eq!(d.lookup_pk(&g, person, 31), Some(off));
        assert_eq!(d.vertex_value(&g, person, off, 0), Value::String("zoe".into()));

        d.apply(
            &g,
            &ResolvedOp::UpdateVertex { label: person, off, row: person_row("zoey", 31, "F") },
        )
        .unwrap();
        assert_eq!(d.vertex_value(&g, person, off, 0), Value::String("zoey".into()));

        d.apply(&g, &ResolvedOp::DeleteVertex { label: person, off }).unwrap();
        assert!(!d.vertex_live(&g, person, off));
        assert_eq!(d.lookup_pk(&g, person, 31), None);
        assert!(d.is_empty(), "insert+delete cancels out");

        // The vacated slot is recycled by the next insert.
        d.apply(&g, &ResolvedOp::InsertVertex { label: person, row: person_row("yan", 20, "M") })
            .unwrap();
        assert!(d.vertex_live(&g, person, off));
    }

    #[test]
    fn pk_constraints_enforced() {
        let g = example();
        let person = g.catalog().vertex_label_id("PERSON").unwrap();
        let mut d = DeltaStore::new(g.catalog());
        // Duplicate against the baseline (alice has age 45).
        let err = d
            .apply(&g, &ResolvedOp::InsertVertex { label: person, row: person_row("dup", 45, "F") })
            .unwrap_err();
        assert!(err.to_string().contains("duplicate"), "{err}");
        // Updates must not change the pk.
        d.apply(&g, &ResolvedOp::InsertVertex { label: person, row: person_row("ok", 50, "M") })
            .unwrap();
        let off = g.vertex_count(person) as u64;
        let err = d
            .apply(
                &g,
                &ResolvedOp::UpdateVertex { label: person, off, row: person_row("ok", 51, "M") },
            )
            .unwrap_err();
        assert!(err.to_string().contains("immutable"), "{err}");
        // A baseline pk reads through; tombstoning frees it for re-use.
        assert_eq!(d.lookup_pk(&g, person, 45), Some(0));
        d.apply(&g, &ResolvedOp::DeleteVertex { label: person, off: 0 }).unwrap();
        assert_eq!(d.lookup_pk(&g, person, 45), None);
        d.apply(&g, &ResolvedOp::InsertVertex { label: person, row: person_row("re", 45, "F") })
            .unwrap();
        assert!(d.lookup_pk(&g, person, 45).is_some());
    }

    #[test]
    fn vertex_delete_cascades_to_edges() {
        let g = example();
        let person = g.catalog().vertex_label_id("PERSON").unwrap();
        let follows = g.catalog().edge_label_id("FOLLOWS").unwrap();
        let mut d = DeltaStore::new(g.catalog());
        // Vertex 0 has baseline FOLLOWS edges in both directions.
        d.apply(&g, &ResolvedOp::DeleteVertex { label: person, off: 0 }).unwrap();
        let snap = d.freeze(&g);
        assert!(snap.vertex_tombed(person, 0));
        assert!(snap.edge_label_touched(follows, Direction::Fwd));
        // Every baseline FOLLOWS edge out of 0 is tombstoned.
        if let AdjIndex::Csr(csr) = g.adj(follows, Direction::Fwd) {
            let mut seen: HashMap<u64, u32> = HashMap::new();
            for (_, nbr) in csr.iter_list(0) {
                let occ = seen.entry(nbr).or_insert(0);
                assert!(snap.edge_tombed(follows, 0, nbr, *occ));
                *occ += 1;
            }
        }
    }

    #[test]
    fn cardinality_violation_rejected() {
        let g = example();
        let workat = g.catalog().edge_label_id("WORKAT").unwrap();
        // Vertex 0 already works somewhere (n-1 label): a second WORKAT
        // edge from it must be rejected.
        let mut d = DeltaStore::new(g.catalog());
        let err = d
            .apply(
                &g,
                &ResolvedOp::InsertEdge { label: workat, src: 0, dst: 0, props: vec![Value::Null] },
            )
            .unwrap_err();
        assert!(err.to_string().contains("cardinality"), "{err}");
    }

    #[test]
    fn delete_edge_resolution_prefers_base_occurrences() {
        let g = example();
        let follows = g.catalog().edge_label_id("FOLLOWS").unwrap();
        let mut d = DeltaStore::new(g.catalog());
        // Find one baseline FOLLOWS edge.
        let AdjIndex::Csr(csr) = g.adj(follows, Direction::Fwd) else { panic!() };
        let (src, dst) = (0u64, csr.iter_list(0).next().unwrap().1);
        let t = d.resolve_delete_edge(&g, follows, src, dst).unwrap();
        assert!(matches!(t, EdgeTarget::Base { occ: 0, .. }));
        d.apply(&g, &ResolvedOp::DeleteEdge { label: follows, target: t }).unwrap();
        // Deleting again resolves past the tombstone (to a dup occurrence
        // or a delta edge) or fails cleanly.
        match d.resolve_delete_edge(&g, follows, src, dst) {
            Ok(EdgeTarget::Base { occ, .. }) => assert!(occ > 0),
            Ok(EdgeTarget::Delta { .. }) => panic!("no delta edges inserted"),
            Err(e) => assert!(e.to_string().contains("no live edge"), "{e}"),
        }
    }

    #[test]
    fn endpoint_index_tracks_inserts_deletes_and_cascades() {
        let g = example();
        let person = g.catalog().vertex_label_id("PERSON").unwrap();
        let follows = g.catalog().edge_label_id("FOLLOWS").unwrap();
        let mut d = DeltaStore::new(g.catalog());
        let n = g.vertex_count(person) as u64;
        d.apply(&g, &ResolvedOp::InsertVertex { label: person, row: person_row("zoe", 31, "F") })
            .unwrap();
        d.apply(&g, &ResolvedOp::InsertVertex { label: person, row: person_row("yan", 20, "M") })
            .unwrap();
        // Delta edges: n -> 0 (idx 0), n -> n+1 (idx 1), 0 -> n (idx 2).
        for (src, dst) in [(n, 0), (n, n + 1), (0, n)] {
            d.apply(
                &g,
                &ResolvedOp::InsertEdge {
                    label: follows,
                    src,
                    dst,
                    props: vec![Value::Int64(2024)],
                },
            )
            .unwrap();
        }
        let snap = d.freeze(&g);
        assert_eq!(snap.delta_edges_from(follows, Direction::Fwd, n), &[0, 1]);
        assert_eq!(snap.delta_edges_from(follows, Direction::Bwd, n), &[2]);
        assert_eq!(snap.delta_edges_from(follows, Direction::Bwd, 0), &[0]);

        // Deleting a delta edge drops it from both directions.
        d.apply(
            &g,
            &ResolvedOp::DeleteEdge { label: follows, target: EdgeTarget::Delta { idx: 0 } },
        )
        .unwrap();
        let snap = d.freeze(&g);
        assert_eq!(snap.delta_edges_from(follows, Direction::Fwd, n), &[1]);
        assert!(snap.delta_edges_from(follows, Direction::Bwd, 0).is_empty());

        // Resolution walks the index: the only live 0 -> n edge is idx 2.
        assert_eq!(d.resolve_delete_edge(&g, follows, 0, n).unwrap(), EdgeTarget::Delta { idx: 2 });

        // A vertex-delete cascade clears every incident delta edge.
        d.apply(&g, &ResolvedOp::DeleteVertex { label: person, off: n }).unwrap();
        let snap = d.freeze(&g);
        assert!(snap.delta_edges_from(follows, Direction::Fwd, n).is_empty());
        assert!(snap.delta_edges_from(follows, Direction::Bwd, n).is_empty());
        assert!(snap.delta_edges_from(follows, Direction::Bwd, n + 1).is_empty());
        assert!(snap.delta_edge(follows, 1).deleted);
        assert!(snap.delta_edge(follows, 2).deleted);
    }

    #[test]
    fn resolved_op_codec_roundtrip() {
        let ops = vec![
            ResolvedOp::InsertVertex {
                label: 1,
                row: vec![Value::Null, Value::String("x".into()), Value::Float64(0.5)],
            },
            ResolvedOp::UpdateVertex { label: 0, off: 7, row: vec![Value::Date(123)] },
            ResolvedOp::DeleteVertex { label: 2, off: 0 },
            ResolvedOp::InsertEdge { label: 0, src: 3, dst: 9, props: vec![Value::Bool(true)] },
            ResolvedOp::DeleteEdge {
                label: 1,
                target: EdgeTarget::Base { src: 1, dst: 2, occ: 3 },
            },
            ResolvedOp::DeleteEdge { label: 1, target: EdgeTarget::Delta { idx: 4 } },
        ];
        let mut w = Writer::new();
        for op in &ops {
            op.encode(&mut w);
        }
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        for op in &ops {
            assert_eq!(&ResolvedOp::decode(&mut r).unwrap(), op);
        }
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn snapshot_str_ext_extends_dictionary() {
        let g = example();
        let person = g.catalog().vertex_label_id("PERSON").unwrap();
        let mut d = DeltaStore::new(g.catalog());
        d.apply(
            &g,
            &ResolvedOp::InsertVertex { label: person, row: person_row("zaphod", 42, "M") },
        )
        .unwrap();
        let snap = d.freeze(&g);
        // "zaphod" is not a baseline name: it gets an extension code after
        // the baseline dictionary.
        let ext = snap.vertex_str_ext(person, 0).expect("name ext");
        let dict_len = g.vertex_prop(person, 0).dictionary().unwrap().len() as u64;
        let code = ext.code_of("zaphod").unwrap();
        assert!(code >= dict_len);
        assert_eq!(ext.decode(code), "zaphod");
        // "M" IS a baseline gender: no extension entry for it.
        assert!(snap.vertex_str_ext(person, 2).is_none());
    }
}

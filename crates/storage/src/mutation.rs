//! Update handling (Section 7) — the paper's extension discussion,
//! implemented for the structures whose designs it motivates.
//!
//! The paper observes that, unlike columnar RDBMSs whose row IDs are
//! implicit, GDBMSs store positional offsets *explicitly* (vertex offsets in
//! adjacency lists, page-level positional offsets in edge IDs). Deletions
//! therefore leave **gaps** that must be tracked and **recycled** by later
//! insertions — this is how Neo4j's `nodestore.db.id` file works, and it is
//! precisely why the paper groups k lists per property page: a page-level
//! offset freed by a deletion can be reused by an insertion into *any* of
//! the page's k lists, instead of waiting for an insertion into the same
//! list (which may never come).
//!
//! This module provides:
//!
//! * [`OffsetRecycler`] — a free-list of recyclable positional offsets;
//! * [`MutablePage`] — an updatable property page honouring the paper's
//!   append + recycle discipline, with gap statistics;
//! * [`MutableAdjacency`] — an updatable adjacency structure (per-vertex
//!   edge lists + per-edge page offsets) that demonstrates the full
//!   insert/delete cycle the paper describes, including the contrast
//!   between *list-level* offsets (recyclable only within one list) and
//!   *page-level* offsets (recyclable across k lists).
//!
//! The read-optimized [`crate::ColumnarGraph`] itself remains immutable;
//! writes go through the write-optimized delta store in [`crate::delta`]
//! (the C-Store-style write store the paper cites), are made durable by
//! the write-ahead log in [`crate::wal`], and are folded back into a fresh
//! read-optimized baseline by `GraphStore::merge` in [`crate::store`].
//! [`OffsetRecycler`] is the piece those modules share: the delta store
//! recycles vacated delta-vertex slots through it, exactly the gap
//! discipline this module models for the baseline structures.

use gfcl_common::MemoryUsage;

/// A free-list of deleted positional offsets, recycled LIFO (matching
/// Neo4j's ID file behaviour the paper references).
#[derive(Debug, Clone, Default)]
pub struct OffsetRecycler {
    free: Vec<u64>,
    next_fresh: u64,
}

impl OffsetRecycler {
    pub fn new() -> Self {
        OffsetRecycler::default()
    }

    /// Allocate an offset: recycle a gap if one exists, else mint a fresh
    /// offset at the end.
    pub fn allocate(&mut self) -> u64 {
        match self.free.pop() {
            Some(off) => off,
            None => {
                let off = self.next_fresh;
                self.next_fresh += 1;
                off
            }
        }
    }

    /// The offset the next [`OffsetRecycler::allocate`] will return,
    /// without allocating it.
    pub fn peek(&self) -> u64 {
        self.free.last().copied().unwrap_or(self.next_fresh)
    }

    /// Return an offset to the pool.
    pub fn release(&mut self, off: u64) {
        debug_assert!(off < self.next_fresh, "released offset was never allocated");
        self.free.push(off);
    }

    /// Number of gaps currently waiting to be recycled.
    pub fn gaps(&self) -> usize {
        self.free.len()
    }

    /// High-water mark: offsets ever minted.
    pub fn high_water(&self) -> u64 {
        self.next_fresh
    }
}

impl MemoryUsage for OffsetRecycler {
    fn memory_bytes(&self) -> usize {
        self.free.memory_bytes()
    }
}

/// An updatable property page: `k` adjacency lists share one append-only
/// value region addressed by page-level positional offsets.
#[derive(Debug, Clone)]
pub struct MutablePage {
    /// Values by page-level offset; `None` = gap left by a deletion.
    values: Vec<Option<i64>>,
    recycler: OffsetRecycler,
}

impl MutablePage {
    pub fn new() -> MutablePage {
        MutablePage { values: Vec::new(), recycler: OffsetRecycler::new() }
    }

    /// Insert a value, recycling a gap when available; returns the
    /// page-level positional offset (what gets stored in the edge ID).
    pub fn insert(&mut self, value: i64) -> u64 {
        let off = self.recycler.allocate();
        if off as usize >= self.values.len() {
            self.values.resize(off as usize + 1, None);
        }
        debug_assert!(self.values[off as usize].is_none(), "slot must be a gap");
        self.values[off as usize] = Some(value);
        off
    }

    /// Delete the value at `off`, leaving a recyclable gap.
    pub fn delete(&mut self, off: u64) -> Option<i64> {
        let old = self.values.get_mut(off as usize)?.take();
        if old.is_some() {
            self.recycler.release(off);
        }
        old
    }

    /// Constant-time read by page-level positional offset.
    pub fn get(&self, off: u64) -> Option<i64> {
        self.values.get(off as usize).copied().flatten()
    }

    pub fn gaps(&self) -> usize {
        self.recycler.gaps()
    }

    pub fn slots(&self) -> usize {
        self.values.len()
    }
}

impl Default for MutablePage {
    fn default() -> Self {
        MutablePage::new()
    }
}

/// An updatable single-label adjacency index with property pages: per-vertex
/// lists of `(neighbour, page offset)` plus one [`MutablePage`] per group of
/// `k` source vertices.
#[derive(Debug, Clone)]
pub struct MutableAdjacency {
    k: usize,
    lists: Vec<Vec<(u64, u64)>>,
    pages: Vec<MutablePage>,
}

impl MutableAdjacency {
    /// An empty adjacency over `n_vertices` sources with page size `k`.
    pub fn new(n_vertices: usize, k: usize) -> MutableAdjacency {
        assert!(k > 0);
        MutableAdjacency {
            k,
            lists: vec![Vec::new(); n_vertices],
            pages: (0..n_vertices.div_ceil(k).max(1)).map(|_| MutablePage::new()).collect(),
        }
    }

    fn page_of(&self, src: u64) -> usize {
        src as usize / self.k
    }

    /// Insert edge `(src, dst)` with a property value; returns the
    /// page-level positional offset assigned to the edge.
    pub fn insert_edge(&mut self, src: u64, dst: u64, prop: i64) -> u64 {
        let page = self.page_of(src);
        let off = self.pages[page].insert(prop);
        self.lists[src as usize].push((dst, off));
        off
    }

    /// Delete the edge `(src, dst)`; its page offset becomes a gap that any
    /// of the page's k lists can recycle.
    pub fn delete_edge(&mut self, src: u64, dst: u64) -> bool {
        let page = self.page_of(src);
        let list = &mut self.lists[src as usize];
        if let Some(pos) = list.iter().position(|&(d, _)| d == dst) {
            let (_, off) = list.swap_remove(pos);
            self.pages[page].delete(off);
            true
        } else {
            false
        }
    }

    /// The adjacency list of `src` as `(neighbour, property)` pairs.
    pub fn list(&self, src: u64) -> Vec<(u64, i64)> {
        let page = &self.pages[self.page_of(src)];
        self.lists[src as usize]
            .iter()
            .map(|&(d, off)| (d, page.get(off).expect("live edge has a live slot")))
            .collect()
    }

    pub fn degree(&self, src: u64) -> usize {
        self.lists[src as usize].len()
    }

    /// Total gaps across all pages (storage wasted until recycled).
    pub fn total_gaps(&self) -> usize {
        self.pages.iter().map(MutablePage::gaps).sum()
    }

    /// Total allocated slots across all pages.
    pub fn total_slots(&self) -> usize {
        self.pages.iter().map(MutablePage::slots).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recycler_reuses_gaps_lifo() {
        let mut r = OffsetRecycler::new();
        assert_eq!((r.allocate(), r.allocate(), r.allocate()), (0, 1, 2));
        r.release(1);
        r.release(0);
        assert_eq!(r.gaps(), 2);
        assert_eq!(r.allocate(), 0, "LIFO recycling");
        assert_eq!(r.allocate(), 1);
        assert_eq!(r.allocate(), 3, "fresh after gaps exhausted");
        assert_eq!(r.high_water(), 4);
    }

    #[test]
    fn page_insert_delete_roundtrip() {
        let mut p = MutablePage::new();
        let a = p.insert(10);
        let b = p.insert(20);
        assert_eq!(p.get(a), Some(10));
        assert_eq!(p.delete(a), Some(10));
        assert_eq!(p.get(a), None);
        assert_eq!(p.gaps(), 1);
        // Next insertion recycles the gap.
        let c = p.insert(30);
        assert_eq!(c, a);
        assert_eq!(p.gaps(), 0);
        assert_eq!(p.get(b), Some(20));
        assert_eq!(p.slots(), 2, "no growth past the high-water mark");
    }

    #[test]
    fn cross_list_recycling_is_the_point_of_pages() {
        // The Section 4.2 argument: with k lists per page, a slot freed
        // from one vertex's list is reusable by an insertion into ANY of
        // the page's lists — unlike list-level offsets.
        let mut adj = MutableAdjacency::new(4, 4); // all 4 vertices share one page
        adj.insert_edge(0, 10, 100);
        adj.insert_edge(0, 11, 101);
        adj.insert_edge(1, 12, 102);
        assert_eq!(adj.total_slots(), 3);
        // Delete from vertex 0's list...
        assert!(adj.delete_edge(0, 10));
        assert_eq!(adj.total_gaps(), 1);
        // ...and recycle via an insertion into vertex 3's list.
        adj.insert_edge(3, 13, 103);
        assert_eq!(adj.total_gaps(), 0);
        assert_eq!(adj.total_slots(), 3, "gap recycled across lists");
        assert_eq!(adj.list(3), vec![(13, 103)]);
        assert_eq!(adj.list(0), vec![(11, 101)]);
    }

    #[test]
    fn list_level_offsets_would_strand_gaps() {
        // Contrast: with k = 1 (list-level offsets, one page per vertex), a
        // gap in vertex 0's page can only be recycled by another insertion
        // into vertex 0's list.
        let mut adj = MutableAdjacency::new(4, 1);
        adj.insert_edge(0, 10, 100);
        adj.delete_edge(0, 10);
        adj.insert_edge(3, 13, 103); // different page: cannot reuse the gap
        assert_eq!(adj.total_gaps(), 1, "gap stranded in vertex 0's page");
        adj.insert_edge(0, 14, 104); // same list: now it recycles
        assert_eq!(adj.total_gaps(), 0);
    }

    #[test]
    fn reads_follow_updates() {
        let mut adj = MutableAdjacency::new(10, 2);
        for i in 0..5u64 {
            adj.insert_edge(2, i, i as i64 * 7);
        }
        assert_eq!(adj.degree(2), 5);
        adj.delete_edge(2, 3);
        let mut l = adj.list(2);
        l.sort_unstable();
        assert_eq!(l, vec![(0, 0), (1, 7), (2, 14), (4, 28)]);
        assert!(!adj.delete_edge(2, 99), "deleting a missing edge is a no-op");
    }
}

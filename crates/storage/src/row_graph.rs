//! [`RowGraph`]: the GF-RV storage substrate the paper starts from.
//!
//! This models GraphflowDB's original row-oriented layout (Section 8):
//!
//! * vertex and edge properties in the **interpreted attribute layout**
//!   [Beckmann et al.]: each record is a list of `(property key, value)`
//!   entries, so keys are stored explicitly per record and property reads
//!   scan the record comparing keys;
//! * 8-byte global vertex and edge IDs;
//! * adjacency lists in per-label CSRs whose entries are uncompressed
//!   `(edge ID, neighbour ID)` pairs — 16 bytes per edge per direction;
//! * a property **pointer per edge**, even for labels with no properties —
//!   the overhead the paper calls out when motivating `+COLS`.

use std::collections::HashMap;

use gfcl_common::{Direction, Error, LabelId, MemoryUsage, Result, Value};

use crate::catalog::Catalog;
use crate::raw::RawGraph;

/// One `(key, value)` pair of the interpreted attribute layout. The key is
/// an 8-byte property identifier stored explicitly with every value.
#[derive(Debug, Clone, PartialEq)]
pub struct PropEntry {
    pub key: u64,
    pub value: Value,
}

impl MemoryUsage for PropEntry {
    fn memory_bytes(&self) -> usize {
        // Inline size (key + value enum) plus any string heap.
        std::mem::size_of::<PropEntry>()
            + match &self.value {
                Value::String(s) => s.capacity(),
                _ => 0,
            }
    }
}

/// A record: boxed slice of present properties (NULLs are simply absent).
pub type RowRecord = Box<[PropEntry]>;

fn record_bytes(rec: &RowRecord) -> usize {
    rec.iter().map(PropEntry::memory_bytes).sum::<usize>()
}

/// Row-oriented CSR: uncompressed `(edge ID, neighbour global ID)` pairs.
#[derive(Debug, Clone)]
pub struct RowCsr {
    offsets: Vec<u64>,
    /// Global edge IDs (label-scoped, 0..m).
    edge_ids: Vec<u64>,
    /// Global neighbour vertex IDs.
    nbrs: Vec<u64>,
}

impl RowCsr {
    fn build(n_vertices: usize, from: &[u64], edge_ids: &[u64], nbrs: &[u64]) -> RowCsr {
        let mut offsets = vec![0u64; n_vertices + 1];
        for &f in from {
            offsets[f as usize + 1] += 1;
        }
        for v in 0..n_vertices {
            offsets[v + 1] += offsets[v];
        }
        let mut cursor = offsets.clone();
        let mut e_sorted = vec![0u64; from.len()];
        let mut n_sorted = vec![0u64; from.len()];
        for i in 0..from.len() {
            let f = from[i] as usize;
            let p = cursor[f] as usize;
            cursor[f] += 1;
            e_sorted[p] = edge_ids[i];
            n_sorted[p] = nbrs[i];
        }
        RowCsr { offsets, edge_ids: e_sorted, nbrs: n_sorted }
    }

    /// `(start, len)` of vertex `v`'s list.
    #[inline]
    pub fn list(&self, v: u64) -> (u64, usize) {
        let s = self.offsets[v as usize];
        (s, (self.offsets[v as usize + 1] - s) as usize)
    }

    #[inline]
    pub fn pair_at(&self, pos: u64) -> (u64, u64) {
        (self.edge_ids[pos as usize], self.nbrs[pos as usize])
    }

    pub fn degree(&self, v: u64) -> usize {
        self.list(v).1
    }
}

impl MemoryUsage for RowCsr {
    fn memory_bytes(&self) -> usize {
        self.offsets.memory_bytes() + self.edge_ids.memory_bytes() + self.nbrs.memory_bytes()
    }
}

/// The row-oriented graph database (GF-RV substrate).
#[derive(Debug, Clone)]
pub struct RowGraph {
    catalog: Catalog,
    vertex_counts: Vec<usize>,
    edge_counts: Vec<usize>,
    /// Global vertex ID of the first vertex of each label.
    label_base: Vec<u64>,
    /// Per label: one record per vertex.
    vertex_records: Vec<Vec<RowRecord>>,
    /// Per edge label: a property pointer per edge (None = no properties,
    /// but the pointer slot itself is still paid for).
    edge_records: Vec<Vec<Option<RowRecord>>>,
    fwd: Vec<RowCsr>,
    bwd: Vec<RowCsr>,
    pk: Vec<Option<HashMap<i64, u64>>>,
}

impl RowGraph {
    pub fn build(raw: &RawGraph) -> Result<RowGraph> {
        raw.validate()?;
        let mut catalog = raw.catalog.clone();
        // Same statistics as the columnar build: both engines must pick the
        // same join orders for the cross-engine comparisons to be fair.
        catalog.set_stats(crate::stats::Stats::collect(raw));
        let vertex_counts: Vec<usize> = raw.vertices.iter().map(|t| t.count).collect();
        let edge_counts: Vec<usize> = raw.edges.iter().map(|t| t.len()).collect();
        let mut label_base = Vec::with_capacity(vertex_counts.len());
        let mut base = 0u64;
        for &c in &vertex_counts {
            label_base.push(base);
            base += c as u64;
        }

        let mut vertex_records = Vec::with_capacity(raw.vertices.len());
        for (lid, table) in raw.vertices.iter().enumerate() {
            let def = catalog.vertex_label(lid as LabelId);
            let mut records = Vec::with_capacity(table.count);
            for v in 0..table.count {
                let mut entries = Vec::new();
                for (j, prop) in table.props.iter().enumerate() {
                    let val = prop.value(v, def.properties[j].dtype);
                    if !val.is_null() {
                        entries.push(PropEntry { key: j as u64, value: val });
                    }
                }
                records.push(entries.into_boxed_slice());
            }
            vertex_records.push(records);
        }

        let mut edge_records = Vec::with_capacity(raw.edges.len());
        let mut fwd = Vec::with_capacity(raw.edges.len());
        let mut bwd = Vec::with_capacity(raw.edges.len());
        for (eid, table) in raw.edges.iter().enumerate() {
            let def = catalog.edge_label(eid as LabelId);
            let m = table.len();
            // One property pointer per edge, even when there is nothing to
            // point at (GF-RV overhead reproduced).
            let mut records: Vec<Option<RowRecord>> = Vec::with_capacity(m);
            for i in 0..m {
                let mut entries = Vec::new();
                for (j, prop) in table.props.iter().enumerate() {
                    let val = prop.value(i, def.properties[j].dtype);
                    if !val.is_null() {
                        entries.push(PropEntry { key: j as u64, value: val });
                    }
                }
                records.push(if entries.is_empty() {
                    None
                } else {
                    Some(entries.into_boxed_slice())
                });
            }
            edge_records.push(records);

            let edge_ids: Vec<u64> = (0..m as u64).collect();
            let src_globals: Vec<u64> =
                table.src.iter().map(|&o| label_base[def.src as usize] + o).collect();
            let dst_globals: Vec<u64> =
                table.dst.iter().map(|&o| label_base[def.dst as usize] + o).collect();
            fwd.push(RowCsr::build(
                raw.vertices[def.src as usize].count,
                &table.src,
                &edge_ids,
                &dst_globals,
            ));
            bwd.push(RowCsr::build(
                raw.vertices[def.dst as usize].count,
                &table.dst,
                &edge_ids,
                &src_globals,
            ));
        }

        let mut pk = Vec::with_capacity(raw.vertices.len());
        for (lid, records) in vertex_records.iter().enumerate() {
            let def = catalog.vertex_label(lid as LabelId);
            pk.push(match def.primary_key {
                Some(j) => {
                    let mut map = HashMap::with_capacity(records.len());
                    for (v, rec) in records.iter().enumerate() {
                        if let Some(entry) = rec.iter().find(|e| e.key == j as u64) {
                            if let Some(key) = entry.value.as_i64() {
                                if map.insert(key, v as u64).is_some() {
                                    return Err(Error::Invalid(format!(
                                        "duplicate primary key {key} in {}",
                                        def.name
                                    )));
                                }
                            }
                        }
                    }
                    Some(map)
                }
                None => None,
            });
        }

        Ok(RowGraph {
            catalog,
            vertex_counts,
            edge_counts,
            label_base,
            vertex_records,
            edge_records,
            fwd,
            bwd,
            pk,
        })
    }

    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    pub fn vertex_count(&self, label: LabelId) -> usize {
        self.vertex_counts[label as usize]
    }

    pub fn edge_count(&self, label: LabelId) -> usize {
        self.edge_counts[label as usize]
    }

    /// Global vertex ID of `(label, offset)` — GF-RV's 8-byte ID scheme.
    pub fn global_id(&self, label: LabelId, offset: u64) -> u64 {
        self.label_base[label as usize] + offset
    }

    /// Convert a global ID of a known label back to a label-level offset.
    pub fn offset_of_global(&self, label: LabelId, global: u64) -> u64 {
        global - self.label_base[label as usize]
    }

    pub fn adj(&self, label: LabelId, dir: Direction) -> &RowCsr {
        match dir {
            Direction::Fwd => &self.fwd[label as usize],
            Direction::Bwd => &self.bwd[label as usize],
        }
    }

    /// Read a vertex property by scanning the record's key/value entries —
    /// the interpreted-attribute-layout access path ("checking equality on
    /// property keys", Section 8.7).
    pub fn read_vertex_prop(&self, label: LabelId, offset: u64, prop: usize) -> Value {
        let rec = &self.vertex_records[label as usize][offset as usize];
        for entry in rec.iter() {
            if entry.key == prop as u64 {
                return entry.value.clone();
            }
        }
        Value::Null
    }

    /// Read an edge property by following the edge's record pointer and
    /// scanning its entries.
    pub fn read_edge_prop(&self, label: LabelId, edge_id: u64, prop: usize) -> Value {
        match &self.edge_records[label as usize][edge_id as usize] {
            Some(rec) => {
                for entry in rec.iter() {
                    if entry.key == prop as u64 {
                        return entry.value.clone();
                    }
                }
                Value::Null
            }
            None => Value::Null,
        }
    }

    pub fn lookup_pk(&self, label: LabelId, key: i64) -> Option<u64> {
        self.pk[label as usize].as_ref()?.get(&key).copied()
    }

    /// Memory of the four Table 2 components (GF-RV column).
    pub fn memory_breakdown(&self) -> crate::columnar_graph::MemoryBreakdown {
        let vertex_props = self
            .vertex_records
            .iter()
            .map(|recs| {
                recs.capacity() * std::mem::size_of::<RowRecord>()
                    + recs.iter().map(record_bytes).sum::<usize>()
            })
            .sum();
        let edge_props = self
            .edge_records
            .iter()
            .map(|recs| {
                // The pointer-per-edge slots plus the records themselves.
                recs.capacity() * std::mem::size_of::<Option<RowRecord>>()
                    + recs.iter().flatten().map(record_bytes).sum::<usize>()
            })
            .sum();
        let fwd_adj = self.fwd.iter().map(RowCsr::memory_bytes).sum();
        let bwd_adj = self.bwd.iter().map(RowCsr::memory_bytes).sum();
        // The row store is always fully resident: no pageable bytes, no pool.
        crate::columnar_graph::MemoryBreakdown {
            vertex_props,
            edge_props,
            fwd_adj,
            bwd_adj,
            resident: vertex_props + edge_props + fwd_adj + bwd_adj,
            pageable: 0,
            buffer_pool: 0,
        }
    }
}

impl MemoryUsage for RowGraph {
    fn memory_bytes(&self) -> usize {
        self.memory_breakdown().total()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::columnar_graph::ColumnarGraph;
    use crate::config::StorageConfig;

    #[test]
    fn row_graph_roundtrips_example() {
        let raw = RawGraph::example();
        let g = RowGraph::build(&raw).unwrap();
        assert_eq!(g.vertex_count(0), 4);
        assert_eq!(g.edge_count(0), 8);
        assert_eq!(g.read_vertex_prop(0, 1, 0), Value::String("bob".into()));
        assert_eq!(g.read_vertex_prop(0, 1, 1), Value::Int64(54));
        // Adjacency pairs carry global IDs.
        let follows = g.catalog().edge_label_id("FOLLOWS").unwrap();
        let (start, len) = g.adj(follows, Direction::Fwd).list(0);
        assert_eq!(len, 2);
        let mut nbrs: Vec<u64> = (start..start + len as u64)
            .map(|p| g.adj(follows, Direction::Fwd).pair_at(p).1)
            .collect();
        nbrs.sort_unstable();
        assert_eq!(nbrs, vec![1, 3]); // persons share label 0: base 0
    }

    #[test]
    fn edge_property_reads_via_record_pointer() {
        let raw = RawGraph::example();
        let g = RowGraph::build(&raw).unwrap();
        let follows = g.catalog().edge_label_id("FOLLOWS").unwrap();
        // Edge 0 in input order: (alice -> bob, since 2003).
        assert_eq!(g.read_edge_prop(follows, 0, 0), Value::Int64(2003));
        // Missing prop index is NULL.
        assert_eq!(g.read_edge_prop(follows, 0, 7), Value::Null);
    }

    #[test]
    fn global_id_scheme_roundtrips() {
        let raw = RawGraph::example();
        let g = RowGraph::build(&raw).unwrap();
        let org = g.catalog().vertex_label_id("ORG").unwrap();
        let gid = g.global_id(org, 1);
        assert_eq!(gid, 5); // 4 persons before orgs
        assert_eq!(g.offset_of_global(org, gid), 1);
    }

    #[test]
    fn row_store_is_bigger_than_columnar() {
        // The headline claim of Table 2, on the running example.
        let raw = RawGraph::example();
        let row = RowGraph::build(&raw).unwrap();
        let col = ColumnarGraph::build(&raw, StorageConfig::default()).unwrap();
        assert!(
            row.memory_bytes() > col.memory_bytes(),
            "row {} <= columnar {}",
            row.memory_bytes(),
            col.memory_bytes()
        );
    }
}

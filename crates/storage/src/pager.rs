//! The buffer pool: faults 64 KiB pages of the on-disk format into memory
//! on demand and evicts them with a clock (second-chance) policy.
//!
//! The pool implements [`PageStore`], the trait the columnar crate's
//! [`ArrayData`](gfcl_columnar::ArrayData) reads through, so a reopened
//! graph serves `get(i)` calls from whatever subset of its value arrays is
//! currently resident. Frames are `Arc<Vec<u8>>`: a page is *pinned*
//! exactly while someone outside the pool holds a clone of its `Arc`
//! (`strong_count > 1`), which makes pin/unpin a pure refcount affair — the
//! executor keeps its per-morsel pins alive in a scratch vector and drops
//! them when the morsel ends.
//!
//! Every fault verifies the page's FNV-1a checksum against the checksum
//! array loaded at open time. Structural problems are caught by
//! [`open`](crate::ColumnarGraph::open) and surface as
//! [`Error::Storage`](gfcl_common::Error); a checksum mismatch *after* a
//! successful open means the file changed underneath us, and panics.

use std::collections::HashMap;
use std::fs::File;
use std::os::unix::fs::FileExt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use gfcl_columnar::{PageStore, PAGE_SIZE};
use gfcl_common::fnv1a_64;

/// Default pool capacity when neither [`crate::StorageConfig`] nor the
/// `GFCL_BUFFER_MB` environment variable says otherwise: 64 MiB of pages.
pub const DEFAULT_POOL_PAGES: usize = 64 * 1024 * 1024 / PAGE_SIZE;

/// Counters exposed for tests, benches and the memory breakdown.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Pages read from disk (checksum-verified).
    pub faults: u64,
    /// Pins served from a resident frame.
    pub hits: u64,
    /// Frames reclaimed by the clock hand.
    pub evictions: u64,
    /// Pages whose read was avoided entirely (zone-map pruning).
    pub pages_skipped: u64,
}

struct Frame {
    data: Arc<Vec<u8>>,
    /// Second-chance bit: set on every hit, cleared as the clock hand
    /// passes. A frame is evicted only when unreferenced *and* unpinned.
    referenced: bool,
}

struct PoolInner {
    frames: HashMap<u64, Frame>,
    /// Ring of resident page numbers the clock hand walks.
    ring: Vec<u64>,
    hand: usize,
}

/// A clock-eviction buffer pool over one storage file.
pub struct BufferPool {
    file: File,
    capacity: usize,
    /// Page number of the first checksummed data page; `checksums[i]`
    /// covers page `first_data_page + i`.
    first_data_page: u64,
    checksums: Vec<u64>,
    inner: Mutex<PoolInner>,
    faults: AtomicU64,
    hits: AtomicU64,
    evictions: AtomicU64,
    pages_skipped: AtomicU64,
}

impl std::fmt::Debug for BufferPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BufferPool")
            .field("capacity", &self.capacity)
            .field("occupancy", &self.occupancy())
            .field("stats", &self.stats())
            .finish()
    }
}

impl BufferPool {
    /// A pool of at most `capacity` resident pages over `file`.
    pub fn new(file: File, capacity: usize, first_data_page: u64, checksums: Vec<u64>) -> Self {
        let capacity = capacity.max(1);
        BufferPool {
            file,
            capacity,
            first_data_page,
            checksums,
            inner: Mutex::new(PoolInner { frames: HashMap::new(), ring: Vec::new(), hand: 0 }),
            faults: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            pages_skipped: AtomicU64::new(0),
        }
    }

    /// Pool capacity from the `GFCL_BUFFER_MB` environment variable, or
    /// `default_pages` when unset/unparsable. The floor is one page.
    pub fn capacity_from_env(default_pages: usize) -> usize {
        match std::env::var("GFCL_BUFFER_MB").ok().and_then(|s| s.parse::<usize>().ok()) {
            Some(mb) => (mb * 1024 * 1024 / PAGE_SIZE).max(1),
            None => default_pages.max(1),
        }
    }

    /// Maximum number of resident pages.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of pages currently resident.
    pub fn occupancy(&self) -> usize {
        // lint: allow(a poisoned pool lock means another worker panicked
        // mid-fault; the pool is unrecoverable and re-panicking is policy)
        self.inner.lock().unwrap().frames.len()
    }

    /// Heap bytes held by resident frames right now.
    pub fn occupancy_bytes(&self) -> usize {
        self.occupancy() * PAGE_SIZE
    }

    /// Snapshot of the fault/hit/eviction/skip counters.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            faults: self.faults.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            pages_skipped: self.pages_skipped.load(Ordering::Relaxed),
        }
    }

    /// Read and checksum-verify one page from disk.
    fn fault(&self, page_no: u64) -> Vec<u8> {
        let mut buf = vec![0u8; PAGE_SIZE];
        // Post-open I/O failure panics by policy — see the module doc;
        // open-time validation returns Err instead.
        self.file.read_exact_at(&mut buf, page_no * PAGE_SIZE as u64).unwrap_or_else(|e| {
            panic!("storage read failed at page {page_no}: {e}") // lint: allow(post-open policy)
        });
        let idx = page_no.checked_sub(self.first_data_page).map(|i| i as usize);
        match idx.and_then(|i| self.checksums.get(i)) {
            Some(&expected) => {
                let got = fnv1a_64(&buf);
                // lint: allow(checksum-mismatch panic after a successful
                // open is the documented corruption policy; the message
                // names the page and both checksums)
                assert!(
                    got == expected,
                    "storage file corrupted: page {page_no} checksum {got:#018x} != {expected:#018x}"
                );
            }
            // lint: allow(a fault outside the checksummed region means a
            // corrupt SegRef survived open-time validation; same policy)
            None => panic!("page {page_no} outside the checksummed data region"),
        }
        buf
    }

    /// Evict until at most `capacity` frames remain, skipping pinned frames
    /// (someone holds the `Arc`) and giving referenced frames one second
    /// chance. Gives up if every frame is pinned — the pool then runs
    /// over capacity rather than deadlocking.
    fn evict_to_capacity(&self, inner: &mut PoolInner) {
        let mut sweeps = 0usize;
        while inner.frames.len() > self.capacity && !inner.ring.is_empty() {
            if sweeps > 2 * inner.ring.len() {
                return; // everything pinned or referenced twice over
            }
            sweeps += 1;
            if inner.hand >= inner.ring.len() {
                inner.hand = 0;
            }
            let page_no = inner.ring[inner.hand];
            // lint: allow(ring and frames are mutated together under the
            // pool lock; divergence is a pool bug, not a data condition)
            let frame = inner.frames.get_mut(&page_no).expect("ring/frames out of sync");
            if Arc::strong_count(&frame.data) > 1 {
                inner.hand += 1; // pinned
            } else if frame.referenced {
                frame.referenced = false;
                inner.hand += 1; // second chance
            } else {
                inner.frames.remove(&page_no);
                inner.ring.swap_remove(inner.hand);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

impl PageStore for BufferPool {
    fn pin(&self, page_no: u64) -> Arc<Vec<u8>> {
        // lint: allow(a poisoned pool lock means another worker panicked
        // mid-fault; the pool is unrecoverable and re-panicking is policy)
        let mut inner = self.inner.lock().unwrap();
        if let Some(frame) = inner.frames.get_mut(&page_no) {
            frame.referenced = true;
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(&frame.data);
        }
        // Fault while holding the lock: simple, and correct for the
        // morsel-parallel access pattern (distinct morsels touch distinct
        // pages; the rare shared boundary page is read once).
        let data = Arc::new(self.fault(page_no));
        self.faults.fetch_add(1, Ordering::Relaxed);
        inner.frames.insert(page_no, Frame { data: Arc::clone(&data), referenced: true });
        inner.ring.push(page_no);
        self.evict_to_capacity(&mut inner);
        data
    }

    fn note_skipped(&self, n_pages: u64) {
        self.pages_skipped.fetch_add(n_pages, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write as _;
    use std::path::PathBuf;

    /// A scratch file of `n` distinct data pages starting at page 0;
    /// page `i` is filled with byte `i as u8`. Returns (pool-ready file,
    /// checksums, path for cleanup).
    fn page_file(name: &str, n: usize) -> (File, Vec<u64>, PathBuf) {
        let path =
            std::env::temp_dir().join(format!("gfcl_pager_{}_{name}.bin", std::process::id()));
        let mut f = File::create(&path).unwrap();
        let mut checksums = Vec::new();
        for i in 0..n {
            let page = vec![i as u8; PAGE_SIZE];
            checksums.push(fnv1a_64(&page));
            f.write_all(&page).unwrap();
        }
        drop(f);
        (File::open(&path).unwrap(), checksums, path)
    }

    #[test]
    fn faults_then_hits() {
        let (f, sums, path) = page_file("hits", 3);
        let pool = BufferPool::new(f, 8, 0, sums);
        let a = pool.pin(1);
        assert_eq!(a[0], 1);
        drop(a);
        let b = pool.pin(1);
        assert_eq!(b[100], 1);
        let s = pool.stats();
        assert_eq!((s.faults, s.hits), (1, 1));
        assert_eq!(pool.occupancy(), 1);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn clock_evicts_down_to_capacity() {
        let (f, sums, path) = page_file("evict", 6);
        let pool = BufferPool::new(f, 2, 0, sums);
        for p in 0..6 {
            let g = pool.pin(p);
            assert_eq!(g[7], p as u8);
        }
        assert!(pool.occupancy() <= 2, "occupancy {} > capacity 2", pool.occupancy());
        assert_eq!(pool.stats().faults, 6);
        assert!(pool.stats().evictions >= 4);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn pinned_pages_survive_eviction_pressure() {
        let (f, sums, path) = page_file("pin", 6);
        let pool = BufferPool::new(f, 2, 0, sums);
        let held = pool.pin(0); // keep the Arc → pinned
        for p in 1..6 {
            pool.pin(p);
        }
        // Page 0 must still be resident and intact despite the pressure.
        assert_eq!(held[123], 0);
        let again = pool.pin(0);
        assert_eq!(again[55], 0);
        let s = pool.stats();
        assert_eq!(s.faults, 6, "page 0 was never re-faulted");
        assert!(s.hits >= 1);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn all_pinned_pool_runs_over_capacity_instead_of_hanging() {
        let (f, sums, path) = page_file("over", 4);
        let pool = BufferPool::new(f, 1, 0, sums);
        let guards: Vec<_> = (0..4).map(|p| pool.pin(p)).collect();
        assert_eq!(pool.occupancy(), 4); // over capacity, but alive
        for (p, g) in guards.iter().enumerate() {
            assert_eq!(g[9], p as u8);
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    #[should_panic(expected = "checksum")]
    fn corrupted_page_panics_at_fault() {
        let (f, mut sums, path) = page_file("corrupt", 2);
        sums[1] ^= 0xdead; // claim a different checksum than what's on disk
        let pool = BufferPool::new(f, 4, 0, sums);
        pool.pin(0); // fine
        std::fs::remove_file(&path).ok();
        pool.pin(1); // mismatch
    }

    #[test]
    fn skip_accounting_accumulates() {
        let (f, sums, path) = page_file("skip", 1);
        let pool = BufferPool::new(f, 4, 0, sums);
        pool.note_skipped(3);
        pool.note_skipped(4);
        assert_eq!(pool.stats().pages_skipped, 7);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn env_capacity_floor_is_one_page() {
        // Not setting the env var here (tests run in parallel); just check
        // the default path and the floor.
        assert_eq!(BufferPool::capacity_from_env(0), 1);
        assert_eq!(BufferPool::capacity_from_env(17), 17);
    }
}

//! The buffer pool: faults 64 KiB pages of the on-disk format into memory
//! on demand and evicts them with a clock (second-chance) policy.
//!
//! The pool implements [`PageStore`], the trait the columnar crate's
//! [`ArrayData`](gfcl_columnar::ArrayData) reads through, so a reopened
//! graph serves `get(i)` calls from whatever subset of its value arrays is
//! currently resident. Frames are `Arc<Vec<u8>>`: a page is *pinned*
//! exactly while someone outside the pool holds a clone of its `Arc`
//! (`strong_count > 1`), which makes pin/unpin a pure refcount affair — the
//! executor keeps its per-morsel pins alive in a scratch vector and drops
//! them when the morsel ends.
//!
//! Every fault verifies the page's FNV-1a checksum against the checksum
//! array loaded at open time. Structural problems are caught by
//! [`open`](crate::ColumnarGraph::open) and surface as
//! [`Error::Storage`](gfcl_common::Error). Post-open faults are **error
//! propagation, not panics**: a failed read or checksum mismatch is
//! retried up to [`MAX_READ_ATTEMPTS`] times with bounded, deterministic
//! jittered backoff (transient device errors and torn reads heal here),
//! and a fault that survives the retries surfaces as
//! [`Error::Storage`](gfcl_common::Error) through [`PageStore::try_pin`] —
//! the infallible [`PageStore::pin`] wrapper then cancels exactly the
//! owning query via its installed fault domain
//! ([`gfcl_common::govern`]). Failed pages are never cached, so queries on
//! healthy pages keep running.
//!
//! Reads go through the [`PageFile`] seam rather than [`File`] directly,
//! which is what lets the chaos tier ([`crate::chaos`]) inject read errors
//! and bit flips *below* checksum verification — injected corruption is
//! caught exactly the way real corruption would be.

use std::collections::HashMap;
use std::fs::File;
use std::os::unix::fs::FileExt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use gfcl_columnar::{PageStore, PAGE_SIZE};
use gfcl_common::{fnv1a_64, Error, Result};

/// How often one page read is attempted before the fault propagates to
/// the owning query: the first read plus two retries.
pub const MAX_READ_ATTEMPTS: u32 = 3;

/// The raw page-granular read interface under the pool. Production code
/// uses [`File`]; the chaos tier wraps it with a fault injector.
pub trait PageFile: Send + Sync {
    /// Read exactly `buf.len()` bytes at byte `offset`.
    fn read_page_at(&self, buf: &mut [u8], offset: u64) -> std::io::Result<()>;
}

impl PageFile for File {
    fn read_page_at(&self, buf: &mut [u8], offset: u64) -> std::io::Result<()> {
        self.read_exact_at(buf, offset)
    }
}

/// Default pool capacity when neither [`crate::StorageConfig`] nor the
/// `GFCL_BUFFER_MB` environment variable says otherwise: 64 MiB of pages.
pub const DEFAULT_POOL_PAGES: usize = 64 * 1024 * 1024 / PAGE_SIZE;

/// Counters exposed for tests, benches and the memory breakdown.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Pages read from disk (checksum-verified).
    pub faults: u64,
    /// Pins served from a resident frame.
    pub hits: u64,
    /// Frames reclaimed by the clock hand.
    pub evictions: u64,
    /// Pages whose read was avoided entirely (zone-map pruning).
    pub pages_skipped: u64,
}

struct Frame {
    data: Arc<Vec<u8>>,
    /// Second-chance bit: set on every hit, cleared as the clock hand
    /// passes. A frame is evicted only when unreferenced *and* unpinned.
    referenced: bool,
}

struct PoolInner {
    frames: HashMap<u64, Frame>,
    /// Ring of resident page numbers the clock hand walks.
    ring: Vec<u64>,
    hand: usize,
}

/// A clock-eviction buffer pool over one storage file.
pub struct BufferPool {
    file: Box<dyn PageFile>,
    capacity: usize,
    /// Page number of the first checksummed data page; `checksums[i]`
    /// covers page `first_data_page + i`.
    first_data_page: u64,
    checksums: Vec<u64>,
    inner: Mutex<PoolInner>,
    faults: AtomicU64,
    hits: AtomicU64,
    evictions: AtomicU64,
    pages_skipped: AtomicU64,
}

impl std::fmt::Debug for BufferPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BufferPool")
            .field("capacity", &self.capacity)
            .field("occupancy", &self.occupancy())
            .field("stats", &self.stats())
            .finish()
    }
}

impl BufferPool {
    /// A pool of at most `capacity` resident pages over `file`.
    pub fn new(file: File, capacity: usize, first_data_page: u64, checksums: Vec<u64>) -> Self {
        BufferPool::with_page_file(Box::new(file), capacity, first_data_page, checksums)
    }

    /// [`BufferPool::new`] over any [`PageFile`] — the seam the chaos
    /// tier's fault injector plugs into.
    pub fn with_page_file(
        file: Box<dyn PageFile>,
        capacity: usize,
        first_data_page: u64,
        checksums: Vec<u64>,
    ) -> Self {
        let capacity = capacity.max(1);
        BufferPool {
            file,
            capacity,
            first_data_page,
            checksums,
            inner: Mutex::new(PoolInner { frames: HashMap::new(), ring: Vec::new(), hand: 0 }),
            faults: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            pages_skipped: AtomicU64::new(0),
        }
    }

    /// Pool capacity from the `GFCL_BUFFER_MB` environment variable, or
    /// `default_pages` when the variable is unset or empty. The floor is
    /// one page. A set-but-unparsable value is an error naming the
    /// variable — a typo in the sizing knob must not silently run the
    /// default geometry.
    pub fn capacity_from_env(default_pages: usize) -> Result<usize> {
        match std::env::var("GFCL_BUFFER_MB") {
            Err(_) => Ok(default_pages.max(1)),
            Ok(s) if s.trim().is_empty() => Ok(default_pages.max(1)),
            Ok(s) => match s.trim().parse::<usize>() {
                Ok(mb) => Ok((mb * 1024 * 1024 / PAGE_SIZE).max(1)),
                Err(_) => Err(Error::Invalid(format!(
                    "GFCL_BUFFER_MB must be a non-negative integer number of MiB, got {s:?}"
                ))),
            },
        }
    }

    /// Maximum number of resident pages.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of pages currently resident.
    pub fn occupancy(&self) -> usize {
        // lint: allow(a poisoned pool lock means another worker panicked
        // mid-fault; the pool is unrecoverable and re-panicking is policy)
        self.inner.lock().unwrap().frames.len()
    }

    /// Heap bytes held by resident frames right now.
    pub fn occupancy_bytes(&self) -> usize {
        self.occupancy() * PAGE_SIZE
    }

    /// Snapshot of the fault/hit/eviction/skip counters.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            faults: self.faults.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            pages_skipped: self.pages_skipped.load(Ordering::Relaxed),
        }
    }

    /// Deterministic jittered backoff before retry `attempt` (1-based):
    /// an exponential base of 200 µs · 2^(attempt−1) plus a jitter in
    /// `[0, base)` hashed from the page number and attempt, so concurrent
    /// workers retrying neighbouring pages don't re-hit the device in
    /// lockstep. Worst-case total sleep per page is under 1.2 ms — cheap
    /// enough that healthy retries are invisible and failing ones don't
    /// stall the query noticeably.
    fn retry_backoff(page_no: u64, attempt: u32) -> Duration {
        let base_us = 200u64 << (attempt - 1);
        let mut key = [0u8; 12];
        key[..8].copy_from_slice(&page_no.to_le_bytes());
        key[8..].copy_from_slice(&attempt.to_le_bytes());
        let jitter_us = fnv1a_64(&key) % base_us;
        Duration::from_micros(base_us + jitter_us)
    }

    /// One read + checksum-verify attempt. The error string names the
    /// page and the exact mismatch so retries that keep failing produce
    /// an actionable message.
    fn read_verified(&self, page_no: u64, expected: u64) -> std::result::Result<Vec<u8>, String> {
        let mut buf = vec![0u8; PAGE_SIZE];
        self.file
            .read_page_at(&mut buf, page_no * PAGE_SIZE as u64)
            .map_err(|e| format!("read failed: {e}"))?;
        let got = fnv1a_64(&buf);
        if got != expected {
            return Err(format!("checksum {got:#018x} != {expected:#018x}"));
        }
        Ok(buf)
    }

    /// Read and checksum-verify one page from disk, retrying transient
    /// failures with bounded jittered backoff. A fault that survives
    /// [`MAX_READ_ATTEMPTS`] attempts — or lands outside the checksummed
    /// data region, which no retry can fix — is an [`Error::Storage`]
    /// scoped to the query that asked for the page.
    fn fault(&self, page_no: u64) -> Result<Vec<u8>> {
        let idx = page_no.checked_sub(self.first_data_page).map(|i| i as usize);
        let Some(&expected) = idx.and_then(|i| self.checksums.get(i)) else {
            // Structural, not transient: a corrupt SegRef survived
            // open-time validation. Fail immediately, no retries.
            return Err(Error::Storage(format!(
                "page {page_no} outside the checksummed data region"
            )));
        };
        let mut last = String::new();
        for attempt in 0..MAX_READ_ATTEMPTS {
            if attempt > 0 {
                std::thread::sleep(Self::retry_backoff(page_no, attempt));
            }
            match self.read_verified(page_no, expected) {
                Ok(buf) => return Ok(buf),
                Err(e) => last = e,
            }
        }
        Err(Error::Storage(format!(
            "page {page_no} unreadable after {MAX_READ_ATTEMPTS} attempts: {last}"
        )))
    }

    /// Evict until at most `capacity` frames remain, skipping pinned frames
    /// (someone holds the `Arc`) and giving referenced frames one second
    /// chance. Gives up if every frame is pinned — the pool then runs
    /// over capacity rather than deadlocking.
    fn evict_to_capacity(&self, inner: &mut PoolInner) {
        // `stuck` counts consecutive non-evicting steps and resets on
        // every eviction, so reclaiming N frames is never cut short by a
        // shrinking budget — only a ring where two full passes (clear
        // second chances, then evict) make no progress is truly stuck.
        let mut stuck = 0usize;
        while inner.frames.len() > self.capacity && !inner.ring.is_empty() {
            if stuck > 2 * inner.ring.len() {
                return; // everything pinned or referenced twice over
            }
            if inner.hand >= inner.ring.len() {
                inner.hand = 0;
            }
            let page_no = inner.ring[inner.hand];
            // lint: allow(ring and frames are mutated together under the
            // pool lock; divergence is a pool bug, not a data condition)
            let frame = inner.frames.get_mut(&page_no).expect("ring/frames out of sync");
            if Arc::strong_count(&frame.data) > 1 {
                inner.hand += 1; // pinned
                stuck += 1;
            } else if frame.referenced {
                frame.referenced = false;
                inner.hand += 1; // second chance
                stuck += 1;
            } else {
                inner.frames.remove(&page_no);
                inner.ring.swap_remove(inner.hand);
                self.evictions.fetch_add(1, Ordering::Relaxed);
                stuck = 0;
            }
        }
    }
}

impl PageStore for BufferPool {
    fn try_pin(&self, page_no: u64) -> Result<Arc<Vec<u8>>> {
        {
            // lint: allow(a poisoned pool lock means another worker
            // panicked mid-insert; the pool is unrecoverable and
            // re-panicking is policy)
            let mut inner = self.inner.lock().unwrap();
            if let Some(frame) = inner.frames.get_mut(&page_no) {
                frame.referenced = true;
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Ok(Arc::clone(&frame.data));
            }
        }
        // Fault *outside* the lock: the retry/backoff path may sleep, and
        // holding the pool lock through it would stall every query on
        // healthy pages behind one bad page. The cost is that two workers
        // racing on the same boundary page may both read it; the loser's
        // copy is dropped below.
        let data = Arc::new(self.fault(page_no)?);
        self.faults.fetch_add(1, Ordering::Relaxed);
        // lint: allow(same poisoned-lock policy as above)
        let mut inner = self.inner.lock().unwrap();
        if let Some(frame) = inner.frames.get_mut(&page_no) {
            // Another worker faulted it concurrently; keep its frame so
            // both pins share one copy and eviction sees one refcount.
            frame.referenced = true;
            return Ok(Arc::clone(&frame.data));
        }
        inner.frames.insert(page_no, Frame { data: Arc::clone(&data), referenced: true });
        inner.ring.push(page_no);
        self.evict_to_capacity(&mut inner);
        Ok(data)
        // Note: a failed fault inserted nothing — a poisoned page is
        // re-attempted (and may heal) on the next query that needs it.
    }

    fn note_skipped(&self, n_pages: u64) {
        self.pages_skipped.fetch_add(n_pages, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write as _;
    use std::path::PathBuf;

    /// A scratch file of `n` distinct data pages starting at page 0;
    /// page `i` is filled with byte `i as u8`. Returns (pool-ready file,
    /// checksums, path for cleanup).
    fn page_file(name: &str, n: usize) -> (File, Vec<u64>, PathBuf) {
        let path =
            std::env::temp_dir().join(format!("gfcl_pager_{}_{name}.bin", std::process::id()));
        let mut f = File::create(&path).unwrap();
        let mut checksums = Vec::new();
        for i in 0..n {
            let page = vec![i as u8; PAGE_SIZE];
            checksums.push(fnv1a_64(&page));
            f.write_all(&page).unwrap();
        }
        drop(f);
        (File::open(&path).unwrap(), checksums, path)
    }

    #[test]
    fn faults_then_hits() {
        let (f, sums, path) = page_file("hits", 3);
        let pool = BufferPool::new(f, 8, 0, sums);
        let a = pool.pin(1);
        assert_eq!(a[0], 1);
        drop(a);
        let b = pool.pin(1);
        assert_eq!(b[100], 1);
        let s = pool.stats();
        assert_eq!((s.faults, s.hits), (1, 1));
        assert_eq!(pool.occupancy(), 1);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn clock_evicts_down_to_capacity() {
        let (f, sums, path) = page_file("evict", 6);
        let pool = BufferPool::new(f, 2, 0, sums);
        for p in 0..6 {
            let g = pool.pin(p);
            assert_eq!(g[7], p as u8);
        }
        assert!(pool.occupancy() <= 2, "occupancy {} > capacity 2", pool.occupancy());
        assert_eq!(pool.stats().faults, 6);
        assert!(pool.stats().evictions >= 4);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn pinned_pages_survive_eviction_pressure() {
        let (f, sums, path) = page_file("pin", 6);
        let pool = BufferPool::new(f, 2, 0, sums);
        let held = pool.pin(0); // keep the Arc → pinned
        for p in 1..6 {
            pool.pin(p);
        }
        // Page 0 must still be resident and intact despite the pressure.
        assert_eq!(held[123], 0);
        let again = pool.pin(0);
        assert_eq!(again[55], 0);
        let s = pool.stats();
        assert_eq!(s.faults, 6, "page 0 was never re-faulted");
        assert!(s.hits >= 1);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn all_pinned_pool_runs_over_capacity_instead_of_hanging() {
        let (f, sums, path) = page_file("over", 4);
        let pool = BufferPool::new(f, 1, 0, sums);
        let guards: Vec<_> = (0..4).map(|p| pool.pin(p)).collect();
        assert_eq!(pool.occupancy(), 4); // over capacity, but alive
        for (p, g) in guards.iter().enumerate() {
            assert_eq!(g[9], p as u8);
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn corrupted_page_is_a_storage_error_not_a_panic() {
        let (f, mut sums, path) = page_file("corrupt", 2);
        sums[1] ^= 0xdead; // claim a different checksum than what's on disk
        let pool = BufferPool::new(f, 4, 0, sums);
        pool.try_pin(0).unwrap(); // fine
        let err = pool.try_pin(1).unwrap_err();
        assert!(matches!(err, Error::Storage(_)), "{err:?}");
        assert!(err.to_string().contains("checksum"), "{err}");
        assert!(err.to_string().contains("3 attempts"), "retries exhausted: {err}");
        // The poisoned page was not cached; healthy pages still serve.
        assert_eq!(pool.occupancy(), 1);
        assert_eq!(pool.try_pin(0).unwrap()[3], 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn out_of_region_page_is_a_storage_error() {
        let (f, sums, path) = page_file("region", 2);
        let pool = BufferPool::new(f, 4, 1, sums); // data region starts at page 1
        let err = pool.try_pin(0).unwrap_err();
        assert!(err.to_string().contains("outside the checksummed data region"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn infallible_pin_reports_into_the_installed_fault_domain() {
        use gfcl_common::govern::{fault_scope, CancelReason, CancelToken};
        let (f, mut sums, path) = page_file("domain", 2);
        sums[1] ^= 1;
        let pool = BufferPool::new(f, 4, 0, sums);
        let token = Arc::new(CancelToken::new());
        let page = {
            let _scope = fault_scope(&token);
            pool.pin(1)
        };
        assert_eq!(page.len(), PAGE_SIZE, "placeholder page returned");
        assert!(page.iter().all(|&b| b == 0));
        assert_eq!(token.reason(), Some(CancelReason::Io));
        assert!(token.io_detail().unwrap().contains("page 1"), "{:?}", token.io_detail());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn backoff_is_bounded_and_deterministic() {
        for attempt in 1..MAX_READ_ATTEMPTS {
            let d = BufferPool::retry_backoff(42, attempt);
            assert_eq!(d, BufferPool::retry_backoff(42, attempt), "deterministic");
            let base = 200u64 << (attempt - 1);
            assert!(d >= Duration::from_micros(base));
            assert!(d < Duration::from_micros(2 * base));
        }
        // Jitter spreads distinct pages within one attempt.
        assert_ne!(BufferPool::retry_backoff(1, 1), BufferPool::retry_backoff(2, 1));
    }

    #[test]
    fn skip_accounting_accumulates() {
        let (f, sums, path) = page_file("skip", 1);
        let pool = BufferPool::new(f, 4, 0, sums);
        pool.note_skipped(3);
        pool.note_skipped(4);
        assert_eq!(pool.stats().pages_skipped, 7);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn env_capacity_floor_is_one_page() {
        // Not setting the env var here (tests run in parallel); just check
        // the default path and the floor.
        assert_eq!(BufferPool::capacity_from_env(0).unwrap(), 1);
        assert_eq!(BufferPool::capacity_from_env(17).unwrap(), 17);
    }

    #[test]
    fn eviction_resumes_after_pins_drop() {
        let (f, sums, path) = page_file("pinrelease", 6);
        let pool = BufferPool::new(f, 2, 0, sums);
        // Pin everything: the pool must run over capacity, evicting nothing.
        let guards: Vec<_> = (0..5).map(|p| pool.pin(p)).collect();
        assert_eq!(pool.occupancy(), 5);
        assert_eq!(pool.stats().evictions, 0, "pinned frames are unevictable");
        // Release the pins; the next fault must reclaim down to capacity.
        drop(guards);
        pool.pin(5);
        assert!(
            pool.occupancy() <= 2,
            "eviction resumed after pins dropped, occupancy {}",
            pool.occupancy()
        );
        assert!(pool.stats().evictions >= 4);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn stats_count_every_event_exactly() {
        let (f, sums, path) = page_file("stats", 4);
        let pool = BufferPool::new(f, 2, 0, sums);
        pool.pin(0); // fault
        pool.pin(0); // hit
        pool.pin(1); // fault
        pool.pin(0); // hit
        pool.pin(2); // fault + one eviction (capacity 2)
        pool.note_skipped(5);
        let s = pool.stats();
        assert_eq!(s.faults, 3);
        assert_eq!(s.hits, 2);
        assert_eq!(s.evictions, 1);
        assert_eq!(s.pages_skipped, 5);
        assert_eq!(pool.occupancy(), 2);
        assert_eq!(pool.occupancy_bytes(), 2 * PAGE_SIZE);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn transient_read_errors_heal_within_the_retry_budget() {
        /// Fails the first `fail_first` reads of every page, then serves
        /// the real bytes — a deterministic stand-in for a transient
        /// device error.
        struct Flaky {
            inner: File,
            fail_first: u32,
            seen: Mutex<HashMap<u64, u32>>,
        }
        impl PageFile for Flaky {
            fn read_page_at(&self, buf: &mut [u8], offset: u64) -> std::io::Result<()> {
                // lint: allow(test-support; poisoned lock re-panic is fine)
                let mut seen = self.seen.lock().unwrap();
                let n = seen.entry(offset).or_insert(0);
                if *n < self.fail_first {
                    *n += 1;
                    return Err(std::io::Error::other("injected transient error"));
                }
                self.inner.read_page_at(buf, offset)
            }
        }

        let (f, sums, path) = page_file("flaky", 2);
        let flaky =
            Flaky { inner: f, fail_first: MAX_READ_ATTEMPTS - 1, seen: Mutex::new(HashMap::new()) };
        let pool = BufferPool::with_page_file(Box::new(flaky), 4, 0, sums);
        let page = pool.try_pin(1).unwrap();
        assert_eq!(page[10], 1, "healed read serves real bytes");
        assert_eq!(pool.stats().faults, 1);
        std::fs::remove_file(&path).ok();
    }
}

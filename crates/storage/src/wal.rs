//! Write-ahead log for the delta store: the durability half of ROADMAP #2.
//!
//! The log is a flat file of checksummed commit records appended by
//! [`WalWriter::append_commit`] and replayed by [`replay`] when a store
//! reopens. The format follows the same conventions as the paged graph
//! file (`format.rs`): little-endian [`gfcl_common::codec`] primitives,
//! FNV-1a checksums, magic + version headers, and `Error::Storage` — never
//! a panic — on anything malformed.
//!
//! ## Layout
//!
//! ```text
//! header:  "GWAL" | version u32 | baseline_id u64
//! record:  len u32 | fnv1a(payload) u64 | payload (len bytes)
//! payload: op-count u64 | ResolvedOp ...     (one record per commit)
//! ```
//!
//! `baseline_id` fingerprints the graph file the log's offsets refer to:
//! catalog bytes + per-label counts + the graph's per-build random nonce
//! ([`ColumnarGraph::build_nonce`]). The nonce is what makes the
//! fingerprint collision-free — a count-preserving delta (updates only,
//! or balanced insert+delete) merges into a baseline with identical
//! catalog and counts, and only the nonce tells the two apart. A log
//! replayed against the wrong baseline — e.g. after a merge rewrote the
//! graph but a stale WAL survived — is rejected instead of silently
//! mis-applying offsets.
//!
//! ## Crash semantics
//!
//! A commit is one `write_all` of a fully framed record followed by
//! `fdatasync`; the commit point is the moment the record's last byte is
//! durable. A *failed* append (short write, fsync error) is rolled back:
//! the file is truncated to the end of the last good record, so a torn
//! record can never sit in front of later commits and a transaction
//! reported failed can never resurrect on recovery; if even the rollback
//! fails the writer poisons itself and refuses further appends. On
//! reopen:
//!
//! * a record whose frame runs past EOF, or whose checksum fails **at the
//!   tail**, is a torn write from a crash mid-commit: it is truncated away
//!   and replay reports the log clean (the transaction never committed);
//! * a checksum failure **before** other valid data, or a checksummed
//!   record whose payload does not decode, is real corruption and fails
//!   the open with [`Error::Storage`].

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use gfcl_common::{fnv1a_64, Error, Reader, Result, Writer};

use crate::columnar_graph::ColumnarGraph;
use crate::delta::ResolvedOp;

const MAGIC: &[u8; 4] = b"GWAL";
const VERSION: u32 = 1;
const HEADER_LEN: usize = 4 + 4 + 8;
/// Frame prefix: `len u32 | checksum u64`.
const FRAME_LEN: usize = 4 + 8;

/// Fingerprint of the baseline a WAL's positional offsets refer to: the
/// graph's per-build random nonce, the catalog schema, and every label's
/// row/edge count. The nonce guarantees two distinct baselines never
/// share a fingerprint even when schema and counts agree.
pub fn baseline_id(graph: &ColumnarGraph) -> u64 {
    let mut w = Writer::new();
    w.u64(graph.build_nonce());
    graph.catalog().encode(&mut w);
    for l in 0..graph.catalog().vertex_label_count() {
        w.usize(graph.vertex_count(l as gfcl_common::LabelId));
    }
    for l in 0..graph.catalog().edge_label_count() {
        w.usize(graph.edge_count(l as gfcl_common::LabelId));
    }
    fnv1a_64(&w.into_bytes())
}

/// The result of replaying a log file.
#[derive(Debug)]
pub struct Replay {
    /// Committed op batches, oldest first — one per durable commit record.
    pub commits: Vec<Vec<ResolvedOp>>,
    /// Bytes truncated off the tail (a crash mid-commit left a torn
    /// record). Zero for a cleanly closed log.
    pub torn_bytes: u64,
}

/// Appends commit records to a WAL file. One live writer per store; the
/// store serializes writers above this layer.
#[derive(Debug)]
pub struct WalWriter {
    file: File,
    path: PathBuf,
    /// End of the durable, well-formed log — the rollback point for a
    /// failed append.
    end: u64,
    /// A failed append could not be rolled back: the file may end in torn
    /// bytes, so further appends are refused (a valid record after garbage
    /// would turn the tear into unrecoverable mid-file corruption).
    poisoned: bool,
    /// Chaos hook: write only this many bytes of the next record, then
    /// report an injected I/O error (set via
    /// [`WalWriter::inject_append_failure`]).
    fail_append_after: Option<usize>,
}

impl WalWriter {
    /// Create (or truncate) the log at `path` for a baseline, writing and
    /// syncing the header. (The *directory entry* is the caller's to
    /// sync — the store fsyncs its directory after file-set changes.)
    pub fn create(path: &Path, baseline: u64) -> Result<WalWriter> {
        let mut file = File::create(path).map_err(wal_io)?;
        let mut w = Writer::new();
        w.bytes(MAGIC);
        w.u32(VERSION);
        w.u64(baseline);
        file.write_all(&w.into_bytes()).map_err(wal_io)?;
        file.sync_data().map_err(wal_io)?;
        Ok(WalWriter {
            file,
            path: path.to_path_buf(),
            end: HEADER_LEN as u64,
            poisoned: false,
            fail_append_after: None,
        })
    }

    /// Open an existing log for appending, after [`replay`] has validated
    /// it and truncated any torn tail.
    pub fn open_for_append(path: &Path) -> Result<WalWriter> {
        let file = OpenOptions::new().append(true).open(path).map_err(wal_io)?;
        let end = file.metadata().map_err(wal_io)?.len();
        Ok(WalWriter {
            file,
            path: path.to_path_buf(),
            end,
            poisoned: false,
            fail_append_after: None,
        })
    }

    /// Durably append one commit record. When this returns `Ok`, the
    /// transaction is recoverable; on `Err` the record is rolled back off
    /// the file (truncated to the previous end), so it neither corrupts
    /// later commits nor resurrects on recovery — a crash or error at any
    /// point replays as if the commit never happened.
    pub fn append_commit(&mut self, ops: &[ResolvedOp]) -> Result<()> {
        if self.poisoned {
            return Err(Error::Storage(
                "WAL writer is poisoned by an earlier failed append; \
                 no further commits are accepted until the store reopens"
                    .into(),
            ));
        }
        let mut p = Writer::new();
        p.usize(ops.len());
        for op in ops {
            op.encode(&mut p);
        }
        let payload = p.into_bytes();
        let len = u32::try_from(payload.len())
            .map_err(|_| Error::Storage("commit record exceeds u32 length".into()))?;
        let mut w = Writer::new();
        w.u32(len);
        w.u64(fnv1a_64(&payload));
        w.bytes(&payload);
        let record = w.into_bytes();
        match self.write_and_sync(&record) {
            Ok(()) => {
                self.end += record.len() as u64;
                Ok(())
            }
            Err(e) => {
                self.rollback();
                Err(wal_io(e))
            }
        }
    }

    /// Fault-injection hook for the crash/chaos tiers: the next append
    /// writes only `cut` bytes of its record, then fails as if the disk
    /// errored mid-write (an fsync-failure stand-in). One-shot. Not part
    /// of the public API surface.
    #[doc(hidden)]
    pub fn inject_append_failure(&mut self, cut: usize) {
        self.fail_append_after = Some(cut);
    }

    fn write_and_sync(&mut self, record: &[u8]) -> std::io::Result<()> {
        if let Some(cut) = self.fail_append_after.take() {
            let cut = cut.min(record.len());
            self.file.write_all(&record[..cut])?;
            return Err(std::io::Error::other("injected append failure"));
        }
        self.file.write_all(record)?;
        self.file.sync_data()
    }

    /// After a failed append the file may hold a torn record — or, after
    /// an fsync error, a *complete* record of unknown durability for a
    /// transaction the caller was told failed. Truncate back to the last
    /// good end (and re-seek, for non-append handles) so neither can ever
    /// be observed; if the rollback itself fails, poison the writer.
    fn rollback(&mut self) {
        let rolled = self
            .file
            .set_len(self.end)
            .and_then(|()| self.file.seek(SeekFrom::Start(self.end)).map(|_| ()))
            .and_then(|()| self.file.sync_data());
        if rolled.is_err() {
            self.poisoned = true;
        }
    }

    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Read just the baseline fingerprint from a log's header (used by the
/// open path to decide whether a `.tmp` log belongs to the current graph
/// file when recovering from a crash mid-merge).
pub fn read_baseline(path: &Path) -> Result<u64> {
    let mut bytes = [0u8; HEADER_LEN];
    let mut f = File::open(path).map_err(wal_io)?;
    f.read_exact(&mut bytes).map_err(wal_io)?;
    let mut r = Reader::new(&bytes);
    if r.bytes(4)? != MAGIC {
        return Err(Error::Storage("not a WAL file (bad magic)".into()));
    }
    let version = r.u32()?;
    if version != VERSION {
        return Err(Error::Storage(format!("unsupported WAL version {version}")));
    }
    r.u64()
}

/// Replay the log at `path`: validate the header against `baseline`,
/// decode every durable commit record, and truncate a torn tail in place
/// (so the next append starts from a clean end-of-log).
pub fn replay(path: &Path, baseline: u64) -> Result<Replay> {
    let mut bytes = Vec::new();
    File::open(path).map_err(wal_io)?.read_to_end(&mut bytes).map_err(wal_io)?;
    if bytes.len() < HEADER_LEN {
        return Err(Error::Storage(format!(
            "WAL header truncated: {} bytes, need {HEADER_LEN}",
            bytes.len()
        )));
    }
    let mut r = Reader::new(&bytes);
    if r.bytes(4)? != MAGIC {
        return Err(Error::Storage("not a WAL file (bad magic)".into()));
    }
    let version = r.u32()?;
    if version != VERSION {
        return Err(Error::Storage(format!("unsupported WAL version {version}")));
    }
    let found = r.u64()?;
    if found != baseline {
        return Err(Error::Storage(format!(
            "WAL baseline mismatch: log {found:#018x}, graph {baseline:#018x} \
             (stale log from before a merge?)"
        )));
    }

    let mut commits = Vec::new();
    let mut good_end = HEADER_LEN; // byte offset after the last valid record
    loop {
        let pos = bytes.len() - r.remaining();
        if r.remaining() == 0 {
            break;
        }
        if r.remaining() < FRAME_LEN {
            // A frame prefix cut short can only be a torn final write.
            break;
        }
        let len = r.u32()? as usize;
        let sum = r.u64()?;
        if r.remaining() < len {
            // Payload cut short: torn final write.
            break;
        }
        let payload = r.bytes(len)?;
        if fnv1a_64(payload) != sum {
            if r.remaining() == 0 {
                // Checksum failure at the exact tail: torn final write.
                break;
            }
            // Valid-looking data follows a bad record: that is not a torn
            // tail, it is corruption (e.g. a bit flip) — refuse to guess.
            return Err(Error::Storage(format!(
                "WAL record at byte {pos} fails its checksum with {} bytes of log after it",
                r.remaining()
            )));
        }
        // The record is durable and intact; a payload that does not decode
        // is corruption, not a torn write.
        let mut pr = Reader::new(payload);
        let n = pr.count().map_err(decorate(pos))?;
        let mut ops = Vec::with_capacity(n);
        for _ in 0..n {
            ops.push(ResolvedOp::decode(&mut pr).map_err(decorate(pos))?);
        }
        if pr.remaining() != 0 {
            return Err(Error::Storage(format!(
                "WAL record at byte {pos} has {} trailing bytes",
                pr.remaining()
            )));
        }
        commits.push(ops);
        good_end = bytes.len() - r.remaining();
    }

    let torn_bytes = (bytes.len() - good_end) as u64;
    if torn_bytes > 0 {
        let file = OpenOptions::new().write(true).open(path).map_err(wal_io)?;
        file.set_len(good_end as u64).map_err(wal_io)?;
        file.sync_data().map_err(wal_io)?;
    }
    Ok(Replay { commits, torn_bytes })
}

fn wal_io(e: std::io::Error) -> Error {
    Error::Storage(format!("WAL I/O: {e}"))
}

fn decorate(pos: usize) -> impl Fn(Error) -> Error {
    move |e| Error::Storage(format!("WAL record at byte {pos} is corrupt: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::StorageConfig;
    use crate::delta::EdgeTarget;
    use crate::raw::RawGraph;
    use gfcl_common::Value;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("gfcl_wal_{}_{name}.wal", std::process::id()))
    }

    fn graph() -> ColumnarGraph {
        ColumnarGraph::build(&RawGraph::example(), StorageConfig::default()).unwrap()
    }

    fn sample_ops() -> Vec<Vec<ResolvedOp>> {
        vec![
            vec![ResolvedOp::InsertVertex {
                label: 0,
                row: vec![Value::String("zoe".into()), Value::Int64(31), Value::String("F".into())],
            }],
            vec![
                ResolvedOp::InsertEdge {
                    label: 0,
                    src: 0,
                    dst: 4,
                    props: vec![Value::Int64(2021)],
                },
                ResolvedOp::DeleteEdge {
                    label: 0,
                    target: EdgeTarget::Base { src: 0, dst: 1, occ: 0 },
                },
            ],
        ]
    }

    #[test]
    fn append_replay_roundtrip() {
        let path = tmp("roundtrip");
        let base = baseline_id(&graph());
        let mut w = WalWriter::create(&path, base).unwrap();
        for commit in &sample_ops() {
            w.append_commit(commit).unwrap();
        }
        drop(w);
        let rep = replay(&path, base).unwrap();
        assert_eq!(rep.commits, sample_ops());
        assert_eq!(rep.torn_bytes, 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_is_truncated_cleanly() {
        let path = tmp("torn");
        let base = baseline_id(&graph());
        let mut w = WalWriter::create(&path, base).unwrap();
        for commit in &sample_ops() {
            w.append_commit(commit).unwrap();
        }
        drop(w);
        let full = std::fs::read(&path).unwrap();
        // Chop the final record at every possible byte boundary: replay
        // must recover exactly the first commit and truncate the rest.
        let first_end = {
            let rep_all = replay(&path, base).unwrap();
            assert_eq!(rep_all.commits.len(), 2);
            // Recompute where commit #1 ends by re-framing it.
            let mut p = Writer::new();
            p.usize(rep_all.commits[0].len());
            for op in &rep_all.commits[0] {
                op.encode(&mut p);
            }
            HEADER_LEN + FRAME_LEN + p.into_bytes().len()
        };
        for cut in first_end..full.len() {
            std::fs::write(&path, &full[..cut]).unwrap();
            let rep = replay(&path, base).unwrap();
            assert_eq!(rep.commits.len(), 1, "cut at byte {cut}");
            assert_eq!(rep.commits[0], sample_ops()[0]);
            if cut > first_end {
                assert_eq!(rep.torn_bytes, (cut - first_end) as u64);
            }
            // The torn bytes are gone from disk: a second replay is clean
            // and an append after it produces a valid log.
            assert_eq!(std::fs::metadata(&path).unwrap().len(), first_end as u64);
            let mut w = WalWriter::open_for_append(&path).unwrap();
            w.append_commit(&sample_ops()[1]).unwrap();
            drop(w);
            assert_eq!(replay(&path, base).unwrap().commits.len(), 2);
            std::fs::write(&path, &full).unwrap();
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mid_file_bit_flips_are_corruption_not_torn_tail() {
        let path = tmp("bitflip");
        let base = baseline_id(&graph());
        let mut w = WalWriter::create(&path, base).unwrap();
        for commit in &sample_ops() {
            w.append_commit(commit).unwrap();
        }
        drop(w);
        let full = std::fs::read(&path).unwrap();
        // Flip one bit in every byte of the FIRST record (frame + payload):
        // valid data follows, so replay must fail loudly, never panic and
        // never silently truncate.
        let mut p = Writer::new();
        p.usize(sample_ops()[0].len());
        for op in &sample_ops()[0] {
            op.encode(&mut p);
        }
        let first_end = HEADER_LEN + FRAME_LEN + p.into_bytes().len();
        for byte in HEADER_LEN..first_end {
            let mut bad = full.clone();
            bad[byte] ^= 0x10;
            std::fs::write(&path, &bad).unwrap();
            match replay(&path, base) {
                Err(Error::Storage(_)) => {}
                Err(e) => panic!("bit flip at {byte}: wrong error kind {e}"),
                // A flip inside the length field can make the first frame
                // swallow the rest of the file — indistinguishable from a
                // torn tail, so a clean truncated replay is also correct.
                Ok(rep) => assert!(rep.commits.is_empty(), "bit flip at {byte} yielded commits"),
            }
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn duplicate_tail_record_replays_or_fails_cleanly() {
        let path = tmp("dup");
        let base = baseline_id(&graph());
        let mut w = WalWriter::create(&path, base).unwrap();
        w.append_commit(&sample_ops()[0]).unwrap();
        drop(w);
        let full = std::fs::read(&path).unwrap();
        // Duplicate the (checksummed, valid) tail record wholesale. The
        // log itself replays both copies; catching the double-apply is the
        // store's job (its `apply` rejects the duplicate insert).
        let mut dup = full.clone();
        dup.extend_from_slice(&full[HEADER_LEN..]);
        std::fs::write(&path, &dup).unwrap();
        let rep = replay(&path, base).unwrap();
        assert_eq!(rep.commits.len(), 2);
        assert_eq!(rep.commits[0], rep.commits[1]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn distinct_builds_never_share_a_baseline_fingerprint() {
        // Two builds of the *identical* raw graph must still fingerprint
        // differently: the per-build nonce is what lets recovery tell a
        // count-preserving merged baseline apart from its predecessor.
        let a = graph();
        let b = graph();
        assert_ne!(baseline_id(&a), baseline_id(&b));
        assert_eq!(baseline_id(&a), baseline_id(&a));
    }

    #[test]
    fn failed_append_rolls_back_to_a_clean_log() {
        let path = tmp("failapp");
        let base = baseline_id(&graph());
        let mut w = WalWriter::create(&path, base).unwrap();
        w.append_commit(&sample_ops()[0]).unwrap();
        let good_len = std::fs::metadata(&path).unwrap().len();
        // Fail the next append after 0, 1, ... bytes of the record have
        // hit the file (usize::MAX = full write, failed fsync). Every
        // variant must truncate back so the log stays pristine.
        for cut in [0usize, 1, 7, 12, 50, usize::MAX] {
            w.fail_append_after = Some(cut);
            let err = w.append_commit(&sample_ops()[1]).unwrap_err();
            assert!(err.to_string().contains("injected"), "cut {cut}: {err}");
            assert_eq!(std::fs::metadata(&path).unwrap().len(), good_len, "cut {cut}");
            let rep = replay(&path, base).unwrap();
            assert_eq!(rep.commits.len(), 1, "cut {cut}");
            assert_eq!(rep.torn_bytes, 0, "cut {cut}");
        }
        // The same writer recovers: a real append lands after the rollbacks.
        w.append_commit(&sample_ops()[1]).unwrap();
        drop(w);
        let rep = replay(&path, base).unwrap();
        assert_eq!(rep.commits, sample_ops());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn wrong_baseline_and_garbage_headers_are_rejected() {
        let path = tmp("hdr");
        let base = baseline_id(&graph());
        WalWriter::create(&path, base).unwrap();
        let err = replay(&path, base ^ 1).unwrap_err();
        assert!(err.to_string().contains("baseline mismatch"), "{err}");

        std::fs::write(&path, b"GW").unwrap();
        assert!(replay(&path, base).is_err());
        std::fs::write(&path, b"NOPE\0\0\0\0\0\0\0\0\0\0\0\0").unwrap();
        let err = replay(&path, base).unwrap_err();
        assert!(err.to_string().contains("magic"), "{err}");
        std::fs::remove_file(&path).ok();
    }
}

//! Table statistics collected at graph build time, feeding the
//! statistics-driven join orderer in `gfcl_core::optimize`.
//!
//! The paper hand-picks left-deep plans for its evaluation; a system that
//! serves arbitrary queries must pick the extend order itself, and that
//! requires knowing, per label, how big a scan is and how much an extend
//! fans out. [`Stats`] records exactly the quantities the cost model
//! consumes:
//!
//! * per vertex label: the vertex count and per-property [`PropStats`];
//! * per edge label: the edge count, the average and maximum degree in each
//!   traversal direction (the fan-out of a `ListExtend`; ≤ 1 for the
//!   single-cardinality side, which extends 1:1 via `ColumnExtend`);
//! * per property: an exact number-of-distinct-values count (cheap at our
//!   scales — a production system would substitute HyperLogLog), the NULL
//!   fraction, and the integer min/max for range-predicate selectivity.
//!
//! Statistics are computed from the [`RawGraph`] by [`Stats::collect`] and
//! stashed on the [`crate::Catalog`] clone each storage build makes, so
//! every engine built from the same raw data plans with identical
//! statistics (and therefore picks identical orders — the cross-engine
//! equivalence suites rely on this).

use std::collections::HashSet;

use gfcl_common::{Direction, LabelId, Reader, Result, Writer};

use crate::raw::{PropData, RawGraph};

/// Statistics of one property column.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PropStats {
    /// Number of distinct non-NULL values (exact).
    pub ndv: u64,
    /// Fraction of NULL entries in `[0, 1]`.
    pub null_fraction: f64,
    /// Minimum non-NULL value, for `Int64`/`Date` columns.
    pub min_i64: Option<i64>,
    /// Maximum non-NULL value, for `Int64`/`Date` columns.
    pub max_i64: Option<i64>,
}

/// Statistics of one vertex label.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct VertexLabelStats {
    /// Number of vertices with this label.
    pub count: u64,
    /// Per-property statistics, parallel to the catalog's property list.
    pub props: Vec<PropStats>,
}

/// Statistics of one edge label.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EdgeLabelStats {
    /// Number of edges with this label.
    pub count: u64,
    /// Average out-degree over *all* source-label vertices (empty lists
    /// included) — the expected fan-out of a forward extend.
    pub avg_fwd_degree: f64,
    /// Largest forward adjacency list.
    pub max_fwd_degree: u64,
    /// Average in-degree over all destination-label vertices.
    pub avg_bwd_degree: f64,
    /// Largest backward adjacency list.
    pub max_bwd_degree: u64,
    /// Per-property statistics, parallel to the catalog's property list.
    pub props: Vec<PropStats>,
}

/// Graph statistics for one database, indexed by [`LabelId`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Stats {
    pub vertices: Vec<VertexLabelStats>,
    pub edges: Vec<EdgeLabelStats>,
}

impl Stats {
    /// Collect statistics from a raw graph in one pass per column.
    pub fn collect(raw: &RawGraph) -> Stats {
        let vertices = raw
            .vertices
            .iter()
            .map(|t| VertexLabelStats {
                count: t.count as u64,
                props: t.props.iter().map(prop_stats).collect(),
            })
            .collect();
        let edges = raw
            .edges
            .iter()
            .enumerate()
            .map(|(lid, t)| {
                let def = raw.catalog.edge_label(lid as LabelId);
                let n_src = raw.vertices[def.src as usize].count;
                let n_dst = raw.vertices[def.dst as usize].count;
                let (avg_fwd, max_fwd) = degree_profile(&t.src, n_src);
                let (avg_bwd, max_bwd) = degree_profile(&t.dst, n_dst);
                EdgeLabelStats {
                    count: t.len() as u64,
                    avg_fwd_degree: avg_fwd,
                    max_fwd_degree: max_fwd,
                    avg_bwd_degree: avg_bwd,
                    max_bwd_degree: max_bwd,
                    props: t.props.iter().map(prop_stats).collect(),
                }
            })
            .collect();
        Stats { vertices, edges }
    }

    /// Statistics of one vertex label.
    pub fn vertex(&self, label: LabelId) -> &VertexLabelStats {
        &self.vertices[label as usize]
    }

    /// Statistics of one edge label.
    pub fn edge(&self, label: LabelId) -> &EdgeLabelStats {
        &self.edges[label as usize]
    }

    /// Expected fan-out of extending one tuple along `(label, dir)`.
    pub fn avg_degree(&self, label: LabelId, dir: Direction) -> f64 {
        let e = self.edge(label);
        match dir {
            Direction::Fwd => e.avg_fwd_degree,
            Direction::Bwd => e.avg_bwd_degree,
        }
    }

    /// Largest adjacency list of `(label, dir)`.
    pub fn max_degree(&self, label: LabelId, dir: Direction) -> u64 {
        let e = self.edge(label);
        match dir {
            Direction::Fwd => e.max_fwd_degree,
            Direction::Bwd => e.max_bwd_degree,
        }
    }

    /// Encode for the on-disk format; statistics are persisted rather than
    /// recollected so a reopened graph plans with *identical* numbers (the
    /// cross-engine equivalence suites depend on matching join orders).
    pub fn encode(&self, w: &mut Writer) {
        w.usize(self.vertices.len());
        for v in &self.vertices {
            w.u64(v.count);
            encode_props(w, &v.props);
        }
        w.usize(self.edges.len());
        for e in &self.edges {
            w.u64(e.count);
            w.f64(e.avg_fwd_degree);
            w.u64(e.max_fwd_degree);
            w.f64(e.avg_bwd_degree);
            w.u64(e.max_bwd_degree);
            encode_props(w, &e.props);
        }
    }

    /// Decode a [`Stats::encode`] stream.
    pub fn decode(r: &mut Reader<'_>) -> Result<Stats> {
        let n_v = r.count()?;
        let mut vertices = Vec::with_capacity(n_v);
        for _ in 0..n_v {
            vertices.push(VertexLabelStats { count: r.u64()?, props: decode_props(r)? });
        }
        let n_e = r.count()?;
        let mut edges = Vec::with_capacity(n_e);
        for _ in 0..n_e {
            edges.push(EdgeLabelStats {
                count: r.u64()?,
                avg_fwd_degree: r.f64()?,
                max_fwd_degree: r.u64()?,
                avg_bwd_degree: r.f64()?,
                max_bwd_degree: r.u64()?,
                props: decode_props(r)?,
            });
        }
        Ok(Stats { vertices, edges })
    }
}

fn encode_props(w: &mut Writer, props: &[PropStats]) {
    w.usize(props.len());
    for p in props {
        w.u64(p.ndv);
        w.f64(p.null_fraction);
        w.opt(p.min_i64, Writer::i64);
        w.opt(p.max_i64, Writer::i64);
    }
}

fn decode_props(r: &mut Reader<'_>) -> Result<Vec<PropStats>> {
    let n = r.count()?;
    let mut props = Vec::with_capacity(n);
    for _ in 0..n {
        props.push(PropStats {
            ndv: r.u64()?,
            null_fraction: r.f64()?,
            min_i64: r.opt(Reader::i64)?,
            max_i64: r.opt(Reader::i64)?,
        });
    }
    Ok(props)
}

/// `(average, max)` list length when grouping `endpoints` over `n` vertices.
fn degree_profile(endpoints: &[u64], n: usize) -> (f64, u64) {
    if n == 0 {
        return (0.0, 0);
    }
    let mut deg = vec![0u64; n];
    for &v in endpoints {
        deg[v as usize] += 1;
    }
    let max = deg.iter().copied().max().unwrap_or(0);
    (endpoints.len() as f64 / n as f64, max)
}

/// NDV / NULL fraction / integer min-max of one raw property column.
fn prop_stats(p: &PropData) -> PropStats {
    let null_fraction = p.null_fraction();
    let (ndv, min_i64, max_i64) = match p {
        PropData::I64(v) => {
            let mut set = HashSet::new();
            let mut min = None;
            let mut max = None;
            for x in v.iter().flatten() {
                set.insert(*x);
                min = Some(min.map_or(*x, |m: i64| m.min(*x)));
                max = Some(max.map_or(*x, |m: i64| m.max(*x)));
            }
            (set.len() as u64, min, max)
        }
        PropData::F64(v) => {
            let set: HashSet<u64> = v.iter().flatten().map(|x| x.to_bits()).collect();
            (set.len() as u64, None, None)
        }
        PropData::Bool(v) => {
            let set: HashSet<bool> = v.iter().flatten().copied().collect();
            (set.len() as u64, None, None)
        }
        PropData::Str(v) => {
            let set: HashSet<&str> = v.iter().flatten().map(String::as_str).collect();
            (set.len() as u64, None, None)
        }
    };
    PropStats { ndv, null_fraction, min_i64, max_i64 }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::raw::RawGraph;

    #[test]
    fn collects_counts_and_degrees_from_the_example() {
        let raw = RawGraph::example();
        let s = Stats::collect(&raw);
        assert_eq!(s.vertex(0).count, 4); // PERSON
        assert_eq!(s.vertex(1).count, 2); // ORG
        let follows = s.edge(0);
        assert_eq!(follows.count, 8);
        assert_eq!(follows.avg_fwd_degree, 2.0); // 8 edges / 4 persons
        assert_eq!(follows.max_fwd_degree, 3); // peter follows 3
        assert_eq!(follows.max_bwd_degree, 3); // jenny followed by 3
                                               // WORKAT is n-1: average forward degree ≤ 1.
        let workat = s.edge(2);
        assert!(workat.avg_fwd_degree <= 1.0);
        assert_eq!(workat.max_fwd_degree, 1);
        assert_eq!(s.avg_degree(0, Direction::Bwd), 2.0);
        assert_eq!(s.max_degree(0, Direction::Fwd), 3);
    }

    #[test]
    fn prop_stats_count_distinct_and_ranges() {
        let raw = RawGraph::example();
        let s = Stats::collect(&raw);
        // PERSON.age: 45, 54, 17, 23 — all distinct, no NULLs.
        let age = &s.vertex(0).props[1];
        assert_eq!(age.ndv, 4);
        assert_eq!(age.null_fraction, 0.0);
        assert_eq!((age.min_i64, age.max_i64), (Some(17), Some(54)));
        // PERSON.gender: two distinct strings; no integer range.
        let gender = &s.vertex(0).props[2];
        assert_eq!(gender.ndv, 2);
        assert_eq!(gender.min_i64, None);
        // FOLLOWS.since is an edge property with 8 distinct years.
        assert_eq!(s.edge(0).props[0].ndv, 8);
    }

    #[test]
    fn encode_roundtrips_example_stats() {
        use gfcl_common::{Reader, Writer};
        let s = Stats::collect(&RawGraph::example());
        let mut w = Writer::new();
        s.encode(&mut w);
        let bytes = w.into_bytes();
        assert_eq!(Stats::decode(&mut Reader::new(&bytes)).unwrap(), s);
        assert!(Stats::decode(&mut Reader::new(&bytes[..bytes.len() / 2])).is_err());
    }

    #[test]
    fn null_fraction_and_empty_labels() {
        let mut raw = RawGraph::example();
        // NULL one age.
        if let PropData::I64(v) = &mut raw.vertices[0].props[1] {
            v[0] = None;
        }
        let s = Stats::collect(&raw);
        let age = &s.vertex(0).props[1];
        assert_eq!(age.null_fraction, 0.25);
        assert_eq!(age.ndv, 3);
        assert_eq!(age.min_i64, Some(17));
    }
}

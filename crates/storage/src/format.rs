//! The single-file on-disk graph format.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! page 0        header: magic "GFCL", version, page size, data-page count,
//!               metadata and checksum-array locations, each with its own
//!               FNV-1a checksum, and finally a checksum of the header itself
//! pages 1..=N   page-aligned value segments (column data, adjacency lists,
//!               edge properties) written by [`FileSink`]; a segment's tail
//!               page is zero-padded so no element ever straddles pages
//! then          per-data-page u64 checksum array (verified at fault time)
//! then          metadata stream: catalog, config, stats, NULL maps, zone
//!               maps, dictionaries, offsets — everything decoded eagerly by
//!               [`ColumnarGraph::open`]; value pages are *not* read here
//! ```
//!
//! `open` validates the header, geometry, checksum array and metadata
//! checksums up front and returns [`Error::Storage`] on any mismatch; the
//! graph it returns faults value pages through a [`BufferPool`] on first
//! touch, so a graph far larger than the pool answers queries correctly,
//! just with more I/O.

use std::fs::File;
use std::os::unix::fs::FileExt;
use std::path::Path;
use std::sync::Arc;

use gfcl_columnar::{PageStore, SegRef, SegmentSink, SegmentSource, PAGE_SIZE};
use gfcl_common::{fnv1a_64, Error, Reader, Result, Writer};

use crate::columnar_graph::ColumnarGraph;
use crate::config::StorageConfig;
use crate::pager::BufferPool;

const MAGIC: [u8; 4] = *b"GFCL";
/// v2 added the graph's per-build generation nonce to the metadata stream.
const VERSION: u32 = 2;
/// Header bytes covered by the trailing header checksum.
const HEADER_LEN: usize = 4 + 4 + 4 + 7 * 8;

/// [`SegmentSink`] that appends page-aligned segments to the storage file,
/// starting at page 1, collecting a checksum per page as it goes. I/O
/// errors are deferred (the sink trait is infallible) and surfaced once
/// encoding finishes.
struct FileSink<'a> {
    file: &'a File,
    next_page: u64,
    checksums: Vec<u64>,
    err: Option<std::io::Error>,
}

impl SegmentSink for FileSink<'_> {
    fn write_segment(&mut self, bytes: &[u8]) -> SegRef {
        // Page count stays in usize (it indexes `bytes`); only the file
        // offsets widen to u64.
        let n_pages = bytes.len().div_ceil(PAGE_SIZE).max(1);
        let start_page = self.next_page;
        let mut page = vec![0u8; PAGE_SIZE];
        for i in 0..n_pages {
            let lo = i * PAGE_SIZE;
            let hi = bytes.len().min(lo + PAGE_SIZE);
            page.fill(0);
            if lo < bytes.len() {
                page[..hi - lo].copy_from_slice(&bytes[lo..hi]);
            }
            self.checksums.push(fnv1a_64(&page));
            if self.err.is_none() {
                let off = (start_page + i as u64) * PAGE_SIZE as u64;
                if let Err(e) = self.file.write_all_at(&page, off) {
                    self.err = Some(e);
                }
            }
        }
        self.next_page += n_pages as u64;
        SegRef { start_page, n_pages: n_pages as u64 }
    }
}

/// [`SegmentSource`] handing decoders a shared [`BufferPool`]
/// (newtype: the orphan rule forbids `impl ... for Arc<BufferPool>` here).
struct PoolSource(Arc<BufferPool>);

impl SegmentSource for PoolSource {
    fn store(&self) -> Arc<dyn PageStore> {
        Arc::clone(&self.0) as Arc<dyn PageStore>
    }
}

fn io_err(what: &str, e: std::io::Error) -> Error {
    Error::Storage(format!("{what}: {e}"))
}

impl ColumnarGraph {
    /// Persist the graph to a single file at `path` (replacing any existing
    /// file). The written bytes are deterministic in the graph's contents
    /// (which include its per-build generation nonce: saving the same graph
    /// twice is byte-identical, two separate builds are not).
    pub fn save(&self, path: impl AsRef<Path>) -> Result<()> {
        let file = File::create(path.as_ref()).map_err(|e| io_err("create graph file", e))?;
        let mut sink = FileSink { file: &file, next_page: 1, checksums: Vec::new(), err: None };
        let mut w = Writer::new();
        self.encode_meta(&mut w, &mut sink);
        if let Some(e) = sink.err.take() {
            return Err(io_err("write data pages", e));
        }
        let n_data_pages = sink.next_page - 1;
        let meta = w.into_bytes();

        let mut ck = Writer::new();
        for &c in &sink.checksums {
            ck.u64(c);
        }
        let cks_bytes = ck.into_bytes();
        let cks_off = sink.next_page * PAGE_SIZE as u64;
        let meta_off = cks_off + cks_bytes.len() as u64;
        file.write_all_at(&cks_bytes, cks_off).map_err(|e| io_err("write checksum array", e))?;
        file.write_all_at(&meta, meta_off).map_err(|e| io_err("write metadata", e))?;

        let mut h = Writer::new();
        h.bytes(&MAGIC);
        h.u32(VERSION);
        h.u32(u32::try_from(PAGE_SIZE).expect("PAGE_SIZE fits the header's u32 field"));
        h.u64(n_data_pages);
        h.u64(meta_off);
        h.u64(meta.len() as u64);
        h.u64(fnv1a_64(&meta));
        h.u64(cks_off);
        h.u64(cks_bytes.len() as u64);
        h.u64(fnv1a_64(&cks_bytes));
        let mut header = h.into_bytes();
        debug_assert_eq!(header.len(), HEADER_LEN);
        let checksum = fnv1a_64(&header);
        header.extend_from_slice(&checksum.to_le_bytes());
        let mut page0 = vec![0u8; PAGE_SIZE];
        page0[..header.len()].copy_from_slice(&header);
        file.write_all_at(&page0, 0).map_err(|e| io_err("write header page", e))?;
        file.sync_all().map_err(|e| io_err("sync graph file", e))
    }

    /// Open a graph saved by [`ColumnarGraph::save`]. Metadata is read and
    /// verified eagerly; value pages are faulted on demand through a
    /// [`BufferPool`] of `config.buffer_pool_pages` pages (`GFCL_BUFFER_MB`
    /// overrides). All structural configuration comes from the file — only
    /// the pool size is taken from `config`. Any malformed, truncated or
    /// corrupted input yields [`Error::Storage`], never a panic.
    ///
    /// When any `GFCL_FAULT_*` variable is set, post-open page reads go
    /// through a seeded [`FaultConfig`](crate::chaos::FaultConfig)
    /// injector (the chaos tier); see [`ColumnarGraph::open_with_faults`].
    pub fn open(path: impl AsRef<Path>, config: StorageConfig) -> Result<ColumnarGraph> {
        Self::open_with_faults(path, config, crate::chaos::FaultConfig::from_env()?)
    }

    /// [`ColumnarGraph::open`] with an explicit fault-injection
    /// configuration for the post-open read path (`None` disables
    /// injection). Header, checksum-array and metadata reads are *not*
    /// injected: the chaos tier targets the demand-paged read path, where
    /// an I/O fault must surface as a per-query error rather than a
    /// failed open.
    pub fn open_with_faults(
        path: impl AsRef<Path>,
        config: StorageConfig,
        faults: Option<crate::chaos::FaultConfig>,
    ) -> Result<ColumnarGraph> {
        let file = File::open(path.as_ref()).map_err(|e| io_err("open graph file", e))?;
        let file_len = file.metadata().map_err(|e| io_err("stat graph file", e))?.len();
        if file_len < PAGE_SIZE as u64 {
            return Err(Error::Storage(format!(
                "file too small for a header page ({file_len} bytes)"
            )));
        }
        let mut head = vec![0u8; HEADER_LEN + 8];
        file.read_exact_at(&mut head, 0).map_err(|e| io_err("read header", e))?;
        let mut r = Reader::new(&head);
        if r.bytes(4)? != MAGIC {
            return Err(Error::Storage("bad magic: not a gfcl graph file".into()));
        }
        let version = r.u32()?;
        if version != VERSION {
            return Err(Error::Storage(format!("unsupported format version {version}")));
        }
        let page_size = r.u32()?;
        if u64::from(page_size) != PAGE_SIZE as u64 {
            return Err(Error::Storage(format!("unsupported page size {page_size}")));
        }
        let n_data_pages = r.u64()?;
        let meta_off = r.u64()?;
        let meta_len = r.u64()?;
        let meta_cks = r.u64()?;
        let cks_off = r.u64()?;
        let cks_len = r.u64()?;
        let cks_cks = r.u64()?;
        if fnv1a_64(&head[..HEADER_LEN]) != r.u64()? {
            return Err(Error::Storage("header checksum mismatch".into()));
        }
        // Geometry: checksum array sits right after the data pages, the
        // metadata right after it, ending exactly at end-of-file.
        let data_end = n_data_pages.checked_add(1).and_then(|p| p.checked_mul(PAGE_SIZE as u64));
        let cks_end = cks_off.checked_add(cks_len);
        let meta_end = meta_off.checked_add(meta_len);
        if data_end != Some(cks_off)
            || cks_len != n_data_pages * 8
            || cks_end != Some(meta_off)
            || meta_end != Some(file_len)
        {
            return Err(Error::Storage("file geometry invalid (truncated or tampered)".into()));
        }

        // Untrusted header fields cross into usize via try_from: on a
        // 32-bit host an oversized length must fail as Error::Storage,
        // not wrap into a short (checksum-failing, but misleading) read.
        let too_big =
            |what: &str, v: u64| Error::Storage(format!("{what} length {v} exceeds address space"));
        let cks_len_b = usize::try_from(cks_len).map_err(|_| too_big("checksum array", cks_len))?;
        let mut cks_bytes = vec![0u8; cks_len_b];
        file.read_exact_at(&mut cks_bytes, cks_off).map_err(|e| io_err("read checksums", e))?;
        if fnv1a_64(&cks_bytes) != cks_cks {
            return Err(Error::Storage("page-checksum array corrupt".into()));
        }
        let mut cr = Reader::new(&cks_bytes);
        let mut checksums = Vec::with_capacity(cks_len_b / 8);
        for _ in 0..n_data_pages {
            checksums.push(cr.u64()?);
        }

        let meta_len_b = usize::try_from(meta_len).map_err(|_| too_big("metadata", meta_len))?;
        let mut meta = vec![0u8; meta_len_b];
        file.read_exact_at(&mut meta, meta_off).map_err(|e| io_err("read metadata", e))?;
        if fnv1a_64(&meta) != meta_cks {
            return Err(Error::Storage("metadata checksum mismatch".into()));
        }

        let capacity = BufferPool::capacity_from_env(config.buffer_pool_pages)?;
        let pool = match faults {
            Some(cfg) if !cfg.is_disabled() => {
                let store = crate::chaos::FailingStore::new(file, cfg);
                Arc::new(BufferPool::with_page_file(Box::new(store), capacity, 1, checksums))
            }
            _ => Arc::new(BufferPool::new(file, capacity, 1, checksums)),
        };
        let mut graph =
            ColumnarGraph::decode_meta(&mut Reader::new(&meta), &PoolSource(Arc::clone(&pool)))?;
        graph.set_pool(pool);
        Ok(graph)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::raw::RawGraph;
    use gfcl_common::Direction;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("gfcl_format_{}_{name}.gfcl", std::process::id()))
    }

    fn build_example() -> ColumnarGraph {
        ColumnarGraph::build(&RawGraph::example(), StorageConfig::default()).unwrap()
    }

    #[test]
    fn save_open_roundtrips_with_tiny_pool() {
        let g = build_example();
        let path = tmp("roundtrip");
        g.save(&path).unwrap();
        let config = StorageConfig { buffer_pool_pages: 2, ..StorageConfig::default() };
        let back = ColumnarGraph::open(&path, config).unwrap();
        std::fs::remove_file(&path).unwrap();

        // Same logical bytes (modulo Vec capacity slack on the built side),
        // but a chunk of them now lives on disk.
        let (m0, m1) = (g.memory_breakdown(), back.memory_breakdown());
        let diff = m0.total().abs_diff(m1.total());
        assert!(diff * 20 <= m0.total(), "totals differ: {} vs {}", m0.total(), m1.total());
        assert_eq!(m0.pageable, 0);
        assert!(m1.pageable > 0, "reopened graph should page its value arrays");
        assert!(m1.resident < m0.resident);
        // GFCL_BUFFER_MB (set by CI's persistence job) overrides the
        // config capacity, so assert the env-resolved value.
        assert_eq!(
            back.buffer_pool().unwrap().capacity(),
            BufferPool::capacity_from_env(2).unwrap()
        );

        // Catalog, counts, properties, adjacency, pk lookups all agree.
        assert_eq!(back.catalog().vertex_label_count(), g.catalog().vertex_label_count());
        for l in 0..g.catalog().vertex_label_count() as u16 {
            assert_eq!(back.vertex_count(l), g.vertex_count(l));
            let def = g.catalog().vertex_label(l);
            for (j, _) in def.properties.iter().enumerate() {
                let (a, b) = (g.vertex_prop(l, j), back.vertex_prop(l, j));
                for v in 0..g.vertex_count(l) {
                    assert_eq!(a.value(v), b.value(v), "label {l} prop {j} vertex {v}");
                }
            }
        }
        for e in 0..g.catalog().edge_label_count() as u16 {
            assert_eq!(back.edge_count(e), g.edge_count(e));
            for dir in [Direction::Fwd, Direction::Bwd] {
                let n = g.vertex_count(g.catalog().edge_label(e).from_label(dir));
                for v in 0..n as u64 {
                    assert_eq!(back.adj(e, dir).degree(v), g.adj(e, dir).degree(v));
                }
            }
        }
        // Faulting happened through the pool, bounded by its capacity.
        let pool = back.buffer_pool().unwrap();
        assert!(pool.stats().faults > 0);
        assert!(pool.occupancy() <= pool.capacity());
    }

    #[test]
    fn save_is_deterministic() {
        let g = build_example();
        let (p1, p2) = (tmp("det1"), tmp("det2"));
        g.save(&p1).unwrap();
        g.save(&p2).unwrap();
        let (b1, b2) = (std::fs::read(&p1).unwrap(), std::fs::read(&p2).unwrap());
        std::fs::remove_file(&p1).unwrap();
        std::fs::remove_file(&p2).unwrap();
        assert_eq!(b1, b2);
    }

    #[test]
    fn open_rejects_bad_magic() {
        let path = tmp("magic");
        let g = build_example();
        g.save(&path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[0] = b'X';
        std::fs::write(&path, &bytes).unwrap();
        let err = ColumnarGraph::open(&path, StorageConfig::default()).unwrap_err();
        std::fs::remove_file(&path).unwrap();
        assert!(matches!(err, Error::Storage(_)), "{err:?}");
    }

    #[test]
    fn open_rejects_corrupted_header() {
        let path = tmp("header");
        let g = build_example();
        g.save(&path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[20] ^= 0xff; // metadata offset field
        std::fs::write(&path, &bytes).unwrap();
        let err = ColumnarGraph::open(&path, StorageConfig::default()).unwrap_err();
        std::fs::remove_file(&path).unwrap();
        assert!(matches!(err, Error::Storage(_)), "{err:?}");
    }

    #[test]
    fn open_rejects_truncated_file() {
        let path = tmp("trunc");
        let g = build_example();
        g.save(&path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        for keep in [0, 10, PAGE_SIZE, bytes.len() - 1] {
            std::fs::write(&path, &bytes[..keep]).unwrap();
            let err = ColumnarGraph::open(&path, StorageConfig::default()).unwrap_err();
            assert!(matches!(err, Error::Storage(_)), "keep={keep}: {err:?}");
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn open_rejects_corrupted_metadata() {
        let path = tmp("meta");
        let g = build_example();
        g.save(&path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let n = bytes.len();
        bytes[n - 1] ^= 0xff; // metadata stream tail
        std::fs::write(&path, &bytes).unwrap();
        let err = ColumnarGraph::open(&path, StorageConfig::default()).unwrap_err();
        std::fs::remove_file(&path).unwrap();
        assert!(matches!(err, Error::Storage(_)), "{err:?}");
    }
}

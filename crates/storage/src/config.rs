//! [`StorageConfig`]: the ablation knobs of Table 2 and Sections 8.3/8.4.
//!
//! The memory-reduction experiment starts from the row store (GF-RV) and
//! applies one optimization at a time; each `+STEP` column of Table 2 is a
//! `StorageConfig` preset here. The property-page experiments of Table 3
//! toggle [`EdgePropLayout`], and the single-cardinality experiments of
//! Table 4 toggle [`StorageConfig::single_card_in_vcols`].

use gfcl_columnar::{NullKind, RankParams};
use gfcl_common::{Error, Reader, Result, Writer};

/// How n-n edge properties are stored (Section 4.2 design space).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgePropLayout {
    /// The paper's single-indexed property pages: `k` adjacency lists per
    /// page, sequential reads forward, constant-time random reads backward.
    Pages { k: usize },
    /// Baseline: one flat column per property indexed by a randomly assigned
    /// dense edge ID ("the order would be determined by the sequence of edge
    /// insertions and deletions").
    EdgeColumns,
    /// Baseline: properties duplicated in forward *and* backward list order;
    /// sequential both ways, double the storage.
    DoubleIndexed,
}

impl EdgePropLayout {
    /// The paper's default page size.
    pub const DEFAULT_K: usize = 128;

    pub fn pages_default() -> Self {
        EdgePropLayout::Pages { k: Self::DEFAULT_K }
    }
}

/// Configuration of a [`crate::ColumnarGraph`] build.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StorageConfig {
    /// Use the paper's factored ID schemes (Section 5.2): neighbour labels
    /// and edge labels omitted, page-level positional offsets, offsets
    /// dropped entirely for property-less and single-cardinality labels
    /// (Figure 6). When `false`, adjacency lists store 8-byte global
    /// neighbour IDs and 8-byte global edge IDs for every edge — the
    /// `+COLS` configuration.
    pub new_ids: bool,
    /// Leading-0 suppression of ID components (Section 5.1): store each
    /// adjacency-list component in the narrowest byte width that fits its
    /// maximum value. The `+0-SUPR` step.
    pub zero_suppress: bool,
    /// NULL-compress sparse vertex/edge property columns and empty
    /// adjacency lists with `null_kind`. The `+NULL` step.
    pub null_compress: bool,
    /// Layout used when `null_compress` is set.
    pub null_kind: NullKind,
    /// Store single-cardinality edges (and their properties) in vertex
    /// columns instead of CSRs (Section 4.1.2; Table 4 ablation).
    pub single_card_in_vcols: bool,
    /// n-n edge property layout (Table 3 / Section 8.3 ablation).
    pub edge_prop_layout: EdgePropLayout,
    /// Build per-block zone maps over vertex property columns at graph
    /// build time, enabling pushed-down scan predicates to skip whole
    /// blocks (`gfcl_columnar::ZoneMap`). Off = scans with pushdown still
    /// work but evaluate every block.
    pub zone_maps: bool,
    /// Buffer pool capacity (in 64 KiB pages) used when the graph is
    /// reopened from disk with [`crate::ColumnarGraph::open`]. Ignored for
    /// in-memory builds. The `GFCL_BUFFER_MB` environment variable
    /// overrides it at open time. Runtime-only: not part of the persisted
    /// structural configuration.
    pub buffer_pool_pages: usize,
}

impl Default for StorageConfig {
    /// The full GF-CL configuration (`+NULL` column of Table 2).
    fn default() -> Self {
        StorageConfig {
            new_ids: true,
            zero_suppress: true,
            null_compress: true,
            null_kind: NullKind::jacobson_default(),
            single_card_in_vcols: true,
            edge_prop_layout: EdgePropLayout::pages_default(),
            zone_maps: true,
            buffer_pool_pages: crate::pager::DEFAULT_POOL_PAGES,
        }
    }
}

impl StorageConfig {
    /// `+COLS`: columnar properties and vertex-column single-cardinality
    /// edges, but the old 8-byte ID scheme and no compression.
    pub fn cols() -> Self {
        StorageConfig {
            new_ids: false,
            zero_suppress: false,
            null_compress: false,
            ..StorageConfig::default()
        }
    }

    /// `+NEW-IDS`: factored vertex/edge ID schemes on top of `+COLS`.
    pub fn new_ids() -> Self {
        StorageConfig { zero_suppress: false, null_compress: false, ..StorageConfig::default() }
    }

    /// `+0-SUPR`: leading-0 suppression on top of `+NEW-IDS`.
    pub fn zero_supr() -> Self {
        StorageConfig { null_compress: false, ..StorageConfig::default() }
    }

    /// `+NULL` — the complete GF-CL storage (same as `default()`).
    pub fn full() -> Self {
        StorageConfig::default()
    }

    /// The Table 2 ladder in order, with the paper's column names.
    pub fn ladder() -> Vec<(&'static str, StorageConfig)> {
        vec![
            ("+COLS", StorageConfig::cols()),
            ("+NEW-IDS", StorageConfig::new_ids()),
            ("+0-SUPR", StorageConfig::zero_supr()),
            ("+NULL", StorageConfig::full()),
        ]
    }

    /// Encode the *structural* fields for the on-disk format — everything
    /// that shaped the persisted layout. `buffer_pool_pages` is a runtime
    /// knob and deliberately not stored: the opener chooses its own pool.
    pub fn encode(&self, w: &mut Writer) {
        w.bool(self.new_ids);
        w.bool(self.zero_suppress);
        w.bool(self.null_compress);
        encode_null_kind(w, self.null_kind);
        w.bool(self.single_card_in_vcols);
        match self.edge_prop_layout {
            EdgePropLayout::Pages { k } => {
                w.u8(0);
                w.usize(k);
            }
            EdgePropLayout::EdgeColumns => w.u8(1),
            EdgePropLayout::DoubleIndexed => w.u8(2),
        }
        w.bool(self.zone_maps);
    }

    /// Decode a [`StorageConfig::encode`] stream. `buffer_pool_pages` comes
    /// back as the default; the opener overlays its own value.
    pub fn decode(r: &mut Reader<'_>) -> Result<StorageConfig> {
        let new_ids = r.bool()?;
        let zero_suppress = r.bool()?;
        let null_compress = r.bool()?;
        let null_kind = decode_null_kind(r)?;
        let single_card_in_vcols = r.bool()?;
        let edge_prop_layout = match r.u8()? {
            0 => EdgePropLayout::Pages { k: r.usize()? },
            1 => EdgePropLayout::EdgeColumns,
            2 => EdgePropLayout::DoubleIndexed,
            t => return Err(Error::Storage(format!("invalid edge-prop-layout tag {t}"))),
        };
        let zone_maps = r.bool()?;
        Ok(StorageConfig {
            new_ids,
            zero_suppress,
            null_compress,
            null_kind,
            single_card_in_vcols,
            edge_prop_layout,
            zone_maps,
            ..StorageConfig::default()
        })
    }
}

fn encode_null_kind(w: &mut Writer, kind: NullKind) {
    match kind {
        NullKind::None => w.u8(0),
        NullKind::Uncompressed => w.u8(1),
        NullKind::Sparse => w.u8(2),
        NullKind::Ranges => w.u8(3),
        NullKind::Vanilla => w.u8(4),
        NullKind::Jacobson(p) => {
            w.u8(5);
            w.u32(p.c);
            w.u32(p.m);
        }
    }
}

fn decode_null_kind(r: &mut Reader<'_>) -> Result<NullKind> {
    Ok(match r.u8()? {
        0 => NullKind::None,
        1 => NullKind::Uncompressed,
        2 => NullKind::Sparse,
        3 => NullKind::Ranges,
        4 => NullKind::Vanilla,
        5 => {
            let (c, m) = (r.u32()?, r.u32()?);
            NullKind::Jacobson(
                RankParams::new(c, m)
                    .map_err(|e| Error::Storage(format!("bad rank params: {e}")))?,
            )
        }
        t => return Err(Error::Storage(format!("invalid null-kind tag {t}"))),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_is_monotone_in_features() {
        let ladder = StorageConfig::ladder();
        assert_eq!(ladder.len(), 4);
        let flags =
            |c: &StorageConfig| [c.new_ids, c.zero_suppress, c.null_compress].map(|b| b as u8);
        for w in ladder.windows(2) {
            let a = flags(&w[0].1);
            let b = flags(&w[1].1);
            assert!(a.iter().zip(&b).all(|(x, y)| x <= y), "each step only adds features");
        }
        assert_eq!(ladder[3].1, StorageConfig::default());
    }

    #[test]
    fn encode_roundtrips_every_ladder_step() {
        for (name, cfg) in StorageConfig::ladder() {
            let mut w = Writer::new();
            cfg.encode(&mut w);
            let bytes = w.into_bytes();
            let back = StorageConfig::decode(&mut Reader::new(&bytes)).unwrap();
            assert_eq!(back, cfg, "{name}");
            assert!(StorageConfig::decode(&mut Reader::new(&bytes[..3])).is_err());
        }
    }

    #[test]
    fn buffer_pool_pages_is_not_structural() {
        let cfg = StorageConfig { buffer_pool_pages: 7, ..StorageConfig::default() };
        let mut w = Writer::new();
        cfg.encode(&mut w);
        let back = StorageConfig::decode(&mut Reader::new(&w.into_bytes())).unwrap();
        assert_eq!(back.buffer_pool_pages, StorageConfig::default().buffer_pool_pages);
    }

    #[test]
    fn default_is_full_gfcl() {
        let c = StorageConfig::default();
        assert!(c.new_ids && c.zero_suppress && c.null_compress && c.single_card_in_vcols);
        assert_eq!(c.edge_prop_layout, EdgePropLayout::Pages { k: 128 });
    }
}

//! Graph storage for the `gfcl` graph DBMS: the paper's columnar layout
//! (Section 4) and the row-oriented GF-RV baseline it is compared against.
//!
//! Layered as:
//!
//! * [`catalog`] — labels, structured properties, cardinality constraints,
//!   plus the build-time [`stats`] the join orderer consumes;
//! * [`raw`] — the storage-agnostic [`RawGraph`] interchange format;
//! * [`csr`] / [`pages`] / [`single_card`] / [`edge_store`] — the columnar
//!   building blocks: factored-ID CSRs, single-indexed property pages,
//!   vertex-column single-cardinality edges, and the edge-property design
//!   space;
//! * [`columnar_graph`] — the assembled [`ColumnarGraph`], configurable
//!   through [`StorageConfig`] to reproduce every ablation in the paper;
//! * [`row_graph`] — the interpreted-attribute-layout [`RowGraph`] (GF-RV).

pub mod catalog;
pub mod chaos;
pub mod columnar_graph;
pub mod config;
pub mod csr;
pub mod delta;
pub mod edge_store;
pub mod format;
pub mod mutation;
pub mod pager;
pub mod pages;
pub mod raw;
pub mod row_graph;
pub mod single_card;
pub mod stats;
pub mod store;
pub mod wal;

pub use catalog::{Cardinality, Catalog, EdgeLabelDef, PropertyDef, VertexLabelDef};
pub use chaos::{FailingStore, FaultConfig};
pub use columnar_graph::{AdjIndex, ColumnarGraph, EdgePropRead, MemoryBreakdown};
pub use config::{EdgePropLayout, StorageConfig};
pub use csr::{Csr, CsrOptions};
pub use delta::{DeltaEdge, DeltaSnapshot, DeltaStore, EdgeTarget, ResolvedOp, StrExt};
pub use edge_store::EdgePropStore;
pub use mutation::{MutableAdjacency, MutablePage, OffsetRecycler};
pub use pager::{BufferPool, PageFile, PoolStats, DEFAULT_POOL_PAGES, MAX_READ_ATTEMPTS};
pub use pages::PropertyPages;
pub use raw::{EdgeTable, PropData, RawGraph, VertexTable};
pub use row_graph::{PropEntry, RowCsr, RowGraph};
pub use single_card::SingleCardAdj;
pub use stats::{EdgeLabelStats, PropStats, Stats, VertexLabelStats};
pub use store::{
    base_edge_ref, delta_edge_ref, edge_ref_index, is_delta_edge_ref, merged_raw, GraphSnapshot,
    GraphStore, GraphView, WriteTxn,
};

// Storage is read-only at query time and shared by reference across the
// morsel-driven workers of the list-based processor, so every query-facing
// structure must stay `Send + Sync` (no interior mutability). These
// assertions turn a regression into a compile error at the crate boundary.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Catalog>();
    assert_send_sync::<ColumnarGraph>();
    assert_send_sync::<Csr>();
    assert_send_sync::<PropertyPages>();
    assert_send_sync::<SingleCardAdj>();
    assert_send_sync::<EdgePropStore>();
    assert_send_sync::<AdjIndex>();
    assert_send_sync::<RowGraph>();
    assert_send_sync::<StorageConfig>();
    assert_send_sync::<EdgePropRead<'_>>();
    assert_send_sync::<Stats>();
    assert_send_sync::<BufferPool>();
    assert_send_sync::<FailingStore>();
    assert_send_sync::<DeltaSnapshot>();
    assert_send_sync::<DeltaStore>();
    assert_send_sync::<GraphStore>();
    assert_send_sync::<GraphSnapshot>();
    assert_send_sync::<GraphView<'_>>();
};
